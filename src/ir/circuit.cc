#include "ir/circuit.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "support/logging.h"

namespace guoq {
namespace ir {

Circuit::Circuit(int num_qubits) : numQubits_(num_qubits)
{
    if (num_qubits < 0)
        support::panic("Circuit with negative qubit count");
}

void
Circuit::add(Gate g)
{
    for (std::size_t i = 0; i < g.qubits.size(); ++i) {
        const int q = g.qubits[i];
        if (q < 0 || q >= numQubits_)
            support::panic(support::strcat("gate ", g.toString(),
                                           " out of range for ", numQubits_,
                                           " qubits"));
        for (std::size_t j = i + 1; j < g.qubits.size(); ++j)
            if (g.qubits[j] == q)
                support::panic(support::strcat("gate ", g.toString(),
                                               " repeats qubit ", q));
    }
    gates_.push_back(std::move(g));
}

void
Circuit::add(GateKind kind, std::vector<int> qubits,
             std::vector<double> params)
{
    add(Gate(kind, std::move(qubits), std::move(params)));
}

void
Circuit::append(const Circuit &other)
{
    if (other.numQubits_ > numQubits_)
        support::panic("append: other circuit has more qubits");
    for (const Gate &g : other.gates_)
        add(g);
}

std::size_t
Circuit::twoQubitGateCount() const
{
    std::size_t n = 0;
    for (const Gate &g : gates_)
        if (g.arity() == 2)
            ++n;
    return n;
}

std::size_t
Circuit::tGateCount() const
{
    std::size_t n = 0;
    for (const Gate &g : gates_)
        if (isTGate(g.kind))
            ++n;
    return n;
}

CircuitCounts
Circuit::counts() const
{
    CircuitCounts k;
    k.gates = gates_.size();
    for (const Gate &g : gates_) {
        if (g.arity() == 2)
            ++k.twoQubit;
        if (isTGate(g.kind))
            ++k.tGates;
    }
    return k;
}

std::size_t
Circuit::countOf(GateKind kind) const
{
    std::size_t n = 0;
    for (const Gate &g : gates_)
        if (g.kind == kind)
            ++n;
    return n;
}

std::size_t
Circuit::depth() const
{
    std::vector<std::size_t> frontier(static_cast<std::size_t>(numQubits_),
                                      0);
    std::size_t d = 0;
    for (const Gate &g : gates_) {
        std::size_t layer = 0;
        for (int q : g.qubits)
            layer = std::max(layer, frontier[static_cast<std::size_t>(q)]);
        ++layer;
        for (int q : g.qubits)
            frontier[static_cast<std::size_t>(q)] = layer;
        d = std::max(d, layer);
    }
    return d;
}

Circuit
Circuit::inverse() const
{
    Circuit inv(numQubits_);
    for (auto it = gates_.rbegin(); it != gates_.rend(); ++it)
        for (Gate &g : it->inverse())
            inv.add(std::move(g));
    return inv;
}

Circuit
Circuit::remapped(const std::vector<int> &mapping, int new_num_qubits) const
{
    if (mapping.size() != static_cast<std::size_t>(numQubits_))
        support::panic("remapped: mapping size mismatch");
    Circuit out(new_num_qubits);
    for (const Gate &g : gates_) {
        Gate ng = g;
        for (auto &q : ng.qubits)
            q = mapping[static_cast<std::size_t>(q)];
        out.add(std::move(ng));
    }
    return out;
}

std::vector<int>
Circuit::usedQubits() const
{
    std::set<int> used;
    for (const Gate &g : gates_)
        used.insert(g.qubits.begin(), g.qubits.end());
    return {used.begin(), used.end()};
}

std::string
Circuit::toString() const
{
    std::ostringstream os;
    os << "circuit(" << numQubits_ << " qubits, " << gates_.size()
       << " gates)\n";
    for (const Gate &g : gates_)
        os << "  " << g.toString() << '\n';
    return os.str();
}

} // namespace ir
} // namespace guoq
