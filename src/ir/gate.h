/**
 * @file
 * A gate instance: a kind applied to specific qubits with bound angles.
 */

#pragma once

#include <string>
#include <vector>

#include "ir/gate_kind.h"
#include "linalg/complex_matrix.h"

namespace guoq {
namespace ir {

/** One gate application in a circuit. */
struct Gate
{
    GateKind kind = GateKind::X;
    std::vector<int> qubits;    //!< first qubit = matrix MSB
    std::vector<double> params; //!< size == gateParamCount(kind)

    Gate() = default;
    Gate(GateKind k, std::vector<int> qs, std::vector<double> ps = {});

    int arity() const { return static_cast<int>(qubits.size()); }

    /** The 2^m x 2^m unitary of this gate (local to its qubits). */
    linalg::ComplexMatrix matrix() const;

    /**
     * A gate (or pair) implementing the inverse. Most kinds invert to a
     * single gate; U2 inverts to a U3.
     */
    std::vector<Gate> inverse() const;

    /** True when both act on the same qubits in the same order. */
    bool sameQubits(const Gate &other) const;

    /** True when the two gates share at least one qubit. */
    bool overlaps(const Gate &other) const;

    /** True when @p q is one of this gate's qubits. */
    bool actsOn(int q) const;

    /** "cx q0, q1" / "rz(0.5) q3" textual form. */
    std::string toString() const;

    bool operator==(const Gate &other) const;
};

/** Normalize an angle into (-π, π]. */
double normalizeAngle(double theta);

/** True when the angle is ~0 modulo 2π (gate acts as identity). */
bool isZeroAngle(double theta, double tol = 1e-12);

} // namespace ir
} // namespace guoq
