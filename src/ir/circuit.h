/**
 * @file
 * The circuit: an ordered list of gates over n qubits.
 *
 * Gates are stored in execution (topological) order; the DAG view in
 * dag/ is derived on demand. Convenience builders cover the gates the
 * workloads use so generator code reads like a circuit diagram.
 */

#pragma once

#include <string>
#include <vector>

#include "ir/gate.h"

namespace guoq {
namespace ir {

/**
 * The count metrics the cost objectives consume, gathered in one pass
 * (see Circuit::counts()); the rewrite engine keeps them incrementally
 * up to date across accepted passes.
 */
struct CircuitCounts
{
    std::size_t gates = 0;
    std::size_t twoQubit = 0; //!< gates of arity exactly 2
    std::size_t tGates = 0;   //!< T and T†

    bool operator==(const CircuitCounts &) const = default;
};

/** A quantum circuit: gate list plus qubit count. */
class Circuit
{
  public:
    Circuit() = default;
    explicit Circuit(int num_qubits);

    int numQubits() const { return numQubits_; }
    std::size_t size() const { return gates_.size(); }
    bool empty() const { return gates_.empty(); }

    const std::vector<Gate> &gates() const { return gates_; }
    std::vector<Gate> &gates() { return gates_; }
    const Gate &gate(std::size_t i) const { return gates_[i]; }

    /** Append a gate (validates qubit indices). */
    void add(Gate g);
    void add(GateKind kind, std::vector<int> qubits,
             std::vector<double> params = {});

    /** @name Builders (named after their OpenQASM mnemonics) */
    /** @{ */
    void h(int q) { add(GateKind::H, {q}); }
    void x(int q) { add(GateKind::X, {q}); }
    void y(int q) { add(GateKind::Y, {q}); }
    void z(int q) { add(GateKind::Z, {q}); }
    void s(int q) { add(GateKind::S, {q}); }
    void sdg(int q) { add(GateKind::Sdg, {q}); }
    void t(int q) { add(GateKind::T, {q}); }
    void tdg(int q) { add(GateKind::Tdg, {q}); }
    void sx(int q) { add(GateKind::SX, {q}); }
    void rx(double th, int q) { add(GateKind::Rx, {q}, {th}); }
    void ry(double th, int q) { add(GateKind::Ry, {q}, {th}); }
    void rz(double th, int q) { add(GateKind::Rz, {q}, {th}); }
    void u1(double lam, int q) { add(GateKind::U1, {q}, {lam}); }
    void u3(double th, double ph, double lam, int q)
    {
        add(GateKind::U3, {q}, {th, ph, lam});
    }
    void cx(int c, int t) { add(GateKind::CX, {c, t}); }
    void cz(int c, int t) { add(GateKind::CZ, {c, t}); }
    void swap(int a, int b) { add(GateKind::Swap, {a, b}); }
    void rxx(double th, int a, int b) { add(GateKind::Rxx, {a, b}, {th}); }
    void cp(double lam, int c, int t) { add(GateKind::CP, {c, t}, {lam}); }
    void ccx(int a, int b, int t) { add(GateKind::CCX, {a, b, t}); }
    void ccz(int a, int b, int c) { add(GateKind::CCZ, {a, b, c}); }
    /** @} */

    /** Append all gates of @p other (same qubit count required). */
    void append(const Circuit &other);

    /** @name Cost metrics (paper §5.1) */
    /** @{ */
    std::size_t gateCount() const { return gates_.size(); }
    std::size_t twoQubitGateCount() const;
    std::size_t tGateCount() const; //!< counts T and T†
    /** All of the above in a single pass over the gate list. */
    CircuitCounts counts() const;
    std::size_t countOf(GateKind kind) const;
    /** Circuit depth: longest dependency chain through shared qubits. */
    std::size_t depth() const;
    /** @} */

    /** The reversed circuit of inverse gates (C⁻¹). */
    Circuit inverse() const;

    /**
     * A copy with qubits renamed through @p mapping
     * (new_q = mapping[old_q]); used when splicing subcircuits.
     */
    Circuit remapped(const std::vector<int> &mapping, int new_num_qubits)
        const;

    /** The sorted list of qubits actually touched by gates. */
    std::vector<int> usedQubits() const;

    /** Multi-line listing (one gate per line). */
    std::string toString() const;

  private:
    int numQubits_ = 0;
    std::vector<Gate> gates_;
};

} // namespace ir
} // namespace guoq
