/**
 * @file
 * The gate vocabulary: every elementary operation used by the five
 * target gate sets (paper Table 2) and by the workload generators.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/complex_matrix.h"

namespace guoq {
namespace ir {

/**
 * Elementary gate kinds.
 *
 * Qubit-ordering convention: the first qubit a gate is applied to is
 * the most significant bit of its matrix index (so CX(control, target)
 * has the paper's U_CX matrix).
 */
enum class GateKind : std::uint8_t
{
    // 1-qubit fixed
    H,
    X,
    Y,
    Z,
    S,
    Sdg,
    T,
    Tdg,
    SX,
    SXdg,
    // 1-qubit parameterized
    Rx,   //!< Rx(θ)
    Ry,   //!< Ry(θ)
    Rz,   //!< Rz(θ)
    U1,   //!< U1(λ) = diag(1, e^{iλ})
    U2,   //!< U2(φ, λ)
    U3,   //!< U3(θ, φ, λ)
    // 2-qubit
    CX,   //!< controlled-NOT (control first)
    CZ,
    Swap,
    Rxx,  //!< exp(-i θ/2 X⊗X), the ion-trap entangler
    CP,   //!< controlled-phase diag(1,1,1,e^{iλ})
    // 3-qubit
    CCX,  //!< Toffoli
    CCZ,

    NumKinds
};

/** Number of qubits @p kind acts on. */
int gateArity(GateKind kind);

/** Number of real parameters (rotation angles). */
int gateParamCount(GateKind kind);

/** Lower-case mnemonic ("cx", "rz", ...; matches OpenQASM names). */
const std::string &gateName(GateKind kind);

/** Inverse lookup of gateName; returns false when unknown. */
bool gateKindFromName(const std::string &name, GateKind *out);

/** True for CX/CZ/Swap/Rxx/CP. */
bool isTwoQubitGate(GateKind kind);

/** True for Rx/Ry/Rz/U1/U2/U3/Rxx/CP. */
bool isParameterized(GateKind kind);

/** True for T/Tdg (the FTQC cost metric counts both). */
bool isTGate(GateKind kind);

/**
 * The 2^m x 2^m unitary of @p kind with @p params
 * (params.size() == gateParamCount(kind)).
 */
linalg::ComplexMatrix gateMatrix(GateKind kind,
                                 const std::vector<double> &params);

} // namespace ir
} // namespace guoq
