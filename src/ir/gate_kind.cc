#include "ir/gate_kind.h"

#include <array>
#include <cmath>
#include <unordered_map>

#include "support/logging.h"

namespace guoq {
namespace ir {

namespace {

constexpr int kNumKinds = static_cast<int>(GateKind::NumKinds);

struct KindInfo
{
    const char *name;
    int arity;
    int params;
};

constexpr std::array<KindInfo, kNumKinds> kInfo = {{
    {"h", 1, 0},    {"x", 1, 0},    {"y", 1, 0},    {"z", 1, 0},
    {"s", 1, 0},    {"sdg", 1, 0},  {"t", 1, 0},    {"tdg", 1, 0},
    {"sx", 1, 0},   {"sxdg", 1, 0}, {"rx", 1, 1},   {"ry", 1, 1},
    {"rz", 1, 1},   {"u1", 1, 1},   {"u2", 1, 2},   {"u3", 1, 3},
    {"cx", 2, 0},   {"cz", 2, 0},   {"swap", 2, 0}, {"rxx", 2, 1},
    {"cp", 2, 1},   {"ccx", 3, 0},  {"ccz", 3, 0},
}};

const KindInfo &
info(GateKind kind)
{
    const int i = static_cast<int>(kind);
    if (i < 0 || i >= kNumKinds)
        support::panic("bad GateKind");
    return kInfo[static_cast<std::size_t>(i)];
}

using linalg::Complex;
using linalg::ComplexMatrix;

const Complex kI(0, 1);

ComplexMatrix
mat1(Complex a, Complex b, Complex c, Complex d)
{
    return ComplexMatrix{{a, b}, {c, d}};
}

} // namespace

int gateArity(GateKind kind) { return info(kind).arity; }
int gateParamCount(GateKind kind) { return info(kind).params; }

const std::string &
gateName(GateKind kind)
{
    static std::array<std::string, kNumKinds> names = [] {
        std::array<std::string, kNumKinds> n;
        for (int i = 0; i < kNumKinds; ++i)
            n[static_cast<std::size_t>(i)] =
                kInfo[static_cast<std::size_t>(i)].name;
        return n;
    }();
    return names[static_cast<std::size_t>(kind)];
}

bool
gateKindFromName(const std::string &name, GateKind *out)
{
    static const std::unordered_map<std::string, GateKind> map = [] {
        std::unordered_map<std::string, GateKind> m;
        for (int i = 0; i < kNumKinds; ++i)
            m[kInfo[static_cast<std::size_t>(i)].name] =
                static_cast<GateKind>(i);
        return m;
    }();
    const auto it = map.find(name);
    if (it == map.end())
        return false;
    *out = it->second;
    return true;
}

bool
isTwoQubitGate(GateKind kind)
{
    return gateArity(kind) == 2;
}

bool
isParameterized(GateKind kind)
{
    return gateParamCount(kind) > 0;
}

bool
isTGate(GateKind kind)
{
    return kind == GateKind::T || kind == GateKind::Tdg;
}

ComplexMatrix
gateMatrix(GateKind kind, const std::vector<double> &params)
{
    if (static_cast<int>(params.size()) != gateParamCount(kind))
        support::panic(support::strcat("gateMatrix(", gateName(kind),
                                       "): want ", gateParamCount(kind),
                                       " params, got ", params.size()));
    const double isq = 1.0 / std::sqrt(2.0);
    switch (kind) {
      case GateKind::H:
        return mat1(isq, isq, isq, -isq);
      case GateKind::X:
        return mat1(0, 1, 1, 0);
      case GateKind::Y:
        return mat1(0, -kI, kI, 0);
      case GateKind::Z:
        return mat1(1, 0, 0, -1);
      case GateKind::S:
        return mat1(1, 0, 0, kI);
      case GateKind::Sdg:
        return mat1(1, 0, 0, -kI);
      case GateKind::T:
        return mat1(1, 0, 0, std::polar(1.0, M_PI / 4));
      case GateKind::Tdg:
        return mat1(1, 0, 0, std::polar(1.0, -M_PI / 4));
      case GateKind::SX:
        return mat1(Complex(0.5, 0.5), Complex(0.5, -0.5),
                    Complex(0.5, -0.5), Complex(0.5, 0.5));
      case GateKind::SXdg:
        return mat1(Complex(0.5, -0.5), Complex(0.5, 0.5),
                    Complex(0.5, 0.5), Complex(0.5, -0.5));
      case GateKind::Rx: {
        const double c = std::cos(params[0] / 2), s = std::sin(params[0] / 2);
        return mat1(c, -kI * s, -kI * s, c);
      }
      case GateKind::Ry: {
        const double c = std::cos(params[0] / 2), s = std::sin(params[0] / 2);
        return mat1(c, -s, s, c);
      }
      case GateKind::Rz:
        return mat1(std::polar(1.0, -params[0] / 2), 0, 0,
                    std::polar(1.0, params[0] / 2));
      case GateKind::U1:
        return mat1(1, 0, 0, std::polar(1.0, params[0]));
      case GateKind::U2: {
        const double phi = params[0], lam = params[1];
        return mat1(isq, -isq * std::polar(1.0, lam),
                    isq * std::polar(1.0, phi),
                    isq * std::polar(1.0, phi + lam));
      }
      case GateKind::U3: {
        const double th = params[0], phi = params[1], lam = params[2];
        const double c = std::cos(th / 2), s = std::sin(th / 2);
        return mat1(c, -s * std::polar(1.0, lam), s * std::polar(1.0, phi),
                    c * std::polar(1.0, phi + lam));
      }
      case GateKind::CX:
        return ComplexMatrix{{1, 0, 0, 0},
                             {0, 1, 0, 0},
                             {0, 0, 0, 1},
                             {0, 0, 1, 0}};
      case GateKind::CZ:
        return ComplexMatrix{{1, 0, 0, 0},
                             {0, 1, 0, 0},
                             {0, 0, 1, 0},
                             {0, 0, 0, -1}};
      case GateKind::Swap:
        return ComplexMatrix{{1, 0, 0, 0},
                             {0, 0, 1, 0},
                             {0, 1, 0, 0},
                             {0, 0, 0, 1}};
      case GateKind::Rxx: {
        const double c = std::cos(params[0] / 2), s = std::sin(params[0] / 2);
        ComplexMatrix m(4, 4);
        m(0, 0) = c;
        m(1, 1) = c;
        m(2, 2) = c;
        m(3, 3) = c;
        m(0, 3) = -kI * s;
        m(1, 2) = -kI * s;
        m(2, 1) = -kI * s;
        m(3, 0) = -kI * s;
        return m;
      }
      case GateKind::CP: {
        ComplexMatrix m = ComplexMatrix::identity(4);
        m(3, 3) = std::polar(1.0, params[0]);
        return m;
      }
      case GateKind::CCX: {
        ComplexMatrix m = ComplexMatrix::identity(8);
        m(6, 6) = 0;
        m(7, 7) = 0;
        m(6, 7) = 1;
        m(7, 6) = 1;
        return m;
      }
      case GateKind::CCZ: {
        ComplexMatrix m = ComplexMatrix::identity(8);
        m(7, 7) = -1;
        return m;
      }
      default:
        support::panic("gateMatrix: unhandled GateKind");
    }
}

} // namespace ir
} // namespace guoq
