#include "ir/gate.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/logging.h"

namespace guoq {
namespace ir {

Gate::Gate(GateKind k, std::vector<int> qs, std::vector<double> ps)
    : kind(k), qubits(std::move(qs)), params(std::move(ps))
{
    if (static_cast<int>(qubits.size()) != gateArity(kind))
        support::panic(support::strcat("Gate(", gateName(kind), "): want ",
                                       gateArity(kind), " qubits, got ",
                                       qubits.size()));
    if (static_cast<int>(params.size()) != gateParamCount(kind))
        support::panic(support::strcat("Gate(", gateName(kind), "): want ",
                                       gateParamCount(kind),
                                       " params, got ", params.size()));
}

linalg::ComplexMatrix
Gate::matrix() const
{
    return gateMatrix(kind, params);
}

std::vector<Gate>
Gate::inverse() const
{
    switch (kind) {
      case GateKind::H:
      case GateKind::X:
      case GateKind::Y:
      case GateKind::Z:
      case GateKind::CX:
      case GateKind::CZ:
      case GateKind::Swap:
      case GateKind::CCX:
      case GateKind::CCZ:
        return {*this};
      case GateKind::S:
        return {Gate(GateKind::Sdg, qubits)};
      case GateKind::Sdg:
        return {Gate(GateKind::S, qubits)};
      case GateKind::T:
        return {Gate(GateKind::Tdg, qubits)};
      case GateKind::Tdg:
        return {Gate(GateKind::T, qubits)};
      case GateKind::SX:
        return {Gate(GateKind::SXdg, qubits)};
      case GateKind::SXdg:
        return {Gate(GateKind::SX, qubits)};
      case GateKind::Rx:
      case GateKind::Ry:
      case GateKind::Rz:
      case GateKind::U1:
      case GateKind::Rxx:
      case GateKind::CP:
        return {Gate(kind, qubits, {-params[0]})};
      case GateKind::U2:
        // U2(φ,λ) = U3(π/2,φ,λ); U3(θ,φ,λ)⁻¹ = U3(-θ,-λ,-φ).
        return {Gate(GateKind::U3, qubits,
                     {-M_PI / 2, -params[1], -params[0]})};
      case GateKind::U3:
        return {Gate(GateKind::U3, qubits,
                     {-params[0], -params[2], -params[1]})};
      default:
        support::panic("Gate::inverse: unhandled kind");
    }
}

bool
Gate::sameQubits(const Gate &other) const
{
    return qubits == other.qubits;
}

bool
Gate::overlaps(const Gate &other) const
{
    for (int q : qubits)
        for (int p : other.qubits)
            if (q == p)
                return true;
    return false;
}

bool
Gate::actsOn(int q) const
{
    return std::find(qubits.begin(), qubits.end(), q) != qubits.end();
}

std::string
Gate::toString() const
{
    std::ostringstream os;
    os << gateName(kind);
    if (!params.empty()) {
        os << '(';
        for (std::size_t i = 0; i < params.size(); ++i) {
            if (i)
                os << ", ";
            os << params[i];
        }
        os << ')';
    }
    os << ' ';
    for (std::size_t i = 0; i < qubits.size(); ++i) {
        if (i)
            os << ", ";
        os << 'q' << qubits[i];
    }
    return os.str();
}

bool
Gate::operator==(const Gate &other) const
{
    if (kind != other.kind || qubits != other.qubits)
        return false;
    if (params.size() != other.params.size())
        return false;
    for (std::size_t i = 0; i < params.size(); ++i)
        if (std::abs(params[i] - other.params[i]) > 1e-12)
            return false;
    return true;
}

double
normalizeAngle(double theta)
{
    const double twoPi = 2 * M_PI;
    double t = std::fmod(theta, twoPi);
    if (t > M_PI)
        t -= twoPi;
    else if (t <= -M_PI)
        t += twoPi;
    return t;
}

bool
isZeroAngle(double theta, double tol)
{
    return std::abs(normalizeAngle(theta)) <= tol;
}

} // namespace ir
} // namespace guoq
