/**
 * @file
 * The five target gate sets of paper Table 2 and their registry.
 */

#pragma once

#include <string>
#include <vector>

#include "ir/gate_kind.h"

namespace guoq {
namespace ir {

/** Target gate sets (paper Table 2). */
enum class GateSetKind
{
    Ibmq20,    //!< U1, U2, U3, CX (superconducting)
    IbmEagle,  //!< Rz, SX, X, CX (superconducting)
    IonQ,      //!< Rx, Ry, Rz, Rxx (ion trap)
    Nam,       //!< Rz, H, X, CX (abstract, Nam et al.)
    CliffordT, //!< T, T†, S, S†, H, X, CX (fault tolerant)
};

/** All gate sets, in Table 2 order. */
const std::vector<GateSetKind> &allGateSets();

/** Display name ("ibmq20", "ibm-eagle", ...). */
const std::string &gateSetName(GateSetKind set);

/** Architecture column of Table 2. */
const std::string &gateSetArchitecture(GateSetKind set);

/** The native gate kinds of @p set. */
const std::vector<GateKind> &nativeGates(GateSetKind set);

/** True when @p kind is native to @p set. */
bool isNative(GateSetKind set, GateKind kind);

/** True when all gates of the circuit-level kind list are native. */
bool isFinite(GateSetKind set); //!< true only for Clifford+T

/**
 * The entangling (2-qubit) gate of @p set: CX everywhere except IonQ,
 * which uses Rxx.
 */
GateKind entanglingGate(GateSetKind set);

} // namespace ir
} // namespace guoq
