#include "ir/gate_set.h"

#include <algorithm>

#include "support/logging.h"

namespace guoq {
namespace ir {

const std::vector<GateSetKind> &
allGateSets()
{
    static const std::vector<GateSetKind> sets = {
        GateSetKind::Ibmq20, GateSetKind::IbmEagle, GateSetKind::IonQ,
        GateSetKind::Nam, GateSetKind::CliffordT,
    };
    return sets;
}

const std::string &
gateSetName(GateSetKind set)
{
    static const std::string names[] = {"ibmq20", "ibm-eagle", "ionq", "nam",
                                        "cliffordt"};
    return names[static_cast<int>(set)];
}

const std::string &
gateSetArchitecture(GateSetKind set)
{
    static const std::string archs[] = {"Superconducting", "Superconducting",
                                        "Ion Trap", "None",
                                        "Fault Tolerant"};
    return archs[static_cast<int>(set)];
}

const std::vector<GateKind> &
nativeGates(GateSetKind set)
{
    static const std::vector<GateKind> ibmq20 = {
        GateKind::U1, GateKind::U2, GateKind::U3, GateKind::CX};
    static const std::vector<GateKind> eagle = {
        GateKind::Rz, GateKind::SX, GateKind::X, GateKind::CX};
    static const std::vector<GateKind> ionq = {
        GateKind::Rx, GateKind::Ry, GateKind::Rz, GateKind::Rxx};
    static const std::vector<GateKind> nam = {
        GateKind::Rz, GateKind::H, GateKind::X, GateKind::CX};
    static const std::vector<GateKind> cliffordt = {
        GateKind::T, GateKind::Tdg, GateKind::S, GateKind::Sdg,
        GateKind::H, GateKind::X, GateKind::CX};
    switch (set) {
      case GateSetKind::Ibmq20:
        return ibmq20;
      case GateSetKind::IbmEagle:
        return eagle;
      case GateSetKind::IonQ:
        return ionq;
      case GateSetKind::Nam:
        return nam;
      case GateSetKind::CliffordT:
        return cliffordt;
    }
    support::panic("bad GateSetKind");
}

bool
isNative(GateSetKind set, GateKind kind)
{
    const auto &gates = nativeGates(set);
    return std::find(gates.begin(), gates.end(), kind) != gates.end();
}

bool
isFinite(GateSetKind set)
{
    return set == GateSetKind::CliffordT;
}

GateKind
entanglingGate(GateSetKind set)
{
    return set == GateSetKind::IonQ ? GateKind::Rxx : GateKind::CX;
}

} // namespace ir
} // namespace guoq
