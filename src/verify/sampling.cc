/**
 * @file
 * The `sampling` backend: a Hutchinson-style estimator of the HS
 * overlap x = |Tr(U†V)| / 2^n that never materializes a unitary.
 *
 * Each shot draws a Haar-random product state |ψ⟩ = ⊗_q |ψ_q⟩ (so
 * E[|ψ⟩⟨ψ|] = I/2^n), runs both circuits on it with sim::StateVector
 * (O(gates·2^n) work, two 2^n buffers), and records the complex value
 * ⟨C1ψ|C2ψ⟩, whose expectation is Tr(U†V)/2^n and whose modulus is
 * ≤ 1. The shot mean m gives the estimate Δ̂ = sqrt(1 − |m|²) and a
 * Hoeffding bound: each of Re/Im lies within t = sqrt(2·ln(4/δ)/S) of
 * its mean with total failure probability ≤ δ = 1 − confidence, so
 * |m| is within t·√2 of |Tr(U†V)|/2^n and the x-interval maps through
 * the decreasing Δ(x) = sqrt(1 − x²) to a distance interval.
 *
 * Determinism: the per-shot seeds are pre-drawn from the request seed
 * and the accumulation is a pairwise sum over the shot-indexed value
 * array, so a fixed seed gives a bit-identical estimate at any thread
 * count (pinned by tests/test_verify.cc).
 */

#include "verify/checker.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "sim/statevector.h"
#include "support/logging.h"
#include "support/rng.h"
#include "support/timer.h"

namespace guoq {
namespace verify {

namespace {

using linalg::Complex;

/** A Haar-random single-qubit state as the U3 angles rotating |0⟩
 *  onto it: cos θ uniform in [−1, 1], azimuth uniform in [0, 2π). */
ir::Gate
randomBlochGate(int qubit, support::Rng &rng)
{
    const double theta = std::acos(1.0 - 2.0 * rng.uniform());
    const double phi = rng.uniform(0, 2.0 * M_PI);
    return ir::Gate(ir::GateKind::U3, {qubit}, {theta, phi, 0.0});
}

/** One shot: ⟨C1ψ|C2ψ⟩ for a fresh random product state ψ. The prep
 *  is built as a circuit (one U3 per qubit) so it and both circuits
 *  run through StateVector's fused, cache-blocked circuit path. */
Complex
shotOverlap(const ir::Circuit &a, const ir::Circuit &b,
            std::uint64_t seed)
{
    support::Rng rng(seed);
    ir::Circuit prep(a.numQubits());
    for (int q = 0; q < a.numQubits(); ++q)
        prep.add(randomBlochGate(q, rng));
    sim::StateVector psi(a.numQubits());
    psi.apply(prep);
    sim::StateVector left = psi;
    left.apply(a);
    psi.apply(b);
    return left.innerProduct(psi);
}

/** Deterministic pairwise sum of vals[lo, hi): the same association
 *  order regardless of how many threads filled the array. */
Complex
pairwiseSum(const std::vector<Complex> &vals, std::size_t lo,
            std::size_t hi)
{
    if (hi - lo <= 8) {
        Complex acc = 0;
        for (std::size_t i = lo; i < hi; ++i)
            acc += vals[i];
        return acc;
    }
    const std::size_t mid = lo + (hi - lo) / 2;
    return pairwiseSum(vals, lo, mid) + pairwiseSum(vals, mid, hi);
}

class SamplingChecker final : public EquivalenceChecker
{
  public:
    const CheckerInfo &
    info() const override
    {
        static const CheckerInfo kInfo{
            "sampling",
            "HS overlap estimate via random product states"};
        return kInfo;
    }

    std::string
    checkRequest(const ir::Circuit &a, const ir::Circuit &b,
                 const VerifyRequest &req) const override
    {
        const std::string common =
            EquivalenceChecker::checkRequest(a, b, req);
        if (!common.empty())
            return common;
        if (a.numQubits() > kMaxSamplingQubits)
            return support::strcat(
                "sampling verification holds two 2^n statevectors and "
                "supports at most ",
                kMaxSamplingQubits, " qubits; the circuits have ",
                a.numQubits());
        return "";
    }

    VerifyReport
    run(const ir::Circuit &a, const ir::Circuit &b,
        const VerifyRequest &req) const override
    {
        support::Timer timer;
        const std::size_t shots = static_cast<std::size_t>(req.shots);

        // Pre-draw every shot's seed from one stream so the work
        // split across threads cannot change what any shot computes.
        std::vector<std::uint64_t> seeds(shots);
        support::Rng seeder(req.seed);
        for (std::uint64_t &s : seeds)
            s = seeder();

        std::vector<Complex> vals(shots);
        const std::size_t workers = std::min<std::size_t>(
            static_cast<std::size_t>(req.threads), shots);
        if (workers <= 1) {
            for (std::size_t i = 0; i < shots; ++i)
                vals[i] = shotOverlap(a, b, seeds[i]);
        } else {
            std::vector<std::thread> pool;
            pool.reserve(workers);
            for (std::size_t w = 0; w < workers; ++w) {
                // Blocked split: worker w covers [lo, hi).
                const std::size_t lo = shots * w / workers;
                const std::size_t hi = shots * (w + 1) / workers;
                pool.emplace_back([&, lo, hi] {
                    for (std::size_t i = lo; i < hi; ++i)
                        vals[i] = shotOverlap(a, b, seeds[i]);
                });
            }
            for (std::thread &t : pool)
                t.join();
        }

        const Complex mean =
            pairwiseSum(vals, 0, shots) / static_cast<double>(shots);
        const double x = std::min(std::abs(mean), 1.0);

        // Hoeffding over the two components, each in [−1, 1]: with
        // per-component deviation t, both hold except with
        // probability δ, so |mean − E| ≤ t·√2.
        const double delta = 1.0 - req.confidence;
        const double t = std::sqrt(
            2.0 * std::log(4.0 / delta) / static_cast<double>(shots));
        const double ex = t * std::sqrt(2.0);
        const double x_lo = std::max(0.0, x - ex);
        const double x_hi = std::min(1.0, x + ex);

        // Δ(x) = sqrt(1 − x²) is decreasing, so the x-interval's ends
        // swap into [d_lo, d_hi] around the point estimate.
        const double dist = std::sqrt(std::max(0.0, 1.0 - x * x));
        const double d_lo = std::sqrt(std::max(0.0, 1.0 - x_hi * x_hi));
        const double d_hi = std::sqrt(std::max(0.0, 1.0 - x_lo * x_lo));

        VerifyReport report;
        report.method = info().name;
        report.distanceEstimate = dist;
        report.bound = std::max(d_hi - dist, dist - d_lo);
        report.confidence = req.confidence;
        report.shots = req.shots;
        report.verdict = verdictFor(dist, report.bound, req);
        report.wallSeconds = timer.seconds();
        return report;
    }
};

} // namespace

void
registerSamplingChecker(CheckerRegistry &r)
{
    r.add(std::make_unique<SamplingChecker>());
}

} // namespace verify
} // namespace guoq
