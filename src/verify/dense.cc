/**
 * @file
 * The `dense` backend: the exact Hilbert–Schmidt distance via full
 * 2^n unitaries — sim::circuitDistance behind the checker interface,
 * so its numbers are bit-for-bit the legacy --verify/test-oracle
 * values (pinned by tests/test_verify.cc). O(4^n) memory; refuses
 * circuits wider than sim::kMaxUnitaryQubits.
 */

#include "verify/checker.h"

#include "sim/unitary_sim.h"
#include "support/logging.h"
#include "support/timer.h"

namespace guoq {
namespace verify {

namespace {

class DenseChecker final : public EquivalenceChecker
{
  public:
    const CheckerInfo &
    info() const override
    {
        static const CheckerInfo kInfo{
            "dense", "exact HS distance via full 2^n unitaries"};
        return kInfo;
    }

    std::string
    checkRequest(const ir::Circuit &a, const ir::Circuit &b,
                 const VerifyRequest &req) const override
    {
        const std::string common =
            EquivalenceChecker::checkRequest(a, b, req);
        if (!common.empty())
            return common;
        if (a.numQubits() > sim::kMaxUnitaryQubits)
            return support::strcat(
                "dense verification builds the full 2^n unitary and "
                "supports at most ",
                sim::kMaxUnitaryQubits, " qubits; the circuits have ",
                a.numQubits(), " (use the sampling or auto method)");
        return "";
    }

    VerifyReport
    run(const ir::Circuit &a, const ir::Circuit &b,
        const VerifyRequest &req) const override
    {
        support::Timer timer;
        VerifyReport report;
        report.method = info().name;
        report.distanceEstimate = sim::circuitDistance(a, b);
        report.bound = 0;
        report.confidence = 1.0;
        report.shots = 0;
        report.verdict = verdictFor(report.distanceEstimate, 0, req);
        report.wallSeconds = timer.seconds();
        return report;
    }
};

} // namespace

void
registerDenseChecker(CheckerRegistry &r)
{
    r.add(std::make_unique<DenseChecker>());
}

} // namespace verify
} // namespace guoq
