#include "verify/checker.h"

#include <cmath>

#include "support/logging.h"

namespace guoq {
namespace verify {

const char *
verdictName(Verdict v)
{
    return v == Verdict::Equivalent ? "equivalent" : "inequivalent";
}

Verdict
verdictFor(double estimate, double bound, const VerifyRequest &req)
{
    return estimate - bound > req.epsilon + req.tolerance
               ? Verdict::Inequivalent
               : Verdict::Equivalent;
}

std::string
EquivalenceChecker::checkRequest(const ir::Circuit &a,
                                 const ir::Circuit &b,
                                 const VerifyRequest &req) const
{
    if (a.numQubits() != b.numQubits())
        return support::strcat("qubit count mismatch (", a.numQubits(),
                               " vs ", b.numQubits(), ")");
    if (!(req.epsilon >= 0) || !std::isfinite(req.epsilon))
        return "epsilon must be a finite value >= 0";
    if (req.shots < 1)
        return "shots must be >= 1";
    if (!(req.confidence > 0) || !(req.confidence < 1))
        return "confidence must be in (0, 1)";
    if (req.threads < 1 || req.threads > 1024)
        return "threads must be in [1, 1024]";
    return "";
}

void
CheckerRegistry::add(std::unique_ptr<EquivalenceChecker> c)
{
    if (find(c->info().name))
        support::panic("CheckerRegistry: duplicate checker '" +
                       c->info().name + "'");
    checkers_.push_back(std::move(c));
}

const EquivalenceChecker *
CheckerRegistry::find(const std::string &name) const
{
    for (const auto &c : checkers_)
        if (c->info().name == name)
            return c.get();
    return nullptr;
}

std::vector<const EquivalenceChecker *>
CheckerRegistry::all() const
{
    std::vector<const EquivalenceChecker *> out;
    out.reserve(checkers_.size());
    for (const auto &c : checkers_)
        out.push_back(c.get());
    return out;
}

std::vector<std::string>
CheckerRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(checkers_.size());
    for (const auto &c : checkers_)
        out.push_back(c->info().name);
    return out;
}

const CheckerRegistry &
CheckerRegistry::global()
{
    // Built on first use (thread-safe magic static) rather than by
    // static registrars, for the same archive-member-elision reason as
    // OptimizerRegistry::global().
    static const CheckerRegistry *registry = [] {
        auto *r = new CheckerRegistry;
        registerDenseChecker(*r);
        registerSamplingChecker(*r);
        registerAutoChecker(*r);
        return r;
    }();
    return *registry;
}

VerifyReport
verifyEquivalence(const ir::Circuit &a, const ir::Circuit &b,
                  const VerifyRequest &req)
{
    // panic, not fatal: reaching here with an unknown method or an
    // unrunnable request is a caller contract violation (front ends
    // validate before dispatch), and library code on the --serve
    // worker path must never turn a bad request into process exit.
    const EquivalenceChecker *c = CheckerRegistry::global().find(req.method);
    if (!c)
        support::panic("verifyEquivalence: unknown method '" +
                       req.method + "'");
    const std::string err = c->checkRequest(a, b, req);
    if (!err.empty())
        support::panic("verifyEquivalence: " + err);
    return c->run(a, b, req);
}

namespace {

/** Width-based dispatch: dense where it fits, sampling above. */
class AutoChecker final : public EquivalenceChecker
{
  public:
    AutoChecker(const EquivalenceChecker *dense,
                const EquivalenceChecker *sampling)
        : dense_(dense), sampling_(sampling)
    {
    }

    const CheckerInfo &
    info() const override
    {
        static const CheckerInfo kInfo{
            "auto", "dense up to 10 qubits, sampling above"};
        return kInfo;
    }

    std::string
    checkRequest(const ir::Circuit &a, const ir::Circuit &b,
                 const VerifyRequest &req) const override
    {
        return pick(a)->checkRequest(a, b, req);
    }

    VerifyReport
    run(const ir::Circuit &a, const ir::Circuit &b,
        const VerifyRequest &req) const override
    {
        // The report's `method` names the backend that actually ran,
        // so consumers (batch JSON, CLI) see the policy's choice.
        return pick(a)->run(a, b, req);
    }

  private:
    const EquivalenceChecker *
    pick(const ir::Circuit &a) const
    {
        return a.numQubits() <= kDenseAutoMaxQubits ? dense_ : sampling_;
    }

    const EquivalenceChecker *dense_;
    const EquivalenceChecker *sampling_;
};

} // namespace

void
registerAutoChecker(CheckerRegistry &r)
{
    const EquivalenceChecker *dense = r.find("dense");
    const EquivalenceChecker *sampling = r.find("sampling");
    if (!dense || !sampling)
        support::panic("registerAutoChecker: register dense and "
                       "sampling first");
    r.add(std::make_unique<AutoChecker>(dense, sampling));
}

} // namespace verify
} // namespace guoq
