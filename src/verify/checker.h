/**
 * @file
 * The polymorphic equivalence-verification layer: one request/report
 * shape for every way of checking Δ(U_C1, U_C2) ≤ ε (paper Def. 3.3),
 * behind a string-keyed registry mirroring core::OptimizerRegistry.
 *
 * The paper's ε_f guarantee is only as credible as the ability to
 * check it, and the check must scale with the circuits: the `dense`
 * backend reproduces sim::circuitDistance bit-for-bit but builds the
 * full 2^n unitary (O(4^n) memory, ≤ kMaxUnitaryQubits), while the
 * `sampling` backend estimates the Hilbert–Schmidt overlap
 * Tr(U†V)/2^n Hutchinson-style — apply both circuits to common random
 * product states via sim::StateVector (O(gates·2^n) per shot,
 * memory-light) and average ⟨C1ψ|C2ψ⟩ over shots — so 20+-qubit
 * results become verifiable. The `auto` policy picks dense up to
 * kDenseAutoMaxQubits and sampling above.
 *
 * Sampling reports a Hoeffding-style confidence bound: with
 * probability ≥ `confidence` the true distance lies within `bound` of
 * `distanceEstimate`. The shot loop is std::thread-parallel, and a
 * fixed seed yields bit-identical estimates at any thread count
 * (per-shot seeds are pre-drawn and the accumulation is a
 * deterministic pairwise sum over the shot-indexed values).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/circuit.h"

namespace guoq {
namespace verify {

/** `auto` hands circuits up to this width to the dense backend. */
constexpr int kDenseAutoMaxQubits = 10;

/** Sampling cap: two sim::StateVector buffers per in-flight shot. */
constexpr int kMaxSamplingQubits = 24;

/** What every checker consumes: the check's budget and resources. */
struct VerifyRequest
{
    /** The distance budget ε the pair is checked against. */
    double epsilon = 0;

    /** Slack added to epsilon in the verdict (a numeric noise floor;
     *  callers preserving a strict `distance > epsilon` test leave
     *  it 0). */
    double tolerance = 0;

    /** Shots for sampling backends (ignored by dense). */
    long shots = 1024;

    /** Confidence level of the reported bound, in (0, 1). */
    double confidence = 0.99;

    /** RNG seed; a fixed seed reproduces the estimate exactly. */
    std::uint64_t seed = 1;

    /** Worker threads for the shot loop (never changes the result). */
    int threads = 1;

    /** Registry name for verifyEquivalence() dispatch:
     *  "auto" | "dense" | "sampling". */
    std::string method = "auto";
};

/** The conclusion of a check under its request's budget. */
enum class Verdict
{
    /** Consistent with Δ ≤ ε at the reported bound/confidence. */
    Equivalent,
    /** Δ exceeds ε by more than the bound: rejected at confidence. */
    Inequivalent,
};

/** "equivalent" / "inequivalent" (report and JSON spelling). */
const char *verdictName(Verdict v);

/** What every checker produces. */
struct VerifyReport
{
    /** Backend that actually ran ("dense"/"sampling"; `auto` reports
     *  its choice). Empty = no verification was performed. */
    std::string method;

    /** Δ estimate: exact for dense, the sampled estimate otherwise. */
    double distanceEstimate = 0;

    /** Half-width of the confidence interval: the true distance lies
     *  in [max(0, est − bound), min(1, est + bound)] with probability
     *  ≥ `confidence`. 0 for exact (dense) checks. */
    double bound = 0;

    /** Confidence the bound holds (1 for exact checks). */
    double confidence = 1.0;

    /** Shots actually spent (0 for dense). */
    long shots = 0;

    /** Wall-clock seconds of the check. */
    double wallSeconds = 0;

    /** The conclusion under the request's epsilon + tolerance. */
    Verdict verdict = Verdict::Equivalent;
};

/** Self-description of a registered checker. */
struct CheckerInfo
{
    std::string name;    //!< registry key, e.g. "sampling"
    std::string summary; //!< one-line description
};

/** The polymorphic equivalence-checker interface. */
class EquivalenceChecker
{
  public:
    virtual ~EquivalenceChecker() = default;

    /** Name and summary. */
    virtual const CheckerInfo &info() const = 0;

    /**
     * Validate that this checker can run @p req on the pair: common
     * request sanity (qubit-count match, shots/confidence/threads
     * ranges) plus backend capacity (dense refuses
     * > sim::kMaxUnitaryQubits, sampling > kMaxSamplingQubits).
     * Returns "" when runnable, a diagnostic otherwise. run() on an
     * invalid request is a fatal error.
     */
    virtual std::string checkRequest(const ir::Circuit &a,
                                     const ir::Circuit &b,
                                     const VerifyRequest &req) const;

    /** Check @p a against @p b under @p req. */
    virtual VerifyReport run(const ir::Circuit &a, const ir::Circuit &b,
                             const VerifyRequest &req) const = 0;
};

/** String-keyed collection of checkers (mirrors OptimizerRegistry). */
class CheckerRegistry
{
  public:
    CheckerRegistry() = default;

    /** Register @p c under its info().name (fatal on duplicates). */
    void add(std::unique_ptr<EquivalenceChecker> c);

    /** The checker named @p name, or nullptr. */
    const EquivalenceChecker *find(const std::string &name) const;

    /** All checkers, in registration order. */
    std::vector<const EquivalenceChecker *> all() const;

    /** All registry keys, in registration order. */
    std::vector<std::string> names() const;

    /**
     * The process-wide registry: "dense", "sampling", "auto". Built on
     * first use; thread-safe.
     */
    static const CheckerRegistry &global();

  private:
    std::vector<std::unique_ptr<EquivalenceChecker>> checkers_;
};

/**
 * One-call convenience: resolve @p req.method through
 * CheckerRegistry::global(), validate, and run. Panics on an unknown
 * method or an unrunnable request — a caller contract violation, not
 * a user error (callers wanting a recoverable path resolve the
 * checker themselves and branch on checkRequest()).
 */
VerifyReport verifyEquivalence(const ir::Circuit &a, const ir::Circuit &b,
                               const VerifyRequest &req);

/**
 * The verdict an estimate ± bound supports under @p req: Inequivalent
 * iff estimate − bound > epsilon + tolerance (the whole confidence
 * interval sits above the budget), Equivalent otherwise.
 */
Verdict verdictFor(double estimate, double bound,
                   const VerifyRequest &req);

/** Registers "dense" (verify/dense.cc). */
void registerDenseChecker(CheckerRegistry &r);

/** Registers "sampling" (verify/sampling.cc). */
void registerSamplingChecker(CheckerRegistry &r);

/** Registers "auto" over previously registered dense + sampling
 *  (verify/checker.cc; fatal if either is missing). */
void registerAutoChecker(CheckerRegistry &r);

} // namespace verify
} // namespace guoq
