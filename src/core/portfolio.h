/**
 * @file
 * Parallel portfolio search: N independently-seeded GUOQ instances on
 * worker threads sharing one wall-clock budget.
 *
 * GUOQ is an anytime randomized search, so its solution quality scales
 * with independent restarts; the portfolio turns that into a multi-core
 * optimizer. Workers run core::optimize() in short slices, publish
 * improvements to a shared global best between slices, and adopt
 * the global best when another worker has pulled ahead. The behind-
 * the-best check runs lock-free against an atomic best-cost mirror
 * and a publication epoch; the mutex is taken only to copy circuits,
 * so the exchange scales to high thread counts. The returned
 * circuit still satisfies Thm. 5.3 (C ≡_{ε_f} best): every adopted
 * circuit carries its accumulated ε, and each slice only spends what
 * remains of the budget.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "core/guoq.h"
#include "ir/circuit.h"
#include "ir/gate_set.h"

namespace guoq {
namespace core {

/** Configuration for a portfolio run. */
struct PortfolioConfig
{
    /**
     * Per-worker GUOQ configuration. `base.seed` seeds worker 0;
     * worker i > 0 derives an independent stream from it. The time and
     * iteration budgets are per worker (all workers run concurrently,
     * so `base.timeBudgetSeconds` is also the portfolio's wall-clock
     * budget). `base.hooks` is portfolio-aware: the cancellation token
     * is polled inside every worker's search loop and at slice
     * boundaries, and onBest fires (serialized, possibly from worker
     * threads) only for portfolio-wide best-cost improvements, stamped
     * with the finding worker and the portfolio clock.
     */
    GuoqConfig base;

    /** Worker thread count. 1 reduces to a plain core::optimize(). */
    int threads = 1;

    /**
     * Seconds between global-best exchanges. Workers slice their time
     * budget into intervals of this length and synchronize at slice
     * boundaries. Ignored in iteration-capped runs (maxIterations >=
     * 0), which run each worker as a single slice so results stay
     * reproducible.
     */
    double syncIntervalSeconds = 0.5;

    /**
     * When true (default), a worker whose current circuit is worse
     * than the global best abandons it and continues from the global
     * best. When false workers stay fully independent (pure restart
     * portfolio) and only the final reduction picks the winner.
     */
    bool exchangeBest = true;
};

/** Final state of one worker, for reporting and tests. */
struct PortfolioWorkerReport
{
    int worker = 0;
    std::uint64_t seed = 0;   //!< seed of the worker's first slice
    double finalCost = 0;     //!< cost of the worker's last circuit
    double errorBound = 0;    //!< accumulated ε of that circuit
    double wallSeconds = 0;   //!< worker wall-clock time, thread start
                              //!< to join (the benchmark emitters
                              //!< report per-worker timing from this)
    GuoqStats stats;          //!< summed over the worker's slices
};

/** Result of optimizePortfolio(). */
struct PortfolioResult
{
    ir::Circuit best;
    double bestCost = 0;
    double errorBound = 0;   //!< accumulated ε of `best`
    int winningWorker = 0;   //!< worker that first reached `bestCost`
    GuoqStats stats;         //!< merged: counters summed over workers,
                             //!< `seconds` = portfolio wall-clock time
    std::vector<PortfolioWorkerReport> workers;
    /**
     * Best-cost-over-time trace when cfg.base.recordTrace is set.
     * threads == 1 passes the single optimize() run's trace through
     * unchanged. threads > 1 merges the per-worker slice traces into
     * one portfolio-level trajectory: points are time-sorted on the
     * portfolio clock (seconds since the run started), the first point
     * is the input circuit at t = 0, and every later point is a
     * *strict* portfolio-wide cost improvement (monotone decreasing),
     * regardless of which worker found it.
     */
    std::vector<TracePoint> trace;
};

/** The seed worker @p worker uses for its first slice. */
std::uint64_t portfolioWorkerSeed(std::uint64_t base_seed, int worker);

/**
 * Run a parallel portfolio of GUOQ instances on @p c targeting @p set.
 *
 * With cfg.threads == 1 this is exactly core::optimize(cfg.base): same
 * seed, same single search trajectory, same result. With more threads
 * each worker searches independently from its own seed and the best
 * circuit across all workers is returned; the result is never worse
 * (by cfg.base.objective) than any single worker's, and in particular
 * never worse than the input.
 */
PortfolioResult optimizePortfolio(const ir::Circuit &c,
                                  ir::GateSetKind set,
                                  const PortfolioConfig &cfg);

} // namespace core
} // namespace guoq
