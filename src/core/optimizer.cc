#include "core/optimizer.h"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

#include "support/logging.h"

namespace guoq {
namespace core {

const char *
paramKindName(ParamSpec::Kind kind)
{
    switch (kind) {
    case ParamSpec::Kind::Double: return "number";
    case ParamSpec::Kind::Int: return "integer";
    case ParamSpec::Kind::Bool: return "bool";
    }
    return "value";
}

namespace {

bool
parseDoubleStrict(const std::string &v, double &out)
{
    if (v.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(v.c_str(), &end);
    return end && *end == '\0' && std::isfinite(out);
}

bool
parseLongStrict(const std::string &v, long &out)
{
    if (v.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    out = std::strtol(v.c_str(), &end, 10);
    // ERANGE would otherwise clamp to LONG_MIN/MAX and pass the
    // "fail loudly" validation with a silently garbled value.
    return end && *end == '\0' && errno != ERANGE;
}

bool
parseBoolStrict(const std::string &v, bool &out)
{
    if (v == "true" || v == "1") {
        out = true;
        return true;
    }
    if (v == "false" || v == "0") {
        out = false;
        return true;
    }
    return false;
}

bool
valueParses(ParamSpec::Kind kind, const std::string &v)
{
    double d;
    long l;
    bool b;
    switch (kind) {
    case ParamSpec::Kind::Double: return parseDoubleStrict(v, d);
    case ParamSpec::Kind::Int:
        // Every declared Int param lands in an int-width knob; a
        // value that narrows is as wrong as one that doesn't parse.
        return parseLongStrict(v, l) && l >= INT_MIN && l <= INT_MAX;
    case ParamSpec::Kind::Bool: return parseBoolStrict(v, b);
    }
    return false;
}

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> prev(b.size() + 1), curr(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        curr[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, sub});
        }
        std::swap(prev, curr);
    }
    return prev[b.size()];
}

} // namespace

std::string
closestName(const std::string &name,
            const std::vector<std::string> &candidates)
{
    std::string best;
    std::size_t best_d = 4; // suggestions beyond distance 3 mislead
    for (const std::string &c : candidates) {
        // One name being a prefix of the other ("qiskit" for
        // "qiskit-like") is as strong a signal as a near-typo.
        const bool prefix = !name.empty() &&
                            (c.compare(0, name.size(), name) == 0 ||
                             name.compare(0, c.size(), c) == 0);
        const std::size_t d = prefix ? 1 : editDistance(name, c);
        if (d < best_d) {
            best_d = d;
            best = c;
        }
    }
    return best;
}

std::string
checkParams(const OptimizerInfo &info, const ParamMap &params)
{
    std::vector<std::string> keys;
    keys.reserve(info.params.size());
    for (const ParamSpec &p : info.params)
        keys.push_back(p.key);

    for (const auto &[key, value] : params) {
        const auto it = std::find_if(
            info.params.begin(), info.params.end(),
            [&key](const ParamSpec &p) { return p.key == key; });
        if (it == info.params.end()) {
            std::string msg = support::strcat(
                "unknown parameter '", key, "' for algorithm '",
                info.name, "'");
            const std::string guess = closestName(key, keys);
            if (!guess.empty())
                msg += support::strcat(" (did you mean '", guess, "'?)");
            if (keys.empty()) {
                msg += "; it takes no parameters";
            } else {
                msg += "; known parameters:";
                for (const std::string &k : keys)
                    msg += support::strcat(" ", k);
            }
            return msg;
        }
        if (!valueParses(it->kind, value))
            return support::strcat("parameter '", key, "' of '",
                                   info.name, "' expects a ",
                                   paramKindName(it->kind), ", got '",
                                   value, "'");
    }
    return "";
}

double
paramDouble(const ParamMap &params, const std::string &key,
            double fallback)
{
    const auto it = params.find(key);
    if (it == params.end())
        return fallback;
    double out;
    if (!parseDoubleStrict(it->second, out))
        support::fatal(support::strcat("param ", key, ": bad number '",
                                       it->second, "'"));
    return out;
}

long
paramLong(const ParamMap &params, const std::string &key, long fallback)
{
    const auto it = params.find(key);
    if (it == params.end())
        return fallback;
    long out;
    if (!parseLongStrict(it->second, out))
        support::fatal(support::strcat("param ", key, ": bad integer '",
                                       it->second, "'"));
    return out;
}

bool
paramBool(const ParamMap &params, const std::string &key, bool fallback)
{
    const auto it = params.find(key);
    if (it == params.end())
        return fallback;
    bool out;
    if (!parseBoolStrict(it->second, out))
        support::fatal(support::strcat("param ", key, ": bad bool '",
                                       it->second,
                                       "' (use true/false/1/0)"));
    return out;
}

std::string
Optimizer::checkRequest(const OptimizeRequest &req) const
{
    return checkParams(info(), req.params);
}

void
OptimizerRegistry::add(std::unique_ptr<Optimizer> opt)
{
    const std::string &name = opt->info().name;
    if (find(name))
        support::fatal(
            support::strcat("optimizer '", name, "' registered twice"));
    optimizers_.push_back(std::move(opt));
}

const Optimizer *
OptimizerRegistry::find(const std::string &name) const
{
    for (const auto &opt : optimizers_)
        if (opt->info().name == name)
            return opt.get();
    return nullptr;
}

std::vector<const Optimizer *>
OptimizerRegistry::all() const
{
    std::vector<const Optimizer *> out;
    out.reserve(optimizers_.size());
    for (const auto &opt : optimizers_)
        out.push_back(opt.get());
    return out;
}

std::vector<std::string>
OptimizerRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(optimizers_.size());
    for (const auto &opt : optimizers_)
        out.push_back(opt->info().name);
    return out;
}

const OptimizerRegistry &
OptimizerRegistry::global()
{
    // Built on first use (thread-safe magic static) rather than by
    // static registrars: the registrar idiom silently loses entries to
    // archive-member elision when the library is linked statically.
    static const OptimizerRegistry *registry = [] {
        auto *r = new OptimizerRegistry;
        registerGuoqOptimizers(*r);
        registerBaselineOptimizers(*r);
        return r;
    }();
    return *registry;
}

// --- the GUOQ family -------------------------------------------------

namespace {

/**
 * GUOQ and its Q2/Q3 ablations behind the interface. threads > 1 runs
 * the parallel portfolio; threads == 1 with default params is
 * bit-for-bit core::optimize() (the portfolio's single-thread
 * passthrough), which the determinism tests pin down.
 */
class GuoqFamilyOptimizer : public Optimizer
{
  public:
    GuoqFamilyOptimizer(std::string name, std::string summary,
                        TransformSelection selection)
        : selection_(selection)
    {
        info_.name = std::move(name);
        info_.summary = std::move(summary);
        using K = ParamSpec::Kind;
        info_.params = {
            {"temperature", K::Double,
             "Metropolis acceptance temperature t", "10"},
            {"resynth-prob", K::Double,
             "probability of sampling resynthesis", "0.015"},
            {"max-subcircuit-qubits", K::Int,
             "subcircuit qubit cap for resynthesis", "3"},
            {"resynth-call-seconds", K::Double,
             "wall-clock cap per synthesis call", "1"},
            {"resynth-call-epsilon", K::Double,
             "nominal eps per resynthesis call (<=0: auto)", "-1"},
            {"synth-workers", K::Int,
             "async resynthesis workers (0 = synchronous)", "0"},
            {"async-resynth", K::Bool,
             "deprecated alias for synth-workers=1", "false"},
            {"trace", K::Bool, "record a best-cost-over-time trace",
             "false"},
            {"sync-interval", K::Double,
             "seconds between portfolio best exchanges", "0.5"},
            {"exchange-best", K::Bool,
             "portfolio workers adopt the global best", "true"},
        };
    }

    const OptimizerInfo &info() const override { return info_; }

    std::string
    checkRequest(const OptimizeRequest &req) const override
    {
        std::string err = Optimizer::checkRequest(req);
        // Surface optimize()'s resynth-only fatal() as a validation
        // error a driver can report cleanly (usage error, not abort).
        if (err.empty() &&
            selection_ == TransformSelection::ResynthOnly &&
            !(req.epsilonTotal > 0))
            err = support::strcat(
                "algorithm '", info_.name,
                "' requires an approximation budget (epsilon > 0): "
                "resynthesis-only optimization has no exact moves");
        if (err.empty() &&
            paramLong(req.params, "synth-workers", 0) < 0)
            err = support::strcat("parameter 'synth-workers' of '",
                                  info_.name, "' must be >= 0");
        return err;
    }

    OptimizeReport
    run(const ir::Circuit &c, const OptimizeRequest &req) const override
    {
        PortfolioConfig cfg;
        cfg.base.epsilonTotal = req.epsilonTotal;
        cfg.base.objective = req.objective;
        cfg.base.timeBudgetSeconds = req.timeBudgetSeconds;
        cfg.base.maxIterations = req.maxIterations;
        cfg.base.seed = req.seed;
        cfg.base.selection = selection_;
        cfg.base.hooks = req.hooks;
        cfg.base.temperature =
            paramDouble(req.params, "temperature", cfg.base.temperature);
        cfg.base.resynthProbability = paramDouble(
            req.params, "resynth-prob", cfg.base.resynthProbability);
        cfg.base.maxSubcircuitQubits = static_cast<int>(
            paramLong(req.params, "max-subcircuit-qubits",
                      cfg.base.maxSubcircuitQubits));
        cfg.base.resynthCallSeconds =
            paramDouble(req.params, "resynth-call-seconds",
                        cfg.base.resynthCallSeconds);
        cfg.base.resynthCallEpsilon =
            paramDouble(req.params, "resynth-call-epsilon",
                        cfg.base.resynthCallEpsilon);
        cfg.base.synthWorkers = static_cast<int>(paramLong(
            req.params, "synth-workers", cfg.base.synthWorkers));
        if (req.params.count("async-resynth") != 0) {
            static std::once_flag warned;
            std::call_once(warned, [] {
                std::fprintf(stderr,
                             "guoq: warning: parameter 'async-resynth' "
                             "is deprecated; use 'synth-workers' "
                             "(N workers, 0 = synchronous)\n");
            });
            if (paramBool(req.params, "async-resynth", false) &&
                cfg.base.synthWorkers == 0)
                cfg.base.synthWorkers = 1;
        }
        cfg.base.recordTrace =
            paramBool(req.params, "trace", cfg.base.recordTrace);
        cfg.threads = req.threads;
        cfg.syncIntervalSeconds = paramDouble(
            req.params, "sync-interval", cfg.syncIntervalSeconds);
        cfg.exchangeBest =
            paramBool(req.params, "exchange-best", cfg.exchangeBest);

        PortfolioResult r = optimizePortfolio(c, req.set, cfg);
        OptimizeReport report;
        report.algorithm = info_.name;
        report.circuit = std::move(r.best);
        report.cost = r.bestCost;
        report.errorBound = r.errorBound;
        report.stats = r.stats;
        report.trace = std::move(r.trace);
        report.workers = std::move(r.workers);
        return report;
    }

  private:
    OptimizerInfo info_;
    TransformSelection selection_;
};

} // namespace

void
registerGuoqOptimizers(OptimizerRegistry &r)
{
    r.add(std::make_unique<GuoqFamilyOptimizer>(
        "guoq",
        "GUOQ: randomized interleaving of rewrites and resynthesis "
        "(Alg. 1); threads>1 runs the parallel portfolio",
        TransformSelection::Combined));
    r.add(std::make_unique<GuoqFamilyOptimizer>(
        "guoq-rewrite",
        "GUOQ-REWRITE ablation: rewrite rules only (Q2), exact",
        TransformSelection::RewriteOnly));
    r.add(std::make_unique<GuoqFamilyOptimizer>(
        "guoq-resynth",
        "GUOQ-RESYNTH ablation: resynthesis only (Q2); requires "
        "epsilon > 0",
        TransformSelection::ResynthOnly));
}

} // namespace core
} // namespace guoq
