#include "core/guoq.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <future>
#include <utility>
#include <vector>

#include "dag/subcircuit.h"
#include "support/logging.h"
#include "support/timer.h"
#include "synth/service.h"

namespace guoq {
namespace core {

namespace {

/** One in-flight asynchronous resynthesis call. */
struct PendingResynth
{
    std::future<synth::SynthOutcome> future;
    ir::Circuit snapshot;            //!< circuit at launch time
    dag::SubcircuitSelection selection;
};

/** Effective per-call resynthesis ε (see GuoqConfig). */
double
perCallEpsilon(const GuoqConfig &cfg)
{
    if (cfg.resynthCallEpsilon > 0)
        return cfg.resynthCallEpsilon;
    // Floor of 3e-7: below that the HS metric's machine-epsilon noise
    // (~1e-8 after the sqrt) dominates and validation gets flaky.
    return std::max(cfg.epsilonTotal / 16.0, 3e-7);
}

} // namespace

GuoqResult
optimize(const ir::Circuit &c, ir::GateSetKind set, const GuoqConfig &cfg)
{
    support::Timer timer;
    const support::Deadline deadline =
        support::Deadline::in(cfg.timeBudgetSeconds);
    support::Rng rng(cfg.seed);
    const CostFunction cost(cfg.objective, set);

    // ε_f = 0 disables approximate transformations entirely: the exact
    // transformations alone keep the run at ε = 0 (Thm. 5.3).
    TransformSelection selection = cfg.selection;
    const bool allow_resynth = cfg.epsilonTotal > 0;
    if (!allow_resynth && selection == TransformSelection::Combined)
        selection = TransformSelection::RewriteOnly;
    if (!allow_resynth && selection == TransformSelection::ResynthOnly)
        support::fatal("guoq: resynth-only selection requires ε_f > 0");

    synth::SynthService *svc = cfg.synthService != nullptr
                                   ? cfg.synthService
                                   : &synth::SynthService::global();
    synth::ResynthCounters counters;
    const TransformationSet transforms(
        set, selection, perCallEpsilon(cfg), cfg.resynthProbability,
        cfg.resynthCallSeconds, cfg.maxSubcircuitQubits, svc, &counters);

    GuoqResult result;
    result.best = c;
    ir::Circuit curr = c;
    double cost_best = cost(c);
    double cost_curr = cost_best;
    double error_curr = 0;
    double error_best = 0;

    auto record = [&](bool force = false) {
        if (!cfg.recordTrace)
            return;
        if (!force && !result.trace.empty() &&
            result.trace.back().cost <= cost_best)
            return;
        TracePoint p;
        p.seconds = timer.seconds();
        p.cost = cost_best;
        p.gateCount = result.best.gateCount();
        p.twoQubitCount = result.best.twoQubitGateCount();
        p.tCount = result.best.tGateCount();
        result.trace.push_back(p);
    };
    record(true);

    std::vector<PendingResynth> pending;

    // Accept/reject a candidate per Alg. 1 lines 10-18.
    auto consider = [&](ir::Circuit &&candidate, double eps_spent,
                        bool from_resynth) {
        const double cost_cand = cost(candidate);
        bool accept = cost_cand <= cost_curr;
        if (accept) {
            ++result.stats.accepted;
        } else {
            const double p =
                std::exp(-cfg.temperature * cost_cand /
                         std::max(cost_curr, 1e-12));
            if (rng.chance(p)) {
                accept = true;
                ++result.stats.uphillAccepted;
            } else {
                ++result.stats.rejected;
            }
        }
        if (!accept)
            return;
        curr = std::move(candidate);
        cost_curr = cost_cand;
        error_curr += eps_spent;
        if (from_resynth)
            ++result.stats.resynthAccepted;
        if (cost_curr < cost_best) {
            cost_best = cost_curr;
            result.best = curr;
            error_best = error_curr;
            record();
            if (cfg.hooks.onBest) {
                ProgressEvent ev;
                ev.seconds = timer.seconds();
                ev.cost = cost_best;
                ev.errorBound = error_best;
                ev.gateCount = result.best.gateCount();
                ev.twoQubitCount = result.best.twoQubitGateCount();
                cfg.hooks.onBest(ev);
            }
        }
    };

    // Harvest finished asynchronous resynthesis calls, in launch order.
    auto harvestAsync = [&](bool wait) {
        for (std::size_t i = 0; i < pending.size();) {
            PendingResynth &p = pending[i];
            if (!wait &&
                p.future.wait_for(std::chrono::seconds(0)) !=
                    std::future_status::ready) {
                ++i;
                continue;
            }
            const synth::SynthOutcome so = p.future.get();
            counters.add(so);
            const synth::ResynthResult &r = so.result;
            const ir::Circuit snapshot = std::move(p.snapshot);
            const dag::SubcircuitSelection sel = std::move(p.selection);
            pending.erase(pending.begin() +
                          static_cast<std::ptrdiff_t>(i));
            if (!r.success)
                continue;
            if (error_curr + r.distance > cfg.epsilonTotal)
                continue; // budget moved on while the call was in flight
            // Accepted resynthesis discards interim rewrites (§5.3):
            // the candidate is the launch-time snapshot with the new
            // block.
            consider(dag::splice(snapshot, sel, r.circuit), r.distance,
                     /*from_resynth=*/true);
        }
    };

    while (!deadline.expired() && !cfg.hooks.cancelled() &&
           (cfg.maxIterations < 0 ||
            result.stats.iterations < cfg.maxIterations)) {
        ++result.stats.iterations;
        harvestAsync(/*wait=*/false);

        const std::size_t idx = transforms.sample(rng);
        const Transformation &tau = transforms.all()[idx];

        // Alg. 1 line 6: abstain when the nominal ε would overshoot.
        if (error_curr + tau.epsilon() > cfg.epsilonTotal &&
            tau.epsilon() > 0) {
            ++result.stats.budgetSkips;
            continue;
        }

        if (tau.kind() == TransformKind::Resynthesis) {
            ++result.stats.resynthCalls;
            if (cfg.synthWorkers > 0) {
                if (pending.size() >=
                    static_cast<std::size_t>(cfg.synthWorkers))
                    continue; // all async slots busy
                if (curr.empty())
                    continue;
                PendingResynth p;
                p.selection = dag::randomConvex(
                    curr, rng, cfg.maxSubcircuitQubits, 32, 6);
                if (p.selection.size() < 2)
                    continue;
                p.snapshot = curr;
                ir::Circuit sub = dag::extract(p.snapshot, p.selection);
                synth::ResynthOptions opts;
                opts.targetSet = set;
                opts.epsilon = perCallEpsilon(cfg);
                opts.maxQubits = cfg.maxSubcircuitQubits;
                opts.deadline = support::Deadline::in(
                    std::min(cfg.resynthCallSeconds,
                             deadline.remaining()));
                support::Rng child = rng.fork();
                auto fut = svc->submit(std::move(sub), opts, child);
                if (!fut)
                    continue; // shared pool queue full: drop the call
                p.future = std::move(*fut);
                pending.push_back(std::move(p));
                continue;
            }
        }

        auto outcome = tau.apply(curr, rng);
        if (!outcome) {
            ++result.stats.noops;
            continue;
        }
        if (tau.kind() != TransformKind::Resynthesis)
            ++result.stats.rewriteApplications;
        if (error_curr + outcome->epsilonSpent > cfg.epsilonTotal &&
            outcome->epsilonSpent > 0) {
            ++result.stats.budgetSkips;
            continue;
        }
        consider(std::move(outcome->circuit), outcome->epsilonSpent,
                 tau.kind() == TransformKind::Resynthesis);
    }

    harvestAsync(/*wait=*/true);

    result.errorBound = error_best;
    result.stats.synthCacheHits = counters.hits;
    result.stats.synthCacheMisses = counters.misses;
    result.stats.synthCacheStores = counters.stores;
    result.stats.poolQueuePeak = svc->poolQueuePeak();
    result.stats.seconds = timer.seconds();
    record(true);
    return result;
}

} // namespace core
} // namespace guoq
