#include "core/guoq.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <future>
#include <utility>
#include <vector>

#include "dag/subcircuit.h"
#include "rewrite/engine.h"
#include "support/logging.h"
#include "support/timer.h"
#include "synth/service.h"

namespace guoq {
namespace core {

namespace {

/** One in-flight asynchronous resynthesis call. */
struct PendingResynth
{
    std::future<synth::SynthOutcome> future;
    ir::Circuit snapshot;            //!< circuit at launch time
    dag::SubcircuitSelection selection;
};

/** Effective per-call resynthesis ε (see GuoqConfig). */
double
perCallEpsilon(const GuoqConfig &cfg)
{
    if (cfg.resynthCallEpsilon > 0)
        return cfg.resynthCallEpsilon;
    // Floor of 3e-7: below that the HS metric's machine-epsilon noise
    // (~1e-8 after the sqrt) dominates and validation gets flaky.
    return std::max(cfg.epsilonTotal / 16.0, 3e-7);
}

} // namespace

GuoqResult
optimize(const ir::Circuit &c, ir::GateSetKind set, const GuoqConfig &cfg)
{
    support::Timer timer;
    const support::Deadline deadline =
        support::Deadline::in(cfg.timeBudgetSeconds);
    support::Rng rng(cfg.seed);
    const CostFunction cost(cfg.objective, set);

    // ε_f = 0 disables approximate transformations entirely: the exact
    // transformations alone keep the run at ε = 0 (Thm. 5.3).
    TransformSelection selection = cfg.selection;
    const bool allow_resynth = cfg.epsilonTotal > 0;
    if (!allow_resynth && selection == TransformSelection::Combined)
        selection = TransformSelection::RewriteOnly;
    if (!allow_resynth && selection == TransformSelection::ResynthOnly)
        support::fatal("guoq: resynth-only selection requires ε_f > 0");

    synth::SynthService *svc = cfg.synthService != nullptr
                                   ? cfg.synthService
                                   : &synth::SynthService::global();
    synth::ResynthCounters counters;
    const TransformationSet transforms(
        set, selection, perCallEpsilon(cfg), cfg.resynthProbability,
        cfg.resynthCallSeconds, cfg.maxSubcircuitQubits, svc, &counters);

    GuoqResult result;
    // The engine owns the current circuit; rule passes run through its
    // persistent index, and its cached counters replace the per-accept
    // full-circuit scans.
    rewrite::RewriteEngine engine(c);
    if (cfg.objective == Objective::Fidelity) {
        const fidelity::ErrorModel &model = fidelity::errorModelFor(set);
        engine.setGateLogCost([&model](const ir::Gate &g) {
            return -std::log1p(-model.gateError(g));
        });
    }
    const bool count_cost = cost.countBased();
    double cost_best = cost(c);
    double cost_curr = cost_best;
    double error_curr = 0;
    double error_best = 0;
    // result.best is copied lazily: while the current circuit *is* the
    // best, only its counts are kept; a snapshot is taken the moment an
    // accepted move leaves the best (or at loop exit, as a move).
    bool best_is_curr = true;
    ir::CircuitCounts best_counts = engine.counts();

    auto record = [&](bool force = false) {
        if (!cfg.recordTrace)
            return;
        if (!force && !result.trace.empty() &&
            result.trace.back().cost <= cost_best)
            return;
        TracePoint p;
        p.seconds = timer.seconds();
        p.cost = cost_best;
        p.gateCount = best_counts.gates;
        p.twoQubitCount = best_counts.twoQubit;
        p.tCount = best_counts.tGates;
        result.trace.push_back(p);
    };
    record(true);

    std::vector<PendingResynth> pending;

    // Accept/reject per Alg. 1 lines 10-18, split in two: the shared
    // Metropolis decision, and per-path commit plumbing.
    auto decide = [&](double cost_cand) {
        if (cost_cand <= cost_curr) {
            ++result.stats.accepted;
            return true;
        }
        const double p = std::exp(-cfg.temperature * cost_cand /
                                  std::max(cost_curr, 1e-12));
        if (rng.chance(p)) {
            ++result.stats.uphillAccepted;
            return true;
        }
        ++result.stats.rejected;
        return false;
    };

    // Freeze result.best before the engine moves off it: accepted
    // moves that are not strict improvements leave the best behind.
    auto snapshot_if_leaving_best = [&](double cost_cand) {
        if (best_is_curr && !(cost_cand < cost_best)) {
            result.best = engine.circuit();
            best_is_curr = false;
        }
    };

    // Post-accept bookkeeping; the engine already holds the move.
    auto on_accepted = [&](double cost_cand, double eps_spent,
                           bool from_resynth) {
        cost_curr = cost_cand;
        error_curr += eps_spent;
        if (from_resynth)
            ++result.stats.resynthAccepted;
        if (cost_curr < cost_best) {
            cost_best = cost_curr;
            error_best = error_curr;
            best_is_curr = true;
            best_counts = engine.counts();
            record();
            if (cfg.hooks.onBest) {
                ProgressEvent ev;
                ev.seconds = timer.seconds();
                ev.cost = cost_best;
                ev.errorBound = error_best;
                ev.gateCount = best_counts.gates;
                ev.twoQubitCount = best_counts.twoQubit;
                cfg.hooks.onBest(ev);
            }
        }
    };

    // A whole-circuit candidate (fusion, resynthesis splice).
    auto consider_circuit = [&](ir::Circuit &&candidate, double eps_spent,
                                bool from_resynth) {
        const double cost_cand = cost(candidate);
        if (!decide(cost_cand))
            return;
        snapshot_if_leaving_best(cost_cand);
        engine.assign(std::move(candidate));
        on_accepted(cost_cand, eps_spent, from_resynth);
    };

    // A prepared engine pass: count-based objectives price it from the
    // delta counters alone; Fidelity/Depth materialize the candidate
    // and use the legacy scan so accept decisions stay bit-identical.
    auto consider_prepared = [&](const rewrite::RewriteEngine::Attempt
                                     &att) {
        const double cost_cand = count_cost
                                     ? cost.fromCounts(att.counts)
                                     : cost(engine.candidate());
        if (!decide(cost_cand)) {
            engine.discard();
            return;
        }
        snapshot_if_leaving_best(cost_cand);
        engine.commit();
        on_accepted(cost_cand, /*eps_spent=*/0.0, /*from_resynth=*/false);
    };

    // Harvest finished asynchronous resynthesis calls, in launch
    // order, compacting still-running entries in place (stable, O(n)).
    auto harvestAsync = [&](bool wait) {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < pending.size(); ++i) {
            PendingResynth &p = pending[i];
            if (!wait &&
                p.future.wait_for(std::chrono::seconds(0)) !=
                    std::future_status::ready) {
                if (keep != i)
                    pending[keep] = std::move(p);
                ++keep;
                continue;
            }
            const synth::SynthOutcome so = p.future.get();
            counters.add(so);
            const synth::ResynthResult &r = so.result;
            if (!r.success)
                continue;
            if (error_curr + r.distance > cfg.epsilonTotal)
                continue; // budget moved on while the call was in flight
            // Accepted resynthesis discards interim rewrites (§5.3):
            // the candidate is the launch-time snapshot with the new
            // block.
            consider_circuit(dag::splice(p.snapshot, p.selection,
                                         r.circuit),
                             r.distance, /*from_resynth=*/true);
        }
        pending.resize(keep);
    };

    while (!deadline.expired() && !cfg.hooks.cancelled() &&
           (cfg.maxIterations < 0 ||
            result.stats.iterations < cfg.maxIterations)) {
        ++result.stats.iterations;
        harvestAsync(/*wait=*/false);

        const std::size_t idx = transforms.sample(rng);
        const Transformation &tau = transforms.all()[idx];

        // Alg. 1 line 6: abstain when the nominal ε would overshoot.
        if (error_curr + tau.epsilon() > cfg.epsilonTotal &&
            tau.epsilon() > 0) {
            ++result.stats.budgetSkips;
            continue;
        }

        if (tau.kind() == TransformKind::Resynthesis) {
            ++result.stats.resynthCalls;
            if (cfg.synthWorkers > 0) {
                if (pending.size() >=
                    static_cast<std::size_t>(cfg.synthWorkers))
                    continue; // all async slots busy
                if (engine.circuit().empty())
                    continue;
                PendingResynth p;
                p.selection = dag::randomConvex(
                    engine.circuit(), rng, cfg.maxSubcircuitQubits, 32, 6);
                if (p.selection.size() < 2)
                    continue;
                p.snapshot = engine.circuit();
                ir::Circuit sub = dag::extract(p.snapshot, p.selection);
                synth::ResynthOptions opts;
                opts.targetSet = set;
                opts.epsilon = perCallEpsilon(cfg);
                opts.maxQubits = cfg.maxSubcircuitQubits;
                opts.deadline = support::Deadline::in(
                    std::min(cfg.resynthCallSeconds,
                             deadline.remaining()));
                support::Rng child = rng.fork();
                auto fut = svc->submit(std::move(sub), opts, child);
                if (!fut)
                    continue; // shared pool queue full: drop the call
                p.future = std::move(*fut);
                pending.push_back(std::move(p));
                continue;
            }
        }

        if (tau.kind() == TransformKind::RewriteRule) {
            // The engine fast path: probe only the matching kind
            // bucket, price the pass from delta counters, and touch
            // the circuit itself only on accept.
            auto att = engine.preparePassRandom(*tau.rule(), rng);
            if (!att) {
                ++result.stats.noops;
                continue;
            }
            ++result.stats.rewriteApplications;
            consider_prepared(*att);
            continue;
        }

        auto outcome = tau.apply(engine.circuit(), rng);
        if (!outcome) {
            ++result.stats.noops;
            continue;
        }
        if (tau.kind() != TransformKind::Resynthesis)
            ++result.stats.rewriteApplications;
        if (error_curr + outcome->epsilonSpent > cfg.epsilonTotal &&
            outcome->epsilonSpent > 0) {
            ++result.stats.budgetSkips;
            continue;
        }
        consider_circuit(std::move(outcome->circuit),
                         outcome->epsilonSpent,
                         tau.kind() == TransformKind::Resynthesis);
    }

    harvestAsync(/*wait=*/true);

    if (best_is_curr)
        result.best = engine.release(); // the lazy-copy exit: a move
    result.errorBound = error_best;
    result.stats.synthCacheHits = counters.hits;
    result.stats.synthCacheMisses = counters.misses;
    result.stats.synthCacheStores = counters.stores;
    result.stats.poolQueuePeak = svc->poolQueuePeak();
    result.stats.seconds = timer.seconds();
    record(true);
    return result;
}

} // namespace core
} // namespace guoq
