/**
 * @file
 * GUOQ (Alg. 1): the simulated-annealing-inspired randomized search
 * over circuit transformations, plus its configuration, statistics,
 * trace, and result types.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cost.h"
#include "core/framework.h"
#include "core/observer.h"
#include "ir/circuit.h"
#include "ir/gate_set.h"

namespace guoq {

namespace synth {
class SynthService;
} // namespace synth

namespace core {

/** Configuration for one optimization run. */
struct GuoqConfig
{
    /** Hard constraint ε_f: total approximation budget (HS distance).
     *  0 keeps the run exact (resynthesis disabled). */
    double epsilonTotal = 0;

    /** Soft constraint: what to minimize. */
    Objective objective = Objective::TwoQubitCount;

    /** Wall-clock budget in seconds (GUOQ is an anytime algorithm). */
    double timeBudgetSeconds = 10.0;

    /** Optional iteration cap (< 0 = unlimited); used by tests. */
    long maxIterations = -1;

    /** RNG seed: one seed reproduces the whole run. */
    std::uint64_t seed = 1;

    /** Acceptance temperature t (paper: 10 after a 0..10 sweep). */
    double temperature = 10.0;

    /** Probability of sampling resynthesis (paper §5.3: 1.5%). */
    double resynthProbability = 0.015;

    /** Subcircuit qubit cap for resynthesis (paper: 3). */
    int maxSubcircuitQubits = 3;

    /** Per-synthesis-call wall-clock cap (seconds). */
    double resynthCallSeconds = 1.0;

    /**
     * Nominal ε per resynthesis call. ≤ 0 selects the default
     * max(ε_f/16, 1e-7) — several approximate calls fit the budget
     * because the loop charges the *measured* per-call distance
     * (≤ nominal; see TransformOutcome::epsilonSpent).
     */
    double resynthCallEpsilon = -1.0;

    /** Ablation switch (Q2): which transformation classes to use. */
    TransformSelection selection = TransformSelection::Combined;

    /**
     * Asynchronous resynthesis workers (paper §5.3): with N > 0,
     * rewriting continues while up to N synthesis calls are in
     * flight; interim rewrites are discarded when a resynthesis
     * result is accepted. 0 keeps resynthesis synchronous (the
     * legacy `asyncResynthesis = false`; 1 matches `= true`).
     */
    int synthWorkers = 0;

    /**
     * Synthesis service (cache + shared pool) every resynthesis call
     * routes through; null selects synth::SynthService::global().
     * With the service's cache disabled the run is bit-for-bit the
     * legacy optimize(); with it enabled the run stays deterministic
     * for a fixed seed, cold or warm.
     */
    synth::SynthService *synthService = nullptr;

    /** Record a best-cost-over-time trace (Fig. 7 style). */
    bool recordTrace = false;

    /**
     * Progress callback + cooperative cancellation. `hooks.onBest`
     * fires on every strict best-cost improvement; `hooks.cancel`
     * is polled each iteration and ends the run early with the best
     * found so far. Neither affects the search trajectory: a run with
     * hooks attached visits exactly the circuits of a hook-free run.
     */
    ObserverHooks hooks;
};

/** Counters for one run. */
struct GuoqStats
{
    long iterations = 0;
    long accepted = 0;         //!< improving/equal moves taken
    long uphillAccepted = 0;   //!< worse moves taken (Metropolis)
    long rejected = 0;
    long noops = 0;            //!< transformations that didn't fire
    long budgetSkips = 0;      //!< Alg. 1 line 6 abstentions
    long resynthCalls = 0;
    long resynthAccepted = 0;
    long rewriteApplications = 0;
    long synthCacheHits = 0;   //!< resynthesis served from the cache
    long synthCacheMisses = 0; //!< cache probes that ran a search
    long synthCacheStores = 0; //!< fresh results inserted
    long poolQueuePeak = 0;    //!< synthesis-pool queue high-water mark
    double seconds = 0;
};

/** One point of the best-cost-over-time trace. */
struct TracePoint
{
    double seconds = 0;
    double cost = 0;
    std::size_t gateCount = 0;
    std::size_t twoQubitCount = 0;
    std::size_t tCount = 0;
};

/** Result of guoq(). */
struct GuoqResult
{
    ir::Circuit best;
    double errorBound = 0; //!< accumulated ε of the returned circuit
    GuoqStats stats;
    std::vector<TracePoint> trace;
};

/**
 * Run GUOQ on @p c targeting @p set. The result satisfies
 * C ≡_{ε_f} best (Thm. 5.3); with cfg.epsilonTotal == 0 the run is
 * exact.
 */
GuoqResult optimize(const ir::Circuit &c, ir::GateSetKind set,
                    const GuoqConfig &cfg);

} // namespace core
} // namespace guoq
