/**
 * @file
 * The circuit transformation τ_ε (paper Def. 4.1): the closed-box
 * abstraction unifying rewrite rules and resynthesis.
 *
 * A transformation takes the whole current circuit, internally selects
 * where to act (a full rule pass from a random anchor; a random convex
 * subcircuit for resynthesis — paper §5.3), and returns an ε-equivalent
 * circuit. Callers only see the (name, ε, apply) triple; GUOQ composes
 * them freely under the additive error bound of Thm. 4.2.
 */

#pragma once

#include <optional>
#include <string>

#include "ir/circuit.h"
#include "ir/gate_set.h"
#include "rewrite/rule.h"
#include "support/rng.h"
#include "support/timer.h"

namespace guoq {

namespace synth {
class SynthService;
struct ResynthCounters;
} // namespace synth

namespace core {

/** What a transformation is built from (for stats and weighting). */
enum class TransformKind
{
    RewriteRule,  //!< exact pattern rewrite, ε = 0
    Fusion,       //!< exact 1q-run Euler refit, ε = 0
    Resynthesis,  //!< unitary synthesis of a subcircuit, ε ≥ 0
};

/** Outcome of applying a transformation. */
struct TransformOutcome
{
    ir::Circuit circuit;
    /**
     * Error actually introduced, measured as the HS distance between
     * the replaced subcircuit and its replacement (0 for exact
     * transformations). Always ≤ the transformation's nominal ε, so
     * charging it keeps the Thm. 4.2 budget sound while letting a run
     * apply more approximate steps than nominal accounting would.
     */
    double epsilonSpent = 0;
};

/** A closed-box τ_ε. */
class Transformation
{
  public:
    /** Wrap one rewrite rule (ε = 0). @p rule must outlive this. */
    static Transformation fromRule(const rewrite::RewriteRule *rule);

    /** The 1q-fusion transformation for @p set (ε = 0). */
    static Transformation fusion(ir::GateSetKind set);

    /**
     * A resynthesis transformation: grow a random convex subcircuit of
     * at most @p max_qubits qubits, synthesize it within @p epsilon,
     * splice the result back (paper §5.3). Synthesis is routed
     * through @p service (the process-wide synth::SynthService when
     * null), and cache traffic is tallied into @p counters when set.
     * @param per_call_seconds wall-clock cap for one synthesis call.
     */
    static Transformation
    resynthesis(ir::GateSetKind set, double epsilon,
                double per_call_seconds, int max_qubits,
                synth::SynthService *service = nullptr,
                synth::ResynthCounters *counters = nullptr);

    const std::string &name() const { return name_; }
    TransformKind kind() const { return kind_; }

    /**
     * The wrapped rule for RewriteRule transformations (null
     * otherwise). The GUOQ loop dispatches rule passes through the
     * incremental rewrite::RewriteEngine instead of apply().
     */
    const rewrite::RewriteRule *rule() const { return rule_; }

    /** Nominal ε (the budget check of Alg. 1 line 6 uses this). */
    double epsilon() const { return epsilon_; }

    /**
     * Apply to @p c. Returns std::nullopt when nothing changed (no
     * match, synthesis failure, or timeout) — the GUOQ loop treats
     * that as a free no-op iteration.
     */
    std::optional<TransformOutcome> apply(const ir::Circuit &c,
                                          support::Rng &rng) const;

  private:
    Transformation() = default;

    std::string name_;
    TransformKind kind_ = TransformKind::RewriteRule;
    double epsilon_ = 0;
    // Rewrite-rule state.
    const rewrite::RewriteRule *rule_ = nullptr;
    // Fusion / resynthesis state.
    ir::GateSetKind set_ = ir::GateSetKind::Nam;
    double perCallSeconds_ = 1.0;
    int maxQubits_ = 3;
    synth::SynthService *service_ = nullptr;
    synth::ResynthCounters *counters_ = nullptr;
};

} // namespace core
} // namespace guoq
