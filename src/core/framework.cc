#include "core/framework.h"

#include "rewrite/rule.h"
#include "support/logging.h"

namespace guoq {
namespace core {

TransformationSet::TransformationSet(ir::GateSetKind set,
                                     TransformSelection selection,
                                     double epsilon, double resynth_prob,
                                     double per_call_seconds, int max_qubits,
                                     synth::SynthService *service,
                                     synth::ResynthCounters *counters)
    : resynthProb_(resynth_prob)
{
    if (selection != TransformSelection::ResynthOnly) {
        for (const rewrite::RewriteRule &rule : rewrite::rulesFor(set))
            transforms_.push_back(Transformation::fromRule(&rule));
        if (!ir::isFinite(set))
            transforms_.push_back(Transformation::fusion(set));
        fastCount_ = transforms_.size();
    }
    if (selection != TransformSelection::RewriteOnly) {
        transforms_.push_back(Transformation::resynthesis(
            set, epsilon, per_call_seconds, max_qubits, service,
            counters));
        resynthCount_ = 1;
    }
    if (transforms_.empty())
        support::panic("TransformationSet: empty selection");
}

std::size_t
TransformationSet::sample(support::Rng &rng) const
{
    if (resynthCount_ > 0 &&
        (fastCount_ == 0 || rng.chance(resynthProb_))) {
        // Resynthesis transformations sit after the fast block.
        return fastCount_ + rng.index(resynthCount_);
    }
    return rng.index(fastCount_);
}

} // namespace core
} // namespace guoq
