/**
 * @file
 * Optimization objectives (paper §5.1): the soft-constraint cost
 * functions GUOQ minimizes subject to the hard error budget ε_f.
 */

#pragma once

#include <string>

#include "fidelity/error_model.h"
#include "ir/circuit.h"
#include "ir/gate_set.h"

namespace guoq {
namespace core {

/** The objectives used across the paper's experiments. */
enum class Objective
{
    TwoQubitCount,  //!< NISQ headline metric (argmin 2q-count, §4)
    TCount,         //!< FTQC primary metric (Q4)
    TThenTwoQubit,  //!< Example 5.1: 2·#T + #CX
    Fidelity,       //!< maximize Π(1-err): minimize -log fidelity
    GateCount,      //!< total gate count
    Depth,          //!< circuit depth
};

/** Display name ("2q-count", ...). */
const std::string &objectiveName(Objective obj);

/** A concrete cost : C → R for an objective on a gate set. */
class CostFunction
{
  public:
    CostFunction(Objective obj, ir::GateSetKind set);

    Objective objective() const { return objective_; }

    /** Evaluate the cost of @p c (lower is better). */
    double operator()(const ir::Circuit &c) const;

    /**
     * True when the objective is a pure function of ir::CircuitCounts,
     * so fromCounts() is usable. Fidelity and Depth are not: they
     * depend on gate order / arity classes beyond the three counters.
     */
    bool countBased() const;

    /**
     * Evaluate from pre-gathered counts. Uses the exact arithmetic of
     * operator(), so for count-based objectives the result is
     * bit-for-bit the full-scan cost — the rewrite engine's delta
     * counters feed the GUOQ accept test through this. Panics for
     * objectives that are not countBased().
     */
    double fromCounts(const ir::CircuitCounts &k) const;

  private:
    Objective objective_;
    const fidelity::ErrorModel *model_;
};

} // namespace core
} // namespace guoq
