/**
 * @file
 * Progress observation and cooperative cancellation for optimizer
 * runs: the ObserverHooks struct every optimizer entry point accepts.
 *
 * Hooks are how long-running searches become drivable: a CLI can
 * stream best-cost improvements to stderr, a service can enforce its
 * own deadline by flipping the cancellation token, and a portfolio can
 * forward only globally-improving events. Both members are optional;
 * default-constructed hooks observe nothing and never cancel.
 */

#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>

namespace guoq {
namespace core {

/** One best-cost improvement, reported as it happens. */
struct ProgressEvent
{
    double seconds = 0;         //!< wall time since the run started
    double cost = 0;            //!< the new best cost (objective value)
    double errorBound = 0;      //!< accumulated ε of the new best
    std::size_t gateCount = 0;  //!< gate count of the new best
    std::size_t twoQubitCount = 0;
    int worker = -1;            //!< portfolio worker that found it
                                //!< (-1: single-trajectory run)
};

/** A shared flag a driver flips to stop runs early. */
using CancelToken = std::shared_ptr<std::atomic<bool>>;

/** A fresh, unset cancellation token. */
inline CancelToken
makeCancelToken()
{
    return std::make_shared<std::atomic<bool>>(false);
}

/**
 * Observation hooks carried by an optimization request.
 *
 * `onBest` fires on every new best (strictly improving cost). Events
 * are monotone: each reported cost is strictly below the previous
 * one. In a multi-threaded portfolio the callback may be invoked from
 * worker threads, but invocations are serialized and still monotone
 * portfolio-wide — keep the callback cheap, it is called under the
 * serialization lock.
 *
 * `cancel` is cooperative: search loops poll it between iterations
 * (and the portfolio between slices) and return their current best
 * when it is set. One-shot deterministic passes (the fixed-sequence
 * baselines) check it only on entry.
 *
 * `deadline` is an optional absolute stop time (set with
 * setDeadlineIn(); hasDeadline gates it): every cancelled() poll site
 * treats an expired deadline exactly like a set cancel token, so a
 * driver enforcing per-request deadlines — the serve pipeline — rides
 * the same cooperative path with no watchdog thread. Unlike the
 * request's timeBudgetSeconds (which each slice re-derives), the
 * deadline is one fixed instant covering the whole run.
 */
struct ObserverHooks
{
    std::function<void(const ProgressEvent &)> onBest;
    CancelToken cancel;
    std::chrono::steady_clock::time_point deadline{};
    bool hasDeadline = false;

    /** Arm the deadline @p seconds from now. */
    void
    setDeadlineIn(double seconds)
    {
        hasDeadline = true;
        deadline = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(seconds));
    }

    /** True once the armed deadline has passed (false when unarmed). */
    bool
    deadlineExpired() const
    {
        return hasDeadline &&
               std::chrono::steady_clock::now() >= deadline;
    }

    bool
    cancelled() const
    {
        return (cancel && cancel->load(std::memory_order_relaxed)) ||
               deadlineExpired();
    }
};

} // namespace core
} // namespace guoq
