#include "core/transformation.h"

#include "dag/subcircuit.h"
#include "rewrite/applier.h"
#include "support/logging.h"
#include "synth/service.h"
#include "transpile/to_gate_set.h"

namespace guoq {
namespace core {

namespace {

/** Gate cap for resynthesis subcircuits: bounds unitary-eval time. */
constexpr std::size_t kMaxSubcircuitGates = 32;

/**
 * Entangler cap for resynthesis subcircuits: instantiation cost and
 * the deletion search both scale with the seed structure depth.
 */
constexpr int kMaxSubcircuitEntanglers = 6;

} // namespace

Transformation
Transformation::fromRule(const rewrite::RewriteRule *rule)
{
    Transformation t;
    t.name_ = "rule:" + rule->name();
    t.kind_ = TransformKind::RewriteRule;
    t.epsilon_ = 0;
    t.rule_ = rule;
    return t;
}

Transformation
Transformation::fusion(ir::GateSetKind set)
{
    Transformation t;
    t.name_ = "fusion:1q";
    t.kind_ = TransformKind::Fusion;
    t.epsilon_ = 0;
    t.set_ = set;
    return t;
}

Transformation
Transformation::resynthesis(ir::GateSetKind set, double epsilon,
                            double per_call_seconds, int max_qubits,
                            synth::SynthService *service,
                            synth::ResynthCounters *counters)
{
    Transformation t;
    t.name_ = "resynth:" + ir::gateSetName(set);
    t.kind_ = TransformKind::Resynthesis;
    t.epsilon_ = epsilon;
    t.set_ = set;
    t.perCallSeconds_ = per_call_seconds;
    t.maxQubits_ = max_qubits;
    t.service_ = service;
    t.counters_ = counters;
    return t;
}

std::optional<TransformOutcome>
Transformation::apply(const ir::Circuit &c, support::Rng &rng) const
{
    switch (kind_) {
      case TransformKind::RewriteRule: {
        rewrite::PassResult r =
            rewrite::applyRulePassRandom(c, *rule_, rng);
        if (r.applications == 0)
            return std::nullopt;
        return TransformOutcome{std::move(r.circuit), 0.0};
      }
      case TransformKind::Fusion: {
        ir::Circuit fused = transpile::fuseOneQubitRuns(c, set_);
        if (fused.size() >= c.size())
            return std::nullopt;
        return TransformOutcome{std::move(fused), 0.0};
      }
      case TransformKind::Resynthesis: {
        if (c.empty())
            return std::nullopt;
        const dag::SubcircuitSelection sel = dag::randomConvex(
            c, rng, maxQubits_, kMaxSubcircuitGates,
            kMaxSubcircuitEntanglers);
        if (sel.size() < 2)
            return std::nullopt;
        const ir::Circuit sub = dag::extract(c, sel);
        synth::ResynthOptions opts;
        opts.targetSet = set_;
        opts.epsilon = epsilon_;
        opts.maxQubits = maxQubits_;
        opts.deadline = support::Deadline::in(perCallSeconds_);
        synth::SynthService *svc =
            service_ != nullptr ? service_ : &synth::SynthService::global();
        const synth::SynthOutcome so = svc->resynthesize(sub, opts, rng);
        if (counters_ != nullptr)
            counters_->add(so);
        const synth::ResynthResult &r = so.result;
        if (!r.success || r.circuit.gates() == sub.gates())
            return std::nullopt; // failed or unchanged: free no-op
        TransformOutcome out{dag::splice(c, sel, r.circuit), r.distance};
        return out;
      }
    }
    support::panic("Transformation::apply: unknown kind");
}

} // namespace core
} // namespace guoq
