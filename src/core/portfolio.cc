#include "core/portfolio.h"

#include <algorithm>
#include <mutex>
#include <thread>
#include <utility>

#include "support/rng.h"
#include "support/timer.h"

namespace guoq {
namespace core {

namespace {

/** Mutex-guarded global best shared by all workers. */
struct SharedBest
{
    std::mutex mutex;
    ir::Circuit circuit;
    double cost = 0;
    double error = 0;
    int worker = 0;

    /** Publish a candidate; on cost ties the lower accumulated ε wins
     *  (same rule the workers use locally). */
    void
    offer(const ir::Circuit &c, double cost_c, double error_c, int worker_c)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (cost_c < cost || (cost_c == cost && error_c < error)) {
            circuit = c;
            cost = cost_c;
            error = error_c;
            worker = worker_c;
        }
    }

    /**
     * If the global best is strictly better than @p cost_c, copy it
     * into the out-params and return true (the caller adopts it).
     */
    bool
    adopt(double cost_c, ir::Circuit &c, double &error_c)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (cost >= cost_c)
            return false;
        c = circuit;
        error_c = error;
        return true;
    }
};

void
mergeStats(GuoqStats &into, const GuoqStats &from)
{
    into.iterations += from.iterations;
    into.accepted += from.accepted;
    into.uphillAccepted += from.uphillAccepted;
    into.rejected += from.rejected;
    into.noops += from.noops;
    into.budgetSkips += from.budgetSkips;
    into.resynthCalls += from.resynthCalls;
    into.resynthAccepted += from.resynthAccepted;
    into.rewriteApplications += from.rewriteApplications;
    into.seconds += from.seconds;
}

/**
 * One worker: run optimize() in slices against the shared deadline,
 * exchanging with the global best between slices. Each slice continues
 * from the worker's current circuit with the unspent ε budget, so the
 * accumulated error of whatever the worker holds never exceeds
 * cfg.base.epsilonTotal (Thm. 4.2 additivity).
 */
void
runWorker(int worker, const ir::Circuit &input, ir::GateSetKind set,
          const PortfolioConfig &cfg, const support::Deadline &deadline,
          const CostFunction &cost, SharedBest &shared,
          PortfolioWorkerReport &report)
{
    support::Timer worker_timer;
    support::Rng seeder(portfolioWorkerSeed(cfg.base.seed, worker));
    report.worker = worker;
    report.seed = portfolioWorkerSeed(cfg.base.seed, worker);

    ir::Circuit curr = input;
    double error_curr = 0;

    // Iteration-capped runs execute as one slice so that a fixed
    // (seed, maxIterations) pair walks one reproducible trajectory —
    // provided timeBudgetSeconds is generous enough that the deadline
    // doesn't truncate the run first.
    const bool sliced = cfg.base.maxIterations < 0;
    bool ran_once = false;
    while (!ran_once || (sliced && !deadline.expired())) {
        GuoqConfig slice = cfg.base;
        // The first slice uses the worker seed itself (so a 1-thread
        // portfolio reproduces core::optimize() exactly); later slices
        // draw a fresh stream, otherwise each slice would replay the
        // same trajectory.
        const bool first_slice = !ran_once;
        slice.seed = first_slice ? report.seed : seeder();
        ran_once = true;
        slice.epsilonTotal = std::max(cfg.base.epsilonTotal - error_curr, 0.0);
        // A resynth-only worker whose ε ran out mid-search has no legal
        // moves left; stop early. The first slice is exempt so that a
        // resynth-only config with no budget at all hits the same
        // fatal() diagnostic optimize() raises for it.
        if (!first_slice && slice.epsilonTotal == 0 &&
            slice.selection == TransformSelection::ResynthOnly)
            break;
        if (sliced) {
            // Clamp the exchange interval: zero/negative would make
            // every slice an already-expired deadline and the loop a
            // busy-spin that burns the whole budget doing nothing.
            const double sync = std::max(cfg.syncIntervalSeconds, 0.01);
            slice.timeBudgetSeconds = std::min(sync, deadline.remaining());
        }
        GuoqResult r = optimize(curr, set, slice);
        mergeStats(report.stats, r.stats);
        const double cost_r = cost(r.best);
        const double error_r = error_curr + r.errorBound;
        // Keep the incumbent on cost ties unless the slice spent no ε:
        // an equal-cost circuit that cost approximation budget is a
        // strictly worse position to continue from.
        if (cost_r < cost(curr) || (cost_r == cost(curr) && r.errorBound == 0)) {
            curr = std::move(r.best);
            error_curr = error_r;
        }
        shared.offer(curr, cost(curr), error_curr, worker);
        if (cfg.exchangeBest && sliced && !deadline.expired()) {
            double adopted_error = error_curr;
            if (shared.adopt(cost(curr), curr, adopted_error))
                error_curr = adopted_error;
        }
    }

    report.finalCost = cost(curr);
    report.errorBound = error_curr;
    report.wallSeconds = worker_timer.seconds();
}

} // namespace

std::uint64_t
portfolioWorkerSeed(std::uint64_t base_seed, int worker)
{
    if (worker == 0)
        return base_seed; // threads=1 must reproduce optimize() exactly
    // Derive well-separated streams from the base seed via the same
    // splitmix-style mixing Rng uses for state expansion.
    std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull *
                                      static_cast<std::uint64_t>(worker);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

PortfolioResult
optimizePortfolio(const ir::Circuit &c, ir::GateSetKind set,
                  const PortfolioConfig &cfg)
{
    const int threads = std::max(cfg.threads, 1);
    const CostFunction cost(cfg.base.objective, set);
    support::Timer timer;

    PortfolioResult result;

    if (threads == 1) {
        // Exactly one core::optimize() call: same seed, same result.
        GuoqResult r = optimize(c, set, cfg.base);
        result.best = std::move(r.best);
        result.bestCost = cost(result.best);
        result.errorBound = r.errorBound;
        result.winningWorker = 0;
        result.stats = r.stats;
        result.trace = std::move(r.trace);
        PortfolioWorkerReport report;
        report.worker = 0;
        report.seed = cfg.base.seed;
        report.finalCost = result.bestCost;
        report.errorBound = r.errorBound;
        report.stats = r.stats;
        result.stats.seconds = timer.seconds();
        report.wallSeconds = result.stats.seconds;
        result.workers.push_back(std::move(report));
        return result;
    }

    SharedBest shared;
    shared.circuit = c;
    shared.cost = cost(c);
    shared.error = 0;
    shared.worker = 0;

    const support::Deadline deadline =
        support::Deadline::in(cfg.base.timeBudgetSeconds);

    std::vector<PortfolioWorkerReport> reports(
        static_cast<std::size_t>(threads));
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w)
        pool.emplace_back([&, w]() {
            runWorker(w, c, set, cfg, deadline, cost, shared,
                      reports[static_cast<std::size_t>(w)]);
        });
    for (std::thread &t : pool)
        t.join();

    result.best = std::move(shared.circuit);
    result.bestCost = shared.cost;
    result.errorBound = shared.error;
    result.winningWorker = shared.worker;
    for (PortfolioWorkerReport &r : reports)
        mergeStats(result.stats, r.stats);
    result.workers = std::move(reports);
    result.stats.seconds = timer.seconds();
    return result;
}

} // namespace core
} // namespace guoq
