#include "core/portfolio.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <thread>
#include <utility>

#include "support/mutex.h"
#include "support/rng.h"
#include "support/timer.h"

namespace guoq {
namespace core {

namespace {

/**
 * Global best shared by all workers.
 *
 * The hot checks ("is this candidate even competitive?" / "did anyone
 * publish since I last looked?") run lock-free against an atomic
 * best-cost mirror and a publication epoch; the mutex is taken only to
 * copy circuits. Both atomics are conservative: `costFast` only ever
 * decreases and a stale read returns an *older, higher-or-equal*
 * value, so a candidate that fails the fast test (cost_c above the
 * stale mirror) is guaranteed above the true best too — skipping the
 * lock never loses an update, and a stale pass merely takes the lock
 * and re-checks under it.
 */
struct SharedBest
{
    support::Mutex mutex;
    ir::Circuit circuit GUARDED_BY(mutex);
    double cost GUARDED_BY(mutex) = 0;
    double error GUARDED_BY(mutex) = 0;
    int worker GUARDED_BY(mutex) = 0;

    /** Lock-free mirror of `cost` (updated inside the lock). */
    std::atomic<double> costFast{std::numeric_limits<double>::max()};
    /** Bumped on every publication; lets adopters skip the lock when
     *  nothing changed since their last look. */
    std::atomic<std::uint64_t> epoch{0};

    // Progress events: a separate lock so a slow user callback never
    // stalls the circuit-exchange path, plus its own monotone best so
    // forwarded events stay strictly decreasing portfolio-wide. The
    // two locks are never held together (reportBest never touches the
    // exchange state), so no ordering between them can arise.
    support::Mutex eventMutex;
    double eventBest GUARDED_BY(eventMutex) =
        std::numeric_limits<double>::max();
    std::atomic<double> eventBestFast{
        std::numeric_limits<double>::max()};

    void
    init(const ir::Circuit &c, double cost_c)
    {
        // Runs before any worker thread exists; the locks are
        // uncontended and taken only to satisfy the static analysis's
        // (correct) insistence that guarded fields stay guarded.
        {
            support::MutexLock lock(mutex);
            circuit = c;
            cost = cost_c;
            error = 0;
            worker = 0;
        }
        costFast.store(cost_c, std::memory_order_release);
        // The input circuit is not an "improvement": only costs
        // strictly below it may be reported.
        {
            support::MutexLock lock(eventMutex);
            eventBest = cost_c;
        }
        eventBestFast.store(cost_c, std::memory_order_release);
    }

    /** Publish a candidate; on cost ties the lower accumulated ε wins
     *  (same rule the workers use locally). */
    void
    offer(const ir::Circuit &c, double cost_c, double error_c, int worker_c)
    {
        // Fast path: strictly worse than the (monotone) mirror can
        // never win; ties still need the lock for the ε rule.
        if (cost_c > costFast.load(std::memory_order_acquire))
            return;
        support::MutexLock lock(mutex);
        if (cost_c < cost || (cost_c == cost && error_c < error)) {
            circuit = c;
            cost = cost_c;
            error = error_c;
            worker = worker_c;
            costFast.store(cost_c, std::memory_order_release);
            epoch.fetch_add(1, std::memory_order_acq_rel);
        }
    }

    /**
     * If the global best is strictly better than @p cost_c, copy it
     * into the out-params and return true (the caller adopts it).
     * @p seen_epoch is the caller's last observed publication epoch;
     * the call skips the lock — and returns false — when nothing was
     * published since, or when the mirror shows no improvement. Both
     * fast-outs are conservative (see SharedBest), so a missed
     * adoption can only be one that the next slice boundary retries.
     */
    bool
    adopt(double cost_c, ir::Circuit &c, double &error_c,
          std::uint64_t &seen_epoch)
    {
        const std::uint64_t e = epoch.load(std::memory_order_acquire);
        if (e == seen_epoch ||
            costFast.load(std::memory_order_acquire) >= cost_c)
            return false;
        support::MutexLock lock(mutex);
        seen_epoch = epoch.load(std::memory_order_relaxed);
        if (cost >= cost_c)
            return false;
        c = circuit;
        error_c = error;
        return true;
    }

    /** Forward @p ev to @p user iff it improves on every event
     *  forwarded so far (keeps the portfolio-wide stream monotone). */
    void
    reportBest(const ProgressEvent &ev, const ObserverHooks &user)
    {
        if (!user.onBest)
            return;
        if (ev.cost >= eventBestFast.load(std::memory_order_acquire))
            return;
        support::MutexLock lock(eventMutex);
        if (ev.cost >= eventBest)
            return;
        eventBest = ev.cost;
        eventBestFast.store(ev.cost, std::memory_order_release);
        user.onBest(ev);
    }
};

void
mergeStats(GuoqStats &into, const GuoqStats &from)
{
    into.iterations += from.iterations;
    into.accepted += from.accepted;
    into.uphillAccepted += from.uphillAccepted;
    into.rejected += from.rejected;
    into.noops += from.noops;
    into.budgetSkips += from.budgetSkips;
    into.resynthCalls += from.resynthCalls;
    into.resynthAccepted += from.resynthAccepted;
    into.rewriteApplications += from.rewriteApplications;
    into.synthCacheHits += from.synthCacheHits;
    into.synthCacheMisses += from.synthCacheMisses;
    into.synthCacheStores += from.synthCacheStores;
    into.poolQueuePeak = std::max(into.poolQueuePeak, from.poolQueuePeak);
    into.seconds += from.seconds;
}

/**
 * One worker: run optimize() in slices against the shared deadline,
 * exchanging with the global best between slices. Each slice continues
 * from the worker's current circuit with the unspent ε budget, so the
 * accumulated error of whatever the worker holds never exceeds
 * cfg.base.epsilonTotal (Thm. 4.2 additivity).
 */
void
runWorker(int worker, const ir::Circuit &input, ir::GateSetKind set,
          const PortfolioConfig &cfg, const support::Deadline &deadline,
          const support::Timer &portfolio_timer, const CostFunction &cost,
          SharedBest &shared, PortfolioWorkerReport &report,
          std::vector<TracePoint> &trace)
{
    support::Timer worker_timer;
    support::Rng seeder(portfolioWorkerSeed(cfg.base.seed, worker));
    report.worker = worker;
    report.seed = portfolioWorkerSeed(cfg.base.seed, worker);

    ir::Circuit curr = input;
    double error_curr = 0;
    std::uint64_t seen_epoch = 0;

    // Iteration-capped runs execute as one slice so that a fixed
    // (seed, maxIterations) pair walks one reproducible trajectory —
    // provided timeBudgetSeconds is generous enough that the deadline
    // doesn't truncate the run first.
    const bool sliced = cfg.base.maxIterations < 0;
    bool ran_once = false;
    while (!ran_once || (sliced && !deadline.expired() &&
                         !cfg.base.hooks.cancelled())) {
        GuoqConfig slice = cfg.base;
        // The first slice uses the worker seed itself (so a 1-thread
        // portfolio reproduces core::optimize() exactly); later slices
        // draw a fresh stream, otherwise each slice would replay the
        // same trajectory.
        const bool first_slice = !ran_once;
        slice.seed = first_slice ? report.seed : seeder();
        ran_once = true;
        slice.epsilonTotal = std::max(cfg.base.epsilonTotal - error_curr, 0.0);
        // A resynth-only worker whose ε ran out mid-search has no legal
        // moves left; stop early. The first slice is exempt so that a
        // resynth-only config with no budget at all hits the same
        // fatal() diagnostic optimize() raises for it.
        if (!first_slice && slice.epsilonTotal == 0 &&
            slice.selection == TransformSelection::ResynthOnly)
            break;
        if (sliced) {
            // Clamp the exchange interval: zero/negative would make
            // every slice an already-expired deadline and the loop a
            // busy-spin that burns the whole budget doing nothing.
            const double sync = std::max(cfg.syncIntervalSeconds, 0.01);
            slice.timeBudgetSeconds = std::min(sync, deadline.remaining());
        }
        // In-slice progress is slice-local; route it through the
        // shared filter so the user only sees portfolio-wide
        // improvements, stamped with the portfolio clock and worker.
        // Each slice's optimize() accounts ε from zero, so the ε the
        // worker carried into the slice is added back to keep the
        // event's errorBound the true accumulated bound.
        if (cfg.base.hooks.onBest)
            slice.hooks.onBest = [&shared, &cfg, &portfolio_timer,
                                  worker, error0 = error_curr](
                                     const ProgressEvent &e) {
                ProgressEvent ev = e;
                ev.seconds = portfolio_timer.seconds();
                ev.errorBound += error0;
                ev.worker = worker;
                shared.reportBest(ev, cfg.base.hooks);
            };
        const double slice_t0 = portfolio_timer.seconds();
        GuoqResult r = optimize(curr, set, slice);
        mergeStats(report.stats, r.stats);
        if (cfg.base.recordTrace)
            for (TracePoint p : r.trace) {
                p.seconds += slice_t0;
                trace.push_back(p);
            }
        const double cost_r = cost(r.best);
        const double error_r = error_curr + r.errorBound;
        // Keep the incumbent on cost ties unless the slice spent no ε:
        // an equal-cost circuit that cost approximation budget is a
        // strictly worse position to continue from.
        if (cost_r < cost(curr) || (cost_r == cost(curr) && r.errorBound == 0)) {
            curr = std::move(r.best);
            error_curr = error_r;
        }
        shared.offer(curr, cost(curr), error_curr, worker);
        if (cfg.exchangeBest && sliced && !deadline.expired() &&
            !cfg.base.hooks.cancelled()) {
            double adopted_error = error_curr;
            if (shared.adopt(cost(curr), curr, adopted_error,
                             seen_epoch))
                error_curr = adopted_error;
        }
    }

    report.finalCost = cost(curr);
    report.errorBound = error_curr;
    report.wallSeconds = worker_timer.seconds();
}

/** A trace point describing @p c at time @p seconds. */
TracePoint
tracePointFor(double seconds, double cost_c, const ir::Circuit &c)
{
    TracePoint p;
    p.seconds = seconds;
    p.cost = cost_c;
    p.gateCount = c.gateCount();
    p.twoQubitCount = c.twoQubitGateCount();
    p.tCount = c.tGateCount();
    return p;
}

/**
 * Merge per-worker traces into the portfolio-level best-cost-over-time
 * trace documented in portfolio.h: time-sorted, starting at the input
 * circuit, keeping only strict portfolio-wide improvements.
 */
std::vector<TracePoint>
mergeTraces(std::vector<std::vector<TracePoint>> &worker_traces,
            const ir::Circuit &input, double input_cost)
{
    std::vector<TracePoint> all;
    for (std::vector<TracePoint> &t : worker_traces) {
        all.insert(all.end(), t.begin(), t.end());
        t.clear();
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const TracePoint &a, const TracePoint &b) {
                         return a.seconds < b.seconds;
                     });
    std::vector<TracePoint> out;
    out.push_back(tracePointFor(0.0, input_cost, input));
    for (const TracePoint &p : all)
        if (p.cost < out.back().cost)
            out.push_back(p);
    return out;
}

} // namespace

std::uint64_t
portfolioWorkerSeed(std::uint64_t base_seed, int worker)
{
    if (worker == 0)
        return base_seed; // threads=1 must reproduce optimize() exactly
    // Derive well-separated streams from the base seed via the same
    // splitmix-style mixing Rng uses for state expansion.
    std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull *
                                      static_cast<std::uint64_t>(worker);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

PortfolioResult
optimizePortfolio(const ir::Circuit &c, ir::GateSetKind set,
                  const PortfolioConfig &cfg)
{
    const int threads = std::max(cfg.threads, 1);
    const CostFunction cost(cfg.base.objective, set);
    support::Timer timer;

    PortfolioResult result;

    if (threads == 1) {
        // Exactly one core::optimize() call: same seed, same result.
        GuoqResult r = optimize(c, set, cfg.base);
        result.best = std::move(r.best);
        result.bestCost = cost(result.best);
        result.errorBound = r.errorBound;
        result.winningWorker = 0;
        result.stats = r.stats;
        result.trace = std::move(r.trace);
        PortfolioWorkerReport report;
        report.worker = 0;
        report.seed = cfg.base.seed;
        report.finalCost = result.bestCost;
        report.errorBound = r.errorBound;
        report.stats = r.stats;
        result.stats.seconds = timer.seconds();
        report.wallSeconds = result.stats.seconds;
        result.workers.push_back(std::move(report));
        return result;
    }

    SharedBest shared;
    shared.init(c, cost(c));

    const support::Deadline deadline =
        support::Deadline::in(cfg.base.timeBudgetSeconds);

    std::vector<PortfolioWorkerReport> reports(
        static_cast<std::size_t>(threads));
    std::vector<std::vector<TracePoint>> traces(
        static_cast<std::size_t>(threads));
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w)
        pool.emplace_back([&, w]() {
            runWorker(w, c, set, cfg, deadline, timer, cost, shared,
                      reports[static_cast<std::size_t>(w)],
                      traces[static_cast<std::size_t>(w)]);
        });
    for (std::thread &t : pool)
        t.join();

    {
        // All workers have joined; the lock is uncontended and taken
        // only so the guarded-field accesses stay provably guarded.
        support::MutexLock lock(shared.mutex);
        result.best = std::move(shared.circuit);
        result.bestCost = shared.cost;
        result.errorBound = shared.error;
        result.winningWorker = shared.worker;
    }
    for (PortfolioWorkerReport &r : reports)
        mergeStats(result.stats, r.stats);
    result.workers = std::move(reports);
    if (cfg.base.recordTrace)
        result.trace = mergeTraces(traces, c, cost(c));
    result.stats.seconds = timer.seconds();
    return result;
}

} // namespace core
} // namespace guoq
