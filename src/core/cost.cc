#include "core/cost.h"

#include "support/logging.h"

namespace guoq {
namespace core {

const std::string &
objectiveName(Objective obj)
{
    static const std::string names[] = {
        "2q-count", "t-count", "2t+cx", "fidelity", "gate-count", "depth",
    };
    return names[static_cast<int>(obj)];
}

CostFunction::CostFunction(Objective obj, ir::GateSetKind set)
    : objective_(obj), model_(&fidelity::errorModelFor(set))
{
}

bool
CostFunction::countBased() const
{
    switch (objective_) {
      case Objective::TwoQubitCount:
      case Objective::TCount:
      case Objective::TThenTwoQubit:
      case Objective::GateCount:
        return true;
      case Objective::Fidelity:
      case Objective::Depth:
        return false;
    }
    support::panic("CostFunction: unknown objective");
}

double
CostFunction::fromCounts(const ir::CircuitCounts &k) const
{
    // Must mirror operator() term for term: the GUOQ accept test
    // compares these doubles against full-scan costs bit-for-bit.
    switch (objective_) {
      case Objective::TwoQubitCount:
        return static_cast<double>(k.twoQubit) +
               1e-6 * static_cast<double>(k.gates);
      case Objective::TCount:
        return static_cast<double>(k.tGates) +
               1e-6 * static_cast<double>(k.gates);
      case Objective::TThenTwoQubit:
        return 2.0 * static_cast<double>(k.tGates) +
               static_cast<double>(k.twoQubit) +
               1e-6 * static_cast<double>(k.gates);
      case Objective::GateCount:
        return static_cast<double>(k.gates);
      case Objective::Fidelity:
      case Objective::Depth:
        break;
    }
    support::panic("CostFunction::fromCounts: objective needs the gate "
                   "list, not counts");
}

double
CostFunction::operator()(const ir::Circuit &c) const
{
    switch (objective_) {
      case Objective::TwoQubitCount:
        // Tie-break equal 2q counts toward fewer total gates so the
        // search drains 1q redundancy too (the paper's fidelity metric
        // rewards this as well).
        return static_cast<double>(c.twoQubitGateCount()) +
               1e-6 * static_cast<double>(c.gateCount());
      case Objective::TCount:
        return static_cast<double>(c.tGateCount()) +
               1e-6 * static_cast<double>(c.gateCount());
      case Objective::TThenTwoQubit:
        // Example 5.1: cost = 2·#T + #CX.
        return 2.0 * static_cast<double>(c.tGateCount()) +
               static_cast<double>(c.twoQubitGateCount()) +
               1e-6 * static_cast<double>(c.gateCount());
      case Objective::Fidelity:
        return model_->logFidelityCost(c);
      case Objective::GateCount:
        return static_cast<double>(c.gateCount());
      case Objective::Depth:
        return static_cast<double>(c.depth()) +
               1e-6 * static_cast<double>(c.gateCount());
    }
    support::panic("CostFunction: unknown objective");
}

} // namespace core
} // namespace guoq
