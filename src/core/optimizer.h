/**
 * @file
 * The polymorphic optimizer API: one request/report shape for GUOQ,
 * its ablations, and every baseline, behind a string-keyed registry.
 *
 * The paper's claims are comparisons (GUOQ vs. beam search, vs.
 * partition-resynthesis, vs. fixed-pass tools), so the optimizers must
 * be interchangeable at the call site: the CLI's --algorithm flag, the
 * batch driver, and the bench harness all dispatch through
 * OptimizerRegistry::global() and speak OptimizeRequest/OptimizeReport
 * regardless of which algorithm runs. Algorithm-specific knobs travel
 * as string key=value params validated against the optimizer's
 * self-describing metadata (checkParams), so a typo fails loudly with
 * a did-you-mean instead of being silently ignored.
 *
 * The legacy free functions (core::optimize, core::optimizePortfolio,
 * baselines::*Optimize) remain the implementations; the registry
 * entries are thin adapters over them, so existing callers and tests
 * keep compiling and threads=1 "guoq" through this API is bit-for-bit
 * core::optimize().
 */

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/cost.h"
#include "core/observer.h"
#include "core/portfolio.h"
#include "ir/circuit.h"
#include "ir/gate_set.h"
#include "verify/checker.h"

namespace guoq {
namespace core {

/** Algorithm-specific key=value parameters of a request. */
using ParamMap = std::map<std::string, std::string>;

/** Metadata for one declared parameter of an optimizer. */
struct ParamSpec
{
    /** Value shape, for validation and --list-algorithms display. */
    enum class Kind
    {
        Double,
        Int,
        Bool,
    };

    std::string key;      //!< e.g. "beam-width"
    Kind kind = Kind::Double;
    std::string summary;  //!< one-line description
    std::string defaultValue; //!< display form of the default
};

/** Display name of a param kind ("number", "integer", "bool") — used
 *  by validation diagnostics and --list-algorithms alike. */
const char *paramKindName(ParamSpec::Kind kind);

/** Self-description of a registered optimizer. */
struct OptimizerInfo
{
    std::string name;    //!< registry key, e.g. "beam"
    std::string summary; //!< one-line description
    std::vector<ParamSpec> params; //!< declared parameters
};

/** What every optimizer consumes: circuit-independent run settings. */
struct OptimizeRequest
{
    /** Target gate set. */
    ir::GateSetKind set = ir::GateSetKind::Nam;

    /** Soft constraint: what to minimize. */
    Objective objective = Objective::TwoQubitCount;

    /** Hard constraint ε_f. Exact-only optimizers ignore it (their
     *  reports carry errorBound == 0). */
    double epsilonTotal = 0;

    /** Wall-clock budget in seconds. Optimizers that run to
     *  completion (fixed pass sequences) may finish earlier. */
    double timeBudgetSeconds = 10.0;

    /** Optional iteration cap (< 0 = unlimited) for search-based
     *  optimizers; makes runs reproducible across machines. */
    long maxIterations = -1;

    /** RNG seed. Deterministic optimizers ignore it. */
    std::uint64_t seed = 1;

    /** Worker threads. Only portfolio-capable optimizers (the guoq
     *  family) use more than 1. */
    int threads = 1;

    /** Algorithm-specific parameters; validate with checkParams()
     *  against the optimizer's info() before running. */
    ParamMap params;

    /** Progress callback + cooperative cancellation. */
    ObserverHooks hooks;
};

/** What every optimizer produces. */
struct OptimizeReport
{
    std::string algorithm;  //!< registry name of the producer
    ir::Circuit circuit;    //!< the optimized circuit
    double cost = 0;        //!< objective value of `circuit`
    double errorBound = 0;  //!< accumulated ε (0 for exact runs)
    GuoqStats stats;        //!< counters; search optimizers fill what
                            //!< applies, `seconds` is always set
    /** Best-cost-over-time trace when the algorithm records one. */
    std::vector<TracePoint> trace;
    /** Per-worker detail for portfolio-backed runs (empty otherwise). */
    std::vector<PortfolioWorkerReport> workers;
    /**
     * Post-hoc equivalence check of `circuit` against the optimizer's
     * input, when the consumer ran one through verify/checker.h (the
     * CLI's --verify fills it). `verification.method` empty = none
     * was performed.
     */
    verify::VerifyReport verification;
};

/** The polymorphic optimizer interface. */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /** Name, summary, and declared parameters. */
    virtual const OptimizerInfo &info() const = 0;

    /**
     * Validate @p req for this optimizer: params against info()'s
     * metadata (checkParams) plus any algorithm-specific
     * preconditions — e.g. "guoq-resynth" requires epsilonTotal > 0
     * and "beam" requires beam-width >= 1. Returns "" when the
     * request is runnable, a diagnostic otherwise.
     */
    virtual std::string checkRequest(const OptimizeRequest &req) const;

    /**
     * Optimize @p c under @p req. Never returns a circuit worse than
     * the input under req.objective. Callers must validate @p req
     * with checkRequest() first; running an invalid request is a
     * fatal error.
     */
    virtual OptimizeReport run(const ir::Circuit &c,
                               const OptimizeRequest &req) const = 0;
};

/** String-keyed collection of optimizers. */
class OptimizerRegistry
{
  public:
    OptimizerRegistry() = default;

    /** Register @p opt under its info().name (fatal on duplicates). */
    void add(std::unique_ptr<Optimizer> opt);

    /** The optimizer named @p name, or nullptr. */
    const Optimizer *find(const std::string &name) const;

    /** All optimizers, in registration order. */
    std::vector<const Optimizer *> all() const;

    /** All registry keys, in registration order. */
    std::vector<std::string> names() const;

    /**
     * The process-wide registry holding the built-in algorithms:
     * "guoq", "guoq-rewrite", "guoq-resynth" (the GUOQ family and its
     * Q2/Q3 ablations), and the paper's comparison baselines "beam",
     * "qiskit-like", "tket-like", "voqc-like", "partition-resynth",
     * "phase-poly", "rl-like". Built on first use; thread-safe.
     */
    static const OptimizerRegistry &global();

  private:
    std::vector<std::unique_ptr<Optimizer>> optimizers_;
};

/**
 * Validate @p params against @p info: every key must be declared and
 * every value must parse as its declared kind. Returns "" when valid,
 * otherwise a diagnostic naming the offending key — including a
 * did-you-mean suggestion and the declared-key list for unknown keys.
 */
std::string checkParams(const OptimizerInfo &info, const ParamMap &params);

/**
 * The candidate closest to @p name by edit distance, for did-you-mean
 * diagnostics; "" when nothing is within distance 3.
 */
std::string closestName(const std::string &name,
                        const std::vector<std::string> &candidates);

/** Typed accessors for validated params (fatal on a malformed value —
 *  run checkParams first). */
double paramDouble(const ParamMap &params, const std::string &key,
                   double fallback);
long paramLong(const ParamMap &params, const std::string &key,
               long fallback);
bool paramBool(const ParamMap &params, const std::string &key,
               bool fallback);

/** Registers the GUOQ family ("guoq", "guoq-rewrite", "guoq-resynth").
 *  Implemented in core/optimizer.cc. */
void registerGuoqOptimizers(OptimizerRegistry &r);

/** Registers the baseline adapters ("beam", "qiskit-like", ...).
 *  Implemented in baselines/optimizers.cc. */
void registerBaselineOptimizers(OptimizerRegistry &r);

} // namespace core
} // namespace guoq
