/**
 * @file
 * Framework instantiation (paper §4): build the transformation set T
 * for a gate set — every library rewrite rule as a τ_0, the 1q-fusion
 * τ_0 for continuous sets, and the resynthesis τ_ε — plus the weighted
 * sampler that picks resynthesis 1.5% of the time (§5.3).
 */

#pragma once

#include <vector>

#include "core/transformation.h"
#include "ir/gate_set.h"
#include "support/rng.h"

namespace guoq {
namespace core {

/** Which transformation classes to instantiate (Q2/Q3 ablations). */
enum class TransformSelection
{
    Combined,    //!< rewrite rules + fusion + resynthesis (GUOQ)
    RewriteOnly, //!< GUOQ-REWRITE
    ResynthOnly, //!< GUOQ-RESYNTH
};

/** The instantiated set T plus sampling weights. */
class TransformationSet
{
  public:
    /**
     * Build T for @p set.
     * @param selection   ablation switch.
     * @param epsilon     nominal ε for the resynthesis τ_ε (0 disables
     *                    approximate transformations entirely).
     * @param resynth_prob probability of sampling resynthesis
     *                    (paper: 0.015).
     * @param per_call_seconds wall-clock cap per synthesis call.
     * @param max_qubits  subcircuit qubit cap (paper: 3).
     * @param service     synthesis service the resynthesis τ_ε routes
     *                    through (process-wide service when null).
     * @param counters    optional per-run cache-traffic tally.
     */
    TransformationSet(ir::GateSetKind set, TransformSelection selection,
                      double epsilon, double resynth_prob,
                      double per_call_seconds, int max_qubits,
                      synth::SynthService *service = nullptr,
                      synth::ResynthCounters *counters = nullptr);

    /** All transformations (fast first, then resynthesis). */
    const std::vector<Transformation> &all() const { return transforms_; }

    /** True when the set contains at least one fast (ε=0) transform. */
    bool hasFast() const { return fastCount_ > 0; }

    /** True when the set contains a resynthesis transform. */
    bool hasResynth() const { return resynthCount_ > 0; }

    /**
     * Sample per §5.3: resynthesis with probability resynth_prob (when
     * present), otherwise uniform over the fast transformations.
     * Returns an index into all().
     */
    std::size_t sample(support::Rng &rng) const;

  private:
    std::vector<Transformation> transforms_;
    std::size_t fastCount_ = 0;
    std::size_t resynthCount_ = 0;
    double resynthProb_ = 0.015;
};

} // namespace core
} // namespace guoq
