#include "rewrite/rule_libraries.h"

#include <cmath>

#include "ir/gate.h"
#include "ir/gate_set.h"
#include "support/logging.h"

namespace guoq {
namespace rewrite {

namespace dsl {

namespace {

constexpr double kAngleTol = 1e-9;

bool
isMultipleOf2Pi(double a)
{
    return std::abs(ir::normalizeAngle(a)) <= kAngleTol;
}

} // namespace

AngleGuard
zeroGuard(int i)
{
    return [i](const std::vector<double> &angles) {
        return isMultipleOf2Pi(angles[static_cast<std::size_t>(i)]);
    };
}

AngleGuard
equalsGuard(int i, double value)
{
    return [i, value](const std::vector<double> &angles) {
        return isMultipleOf2Pi(angles[static_cast<std::size_t>(i)] - value);
    };
}

AngleGuard
sumZeroGuard(int i, int j)
{
    return [i, j](const std::vector<double> &angles) {
        return isMultipleOf2Pi(angles[static_cast<std::size_t>(i)] +
                               angles[static_cast<std::size_t>(j)]);
    };
}

} // namespace dsl

void
appendCommonCxRules(std::vector<RewriteRule> *rules)
{
    using namespace dsl;
    using ir::GateKind;

    // Fig. 3a: back-to-back CX on the same (control, target) cancels.
    rules->emplace_back("cx_cancel",
                        std::vector<PatternGate>{g(GateKind::CX, {0, 1}),
                                                 g(GateKind::CX, {0, 1})},
                        std::vector<PatternGate>{});

    // Fig. 3b: CXs sharing a control commute.
    rules->emplace_back("cx_commute_shared_control",
                        std::vector<PatternGate>{g(GateKind::CX, {0, 1}),
                                                 g(GateKind::CX, {0, 2})},
                        std::vector<PatternGate>{g(GateKind::CX, {0, 2}),
                                                 g(GateKind::CX, {0, 1})});

    // CXs sharing a target commute.
    rules->emplace_back("cx_commute_shared_target",
                        std::vector<PatternGate>{g(GateKind::CX, {0, 2}),
                                                 g(GateKind::CX, {1, 2})},
                        std::vector<PatternGate>{g(GateKind::CX, {1, 2}),
                                                 g(GateKind::CX, {0, 2})});
}

const std::vector<RewriteRule> &
rulesFor(ir::GateSetKind set)
{
    static const std::vector<RewriteRule> ibmq20 = buildIbmq20Rules();
    static const std::vector<RewriteRule> eagle = buildEagleRules();
    static const std::vector<RewriteRule> ionq = buildIonqRules();
    static const std::vector<RewriteRule> nam = buildNamRules();
    static const std::vector<RewriteRule> cliffordt = buildCliffordTRules();
    switch (set) {
      case ir::GateSetKind::Ibmq20:
        return ibmq20;
      case ir::GateSetKind::IbmEagle:
        return eagle;
      case ir::GateSetKind::IonQ:
        return ionq;
      case ir::GateSetKind::Nam:
        return nam;
      case ir::GateSetKind::CliffordT:
        return cliffordt;
    }
    support::panic("rulesFor: unknown gate set");
}

} // namespace rewrite
} // namespace guoq
