/**
 * @file
 * Rule library for the IBM Eagle gate set {Rz, SX, X, CX} — the basis
 * of IBM's 127-qubit Eagle processors. SX = √X is exact (SX² = X), so
 * several three-gate identities collapse to one or zero gates.
 */

#include <cmath>

#include "rewrite/rule_libraries.h"

namespace guoq {
namespace rewrite {

std::vector<RewriteRule>
buildEagleRules()
{
    using namespace dsl;
    using ir::GateKind;
    using P = std::vector<PatternGate>;

    std::vector<RewriteRule> rules;

    // --- Cancellations --------------------------------------------------
    rules.emplace_back("x_x_cancel",
                       P{g(GateKind::X, {0}), g(GateKind::X, {0})}, P{});
    // SX SX = X exactly: 2 -> 1.
    rules.emplace_back("sx_sx_to_x",
                       P{g(GateKind::SX, {0}), g(GateKind::SX, {0})},
                       P{g(GateKind::X, {0})});
    // SX X SX = SX⁴ = I: 3 -> 0.
    rules.emplace_back("sx_x_sx_cancel",
                       P{g(GateKind::SX, {0}), g(GateKind::X, {0}),
                         g(GateKind::SX, {0})},
                       P{});

    // --- Rz algebra -------------------------------------------------------
    rules.emplace_back(
        "rz_merge",
        P{g(GateKind::Rz, {0}, {v(0)}), g(GateKind::Rz, {0}, {v(1)})},
        P{g(GateKind::Rz, {0}, {AngleExpr::sum(0, 1)})});
    rules.emplace_back("rz_zero_drop", P{g(GateKind::Rz, {0}, {v(0)})}, P{},
                       zeroGuard(0));
    rules.emplace_back("x_rz_x_flip",
                       P{g(GateKind::X, {0}), g(GateKind::Rz, {0}, {v(0)}),
                         g(GateKind::X, {0})},
                       P{g(GateKind::Rz, {0}, {AngleExpr::neg(0)})});
    rules.emplace_back("rz_x_commute",
                       P{g(GateKind::Rz, {0}, {v(0)}), g(GateKind::X, {0})},
                       P{g(GateKind::X, {0}),
                         g(GateKind::Rz, {0}, {AngleExpr::neg(0)})});

    // SX Rz(π) SX = Rz(π) modulo phase (Rx(π/2) Z Rx(π/2) = Z): 3 -> 1.
    rules.emplace_back("sx_rzpi_sx",
                       P{g(GateKind::SX, {0}), g(GateKind::Rz, {0}, {v(0)}),
                         g(GateKind::SX, {0})},
                       P{g(GateKind::Rz, {0}, {lit(M_PI)})},
                       equalsGuard(0, M_PI));

    // --- CX interactions ---------------------------------------------------
    appendCommonCxRules(&rules);
    rules.emplace_back(
        "rz_commute_cx_control",
        P{g(GateKind::Rz, {0}, {v(0)}), g(GateKind::CX, {0, 1})},
        P{g(GateKind::CX, {0, 1}), g(GateKind::Rz, {0}, {v(0)})});
    rules.emplace_back(
        "cx_rz_control_commute",
        P{g(GateKind::CX, {0, 1}), g(GateKind::Rz, {0}, {v(0)})},
        P{g(GateKind::Rz, {0}, {v(0)}), g(GateKind::CX, {0, 1})});
    rules.emplace_back("x_commute_cx_target",
                       P{g(GateKind::X, {1}), g(GateKind::CX, {0, 1})},
                       P{g(GateKind::CX, {0, 1}), g(GateKind::X, {1})});

    return rules;
}

} // namespace rewrite
} // namespace guoq
