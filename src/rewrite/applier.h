/**
 * @file
 * Rule application strategies (paper §5.3, "Randomly selecting
 * subcircuits"): a rewrite transformation performs one full pass over
 * the circuit starting from a random anchor, replacing every disjoint
 * match of the rule.
 *
 * applyRulePass / applyRulePassRandom are the *legacy* copy-everything
 * implementation, kept as the reference the incremental
 * rewrite::RewriteEngine (engine.h) is differentially tested against;
 * hot paths (the GUOQ loop, applyRulesToFixpoint, the rl-like
 * baseline) run through the engine.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "ir/circuit.h"
#include "rewrite/rule.h"
#include "support/rng.h"

namespace guoq {
namespace rewrite {

/** Outcome of a rule pass. */
struct PassResult
{
    ir::Circuit circuit;
    int applications = 0; //!< number of disjoint matches replaced
};

/**
 * One full pass of @p rule over @p c: anchors are visited starting at
 * @p start_anchor and wrapping around; every match whose gates are
 * still unused is applied. Greedy and deterministic given the anchor.
 */
PassResult applyRulePass(const ir::Circuit &c, const RewriteRule &rule,
                         std::size_t start_anchor);

/** applyRulePass from a uniformly random anchor. */
PassResult applyRulePassRandom(const ir::Circuit &c, const RewriteRule &rule,
                               support::Rng &rng);

/**
 * Repeatedly sweep all of @p rules (in order, anchor 0) until no rule
 * fires or @p max_rounds is hit — the fixed-sequence baseline engine.
 */
ir::Circuit applyRulesToFixpoint(const ir::Circuit &c,
                                 const std::vector<RewriteRule> &rules,
                                 int max_rounds = 64);

} // namespace rewrite
} // namespace guoq
