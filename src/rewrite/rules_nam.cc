/**
 * @file
 * Rule library for the Nam gate set {Rz, H, X, CX} (Nam et al. 2018).
 * All rules are exact modulo global phase; the test suite validates
 * every rule against the unitary simulator on random angles.
 */

#include <cmath>

#include "rewrite/rule_libraries.h"

namespace guoq {
namespace rewrite {

std::vector<RewriteRule>
buildNamRules()
{
    using namespace dsl;
    using ir::GateKind;
    using P = std::vector<PatternGate>;

    std::vector<RewriteRule> rules;

    // --- Involution cancellations -------------------------------------
    rules.emplace_back("h_h_cancel",
                       P{g(GateKind::H, {0}), g(GateKind::H, {0})}, P{});
    rules.emplace_back("x_x_cancel",
                       P{g(GateKind::X, {0}), g(GateKind::X, {0})}, P{});

    // --- Rz algebra (Fig. 3d and friends) -----------------------------
    rules.emplace_back(
        "rz_merge",
        P{g(GateKind::Rz, {0}, {v(0)}), g(GateKind::Rz, {0}, {v(1)})},
        P{g(GateKind::Rz, {0}, {AngleExpr::sum(0, 1)})});
    rules.emplace_back("rz_zero_drop", P{g(GateKind::Rz, {0}, {v(0)})}, P{},
                       zeroGuard(0));

    // X Rz(θ) X = Rz(-θ) exactly.
    rules.emplace_back("x_rz_x_flip",
                       P{g(GateKind::X, {0}), g(GateKind::Rz, {0}, {v(0)}),
                         g(GateKind::X, {0})},
                       P{g(GateKind::Rz, {0}, {AngleExpr::neg(0)})});

    // Rz(θ) X = X Rz(-θ): moves X's left so x_x_cancel can fire.
    rules.emplace_back("rz_x_commute",
                       P{g(GateKind::Rz, {0}, {v(0)}), g(GateKind::X, {0})},
                       P{g(GateKind::X, {0}),
                         g(GateKind::Rz, {0}, {AngleExpr::neg(0)})});

    // --- Hadamard conjugations (mod global phase) ----------------------
    // H X H = Z ~ Rz(π).
    rules.emplace_back("h_x_h_to_rz",
                       P{g(GateKind::H, {0}), g(GateKind::X, {0}),
                         g(GateKind::H, {0})},
                       P{g(GateKind::Rz, {0}, {lit(M_PI)})});
    // H Rz(π) H = X modulo phase.
    rules.emplace_back("h_rzpi_h_to_x",
                       P{g(GateKind::H, {0}), g(GateKind::Rz, {0}, {v(0)}),
                         g(GateKind::H, {0})},
                       P{g(GateKind::X, {0})}, equalsGuard(0, M_PI));

    // --- CX interactions ------------------------------------------------
    appendCommonCxRules(&rules);

    // Fig. 3c: Rz on the control commutes across CX (both directions
    // so the randomized search can shuttle rotations either way).
    rules.emplace_back(
        "rz_commute_cx_control",
        P{g(GateKind::Rz, {0}, {v(0)}), g(GateKind::CX, {0, 1})},
        P{g(GateKind::CX, {0, 1}), g(GateKind::Rz, {0}, {v(0)})});
    rules.emplace_back(
        "cx_rz_control_commute",
        P{g(GateKind::CX, {0, 1}), g(GateKind::Rz, {0}, {v(0)})},
        P{g(GateKind::Rz, {0}, {v(0)}), g(GateKind::CX, {0, 1})});

    // X on the target commutes across CX.
    rules.emplace_back("x_commute_cx_target",
                       P{g(GateKind::X, {1}), g(GateKind::CX, {0, 1})},
                       P{g(GateKind::CX, {0, 1}), g(GateKind::X, {1})});

    // (H ⊗ H) CX (H ⊗ H) reverses the CX direction: 5 gates -> 1.
    rules.emplace_back("hh_cx_hh_flip",
                       P{g(GateKind::H, {0}), g(GateKind::H, {1}),
                         g(GateKind::CX, {0, 1}), g(GateKind::H, {0}),
                         g(GateKind::H, {1})},
                       P{g(GateKind::CX, {1, 0})});

    return rules;
}

} // namespace rewrite
} // namespace guoq
