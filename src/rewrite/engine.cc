#include "rewrite/engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "support/logging.h"

namespace guoq {
namespace rewrite {

RewriteEngine::RewriteEngine(ir::Circuit c) : circuit_(std::move(c))
{
    candidate_ = ir::Circuit(circuit_.numQubits());
    reindex();
    recount();
}

void
RewriteEngine::setGateLogCost(std::function<double(const ir::Gate &)> fn)
{
    gateLogCost_ = std::move(fn);
    fidLogCost_ = 0;
    if (gateLogCost_)
        for (const ir::Gate &g : circuit_.gates())
            fidLogCost_ += gateLogCost_(g);
}

void
RewriteEngine::assign(ir::Circuit c)
{
    if (pending())
        support::panic("RewriteEngine::assign: a pass is pending");
    if (c.numQubits() != circuit_.numQubits())
        candidate_ = ir::Circuit(c.numQubits());
    circuit_ = std::move(c);
    reindex();
    recount();
}

ir::Circuit
RewriteEngine::release()
{
    if (pending())
        support::panic("RewriteEngine::release: a pass is pending");
    return std::move(circuit_);
}

std::optional<RewriteEngine::Attempt>
RewriteEngine::preparePass(const RewriteRule &rule,
                           std::size_t start_anchor)
{
    if (pending())
        support::panic("RewriteEngine::preparePass: a pass is pending");
    const std::size_t n = circuit_.size();
    if (n == 0)
        return std::nullopt;

    candidateReady_ = false;
    pendingCounts_ = counts_;
    pendingFidLogCost_ = fidLogCost_;
    usedStamp_.resize(n, 0);
    ++passEpoch_;

    // The legacy pass visits anchors (start + off) % n for off 0..n-1
    // and lets matchAt reject every anchor whose kind differs from the
    // rule's first pattern gate. Restricted to the kind bucket, that
    // cyclic order is: bucket entries >= start ascending, then the
    // wrapped prefix.
    const auto &bucket =
        buckets_[static_cast<std::size_t>(rule.pattern().front().kind)];
    const auto split = static_cast<std::size_t>(
        std::lower_bound(bucket.begin(), bucket.end(), start_anchor) -
        bucket.begin());

    for (std::size_t off = 0; off < bucket.size(); ++off) {
        const std::size_t pos = split + off;
        const std::size_t anchor =
            bucket[pos < bucket.size() ? pos : pos - bucket.size()];
        if (usedStamp_[anchor] == passEpoch_)
            continue;
        auto m = matchAt(circuit_, dag_, rule, anchor, scratch_);
        if (!m)
            continue;
        bool overlap = false;
        for (std::size_t gi : m->gateIndices) {
            if (usedStamp_[gi] == passEpoch_) {
                overlap = true;
                break;
            }
        }
        if (overlap)
            continue;
        PendingMatch pm;
        pm.insertPos = m->insertPos;
        pm.gateIndices = std::move(m->gateIndices);
        pm.replacement =
            rule.instantiateReplacement(m->qubitBinding, m->angleBinding);
        for (std::size_t gi : pm.gateIndices) {
            usedStamp_[gi] = passEpoch_;
            const ir::Gate &g = circuit_.gate(gi);
            --pendingCounts_.gates;
            if (g.arity() == 2)
                --pendingCounts_.twoQubit;
            if (ir::isTGate(g.kind))
                --pendingCounts_.tGates;
            if (gateLogCost_)
                pendingFidLogCost_ -= gateLogCost_(g);
        }
        for (const ir::Gate &g : pm.replacement) {
            ++pendingCounts_.gates;
            if (g.arity() == 2)
                ++pendingCounts_.twoQubit;
            if (ir::isTGate(g.kind))
                ++pendingCounts_.tGates;
            if (gateLogCost_)
                pendingFidLogCost_ += gateLogCost_(g);
        }
        pendingMatches_.push_back(std::move(pm));
    }

    if (pendingMatches_.empty())
        return std::nullopt;

    // Emission order: ascending insertPos, discovery order within a
    // position — the legacy multimap semantics.
    emitOrder_.resize(pendingMatches_.size());
    for (std::size_t i = 0; i < emitOrder_.size(); ++i)
        emitOrder_[i] = i;
    std::stable_sort(emitOrder_.begin(), emitOrder_.end(),
                     [this](std::size_t a, std::size_t b) {
                         return pendingMatches_[a].insertPos <
                                pendingMatches_[b].insertPos;
                     });

    Attempt a;
    a.applications = static_cast<int>(pendingMatches_.size());
    a.startAnchor = start_anchor;
    a.counts = pendingCounts_;
    a.fidelityLogCost = pendingFidLogCost_;
    return a;
}

std::optional<RewriteEngine::Attempt>
RewriteEngine::preparePassRandom(const RewriteRule &rule,
                                 support::Rng &rng)
{
    // Draw-for-draw the legacy applyRulePassRandom: one index draw on
    // a non-empty circuit, none on an empty one.
    const std::size_t anchor =
        circuit_.empty() ? 0 : rng.index(circuit_.size());
    return preparePass(rule, anchor);
}

void
RewriteEngine::materializeInto(std::vector<ir::Gate> &out, bool move_gates)
{
    auto &gates = circuit_.gates();
    const std::size_t n = gates.size();
    // resize + element-wise assignment (not clear + push_back) so the
    // buffer and each gate's qubit/param storage are reused when warm.
    out.resize(pendingCounts_.gates);
    std::size_t w = 0;
    std::size_t j = 0;
    for (std::size_t i = 0; i <= n; ++i) {
        while (j < emitOrder_.size() &&
               pendingMatches_[emitOrder_[j]].insertPos == i) {
            for (ir::Gate &g : pendingMatches_[emitOrder_[j]].replacement)
                out[w++] = move_gates ? std::move(g) : g;
            ++j;
        }
        if (i < n && usedStamp_[i] != passEpoch_)
            out[w++] = move_gates ? std::move(gates[i]) : gates[i];
    }
    if (w != out.size())
        support::panic("RewriteEngine: pending gate count mismatch");
}

const ir::Circuit &
RewriteEngine::candidate()
{
    if (!pending())
        support::panic("RewriteEngine::candidate: no pass is pending");
    if (!candidateReady_) {
        materializeInto(candidate_.gates(), /*move_gates=*/false);
        candidateReady_ = true;
    }
    return candidate_;
}

void
RewriteEngine::commit()
{
    if (!pending())
        support::panic("RewriteEngine::commit: no pass is pending");
    if (candidateReady_) {
        // The pass was already materialized for a cost evaluation:
        // adopt it wholesale instead of re-emitting.
        circuit_.gates().swap(candidate_.gates());
    } else {
        materializeInto(gateScratch_, /*move_gates=*/true);
        circuit_.gates().swap(gateScratch_);
    }
    counts_ = pendingCounts_;
    fidLogCost_ = pendingFidLogCost_;
    clearPending();
    reindex();
}

void
RewriteEngine::discard()
{
    clearPending();
}

void
RewriteEngine::clearPending()
{
    pendingMatches_.clear();
    emitOrder_.clear();
    candidateReady_ = false;
}

void
RewriteEngine::reindex()
{
    dag_.rebuild(circuit_);
    for (auto &b : buckets_)
        b.clear();
    const auto &gates = circuit_.gates();
    for (std::size_t i = 0; i < gates.size(); ++i)
        buckets_[static_cast<std::size_t>(gates[i].kind)].push_back(i);
    usedStamp_.resize(gates.size(), 0);
}

void
RewriteEngine::recount()
{
    counts_ = circuit_.counts();
    fidLogCost_ = 0;
    if (gateLogCost_)
        for (const ir::Gate &g : circuit_.gates())
            fidLogCost_ += gateLogCost_(g);
}

void
RewriteEngine::checkInvariants() const
{
    const auto &gates = circuit_.gates();

    if (counts_ != circuit_.counts())
        support::panic("RewriteEngine: cached counts diverge from the "
                       "working circuit");

    if (gateLogCost_) {
        double fresh = 0;
        for (const ir::Gate &g : gates)
            fresh += gateLogCost_(g);
        // Delta-maintained fp sum: allow ulp-scale drift only.
        if (std::abs(fresh - fidLogCost_) >
            1e-9 * std::max(1.0, std::abs(fresh)))
            support::panic("RewriteEngine: cached fidelity log-cost "
                           "diverges from a fresh scan");
    }

    std::size_t bucketed = 0;
    for (std::size_t k = 0; k < buckets_.size(); ++k) {
        std::size_t prev_idx = 0;
        bool first = true;
        for (std::size_t gi : buckets_[k]) {
            if (gi >= gates.size() ||
                gates[gi].kind != static_cast<ir::GateKind>(k))
                support::panic("RewriteEngine: kind bucket entry does "
                               "not match its gate");
            if (!first && gi <= prev_idx)
                support::panic("RewriteEngine: kind bucket not in "
                               "ascending order");
            prev_idx = gi;
            first = false;
            ++bucketed;
        }
    }
    if (bucketed != gates.size())
        support::panic("RewriteEngine: kind buckets do not cover the "
                       "gate list");

    const dag::CircuitDag fresh(circuit_);
    if (dag_.numGates() != fresh.numGates() ||
        dag_.numQubits() != fresh.numQubits())
        support::panic("RewriteEngine: stale wire index shape");
    for (std::size_t i = 0; i < gates.size(); ++i) {
        for (int q : gates[i].qubits) {
            if (dag_.next(i, q) != fresh.next(i, q) ||
                dag_.prev(i, q) != fresh.prev(i, q))
                support::panic("RewriteEngine: stale wire link");
        }
    }
}

} // namespace rewrite
} // namespace guoq
