/**
 * @file
 * Pattern matching for rewrite rules against a circuit.
 *
 * A match anchors pattern gate 0 at a circuit gate and extends along
 * wires: each subsequent pattern gate must be the immediate next gate
 * (per the DAG) on every wire it shares with already-matched gates, so
 * matched gates are wire-contiguous by construction. A final splice
 * check computes the valid insertion window for the replacement; a
 * match is rejected when no insertion point exists (the "sandwich"
 * non-convex case where an outside gate both follows and precedes
 * matched gates).
 *
 * The core matcher is the free function matchAt() over a
 * (circuit, dag, scratch) triple so callers that probe millions of
 * anchors — the Matcher class and the RewriteEngine — share one
 * implementation and pay zero allocation per probe: the per-qubit
 * maps in MatchScratch are epoch-stamped instead of cleared, and the
 * Match vectors are only materialized on success.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "dag/circuit_dag.h"
#include "ir/circuit.h"
#include "rewrite/rule.h"

namespace guoq {
namespace rewrite {

/** A successful rule match against a circuit. */
struct Match
{
    /** Circuit gate index matched by each pattern gate. */
    std::vector<std::size_t> gateIndices;
    /** Circuit qubit bound to each qubit variable. */
    std::vector<int> qubitBinding;
    /** Value bound to each angle variable. */
    std::vector<double> angleBinding;
    /**
     * Replacement insertion point: the replacement block is emitted
     * immediately before the original gate at this index (or at the
     * end when it equals the gate count).
     */
    std::size_t insertPos = 0;
};

/**
 * Reusable per-probe working memory for matchAt(). The per-qubit maps
 * (variable binding, first/last matched gate per wire) are validated
 * by an epoch stamp, so a probe touches only the qubits of the gates
 * it visits — no O(numQubits) reset, no allocation after warm-up.
 */
struct MatchScratch
{
    // Per circuit qubit, valid when stamp[q] == epoch.
    std::vector<std::uint64_t> stamp;
    std::vector<int> varOf;            //!< qubit -> bound variable
    std::vector<std::size_t> lastOn;   //!< last matched gate on wire
    std::vector<std::size_t> firstOn;  //!< first matched gate on wire
    std::uint64_t epoch = 0;
    // Per rule variable (tiny; reassigned per probe).
    std::vector<int> qubitBinding;
    std::vector<double> angleBinding;
    std::vector<char> angleBound;
    std::vector<std::size_t> gateIndices;
};

/**
 * Try to match @p rule with pattern gate 0 at @p anchor of @p c.
 * @p dag must be the current wire index of @p c. Returns std::nullopt
 * when the structure, angles, guard, or splice window do not admit a
 * match.
 */
std::optional<Match> matchAt(const ir::Circuit &c,
                             const dag::CircuitDag &dag,
                             const RewriteRule &rule, std::size_t anchor,
                             MatchScratch &scratch);

/** Reusable matcher over one circuit (builds the DAG once). */
class Matcher
{
  public:
    explicit Matcher(const ir::Circuit &c);

    /**
     * Try to match @p rule with pattern gate 0 at @p anchor. Returns
     * std::nullopt when the structure, angles, guard, or splice window
     * do not admit a match.
     */
    std::optional<Match> matchAt(const RewriteRule &rule,
                                 std::size_t anchor) const;

    const ir::Circuit &circuit() const { return circuit_; }

  private:
    const ir::Circuit &circuit_;
    dag::CircuitDag dag_;
    mutable MatchScratch scratch_;
};

} // namespace rewrite
} // namespace guoq
