/**
 * @file
 * Rewrite rules with symbolic angles (paper §2.1, Fig. 3).
 *
 * A rule is a pair of small gate-sequence templates over pattern
 * variables: qubit variables (q0, q1, ...) and angle variables
 * (θ0, θ1, ...). The pattern side binds variables by matching; the
 * replacement side may use affine expressions over the bound angles
 * (e.g. the Rz-merge rule of Fig. 3d replaces Rz(θ1) Rz(θ2) with
 * Rz(θ1+θ2)). Rules are exact (ε = 0): every library rule is
 * validated unitary-equivalent modulo global phase by the test suite.
 */

#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "ir/circuit.h"
#include "ir/gate_kind.h"
#include "ir/gate_set.h"
#include "support/rng.h"

namespace guoq {
namespace rewrite {

/**
 * An affine angle expression c + Σ coeff_i · θ_{var_i}.
 *
 * On the pattern side an expression that is a bare variable binds it;
 * anything else is an equality constraint on already-bound values. On
 * the replacement side expressions are evaluated against the binding.
 */
struct AngleExpr
{
    double constant = 0;
    /** (angle-variable index, coefficient) terms. */
    std::vector<std::pair<int, double>> terms;

    /** The bare variable θ_i. */
    static AngleExpr var(int i) { return AngleExpr{0, {{i, 1.0}}}; }

    /** The literal constant c. */
    static AngleExpr lit(double c) { return AngleExpr{c, {}}; }

    /** θ_i + θ_j. */
    static AngleExpr
    sum(int i, int j)
    {
        return AngleExpr{0, {{i, 1.0}, {j, 1.0}}};
    }

    /** -θ_i. */
    static AngleExpr neg(int i) { return AngleExpr{0, {{i, -1.0}}}; }

    /** True when this is a single bare variable (binds on match). */
    bool isBareVar() const;

    /** Largest variable index used, or -1. */
    int maxVar() const;

    /** Evaluate against @p binding (all used vars must be bound). */
    double eval(const std::vector<double> &binding) const;
};

/** One gate template in a pattern or replacement. */
struct PatternGate
{
    ir::GateKind kind = ir::GateKind::X;
    std::vector<int> qubits;       //!< qubit-variable indices
    std::vector<AngleExpr> params; //!< size == gateParamCount(kind)
};

/**
 * Guard over the bound angles; a match is only valid when the guard
 * returns true. Used e.g. by "Rz(θ) with θ ≈ 0 → drop" rules.
 */
using AngleGuard = std::function<bool(const std::vector<double> &)>;

/** A named, validated pattern → replacement rewrite rule. */
class RewriteRule
{
  public:
    RewriteRule(std::string name, std::vector<PatternGate> pattern,
                std::vector<PatternGate> replacement,
                AngleGuard guard = nullptr);

    const std::string &name() const { return name_; }
    const std::vector<PatternGate> &pattern() const { return pattern_; }
    const std::vector<PatternGate> &replacement() const
    {
        return replacement_;
    }
    const AngleGuard &guard() const { return guard_; }

    int numQubitVars() const { return numQubitVars_; }
    int numAngleVars() const { return numAngleVars_; }

    /** Pattern size minus replacement size (> 0 for reducing rules). */
    int
    sizeDelta() const
    {
        return static_cast<int>(pattern_.size()) -
               static_cast<int>(replacement_.size());
    }

    /**
     * Build the replacement gate list for a concrete match.
     * @param qubit_binding circuit qubit for each qubit variable.
     * @param angle_binding value for each angle variable.
     */
    std::vector<ir::Gate> instantiateReplacement(
        const std::vector<int> &qubit_binding,
        const std::vector<double> &angle_binding) const;

    /**
     * Concrete (pattern, replacement) circuit pair on numQubitVars()
     * qubits with random guard-satisfying angles — the test suite
     * checks the pair is unitary-equivalent modulo global phase.
     * Returns false when no guard-satisfying angles were found.
     */
    bool concretize(support::Rng &rng, ir::Circuit *pattern_out,
                    ir::Circuit *replacement_out) const;

  private:
    std::string name_;
    std::vector<PatternGate> pattern_;
    std::vector<PatternGate> replacement_;
    AngleGuard guard_;
    int numQubitVars_ = 0;
    int numAngleVars_ = 0;
};

/**
 * The rule library for @p set — the QUESO-style small exact peepholes
 * GUOQ samples from (≤ 3-gate patterns, no size-increasing rules).
 */
const std::vector<RewriteRule> &rulesFor(ir::GateSetKind set);

} // namespace rewrite
} // namespace guoq
