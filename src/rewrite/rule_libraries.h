/**
 * @file
 * Internal: per-gate-set rule library builders plus the tiny DSL the
 * libraries are written in. Client code uses rulesFor() from rule.h.
 */

#pragma once

#include <vector>

#include "rewrite/rule.h"

namespace guoq {
namespace rewrite {

/** @name Library builders (one per gate set of Table 2) */
/** @{ */
std::vector<RewriteRule> buildIbmq20Rules();
std::vector<RewriteRule> buildEagleRules();
std::vector<RewriteRule> buildIonqRules();
std::vector<RewriteRule> buildNamRules();
std::vector<RewriteRule> buildCliffordTRules();
/** @} */

namespace dsl {

/** A pattern/replacement gate template. */
inline PatternGate
g(ir::GateKind kind, std::vector<int> qubits,
  std::vector<AngleExpr> params = {})
{
    return PatternGate{kind, std::move(qubits), std::move(params)};
}

/** The bare angle variable θ_i. */
inline AngleExpr v(int i) { return AngleExpr::var(i); }

/** A literal angle. */
inline AngleExpr lit(double c) { return AngleExpr::lit(c); }

/** Guard: θ_i ≈ 0 modulo 2π. */
AngleGuard zeroGuard(int i);

/** Guard: θ_i ≈ value modulo 2π. */
AngleGuard equalsGuard(int i, double value);

/** Guard: θ_i + θ_j ≈ 0 modulo 2π. */
AngleGuard sumZeroGuard(int i, int j);

} // namespace dsl

/**
 * Rules shared by every CX-based gate set: CX self-cancellation and
 * the shared-control / shared-target CX commutations (Figs. 3a, 3b).
 */
void appendCommonCxRules(std::vector<RewriteRule> *rules);

} // namespace rewrite
} // namespace guoq
