#include "rewrite/applier.h"

#include <algorithm>
#include <map>

#include "rewrite/engine.h"
#include "rewrite/matcher.h"

namespace guoq {
namespace rewrite {

PassResult
applyRulePass(const ir::Circuit &c, const RewriteRule &rule,
              std::size_t start_anchor)
{
    const std::size_t n = c.size();
    PassResult result;
    if (n == 0) {
        result.circuit = c;
        return result;
    }

    Matcher matcher(c);
    std::vector<bool> used(n, false);
    // insertPos -> replacement gate lists to emit at that position.
    std::multimap<std::size_t, std::vector<ir::Gate>> insertions;

    for (std::size_t off = 0; off < n; ++off) {
        const std::size_t anchor = (start_anchor + off) % n;
        if (used[anchor])
            continue;
        auto m = matcher.matchAt(rule, anchor);
        if (!m)
            continue;
        bool overlap = false;
        for (std::size_t gi : m->gateIndices) {
            if (used[gi]) {
                overlap = true;
                break;
            }
        }
        if (overlap)
            continue;
        for (std::size_t gi : m->gateIndices)
            used[gi] = true;
        insertions.emplace(m->insertPos,
                           rule.instantiateReplacement(m->qubitBinding,
                                                       m->angleBinding));
        ++result.applications;
    }

    ir::Circuit out(c.numQubits());
    for (std::size_t i = 0; i <= n; ++i) {
        auto [lo, hi] = insertions.equal_range(i);
        for (auto it = lo; it != hi; ++it)
            for (ir::Gate &g : it->second)
                out.add(g);
        if (i < n && !used[i])
            out.add(c.gate(i));
    }
    result.circuit = std::move(out);
    return result;
}

PassResult
applyRulePassRandom(const ir::Circuit &c, const RewriteRule &rule,
                    support::Rng &rng)
{
    const std::size_t anchor = c.empty() ? 0 : rng.index(c.size());
    return applyRulePass(c, rule, anchor);
}

ir::Circuit
applyRulesToFixpoint(const ir::Circuit &c,
                     const std::vector<RewriteRule> &rules, int max_rounds)
{
    // One engine carries the circuit across every pass of every round,
    // so each pass probes only its rule's kind bucket instead of
    // rebuilding Matcher + circuit from scratch (legacy behavior is
    // preserved pass for pass; see tests/test_rewrite_engine.cc).
    RewriteEngine engine{ir::Circuit(c)};
    for (int round = 0; round < max_rounds; ++round) {
        int fired = 0;
        for (const RewriteRule &rule : rules) {
            if (engine.preparePass(rule, 0)) {
                fired += 1;
                engine.commit();
            }
        }
        if (fired == 0)
            break;
    }
    return engine.release();
}

} // namespace rewrite
} // namespace guoq
