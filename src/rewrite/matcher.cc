#include "rewrite/matcher.h"

#include <cmath>

#include "ir/gate.h"

namespace guoq {
namespace rewrite {

namespace {

/** Angle equality modulo 2π. */
bool
anglesEqual(double a, double b, double tol = 1e-9)
{
    return std::abs(ir::normalizeAngle(a - b)) <= tol;
}

} // namespace

std::optional<Match>
matchAt(const ir::Circuit &c, const dag::CircuitDag &dag,
        const RewriteRule &rule, std::size_t anchor, MatchScratch &sc)
{
    const auto &gates = c.gates();
    if (anchor >= gates.size())
        return std::nullopt;

    const auto nq = static_cast<std::size_t>(c.numQubits());
    if (sc.stamp.size() < nq) {
        sc.stamp.resize(nq, 0);
        sc.varOf.resize(nq);
        sc.lastOn.resize(nq);
        sc.firstOn.resize(nq);
    }
    ++sc.epoch;
    // Touch a qubit's map entries: defaulted on first access per probe.
    auto touch = [&sc](int q) {
        const auto u = static_cast<std::size_t>(q);
        if (sc.stamp[u] != sc.epoch) {
            sc.stamp[u] = sc.epoch;
            sc.varOf[u] = -1;
            sc.lastOn[u] = dag::kNoGate;
            sc.firstOn[u] = dag::kNoGate;
        }
    };

    const auto &pattern = rule.pattern();
    sc.gateIndices.clear();
    sc.qubitBinding.assign(static_cast<std::size_t>(rule.numQubitVars()),
                           -1);
    sc.angleBinding.assign(static_cast<std::size_t>(rule.numAngleVars()),
                           0.0);
    sc.angleBound.assign(static_cast<std::size_t>(rule.numAngleVars()), 0);

    for (std::size_t pj = 0; pj < pattern.size(); ++pj) {
        const PatternGate &pg = pattern[pj];

        // Find the candidate circuit gate for this pattern gate.
        std::size_t cand = dag::kNoGate;
        if (pj == 0) {
            cand = anchor;
        } else {
            // Every wire of pg already bound to a matched wire must
            // point at the same next gate.
            for (int qv : pg.qubits) {
                const int cq =
                    sc.qubitBinding[static_cast<std::size_t>(qv)];
                if (cq < 0)
                    continue;
                touch(cq);
                if (sc.lastOn[static_cast<std::size_t>(cq)] ==
                    dag::kNoGate)
                    continue;
                const std::size_t nxt =
                    dag.next(sc.lastOn[static_cast<std::size_t>(cq)], cq);
                if (nxt == dag::kNoGate)
                    return std::nullopt;
                if (cand == dag::kNoGate)
                    cand = nxt;
                else if (cand != nxt)
                    return std::nullopt;
            }
            // Patterns are connected: a gate with no bound wire cannot
            // be located deterministically.
            if (cand == dag::kNoGate)
                return std::nullopt;
        }

        const ir::Gate &g = gates[cand];
        if (g.kind != pg.kind)
            return std::nullopt;

        // Bind / check qubit variables positionally.
        for (std::size_t k = 0; k < pg.qubits.size(); ++k) {
            const int qv = pg.qubits[k];
            const int cq = g.qubits[k];
            touch(cq);
            int &bound = sc.qubitBinding[static_cast<std::size_t>(qv)];
            if (bound < 0) {
                if (sc.varOf[static_cast<std::size_t>(cq)] != -1)
                    return std::nullopt; // qubit already taken
                bound = cq;
                sc.varOf[static_cast<std::size_t>(cq)] = qv;
            } else if (bound != cq) {
                return std::nullopt;
            }
        }

        // Bind / check angle variables.
        for (std::size_t k = 0; k < pg.params.size(); ++k) {
            const AngleExpr &e = pg.params[k];
            const double actual = g.params[k];
            if (e.isBareVar()) {
                const int v = e.terms[0].first;
                if (!sc.angleBound[static_cast<std::size_t>(v)]) {
                    sc.angleBinding[static_cast<std::size_t>(v)] = actual;
                    sc.angleBound[static_cast<std::size_t>(v)] = 1;
                    continue;
                }
            }
            // Constraint: all vars must already be bound.
            for (const auto &[v, coeff] : e.terms) {
                if (!sc.angleBound[static_cast<std::size_t>(v)])
                    return std::nullopt;
            }
            if (!anglesEqual(e.eval(sc.angleBinding), actual))
                return std::nullopt;
        }

        // Record wire bookkeeping.
        for (int cq : g.qubits) {
            touch(cq);
            if (sc.firstOn[static_cast<std::size_t>(cq)] == dag::kNoGate)
                sc.firstOn[static_cast<std::size_t>(cq)] = cand;
            sc.lastOn[static_cast<std::size_t>(cq)] = cand;
        }
        sc.gateIndices.push_back(cand);
    }

    if (rule.guard() && !rule.guard()(sc.angleBinding))
        return std::nullopt;

    // Splice window: the replacement must go after every outside gate
    // that precedes the matched run on some bound wire, and before
    // every outside gate that follows it.
    std::size_t pos_lo = 0;
    std::size_t pos_hi = gates.size();
    for (int qv = 0; qv < rule.numQubitVars(); ++qv) {
        const int cq = sc.qubitBinding[static_cast<std::size_t>(qv)];
        if (cq < 0)
            continue; // unused variable (cannot happen for valid rules)
        touch(cq);
        const std::size_t f = sc.firstOn[static_cast<std::size_t>(cq)];
        const std::size_t l = sc.lastOn[static_cast<std::size_t>(cq)];
        if (f == dag::kNoGate)
            continue;
        const std::size_t p = dag.prev(f, cq);
        if (p != dag::kNoGate && p + 1 > pos_lo)
            pos_lo = p + 1;
        const std::size_t n = dag.next(l, cq);
        if (n != dag::kNoGate && n < pos_hi)
            pos_hi = n;
    }
    if (pos_lo > pos_hi)
        return std::nullopt;

    Match m;
    m.gateIndices = sc.gateIndices;
    m.qubitBinding = sc.qubitBinding;
    m.angleBinding = sc.angleBinding;
    m.insertPos = pos_lo;
    return m;
}

Matcher::Matcher(const ir::Circuit &c) : circuit_(c), dag_(c) {}

std::optional<Match>
Matcher::matchAt(const RewriteRule &rule, std::size_t anchor) const
{
    return rewrite::matchAt(circuit_, dag_, rule, anchor, scratch_);
}

} // namespace rewrite
} // namespace guoq
