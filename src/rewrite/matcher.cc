#include "rewrite/matcher.h"

#include <cmath>

#include "ir/gate.h"

namespace guoq {
namespace rewrite {

namespace {

/** Angle equality modulo 2π. */
bool
anglesEqual(double a, double b, double tol = 1e-9)
{
    return std::abs(ir::normalizeAngle(a - b)) <= tol;
}

} // namespace

Matcher::Matcher(const ir::Circuit &c) : circuit_(c), dag_(c) {}

std::optional<Match>
Matcher::matchAt(const RewriteRule &rule, std::size_t anchor) const
{
    const auto &gates = circuit_.gates();
    if (anchor >= gates.size())
        return std::nullopt;

    const auto &pattern = rule.pattern();
    Match m;
    m.gateIndices.reserve(pattern.size());
    m.qubitBinding.assign(static_cast<std::size_t>(rule.numQubitVars()), -1);
    m.angleBinding.assign(static_cast<std::size_t>(rule.numAngleVars()),
                          0.0);
    std::vector<bool> angle_bound(
        static_cast<std::size_t>(rule.numAngleVars()), false);
    // Reverse qubit binding: circuit qubit -> variable (or -1).
    std::vector<int> var_of(static_cast<std::size_t>(circuit_.numQubits()),
                            -1);
    // Last matched gate per circuit qubit (kNoGate when none yet).
    std::vector<std::size_t> last_on(
        static_cast<std::size_t>(circuit_.numQubits()), dag::kNoGate);
    // First matched gate per circuit qubit (for the splice window).
    std::vector<std::size_t> first_on(
        static_cast<std::size_t>(circuit_.numQubits()), dag::kNoGate);

    for (std::size_t pj = 0; pj < pattern.size(); ++pj) {
        const PatternGate &pg = pattern[pj];

        // Find the candidate circuit gate for this pattern gate.
        std::size_t cand = dag::kNoGate;
        if (pj == 0) {
            cand = anchor;
        } else {
            // Every wire of pg already bound to a matched wire must
            // point at the same next gate.
            for (int qv : pg.qubits) {
                const int cq = m.qubitBinding[static_cast<std::size_t>(qv)];
                if (cq < 0 ||
                    last_on[static_cast<std::size_t>(cq)] == dag::kNoGate)
                    continue;
                const std::size_t nxt =
                    dag_.next(last_on[static_cast<std::size_t>(cq)], cq);
                if (nxt == dag::kNoGate)
                    return std::nullopt;
                if (cand == dag::kNoGate)
                    cand = nxt;
                else if (cand != nxt)
                    return std::nullopt;
            }
            // Patterns are connected: a gate with no bound wire cannot
            // be located deterministically.
            if (cand == dag::kNoGate)
                return std::nullopt;
        }

        const ir::Gate &g = gates[cand];
        if (g.kind != pg.kind)
            return std::nullopt;

        // Bind / check qubit variables positionally.
        for (std::size_t k = 0; k < pg.qubits.size(); ++k) {
            const int qv = pg.qubits[k];
            const int cq = g.qubits[k];
            int &bound = m.qubitBinding[static_cast<std::size_t>(qv)];
            if (bound < 0) {
                if (var_of[static_cast<std::size_t>(cq)] != -1)
                    return std::nullopt; // qubit already taken
                bound = cq;
                var_of[static_cast<std::size_t>(cq)] = qv;
            } else if (bound != cq) {
                return std::nullopt;
            }
        }

        // Bind / check angle variables.
        for (std::size_t k = 0; k < pg.params.size(); ++k) {
            const AngleExpr &e = pg.params[k];
            const double actual = g.params[k];
            if (e.isBareVar()) {
                const int v = e.terms[0].first;
                if (!angle_bound[static_cast<std::size_t>(v)]) {
                    m.angleBinding[static_cast<std::size_t>(v)] = actual;
                    angle_bound[static_cast<std::size_t>(v)] = true;
                    continue;
                }
            }
            // Constraint: all vars must already be bound.
            for (const auto &[v, coeff] : e.terms) {
                if (!angle_bound[static_cast<std::size_t>(v)])
                    return std::nullopt;
            }
            if (!anglesEqual(e.eval(m.angleBinding), actual))
                return std::nullopt;
        }

        // Record wire bookkeeping.
        for (int cq : g.qubits) {
            if (first_on[static_cast<std::size_t>(cq)] == dag::kNoGate)
                first_on[static_cast<std::size_t>(cq)] = cand;
            last_on[static_cast<std::size_t>(cq)] = cand;
        }
        m.gateIndices.push_back(cand);
    }

    if (rule.guard() && !rule.guard()(m.angleBinding))
        return std::nullopt;

    // Splice window: the replacement must go after every outside gate
    // that precedes the matched run on some bound wire, and before
    // every outside gate that follows it.
    std::size_t pos_lo = 0;
    std::size_t pos_hi = gates.size();
    for (int qv = 0; qv < rule.numQubitVars(); ++qv) {
        const int cq = m.qubitBinding[static_cast<std::size_t>(qv)];
        if (cq < 0)
            continue; // unused variable (cannot happen for valid rules)
        const std::size_t f = first_on[static_cast<std::size_t>(cq)];
        const std::size_t l = last_on[static_cast<std::size_t>(cq)];
        if (f == dag::kNoGate)
            continue;
        const std::size_t p = dag_.prev(f, cq);
        if (p != dag::kNoGate && p + 1 > pos_lo)
            pos_lo = p + 1;
        const std::size_t n = dag_.next(l, cq);
        if (n != dag::kNoGate && n < pos_hi)
            pos_hi = n;
    }
    if (pos_lo > pos_hi)
        return std::nullopt;
    m.insertPos = pos_lo;
    return m;
}

} // namespace rewrite
} // namespace guoq
