#include "rewrite/rule.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"

namespace guoq {
namespace rewrite {

bool
AngleExpr::isBareVar() const
{
    return constant == 0 && terms.size() == 1 && terms[0].second == 1.0;
}

int
AngleExpr::maxVar() const
{
    int m = -1;
    for (const auto &[v, coeff] : terms)
        m = std::max(m, v);
    return m;
}

double
AngleExpr::eval(const std::vector<double> &binding) const
{
    double v = constant;
    for (const auto &[var, coeff] : terms) {
        if (var < 0 || var >= static_cast<int>(binding.size()))
            support::panic("AngleExpr::eval: unbound angle variable");
        v += coeff * binding[static_cast<std::size_t>(var)];
    }
    return v;
}

RewriteRule::RewriteRule(std::string name, std::vector<PatternGate> pattern,
                         std::vector<PatternGate> replacement,
                         AngleGuard guard)
    : name_(std::move(name)), pattern_(std::move(pattern)),
      replacement_(std::move(replacement)), guard_(std::move(guard))
{
    if (pattern_.empty())
        support::panic("RewriteRule '" + name_ + "': empty pattern");
    for (const PatternGate &g : pattern_) {
        for (int q : g.qubits)
            numQubitVars_ = std::max(numQubitVars_, q + 1);
        for (const AngleExpr &e : g.params)
            numAngleVars_ = std::max(numAngleVars_, e.maxVar() + 1);
        if (static_cast<int>(g.qubits.size()) != ir::gateArity(g.kind) ||
            static_cast<int>(g.params.size()) != ir::gateParamCount(g.kind))
            support::panic("RewriteRule '" + name_ +
                           "': pattern gate shape mismatch");
    }
    for (const PatternGate &g : replacement_) {
        for (int q : g.qubits) {
            if (q < 0 || q >= numQubitVars_)
                support::panic("RewriteRule '" + name_ +
                               "': replacement uses unbound qubit var");
        }
        if (static_cast<int>(g.qubits.size()) != ir::gateArity(g.kind) ||
            static_cast<int>(g.params.size()) != ir::gateParamCount(g.kind))
            support::panic("RewriteRule '" + name_ +
                           "': replacement gate shape mismatch");
        for (const AngleExpr &e : g.params) {
            if (e.maxVar() >= numAngleVars_)
                support::panic("RewriteRule '" + name_ +
                               "': replacement uses unbound angle var");
        }
    }
}

std::vector<ir::Gate>
RewriteRule::instantiateReplacement(
    const std::vector<int> &qubit_binding,
    const std::vector<double> &angle_binding) const
{
    std::vector<ir::Gate> out;
    out.reserve(replacement_.size());
    for (const PatternGate &g : replacement_) {
        std::vector<int> qubits;
        qubits.reserve(g.qubits.size());
        for (int v : g.qubits)
            qubits.push_back(qubit_binding[static_cast<std::size_t>(v)]);
        std::vector<double> params;
        params.reserve(g.params.size());
        for (const AngleExpr &e : g.params)
            params.push_back(ir::normalizeAngle(e.eval(angle_binding)));
        out.emplace_back(g.kind, std::move(qubits), std::move(params));
    }
    return out;
}

bool
RewriteRule::concretize(support::Rng &rng, ir::Circuit *pattern_out,
                        ir::Circuit *replacement_out) const
{
    constexpr int kMaxGuardTries = 64;
    std::vector<double> angles(static_cast<std::size_t>(numAngleVars_));
    for (int attempt = 0; attempt < kMaxGuardTries; ++attempt) {
        for (double &a : angles)
            a = rng.uniform(-M_PI, M_PI);
        if (!guard_ || guard_(angles)) {
            ir::Circuit pat(numQubitVars_);
            for (const PatternGate &g : pattern_) {
                std::vector<double> params;
                for (const AngleExpr &e : g.params)
                    params.push_back(e.eval(angles));
                pat.add(g.kind, g.qubits, params);
            }
            ir::Circuit rep(numQubitVars_);
            std::vector<int> identity(
                static_cast<std::size_t>(numQubitVars_));
            for (int q = 0; q < numQubitVars_; ++q)
                identity[static_cast<std::size_t>(q)] = q;
            for (ir::Gate &g : instantiateReplacement(identity, angles))
                rep.add(std::move(g));
            *pattern_out = std::move(pat);
            *replacement_out = std::move(rep);
            return true;
        }
    }
    // Guards like "θ ≈ 0" or "θ ≈ π" never pass on random draws; try
    // the guards' common fixed points instead.
    for (const double fixed : {0.0, M_PI, M_PI / 2, M_PI / 4, -M_PI / 2}) {
        std::fill(angles.begin(), angles.end(), fixed);
        if (guard_ && !guard_(angles))
            continue;
        ir::Circuit pat(numQubitVars_);
        for (const PatternGate &g : pattern_) {
            std::vector<double> params;
            for (const AngleExpr &e : g.params)
                params.push_back(e.eval(angles));
            pat.add(g.kind, g.qubits, params);
        }
        ir::Circuit rep(numQubitVars_);
        std::vector<int> identity(
            static_cast<std::size_t>(numQubitVars_));
        for (int q = 0; q < numQubitVars_; ++q)
            identity[static_cast<std::size_t>(q)] = q;
        for (ir::Gate &g : instantiateReplacement(identity, angles))
            rep.add(std::move(g));
        *pattern_out = std::move(pat);
        *replacement_out = std::move(rep);
        return true;
    }
    return false;
}

} // namespace rewrite
} // namespace guoq
