/**
 * @file
 * Rule library for the fault-tolerant Clifford+T gate set
 * {T, T†, S, S†, H, X, CX} (paper Q4).
 *
 * The phase hierarchy T² = S, S² = Z drives the T-reduction rules;
 * diagonal gates commute with each other and across CX controls, which
 * lets the randomized search shuttle T's together for merging.
 */

#include "rewrite/rule_libraries.h"

namespace guoq {
namespace rewrite {

namespace {

using dsl::g;
using ir::GateKind;
using P = std::vector<PatternGate>;

/** Append pattern (a b -> empty) and its reverse (b a -> empty). */
void
appendInversePair(std::vector<RewriteRule> *rules, const std::string &name,
                  GateKind a, GateKind b)
{
    rules->emplace_back(name, P{g(a, {0}), g(b, {0})}, P{});
    if (a != b)
        rules->emplace_back(name + "_rev", P{g(b, {0}), g(a, {0})}, P{});
}

} // namespace

std::vector<RewriteRule>
buildCliffordTRules()
{
    std::vector<RewriteRule> rules;

    // --- Cancellations ---------------------------------------------------
    appendInversePair(&rules, "t_tdg_cancel", GateKind::T, GateKind::Tdg);
    appendInversePair(&rules, "s_sdg_cancel", GateKind::S, GateKind::Sdg);
    appendInversePair(&rules, "h_h_cancel", GateKind::H, GateKind::H);
    appendInversePair(&rules, "x_x_cancel", GateKind::X, GateKind::X);

    // --- Phase-gate mergers (the T-count reducers) -------------------------
    rules.emplace_back("t_t_to_s", P{g(GateKind::T, {0}), g(GateKind::T, {0})},
                       P{g(GateKind::S, {0})});
    rules.emplace_back("tdg_tdg_to_sdg",
                       P{g(GateKind::Tdg, {0}), g(GateKind::Tdg, {0})},
                       P{g(GateKind::Sdg, {0})});
    // T S S T = Z Z = I? No: T S S T = T² S² = S Z; kept simple instead:
    // S S S S = Z² = identity.
    rules.emplace_back("ssss_cancel",
                       P{g(GateKind::S, {0}), g(GateKind::S, {0}),
                         g(GateKind::S, {0}), g(GateKind::S, {0})},
                       P{});
    // S† = S Z = S·S·S: normalize S† S† -> S S is wrong; use S†² = Z† = Z
    // = S². (Both sides are Z modulo nothing — exact.)
    rules.emplace_back("sdg_sdg_to_s_s",
                       P{g(GateKind::Sdg, {0}), g(GateKind::Sdg, {0})},
                       P{g(GateKind::S, {0}), g(GateKind::S, {0})});

    // --- Pauli conjugations (mod global phase) ------------------------------
    // X T X = e^{iπ/4} T†.
    rules.emplace_back("x_t_x_to_tdg",
                       P{g(GateKind::X, {0}), g(GateKind::T, {0}),
                         g(GateKind::X, {0})},
                       P{g(GateKind::Tdg, {0})});
    rules.emplace_back("x_tdg_x_to_t",
                       P{g(GateKind::X, {0}), g(GateKind::Tdg, {0}),
                         g(GateKind::X, {0})},
                       P{g(GateKind::T, {0})});
    rules.emplace_back("x_s_x_to_sdg",
                       P{g(GateKind::X, {0}), g(GateKind::S, {0}),
                         g(GateKind::X, {0})},
                       P{g(GateKind::Sdg, {0})});
    rules.emplace_back("x_sdg_x_to_s",
                       P{g(GateKind::X, {0}), g(GateKind::Sdg, {0}),
                         g(GateKind::X, {0})},
                       P{g(GateKind::S, {0})});

    // --- Hadamard conjugations ------------------------------------------------
    // H X H = Z = S S.
    rules.emplace_back("h_x_h_to_ss",
                       P{g(GateKind::H, {0}), g(GateKind::X, {0}),
                         g(GateKind::H, {0})},
                       P{g(GateKind::S, {0}), g(GateKind::S, {0})});
    // H S S H = H Z H = X: 4 -> 1.
    rules.emplace_back("h_ss_h_to_x",
                       P{g(GateKind::H, {0}), g(GateKind::S, {0}),
                         g(GateKind::S, {0}), g(GateKind::H, {0})},
                       P{g(GateKind::X, {0})});

    // --- Diagonal reordering (canonicalize: T's drift left) ----------------
    rules.emplace_back("s_t_reorder", P{g(GateKind::S, {0}),
                                        g(GateKind::T, {0})},
                       P{g(GateKind::T, {0}), g(GateKind::S, {0})});
    rules.emplace_back("sdg_t_reorder", P{g(GateKind::Sdg, {0}),
                                          g(GateKind::T, {0})},
                       P{g(GateKind::T, {0}), g(GateKind::Sdg, {0})});
    rules.emplace_back("s_tdg_reorder", P{g(GateKind::S, {0}),
                                          g(GateKind::Tdg, {0})},
                       P{g(GateKind::Tdg, {0}), g(GateKind::S, {0})});

    // --- CX interactions ----------------------------------------------------
    appendCommonCxRules(&rules);
    for (GateKind diag :
         {GateKind::T, GateKind::Tdg, GateKind::S, GateKind::Sdg}) {
        rules.emplace_back(
            ir::gateName(diag) + "_commute_cx_control",
            P{g(diag, {0}), g(GateKind::CX, {0, 1})},
            P{g(GateKind::CX, {0, 1}), g(diag, {0})});
        rules.emplace_back(
            "cx_" + ir::gateName(diag) + "_control_commute",
            P{g(GateKind::CX, {0, 1}), g(diag, {0})},
            P{g(diag, {0}), g(GateKind::CX, {0, 1})});
    }
    rules.emplace_back("x_commute_cx_target",
                       P{g(GateKind::X, {1}), g(GateKind::CX, {0, 1})},
                       P{g(GateKind::CX, {0, 1}), g(GateKind::X, {1})});
    rules.emplace_back("hh_cx_hh_flip",
                       P{g(GateKind::H, {0}), g(GateKind::H, {1}),
                         g(GateKind::CX, {0, 1}), g(GateKind::H, {0}),
                         g(GateKind::H, {1})},
                       P{g(GateKind::CX, {1, 0})});

    return rules;
}

} // namespace rewrite
} // namespace guoq
