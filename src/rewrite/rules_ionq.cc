/**
 * @file
 * Rule library for the IonQ native gate set {Rx, Ry, Rz, Rxx}.
 *
 * The ion-trap entangler Rxx(θ) = exp(-i θ/2 X⊗X) commutes with Rx on
 * either qubit and with other Rxx's sharing a qubit (all are generated
 * by commuting X-tensor terms). Same-axis rotations merge; mixed-axis
 * 1q chains are left to the Euler-fusion transformation.
 */

#include <cmath>

#include "rewrite/rule_libraries.h"

namespace guoq {
namespace rewrite {

namespace {

using dsl::g;
using dsl::lit;
using dsl::v;
using ir::GateKind;
using P = std::vector<PatternGate>;

/** Append merge + zero-drop for a same-axis 1q rotation kind. */
void
appendRotationAlgebra(std::vector<RewriteRule> *rules, GateKind kind,
                      const std::string &axis)
{
    rules->emplace_back(
        axis + "_merge",
        P{g(kind, {0}, {v(0)}), g(kind, {0}, {v(1)})},
        P{g(kind, {0}, {AngleExpr::sum(0, 1)})});
    rules->emplace_back(axis + "_zero_drop", P{g(kind, {0}, {v(0)})}, P{},
                        dsl::zeroGuard(0));
}

} // namespace

std::vector<RewriteRule>
buildIonqRules()
{
    std::vector<RewriteRule> rules;

    appendRotationAlgebra(&rules, GateKind::Rx, "rx");
    appendRotationAlgebra(&rules, GateKind::Ry, "ry");
    appendRotationAlgebra(&rules, GateKind::Rz, "rz");

    // Rxx merge and zero drop on a fixed qubit pair.
    rules.emplace_back(
        "rxx_merge",
        P{g(GateKind::Rxx, {0, 1}, {v(0)}),
          g(GateKind::Rxx, {0, 1}, {v(1)})},
        P{g(GateKind::Rxx, {0, 1}, {AngleExpr::sum(0, 1)})});
    rules.emplace_back("rxx_zero_drop",
                       P{g(GateKind::Rxx, {0, 1}, {v(0)})}, P{},
                       dsl::zeroGuard(0));

    // Rx commutes with Rxx on either slot (X commutes with X⊗X).
    rules.emplace_back(
        "rx_commute_rxx_first",
        P{g(GateKind::Rx, {0}, {v(0)}), g(GateKind::Rxx, {0, 1}, {v(1)})},
        P{g(GateKind::Rxx, {0, 1}, {v(1)}), g(GateKind::Rx, {0}, {v(0)})});
    rules.emplace_back(
        "rx_commute_rxx_second",
        P{g(GateKind::Rx, {1}, {v(0)}), g(GateKind::Rxx, {0, 1}, {v(1)})},
        P{g(GateKind::Rxx, {0, 1}, {v(1)}), g(GateKind::Rx, {1}, {v(0)})});
    rules.emplace_back(
        "rxx_rx_commute_first",
        P{g(GateKind::Rxx, {0, 1}, {v(1)}), g(GateKind::Rx, {0}, {v(0)})},
        P{g(GateKind::Rx, {0}, {v(0)}), g(GateKind::Rxx, {0, 1}, {v(1)})});

    // Rxx's sharing their first qubit commute.
    rules.emplace_back(
        "rxx_commute_shared_first",
        P{g(GateKind::Rxx, {0, 1}, {v(0)}),
          g(GateKind::Rxx, {0, 2}, {v(1)})},
        P{g(GateKind::Rxx, {0, 2}, {v(1)}),
          g(GateKind::Rxx, {0, 1}, {v(0)})});

    // Rx(π) Rz(θ) Rx(π) = Rz(-θ) modulo phase: 3 -> 1.
    rules.emplace_back(
        "rxpi_rz_rxpi_flip",
        P{g(GateKind::Rx, {0}, {v(0)}), g(GateKind::Rz, {0}, {v(1)}),
          g(GateKind::Rx, {0}, {v(2)})},
        P{g(GateKind::Rz, {0}, {AngleExpr::neg(1)})},
        [](const std::vector<double> &a) {
            return std::abs(ir::normalizeAngle(a[0] - M_PI)) <= 1e-9 &&
                   std::abs(ir::normalizeAngle(a[2] - M_PI)) <= 1e-9;
        });

    return rules;
}

} // namespace rewrite
} // namespace guoq
