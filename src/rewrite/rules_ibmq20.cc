/**
 * @file
 * Rule library for the IBM Q20 gate set {U1, U2, U3, CX}.
 *
 * The U-family composes affinely in several useful cases: U1's merge
 * outright, and a U1 absorbs into the adjacent Euler angle of a U2/U3
 * (U3(θ,φ,λ) ∝ Rz(φ) Ry(θ) Rz(λ), U1(a) = Rz(a) up to phase). Full
 * U3·U3 fusion is not affine and is handled by the 1q-fusion
 * transformation in core/ instead.
 */

#include <cmath>

#include "rewrite/rule_libraries.h"

namespace guoq {
namespace rewrite {

std::vector<RewriteRule>
buildIbmq20Rules()
{
    using namespace dsl;
    using ir::GateKind;
    using P = std::vector<PatternGate>;

    std::vector<RewriteRule> rules;

    // --- U1 algebra -----------------------------------------------------
    rules.emplace_back(
        "u1_merge",
        P{g(GateKind::U1, {0}, {v(0)}), g(GateKind::U1, {0}, {v(1)})},
        P{g(GateKind::U1, {0}, {AngleExpr::sum(0, 1)})});
    rules.emplace_back("u1_zero_drop", P{g(GateKind::U1, {0}, {v(0)})}, P{},
                       zeroGuard(0));

    // U1(a) then U3(θ,φ,λ) = U3(θ, φ, λ+a): the phase absorbs into the
    // inner Euler angle. 2 -> 1.
    rules.emplace_back(
        "u1_u3_merge",
        P{g(GateKind::U1, {0}, {v(0)}),
          g(GateKind::U3, {0}, {v(1), v(2), v(3)})},
        P{g(GateKind::U3, {0}, {v(1), v(2), AngleExpr::sum(3, 0)})});

    // U3(θ,φ,λ) then U1(a) = U3(θ, φ+a, λ). 2 -> 1.
    rules.emplace_back(
        "u3_u1_merge",
        P{g(GateKind::U3, {0}, {v(1), v(2), v(3)}),
          g(GateKind::U1, {0}, {v(0)})},
        P{g(GateKind::U3, {0}, {v(1), AngleExpr::sum(2, 0), v(3)})});

    // Same absorptions for U2 (= U3 with θ = π/2).
    rules.emplace_back(
        "u1_u2_merge",
        P{g(GateKind::U1, {0}, {v(0)}), g(GateKind::U2, {0}, {v(1), v(2)})},
        P{g(GateKind::U2, {0}, {v(1), AngleExpr::sum(2, 0)})});
    rules.emplace_back(
        "u2_u1_merge",
        P{g(GateKind::U2, {0}, {v(1), v(2)}), g(GateKind::U1, {0}, {v(0)})},
        P{g(GateKind::U2, {0}, {AngleExpr::sum(1, 0), v(2)})});

    // U3 with θ ≈ 0 degenerates to a phase: U3(0,φ,λ) = U1(φ+λ).
    rules.emplace_back("u3_theta0_to_u1",
                       P{g(GateKind::U3, {0}, {v(0), v(1), v(2)})},
                       P{g(GateKind::U1, {0}, {AngleExpr::sum(1, 2)})},
                       zeroGuard(0));

    // U2(a,b) U2(c,d) with b+c ≈ 0 collapses the Ry(π/2) pair into
    // Ry(π): result is U3(π, c-... ) — in time order, first U2(a,b)
    // then U2(c,d) gives U3(π, c, b) modulo phase.
    rules.emplace_back(
        "u2_u2_pi_merge",
        P{g(GateKind::U2, {0}, {v(0), v(1)}),
          g(GateKind::U2, {0}, {v(2), v(3)})},
        P{g(GateKind::U3, {0}, {lit(M_PI), v(2), v(1)})},
        sumZeroGuard(1, 2));

    // --- CX interactions ---------------------------------------------------
    appendCommonCxRules(&rules);
    rules.emplace_back(
        "u1_commute_cx_control",
        P{g(GateKind::U1, {0}, {v(0)}), g(GateKind::CX, {0, 1})},
        P{g(GateKind::CX, {0, 1}), g(GateKind::U1, {0}, {v(0)})});
    rules.emplace_back(
        "cx_u1_control_commute",
        P{g(GateKind::CX, {0, 1}), g(GateKind::U1, {0}, {v(0)})},
        P{g(GateKind::U1, {0}, {v(0)}), g(GateKind::CX, {0, 1})});

    return rules;
}

} // namespace rewrite
} // namespace guoq
