/**
 * @file
 * The incremental rewrite engine: the stateful fast path behind the
 * GUOQ loop, applyRulesToFixpoint, and the rl-like baseline.
 *
 * The legacy pass (applier.cc) pays O(n) several times per *attempt*:
 * it builds a fresh Matcher (full CircuitDag), probes all n anchors
 * even when the gate kind cannot match the rule's first pattern gate,
 * and rebuilds the whole circuit through a std::multimap. The engine
 * instead owns the working circuit together with a persistent wire
 * index and per-GateKind anchor buckets:
 *
 *   circuit_  ──┬── dag_      (CircuitDag, rebuilt in place, no alloc)
 *               └── buckets_  (GateKind -> ascending gate indices)
 *
 *   preparePass(rule)  probe only buckets_[pattern[0].kind], in the
 *                      legacy cyclic anchor order   — O(bucket·|pat|)
 *   commit()           one compaction sweep + reindex — O(n), accepted
 *                      passes only
 *   discard()          drop the pending pass          — O(matches)
 *
 * so a *rejected* attempt (the overwhelming majority in a Metropolis
 * search) costs bucket probes instead of several full-circuit passes,
 * and gate/2q/T counters (plus the fidelity log-cost sum, when
 * configured) are maintained as deltas from the removed/inserted gate
 * lists instead of re-scanned.
 *
 * Equivalence contract: for any (circuit, rule, anchor), a
 * preparePass + commit yields bit-for-bit the gate list of the legacy
 * applyRulePass, and preparePassRandom consumes exactly the same RNG
 * draws as applyRulePassRandom — tests/test_rewrite_engine.cc holds
 * the two implementations to that differentially.
 */

#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "dag/circuit_dag.h"
#include "ir/circuit.h"
#include "rewrite/matcher.h"
#include "rewrite/rule.h"
#include "support/rng.h"

namespace guoq {
namespace rewrite {

/** The incremental pass applier (see file comment). */
class RewriteEngine
{
  public:
    /** Take ownership of @p c and index it. */
    explicit RewriteEngine(ir::Circuit c);

    /** The working circuit (always index-consistent). */
    const ir::Circuit &circuit() const { return circuit_; }

    /** Cached count metrics of circuit() — O(1). */
    const ir::CircuitCounts &counts() const { return counts_; }

    /**
     * Cached Σ -log(1-err) over circuit() (0 unless setGateLogCost was
     * called). Maintained by floating-point deltas, so it can drift by
     * ulps from a fresh scan over a long run — informational, not used
     * for accept decisions.
     */
    double fidelityLogCost() const { return fidLogCost_; }

    /**
     * Configure the per-gate -log(1-err) weight for the cached
     * fidelity log-cost sum, and (re)initialize the sum by one scan.
     */
    void setGateLogCost(std::function<double(const ir::Gate &)> fn);

    /** Replace the working circuit wholesale (fusion/resynth accepts). */
    void assign(ir::Circuit c);

    /** Move the working circuit out; the engine is then empty. */
    ir::Circuit release();

    /** A prepared (not yet applied) rule pass. */
    struct Attempt
    {
        int applications = 0;       //!< matches recorded by the pass
        std::size_t startAnchor = 0; //!< anchor the pass started from
        ir::CircuitCounts counts;   //!< counts *after* the pass
        double fidelityLogCost = 0; //!< cached sum after the pass
    };

    /**
     * Run one full rule pass from @p start_anchor in the legacy cyclic
     * anchor order, recording every non-overlapping match, without
     * touching the working circuit. Returns std::nullopt (and leaves
     * nothing pending) when no match fires. The pass must then be
     * resolved with commit() or discard() before the next one.
     */
    std::optional<Attempt> preparePass(const RewriteRule &rule,
                                       std::size_t start_anchor);

    /**
     * preparePass from a random anchor, consuming exactly the RNG
     * draws of the legacy applyRulePassRandom (one index draw when the
     * circuit is non-empty, none when empty).
     */
    std::optional<Attempt> preparePassRandom(const RewriteRule &rule,
                                             support::Rng &rng);

    /** True while a prepared pass awaits commit()/discard(). */
    bool pending() const { return !pendingMatches_.empty(); }

    /**
     * The circuit the pending pass would produce, materialized lazily
     * (count-based objectives never need it). Valid until the pass is
     * resolved.
     */
    const ir::Circuit &candidate();

    /** Apply the pending pass to the working circuit and reindex. */
    void commit();

    /** Drop the pending pass; the working circuit is untouched. */
    void discard();

    /**
     * Revalidate every cached structure — wire links, kind buckets,
     * counters — against a fresh scan of the working circuit. Panics
     * (support::panic) on any corruption; used by the test suite after
     * splices and by debugging sessions.
     */
    void checkInvariants() const;

  private:
    void reindex();
    void recount();
    /**
     * Emit the pending pass into @p out, replicating the legacy
     * rebuild: at each original position, first the replacement blocks
     * whose insertPos equals it (in discovery order), then the
     * original gate when unmatched. @p move_gates moves rather than
     * copies both sources (commit path).
     */
    void materializeInto(std::vector<ir::Gate> &out, bool move_gates);
    void clearPending();

    ir::Circuit circuit_;
    dag::CircuitDag dag_;
    std::array<std::vector<std::size_t>,
               static_cast<std::size_t>(ir::GateKind::NumKinds)>
        buckets_;
    ir::CircuitCounts counts_;
    double fidLogCost_ = 0;
    std::function<double(const ir::Gate &)> gateLogCost_;

    MatchScratch scratch_;

    // Pending pass state. usedStamp_[i] == passEpoch_ marks gate i as
    // consumed by the pending (or most recent) pass.
    struct PendingMatch
    {
        std::size_t insertPos = 0;
        std::vector<std::size_t> gateIndices;
        std::vector<ir::Gate> replacement;
    };
    std::vector<PendingMatch> pendingMatches_;
    std::vector<std::uint64_t> usedStamp_;
    std::uint64_t passEpoch_ = 0;
    ir::CircuitCounts pendingCounts_;
    double pendingFidLogCost_ = 0;
    std::vector<std::size_t> emitOrder_; // pending sorted by insertPos
    ir::Circuit candidate_;
    bool candidateReady_ = false;
    std::vector<ir::Gate> gateScratch_; // commit compaction buffer
};

} // namespace rewrite
} // namespace guoq
