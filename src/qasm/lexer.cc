#include "qasm/lexer.h"

#include <cctype>
#include <stdexcept>

#include "support/logging.h"

namespace guoq {
namespace qasm {

void
Lexer::skipSpaceAndComments(Token &err)
{
    while (pos_ < src_.size()) {
        const char c = src_[pos_];
        if (c == '\n') {
            ++line_;
            ++pos_;
            lineStart_ = pos_;
        } else if (std::isspace(static_cast<unsigned char>(c))) {
            ++pos_;
        } else if (c == '/' && pos_ + 1 < src_.size() &&
                   src_[pos_ + 1] == '/') {
            while (pos_ < src_.size() && src_[pos_] != '\n')
                ++pos_;
        } else if (c == '/' && pos_ + 1 < src_.size() &&
                   src_[pos_ + 1] == '*') {
            const int start_line = line_;
            const int start_col =
                static_cast<int>(pos_ - lineStart_) + 1;
            pos_ += 2;
            while (pos_ + 1 < src_.size() &&
                   !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
                if (src_[pos_] == '\n') {
                    ++line_;
                    lineStart_ = pos_ + 1;
                }
                ++pos_;
            }
            if (pos_ + 1 >= src_.size()) {
                pos_ = src_.size();
                err.kind = Tok::Error;
                err.text = "unterminated block comment";
                err.line = start_line;
                err.col = start_col;
                return;
            }
            pos_ += 2; // closing */
        } else {
            break;
        }
    }
}

Token
Lexer::next()
{
    Token t;
    skipSpaceAndComments(t);
    if (t.kind == Tok::Error)
        return t;
    t.line = line_;
    t.col = static_cast<int>(pos_ - lineStart_) + 1;
    if (pos_ >= src_.size()) {
        t.kind = Tok::End;
        return t;
    }
    const char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        const std::size_t start = pos_;
        while (pos_ < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '_'))
            ++pos_;
        t.kind = Tok::Ident;
        t.text = src_.substr(start, pos_ - start);
        return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
        const std::size_t start = pos_;
        while (pos_ < src_.size() &&
               (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '.' || src_[pos_] == 'e' ||
                src_[pos_] == 'E' ||
                ((src_[pos_] == '+' || src_[pos_] == '-') && pos_ > start &&
                 (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E'))))
            ++pos_;
        t.text = src_.substr(start, pos_ - start);
        // stod parses the longest valid prefix without throwing, so
        // "1.5.7" or "2e" must be rejected by checking every
        // character was consumed, not by catching an exception.
        std::size_t consumed = 0;
        try {
            t.number = std::stod(t.text, &consumed);
        } catch (const std::exception &) {
            consumed = 0; // e.g. a lone "."
        }
        if (consumed == t.text.size()) {
            t.kind = Tok::Number;
        } else {
            t.kind = Tok::Error;
            t.text = "malformed number '" + t.text + "'";
        }
        return t;
    }
    if (c == '"') {
        const std::size_t start = ++pos_;
        while (pos_ < src_.size() && src_[pos_] != '"' &&
               src_[pos_] != '\n')
            ++pos_;
        if (pos_ >= src_.size() || src_[pos_] != '"') {
            t.kind = Tok::Error;
            t.text = "unterminated string literal";
            return t;
        }
        t.kind = Tok::String;
        t.text = src_.substr(start, pos_ - start);
        ++pos_; // closing quote
        return t;
    }
    ++pos_;
    switch (c) {
      case '(': t.kind = Tok::LParen; return t;
      case ')': t.kind = Tok::RParen; return t;
      case '[': t.kind = Tok::LBracket; return t;
      case ']': t.kind = Tok::RBracket; return t;
      case '{': t.kind = Tok::LBrace; return t;
      case '}': t.kind = Tok::RBrace; return t;
      case ',': t.kind = Tok::Comma; return t;
      case ';': t.kind = Tok::Semi; return t;
      case '+': t.kind = Tok::Plus; return t;
      case '*': t.kind = Tok::Star; return t;
      case '/': t.kind = Tok::Slash; return t;
      case '=': t.kind = Tok::Equals; return t;
      case '-':
        if (pos_ < src_.size() && src_[pos_] == '>') {
            ++pos_;
            t.kind = Tok::Arrow;
        } else {
            t.kind = Tok::Minus;
        }
        return t;
      default:
        t.kind = Tok::Error;
        t.text = support::strcat("unexpected character '", c, "'");
        return t;
    }
}

} // namespace qasm
} // namespace guoq
