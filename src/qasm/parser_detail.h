/**
 * @file
 * Shared machinery of the two dialect parsers (internal header).
 *
 * ParserBase owns the token stream, the recoverable-error plumbing
 * (errors are thrown as ParseAbort and surfaced as a ParseError by the
 * dispatch code in parser.cc), the constant-expression evaluator, the
 * register table, and the gate-application grammar — everything the
 * QASM 2 and QASM 3 grammars have in common. The dialect classes only
 * add their own statement forms: Qasm2Parser lives in parser.cc,
 * Qasm3Parser in parser3.cc.
 */

#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ir/circuit.h"
#include "qasm/lexer.h"
#include "qasm/parser.h"

namespace guoq {
namespace qasm {
namespace detail {

/** Thrown on the first syntax error; the ParseError lives on the
 *  parser, so this carries nothing. */
struct ParseAbort
{
};

/** Common state and grammar of both dialect parsers. */
class ParserBase
{
  public:
    /**
     * @p src must outlive the parser; @p file labels error messages
     * (empty for in-memory sources). The constructor never throws —
     * run() reads the first token, so even a lexically broken prefix
     * is reported through the normal ParseAbort path.
     */
    ParserBase(const std::string &src, std::string file)
        : lexer_(src), file_(std::move(file))
    {
    }

    /** The error recorded by the failed run (valid after ParseAbort). */
    const ParseError &error() const { return err_; }

  protected:
    /** Largest accepted register size; guards ir::Circuit allocation
     *  against absurd declarations. */
    static constexpr int kMaxRegisterSize = 1 << 20;

    [[noreturn]] void
    failAt(int line, int col, std::string msg)
    {
        err_.file = file_;
        err_.line = line;
        err_.col = col;
        err_.message = std::move(msg);
        throw ParseAbort{};
    }

    /** Report @p msg at the current token. */
    [[noreturn]] void
    error(std::string msg)
    {
        failAt(cur_.line, cur_.col, std::move(msg));
    }

    void
    advance()
    {
        cur_ = lexer_.next();
        if (cur_.kind == Tok::Error)
            failAt(cur_.line, cur_.col, cur_.text);
    }

    void expect(Tok k, const char *what);
    bool accept(Tok k);

    /** True when the current token is the identifier @p kw. */
    bool
    atIdent(const char *kw) const
    {
        return cur_.kind == Tok::Ident && cur_.text == kw;
    }

    /** Current Number token as an integer in [min, max]; advances. */
    int parseIntLit(const char *what, int min, int max);

    /** @name Constant-expression grammar (angle parameters)
     *  expr := term (('+'|'-') term)*
     *  term := factor (('*'|'/') factor)*
     *  factor := '-' factor | number | 'pi' | 'tau' | 'euler'
     *          | const-name | '(' expr ')'
     */
    /** @{ */
    double parseExpr();
    double parseTerm();
    double parseFactor();
    /** @} */

    /** Declare a quantum register of @p size qubits (@p line/@p col
     *  locate the name for the duplicate-declaration error). */
    void declareRegister(const std::string &name, int size, int line,
                         int col);

    /**
     * One gate application statement: `name[(params)] operands ;`.
     * Handles name aliases (U/u/p/phase/cphase/CX), identity no-ops
     * (id/u0), single-qubit broadcast over a whole register, and
     * arity / parameter-count / duplicate-operand validation.
     */
    void parseGateApplication();

    /** Skip a whole `gate name(...) qs { ... }` definition. */
    void skipGateDefinition();

    /** Skip tokens up to and including the next ';'. */
    void skipToSemi();

    /** The finished circuit over all declared registers. */
    ir::Circuit finishCircuit();

    Token cur_;
    std::map<std::string, double> consts_; //!< QASM 3 const bindings

  private:
    /** One gate operand: a single qubit, or a whole register. */
    struct Operand
    {
        int first = 0; //!< flat index of the first qubit
        int count = 1; //!< 1 for q[i]; register size for bare `q`
    };

    Operand parseOperand();

    Lexer lexer_;
    std::string file_;
    ParseError err_;
    std::map<std::string, int> registerStart_;
    std::map<std::string, int> registerSize_;
    int totalQubits_ = 0;
    std::vector<ir::Gate> pending_;
};

/** The OpenQASM 2.0 grammar (qreg/creg, qelib1-style programs). */
class Qasm2Parser : public ParserBase
{
  public:
    using ParserBase::ParserBase;

    /** Parse a whole program; throws ParseAbort on the first error. */
    ir::Circuit run();

  private:
    void parseHeader();
    void parseStatement();
    void parseQreg();
    void parseCreg();
};

/** The OpenQASM 3.x grammar subset (qubit/bit, stdgates, const). */
class Qasm3Parser : public ParserBase
{
  public:
    using ParserBase::ParserBase;

    /** Parse a whole program; throws ParseAbort on the first error. */
    ir::Circuit run();

  private:
    void parseHeader();
    void parseStatement();
    void parseQubitDecl();
    void parseBitDecl();
    void parseConstDecl();
    void parseGphase();
};

} // namespace detail
} // namespace qasm
} // namespace guoq
