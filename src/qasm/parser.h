/**
 * @file
 * A recursive-descent parser for the OpenQASM 2.0 subset the printer
 * emits (and that the public benchmark suites use).
 *
 * Supported: OPENQASM/include headers, one or more qreg declarations
 * (flattened into a single qubit index space), gate applications with
 * constant-expression parameters (pi, literals, + - * / and unary
 * minus, parentheses), `barrier` (ignored), comments. `gate`
 * definitions are skipped — the printer only emits definitions for
 * gates the parser already knows natively. creg/measure/reset/if are
 * rejected: this library optimizes pure unitary circuits.
 */

#pragma once

#include <string>

#include "ir/circuit.h"

namespace guoq {
namespace qasm {

/** Parse an OpenQASM 2.0 program; fatal() with location on error. */
ir::Circuit parse(const std::string &source);

/** Parse the file at @p path. */
ir::Circuit parseFile(const std::string &path);

} // namespace qasm
} // namespace guoq
