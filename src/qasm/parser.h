/**
 * @file
 * Recursive-descent parsers for the OpenQASM 2.0 and 3.x subsets this
 * library speaks (the precise grammar is written down in
 * docs/FORMATS.md).
 *
 * Both dialects lower to the same ir::Circuit. Supported across
 * dialects: OPENQASM/include headers, register declarations (flattened
 * into one qubit index space), gate applications with
 * constant-expression parameters (pi/tau/euler, literals, + - * /,
 * unary minus, parentheses), single-qubit broadcast over a whole
 * register, `barrier` (ignored), comments. QASM 3 additionally
 * accepts `qubit[n]`/`bit[n]` declarations, `U`/`gphase`, and
 * `const` declarations usable in angle expressions. `gate` definitions
 * are skipped — the printer only emits definitions for gates the
 * parser already knows natively. measure/reset/control flow are
 * rejected: this library optimizes pure unitary circuits.
 *
 * The primary entry points return a ParseResult instead of calling
 * fatal(), so a batch run over a directory survives malformed files
 * and can report `file:line:col` diagnostics per file. The legacy
 * parse()/parseFile() wrappers keep the old abort-on-error contract.
 */

#pragma once

#include <string>

#include "ir/circuit.h"
#include "qasm/dialect.h"

namespace guoq {
namespace qasm {

/** Position and message of the first syntax error in a source. */
struct ParseError
{
    std::string file; //!< input path; empty for in-memory sources
    int line = 0;     //!< 1-based; 0 when no position applies (e.g.
                      //!< the file could not be opened)
    int col = 0;      //!< 1-based column
    std::string message;

    /** "file:line:col: message" (omitting the parts not present). */
    std::string str() const;
};

/** Outcome of one parse: a circuit, or a located error. */
struct ParseResult
{
    ir::Circuit circuit;               //!< valid iff ok
    Dialect dialect = Dialect::Qasm2;  //!< dialect actually parsed
    bool ok = false;
    ParseError error;                  //!< valid iff !ok
};

/**
 * Parse @p source as @p dialect (Dialect::Auto detects it from the
 * `OPENQASM <version>;` line, falling back to a qreg/qubit keyword
 * sniff, defaulting to QASM 2). @p file is used only to label error
 * messages. Never aborts: syntax errors come back in the result.
 */
ParseResult parseSource(const std::string &source,
                        Dialect dialect = Dialect::Auto,
                        std::string file = {});

/**
 * Read and parse the file at @p path. Unreadable files report an
 * error with line == 0; all errors carry the path.
 */
ParseResult parseSourceFile(const std::string &path,
                            Dialect dialect = Dialect::Auto);

/**
 * The dialect parseSource(source, Dialect::Auto) would pick: the
 * OPENQASM major version when a header is present, else the first
 * qreg/creg (QASM 2) or qubit/bit (QASM 3) declaration keyword, else
 * QASM 2.
 */
Dialect detectDialect(const std::string &source);

/** Legacy wrapper: parseSource(); fatal() with location on error. */
ir::Circuit parse(const std::string &source);

/** Legacy wrapper: parseSourceFile(); fatal() names @p path. */
ir::Circuit parseFile(const std::string &path);

} // namespace qasm
} // namespace guoq
