/**
 * @file
 * The OpenQASM dialects this library reads and writes.
 *
 * The precise grammar subset accepted and emitted per dialect is
 * documented in docs/FORMATS.md; the parser auto-detects the dialect
 * of an input from its `OPENQASM <version>;` line (falling back to a
 * qreg/qubit keyword sniff for headerless programs).
 */

#pragma once

#include <string>

namespace guoq {
namespace qasm {

/** Input/output language selection. */
enum class Dialect
{
    Auto,  //!< detect from the OPENQASM version line (input only)
    Qasm2, //!< OpenQASM 2.0 (qreg, qelib1.inc)
    Qasm3, //!< OpenQASM 3.x (qubit[n], stdgates.inc)
};

/** Lower-case name: "auto", "qasm2", "qasm3". */
const std::string &dialectName(Dialect d);

/** Inverse of dialectName; returns false when unknown. */
bool dialectFromName(const std::string &name, Dialect *out);

} // namespace qasm
} // namespace guoq
