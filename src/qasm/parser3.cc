/**
 * @file
 * The OpenQASM 3.x grammar subset (see docs/FORMATS.md for the precise
 * contract). Everything lowers onto the shared ParserBase machinery,
 * so QASM 3 programs produce the same ir::Circuit a QASM 2 spelling
 * of the circuit would.
 */

#include <cmath>

#include "qasm/parser_detail.h"
#include "support/logging.h"

namespace guoq {
namespace qasm {
namespace detail {

namespace {

/** QASM 3 statement keywords we recognise only to reject, with a
 *  uniform "unitary circuits only" diagnostic. */
bool
isRejectedKeyword(const std::string &kw)
{
    static const char *const kRejected[] = {
        "measure", "reset",  "if",     "else",   "for",    "while",
        "def",     "defcal", "cal",    "defcalgrammar",    "input",
        "output",  "ctrl",   "negctrl", "inv",   "pow",    "box",
        "delay",   "duration", "stretch", "let", "return", "extern",
        "switch",  "break",  "continue", "end",
    };
    for (const char *r : kRejected)
        if (kw == r)
            return true;
    return false;
}

} // namespace

ir::Circuit
Qasm3Parser::run()
{
    advance(); // prime the token stream
    parseHeader();
    while (cur_.kind != Tok::End)
        parseStatement();
    return finishCircuit();
}

void
Qasm3Parser::parseHeader()
{
    if (!atIdent("OPENQASM"))
        return;
    advance();
    if (cur_.kind != Tok::Number)
        error("expected version number");
    if (static_cast<int>(cur_.number) != 3)
        error("OPENQASM " + cur_.text +
              " is not supported by the qasm3 parser");
    advance();
    expect(Tok::Semi, "';'");
}

void
Qasm3Parser::parseStatement()
{
    if (cur_.kind != Tok::Ident)
        error("expected statement");
    const std::string kw = cur_.text;
    if (kw == "include") {
        advance();
        expect(Tok::String, "file name");
        expect(Tok::Semi, "';'");
    } else if (kw == "qubit") {
        parseQubitDecl();
    } else if (kw == "bit") {
        // Classical bits are accepted and ignored so that published
        // benchmark files parse; measurements are not.
        parseBitDecl();
    } else if (kw == "const") {
        parseConstDecl();
    } else if (kw == "gate") {
        skipGateDefinition();
    } else if (kw == "barrier") {
        skipToSemi();
    } else if (kw == "gphase") {
        parseGphase();
    } else if (kw == "qreg" || kw == "creg") {
        error("'" + kw +
              "' is OpenQASM 2 syntax; declare qubit[n]/bit[n]");
    } else if (isRejectedKeyword(kw)) {
        error("'" + kw +
              "' is not supported (unitary circuits only; see "
              "docs/FORMATS.md)");
    } else {
        parseGateApplication();
    }
}

void
Qasm3Parser::parseQubitDecl()
{
    advance(); // 'qubit'
    int size = 1;
    if (accept(Tok::LBracket)) {
        size = parseIntLit("register size", 0, kMaxRegisterSize);
        expect(Tok::RBracket, "']'");
    }
    if (cur_.kind != Tok::Ident)
        error("expected register name");
    const Token name_tok = cur_;
    const std::string name = cur_.text;
    advance();
    expect(Tok::Semi, "';'");
    declareRegister(name, size, name_tok.line, name_tok.col);
}

void
Qasm3Parser::parseBitDecl()
{
    advance(); // 'bit'
    if (accept(Tok::LBracket)) {
        parseIntLit("register size", 0, kMaxRegisterSize);
        expect(Tok::RBracket, "']'");
    }
    if (cur_.kind != Tok::Ident)
        error("expected register name");
    advance();
    if (cur_.kind == Tok::Equals)
        error("measurement assignment is not supported (unitary "
              "circuits only)");
    expect(Tok::Semi, "';'");
}

void
Qasm3Parser::parseConstDecl()
{
    advance(); // 'const'
    if (cur_.kind != Tok::Ident)
        error("expected type name");
    const std::string type = cur_.text;
    if (type != "float" && type != "int" && type != "uint" &&
        type != "angle")
        error("unsupported const type '" + type +
              "' (float/int/uint/angle only)");
    advance();
    if (accept(Tok::LBracket)) {
        parseIntLit("type width", 1, 512);
        expect(Tok::RBracket, "']'");
    }
    if (cur_.kind != Tok::Ident)
        error("expected constant name");
    const Token name_tok = cur_;
    const std::string name = cur_.text;
    advance();
    expect(Tok::Equals, "'='");
    double v = parseExpr();
    expect(Tok::Semi, "';'");
    if (type == "int" || type == "uint")
        v = std::trunc(v);
    if (consts_.count(name))
        failAt(name_tok.line, name_tok.col,
               "duplicate const '" + name + "'");
    consts_[name] = v;
}

void
Qasm3Parser::parseGphase()
{
    // A global phase is unobservable and every distance metric in this
    // library (|Tr(U†V)|-based) is phase-invariant, so the angle is
    // evaluated for validity and then dropped.
    advance(); // 'gphase'
    expect(Tok::LParen, "'('");
    parseExpr();
    expect(Tok::RParen, "')'");
    expect(Tok::Semi, "';'");
}

} // namespace detail
} // namespace qasm
} // namespace guoq
