/**
 * @file
 * OpenQASM emission in either dialect. Circuits round-trip through the
 * parser so benchmark circuits can be exported and inspected with
 * other toolkits; docs/FORMATS.md pins down exactly what is emitted.
 */

#pragma once

#include <string>

#include "ir/circuit.h"
#include "qasm/dialect.h"

namespace guoq {
namespace qasm {

/**
 * Render @p c as an OpenQASM program in @p dialect (Dialect::Auto is
 * treated as Qasm2, the historical default).
 *
 * Gates outside the qelib1/stdgates vocabulary (SXdg, Rxx, CCZ) are
 * emitted with a matching `gate` definition header so standard parsers
 * accept the output.
 */
std::string toQasm(const ir::Circuit &c,
                   Dialect dialect = Dialect::Qasm2);

/** Write toQasm(c, dialect) to @p path; fatal() on I/O failure. */
void writeQasmFile(const ir::Circuit &c, const std::string &path,
                   Dialect dialect = Dialect::Qasm2);

} // namespace qasm
} // namespace guoq
