/**
 * @file
 * OpenQASM 2.0 emission. Circuits round-trip through the parser so
 * benchmark circuits can be exported and inspected with other toolkits.
 */

#pragma once

#include <string>

#include "ir/circuit.h"

namespace guoq {
namespace qasm {

/**
 * Render @p c as an OpenQASM 2.0 program.
 *
 * Gates outside the qelib1 vocabulary (SX, SXdg, Rxx, CCZ) are emitted
 * with a matching `gate` definition header so standard parsers accept
 * the output.
 */
std::string toQasm(const ir::Circuit &c);

/** Write toQasm(c) to @p path; fatal() on I/O failure. */
void writeQasmFile(const ir::Circuit &c, const std::string &path);

} // namespace qasm
} // namespace guoq
