#include "qasm/printer.h"

#include <fstream>
#include <sstream>

#include "support/logging.h"

namespace guoq {
namespace qasm {

namespace {

/** Format an angle with enough digits to round-trip a double. */
std::string
angle(double v)
{
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

/**
 * Header snippets for the gates neither qelib1.inc nor stdgates.inc
 * defines. Each is a self-contained `gate` declaration in terms of
 * primitives both include files provide; the declaration syntax is
 * identical in both dialects.
 */
const char *const kExtraDefs =
    "gate sxdg a { s a; h a; s a; }\n"
    "gate rxx(theta) a, b { h a; h b; cx a, b; rz(theta) b; cx a, b; "
    "h a; h b; }\n"
    "gate ccz a, b, c { h c; ccx a, b, c; h c; }\n";

bool
needsExtraDefs(const ir::Circuit &c)
{
    for (const ir::Gate &g : c.gates()) {
        switch (g.kind) {
          case ir::GateKind::SXdg:
          case ir::GateKind::Rxx:
          case ir::GateKind::CCZ:
            return true;
          default:
            break;
        }
    }
    return false;
}

} // namespace

std::string
toQasm(const ir::Circuit &c, Dialect dialect)
{
    const bool q3 = dialect == Dialect::Qasm3;
    std::ostringstream os;
    if (q3)
        os << "OPENQASM 3.0;\ninclude \"stdgates.inc\";\n";
    else
        os << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
    if (needsExtraDefs(c))
        os << kExtraDefs;
    if (q3) {
        // qubit[0] would declare nothing; an empty circuit has no
        // register line (and parses back to an empty circuit).
        if (c.numQubits() > 0)
            os << "qubit[" << c.numQubits() << "] q;\n";
    } else {
        os << "qreg q[" << c.numQubits() << "];\n";
    }
    for (const ir::Gate &g : c.gates()) {
        os << ir::gateName(g.kind);
        if (!g.params.empty()) {
            os << "(";
            for (std::size_t i = 0; i < g.params.size(); ++i) {
                if (i)
                    os << ", ";
                os << angle(g.params[i]);
            }
            os << ")";
        }
        os << " ";
        for (std::size_t i = 0; i < g.qubits.size(); ++i) {
            if (i)
                os << ", ";
            os << "q[" << g.qubits[i] << "]";
        }
        os << ";\n";
    }
    return os.str();
}

void
writeQasmFile(const ir::Circuit &c, const std::string &path,
              Dialect dialect)
{
    std::ofstream out(path);
    if (!out)
        support::fatal("writeQasmFile: cannot open " + path);
    out << toQasm(c, dialect);
    if (!out)
        support::fatal("writeQasmFile: write failed for " + path);
}

} // namespace qasm
} // namespace guoq
