/**
 * @file
 * The token stream shared by the OpenQASM 2.0 and 3.x parsers.
 *
 * One lexer serves both dialects: the token inventory of the subsets
 * we accept is identical except for `=` (QASM 3 const declarations),
 * and QASM 2 files simply never produce it. Tokens carry 1-based
 * line/column positions so parse errors can point at the offending
 * character; lexical errors (unexpected characters, unterminated
 * strings or block comments) are reported as a Tok::Error token rather
 * than aborting the process, so one bad file cannot take down a batch
 * run.
 */

#pragma once

#include <string>

namespace guoq {
namespace qasm {

/** Token kinds produced by the lexer. */
enum class Tok
{
    Ident,
    Number,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Plus,
    Minus,
    Star,
    Slash,
    Arrow,  //!< "->" (QASM 2 measure syntax; only ever rejected)
    Equals, //!< "=" (QASM 3 const declarations)
    String,
    Error,  //!< lexical error; `text` holds the message
    End,
};

/** One lexed token with its source position. */
struct Token
{
    Tok kind = Tok::End;
    std::string text;  //!< identifier/number/string spelling, or the
                       //!< error message for Tok::Error
    double number = 0; //!< value when kind == Tok::Number
    int line = 1;      //!< 1-based line of the first character
    int col = 1;       //!< 1-based column of the first character
};

/**
 * Whole-input lexer. Strips `//` line comments and `/ * ... * /`
 * block comments (the latter are QASM 3 syntax but harmless to accept
 * everywhere). The source string must outlive the lexer.
 */
class Lexer
{
  public:
    explicit Lexer(const std::string &src) : src_(src) {}

    /** The next token; sticky Tok::End at end of input. */
    Token next();

  private:
    void skipSpaceAndComments(Token &err);

    const std::string &src_;
    std::size_t pos_ = 0;
    std::size_t lineStart_ = 0; //!< offset of the current line's start
    int line_ = 1;
};

} // namespace qasm
} // namespace guoq
