#include "qasm/parser.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "qasm/parser_detail.h"
#include "support/logging.h"

namespace guoq {
namespace qasm {

// --- Dialect names ---------------------------------------------------

const std::string &
dialectName(Dialect d)
{
    static const std::string names[] = {"auto", "qasm2", "qasm3"};
    return names[static_cast<int>(d)];
}

bool
dialectFromName(const std::string &name, Dialect *out)
{
    for (Dialect d : {Dialect::Auto, Dialect::Qasm2, Dialect::Qasm3})
        if (dialectName(d) == name) {
            *out = d;
            return true;
        }
    return false;
}

// --- ParseError ------------------------------------------------------

std::string
ParseError::str() const
{
    std::string out;
    if (!file.empty()) {
        out += file;
        out += line > 0 ? ":" : ": ";
    }
    if (line > 0) {
        if (file.empty())
            out += support::strcat("line ", line, ", col ", col, ": ");
        else
            out += support::strcat(line, ":", col, ": ");
    }
    out += message;
    return out;
}

namespace detail {

namespace {

/** Human-readable spelling of a token for diagnostics (punctuation
 *  tokens carry no text, so the kind supplies it). */
std::string
describe(const Token &t)
{
    switch (t.kind) {
      case Tok::Ident:
      case Tok::Number: return "'" + t.text + "'";
      case Tok::String: return "string \"" + t.text + "\"";
      case Tok::LParen: return "'('";
      case Tok::RParen: return "')'";
      case Tok::LBracket: return "'['";
      case Tok::RBracket: return "']'";
      case Tok::LBrace: return "'{'";
      case Tok::RBrace: return "'}'";
      case Tok::Comma: return "','";
      case Tok::Semi: return "';'";
      case Tok::Plus: return "'+'";
      case Tok::Minus: return "'-'";
      case Tok::Star: return "'*'";
      case Tok::Slash: return "'/'";
      case Tok::Arrow: return "'->'";
      case Tok::Equals: return "'='";
      case Tok::Error: return t.text;
      case Tok::End: break;
    }
    return "<end of input>";
}

} // namespace

// --- ParserBase: token plumbing --------------------------------------

void
ParserBase::expect(Tok k, const char *what)
{
    if (cur_.kind != k)
        error(support::strcat("expected ", what, ", got ",
                              describe(cur_)));
    advance();
}

bool
ParserBase::accept(Tok k)
{
    if (cur_.kind != k)
        return false;
    advance();
    return true;
}

int
ParserBase::parseIntLit(const char *what, int min, int max)
{
    if (cur_.kind != Tok::Number)
        error(support::strcat("expected ", what));
    const double v = cur_.number;
    if (v != std::floor(v) || v < min || v > max)
        error(support::strcat(what, " must be an integer in [", min,
                              ", ", max, "], got '", cur_.text, "'"));
    advance();
    return static_cast<int>(v);
}

// --- ParserBase: constant expressions --------------------------------

double
ParserBase::parseExpr()
{
    double v = parseTerm();
    while (true) {
        if (accept(Tok::Plus))
            v += parseTerm();
        else if (accept(Tok::Minus))
            v -= parseTerm();
        else
            return v;
    }
}

double
ParserBase::parseTerm()
{
    double v = parseFactor();
    while (true) {
        if (accept(Tok::Star)) {
            v *= parseFactor();
        } else if (accept(Tok::Slash)) {
            const Token div = cur_;
            const double d = parseFactor();
            if (d == 0)
                failAt(div.line, div.col,
                       "division by zero in angle expression");
            v /= d;
        } else {
            return v;
        }
    }
}

double
ParserBase::parseFactor()
{
    if (accept(Tok::Minus))
        return -parseFactor();
    if (cur_.kind == Tok::Number) {
        const double v = cur_.number;
        advance();
        return v;
    }
    if (cur_.kind == Tok::Ident) {
        if (cur_.text == "pi") {
            advance();
            return M_PI;
        }
        if (cur_.text == "tau") {
            advance();
            return 2 * M_PI;
        }
        if (cur_.text == "euler") {
            advance();
            return M_E;
        }
        const auto it = consts_.find(cur_.text);
        if (it != consts_.end()) {
            advance();
            return it->second;
        }
        error("unknown identifier '" + cur_.text + "' in expression");
    }
    if (accept(Tok::LParen)) {
        const double v = parseExpr();
        expect(Tok::RParen, "')'");
        return v;
    }
    error("expected number, 'pi', or '('");
}

// --- ParserBase: registers and gate applications ---------------------

void
ParserBase::declareRegister(const std::string &name, int size, int line,
                            int col)
{
    if (registerStart_.count(name))
        failAt(line, col, "duplicate register '" + name + "'");
    registerStart_[name] = totalQubits_;
    registerSize_[name] = size;
    totalQubits_ += size;
}

ParserBase::Operand
ParserBase::parseOperand()
{
    if (cur_.kind != Tok::Ident)
        error("expected qubit reference");
    const Token reg_tok = cur_;
    const std::string name = cur_.text;
    advance();
    const auto it = registerStart_.find(name);
    if (it == registerStart_.end())
        failAt(reg_tok.line, reg_tok.col,
               "unknown register '" + name + "'");
    Operand op;
    op.first = it->second;
    if (accept(Tok::LBracket)) {
        const Token idx_tok = cur_;
        const int idx = parseIntLit("qubit index", 0, kMaxRegisterSize);
        expect(Tok::RBracket, "']'");
        if (idx >= registerSize_[name])
            failAt(idx_tok.line, idx_tok.col,
                   support::strcat("qubit index ", idx,
                                   " out of range for '", name, "'"));
        op.first += idx;
        op.count = 1;
    } else {
        op.count = registerSize_[name];
    }
    return op;
}

namespace {

/**
 * Gate names beyond the native gateKindFromName() table. `U` is the
 * QASM builtin (both dialects' U(θ,φ,λ) is the u3 matrix); the rest
 * are qelib1/stdgates spellings of gates we know by another name.
 * `id`/`u0` are identity no-ops: parsed, validated, and dropped.
 */
bool
resolveGateName(const std::string &name, ir::GateKind *kind,
                bool *identity)
{
    *identity = false;
    if (ir::gateKindFromName(name, kind))
        return true;
    if (name == "U" || name == "u") {
        *kind = ir::GateKind::U3;
        return true;
    }
    if (name == "p" || name == "phase") {
        *kind = ir::GateKind::U1;
        return true;
    }
    if (name == "cphase") {
        *kind = ir::GateKind::CP;
        return true;
    }
    if (name == "CX") {
        *kind = ir::GateKind::CX;
        return true;
    }
    if (name == "id" || name == "u0") {
        *identity = true;
        return true;
    }
    return false;
}

} // namespace

void
ParserBase::parseGateApplication()
{
    if (cur_.kind != Tok::Ident)
        error("expected statement");
    const Token name_tok = cur_;
    const std::string name = cur_.text;
    ir::GateKind kind{};
    bool identity = false;
    if (!resolveGateName(name, &kind, &identity))
        failAt(name_tok.line, name_tok.col,
               "unknown gate '" + name + "'");
    advance();

    std::vector<double> params;
    if (accept(Tok::LParen)) {
        if (cur_.kind != Tok::RParen) {
            params.push_back(parseExpr());
            while (accept(Tok::Comma))
                params.push_back(parseExpr());
        }
        expect(Tok::RParen, "')'");
    }

    std::vector<Operand> ops;
    ops.push_back(parseOperand());
    while (accept(Tok::Comma))
        ops.push_back(parseOperand());
    expect(Tok::Semi, "';'");

    if (identity) {
        // id takes no parameters, u0 takes one (a qelib1 wait cycle);
        // both are single-qubit (one operand, broadcast allowed) and
        // lower to nothing once validated.
        const std::size_t want = name == "u0" ? 1 : 0;
        if (params.size() != want)
            failAt(name_tok.line, name_tok.col,
                   support::strcat("gate '", name, "' expects ", want,
                                   " parameters, got ", params.size()));
        if (ops.size() != 1)
            failAt(name_tok.line, name_tok.col,
                   support::strcat("gate '", name,
                                   "' expects 1 qubit, got ",
                                   ops.size()));
        return;
    }

    if (static_cast<int>(params.size()) != ir::gateParamCount(kind))
        failAt(name_tok.line, name_tok.col,
               support::strcat("gate '", name, "' expects ",
                               ir::gateParamCount(kind),
                               " parameters, got ", params.size()));

    const int arity = ir::gateArity(kind);
    // Single-qubit broadcast: `h q;` applies h to every qubit of q.
    if (arity == 1 && ops.size() == 1 && ops[0].count != 1) {
        for (int i = 0; i < ops[0].count; ++i)
            pending_.emplace_back(kind,
                                  std::vector<int>{ops[0].first + i},
                                  params);
        return;
    }
    std::vector<int> qubits;
    for (const Operand &op : ops) {
        if (op.count != 1)
            failAt(name_tok.line, name_tok.col,
                   support::strcat(
                       "whole-register operands of multi-qubit gates "
                       "must have size 1 (register has ", op.count,
                       " qubits)"));
        qubits.push_back(op.first);
    }
    if (static_cast<int>(qubits.size()) != arity)
        failAt(name_tok.line, name_tok.col,
               support::strcat("gate '", name, "' expects ", arity,
                               " qubits, got ", qubits.size()));
    for (std::size_t i = 0; i < qubits.size(); ++i)
        for (std::size_t j = i + 1; j < qubits.size(); ++j)
            if (qubits[i] == qubits[j])
                failAt(name_tok.line, name_tok.col,
                       "gate '" + name + "' applied to the same qubit "
                       "twice");
    pending_.emplace_back(kind, std::move(qubits), std::move(params));
}

void
ParserBase::skipGateDefinition()
{
    advance(); // 'gate'
    while (cur_.kind != Tok::LBrace && cur_.kind != Tok::End)
        advance();
    int depth = 0;
    do {
        if (cur_.kind == Tok::LBrace)
            ++depth;
        else if (cur_.kind == Tok::RBrace)
            --depth;
        else if (cur_.kind == Tok::End)
            error("unterminated gate definition");
        advance();
    } while (depth > 0);
}

void
ParserBase::skipToSemi()
{
    while (cur_.kind != Tok::Semi && cur_.kind != Tok::End)
        advance();
    expect(Tok::Semi, "';'");
}

ir::Circuit
ParserBase::finishCircuit()
{
    ir::Circuit c(totalQubits_);
    for (ir::Gate &g : pending_)
        c.add(std::move(g));
    return c;
}

// --- The OpenQASM 2.0 grammar ----------------------------------------

ir::Circuit
Qasm2Parser::run()
{
    advance(); // prime the token stream
    parseHeader();
    while (cur_.kind != Tok::End)
        parseStatement();
    return finishCircuit();
}

void
Qasm2Parser::parseHeader()
{
    if (!atIdent("OPENQASM"))
        return;
    advance();
    if (cur_.kind != Tok::Number)
        error("expected version number");
    if (static_cast<int>(cur_.number) != 2)
        error("OPENQASM " + cur_.text +
              " is not supported by the qasm2 parser");
    advance();
    expect(Tok::Semi, "';'");
}

void
Qasm2Parser::parseStatement()
{
    if (cur_.kind != Tok::Ident)
        error("expected statement");
    const std::string kw = cur_.text;
    if (kw == "include") {
        advance();
        expect(Tok::String, "file name");
        expect(Tok::Semi, "';'");
    } else if (kw == "qreg") {
        parseQreg();
    } else if (kw == "creg") {
        // Classical registers are accepted and ignored so that
        // published benchmark files parse; measurements are not.
        parseCreg();
    } else if (kw == "barrier") {
        skipToSemi();
    } else if (kw == "gate") {
        skipGateDefinition();
    } else if (kw == "opaque") {
        skipToSemi();
    } else if (kw == "measure" || kw == "reset" || kw == "if") {
        error("'" + kw + "' is not supported (unitary circuits only)");
    } else {
        parseGateApplication();
    }
}

void
Qasm2Parser::parseQreg()
{
    advance(); // 'qreg'
    if (cur_.kind != Tok::Ident)
        error("expected register name");
    const Token name_tok = cur_;
    const std::string name = cur_.text;
    advance();
    expect(Tok::LBracket, "'['");
    const int size = parseIntLit("register size", 0, kMaxRegisterSize);
    expect(Tok::RBracket, "']'");
    expect(Tok::Semi, "';'");
    declareRegister(name, size, name_tok.line, name_tok.col);
}

void
Qasm2Parser::parseCreg()
{
    advance(); // 'creg'
    if (cur_.kind != Tok::Ident)
        error("expected register name");
    advance();
    expect(Tok::LBracket, "'['");
    parseIntLit("register size", 0, kMaxRegisterSize);
    expect(Tok::RBracket, "']'");
    expect(Tok::Semi, "';'");
}

} // namespace detail

// --- Dialect detection and the public API ----------------------------

Dialect
detectDialect(const std::string &source)
{
    Lexer lex(source);
    Token t = lex.next();
    if (t.kind == Tok::Ident && t.text == "OPENQASM") {
        const Token v = lex.next();
        if (v.kind == Tok::Number)
            return static_cast<int>(v.number) >= 3 ? Dialect::Qasm3
                                                   : Dialect::Qasm2;
        return Dialect::Qasm2;
    }
    // Headerless program: the first declaration keyword decides.
    while (t.kind != Tok::End && t.kind != Tok::Error) {
        if (t.kind == Tok::Ident) {
            if (t.text == "qreg" || t.text == "creg")
                return Dialect::Qasm2;
            if (t.text == "qubit" || t.text == "bit")
                return Dialect::Qasm3;
        }
        t = lex.next();
    }
    return Dialect::Qasm2;
}

namespace {

template <typename ParserT>
ParseResult
runParser(const std::string &source, Dialect d, std::string file)
{
    ParseResult r;
    r.dialect = d;
    ParserT p(source, std::move(file));
    try {
        r.circuit = p.run();
        r.ok = true;
    } catch (const detail::ParseAbort &) {
        r.error = p.error();
    }
    return r;
}

} // namespace

ParseResult
parseSource(const std::string &source, Dialect dialect, std::string file)
{
    const Dialect d =
        dialect == Dialect::Auto ? detectDialect(source) : dialect;
    if (d == Dialect::Qasm3)
        return runParser<detail::Qasm3Parser>(source, d,
                                              std::move(file));
    return runParser<detail::Qasm2Parser>(source, d, std::move(file));
}

ParseResult
parseSourceFile(const std::string &path, Dialect dialect)
{
    std::ifstream in(path);
    if (!in) {
        ParseResult r;
        r.dialect = dialect == Dialect::Auto ? Dialect::Qasm2 : dialect;
        r.error.file = path;
        r.error.message = "cannot open file";
        return r;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseSource(buf.str(), dialect, path);
}

ir::Circuit
parse(const std::string &source)
{
    ParseResult r = parseSource(source);
    if (!r.ok)
        support::fatal("qasm: " + r.error.str());
    return std::move(r.circuit);
}

ir::Circuit
parseFile(const std::string &path)
{
    ParseResult r = parseSourceFile(path);
    if (!r.ok)
        support::fatal("qasm: " + r.error.str());
    return std::move(r.circuit);
}

} // namespace qasm
} // namespace guoq
