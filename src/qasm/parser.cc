#include "qasm/parser.h"

#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "support/logging.h"

namespace guoq {
namespace qasm {

namespace {

/** Token kinds produced by the lexer. */
enum class Tok
{
    Ident,
    Number,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Plus,
    Minus,
    Star,
    Slash,
    Arrow,
    String,
    End,
};

struct Token
{
    Tok kind = Tok::End;
    std::string text;
    double number = 0;
    int line = 0;
};

/** Whole-input lexer; strips // comments. */
class Lexer
{
  public:
    explicit Lexer(const std::string &src) : src_(src) {}

    Token
    next()
    {
        skipSpace();
        Token t;
        t.line = line_;
        if (pos_ >= src_.size()) {
            t.kind = Tok::End;
            return t;
        }
        const char c = src_[pos_];
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            const std::size_t start = pos_;
            while (pos_ < src_.size() &&
                   (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                    src_[pos_] == '_'))
                ++pos_;
            t.kind = Tok::Ident;
            t.text = src_.substr(start, pos_ - start);
            return t;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
            const std::size_t start = pos_;
            while (pos_ < src_.size() &&
                   (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
                    src_[pos_] == '.' || src_[pos_] == 'e' ||
                    src_[pos_] == 'E' ||
                    ((src_[pos_] == '+' || src_[pos_] == '-') && pos_ > start &&
                     (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E'))))
                ++pos_;
            t.kind = Tok::Number;
            t.text = src_.substr(start, pos_ - start);
            t.number = std::stod(t.text);
            return t;
        }
        if (c == '"') {
            const std::size_t start = ++pos_;
            while (pos_ < src_.size() && src_[pos_] != '"')
                ++pos_;
            t.kind = Tok::String;
            t.text = src_.substr(start, pos_ - start);
            if (pos_ < src_.size())
                ++pos_; // closing quote
            return t;
        }
        ++pos_;
        switch (c) {
          case '(': t.kind = Tok::LParen; return t;
          case ')': t.kind = Tok::RParen; return t;
          case '[': t.kind = Tok::LBracket; return t;
          case ']': t.kind = Tok::RBracket; return t;
          case '{': t.kind = Tok::LBrace; return t;
          case '}': t.kind = Tok::RBrace; return t;
          case ',': t.kind = Tok::Comma; return t;
          case ';': t.kind = Tok::Semi; return t;
          case '+': t.kind = Tok::Plus; return t;
          case '*': t.kind = Tok::Star; return t;
          case '/': t.kind = Tok::Slash; return t;
          case '-':
            if (pos_ < src_.size() && src_[pos_] == '>') {
                ++pos_;
                t.kind = Tok::Arrow;
            } else {
                t.kind = Tok::Minus;
            }
            return t;
          default:
            support::fatal(support::strcat("qasm: line ", line_,
                                           ": unexpected character '", c,
                                           "'"));
        }
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < src_.size()) {
            const char c = src_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
            } else if (std::isspace(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '/' && pos_ + 1 < src_.size() &&
                       src_[pos_ + 1] == '/') {
                while (pos_ < src_.size() && src_[pos_] != '\n')
                    ++pos_;
            } else {
                break;
            }
        }
    }

    const std::string &src_;
    std::size_t pos_ = 0;
    int line_ = 1;
};

/** The parser proper: one token of lookahead over the lexer. */
class Parser
{
  public:
    explicit Parser(const std::string &src) : lexer_(src)
    {
        cur_ = lexer_.next();
    }

    ir::Circuit
    parseProgram()
    {
        parseHeader();
        // First pass collects register declarations and gate statements
        // interleaved; registers must precede their first use.
        while (cur_.kind != Tok::End)
            parseStatement();
        ir::Circuit c(totalQubits_);
        for (ir::Gate &g : pending_)
            c.add(std::move(g));
        return c;
    }

  private:
    [[noreturn]] void
    error(const std::string &msg) const
    {
        support::fatal(support::strcat("qasm: line ", cur_.line, ": ", msg));
    }

    void advance() { cur_ = lexer_.next(); }

    void
    expect(Tok k, const char *what)
    {
        if (cur_.kind != k)
            error(support::strcat("expected ", what, ", got '", cur_.text,
                                  "'"));
        advance();
    }

    bool
    accept(Tok k)
    {
        if (cur_.kind != k)
            return false;
        advance();
        return true;
    }

    void
    parseHeader()
    {
        if (cur_.kind == Tok::Ident && cur_.text == "OPENQASM") {
            advance();
            expect(Tok::Number, "version number");
            expect(Tok::Semi, "';'");
        }
    }

    void
    parseStatement()
    {
        if (cur_.kind != Tok::Ident)
            error("expected statement");
        const std::string kw = cur_.text;
        if (kw == "include") {
            advance();
            expect(Tok::String, "file name");
            expect(Tok::Semi, "';'");
        } else if (kw == "qreg") {
            advance();
            parseQreg();
        } else if (kw == "creg") {
            // Classical registers are accepted and ignored so that
            // published benchmark files parse; measurements are not.
            advance();
            expect(Tok::Ident, "register name");
            expect(Tok::LBracket, "'['");
            expect(Tok::Number, "size");
            expect(Tok::RBracket, "']'");
            expect(Tok::Semi, "';'");
        } else if (kw == "barrier") {
            while (cur_.kind != Tok::Semi && cur_.kind != Tok::End)
                advance();
            expect(Tok::Semi, "';'");
        } else if (kw == "gate") {
            skipGateDefinition();
        } else if (kw == "measure" || kw == "reset" || kw == "if") {
            error("'" + kw + "' is not supported (unitary circuits only)");
        } else {
            parseGateApplication();
        }
    }

    void
    parseQreg()
    {
        if (cur_.kind != Tok::Ident)
            error("expected register name");
        const std::string name = cur_.text;
        advance();
        expect(Tok::LBracket, "'['");
        if (cur_.kind != Tok::Number)
            error("expected register size");
        const int size = static_cast<int>(cur_.number);
        advance();
        expect(Tok::RBracket, "']'");
        expect(Tok::Semi, "';'");
        if (registers_.count(name))
            error("duplicate qreg '" + name + "'");
        registers_[name] = totalQubits_;
        totalQubits_ += size;
        registerSizes_[name] = size;
    }

    void
    skipGateDefinition()
    {
        advance(); // 'gate'
        while (cur_.kind != Tok::LBrace && cur_.kind != Tok::End)
            advance();
        int depth = 0;
        do {
            if (cur_.kind == Tok::LBrace)
                ++depth;
            else if (cur_.kind == Tok::RBrace)
                --depth;
            else if (cur_.kind == Tok::End)
                error("unterminated gate definition");
            advance();
        } while (depth > 0);
    }

    void
    parseGateApplication()
    {
        const std::string name = cur_.text;
        ir::GateKind kind;
        if (!ir::gateKindFromName(name, &kind))
            error("unknown gate '" + name + "'");
        advance();

        std::vector<double> params;
        if (accept(Tok::LParen)) {
            if (cur_.kind != Tok::RParen) {
                params.push_back(parseExpr());
                while (accept(Tok::Comma))
                    params.push_back(parseExpr());
            }
            expect(Tok::RParen, "')'");
        }

        std::vector<int> qubits;
        qubits.push_back(parseQubitRef());
        while (accept(Tok::Comma))
            qubits.push_back(parseQubitRef());
        expect(Tok::Semi, "';'");

        if (static_cast<int>(qubits.size()) != ir::gateArity(kind))
            error(support::strcat("gate '", name, "' expects ",
                                  ir::gateArity(kind), " qubits, got ",
                                  qubits.size()));
        if (static_cast<int>(params.size()) != ir::gateParamCount(kind))
            error(support::strcat("gate '", name, "' expects ",
                                  ir::gateParamCount(kind),
                                  " parameters, got ", params.size()));
        pending_.emplace_back(kind, std::move(qubits), std::move(params));
    }

    int
    parseQubitRef()
    {
        if (cur_.kind != Tok::Ident)
            error("expected qubit reference");
        const std::string name = cur_.text;
        advance();
        auto it = registers_.find(name);
        if (it == registers_.end())
            error("unknown register '" + name + "'");
        expect(Tok::LBracket, "'['");
        if (cur_.kind != Tok::Number)
            error("expected qubit index");
        const int idx = static_cast<int>(cur_.number);
        advance();
        expect(Tok::RBracket, "']'");
        if (idx < 0 || idx >= registerSizes_[name])
            error(support::strcat("qubit index ", idx,
                                  " out of range for '", name, "'"));
        return it->second + idx;
    }

    /** expr := term (('+'|'-') term)* */
    double
    parseExpr()
    {
        double v = parseTerm();
        while (true) {
            if (accept(Tok::Plus))
                v += parseTerm();
            else if (accept(Tok::Minus))
                v -= parseTerm();
            else
                return v;
        }
    }

    /** term := factor (('*'|'/') factor)* */
    double
    parseTerm()
    {
        double v = parseFactor();
        while (true) {
            if (accept(Tok::Star)) {
                v *= parseFactor();
            } else if (accept(Tok::Slash)) {
                const double d = parseFactor();
                if (d == 0)
                    error("division by zero in angle expression");
                v /= d;
            } else {
                return v;
            }
        }
    }

    /** factor := '-' factor | number | 'pi' | '(' expr ')' */
    double
    parseFactor()
    {
        if (accept(Tok::Minus))
            return -parseFactor();
        if (cur_.kind == Tok::Number) {
            const double v = cur_.number;
            advance();
            return v;
        }
        if (cur_.kind == Tok::Ident && cur_.text == "pi") {
            advance();
            return M_PI;
        }
        if (accept(Tok::LParen)) {
            const double v = parseExpr();
            expect(Tok::RParen, "')'");
            return v;
        }
        error("expected number, 'pi', or '('");
    }

    Lexer lexer_;
    Token cur_;
    std::map<std::string, int> registers_;
    std::map<std::string, int> registerSizes_;
    int totalQubits_ = 0;
    std::vector<ir::Gate> pending_;
};

} // namespace

ir::Circuit
parse(const std::string &source)
{
    Parser p(source);
    return p.parseProgram();
}

ir::Circuit
parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        support::fatal("qasm: cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str());
}

} // namespace qasm
} // namespace guoq
