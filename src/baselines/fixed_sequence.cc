#include "baselines/fixed_sequence.h"

#include "baselines/passes.h"

namespace guoq {
namespace baselines {

ir::Circuit
qiskitLikeOptimize(const ir::Circuit &c, ir::GateSetKind set)
{
    ir::Circuit cur = c;
    for (int round = 0; round < 2; ++round) {
        cur = fusionPass(cur, set);
        cur = reduceFixpoint(cur, set);
    }
    return cur;
}

ir::Circuit
tketLikeOptimize(const ir::Circuit &c, ir::GateSetKind set)
{
    ir::Circuit cur = c;
    for (int round = 0; round < 2; ++round) {
        cur = commuteAndReduce(cur, set, 2);
        cur = fusionPass(cur, set);
        cur = reduceFixpoint(cur, set);
    }
    return cur;
}

ir::Circuit
voqcLikeOptimize(const ir::Circuit &c, ir::GateSetKind set)
{
    return commuteAndReduce(c, set, 4);
}

} // namespace baselines
} // namespace guoq
