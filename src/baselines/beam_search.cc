#include "baselines/beam_search.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "support/rng.h"
#include "support/timer.h"

namespace guoq {
namespace baselines {

namespace {

/** A queued candidate: circuit + accumulated approximation error. */
struct Candidate
{
    ir::Circuit circuit;
    double cost = 0;
    double error = 0;
};

/** Structural hash for duplicate suppression. */
std::size_t
circuitHash(const ir::Circuit &c)
{
    std::size_t h = std::hash<std::size_t>{}(c.size());
    for (const ir::Gate &g : c.gates()) {
        h = h * 1000003u + static_cast<std::size_t>(g.kind);
        for (int q : g.qubits)
            h = h * 1000003u + static_cast<std::size_t>(q) + 17u;
        for (double p : g.params)
            h = h * 1000003u +
                std::hash<long long>{}(
                    static_cast<long long>(p * 1e9));
    }
    return h;
}

} // namespace

BeamResult
beamSearchOptimize(const ir::Circuit &c, ir::GateSetKind set,
                   const BeamOptions &opts)
{
    const support::Deadline deadline =
        support::Deadline::in(opts.timeBudgetSeconds);
    support::Rng rng(opts.seed);
    const core::CostFunction cost(opts.objective, set);

    const core::TransformSelection sel =
        opts.epsilonTotal > 0 ? core::TransformSelection::Combined
                              : core::TransformSelection::RewriteOnly;
    const core::TransformationSet transforms(
        set, sel, std::max(opts.epsilonTotal / 16.0, 1e-7), 0.015, 0.25,
        3);

    BeamResult result;
    result.best = c;
    double best_cost = cost(c);

    // Beam kept sorted ascending by cost; worst trimmed at capacity.
    std::vector<Candidate> beam;
    beam.push_back({c, best_cost, 0.0});
    std::unordered_set<std::size_t> seen{circuitHash(c)};

    while (!beam.empty() && !deadline.expired() &&
           (opts.maxIterations < 0 ||
            result.iterations < opts.maxIterations)) {
        ++result.iterations;
        const Candidate cur = beam.front();
        beam.erase(beam.begin());

        for (const core::Transformation &tau : transforms.all()) {
            if (deadline.expired())
                break;
            if (tau.epsilon() > 0 &&
                cur.error + tau.epsilon() > opts.epsilonTotal)
                continue;
            auto outcome = tau.apply(cur.circuit, rng);
            if (!outcome)
                continue;
            if (outcome->epsilonSpent > 0 &&
                cur.error + outcome->epsilonSpent > opts.epsilonTotal)
                continue;
            ++result.candidatesGenerated;
            const std::size_t h = circuitHash(outcome->circuit);
            if (!seen.insert(h).second) {
                ++result.candidatesPruned;
                continue;
            }
            Candidate child;
            child.cost = cost(outcome->circuit);
            child.error = cur.error + outcome->epsilonSpent;
            child.circuit = std::move(outcome->circuit);
            if (child.cost < best_cost) {
                best_cost = child.cost;
                result.best = child.circuit;
                result.errorBound = child.error;
            }
            const auto pos = std::lower_bound(
                beam.begin(), beam.end(), child,
                [](const Candidate &a, const Candidate &b) {
                    return a.cost < b.cost;
                });
            beam.insert(pos, std::move(child));
            if (beam.size() > opts.beamWidth) {
                beam.pop_back();
                ++result.candidatesPruned;
            }
        }
    }
    return result;
}

} // namespace baselines
} // namespace guoq
