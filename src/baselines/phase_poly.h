/**
 * @file
 * Phase-polynomial rotation merging — the PyZX stand-in (paper Q4).
 *
 * Over {CX, diagonal-phase} regions a circuit computes a phase
 * polynomial: each diagonal rotation contributes its angle to the
 * F2-linear parity its wire carries at that point. Rotations on equal
 * parities merge regardless of distance — the T-count reductions the
 * ZX-calculus finds — while the CX skeleton is left untouched, which
 * is exactly PyZX's observable profile in Figs. 12/14: strong T
 * reduction, zero 2q reduction. Non-diagonal gates (H, X, SX, ...)
 * act as barriers that remint their wire's parity. DESIGN.md documents
 * this substitution (Nam-style merging for the ZX-calculus original).
 */

#pragma once

#include "ir/circuit.h"
#include "ir/gate_set.h"

namespace guoq {
namespace baselines {

/** Statistics of one merge run. */
struct PhasePolyStats
{
    int rotationsMerged = 0; //!< diagonal gates absorbed into earlier ones
};

/**
 * Merge same-parity diagonal rotations in @p c, emitting the merged
 * angles natively for @p set (T/S/Z sequences for Clifford+T, Rz/U1
 * otherwise). CX count is preserved exactly.
 */
ir::Circuit phasePolyOptimize(const ir::Circuit &c, ir::GateSetKind set,
                              PhasePolyStats *stats = nullptr);

} // namespace baselines
} // namespace guoq
