#include "baselines/partition_resynth.h"

#include <algorithm>

#include "dag/subcircuit.h"
#include "support/rng.h"
#include "support/timer.h"
#include "synth/service.h"

namespace guoq {
namespace baselines {

PartitionResynthResult
partitionResynth(const ir::Circuit &c, ir::GateSetKind set,
                 core::Objective objective, double epsilon_total,
                 double time_budget_seconds, std::uint64_t seed,
                 synth::SynthService *service)
{
    synth::SynthService *svc =
        service != nullptr ? service : &synth::SynthService::global();
    const core::CostFunction cost(objective, set);
    support::Rng rng(seed);
    const support::Deadline deadline =
        support::Deadline::in(time_budget_seconds);

    PartitionResynthResult result;
    result.circuit = c;

    const std::vector<dag::SubcircuitSelection> blocks =
        dag::partitionConvex(c, 3, 48);
    result.blocks = static_cast<int>(blocks.size());
    if (blocks.empty())
        return result;

    const double eps_per_block =
        epsilon_total / static_cast<double>(blocks.size());
    const double seconds_per_block =
        time_budget_seconds / static_cast<double>(blocks.size());

    // Resynthesize blocks independently, then rebuild the circuit in
    // one pass: each improved block's replacement is emitted at its
    // seed position (valid by the partitioner's dirty-wall rule) and
    // its original gates are dropped.
    std::vector<const ir::Circuit *> replacement(blocks.size(), nullptr);
    std::vector<ir::Circuit> storage(blocks.size());

    for (std::size_t i = 0; i < blocks.size(); ++i) {
        if (deadline.expired())
            break;
        const ir::Circuit sub = dag::extract(c, blocks[i]);
        if (sub.size() < 2)
            continue;
        synth::ResynthOptions opts;
        opts.targetSet = set;
        opts.epsilon = eps_per_block;
        opts.deadline = deadline.slice(seconds_per_block);
        const synth::SynthOutcome so = svc->resynthesize(sub, opts, rng);
        result.cacheHits += so.cacheHit ? 1 : 0;
        result.cacheMisses += so.cacheMiss ? 1 : 0;
        result.cacheStores += so.cacheStore ? 1 : 0;
        const synth::ResynthResult &r = so.result;
        if (!r.success)
            continue;
        if (cost(r.circuit) < cost(sub)) {
            storage[i] = r.circuit;
            replacement[i] = &storage[i];
            result.errorSpent += r.distance;
            ++result.blocksImproved;
        }
    }

    std::vector<bool> removed(c.size(), false);
    std::vector<int> block_at_seed(c.size(), -1);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        if (!replacement[i])
            continue;
        block_at_seed[blocks[i].indices.front()] = static_cast<int>(i);
        for (std::size_t idx : blocks[i].indices)
            removed[idx] = true;
    }

    ir::Circuit out(c.numQubits());
    for (std::size_t i = 0; i < c.size(); ++i) {
        const int bi = block_at_seed[i];
        if (bi >= 0) {
            const dag::SubcircuitSelection &sel =
                blocks[static_cast<std::size_t>(bi)];
            for (const ir::Gate &g :
                 replacement[static_cast<std::size_t>(bi)]->gates()) {
                ir::Gate ng = g;
                for (auto &q : ng.qubits)
                    q = sel.qubits[static_cast<std::size_t>(q)];
                out.add(std::move(ng));
            }
        }
        if (!removed[i])
            out.add(c.gate(i));
    }
    result.circuit = std::move(out);
    return result;
}

} // namespace baselines
} // namespace guoq
