#include "baselines/passes.h"

#include "rewrite/applier.h"
#include "rewrite/rule.h"
#include "transpile/to_gate_set.h"

namespace guoq {
namespace baselines {

namespace {

/** The size-reducing subset of a gate set's rule library. */
std::vector<rewrite::RewriteRule>
reducingRules(ir::GateSetKind set)
{
    std::vector<rewrite::RewriteRule> out;
    for (const rewrite::RewriteRule &r : rewrite::rulesFor(set))
        if (r.sizeDelta() > 0)
            out.push_back(r);
    return out;
}

/** The size-preserving (commutation) subset. */
std::vector<rewrite::RewriteRule>
commutationRules(ir::GateSetKind set)
{
    std::vector<rewrite::RewriteRule> out;
    for (const rewrite::RewriteRule &r : rewrite::rulesFor(set))
        if (r.sizeDelta() == 0)
            out.push_back(r);
    return out;
}

} // namespace

ir::Circuit
reduceFixpoint(const ir::Circuit &c, ir::GateSetKind set)
{
    return rewrite::applyRulesToFixpoint(c, reducingRules(set));
}

ir::Circuit
commuteAndReduce(const ir::Circuit &c, ir::GateSetKind set, int rounds)
{
    const std::vector<rewrite::RewriteRule> commutes =
        commutationRules(set);
    ir::Circuit best = reduceFixpoint(c, set);
    ir::Circuit cur = best;
    for (int round = 0; round < rounds; ++round) {
        // One sweep of each commutation (staggered anchors so
        // successive rounds explore different shuffles); reduce after
        // every sweep so a forward/reverse commutation pair cannot
        // undo each other before cancellations are harvested.
        for (std::size_t i = 0; i < commutes.size(); ++i) {
            const std::size_t anchor =
                cur.empty()
                    ? 0
                    : (static_cast<std::size_t>(round) * 7 + i) %
                          cur.size();
            const rewrite::PassResult r =
                rewrite::applyRulePass(cur, commutes[i], anchor);
            if (r.applications == 0)
                continue;
            cur = reduceFixpoint(r.circuit, set);
            if (cur.gateCount() < best.gateCount())
                best = cur;
        }
    }
    return best;
}

ir::Circuit
fusionPass(const ir::Circuit &c, ir::GateSetKind set)
{
    return transpile::fuseOneQubitRuns(c, set);
}

} // namespace baselines
} // namespace guoq
