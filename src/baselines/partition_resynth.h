/**
 * @file
 * The partition-and-resynthesize superoptimizer — the BQSKit/QUEST
 * baseline of Table 3 and the "our implementation of a BQSKit-style
 * partitioning optimizer" of Q4.
 *
 * One pass: partition the circuit into disjoint convex blocks of at
 * most 3 qubits, resynthesize each block with an equal share of the
 * error budget, and keep each block's result only when it improves the
 * objective. Rigid by construction: optimizations that straddle block
 * boundaries are invisible to it (the weakness GUOQ's free subcircuit
 * choice removes).
 */

#pragma once

#include <cstdint>

#include "core/cost.h"
#include "ir/circuit.h"
#include "ir/gate_set.h"

namespace guoq {

namespace synth {
class SynthService;
} // namespace synth

namespace baselines {

/** Result of a partition+resynthesize run. */
struct PartitionResynthResult
{
    ir::Circuit circuit;
    double errorSpent = 0;   //!< Σ measured block distances
    int blocks = 0;
    int blocksImproved = 0;
    long cacheHits = 0;      //!< blocks served from the synthesis cache
    long cacheMisses = 0;
    long cacheStores = 0;
};

/**
 * Run the one-pass partition+resynthesize optimizer. Block synthesis
 * routes through @p service (the process-wide synth::SynthService
 * when null), so batch runs share its cache.
 * @param epsilon_total ε_f, divided equally across blocks.
 * @param time_budget_seconds wall clock, divided across blocks.
 */
PartitionResynthResult
partitionResynth(const ir::Circuit &c, ir::GateSetKind set,
                 core::Objective objective, double epsilon_total,
                 double time_budget_seconds, std::uint64_t seed,
                 synth::SynthService *service = nullptr);

} // namespace baselines
} // namespace guoq
