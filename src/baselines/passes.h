/**
 * @file
 * Reusable optimizer passes — the building blocks the fixed-sequence
 * baselines (Qiskit/tket/VOQC analogues, Table 3) are assembled from.
 */

#pragma once

#include "ir/circuit.h"
#include "ir/gate_set.h"

namespace guoq {
namespace baselines {

/**
 * Apply only the size-reducing rules of @p set's library to fixpoint
 * (cancellations, merges, guarded drops).
 */
ir::Circuit reduceFixpoint(const ir::Circuit &c, ir::GateSetKind set);

/**
 * Alternate commutation sweeps with reduction fixpoints for
 * @p rounds rounds — the "commute to expose cancellations" idiom of
 * fixed-sequence optimizers. Never returns a worse circuit (by gate
 * count) than the reduction fixpoint alone.
 */
ir::Circuit commuteAndReduce(const ir::Circuit &c, ir::GateSetKind set,
                             int rounds);

/** One 1q-fusion pass (no-op for Clifford+T). */
ir::Circuit fusionPass(const ir::Circuit &c, ir::GateSetKind set);

} // namespace baselines
} // namespace guoq
