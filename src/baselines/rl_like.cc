#include "baselines/rl_like.h"

#include "rewrite/engine.h"
#include "rewrite/rule.h"
#include "support/logging.h"
#include "support/rng.h"
#include "support/timer.h"
#include "transpile/to_gate_set.h"

namespace guoq {
namespace baselines {

ir::Circuit
rlLikeOptimize(const ir::Circuit &c, ir::GateSetKind set,
               const RlLikeOptions &opts)
{
    const support::Deadline deadline =
        support::Deadline::in(opts.timeBudgetSeconds);
    support::Rng rng(opts.seed);
    const core::CostFunction cost(opts.objective, set);
    const std::vector<rewrite::RewriteRule> &rules = rewrite::rulesFor(set);
    const bool count_cost = cost.countBased();

    // The engine carries `cur` across all steps: the greedy head's
    // one-step lookahead prices each rule pass from the kind-bucket
    // probe + delta counters (or a materialized candidate for
    // order-dependent objectives) instead of building |rules| full
    // circuits per step, then re-prepares only the winning pass.
    rewrite::RewriteEngine engine{ir::Circuit(c)};
    auto attempt_cost = [&](const rewrite::RewriteEngine::Attempt &att) {
        return count_cost ? cost.fromCounts(att.counts)
                          : cost(engine.candidate());
    };

    ir::Circuit best = c;
    double cost_best = cost(c);
    double cost_cur = cost_best;
    long steps = 0;
    int stagnant = 0;

    while (!deadline.expired() &&
           (opts.maxSteps < 0 || steps < opts.maxSteps)) {
        ++steps;

        // Exploration: a random rule pass (plus occasional fusion),
        // accepted unconditionally — the policy's stochastic head.
        if (rng.chance(opts.explorationRate)) {
            if (!ir::isFinite(set) && rng.chance(0.2)) {
                engine.assign(transpile::fuseOneQubitRuns(
                    engine.circuit(), set));
            } else if (auto att = engine.preparePassRandom(
                           rules[rng.index(rules.size())], rng)) {
                engine.commit();
            }
            cost_cur = cost(engine.circuit());
        } else {
            // Greedy head: one-step lookahead over every rule.
            double best_child_cost = cost_cur;
            std::size_t best_rule = 0;
            std::size_t best_anchor = 0;
            bool found = false;
            for (std::size_t ri = 0; ri < rules.size(); ++ri) {
                if (deadline.expired())
                    break;
                auto att = engine.preparePassRandom(rules[ri], rng);
                if (!att)
                    continue;
                const double child_cost = attempt_cost(*att);
                engine.discard();
                if (child_cost < best_child_cost || !found) {
                    best_child_cost = child_cost;
                    best_rule = ri;
                    best_anchor = att->startAnchor;
                    found = true;
                }
            }
            if (!found) {
                ++stagnant;
                if (stagnant > 8)
                    break; // no rule fires at all: converged
                continue;
            }
            stagnant = 0;
            // Deterministic replay of the winning pass: same rule,
            // same anchor, unchanged circuit.
            if (!engine.preparePass(rules[best_rule], best_anchor))
                support::panic("rlLikeOptimize: winning pass vanished");
            engine.commit();
            cost_cur = best_child_cost;
        }

        if (cost_cur < cost_best) {
            cost_best = cost_cur;
            best = engine.circuit();
        }
    }
    return best;
}

} // namespace baselines
} // namespace guoq
