#include "baselines/rl_like.h"

#include "rewrite/applier.h"
#include "rewrite/rule.h"
#include "support/rng.h"
#include "support/timer.h"
#include "transpile/to_gate_set.h"

namespace guoq {
namespace baselines {

ir::Circuit
rlLikeOptimize(const ir::Circuit &c, ir::GateSetKind set,
               const RlLikeOptions &opts)
{
    const support::Deadline deadline =
        support::Deadline::in(opts.timeBudgetSeconds);
    support::Rng rng(opts.seed);
    const core::CostFunction cost(opts.objective, set);
    const std::vector<rewrite::RewriteRule> &rules = rewrite::rulesFor(set);

    ir::Circuit best = c;
    ir::Circuit cur = c;
    double cost_best = cost(c);
    double cost_cur = cost_best;
    long steps = 0;
    int stagnant = 0;

    while (!deadline.expired() &&
           (opts.maxSteps < 0 || steps < opts.maxSteps)) {
        ++steps;

        // Exploration: a random rule pass (plus occasional fusion),
        // accepted unconditionally — the policy's stochastic head.
        if (rng.chance(opts.explorationRate)) {
            if (!ir::isFinite(set) && rng.chance(0.2)) {
                cur = transpile::fuseOneQubitRuns(cur, set);
            } else {
                cur = rewrite::applyRulePassRandom(
                          cur, rules[rng.index(rules.size())], rng)
                          .circuit;
            }
            cost_cur = cost(cur);
        } else {
            // Greedy head: one-step lookahead over every rule.
            double best_child_cost = cost_cur;
            ir::Circuit best_child;
            bool found = false;
            for (const rewrite::RewriteRule &rule : rules) {
                if (deadline.expired())
                    break;
                rewrite::PassResult r =
                    rewrite::applyRulePassRandom(cur, rule, rng);
                if (r.applications == 0)
                    continue;
                const double child_cost = cost(r.circuit);
                if (child_cost < best_child_cost || !found) {
                    best_child_cost = child_cost;
                    best_child = std::move(r.circuit);
                    found = true;
                }
            }
            if (!found) {
                ++stagnant;
                if (stagnant > 8)
                    break; // no rule fires at all: converged
                continue;
            }
            stagnant = 0;
            cur = std::move(best_child);
            cost_cur = best_child_cost;
        }

        if (cost_cur < cost_best) {
            cost_best = cost_cur;
            best = cur;
        }
    }
    return best;
}

} // namespace baselines
} // namespace guoq
