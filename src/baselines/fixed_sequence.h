/**
 * @file
 * Fixed-sequence optimizer baselines — stand-ins for the "fixed
 * sequence of passes" tools of Table 3 (Qiskit level 3, tket, VOQC).
 *
 * These are deterministic, fast, and run to completion well before any
 * search budget: exactly the class GUOQ is compared against in Q1.
 * Substitution note (DESIGN.md): we reimplement the *pass structure*
 * of each tool over our own rule libraries rather than binding to the
 * Python/OCaml originals; their observable profile — quick, local,
 * exact optimization — is what the comparison exercises.
 */

#pragma once

#include "ir/circuit.h"
#include "ir/gate_set.h"

namespace guoq {
namespace baselines {

/**
 * Qiskit-O3 analogue: 1q fusion, then cancellation/merge fixpoint,
 * repeated twice.
 */
ir::Circuit qiskitLikeOptimize(const ir::Circuit &c, ir::GateSetKind set);

/**
 * tket analogue: interleaves commutation sweeps with reductions and
 * fusion (Clifford-aware squashing idiom), two outer rounds.
 */
ir::Circuit tketLikeOptimize(const ir::Circuit &c, ir::GateSetKind set);

/**
 * VOQC analogue: rotation-merging-centric — repeated commute+reduce
 * rounds (no fusion), mirroring VOQC's verified Nam-style passes.
 */
ir::Circuit voqcLikeOptimize(const ir::Circuit &c, ir::GateSetKind set);

} // namespace baselines
} // namespace guoq
