/**
 * @file
 * Registry adapters for the baseline optimizers of Table 3 / Q1-Q4:
 * each wraps its legacy free function (which stays the implementation
 * and keeps its direct callers compiling) behind core::Optimizer, so
 * the CLI, batch driver, and bench harness can dispatch any of them by
 * name next to GUOQ.
 *
 * Shared adapter semantics:
 *  - a request whose cancellation token is already set returns the
 *    input unchanged (the one-shot passes have no inner loop to poll);
 *  - reports never carry a circuit worse than the input under
 *    req.objective — a pass that trades the requested objective away
 *    (e.g. a 2q-focused pass asked to minimize T count) reports the
 *    input instead;
 *  - hooks.onBest fires once with the final result when it improved.
 */

#include <algorithm>
#include <memory>
#include <utility>

#include "baselines/beam_search.h"
#include "baselines/fixed_sequence.h"
#include "baselines/partition_resynth.h"
#include "baselines/phase_poly.h"
#include "baselines/rl_like.h"
#include "core/optimizer.h"
#include "support/timer.h"

namespace guoq {
namespace core {

namespace {

/**
 * Shared shell: cost bookkeeping, the no-worse guard, the single
 * final progress event, and wall-clock stats. Subclasses implement
 * produce() returning (circuit, errorBound) and fill extra stats.
 */
class BaselineOptimizer : public Optimizer
{
  public:
    const OptimizerInfo &info() const override { return info_; }

    OptimizeReport
    run(const ir::Circuit &c, const OptimizeRequest &req) const override
    {
        support::Timer timer;
        const CostFunction cost(req.objective, req.set);
        OptimizeReport report;
        report.algorithm = info_.name;
        const double cost_in = cost(c);

        bool produced = false;
        if (!req.hooks.cancelled()) {
            double error = 0;
            ir::Circuit out = produce(c, req, report.stats, error);
            const double cost_out = cost(out);
            if (cost_out <= cost_in) {
                report.circuit = std::move(out);
                report.cost = cost_out;
                report.errorBound = error;
                produced = true;
            }
        }
        if (!produced) {
            // cancelled, or the pass traded the objective away
            report.circuit = c;
            report.cost = cost_in;
            report.errorBound = 0;
        }
        report.stats.seconds = timer.seconds();

        if (req.hooks.onBest && report.cost < cost_in) {
            ProgressEvent ev;
            ev.seconds = report.stats.seconds;
            ev.cost = report.cost;
            ev.errorBound = report.errorBound;
            ev.gateCount = report.circuit.gateCount();
            ev.twoQubitCount = report.circuit.twoQubitGateCount();
            req.hooks.onBest(ev);
        }
        return report;
    }

  protected:
    virtual ir::Circuit produce(const ir::Circuit &c,
                                const OptimizeRequest &req,
                                GuoqStats &stats,
                                double &error) const = 0;

    OptimizerInfo info_;
};

/** QUESO-style MaxBeam over the transformation framework (Q3). */
class BeamOptimizer : public BaselineOptimizer
{
  public:
    BeamOptimizer()
    {
        info_.name = "beam";
        info_.summary =
            "QUESO-style MaxBeam search over the transformation set "
            "(GUOQ-BEAM, Fig. 11)";
        info_.params = {{"beam-width", ParamSpec::Kind::Int,
                         "bounded priority-queue capacity", "64"}};
    }

    std::string
    checkRequest(const OptimizeRequest &req) const override
    {
        std::string err = Optimizer::checkRequest(req);
        if (err.empty() && paramLong(req.params, "beam-width", 64) < 1)
            err = "parameter 'beam-width' of 'beam' must be >= 1";
        return err;
    }

  protected:
    ir::Circuit
    produce(const ir::Circuit &c, const OptimizeRequest &req,
            GuoqStats &stats, double &error) const override
    {
        baselines::BeamOptions o;
        o.objective = req.objective;
        o.epsilonTotal = req.epsilonTotal;
        o.timeBudgetSeconds = req.timeBudgetSeconds;
        o.beamWidth = static_cast<std::size_t>(
            std::max(paramLong(req.params, "beam-width", 64), 1L));
        o.seed = req.seed;
        o.maxIterations = req.maxIterations;
        baselines::BeamResult r =
            baselines::beamSearchOptimize(c, req.set, o);
        stats.iterations = r.iterations;
        error = r.errorBound;
        return std::move(r.best);
    }
};

/** The three fixed-pass-sequence tools of Table 3 (exact, to
 *  completion — budgets and seeds are ignored). */
class FixedSequenceOptimizer : public BaselineOptimizer
{
  public:
    using Fn = ir::Circuit (*)(const ir::Circuit &, ir::GateSetKind);

    FixedSequenceOptimizer(std::string name, std::string summary, Fn fn)
        : fn_(fn)
    {
        info_.name = std::move(name);
        info_.summary = std::move(summary);
    }

  protected:
    ir::Circuit
    produce(const ir::Circuit &c, const OptimizeRequest &req,
            GuoqStats &, double &) const override
    {
        return fn_(c, req.set);
    }

  private:
    Fn fn_;
};

/** BQSKit/QUEST-style one-pass partition + resynthesize (Q4). */
class PartitionResynthOptimizer : public BaselineOptimizer
{
  public:
    PartitionResynthOptimizer()
    {
        info_.name = "partition-resynth";
        info_.summary =
            "BQSKit-style partition-and-resynthesize superoptimizer "
            "(one pass over disjoint <=3q blocks)";
    }

  protected:
    ir::Circuit
    produce(const ir::Circuit &c, const OptimizeRequest &req,
            GuoqStats &stats, double &error) const override
    {
        baselines::PartitionResynthResult r = baselines::partitionResynth(
            c, req.set, req.objective, req.epsilonTotal,
            req.timeBudgetSeconds, req.seed);
        stats.resynthCalls = r.blocks;
        stats.resynthAccepted = r.blocksImproved;
        stats.synthCacheHits = r.cacheHits;
        stats.synthCacheMisses = r.cacheMisses;
        stats.synthCacheStores = r.cacheStores;
        error = r.errorSpent;
        return std::move(r.circuit);
    }
};

/** PyZX stand-in: phase-polynomial rotation merging (Q4). */
class PhasePolyOptimizer : public BaselineOptimizer
{
  public:
    PhasePolyOptimizer()
    {
        info_.name = "phase-poly";
        info_.summary =
            "phase-polynomial rotation merging (PyZX stand-in: strong "
            "T reduction, CX skeleton untouched)";
    }

  protected:
    ir::Circuit
    produce(const ir::Circuit &c, const OptimizeRequest &req,
            GuoqStats &stats, double &) const override
    {
        baselines::PhasePolyStats s;
        ir::Circuit out = baselines::phasePolyOptimize(c, req.set, &s);
        stats.rewriteApplications = s.rotationsMerged;
        return out;
    }
};

/** Quarl surrogate: greedy rewrite scheduling with exploration. */
class RlLikeOptimizer : public BaselineOptimizer
{
  public:
    RlLikeOptimizer()
    {
        info_.name = "rl-like";
        info_.summary =
            "Quarl-style RL-policy surrogate: one-step-lookahead "
            "greedy rewrites with eps-greedy exploration";
        info_.params = {{"exploration-rate", ParamSpec::Kind::Double,
                         "eps of eps-greedy exploration", "0.15"}};
    }

  protected:
    ir::Circuit
    produce(const ir::Circuit &c, const OptimizeRequest &req,
            GuoqStats &, double &) const override
    {
        baselines::RlLikeOptions o;
        o.objective = req.objective;
        o.timeBudgetSeconds = req.timeBudgetSeconds;
        o.explorationRate =
            paramDouble(req.params, "exploration-rate", 0.15);
        o.seed = req.seed;
        o.maxSteps = req.maxIterations;
        return baselines::rlLikeOptimize(c, req.set, o);
    }
};

} // namespace

void
registerBaselineOptimizers(OptimizerRegistry &r)
{
    r.add(std::make_unique<BeamOptimizer>());
    r.add(std::make_unique<FixedSequenceOptimizer>(
        "qiskit-like",
        "Qiskit-O3 analogue: 1q fusion + cancellation/merge fixpoint, "
        "twice (fast, exact, deterministic)",
        &baselines::qiskitLikeOptimize));
    r.add(std::make_unique<FixedSequenceOptimizer>(
        "tket-like",
        "tket analogue: commutation sweeps interleaved with reductions "
        "and fusion, two rounds",
        &baselines::tketLikeOptimize));
    r.add(std::make_unique<FixedSequenceOptimizer>(
        "voqc-like",
        "VOQC analogue: rotation-merging-centric commute+reduce rounds "
        "(no fusion)",
        &baselines::voqcLikeOptimize));
    r.add(std::make_unique<PartitionResynthOptimizer>());
    r.add(std::make_unique<PhasePolyOptimizer>());
    r.add(std::make_unique<RlLikeOptimizer>());
}

} // namespace core
} // namespace guoq
