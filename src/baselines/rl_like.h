/**
 * @file
 * An RL-policy surrogate for Quarl (Table 3, Q1).
 *
 * Quarl schedules Quartz-generated rewrite rules with a deep RL policy
 * trained on an A100 GPU. We cannot reproduce the training run; the
 * surrogate reproduces the *decision profile* of the learned policy —
 * strong greedy local scheduling of exact rewrites with occasional
 * exploration, no approximation, no resynthesis — via one-step-
 * lookahead greedy selection with ε-greedy exploration. DESIGN.md
 * documents this substitution.
 */

#pragma once

#include <cstdint>

#include "core/cost.h"
#include "ir/circuit.h"
#include "ir/gate_set.h"

namespace guoq {
namespace baselines {

/** Options for rlLikeOptimize(). */
struct RlLikeOptions
{
    core::Objective objective = core::Objective::TwoQubitCount;
    double timeBudgetSeconds = 10;
    double explorationRate = 0.15; //!< ε of ε-greedy
    std::uint64_t seed = 1;
    long maxSteps = -1;            //!< optional cap for tests
};

/** Greedy-with-exploration rewrite scheduling. */
ir::Circuit rlLikeOptimize(const ir::Circuit &c, ir::GateSetKind set,
                           const RlLikeOptions &opts);

} // namespace baselines
} // namespace guoq
