/**
 * @file
 * GUOQ-BEAM: the QUESO MaxBeam search algorithm instantiated over our
 * transformation framework (paper Q3).
 *
 * Maintains a bounded priority queue of candidate circuits; each
 * iteration pops the best candidate and applies *every* transformation
 * to it, pushing all distinct results. The paper finds this saturates
 * the queue with near-identical candidates and loses to GUOQ's
 * single-candidate randomized walk — this implementation exists to
 * reproduce that comparison (Fig. 11).
 */

#pragma once

#include <cstdint>

#include "core/cost.h"
#include "core/framework.h"
#include "ir/circuit.h"

namespace guoq {
namespace baselines {

/** Options for beamSearchOptimize(). */
struct BeamOptions
{
    core::Objective objective = core::Objective::TwoQubitCount;
    double epsilonTotal = 0;     //!< ε_f (approximate moves disabled at 0)
    double timeBudgetSeconds = 10;
    std::size_t beamWidth = 64;  //!< bounded queue capacity
    std::uint64_t seed = 1;
    long maxIterations = -1;     //!< optional cap for tests
};

/** Result of a beam run. */
struct BeamResult
{
    ir::Circuit best;
    double errorBound = 0;
    long iterations = 0;
    long candidatesGenerated = 0;
    long candidatesPruned = 0;
};

/** Run MaxBeam over the transformation set of @p set. */
BeamResult beamSearchOptimize(const ir::Circuit &c, ir::GateSetKind set,
                              const BeamOptions &opts);

} // namespace baselines
} // namespace guoq
