#include "baselines/phase_poly.h"

#include <algorithm>
#include <map>
#include <vector>

#include "transpile/decompose.h"

namespace guoq {
namespace baselines {

namespace {

using ir::Gate;
using ir::GateKind;

/** Diagonal 1q phase angle, or false when not a diagonal 1q gate. */
bool
diagonalAngle(const Gate &g, double *angle)
{
    switch (g.kind) {
      case GateKind::T:   *angle = M_PI / 4; return true;
      case GateKind::Tdg: *angle = -M_PI / 4; return true;
      case GateKind::S:   *angle = M_PI / 2; return true;
      case GateKind::Sdg: *angle = -M_PI / 2; return true;
      case GateKind::Z:   *angle = M_PI; return true;
      case GateKind::Rz:
      case GateKind::U1:  *angle = g.params[0]; return true;
      default: return false;
    }
}

/** True for multi-qubit gates that are diagonal (parity-transparent). */
bool
isDiagonalMulti(GateKind k)
{
    return k == GateKind::CZ || k == GateKind::CP || k == GateKind::CCZ;
}

/** The F2-affine parity carried by one wire. */
struct Parity
{
    std::vector<int> vars; //!< sorted variable ids
    bool flipped = false;  //!< affine constant (X gates toggle it)
};

/** vars_a ^= vars_b as sorted symmetric difference. */
std::vector<int>
xorVars(const std::vector<int> &a, const std::vector<int> &b)
{
    std::vector<int> out;
    std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                  std::back_inserter(out));
    return out;
}

} // namespace

ir::Circuit
phasePolyOptimize(const ir::Circuit &c, ir::GateSetKind set,
                  PhasePolyStats *stats)
{
    const int nq = c.numQubits();
    std::vector<Parity> parity(static_cast<std::size_t>(nq));
    for (int q = 0; q < nq; ++q)
        parity[static_cast<std::size_t>(q)].vars = {q};
    int next_var = nq;

    struct Group
    {
        double angle = 0;        //!< merged signed angle
        std::size_t rep = 0;     //!< representative gate index
        bool repFlipped = false; //!< wire's affine bit at the rep site
        int members = 0;
    };
    std::map<std::vector<int>, Group> groups;
    // Per gate: the group key for diagonal 1q gates (empty = not one).
    std::vector<const std::vector<int> *> gate_key(c.size(), nullptr);
    std::vector<std::vector<int>> key_storage(c.size());

    // Pass 1: simulate parities, accumulate per-parity angles.
    for (std::size_t i = 0; i < c.size(); ++i) {
        const Gate &g = c.gate(i);
        double angle = 0;
        if (g.arity() == 1 && diagonalAngle(g, &angle)) {
            Parity &p = parity[static_cast<std::size_t>(g.qubits[0])];
            auto [it, inserted] = groups.try_emplace(p.vars);
            Group &grp = it->second;
            if (inserted) {
                grp.rep = i;
                grp.repFlipped = p.flipped;
            }
            // A rotation on a flipped wire contributes -θ to the
            // parity term (plus a global phase, dropped under ≡).
            grp.angle += p.flipped ? -angle : angle;
            ++grp.members;
            key_storage[i] = it->first;
            gate_key[i] = &key_storage[i];
            continue;
        }
        if (g.kind == GateKind::CX) {
            Parity &pc = parity[static_cast<std::size_t>(g.qubits[0])];
            Parity &pt = parity[static_cast<std::size_t>(g.qubits[1])];
            pt.vars = xorVars(pt.vars, pc.vars);
            pt.flipped = pt.flipped != pc.flipped;
            continue;
        }
        if (g.kind == GateKind::X) {
            parity[static_cast<std::size_t>(g.qubits[0])].flipped ^= true;
            continue;
        }
        if (g.kind == GateKind::Swap) {
            std::swap(parity[static_cast<std::size_t>(g.qubits[0])],
                      parity[static_cast<std::size_t>(g.qubits[1])]);
            continue;
        }
        if (isDiagonalMulti(g.kind))
            continue; // diagonal: parities pass through untouched
        // Any other gate is a barrier: remint its wires' parities.
        for (int q : g.qubits) {
            parity[static_cast<std::size_t>(q)].vars = {next_var++};
            parity[static_cast<std::size_t>(q)].flipped = false;
        }
    }

    // Pass 2: rebuild, emitting each group's merged angle at its
    // representative site and dropping the absorbed rotations.
    ir::Circuit out(nq);
    int merged = 0;
    for (std::size_t i = 0; i < c.size(); ++i) {
        const Gate &g = c.gate(i);
        if (!gate_key[i]) {
            out.add(g);
            continue;
        }
        const Group &grp = groups.at(*gate_key[i]);
        if (grp.rep != i) {
            ++merged;
            continue;
        }
        // Undo the representative site's affine sign so the emitted
        // rotation realizes the merged parity term.
        const double emit = ir::normalizeAngle(
            grp.repFlipped ? -grp.angle : grp.angle);
        if (ir::isZeroAngle(emit, 1e-12)) {
            ++merged;
            continue;
        }
        const int q = g.qubits[0];
        if (set == ir::GateSetKind::CliffordT) {
            for (Gate &ng : transpile::rzToCliffordT(emit, q))
                out.add(std::move(ng));
        } else if (set == ir::GateSetKind::Ibmq20) {
            out.add(GateKind::U1, {q}, {emit});
        } else {
            out.add(GateKind::Rz, {q}, {emit});
        }
    }
    if (stats)
        stats->rotationsMerged = merged;
    return out;
}

} // namespace baselines
} // namespace guoq
