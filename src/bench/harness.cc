#include "bench/harness.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>

#include "bench/registry.h"
#include "support/logging.h"
#include "support/options.h"
#include "support/stats.h"
#include "support/table.h"
#include "support/timer.h"

namespace guoq {
namespace bench {

RunOptions
RunOptions::fromEnv()
{
    RunOptions opts;
    opts.scale = support::benchScale();
    opts.trials = support::benchTrials();
    opts.seed = support::benchSeed();
    opts.threads = support::benchThreads();
    return opts;
}

namespace {

/** Stash a portfolio run's per-worker wall timings on the context
 *  (only multi-thread runs carry per-worker detail). */
void
stashWorkers(CaseContext &ctx, int threads,
             const std::vector<core::PortfolioWorkerReport> &workers)
{
    std::vector<double> worker_seconds;
    if (threads > 1) {
        worker_seconds.reserve(workers.size());
        for (const core::PortfolioWorkerReport &w : workers)
            worker_seconds.push_back(w.wallSeconds);
    }
    ctx.stashWorkerSeconds(worker_seconds);
}

} // namespace

core::PortfolioResult
runGuoqPortfolio(CaseContext &ctx, const GuoqSpec &spec,
                 const ir::Circuit &c, std::uint64_t seed)
{
    core::PortfolioConfig pcfg;
    pcfg.base = spec.cfg;
    pcfg.base.seed = seed;
    pcfg.base.timeBudgetSeconds = ctx.budget(spec.baseBudgetSeconds);
    pcfg.threads = ctx.opts().threads;
    core::PortfolioResult r = core::optimizePortfolio(c, spec.set, pcfg);
    stashWorkers(ctx, pcfg.threads, r.workers);
    ctx.stashSynthStats(r.stats);
    return r;
}

ir::Circuit
runGuoq(CaseContext &ctx, const GuoqSpec &spec, const ir::Circuit &c,
        std::uint64_t seed)
{
    return runGuoqPortfolio(ctx, spec, c, seed).best;
}

Tool
registryTool(CaseContext &ctx, std::string display,
             std::string algorithm, core::OptimizeRequest base)
{
    const core::Optimizer *opt =
        core::OptimizerRegistry::global().find(algorithm);
    if (!opt)
        support::fatal(support::strcat("registryTool: unknown algorithm '",
                                       algorithm, "'"));
    const std::string err = opt->checkRequest(base);
    if (!err.empty())
        support::fatal(support::strcat("registryTool: ", err));
    Tool tool;
    tool.name = std::move(display);
    tool.algorithm = std::move(algorithm);
    tool.run = [&ctx, opt, base = std::move(base)](
                   const ir::Circuit &c, std::uint64_t seed) {
        core::OptimizeRequest req = base;
        req.seed = seed;
        req.threads = ctx.opts().threads;
        core::OptimizeReport report = opt->run(c, req);
        stashWorkers(ctx, req.threads, report.workers);
        ctx.stashSynthStats(report.stats);
        return std::move(report.circuit);
    };
    return tool;
}

void
runComparison(CaseContext &ctx,
              const std::vector<workloads::Benchmark> &suite,
              const Tool &guoq, const std::vector<Tool> &tools,
              const Comparison &cmp)
{
    const RunOptions &opts = ctx.opts();
    std::vector<std::string> headers{"benchmark", "gates", guoq.name};
    for (const Tool &t : tools)
        headers.push_back(t.name);
    support::TextTable table(std::move(headers));

    std::vector<support::CompareCounts> counts(tools.size());
    double guoq_sum = 0.0;
    std::vector<double> tool_sum(tools.size(), 0.0);

    // Runs one (benchmark, tool) cell: opts.trials runs, one row each,
    // returning the across-trial mean the table and bars summarize.
    auto runCell = [&](const Tool &tool,
                       const workloads::Benchmark &b) -> double {
        double sum = 0.0;
        for (int t = 0; t < opts.trials; ++t) {
            const std::uint64_t seed = opts.trialSeed(t);
            support::Timer timer;
            const ir::Circuit out = tool.run(b.circuit, seed);
            const double seconds = timer.seconds();
            const double m = cmp.metric(b.circuit, out);
            sum += m;
            CaseResult row;
            row.benchmark = b.name;
            row.tool = tool.name;
            row.algorithm = tool.algorithm;
            row.metric = cmp.metricKey;
            row.value = m;
            row.seconds = seconds;
            row.trial = t;
            row.seed = seed;
            row.workerSeconds = ctx.takeWorkerSeconds();
            const SynthCacheTally tally = ctx.takeSynthStats();
            row.synthCacheHits = tally.hits;
            row.synthCacheMisses = tally.misses;
            row.synthCacheStores = tally.stores;
            ctx.record(std::move(row));
        }
        return sum / static_cast<double>(opts.trials);
    };

    for (const workloads::Benchmark &b : suite) {
        const double guoq_mean = runCell(guoq, b);
        guoq_sum += guoq_mean;
        std::vector<std::string> row{b.name,
                                     std::to_string(b.circuit.size()),
                                     support::fmtPct(guoq_mean)};
        for (std::size_t t = 0; t < tools.size(); ++t) {
            const double m = runCell(tools[t], b);
            tool_sum[t] += m;
            counts[t].add(support::compareMeans(guoq_mean, m, 1e-6));
            row.push_back(support::fmtPct(m));
        }
        table.addRow(std::move(row));
    }

    const double n = static_cast<double>(suite.size());
    auto aggregate = [&](const Tool &tool, const std::string &metric,
                         double value) {
        CaseResult row;
        row.benchmark = "*";
        row.tool = tool.name;
        row.algorithm = tool.algorithm;
        row.metric = metric;
        row.value = value;
        row.seed = opts.seed;
        ctx.record(std::move(row));
    };
    if (n > 0)
        aggregate(guoq, cmp.metricKey + "_avg", guoq_sum / n);
    for (std::size_t t = 0; t < tools.size(); ++t) {
        if (n > 0)
            aggregate(tools[t], cmp.metricKey + "_avg",
                      tool_sum[t] / n);
        aggregate(tools[t], "better", counts[t].better);
        aggregate(tools[t], "match", counts[t].match);
        aggregate(tools[t], "worse", counts[t].worse);
    }

    if (!ctx.pretty())
        return;
    table.print();
    if (suite.empty())
        return; // no bars (and no nan% averages) over zero benchmarks
    std::printf("\n%s, GUOQ vs each tool "
                "(better/match/worse out of %zu):\n",
                cmp.metricName.c_str(), suite.size());
    for (std::size_t t = 0; t < tools.size(); ++t) {
        std::printf("  %-14s %3d / %3d / %3d   "
                    "(avg: guoq %s vs %s)\n",
                    tools[t].name.c_str(), counts[t].better,
                    counts[t].match, counts[t].worse,
                    support::fmtPct(guoq_sum / n).c_str(),
                    support::fmtPct(tool_sum[t] / n).c_str());
    }
    std::printf("\n");
}

int
suiteCap(const RunOptions &opts, int base)
{
    if (opts.scale >= 4)
        return 1 << 20; // full suite
    return base;
}

std::vector<workloads::Benchmark>
benchSuiteFor(ir::GateSetKind set, int cap, std::size_t min_gates)
{
    std::vector<workloads::Benchmark> full = workloads::suiteFor(set);
    std::vector<workloads::Benchmark> sized;
    for (workloads::Benchmark &b : full)
        if (b.circuit.size() >= min_gates)
            sized.push_back(std::move(b));
    std::stable_sort(sized.begin(), sized.end(),
                     [](const workloads::Benchmark &a,
                        const workloads::Benchmark &b) {
                         return a.circuit.size() < b.circuit.size();
                     });
    // Family round-robin so a truncated panel stays diverse; each
    // benchmark is taken at most once.
    std::vector<bool> used(sized.size(), false);
    std::vector<workloads::Benchmark> out;
    bool any = true;
    while (any && static_cast<int>(out.size()) < cap) {
        any = false;
        std::set<std::string> this_round;
        for (std::size_t i = 0;
             i < sized.size() && static_cast<int>(out.size()) < cap;
             ++i) {
            if (used[i] || this_round.count(sized[i].family))
                continue;
            used[i] = true;
            this_round.insert(sized[i].family);
            out.push_back(sized[i]);
            any = true;
        }
    }
    return out;
}

std::vector<CaseResult>
runCases(const std::vector<const BenchCase *> &cases,
         const RunOptions &opts)
{
    std::vector<CaseResult> results;
    for (const BenchCase *c : cases) {
        CaseContext ctx(opts, c->id, results);
        c->fn(ctx);
    }
    return results;
}

int
legacyMain()
{
    const RunOptions opts = RunOptions::fromEnv();
    // A legacy binary registered only its own cases, so "all" is
    // exactly the figure this binary regenerates.
    runCases(Registry::instance().matching({}), opts);
    return 0;
}

} // namespace bench
} // namespace guoq
