/**
 * @file
 * Structured emitters for the benchmark runner: the flat CaseResult
 * rows as JSON (schema "guoq-bench-v1") or CSV, so the perf
 * trajectory is machine-readable and plottable instead of print-only.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace guoq {
namespace bench {

/** Provenance header of one runner invocation. */
struct RunMeta
{
    double scale = 1.0;
    int trials = 1;
    std::uint64_t seed = 0;
    int threads = 1;
    std::vector<std::string> cases; //!< ids actually run, in order
};

/**
 * The run as a JSON document:
 *
 *   {
 *     "schema": "guoq-bench-v1",
 *     "run": {"scale": ..., "trials": ..., "seed": ..., "threads": ...,
 *             "cases": [...]},
 *     "results": [
 *       {"case": ..., "benchmark": ..., "tool": ..., "algorithm": ...,
 *        "metric": ..., "value": ..., "seconds": ..., "trial": ...,
 *        "seed": ..., "workers": [...], "synth_cache_hits": ...,
 *        "synth_cache_misses": ..., "synth_cache_stores": ...}, ...
 *     ]
 *   }
 *
 * Non-finite values serialize as null so the document always parses.
 */
std::string toJson(const RunMeta &meta,
                   const std::vector<CaseResult> &results);

/**
 * The rows as RFC-4180 CSV with a header line; `workers` is a
 * semicolon-joined list so it stays one field.
 */
std::string toCsv(const std::vector<CaseResult> &results);

/** One file's outcome in a `guoq_cli --batch` run. */
struct BatchFileEntry
{
    std::string file;    //!< input path relative to the batch root
    std::string status;  //!< "ok" | "verify_skipped" | "parse_error" |
                         //!< "verify_failed" | "write_error"
    std::string dialect; //!< input dialect actually parsed
    std::string algorithm; //!< registry name of the optimizer used
    std::string output;  //!< written output path (ok entries only)
    int qubits = 0;
    std::size_t gatesBefore = 0;
    std::size_t gatesAfter = 0;
    std::size_t twoQubitBefore = 0;
    std::size_t twoQubitAfter = 0;
    double errorBound = 0; //!< accumulated ε of the result
    /** @name Synthesis-cache traffic of this file's run (ok-shaped
     *  entries; see docs/FORMATS.md) */
    /** @{ */
    long synthCacheHits = 0;
    long synthCacheMisses = 0;
    long synthCacheStores = 0;
    long poolQueuePeak = 0;
    /** @} */
    double seconds = 0;    //!< wall time spent on this file
    int line = 0;          //!< error position (failures; 0 = n/a)
    int col = 0;
    std::string message;   //!< error message (failures only)

    /** @name Verification outcome (--verify runs that completed;
     *  stamped on ok and verify_failed entries alike) */
    /** @{ */
    bool verified = false;      //!< a check ran; the fields below hold
    std::string verifyMethod;   //!< backend that ran ("dense", ...)
    double verifyDistance = 0;  //!< Δ estimate
    double verifyBound = 0;     //!< confidence-interval half-width
    double verifyConfidence = 0; //!< confidence the bound holds
    long verifyShots = 0;       //!< shots spent (0 = exact)
    std::string verifyVerdict;  //!< "equivalent" | "inequivalent"
    /** @} */
};

/** Provenance header of one batch run. */
struct BatchRunMeta
{
    std::string inputDir;
    std::string outputDir;
    std::string gateSet;
    std::string objective;
    std::string algorithm; //!< registry name of the optimizer used
    double epsilon = 0;
    double timeBudgetSeconds = 0;
    int threads = 1; //!< portfolio workers per file
    int jobs = 1;    //!< files optimized concurrently
    std::uint64_t seed = 0;
    int synthWorkers = 0;      //!< async synthesis workers (0 = sync)
    std::string synthCacheDir; //!< persistent cache dir ("" = off)
};

/**
 * The batch run as a JSON document (schema "guoq-batch-v1"):
 *
 *   {
 *     "schema": "guoq-batch-v1",
 *     "run": {"input_dir": ..., "output_dir": ..., "gate_set": ...,
 *             "objective": ..., "algorithm": ..., "epsilon": ...,
 *             "time": ..., "threads": ..., "jobs": ..., "seed": ...,
 *             "files": N, "ok": N, "failed": N, "verify_skipped": N},
 *     "files": [
 *       {"file": ..., "status": "ok", "dialect": ...,
 *        "algorithm": ..., "output": ..., "qubits": ...,
 *        "gates_before": ..., "gates_after": ..., "twoq_before": ...,
 *        "twoq_after": ..., "error_bound": ...,
 *        "synth_cache_hits": ..., "synth_cache_misses": ...,
 *        "synth_cache_stores": ..., "pool_queue_peak": ...,
 *        "verify": {"method": ..., "distance": ..., "bound": ...,
 *                   "confidence": ..., "shots": ..., "verdict": ...},
 *        "seconds": ...},
 *       {"file": ..., "status": "parse_error", "dialect": ...,
 *        "algorithm": ..., "line": ..., "col": ..., "message": ...,
 *        "seconds": ...}
 *     ]
 *   }
 *
 * Failed entries carry line/col/message instead of the circuit
 * fields; "verify_skipped" entries are ok-shaped plus a message and
 * count neither as ok nor failed. The "verify" block appears on any
 * entry whose check completed (ok and verify_failed alike);
 * docs/FORMATS.md is the schema's authoritative description.
 */
std::string toBatchJson(const BatchRunMeta &meta,
                        const std::vector<BatchFileEntry> &files);

/**
 * Numeric per-row status for serve rows: 0 for the ok-shaped
 * statuses ("ok", "verify_skipped" — a result was produced), nonzero
 * for failures (1 parse_error, 2 verify_failed, 3 write_error,
 * 4 frame_error, 5 anything else). Stable: codes are only ever added.
 */
int serveRowCode(const std::string &status);

/**
 * One `guoq-serve-v1` response row (schema "guoq-serve-row-v1"): the
 * BatchFileEntry fields of `guoq-batch-v1`, reused key-for-key on a
 * single line — `id` in place of `file`, plus the numeric `code` and,
 * on ok-shaped rows, the optimized program inline as `qasm` (a serve
 * request has no output tree to write into). No trailing newline; the
 * writer thread adds the row-delimiting "\n". Schema reference:
 * docs/FORMATS.md.
 */
std::string toServeRowJson(const BatchFileEntry &e,
                           const std::string &qasm);

/** JSON string escaping (quotes, backslashes, control characters). */
std::string jsonEscape(const std::string &s);

/** One CSV field, quoted iff it contains a comma/quote/newline. */
std::string csvField(const std::string &s);

} // namespace bench
} // namespace guoq
