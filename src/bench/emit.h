/**
 * @file
 * Structured emitters for the benchmark runner: the flat CaseResult
 * rows as JSON (schema "guoq-bench-v1") or CSV, so the perf
 * trajectory is machine-readable and plottable instead of print-only.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace guoq {
namespace bench {

/** Provenance header of one runner invocation. */
struct RunMeta
{
    double scale = 1.0;
    int trials = 1;
    std::uint64_t seed = 0;
    int threads = 1;
    std::vector<std::string> cases; //!< ids actually run, in order
};

/**
 * The run as a JSON document:
 *
 *   {
 *     "schema": "guoq-bench-v1",
 *     "run": {"scale": ..., "trials": ..., "seed": ..., "threads": ...,
 *             "cases": [...]},
 *     "results": [
 *       {"case": ..., "benchmark": ..., "tool": ..., "metric": ...,
 *        "value": ..., "seconds": ..., "trial": ..., "seed": ...,
 *        "workers": [...]}, ...
 *     ]
 *   }
 *
 * Non-finite values serialize as null so the document always parses.
 */
std::string toJson(const RunMeta &meta,
                   const std::vector<CaseResult> &results);

/**
 * The rows as RFC-4180 CSV with a header line; `workers` is a
 * semicolon-joined list so it stays one field.
 */
std::string toCsv(const std::vector<CaseResult> &results);

/** JSON string escaping (quotes, backslashes, control characters). */
std::string jsonEscape(const std::string &s);

/** One CSV field, quoted iff it contains a comma/quote/newline. */
std::string csvField(const std::string &s);

} // namespace bench
} // namespace guoq
