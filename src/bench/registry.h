/**
 * @file
 * The benchmark-case registry: every figure/table harness registers
 * its cases here (via a static CaseRegistrar in its own translation
 * unit), and the runners — guoq_bench and the legacy thin binaries —
 * select from it by filter: exact id or leading path component
 * ("fig12" matches "fig12/t" but not "fig120"), with a substring
 * fallback for filters that match nothing that way.
 */

#pragma once

#include <string>
#include <vector>

#include "bench/harness.h"

namespace guoq {
namespace bench {

/** One registered benchmark case. */
struct BenchCase
{
    std::string id;    //!< e.g. "fig8/2q"; see matching() for filters
    std::string title; //!< one-line description for --list
    int order = 0;     //!< canonical run/list position (paper order)
    CaseFn fn;
};

/** Process-wide case registry (insertion from static registrars). */
class Registry
{
  public:
    static Registry &instance();

    void add(BenchCase c);

    /**
     * Cases matching any of @p filters (all cases when the list is
     * empty), sorted by (order, id). A filter matches a case whose id
     * equals it or starts with it at a '/' boundary — "fig1" selects
     * fig1 only, not fig10..fig15 — and a filter with no such hit
     * falls back to substring matching ("fidelity" still selects
     * fig8/fidelity and fig9/fidelity).
     */
    std::vector<const BenchCase *>
    matching(const std::vector<std::string> &filters) const;

  private:
    std::vector<BenchCase> cases_;
};

/** Registers a case at static-initialization time. */
struct CaseRegistrar
{
    CaseRegistrar(std::string id, std::string title, int order,
                  CaseFn fn);
};

} // namespace bench
} // namespace guoq
