/**
 * @file
 * The unified benchmark harness behind every per-figure case: run
 * options, structured per-row results, and the shared runners.
 *
 * The legacy harnesses were single-process, serial, print-only
 * binaries. This subsystem routes every GUOQ invocation through
 * core::optimizePortfolio (threads/seed/trials/budget scale come from
 * GUOQ_BENCH_* env vars or the guoq_bench flags), and cases record
 * flat (case, benchmark, tool, metric, value) rows that emit.h
 * serializes to JSON/CSV — the machine-readable perf trajectory the
 * print-only binaries never produced.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/optimizer.h"
#include "core/portfolio.h"
#include "ir/circuit.h"
#include "ir/gate_set.h"
#include "workloads/suite.h"

namespace guoq {
namespace bench {

/** Options for one runner invocation (env defaults, flag overrides). */
struct RunOptions
{
    double scale = 1.0;        //!< multiplies every search budget
    int trials = 1;            //!< repetitions per experiment cell
    std::uint64_t seed = 12345; //!< base seed; trial t uses seed + t
    int threads = 1;           //!< portfolio workers per GUOQ call
    bool pretty = true;        //!< print the paper-style tables

    /** Defaults from GUOQ_BENCH_{SCALE,TRIALS,SEED,THREADS}. */
    static RunOptions fromEnv();

    /** A per-run budget: @p base seconds scaled by `scale`. */
    double
    budget(double base) const
    {
        return base * scale;
    }

    /** The seed for trial @p trial of any experiment cell. */
    std::uint64_t
    trialSeed(int trial) const
    {
        return seed + static_cast<std::uint64_t>(trial);
    }
};

/** One structured result row, the unit the emitters serialize. */
struct CaseResult
{
    std::string caseId;    //!< e.g. "fig1" (stamped by CaseContext)
    std::string benchmark; //!< circuit name, or "*" for aggregates
    std::string tool;      //!< "guoq", "qiskit", a knob label, ...
    /** Registry name of the core::Optimizer that produced the row
     *  ("guoq", "beam", ...; "+"-joined for phased composites). Empty
     *  for rows from cases not yet routed through the registry. */
    std::string algorithm;
    std::string metric;    //!< e.g. "2q_reduction", "final_2q"
    double value = 0;
    double seconds = 0;    //!< wall seconds of the producing run
    int trial = 0;
    std::uint64_t seed = 0;
    /** Per-worker wall seconds when the row came from a multi-thread
     *  portfolio run (empty otherwise). */
    std::vector<double> workerSeconds;
    /** @name Synthesis-cache traffic of the producing run(s)
     *  (all zero when the run did no service-routed resynthesis). */
    /** @{ */
    long synthCacheHits = 0;
    long synthCacheMisses = 0;
    long synthCacheStores = 0;
    /** @} */
};

/** Synthesis-cache traffic ferried from runners to recorded rows. */
struct SynthCacheTally
{
    long hits = 0;
    long misses = 0;
    long stores = 0;
};

/**
 * Per-case recorder handed to every registered case: stamps rows with
 * the case id and carries the run options. Also ferries the per-worker
 * timings of portfolio runs from runGuoq() to whichever helper records
 * the row for them: each run appends its workers (so a tool built from
 * several GUOQ phases, like fig11's sequential halves, reports all of
 * them), and takeWorkerSeconds() clears the stash so timings can never
 * attach to a later row.
 */
class CaseContext
{
  public:
    CaseContext(const RunOptions &opts, std::string case_id,
                std::vector<CaseResult> &sink)
        : opts_(opts), caseId_(std::move(case_id)), sink_(sink)
    {
    }

    const RunOptions &opts() const { return opts_; }
    bool pretty() const { return opts_.pretty; }
    double budget(double base) const { return opts_.budget(base); }

    /** Record one row (fills in the case id). */
    void
    record(CaseResult r)
    {
        r.caseId = caseId_;
        sink_.push_back(std::move(r));
    }

    /** Append one portfolio run's per-worker timings to the stash. */
    void
    stashWorkerSeconds(const std::vector<double> &ws)
    {
        workerSeconds_.insert(workerSeconds_.end(), ws.begin(),
                              ws.end());
    }

    /** Take (and clear) the stashed per-worker timings. */
    std::vector<double>
    takeWorkerSeconds()
    {
        std::vector<double> out = std::move(workerSeconds_);
        workerSeconds_.clear();
        return out;
    }

    /** Accumulate one run's synthesis-cache counters into the stash. */
    void
    stashSynthStats(const core::GuoqStats &stats)
    {
        synthTally_.hits += stats.synthCacheHits;
        synthTally_.misses += stats.synthCacheMisses;
        synthTally_.stores += stats.synthCacheStores;
    }

    /** Take (and clear) the stashed cache counters. */
    SynthCacheTally
    takeSynthStats()
    {
        const SynthCacheTally out = synthTally_;
        synthTally_ = SynthCacheTally{};
        return out;
    }

  private:
    const RunOptions &opts_;
    std::string caseId_;
    std::vector<CaseResult> &sink_;
    std::vector<double> workerSeconds_;
    SynthCacheTally synthTally_;
};

/** A registered case body. */
using CaseFn = std::function<void(CaseContext &)>;

/**
 * 1 - after/before, the paper's gate-reduction metric. A before == 0
 * baseline has nothing to reduce: growth from it is reported as a
 * negative signed value (minus the gates added) rather than the silent
 * 0 the old harness returned, so a tool that adds gates to an empty
 * baseline can no longer score as break-even.
 */
inline double
reduction(std::size_t before, std::size_t after)
{
    if (before == 0)
        return after == 0 ? 0.0 : -static_cast<double>(after);
    return 1.0 -
           static_cast<double>(after) / static_cast<double>(before);
}

/**
 * One GUOQ configuration a case runs per (circuit, seed) cell. The
 * seed and wall-clock budget of `cfg` are overwritten per invocation:
 * the budget is baseBudgetSeconds scaled by RunOptions::scale.
 */
struct GuoqSpec
{
    ir::GateSetKind set = ir::GateSetKind::Nam;
    core::GuoqConfig cfg;
    double baseBudgetSeconds = 3.0;
};

/**
 * Route one GUOQ invocation through core::optimizePortfolio with the
 * context's thread count, and stash the per-worker wall timings for
 * the next recorded row. threads == 1 reproduces core::optimize()
 * bit-for-bit, so legacy printed numbers are preserved by default.
 */
core::PortfolioResult runGuoqPortfolio(CaseContext &ctx,
                                       const GuoqSpec &spec,
                                       const ir::Circuit &c,
                                       std::uint64_t seed);

/** runGuoqPortfolio, keeping only the best circuit. */
ir::Circuit runGuoq(CaseContext &ctx, const GuoqSpec &spec,
                    const ir::Circuit &c, std::uint64_t seed);

/** A tool entry: name plus a circuit optimizer closure. */
struct Tool
{
    using RunFn =
        std::function<ir::Circuit(const ir::Circuit &, std::uint64_t)>;

    Tool() = default;
    /** Legacy {name, run} spellings keep working; rows of a tool
     *  constructed without an algorithm stay untagged. */
    Tool(std::string name_, RunFn run_, std::string algorithm_ = "")
        : name(std::move(name_)), run(std::move(run_)),
          algorithm(std::move(algorithm_))
    {
    }

    std::string name; //!< display/row label, e.g. "queso"
    RunFn run;
    /** Producing algorithm recorded on the tool's rows (see
     *  CaseResult::algorithm). */
    std::string algorithm;
};

/**
 * A Tool dispatching through core::OptimizerRegistry::global():
 * per invocation @p base gets the cell's seed and the context's
 * thread count, the named optimizer runs it, and any per-worker wall
 * timings are stashed on @p ctx for the recorded row (exactly like
 * runGuoqPortfolio). Fatal when @p algorithm is not registered or
 * @p base fails the optimizer's checkRequest validation.
 */
Tool registryTool(CaseContext &ctx, std::string display,
                  std::string algorithm, core::OptimizeRequest base);

/** The metric of a head-to-head comparison. */
struct Comparison
{
    std::string metricName; //!< display name, e.g. "2q gate reduction"
    std::string metricKey;  //!< row key, e.g. "2q_reduction"
    std::function<double(const ir::Circuit &before,
                         const ir::Circuit &after)>
        metric;
};

/**
 * Head-to-head comparison on a suite: runs @p guoq and each tool on
 * every benchmark for opts().trials trials, records one row per
 * (benchmark, tool, trial) plus per-tool better/match/worse and
 * average aggregates, and (pretty mode) prints the per-benchmark table
 * and the paper-style bars. Table cells show the across-trial mean.
 */
void runComparison(CaseContext &ctx,
                   const std::vector<workloads::Benchmark> &suite,
                   const Tool &guoq, const std::vector<Tool> &tools,
                   const Comparison &cmp);

/** Suite size used by the harnesses (full suite when scale >= 4). */
int suiteCap(const RunOptions &opts, int base);

/**
 * The harness suite: suiteFor(@p set) filtered to circuits with
 * enough gates to have optimization slack (tiny GHZ-scale circuits
 * only produce ties), family-diverse, capped at @p cap entries.
 */
std::vector<workloads::Benchmark>
benchSuiteFor(ir::GateSetKind set, int cap, std::size_t min_gates = 30);

struct BenchCase;

/** Run @p cases in order under @p opts; returns all recorded rows. */
std::vector<CaseResult> runCases(const std::vector<const BenchCase *> &cases,
                                 const RunOptions &opts);

/**
 * Entry point for the legacy per-figure binaries: run every case the
 * binary registered, env-configured, pretty tables to stdout.
 */
int legacyMain();

} // namespace bench
} // namespace guoq
