#include "bench/registry.h"

#include <algorithm>
#include <utility>

namespace guoq {
namespace bench {

Registry &
Registry::instance()
{
    // Function-local static: safe against static-init ordering across
    // the registrar translation units.
    static Registry registry;
    return registry;
}

void
Registry::add(BenchCase c)
{
    cases_.push_back(std::move(c));
}

namespace {

/** Exact id, or a whole leading path component ("fig12" matches
 *  "fig12/t" but not "fig120"). */
bool
exactOrComponentPrefix(const std::string &id, const std::string &f)
{
    if (id == f)
        return true;
    return id.size() > f.size() && id.compare(0, f.size(), f) == 0 &&
           id[f.size()] == '/';
}

} // namespace

std::vector<const BenchCase *>
Registry::matching(const std::vector<std::string> &filters) const
{
    // Per filter: component-aware matching first, so "fig1" selects
    // fig1 alone rather than fig10..fig15; only a filter that selects
    // nothing that way falls back to substring matching (so
    // "fidelity" still finds fig8/fidelity and fig9/fidelity).
    std::vector<bool> hit(cases_.size(), filters.empty());
    for (const std::string &f : filters) {
        bool any = false;
        for (std::size_t i = 0; i < cases_.size(); ++i)
            if (exactOrComponentPrefix(cases_[i].id, f)) {
                hit[i] = true;
                any = true;
            }
        if (any)
            continue;
        for (std::size_t i = 0; i < cases_.size(); ++i)
            if (cases_[i].id.find(f) != std::string::npos)
                hit[i] = true;
    }
    std::vector<const BenchCase *> out;
    for (std::size_t i = 0; i < cases_.size(); ++i)
        if (hit[i])
            out.push_back(&cases_[i]);
    // Registration order across translation units is link-dependent;
    // the explicit order key restores the paper's figure sequence.
    std::stable_sort(out.begin(), out.end(),
                     [](const BenchCase *a, const BenchCase *b) {
                         return a->order != b->order
                                    ? a->order < b->order
                                    : a->id < b->id;
                     });
    return out;
}

CaseRegistrar::CaseRegistrar(std::string id, std::string title, int order,
                             CaseFn fn)
{
    Registry::instance().add(
        {std::move(id), std::move(title), order, std::move(fn)});
}

} // namespace bench
} // namespace guoq
