#include "bench/emit.h"

#include <cmath>
#include <cstdio>
#include <iterator>

namespace guoq {
namespace bench {

namespace {

/** A JSON number token; non-finite becomes null (JSON has no NaN). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    return buf;
}

std::string
csvNumber(double v)
{
    // Mirror the JSON emitter's null: an empty field rather than a
    // platform-spelled "nan"/"inf" token numeric CSV readers trip on.
    if (!std::isfinite(v))
        return "";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    return buf;
}

std::string
u64(std::uint64_t v)
{
    return std::to_string(v);
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char ch : s) {
        const unsigned char c = static_cast<unsigned char>(ch);
        switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
toJson(const RunMeta &meta, const std::vector<CaseResult> &results)
{
    // Sequential appends rather than operator+ chains: GCC 12's
    // -Werror=restrict misfires on `const char * + std::string &&`.
    std::string out;
    auto str = [&out](const char *key, const std::string &v,
                      const char *indent) {
        out += indent;
        out += key;
        out += ": \"";
        out += jsonEscape(v);
        out += "\"";
    };
    auto num = [&out](const char *key, const std::string &v,
                      const char *indent) {
        out += indent;
        out += key;
        out += ": ";
        out += v;
    };
    out += "{\n";
    out += "  \"schema\": \"guoq-bench-v1\",\n";
    out += "  \"run\": {\n";
    num("\"scale\"", jsonNumber(meta.scale), "    ");
    out += ",\n";
    num("\"trials\"", std::to_string(meta.trials), "    ");
    out += ",\n";
    num("\"seed\"", u64(meta.seed), "    ");
    out += ",\n";
    num("\"threads\"", std::to_string(meta.threads), "    ");
    out += ",\n";
    out += "    \"cases\": [";
    for (std::size_t i = 0; i < meta.cases.size(); ++i) {
        if (i)
            out += ", ";
        out += "\"";
        out += jsonEscape(meta.cases[i]);
        out += "\"";
    }
    out += "]\n";
    out += "  },\n";
    out += "  \"results\": [";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const CaseResult &r = results[i];
        out += i ? ",\n    {\n" : "\n    {\n";
        str("\"case\"", r.caseId, "      ");
        out += ",\n";
        str("\"benchmark\"", r.benchmark, "      ");
        out += ",\n";
        str("\"tool\"", r.tool, "      ");
        out += ",\n";
        str("\"algorithm\"", r.algorithm, "      ");
        out += ",\n";
        str("\"metric\"", r.metric, "      ");
        out += ",\n";
        num("\"value\"", jsonNumber(r.value), "      ");
        out += ",\n";
        num("\"seconds\"", jsonNumber(r.seconds), "      ");
        out += ",\n";
        num("\"trial\"", std::to_string(r.trial), "      ");
        out += ",\n";
        num("\"seed\"", u64(r.seed), "      ");
        out += ",\n";
        out += "      \"workers\": [";
        for (std::size_t w = 0; w < r.workerSeconds.size(); ++w) {
            if (w)
                out += ", ";
            out += jsonNumber(r.workerSeconds[w]);
        }
        out += "],\n";
        num("\"synth_cache_hits\"", std::to_string(r.synthCacheHits),
            "      ");
        out += ",\n";
        num("\"synth_cache_misses\"",
            std::to_string(r.synthCacheMisses), "      ");
        out += ",\n";
        num("\"synth_cache_stores\"",
            std::to_string(r.synthCacheStores), "      ");
        out += "\n";
        out += "    }";
    }
    out += results.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

std::string
toBatchJson(const BatchRunMeta &meta,
            const std::vector<BatchFileEntry> &files)
{
    // Three-way tally: a verify_skipped file was optimized and written
    // but not checked — visible in its own counter, neither a silent
    // pass ("ok") nor a failure.
    std::size_t ok = 0, skipped = 0;
    for (const BatchFileEntry &f : files) {
        ok += f.status == "ok" ? 1 : 0;
        skipped += f.status == "verify_skipped" ? 1 : 0;
    }

    std::string out;
    auto str = [&out](const char *key, const std::string &v) {
        out += key;
        out += ": \"";
        out += jsonEscape(v);
        out += "\"";
    };
    out += "{\n";
    out += "  \"schema\": \"guoq-batch-v1\",\n";
    out += "  \"run\": {\n    ";
    str("\"input_dir\"", meta.inputDir);
    out += ",\n    ";
    str("\"output_dir\"", meta.outputDir);
    out += ",\n    ";
    str("\"gate_set\"", meta.gateSet);
    out += ",\n    ";
    str("\"objective\"", meta.objective);
    out += ",\n    ";
    str("\"algorithm\"", meta.algorithm);
    out += ",\n    \"epsilon\": " + jsonNumber(meta.epsilon);
    out += ",\n    \"time\": " + jsonNumber(meta.timeBudgetSeconds);
    out += ",\n    \"threads\": " + std::to_string(meta.threads);
    out += ",\n    \"jobs\": " + std::to_string(meta.jobs);
    out += ",\n    \"seed\": " + u64(meta.seed);
    out += ",\n    \"synth_workers\": " +
           std::to_string(meta.synthWorkers);
    out += ",\n    ";
    str("\"synth_cache\"", meta.synthCacheDir);
    out += ",\n    \"files\": " + std::to_string(files.size());
    out += ",\n    \"ok\": " + std::to_string(ok);
    out += ",\n    \"failed\": " +
           std::to_string(files.size() - ok - skipped);
    out += ",\n    \"verify_skipped\": " + std::to_string(skipped);
    out += "\n  },\n";
    out += "  \"files\": [";
    for (std::size_t i = 0; i < files.size(); ++i) {
        const BatchFileEntry &f = files[i];
        out += i ? ",\n    {\n      " : "\n    {\n      ";
        str("\"file\"", f.file);
        out += ",\n      ";
        str("\"status\"", f.status);
        out += ",\n      ";
        str("\"dialect\"", f.dialect);
        out += ",\n      ";
        str("\"algorithm\"", f.algorithm);
        if (f.status == "ok" || f.status == "verify_skipped") {
            out += ",\n      ";
            str("\"output\"", f.output);
            out += ",\n      \"qubits\": " + std::to_string(f.qubits);
            out += ",\n      \"gates_before\": " +
                   std::to_string(f.gatesBefore);
            out += ",\n      \"gates_after\": " +
                   std::to_string(f.gatesAfter);
            out += ",\n      \"twoq_before\": " +
                   std::to_string(f.twoQubitBefore);
            out += ",\n      \"twoq_after\": " +
                   std::to_string(f.twoQubitAfter);
            out += ",\n      \"error_bound\": " +
                   jsonNumber(f.errorBound);
            out += ",\n      \"synth_cache_hits\": " +
                   std::to_string(f.synthCacheHits);
            out += ",\n      \"synth_cache_misses\": " +
                   std::to_string(f.synthCacheMisses);
            out += ",\n      \"synth_cache_stores\": " +
                   std::to_string(f.synthCacheStores);
            out += ",\n      \"pool_queue_peak\": " +
                   std::to_string(f.poolQueuePeak);
            // Notes ride along (a verify_skipped entry always has
            // one explaining why the check could not run).
            if (!f.message.empty()) {
                out += ",\n      ";
                str("\"message\"", f.message);
            }
        } else {
            out += ",\n      \"line\": " + std::to_string(f.line);
            out += ",\n      \"col\": " + std::to_string(f.col);
            out += ",\n      ";
            str("\"message\"", f.message);
        }
        if (f.verified) {
            out += ",\n      \"verify\": {\n        ";
            str("\"method\"", f.verifyMethod);
            out += ",\n        \"distance\": " +
                   jsonNumber(f.verifyDistance);
            out += ",\n        \"bound\": " + jsonNumber(f.verifyBound);
            out += ",\n        \"confidence\": " +
                   jsonNumber(f.verifyConfidence);
            out += ",\n        \"shots\": " +
                   std::to_string(f.verifyShots);
            out += ",\n        ";
            str("\"verdict\"", f.verifyVerdict);
            out += "\n      }";
        }
        out += ",\n      \"seconds\": " + jsonNumber(f.seconds);
        out += "\n    }";
    }
    out += files.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

int
serveRowCode(const std::string &status)
{
    if (status == "ok" || status == "verify_skipped")
        return 0;
    if (status == "parse_error")
        return 1;
    if (status == "verify_failed")
        return 2;
    if (status == "write_error")
        return 3;
    if (status == "frame_error")
        return 4;
    return 5;
}

std::string
toServeRowJson(const BatchFileEntry &e, const std::string &qasm)
{
    std::string out;
    auto str = [&out](const char *key, const std::string &v) {
        out += ", \"";
        out += key;
        out += "\": \"";
        out += jsonEscape(v);
        out += "\"";
    };
    auto num = [&out](const char *key, const std::string &v) {
        out += ", \"";
        out += key;
        out += "\": ";
        out += v;
    };
    out += "{\"schema\": \"guoq-serve-row-v1\"";
    str("id", e.file);
    str("status", e.status);
    num("code", std::to_string(serveRowCode(e.status)));
    str("dialect", e.dialect);
    str("algorithm", e.algorithm);
    if (e.status == "ok" || e.status == "verify_skipped") {
        num("qubits", std::to_string(e.qubits));
        num("gates_before", std::to_string(e.gatesBefore));
        num("gates_after", std::to_string(e.gatesAfter));
        num("twoq_before", std::to_string(e.twoQubitBefore));
        num("twoq_after", std::to_string(e.twoQubitAfter));
        num("error_bound", jsonNumber(e.errorBound));
        num("synth_cache_hits", std::to_string(e.synthCacheHits));
        num("synth_cache_misses", std::to_string(e.synthCacheMisses));
        num("synth_cache_stores", std::to_string(e.synthCacheStores));
        num("pool_queue_peak", std::to_string(e.poolQueuePeak));
        if (!e.message.empty())
            str("message", e.message);
    } else {
        num("line", std::to_string(e.line));
        num("col", std::to_string(e.col));
        str("message", e.message);
    }
    if (e.verified) {
        out += ", \"verify\": {\"method\": \"";
        out += jsonEscape(e.verifyMethod);
        out += "\", \"distance\": " + jsonNumber(e.verifyDistance);
        out += ", \"bound\": " + jsonNumber(e.verifyBound);
        out += ", \"confidence\": " + jsonNumber(e.verifyConfidence);
        out += ", \"shots\": " + std::to_string(e.verifyShots);
        out += ", \"verdict\": \"";
        out += jsonEscape(e.verifyVerdict);
        out += "\"}";
    }
    num("seconds", jsonNumber(e.seconds));
    if (e.status == "ok" || e.status == "verify_skipped")
        str("qasm", qasm);
    out += "}";
    return out;
}

std::string
toCsv(const std::vector<CaseResult> &results)
{
    // New columns are appended LAST: the schema policy (docs/FORMATS.md)
    // promises additive evolution, and positional CSV consumers must
    // keep reading the original columns unshifted.
    std::string out = "case,benchmark,tool,metric,value,seconds,trial,"
                      "seed,workers,algorithm,synth_cache_hits,"
                      "synth_cache_misses,synth_cache_stores\n";
    for (const CaseResult &r : results) {
        std::string workers;
        for (std::size_t w = 0; w < r.workerSeconds.size(); ++w) {
            if (w)
                workers += ';';
            workers += csvNumber(r.workerSeconds[w]);
        }
        const std::string fields[] = {
            csvField(r.caseId),    csvField(r.benchmark),
            csvField(r.tool),      csvField(r.metric),
            csvNumber(r.value),    csvNumber(r.seconds),
            std::to_string(r.trial), u64(r.seed),
            csvField(workers),     csvField(r.algorithm),
            std::to_string(r.synthCacheHits),
            std::to_string(r.synthCacheMisses),
            std::to_string(r.synthCacheStores)};
        for (std::size_t f = 0; f < std::size(fields); ++f) {
            if (f)
                out += ',';
            out += fields[f];
        }
        out += '\n';
    }
    return out;
}

} // namespace bench
} // namespace guoq
