/**
 * @file
 * Dense complex matrices sized for quantum unitaries (up to ~2^10).
 *
 * The simulator, the synthesizers, and the distance computations all
 * work on small dense matrices; this class keeps the representation
 * deliberately simple (row-major std::vector) and provides only the
 * operations those clients need.
 */

#pragma once

#include <complex>
#include <cstddef>
#include <string>
#include <vector>

namespace guoq {
namespace linalg {

using Complex = std::complex<double>;

/** Row-major dense complex matrix. */
class ComplexMatrix
{
  public:
    /** An empty 0x0 matrix. */
    ComplexMatrix() = default;

    /** A zero-initialized rows x cols matrix. */
    ComplexMatrix(std::size_t rows, std::size_t cols);

    /** Build from an initializer list of rows (for literals in tests). */
    ComplexMatrix(std::initializer_list<std::initializer_list<Complex>> rows);

    /** The n x n identity. */
    static ComplexMatrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    Complex &operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    const Complex &operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Raw row-major storage (used by the simulator kernels). */
    Complex *data() { return data_.data(); }
    const Complex *data() const { return data_.data(); }

    /** Matrix product this * rhs. */
    ComplexMatrix operator*(const ComplexMatrix &rhs) const;

    /** Elementwise sum / difference. */
    ComplexMatrix operator+(const ComplexMatrix &rhs) const;
    ComplexMatrix operator-(const ComplexMatrix &rhs) const;

    /** Scalar multiple. */
    ComplexMatrix scaled(Complex s) const;

    /** Conjugate transpose. */
    ComplexMatrix dagger() const;

    /** Kronecker (tensor) product this ⊗ rhs. */
    ComplexMatrix kron(const ComplexMatrix &rhs) const;

    /** Trace (requires square). */
    Complex trace() const;

    /** Frobenius norm. */
    double frobeniusNorm() const;

    /** Largest elementwise |a_ij - b_ij|. */
    double maxAbsDiff(const ComplexMatrix &rhs) const;

    /** True when this† * this ≈ I within @p tol. */
    bool isUnitary(double tol = 1e-9) const;

    /** Multi-line human-readable dump (tests and debugging). */
    std::string toString(int prec = 3) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<Complex> data_;
};

} // namespace linalg
} // namespace guoq
