#include "linalg/decompose_1q.h"

#include <cmath>

#include "support/logging.h"

namespace guoq {
namespace linalg {

namespace {
constexpr double kPi = 3.14159265358979323846;
} // namespace

ComplexMatrix
rxMatrix(double t)
{
    const double c = std::cos(t / 2), s = std::sin(t / 2);
    return ComplexMatrix{{c, Complex(0, -s)}, {Complex(0, -s), c}};
}

ComplexMatrix
ryMatrix(double t)
{
    const double c = std::cos(t / 2), s = std::sin(t / 2);
    return ComplexMatrix{{c, -s}, {s, c}};
}

ComplexMatrix
rzMatrix(double t)
{
    return ComplexMatrix{{std::polar(1.0, -t / 2), 0},
                         {0, std::polar(1.0, t / 2)}};
}

EulerZyz
decomposeZyz(const ComplexMatrix &u)
{
    if (u.rows() != 2 || u.cols() != 2)
        support::panic("decomposeZyz requires a 2x2 matrix");

    // Pull out the global phase: U = e^{iα} V with det(V) = 1.
    const Complex det = u(0, 0) * u(1, 1) - u(0, 1) * u(1, 0);
    const double alpha = 0.5 * std::arg(det);
    const Complex inv_phase = std::polar(1.0, -alpha);
    const Complex v00 = u(0, 0) * inv_phase;
    const Complex v10 = u(1, 0) * inv_phase;
    const Complex v11 = u(1, 1) * inv_phase;

    // V = [[cos(γ/2) e^{-i(β+δ)/2}, -sin(γ/2) e^{-i(β-δ)/2}],
    //      [sin(γ/2) e^{ i(β-δ)/2},  cos(γ/2) e^{ i(β+δ)/2}]]
    const double c = std::abs(v00);
    const double s = std::abs(v10);
    const double gamma = 2.0 * std::atan2(s, c);

    EulerZyz e{alpha, 0, gamma, 0};
    if (s < 1e-12) {
        // γ ≈ 0: only β+δ is determined; put it all in δ.
        e.beta = 0;
        e.delta = 2.0 * std::arg(v11);
    } else if (c < 1e-12) {
        // γ ≈ π: only β-δ is determined; put it all in β.
        e.beta = 2.0 * std::arg(v10);
        e.delta = 0;
    } else {
        const double sum = 2.0 * std::arg(v11); // β + δ
        const double dif = 2.0 * std::arg(v10); // β - δ
        e.beta = 0.5 * (sum + dif);
        e.delta = 0.5 * (sum - dif);
    }
    return e;
}

EulerZxz
decomposeZxz(const ComplexMatrix &u)
{
    // Ry(γ) = Rz(π/2) Rx(γ) Rz(-π/2), so
    // Rz(β) Ry(γ) Rz(δ) = Rz(β + π/2) Rx(γ) Rz(δ - π/2).
    const EulerZyz z = decomposeZyz(u);
    return EulerZxz{z.alpha, z.beta + kPi / 2, z.gamma, z.delta - kPi / 2};
}

ComplexMatrix
fromZyz(const EulerZyz &e)
{
    ComplexMatrix m =
        rzMatrix(e.beta) * ryMatrix(e.gamma) * rzMatrix(e.delta);
    return m.scaled(std::polar(1.0, e.alpha));
}

} // namespace linalg
} // namespace guoq
