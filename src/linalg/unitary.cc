#include "linalg/unitary.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"

namespace guoq {
namespace linalg {

namespace {

/** |Tr(U† V)| for square same-size U, V without forming the product. */
double
absTraceUdagV(const ComplexMatrix &u, const ComplexMatrix &v)
{
    if (u.rows() != v.rows() || u.cols() != v.cols() || u.rows() != u.cols())
        support::panic("hsDistance requires equal square matrices");
    // Tr(U† V) = sum_ij conj(U_ij) V_ij
    Complex t = 0;
    const std::size_t n2 = u.rows() * u.cols();
    const Complex *ud = u.data();
    const Complex *vd = v.data();
    for (std::size_t i = 0; i < n2; ++i)
        t += std::conj(ud[i]) * vd[i];
    return std::abs(t);
}

} // namespace

double
hsDistance(const ComplexMatrix &u, const ComplexMatrix &v)
{
    const double n = static_cast<double>(u.rows());
    const double a = absTraceUdagV(u, v) / n;
    // Clamp: rounding can push 1 - a² slightly negative for equal inputs.
    return std::sqrt(std::max(0.0, 1.0 - a * a));
}

bool
approxEquivalent(const ComplexMatrix &u, const ComplexMatrix &v, double eps)
{
    return hsDistance(u, v) <= eps;
}

bool
equalUpToGlobalPhase(const ComplexMatrix &u, const ComplexMatrix &v,
                     double tol)
{
    if (u.rows() != v.rows() || u.cols() != v.cols())
        return false;
    // Find the largest-magnitude entry of u to anchor the phase.
    std::size_t best = 0;
    double bestMag = 0;
    const std::size_t n2 = u.rows() * u.cols();
    for (std::size_t i = 0; i < n2; ++i) {
        const double m = std::abs(u.data()[i]);
        if (m > bestMag) {
            bestMag = m;
            best = i;
        }
    }
    if (bestMag < tol)
        return v.frobeniusNorm() < tol;
    if (std::abs(v.data()[best]) < tol)
        return false;
    const Complex phase = v.data()[best] / u.data()[best];
    if (std::abs(std::abs(phase) - 1.0) > tol)
        return false;
    for (std::size_t i = 0; i < n2; ++i)
        if (std::abs(u.data()[i] * phase - v.data()[i]) > tol)
            return false;
    return true;
}

double
hsCost(const ComplexMatrix &u, const ComplexMatrix &v)
{
    const double n = static_cast<double>(u.rows());
    return std::max(0.0, 1.0 - absTraceUdagV(u, v) / n);
}

double
hsCostThresholdForDistance(double eps)
{
    // Δ² = 1 - a² = (1 - a)(1 + a) and cost = 1 - a with a in [0,1],
    // so cost = Δ² / (1 + a) >= Δ² / 2. Using Δ²/2 as the cost bound
    // guarantees Δ <= eps.
    return eps * eps / 2.0;
}

} // namespace linalg
} // namespace guoq
