/**
 * @file
 * Unitary-specific metrics: the Hilbert–Schmidt distance of Def. 3.2
 * and global-phase-aware equivalence (Def. 3.3 / §3 of the paper).
 */

#pragma once

#include "linalg/complex_matrix.h"

namespace guoq {
namespace linalg {

/**
 * Hilbert–Schmidt distance (paper Def. 3.2):
 *   Δ(U, U') = sqrt(1 - |Tr(U† U')|² / N²).
 *
 * Zero iff U' = e^{iφ} U; insensitive to global phase by construction.
 */
double hsDistance(const ComplexMatrix &u, const ComplexMatrix &v);

/** ε-equivalence test of Def. 3.3. */
bool approxEquivalent(const ComplexMatrix &u, const ComplexMatrix &v,
                      double eps);

/**
 * True when U' = e^{iφ} U elementwise within @p tol (a stricter test
 * than hsDistance used to validate rewrite rules exactly).
 */
bool equalUpToGlobalPhase(const ComplexMatrix &u, const ComplexMatrix &v,
                          double tol = 1e-9);

/**
 * The Hilbert–Schmidt *cost* used by the numerical synthesizers:
 *   1 - |Tr(U† V)| / N,
 * which is cheaper and better conditioned near zero than Δ² but has
 * the same minimizers. Δ ≤ sqrt(2 * cost) links thresholds.
 */
double hsCost(const ComplexMatrix &u, const ComplexMatrix &v);

/** Convert an hsCost threshold equivalent to a Δ threshold ε. */
double hsCostThresholdForDistance(double eps);

} // namespace linalg
} // namespace guoq
