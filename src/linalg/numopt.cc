#include "linalg/numopt.h"

#include <algorithm>
#include <cmath>

namespace guoq {
namespace linalg {

MinimizeResult
minimizeAdam(const GradFn &f, std::vector<double> x0,
             const MinimizeOptions &opts)
{
    const std::size_t n = x0.size();
    std::vector<double> g(n), m(n, 0.0), v(n, 0.0);
    MinimizeResult best;
    best.x = x0;
    best.value = f(x0, nullptr);

    std::vector<double> x = std::move(x0);
    const double b1 = 0.9, b2 = 0.999, epsn = 1e-8;
    double b1t = 1.0, b2t = 1.0;
    int flat = 0;
    double prev = best.value;
    // Stall detection: bail when the best value stops improving
    // meaningfully so multi-start can try a fresh initialization.
    double stall_ref = best.value;
    int stall = 0;

    for (int it = 0; it < opts.maxIters; ++it) {
        if ((it & 31) == 0 && opts.deadline.expired())
            break;
        const double fx = f(x, &g);
        if (fx < best.value) {
            best.value = fx;
            best.x = x;
        }
        best.iterations = it + 1;
        if (fx <= opts.tolerance) {
            best.converged = true;
            break;
        }
        if (best.value < stall_ref * (1.0 - 1e-3) ||
            best.value < stall_ref - 1e-9) {
            stall_ref = best.value;
            stall = 0;
        } else if (++stall > 140) {
            break;
        }
        if (std::abs(prev - fx) < 1e-14 * std::max(1.0, std::abs(fx))) {
            if (++flat > 40)
                break;
        } else {
            flat = 0;
        }
        prev = fx;

        b1t *= b1;
        b2t *= b2;
        for (std::size_t i = 0; i < n; ++i) {
            m[i] = b1 * m[i] + (1 - b1) * g[i];
            v[i] = b2 * v[i] + (1 - b2) * g[i] * g[i];
            const double mh = m[i] / (1 - b1t);
            const double vh = v[i] / (1 - b2t);
            x[i] -= opts.learningRate * mh / (std::sqrt(vh) + epsn);
        }
    }
    if (best.value <= opts.tolerance)
        best.converged = true;
    return best;
}

MinimizeResult
minimizeNelderMead(const std::function<double(const std::vector<double> &)> &f,
                   std::vector<double> x0, const MinimizeOptions &opts)
{
    const std::size_t n = x0.size();
    MinimizeResult res;
    if (n == 0) {
        res.x = x0;
        res.value = f(x0);
        res.converged = res.value <= opts.tolerance;
        return res;
    }

    // Initial simplex: x0 plus axis-aligned perturbations.
    std::vector<std::vector<double>> pts(n + 1, x0);
    std::vector<double> vals(n + 1);
    for (std::size_t i = 0; i < n; ++i)
        pts[i + 1][i] += 0.25;
    for (std::size_t i = 0; i <= n; ++i)
        vals[i] = f(pts[i]);

    const double alpha = 1.0, gamma = 2.0, rho = 0.5, sigma = 0.5;
    for (int it = 0; it < opts.maxIters; ++it) {
        if ((it & 15) == 0 && opts.deadline.expired())
            break;
        // Order simplex by value.
        std::vector<std::size_t> order(n + 1);
        for (std::size_t i = 0; i <= n; ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return vals[a] < vals[b];
                  });
        res.iterations = it + 1;
        if (vals[order[0]] <= opts.tolerance)
            break;

        // Centroid of all but worst.
        std::vector<double> cen(n, 0.0);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t d = 0; d < n; ++d)
                cen[d] += pts[order[i]][d] / static_cast<double>(n);
        const std::size_t worst = order[n];

        auto blend = [&](double t) {
            std::vector<double> p(n);
            for (std::size_t d = 0; d < n; ++d)
                p[d] = cen[d] + t * (cen[d] - pts[worst][d]);
            return p;
        };

        const auto refl = blend(alpha);
        const double frefl = f(refl);
        if (frefl < vals[order[0]]) {
            const auto expd = blend(gamma);
            const double fexpd = f(expd);
            if (fexpd < frefl) {
                pts[worst] = expd;
                vals[worst] = fexpd;
            } else {
                pts[worst] = refl;
                vals[worst] = frefl;
            }
        } else if (frefl < vals[order[n - 1]]) {
            pts[worst] = refl;
            vals[worst] = frefl;
        } else {
            const auto con = blend(-rho);
            const double fcon = f(con);
            if (fcon < vals[worst]) {
                pts[worst] = con;
                vals[worst] = fcon;
            } else {
                // Shrink toward the best point.
                for (std::size_t i = 1; i <= n; ++i) {
                    const std::size_t idx = order[i];
                    for (std::size_t d = 0; d < n; ++d)
                        pts[idx][d] = pts[order[0]][d] +
                            sigma * (pts[idx][d] - pts[order[0]][d]);
                    vals[idx] = f(pts[idx]);
                }
            }
        }
    }

    std::size_t bi = 0;
    for (std::size_t i = 1; i <= n; ++i)
        if (vals[i] < vals[bi])
            bi = i;
    res.x = pts[bi];
    res.value = vals[bi];
    res.converged = res.value <= opts.tolerance;
    return res;
}

MinimizeResult
minimizeMultiStart(const GradFn &f, std::vector<double> x0, int starts,
                   support::Rng &rng, const MinimizeOptions &opts)
{
    MinimizeResult best = minimizeAdam(f, x0, opts);
    for (int s = 1; s < starts && !best.converged; ++s) {
        if (opts.deadline.expired())
            break;
        std::vector<double> x(x0.size());
        for (auto &xi : x)
            xi = rng.uniform(-3.14159265358979323846, 3.14159265358979323846);
        MinimizeResult r = minimizeAdam(f, std::move(x), opts);
        if (r.value < best.value)
            best = std::move(r);
    }
    return best;
}

} // namespace linalg
} // namespace guoq
