#include "linalg/complex_matrix.h"

#include <cmath>
#include <sstream>

#include "support/logging.h"

namespace guoq {
namespace linalg {

ComplexMatrix::ComplexMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols)
{
}

ComplexMatrix::ComplexMatrix(
    std::initializer_list<std::initializer_list<Complex>> rows)
{
    rows_ = rows.size();
    cols_ = rows_ ? rows.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto &row : rows) {
        if (row.size() != cols_)
            support::panic("ragged initializer for ComplexMatrix");
        for (const auto &v : row)
            data_.push_back(v);
    }
}

ComplexMatrix
ComplexMatrix::identity(std::size_t n)
{
    ComplexMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

ComplexMatrix
ComplexMatrix::operator*(const ComplexMatrix &rhs) const
{
    if (cols_ != rhs.rows_)
        support::panic(support::strcat("matmul shape mismatch: ", rows_, "x",
                                       cols_, " * ", rhs.rows_, "x",
                                       rhs.cols_));
    ComplexMatrix out(rows_, rhs.cols_);
    // i-k-j loop order keeps the inner loop streaming over contiguous
    // rows of both rhs and out.
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const Complex a = (*this)(i, k);
            if (a == Complex{})
                continue;
            const Complex *rrow = rhs.data_.data() + k * rhs.cols_;
            Complex *orow = out.data_.data() + i * rhs.cols_;
            for (std::size_t j = 0; j < rhs.cols_; ++j)
                orow[j] += a * rrow[j];
        }
    }
    return out;
}

ComplexMatrix
ComplexMatrix::operator+(const ComplexMatrix &rhs) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        support::panic("matrix add shape mismatch");
    ComplexMatrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] + rhs.data_[i];
    return out;
}

ComplexMatrix
ComplexMatrix::operator-(const ComplexMatrix &rhs) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        support::panic("matrix sub shape mismatch");
    ComplexMatrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] - rhs.data_[i];
    return out;
}

ComplexMatrix
ComplexMatrix::scaled(Complex s) const
{
    ComplexMatrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] * s;
    return out;
}

ComplexMatrix
ComplexMatrix::dagger() const
{
    ComplexMatrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out(c, r) = std::conj((*this)(r, c));
    return out;
}

ComplexMatrix
ComplexMatrix::kron(const ComplexMatrix &rhs) const
{
    ComplexMatrix out(rows_ * rhs.rows_, cols_ * rhs.cols_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c) {
            const Complex a = (*this)(r, c);
            if (a == Complex{})
                continue;
            for (std::size_t rr = 0; rr < rhs.rows_; ++rr)
                for (std::size_t cc = 0; cc < rhs.cols_; ++cc)
                    out(r * rhs.rows_ + rr, c * rhs.cols_ + cc) =
                        a * rhs(rr, cc);
        }
    return out;
}

Complex
ComplexMatrix::trace() const
{
    if (rows_ != cols_)
        support::panic("trace of non-square matrix");
    Complex t = 0;
    for (std::size_t i = 0; i < rows_; ++i)
        t += (*this)(i, i);
    return t;
}

double
ComplexMatrix::frobeniusNorm() const
{
    double s = 0;
    for (const auto &v : data_)
        s += std::norm(v);
    return std::sqrt(s);
}

double
ComplexMatrix::maxAbsDiff(const ComplexMatrix &rhs) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        support::panic("maxAbsDiff shape mismatch");
    double m = 0;
    for (std::size_t i = 0; i < data_.size(); ++i)
        m = std::max(m, std::abs(data_[i] - rhs.data_[i]));
    return m;
}

bool
ComplexMatrix::isUnitary(double tol) const
{
    if (rows_ != cols_)
        return false;
    const ComplexMatrix prod = dagger() * (*this);
    return prod.maxAbsDiff(identity(rows_)) <= tol;
}

std::string
ComplexMatrix::toString(int prec) const
{
    std::ostringstream os;
    os.precision(prec);
    os << std::fixed;
    for (std::size_t r = 0; r < rows_; ++r) {
        os << "[ ";
        for (std::size_t c = 0; c < cols_; ++c) {
            const Complex v = (*this)(r, c);
            os << v.real() << (v.imag() < 0 ? "-" : "+")
               << std::abs(v.imag()) << "i ";
        }
        os << "]\n";
    }
    return os.str();
}

} // namespace linalg
} // namespace guoq
