/**
 * @file
 * Generic numerical minimizers used by circuit instantiation.
 *
 * The continuous synthesizer minimizes the Hilbert–Schmidt cost of a
 * parameterized ansatz against a target unitary. The cost is smooth in
 * the rotation angles, so first-order methods with analytic gradients
 * (Adam) converge quickly; Nelder–Mead is kept as a derivative-free
 * fallback and for tests.
 */

#pragma once

#include <functional>
#include <vector>

#include "support/rng.h"
#include "support/timer.h"

namespace guoq {
namespace linalg {

/**
 * Objective callback: returns f(x); when @p grad is non-null it must be
 * filled with ∇f(x) (same length as x).
 */
using GradFn =
    std::function<double(const std::vector<double> &, std::vector<double> *)>;

/** Options shared by the minimizers. */
struct MinimizeOptions
{
    int maxIters = 2000;
    double tolerance = 1e-12;    //!< stop when f(x) <= tolerance
    double learningRate = 0.05;  //!< Adam step size
    support::Deadline deadline;  //!< hard wall-clock stop
};

/** Result of a minimization run. */
struct MinimizeResult
{
    std::vector<double> x;
    double value = 0;
    int iterations = 0;
    bool converged = false; //!< value <= tolerance
};

/** Adam with gradient callbacks and plateau-based early stop. */
MinimizeResult minimizeAdam(const GradFn &f, std::vector<double> x0,
                            const MinimizeOptions &opts);

/** Derivative-free Nelder–Mead simplex search. */
MinimizeResult minimizeNelderMead(
    const std::function<double(const std::vector<double> &)> &f,
    std::vector<double> x0, const MinimizeOptions &opts);

/**
 * Multi-start Adam: runs Adam from @p starts random restarts in
 * [-π, π]^n plus the provided x0, returning the best result found.
 */
MinimizeResult minimizeMultiStart(const GradFn &f, std::vector<double> x0,
                                  int starts, support::Rng &rng,
                                  const MinimizeOptions &opts);

} // namespace linalg
} // namespace guoq
