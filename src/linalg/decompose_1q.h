/**
 * @file
 * Analytic single-qubit unitary decompositions.
 *
 * Any 2x2 unitary factors (up to global phase) as Euler rotations:
 *   U = e^{iα} Rz(β) Ry(γ) Rz(δ)          (ZYZ)
 *   U = e^{iα} Rz(β') Rx(γ) Rz(δ')        (ZXZ, via Y = Rz(π/2) X Rz(-π/2))
 *
 * These exact decompositions power the 1q-fusion transformation and the
 * per-gate-set basis conversions in transpile/.
 */

#pragma once

#include "linalg/complex_matrix.h"

namespace guoq {
namespace linalg {

/** Euler angles for U = e^{iα} Rz(β) Ry(γ) Rz(δ). */
struct EulerZyz
{
    double alpha; //!< global phase
    double beta;  //!< outer (leftmost) Rz angle
    double gamma; //!< middle Ry angle
    double delta; //!< inner (rightmost) Rz angle
};

/** Euler angles for U = e^{iα} Rz(β) Rx(γ) Rz(δ). */
struct EulerZxz
{
    double alpha;
    double beta;
    double gamma;
    double delta;
};

/** Decompose a 2x2 unitary into ZYZ Euler angles. */
EulerZyz decomposeZyz(const ComplexMatrix &u);

/** Decompose a 2x2 unitary into ZXZ Euler angles. */
EulerZxz decomposeZxz(const ComplexMatrix &u);

/** 2x2 rotation matrices (shared by tests and transpile). */
ComplexMatrix rxMatrix(double theta);
ComplexMatrix ryMatrix(double theta);
ComplexMatrix rzMatrix(double theta);

/** Reconstruct the unitary from ZYZ angles (for validation). */
ComplexMatrix fromZyz(const EulerZyz &e);

} // namespace linalg
} // namespace guoq
