/**
 * @file
 * Annotated locking primitives: thin wrappers over std::mutex and
 * std::condition_variable that carry the Clang thread-safety
 * capability attributes (thread_annotations.h). libstdc++'s own types
 * are unannotated, so the analysis cannot see them being locked; all
 * mutex-protected state in this codebase uses these wrappers instead,
 * and -Wthread-safety (the GUOQ_THREAD_SAFETY build) then proves every
 * GUARDED_BY field is only touched under its lock.
 *
 * Waiting convention: CondVar::wait(Mutex&) is the only wait form, and
 * call sites spell the predicate as an explicit `while (!P) wait;`
 * loop in the locked scope — not as a lambda — so the guarded reads in
 * P stay visible to the (function-local) analysis.
 */

#pragma once

#include <condition_variable>
#include <mutex>

#include "support/thread_annotations.h"

namespace guoq {
namespace support {

/** An annotated std::mutex. Prefer MutexLock over manual lock(). */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { m_.lock(); }
    void unlock() RELEASE() { m_.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

  private:
    friend class CondVar;
    std::mutex m_;
};

/** RAII lock on a Mutex (the annotated std::lock_guard). */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) ACQUIRE(m) : m_(m) { m_.lock(); }
    ~MutexLock() RELEASE() { m_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &m_;
};

/**
 * A condition variable waiting on a Mutex. wait() atomically releases
 * the mutex and reacquires it before returning, exactly like
 * std::condition_variable — the caller holds the lock across the call
 * from the analysis's point of view, which is also the truth at every
 * observable point.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Block until notified; @p m must be held (and stays held). */
    void
    wait(Mutex &m) REQUIRES(m)
    {
        // Adopt the already-held native mutex for the duration of the
        // wait, then release() the guard so ownership stays with the
        // caller's MutexLock. Lock state is unchanged at entry/exit,
        // matching the REQUIRES annotation.
        std::unique_lock<std::mutex> native(m.m_, std::adopt_lock);
        cv_.wait(native);
        native.release();
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace support
} // namespace guoq
