/**
 * @file
 * Clang thread-safety-analysis attribute wrappers, compiled to no-ops
 * everywhere else (GCC has no equivalent attributes).
 *
 * The analysis (-Wthread-safety, promoted to an error by the
 * GUOQ_THREAD_SAFETY CMake option) statically proves that every access
 * to a GUARDED_BY field happens with its mutex held, that REQUIRES
 * functions are only called under the named lock, and that ACQUIRE /
 * RELEASE functions change lock state the way they claim. It only
 * tracks types annotated as capabilities, so locking code must use
 * support::Mutex / support::MutexLock / support::CondVar (mutex.h)
 * rather than raw std::mutex — the std:: types carry no annotations
 * under libstdc++ and are invisible to the analysis.
 *
 * Conventions (see docs/CONCURRENCY.md for the subsystem inventory):
 *  - every field protected by a mutex is GUARDED_BY(that mutex);
 *  - private helpers that expect the caller to hold a lock are
 *    REQUIRES(it) instead of re-locking;
 *  - functions that must NOT be called with a lock held (they take it
 *    themselves and would self-deadlock) are EXCLUDES(it);
 *  - TS_NO_ANALYSIS is a last resort for patterns the analysis cannot
 *    follow, and each use carries a justifying comment.
 */

#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define GUOQ_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef GUOQ_THREAD_ANNOTATION
#define GUOQ_THREAD_ANNOTATION(x) // no-op outside clang
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define CAPABILITY(x) GUOQ_THREAD_ANNOTATION(capability(x))

/** Marks a RAII type that acquires in its ctor, releases in its dtor. */
#define SCOPED_CAPABILITY GUOQ_THREAD_ANNOTATION(scoped_lockable)

/** Field access requires holding the named mutex(es). */
#define GUARDED_BY(x) GUOQ_THREAD_ANNOTATION(guarded_by(x))

/** Pointee access requires holding the named mutex(es). */
#define PT_GUARDED_BY(x) GUOQ_THREAD_ANNOTATION(pt_guarded_by(x))

/** The caller must hold the named mutex(es) (exclusively). */
#define REQUIRES(...) \
    GUOQ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** The function acquires the named mutex(es) and returns holding. */
#define ACQUIRE(...) \
    GUOQ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** The function releases the named mutex(es). */
#define RELEASE(...) \
    GUOQ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** The function acquires on the given return value only. */
#define TRY_ACQUIRE(...) \
    GUOQ_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** The caller must NOT hold the named mutex(es) (anti-deadlock). */
#define EXCLUDES(...) GUOQ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Declares which capability a mutex-returning function aliases. */
#define RETURN_CAPABILITY(x) GUOQ_THREAD_ANNOTATION(lock_returned(x))

/** Asserts (at analysis time) that the capability is already held. */
#define ASSERT_CAPABILITY(x) \
    GUOQ_THREAD_ANNOTATION(assert_capability(x))

/** Opts one function out of the analysis. Use sparingly; justify. */
#define TS_NO_ANALYSIS GUOQ_THREAD_ANNOTATION(no_thread_safety_analysis)
