#include "support/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace guoq {
namespace support {

namespace {
// Relaxed is enough: the level is a filter, not a synchronization
// point — a racing setLogLevel() may lose or gain one message, never
// corrupt state.
std::atomic<LogLevel> g_level{LogLevel::Quiet};
} // namespace

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

Mutex &
logMutex()
{
    static Mutex mutex;
    return mutex;
}

void
inform(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info) {
        MutexLock lock(logMutex());
        std::fprintf(stderr, "info: %s\n", msg.c_str());
    }
}

void
debugLog(const std::string &msg)
{
    if (logLevel() >= LogLevel::Debug) {
        MutexLock lock(logMutex());
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
    }
}

void
warn(const std::string &msg)
{
    MutexLock lock(logMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

} // namespace support
} // namespace guoq
