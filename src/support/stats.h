/**
 * @file
 * Summary statistics used by the benchmark harnesses (mean, stddev,
 * 95% confidence intervals) — the quantities plotted in the paper's
 * per-benchmark scatter plots.
 */

#pragma once

#include <cstddef>
#include <vector>

namespace guoq {
namespace support {

/** Mean / stddev / 95% CI half-width over a sample of doubles. */
struct Summary
{
    std::size_t n = 0;
    double mean = 0;
    double stddev = 0;
    double ci95 = 0;   //!< half-width of the 95% confidence interval
    double minv = 0;
    double maxv = 0;
};

/** Compute a Summary of @p xs (ci95 uses the normal approximation). */
Summary summarize(const std::vector<double> &xs);

/** Three-way outcome of comparing GUOQ against a baseline. */
enum class CompareOutcome { Better, Match, Worse };

/**
 * Classify a GUOQ-vs-tool comparison with a tolerance band, matching
 * the paper's better/match/worse bar summaries. Higher is better.
 */
CompareOutcome compareMeans(double guoq, double other, double tol = 1e-9);

/** Counter triple for the bar plots under each figure. */
struct CompareCounts
{
    int better = 0;
    int match = 0;
    int worse = 0;

    void
    add(CompareOutcome o)
    {
        if (o == CompareOutcome::Better)
            ++better;
        else if (o == CompareOutcome::Match)
            ++match;
        else
            ++worse;
    }

    int total() const { return better + match + worse; }
};

} // namespace support
} // namespace guoq
