/**
 * @file
 * Wall-clock timing and deadlines for time-budgeted search.
 *
 * GUOQ and the baselines are anytime algorithms: they run until a
 * Deadline expires and return the best solution found. All search loops
 * take a Deadline rather than an iteration count so that experiment
 * budgets are expressed in the same unit the paper uses (seconds).
 */

#pragma once

#include <chrono>

namespace guoq {
namespace support {

/** Monotonic stopwatch. */
class Timer
{
  public:
    Timer() : start_(Clock::now()) {}

    /** Seconds elapsed since construction or last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    void reset() { start_ = Clock::now(); }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/** A point in time after which a search loop must stop. */
class Deadline
{
  public:
    /** A deadline that never expires. */
    Deadline() : unlimited_(true) {}

    /** A deadline @p seconds from now. */
    static Deadline
    in(double seconds)
    {
        Deadline d;
        d.unlimited_ = false;
        d.end_ = Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(seconds));
        return d;
    }

    bool
    expired() const
    {
        return !unlimited_ && Clock::now() >= end_;
    }

    /** Seconds remaining (a large value when unlimited). */
    double
    remaining() const
    {
        if (unlimited_)
            return 1e18;
        const double r =
            std::chrono::duration<double>(end_ - Clock::now()).count();
        return r > 0 ? r : 0;
    }

    /** A sub-deadline: min(this, now + seconds). */
    Deadline
    slice(double seconds) const
    {
        const double r = remaining();
        return Deadline::in(seconds < r ? seconds : r);
    }

  private:
    using Clock = std::chrono::steady_clock;
    bool unlimited_ = true;
    Clock::time_point end_{};
};

} // namespace support
} // namespace guoq
