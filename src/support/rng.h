/**
 * @file
 * Deterministic pseudo-random number generation for the optimizer.
 *
 * All randomized components (GUOQ's transformation sampling, subcircuit
 * selection, synthesis search, workload generators) draw from this one
 * generator type so that a single seed reproduces an entire run.
 */

#pragma once

#include <cstdint>
#include <random>

namespace guoq {
namespace support {

/**
 * Small, fast, seedable RNG (xoshiro256**).
 *
 * Satisfies UniformRandomBitGenerator so it can drive the standard
 * distributions, and offers convenience helpers for the common cases in
 * the optimizer loop.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed via splitmix64 state expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            // splitmix64 step: guarantees a well-mixed nonzero state
            // even for small consecutive seeds.
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    std::size_t
    index(std::size_t n)
    {
        // Lemire-style rejection-free bounded draw is overkill here;
        // modulo bias is negligible for n << 2^64.
        return static_cast<std::size_t>((*this)() % n);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Bernoulli trial with success probability p. */
    bool chance(double p) { return uniform() < p; }

    /** Fork a child generator (for parallel/async subtasks). */
    Rng
    fork()
    {
        return Rng((*this)() ^ 0xd1b54a32d192ed03ull);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace support
} // namespace guoq
