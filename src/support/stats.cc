#include "support/stats.h"

#include <algorithm>
#include <cmath>

namespace guoq {
namespace support {

Summary
summarize(const std::vector<double> &xs)
{
    Summary s;
    s.n = xs.size();
    if (xs.empty())
        return s;
    double sum = 0;
    s.minv = xs[0];
    s.maxv = xs[0];
    for (double x : xs) {
        sum += x;
        s.minv = std::min(s.minv, x);
        s.maxv = std::max(s.maxv, x);
    }
    s.mean = sum / static_cast<double>(s.n);
    double ss = 0;
    for (double x : xs)
        ss += (x - s.mean) * (x - s.mean);
    if (s.n > 1) {
        s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
        // Normal-approximation 95% CI half-width; adequate for the
        // small trial counts used in the harnesses.
        s.ci95 = 1.96 * s.stddev / std::sqrt(static_cast<double>(s.n));
    }
    return s;
}

CompareOutcome
compareMeans(double guoq, double other, double tol)
{
    if (guoq > other + tol)
        return CompareOutcome::Better;
    if (guoq < other - tol)
        return CompareOutcome::Worse;
    return CompareOutcome::Match;
}

} // namespace support
} // namespace guoq
