#include "support/table.h"

#include <cstdio>
#include <sstream>

#include "support/logging.h"

namespace guoq {
namespace support {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic(strcat("TextTable row has ", cells.size(), " cells, want ",
                     headers_.size()));
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size())
                os << std::string(widths[c] - cells[c].size() + 2, ' ');
        }
        os << '\n';
    };
    emit(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
fmt(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
fmtPct(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", prec, v * 100.0);
    return buf;
}

} // namespace support
} // namespace guoq
