/**
 * @file
 * Fixed-width text tables for the benchmark harness output. Each bench
 * binary prints the rows of the paper table/figure it regenerates.
 */

#pragma once

#include <string>
#include <vector>

namespace guoq {
namespace support {

/** Column-aligned text table with a header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Render with column alignment and a separator under the header. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p prec digits after the point. */
std::string fmt(double v, int prec = 3);

/** Format a percentage (0.283 -> "28.3%"). */
std::string fmtPct(double v, int prec = 1);

} // namespace support
} // namespace guoq
