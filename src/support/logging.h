/**
 * @file
 * Minimal logging and error-reporting helpers (gem5-style fatal/panic).
 */

#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace guoq {
namespace support {

/** Verbosity levels for inform(). */
enum class LogLevel { Quiet, Info, Debug };

/** Global log level; benches lower it, tests keep it quiet. */
LogLevel logLevel();
void setLogLevel(LogLevel level);

/**
 * The process-wide mutex serializing human-readable stderr status
 * output. warn()/inform() take it internally; drivers that print
 * their own per-item status lines from concurrent workers (the
 * batch/serve pipelines' progress output) must hold it for each whole
 * line so output can never interleave mid-line.
 */
std::mutex &logMutex();

/** Print an informational message when level permits. */
void inform(const std::string &msg);
void debugLog(const std::string &msg);

/** Warn about suspicious-but-survivable conditions. */
void warn(const std::string &msg);

/**
 * Abort due to an internal invariant violation (a bug in this library).
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Exit due to a user error (bad arguments, malformed input file).
 */
[[noreturn]] void fatal(const std::string &msg);

/** Build a message from streamable parts. */
template <typename... Args>
std::string
strcat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace support
} // namespace guoq
