/**
 * @file
 * Minimal logging and error-reporting helpers (gem5-style fatal/panic).
 */

#pragma once

#include <sstream>
#include <string>

namespace guoq {
namespace support {

/** Verbosity levels for inform(). */
enum class LogLevel { Quiet, Info, Debug };

/** Global log level; benches lower it, tests keep it quiet. */
LogLevel logLevel();
void setLogLevel(LogLevel level);

/** Print an informational message when level permits. */
void inform(const std::string &msg);
void debugLog(const std::string &msg);

/** Warn about suspicious-but-survivable conditions. */
void warn(const std::string &msg);

/**
 * Abort due to an internal invariant violation (a bug in this library).
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Exit due to a user error (bad arguments, malformed input file).
 */
[[noreturn]] void fatal(const std::string &msg);

/** Build a message from streamable parts. */
template <typename... Args>
std::string
strcat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace support
} // namespace guoq
