/**
 * @file
 * Minimal logging and error-reporting helpers (gem5-style fatal/panic).
 */

#pragma once

#include <sstream>
#include <string>

#include "support/mutex.h"

namespace guoq {
namespace support {

/** Verbosity levels for inform(). */
enum class LogLevel { Quiet, Info, Debug };

/** Global log level; benches lower it, tests keep it quiet. The
 *  getter/setter pair is atomic, so a driver may lower the level while
 *  worker threads log (the batch/serve pipelines do). */
LogLevel logLevel();
void setLogLevel(LogLevel level);

/**
 * The process-wide mutex serializing human-readable stderr status
 * output. warn()/inform() take it internally (so they must not be
 * called with it held — the EXCLUDES annotations enforce that);
 * drivers that print their own per-item status lines from concurrent
 * workers (the batch/serve pipelines' progress output) must hold it
 * for each whole line so output can never interleave mid-line.
 */
Mutex &logMutex();

/** Print an informational message when level permits. */
void inform(const std::string &msg) EXCLUDES(logMutex());
void debugLog(const std::string &msg) EXCLUDES(logMutex());

/** Warn about suspicious-but-survivable conditions. */
void warn(const std::string &msg) EXCLUDES(logMutex());

/**
 * Abort due to an internal invariant violation (a bug in this library).
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Exit due to a user error (bad arguments, malformed input file).
 */
[[noreturn]] void fatal(const std::string &msg);

/** Build a message from streamable parts. */
template <typename... Args>
std::string
strcat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace support
} // namespace guoq
