#include "support/options.h"

#include <cstdint>
#include <cstdlib>

namespace guoq {
namespace support {

double
envDouble(const std::string &name, double fallback)
{
    const char *v = std::getenv(name.c_str());
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    const double x = std::strtod(v, &end);
    return end && *end == '\0' ? x : fallback;
}

int
envInt(const std::string &name, int fallback)
{
    const char *v = std::getenv(name.c_str());
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    const long x = std::strtol(v, &end, 10);
    return end && *end == '\0' ? static_cast<int>(x) : fallback;
}

double
benchScale()
{
    // Clamp: GUOQ_BENCH_SCALE=0 (or negative, or garbage parsed as 0)
    // must not zero out every search budget downstream — a zero-second
    // deadline makes each optimizer return its input and every harness
    // silently reports 0% reduction. 1e-3 keeps "as tiny as possible"
    // runs meaningful (milliseconds-scale budgets) while staying
    // usable for smoke tests.
    constexpr double kMinScale = 1e-3;
    constexpr double kMaxScale = 1e6;
    const double scale = envDouble("GUOQ_BENCH_SCALE", 1.0);
    // !(>=) instead of (<) so NaN also falls into the clamp; the upper
    // bound keeps "inf" from producing deadlines that overflow the
    // steady-clock duration conversion.
    if (!(scale >= kMinScale))
        return kMinScale;
    return scale > kMaxScale ? kMaxScale : scale;
}

int
benchTrials()
{
    // Same guard as benchScale(): zero trials would make every
    // experiment cell silently empty. Default 1 so the default runner
    // cost matches the legacy single-run harness binaries.
    const int trials = envInt("GUOQ_BENCH_TRIALS", 1);
    return trials < 1 ? 1 : trials;
}

std::uint64_t
benchSeed()
{
    return static_cast<std::uint64_t>(envInt("GUOQ_BENCH_SEED", 12345));
}

int
benchThreads()
{
    const int threads = envInt("GUOQ_BENCH_THREADS", 1);
    if (threads < 1)
        return 1;
    return threads > 1024 ? 1024 : threads;
}

} // namespace support
} // namespace guoq
