#include "support/options.h"

#include <cstdint>
#include <cstdlib>

namespace guoq {
namespace support {

double
envDouble(const std::string &name, double fallback)
{
    const char *v = std::getenv(name.c_str());
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    const double x = std::strtod(v, &end);
    return end && *end == '\0' ? x : fallback;
}

int
envInt(const std::string &name, int fallback)
{
    const char *v = std::getenv(name.c_str());
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    const long x = std::strtol(v, &end, 10);
    return end && *end == '\0' ? static_cast<int>(x) : fallback;
}

double
benchScale()
{
    return envDouble("GUOQ_BENCH_SCALE", 1.0);
}

int
benchTrials()
{
    return envInt("GUOQ_BENCH_TRIALS", 3);
}

std::uint64_t
benchSeed()
{
    return static_cast<std::uint64_t>(envInt("GUOQ_BENCH_SEED", 12345));
}

} // namespace support
} // namespace guoq
