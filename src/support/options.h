/**
 * @file
 * Environment-variable options for the benchmark harnesses.
 *
 * The paper gives every tool 1 hour per circuit; that is impractical in
 * CI, so the harnesses read a global scale factor and per-run budgets
 * from the environment:
 *
 *   GUOQ_BENCH_SCALE    multiply all search budgets (default 1.0)
 *   GUOQ_BENCH_TRIALS   trials per (circuit, tool) pair (default 1)
 *   GUOQ_BENCH_SEED     base RNG seed (default 12345)
 *   GUOQ_BENCH_THREADS  portfolio workers per GUOQ call (default 1)
 */

#pragma once

#include <string>

namespace guoq {
namespace support {

/** Read env var @p name as double, or @p fallback when unset/bad. */
double envDouble(const std::string &name, double fallback);

/** Read env var @p name as int, or @p fallback when unset/bad. */
int envInt(const std::string &name, int fallback);

/**
 * Global benchmark scale factor (GUOQ_BENCH_SCALE), clamped to a small
 * positive minimum so a zero/negative scale cannot zero out every
 * search budget.
 */
double benchScale();

/** Trials per experiment cell (GUOQ_BENCH_TRIALS), clamped to >= 1. */
int benchTrials();

/** Base seed for the harnesses (GUOQ_BENCH_SEED). */
std::uint64_t benchSeed();

/**
 * Portfolio worker threads per GUOQ invocation in the harnesses
 * (GUOQ_BENCH_THREADS), clamped to [1, 1024]. 1 (the default) keeps
 * every GUOQ run bit-for-bit identical to a serial core::optimize().
 */
int benchThreads();

} // namespace support
} // namespace guoq
