/**
 * @file
 * The transpiler: lower any circuit into one of the five target gate
 * sets of Table 2, exactly (modulo global phase). This is how the
 * benchmark suite produces per-gate-set inputs ("the input circuit is
 * always already decomposed into the target gate set", paper §6) and
 * how resynthesis results are re-expressed natively.
 */

#pragma once

#include "ir/circuit.h"
#include "ir/gate_set.h"

namespace guoq {
namespace transpile {

/**
 * Lower @p c into the native gates of @p set.
 *
 * The pipeline expands ≥2-qubit non-CX gates into {CX + 1q}, converts
 * the entangler (CX → Rxx for IonQ), and re-expresses every non-native
 * 1q gate in the set's native 1q basis. For Clifford+T the circuit
 * must be exactly representable (rotation angles at π/4 multiples);
 * otherwise the transpiler calls fatal() rather than approximating.
 */
ir::Circuit toGateSet(const ir::Circuit &c, ir::GateSetKind set);

/** True when every gate of @p c is native to @p set. */
bool allNative(const ir::Circuit &c, ir::GateSetKind set);

/**
 * Fuse maximal runs of adjacent 1-qubit gates on each wire into the
 * minimal native 1q form for @p set (via the run's 2x2 product and the
 * set's Euler decomposition). Runs whose fused form is no shorter are
 * left untouched. Not applicable to Clifford+T (returns the input).
 *
 * This is the "1q fusion" transformation GUOQ uses alongside rewrite
 * rules: exact (ε = 0) and cheap, but — unlike a pattern rule — able
 * to collapse arbitrarily long 1q runs.
 */
ir::Circuit fuseOneQubitRuns(const ir::Circuit &c, ir::GateSetKind set);

} // namespace transpile
} // namespace guoq
