#include "transpile/to_gate_set.h"

#include <cmath>

#include "transpile/decompose.h"
#include "support/logging.h"

namespace guoq {
namespace transpile {

namespace {

using ir::Gate;
using ir::GateKind;

/** Emit @p gate re-expressed in the native 1q basis of @p set. */
void
emitOneQubit(ir::Circuit *out, const Gate &gate, ir::GateSetKind set)
{
    if (ir::isNative(set, gate.kind)) {
        out->add(gate);
        return;
    }
    if (set == ir::GateSetKind::CliffordT) {
        for (Gate &g : oneQubitCliffordT(gate))
            out->add(std::move(g));
        return;
    }
    for (Gate &g : oneQubitToNative(gate.matrix(), gate.qubits[0], set))
        out->add(std::move(g));
}

} // namespace

ir::Circuit
toGateSet(const ir::Circuit &c, ir::GateSetKind set)
{
    const ir::Circuit cx_based = expandToCxBasis(c);
    ir::Circuit out(c.numQubits());
    for (const Gate &gate : cx_based.gates()) {
        if (gate.arity() == 2) {
            // expandToCxBasis leaves only CX at arity 2.
            if (set == ir::GateSetKind::IonQ) {
                for (Gate &g : cxViaRxx(gate.qubits[0], gate.qubits[1]))
                    out.add(std::move(g));
            } else {
                out.add(gate);
            }
        } else {
            emitOneQubit(&out, gate, set);
        }
    }
    return out;
}

bool
allNative(const ir::Circuit &c, ir::GateSetKind set)
{
    for (const Gate &g : c.gates())
        if (!ir::isNative(set, g.kind))
            return false;
    return true;
}

ir::Circuit
fuseOneQubitRuns(const ir::Circuit &c, ir::GateSetKind set)
{
    if (set == ir::GateSetKind::CliffordT)
        return c; // finite basis: no continuous Euler form to fuse into

    ir::Circuit out(c.numQubits());
    // Pending run of 1q gates per wire, in time order.
    std::vector<std::vector<Gate>> runs(
        static_cast<std::size_t>(c.numQubits()));

    auto flush = [&out, set](std::vector<Gate> &run) {
        if (run.empty())
            return;
        if (run.size() == 1) {
            out.add(run[0]);
            run.clear();
            return;
        }
        // Product in time order: later gates multiply on the left.
        linalg::ComplexMatrix u = run[0].matrix();
        for (std::size_t i = 1; i < run.size(); ++i)
            u = run[i].matrix() * u;
        std::vector<Gate> fused =
            oneQubitToNative(u, run[0].qubits[0], set);
        const std::vector<Gate> &shorter =
            fused.size() < run.size() ? fused : run;
        for (const Gate &g : shorter)
            out.add(g);
        run.clear();
    };

    for (const Gate &g : c.gates()) {
        if (g.arity() == 1 && ir::isNative(set, g.kind)) {
            runs[static_cast<std::size_t>(g.qubits[0])].push_back(g);
        } else {
            for (int q : g.qubits)
                flush(runs[static_cast<std::size_t>(q)]);
            out.add(g);
        }
    }
    for (auto &run : runs)
        flush(run);
    return out;
}

} // namespace transpile
} // namespace guoq
