#include "transpile/decompose.h"

#include <cmath>

#include "linalg/decompose_1q.h"
#include "linalg/unitary.h"
#include "support/logging.h"

namespace guoq {
namespace transpile {

namespace {

using ir::Gate;
using ir::GateKind;

/** Append Rz(angle) unless the angle is ~0 mod 2π. */
void
pushRz(std::vector<Gate> *out, double angle, int qubit)
{
    const double a = ir::normalizeAngle(angle);
    if (!ir::isZeroAngle(a, 1e-12))
        out->emplace_back(GateKind::Rz, std::vector<int>{qubit},
                          std::vector<double>{a});
}

} // namespace

std::vector<Gate>
ccxDecomposition(int a, int b, int target)
{
    // The standard 6-CX / 7-T Toffoli network (Nielsen & Chuang §4.3).
    std::vector<Gate> out;
    auto cx = [&out](int c, int t) {
        out.emplace_back(GateKind::CX, std::vector<int>{c, t});
    };
    auto one = [&out](GateKind k, int q) {
        out.emplace_back(k, std::vector<int>{q});
    };
    one(GateKind::H, target);
    cx(b, target);
    one(GateKind::Tdg, target);
    cx(a, target);
    one(GateKind::T, target);
    cx(b, target);
    one(GateKind::Tdg, target);
    cx(a, target);
    one(GateKind::T, b);
    one(GateKind::T, target);
    one(GateKind::H, target);
    cx(a, b);
    one(GateKind::T, a);
    one(GateKind::Tdg, b);
    cx(a, b);
    return out;
}

std::vector<Gate>
cxViaRxx(int control, int target)
{
    // CX = (Ry(-π/2) Rx(-π/2) ⊗ Rx(-π/2)) XX(π/2) (Ry(π/2) ⊗ I) up to
    // global phase — the native IonQ realization (gates in time order).
    std::vector<Gate> out;
    out.emplace_back(GateKind::Ry, std::vector<int>{control},
                     std::vector<double>{M_PI / 2});
    out.emplace_back(GateKind::Rxx, std::vector<int>{control, target},
                     std::vector<double>{M_PI / 2});
    out.emplace_back(GateKind::Rx, std::vector<int>{control},
                     std::vector<double>{-M_PI / 2});
    out.emplace_back(GateKind::Rx, std::vector<int>{target},
                     std::vector<double>{-M_PI / 2});
    out.emplace_back(GateKind::Ry, std::vector<int>{control},
                     std::vector<double>{-M_PI / 2});
    return out;
}

std::vector<Gate>
rxxViaCx(double theta, int a, int b)
{
    // exp(-iθ/2 X⊗X) = (H⊗H) exp(-iθ/2 Z⊗Z) (H⊗H) and the ZZ rotation
    // is CX · (I ⊗ Rz(θ)) · CX. Exact, including global phase.
    std::vector<Gate> out;
    out.emplace_back(GateKind::H, std::vector<int>{a});
    out.emplace_back(GateKind::H, std::vector<int>{b});
    out.emplace_back(GateKind::CX, std::vector<int>{a, b});
    out.emplace_back(GateKind::Rz, std::vector<int>{b},
                     std::vector<double>{theta});
    out.emplace_back(GateKind::CX, std::vector<int>{a, b});
    out.emplace_back(GateKind::H, std::vector<int>{a});
    out.emplace_back(GateKind::H, std::vector<int>{b});
    return out;
}

ir::Circuit
expandToCxBasis(const ir::Circuit &c)
{
    ir::Circuit out(c.numQubits());
    for (const Gate &gate : c.gates()) {
        switch (gate.kind) {
          case GateKind::CZ:
            out.h(gate.qubits[1]);
            out.cx(gate.qubits[0], gate.qubits[1]);
            out.h(gate.qubits[1]);
            break;
          case GateKind::Swap:
            out.cx(gate.qubits[0], gate.qubits[1]);
            out.cx(gate.qubits[1], gate.qubits[0]);
            out.cx(gate.qubits[0], gate.qubits[1]);
            break;
          case GateKind::CP: {
            // diag(1,1,1,e^{iλ}) via phase pushes around two CXs.
            const double lam = gate.params[0];
            out.u1(lam / 2, gate.qubits[0]);
            out.cx(gate.qubits[0], gate.qubits[1]);
            out.u1(-lam / 2, gate.qubits[1]);
            out.cx(gate.qubits[0], gate.qubits[1]);
            out.u1(lam / 2, gate.qubits[1]);
            break;
          }
          case GateKind::Rxx:
            for (Gate &g :
                 rxxViaCx(gate.params[0], gate.qubits[0], gate.qubits[1]))
                out.add(std::move(g));
            break;
          case GateKind::CCX:
            for (Gate &g : ccxDecomposition(gate.qubits[0], gate.qubits[1],
                                            gate.qubits[2]))
                out.add(std::move(g));
            break;
          case GateKind::CCZ:
            out.h(gate.qubits[2]);
            for (Gate &g : ccxDecomposition(gate.qubits[0], gate.qubits[1],
                                            gate.qubits[2]))
                out.add(std::move(g));
            out.h(gate.qubits[2]);
            break;
          default:
            out.add(gate);
            break;
        }
    }
    return out;
}

std::vector<Gate>
oneQubitToNative(const linalg::ComplexMatrix &u, int qubit,
                 ir::GateSetKind set)
{
    if (u.rows() != 2 || u.cols() != 2)
        support::panic("oneQubitToNative: matrix is not 2x2");

    const linalg::EulerZyz e = linalg::decomposeZyz(u);
    std::vector<Gate> out;

    // Single-gate dictionary: when the unitary is (mod phase) one of
    // the set's fixed native 1q gates, emit exactly that gate instead
    // of a full Euler chain.
    for (GateKind kind : ir::nativeGates(set)) {
        if (ir::gateArity(kind) != 1 || ir::isParameterized(kind))
            continue;
        if (linalg::equalUpToGlobalPhase(
                ir::gateMatrix(kind, {}), u, 1e-10)) {
            out.emplace_back(kind, std::vector<int>{qubit});
            return out;
        }
    }
    // X-axis rotations for sets with native Rx: ZYZ form
    // Rx(θ) = Rz(-π/2) Ry(θ) Rz(π/2).
    if (ir::isNative(set, GateKind::Rx) &&
        std::abs(ir::normalizeAngle(e.beta + M_PI / 2)) <= 1e-10 &&
        std::abs(ir::normalizeAngle(e.delta - M_PI / 2)) <= 1e-10) {
        out.emplace_back(GateKind::Rx, std::vector<int>{qubit},
                         std::vector<double>{e.gamma});
        return out;
    }

    // Diagonal case: the whole unitary is a single Rz.
    if (ir::isZeroAngle(ir::normalizeAngle(e.gamma), 1e-12)) {
        switch (set) {
          case ir::GateSetKind::Ibmq20:
            if (!ir::isZeroAngle(ir::normalizeAngle(e.beta + e.delta)))
                out.emplace_back(
                    GateKind::U1, std::vector<int>{qubit},
                    std::vector<double>{
                        ir::normalizeAngle(e.beta + e.delta)});
            return out;
          default:
            pushRz(&out, e.beta + e.delta, qubit);
            return out;
        }
    }

    switch (set) {
      case ir::GateSetKind::Ibmq20:
        // U3(θ,φ,λ) ∝ Rz(φ) Ry(θ) Rz(λ); θ = π/2 is exactly a U2.
        if (std::abs(ir::normalizeAngle(e.gamma - M_PI / 2)) <= 1e-12) {
            out.emplace_back(GateKind::U2, std::vector<int>{qubit},
                             std::vector<double>{e.beta, e.delta});
        } else {
            out.emplace_back(GateKind::U3, std::vector<int>{qubit},
                             std::vector<double>{e.gamma, e.beta, e.delta});
        }
        return out;
      case ir::GateSetKind::IbmEagle: {
        // U3(θ,φ,λ) ∝ Rz(φ+π) SX Rz(θ+π) SX Rz(λ) — the Qiskit
        // ZSXZSXZ form (gates emitted in time order, inner Rz first).
        pushRz(&out, e.delta, qubit);
        out.emplace_back(GateKind::SX, std::vector<int>{qubit});
        pushRz(&out, e.gamma + M_PI, qubit);
        out.emplace_back(GateKind::SX, std::vector<int>{qubit});
        pushRz(&out, e.beta + M_PI, qubit);
        return out;
      }
      case ir::GateSetKind::IonQ:
        pushRz(&out, e.delta, qubit);
        out.emplace_back(GateKind::Ry, std::vector<int>{qubit},
                         std::vector<double>{e.gamma});
        pushRz(&out, e.beta, qubit);
        return out;
      case ir::GateSetKind::Nam: {
        // ZXZ with Rx(γ) = H Rz(γ) H.
        const linalg::EulerZxz x = linalg::decomposeZxz(u);
        pushRz(&out, x.delta, qubit);
        out.emplace_back(GateKind::H, std::vector<int>{qubit});
        pushRz(&out, x.gamma, qubit);
        out.emplace_back(GateKind::H, std::vector<int>{qubit});
        pushRz(&out, x.beta, qubit);
        return out;
      }
      case ir::GateSetKind::CliffordT:
        support::panic("oneQubitToNative: Clifford+T is finite; use "
                       "oneQubitCliffordT");
    }
    support::panic("oneQubitToNative: unknown gate set");
}

bool
isPiOver4Multiple(double angle, double tol)
{
    const double k = angle / (M_PI / 4);
    return std::abs(k - std::round(k)) * (M_PI / 4) <= tol;
}

std::vector<Gate>
rzToCliffordT(double angle, int qubit)
{
    if (!isPiOver4Multiple(angle))
        support::fatal(support::strcat(
            "rzToCliffordT: angle ", angle,
            " is not a multiple of pi/4; exact Clifford+T expansion "
            "impossible (this library does not approximate rotations)"));
    int k = static_cast<int>(std::llround(angle / (M_PI / 4))) % 8;
    if (k < 0)
        k += 8;
    std::vector<Gate> out;
    auto one = [&out, qubit](GateKind kind) {
        out.emplace_back(kind, std::vector<int>{qubit});
    };
    switch (k) {
      case 0: break;
      case 1: one(GateKind::T); break;
      case 2: one(GateKind::S); break;
      case 3: one(GateKind::S); one(GateKind::T); break;
      case 4: one(GateKind::S); one(GateKind::S); break;
      case 5: one(GateKind::Sdg); one(GateKind::Tdg); break;
      case 6: one(GateKind::Sdg); break;
      case 7: one(GateKind::Tdg); break;
      default: support::panic("rzToCliffordT: unreachable");
    }
    return out;
}

std::vector<Gate>
oneQubitCliffordT(const ir::Gate &gate)
{
    const int q = gate.qubits[0];
    std::vector<Gate> out;
    auto one = [&out, q](GateKind kind) {
        out.emplace_back(kind, std::vector<int>{q});
    };
    auto extend = [&out](std::vector<Gate> gs) {
        for (Gate &g : gs)
            out.push_back(std::move(g));
    };
    switch (gate.kind) {
      case GateKind::Z:
        one(GateKind::S);
        one(GateKind::S);
        return out;
      case GateKind::Y:
        // Y ∝ X·Z: apply Z then X (time order Z, X).
        one(GateKind::S);
        one(GateKind::S);
        one(GateKind::X);
        return out;
      case GateKind::SX:
        // SX ∝ Rx(π/2) = H Rz(π/2) H ∝ H S H.
        one(GateKind::H);
        one(GateKind::S);
        one(GateKind::H);
        return out;
      case GateKind::SXdg:
        one(GateKind::H);
        one(GateKind::Sdg);
        one(GateKind::H);
        return out;
      case GateKind::Rz:
      case GateKind::U1:
        return rzToCliffordT(gate.params[0], q);
      case GateKind::Rx:
        one(GateKind::H);
        extend(rzToCliffordT(gate.params[0], q));
        one(GateKind::H);
        return out;
      case GateKind::Ry:
        // Ry(θ) = S Rx(θ) S† (matrix order): time order S†, Rx, S.
        one(GateKind::Sdg);
        one(GateKind::H);
        extend(rzToCliffordT(gate.params[0], q));
        one(GateKind::H);
        one(GateKind::S);
        return out;
      case GateKind::U2:
      case GateKind::U3: {
        // U3(θ,φ,λ) ∝ Rz(φ) Ry(θ) Rz(λ): representable when all three
        // angles are π/4 multiples.
        const double theta =
            gate.kind == GateKind::U2 ? M_PI / 2 : gate.params[0];
        const double phi =
            gate.kind == GateKind::U2 ? gate.params[0] : gate.params[1];
        const double lam =
            gate.kind == GateKind::U2 ? gate.params[1] : gate.params[2];
        extend(rzToCliffordT(lam, q));
        extend(oneQubitCliffordT(
            Gate(GateKind::Ry, {q}, {theta})));
        extend(rzToCliffordT(phi, q));
        return out;
      }
      default:
        support::fatal(support::strcat(
            "oneQubitCliffordT: no exact Clifford+T expansion for ",
            ir::gateName(gate.kind)));
    }
}

} // namespace transpile
} // namespace guoq
