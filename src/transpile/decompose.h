/**
 * @file
 * Elementary decompositions used by the transpiler: multi-qubit gate
 * expansions into {CX + 1q}, entangler basis changes (CX ↔ Rxx), and
 * single-qubit re-expression in each gate set's native 1q basis.
 *
 * Every decomposition is exact modulo global phase and is validated
 * against the unitary simulator by the test suite.
 */

#pragma once

#include <vector>

#include "ir/circuit.h"
#include "ir/gate_set.h"
#include "linalg/complex_matrix.h"

namespace guoq {
namespace transpile {

/**
 * Expand every gate of arity ≥ 2 that is not CX into {CX + 1q} gates
 * (CCX/CCZ use the standard 6-CX Clifford+T network; Swap is 3 CX; CZ
 * and CP use Hadamard/phase conjugation; Rxx uses the H-CX-Rz-CX-H
 * form). 1-qubit gates pass through untouched.
 */
ir::Circuit expandToCxBasis(const ir::Circuit &c);

/** The standard 6-CX, 7-T Toffoli network on (a, b, target). */
std::vector<ir::Gate> ccxDecomposition(int a, int b, int target);

/** CX(control, target) in the IonQ basis: Ry/Rx locals around Rxx(π/2). */
std::vector<ir::Gate> cxViaRxx(int control, int target);

/** Rxx(θ) on (a, b) in the CX basis: (H⊗H) CX Rz(θ) CX (H⊗H). */
std::vector<ir::Gate> rxxViaCx(double theta, int a, int b);

/**
 * Re-express an arbitrary 1-qubit unitary on @p qubit in the native 1q
 * basis of @p set:
 *   ibmq20      one U3,
 *   ibm-eagle   Rz SX Rz SX Rz (the ZSXZSXZ form),
 *   ionq        Rz Ry Rz (ZYZ Euler),
 *   nam         Rz H Rz H Rz (ZXZ with Rx = H Rz H).
 * Zero-angle rotations are omitted. Clifford+T is finite — use
 * rzToCliffordT / oneQubitCliffordT instead.
 */
std::vector<ir::Gate> oneQubitToNative(const linalg::ComplexMatrix &u,
                                       int qubit, ir::GateSetKind set);

/**
 * True when @p angle is an integer multiple of π/4 (within @p tol),
 * i.e. exactly representable with {T, S, Z} phase gates.
 */
bool isPiOver4Multiple(double angle, double tol = 1e-9);

/**
 * Rz(angle) as a minimal {T, T†, S, S†} sequence (angle must satisfy
 * isPiOver4Multiple; fatal() otherwise — this library does not
 * approximate single rotations à la gridsynth).
 */
std::vector<ir::Gate> rzToCliffordT(double angle, int qubit);

/**
 * A non-native 1q gate in the Clifford+T basis when an exact expansion
 * exists (Z, Y, SX, SXdg, Rz/U1 at π/4 multiples, Rx at π/4 multiples
 * via H conjugation); fatal() when the gate is not exactly
 * representable.
 */
std::vector<ir::Gate> oneQubitCliffordT(const ir::Gate &gate);

} // namespace transpile
} // namespace guoq
