/**
 * @file
 * The guoq_lint rule engine: repo-specific static checks the compiler
 * cannot express, run over `src/ tools/ bench/` by the guoq_lint tool
 * (registered in CTest and run in CI) and unit-tested against the
 * fixtures in tests/lint_fixtures/.
 *
 * Rules (each applies to a path scope; see ruleCatalog()):
 *  - thread-seam:   `std::thread` / `.detach()` only inside the
 *                   approved concurrency seams (core/portfolio,
 *                   synth/pool, serve/, verify/sampling,
 *                   bench/harness). Everything else must go through
 *                   those seams, so the TSan tier and the annotation
 *                   inventory in docs/CONCURRENCY.md stay exhaustive.
 *  - serve-fatal:   no `fatal()` / `abort()` in library code on the
 *                   --serve worker path (src/serve, src/synth,
 *                   src/verify): a bad request must become an error
 *                   row, never process death. (The path into core is
 *                   guarded by Optimizer::checkRequest; core and the
 *                   front ends keep their legacy fatal() diagnostics
 *                   for direct CLI use.)
 *  - determinism:   no `std::rand` / `srand` / `time(nullptr)` /
 *                   `std::random_device` anywhere in src/ — all
 *                   randomness flows from seeded support::Rng streams
 *                   so fixed-seed runs stay bit-for-bit reproducible.
 *  - allocation:    no naked `new T[...]` / `malloc` family in src/;
 *                   containers or std::make_unique own every buffer.
 *  - docs:          every OptimizerRegistry / CheckerRegistry /
 *                   bench-case registration string must appear in
 *                   docs/FORMATS.md or docs/ARCHITECTURE.md, so the
 *                   user-facing name catalog cannot drift from code.
 *
 * Matching runs on comment-stripped text (string/char literals are
 * additionally blanked for the token rules, so a rule name mentioned
 * in a diagnostic message never trips the rule itself).
 */

#pragma once

#include <string>
#include <vector>

namespace guoq {
namespace lint {

/** One rule violation, located for file:line diagnostics. */
struct Finding
{
    std::string file; //!< repo-relative path (forward slashes)
    int line = 0;     //!< 1-based
    std::string rule;
    std::string message;
};

/** One rule's name and one-line purpose, for --list-rules. */
struct RuleInfo
{
    std::string name;
    std::string summary;
};

/** The rules in the order they run. */
const std::vector<RuleInfo> &ruleCatalog();

/**
 * Blank comment bodies with spaces (newlines kept, so line numbers
 * survive). With @p blank_literals also blanks the contents of
 * string/char literals (including raw strings). Quote characters
 * themselves are kept so the text stays visibly literal-shaped.
 */
std::string stripForLint(const std::string &src, bool blank_literals);

/**
 * Run the token rules (thread-seam, serve-fatal, determinism,
 * allocation) over one file's @p content. @p relPath is the
 * repo-relative path (forward slashes) and decides which rules apply.
 */
std::vector<Finding> lintFileContent(const std::string &relPath,
                                     const std::string &content);

/**
 * Registration strings declared in @p content: bench CaseRegistrar
 * ids, OptimizerInfo names (info_.name assignments and the literal
 * passed to make_unique<...Optimizer>(...)), and CheckerInfo names.
 */
std::vector<std::string> registrationNames(const std::string &content);

/** The docs rule for one file against the concatenated docs text. */
std::vector<Finding> lintRegistrations(const std::string &relPath,
                                       const std::string &content,
                                       const std::string &docsText);

/**
 * Run every rule over `src/ tools/ bench/` under @p repoRoot (the
 * docs rule reads docs/FORMATS.md and docs/ARCHITECTURE.md). Returns
 * findings sorted by (file, line). An unreadable tree reports through
 * @p err (when non-null) and yields a synthetic finding, so a broken
 * checkout can never pass as clean.
 */
std::vector<Finding> lintTree(const std::string &repoRoot,
                              std::string *err = nullptr);

} // namespace lint
} // namespace guoq
