/** @file The guoq_lint rule engine. */

#include "lint/lint.h"

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace guoq {
namespace lint {

namespace {

namespace fs = std::filesystem;

/** 1-based line of byte offset @p pos in @p text. */
int
lineOf(const std::string &text, std::size_t pos)
{
    return 1 + static_cast<int>(
                   std::count(text.begin(), text.begin() +
                              static_cast<std::ptrdiff_t>(pos), '\n'));
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

/** One token rule: regexes that may not appear in the scoped paths. */
struct TokenRule
{
    const char *name;
    const char *message;
    std::vector<std::string> patterns;
    std::vector<std::string> scopes; //!< path prefixes the rule covers
    std::vector<std::string> exempt; //!< prefixes excused within scope
};

const std::vector<TokenRule> &
tokenRules()
{
    static const std::vector<TokenRule> kRules = {
        {"thread-seam",
         "thread creation outside the approved concurrency seams "
         "(core/portfolio, synth/pool, serve/, verify/sampling, "
         "bench/harness); route the work through one of those",
         {R"(std::j?thread\b)", R"((\.|->)\s*detach\s*\()"},
         {"src/", "tools/", "bench/"},
         {"src/core/portfolio", "src/synth/pool", "src/serve/",
          "src/verify/sampling", "src/bench/harness"}},
        {"serve-fatal",
         "fatal()/abort() in library code on the --serve worker path; "
         "return an error status so a bad request becomes an error "
         "row, not process death",
         {R"(\bfatal\s*\()", R"(\babort\s*\()"},
         {"src/serve/", "src/synth/", "src/verify/"},
         {}},
        {"determinism",
         "wall-clock or global-state randomness in deterministic "
         "library code; draw from a seeded support::Rng stream",
         {R"(\bstd::rand\b)", R"(\bsrand\s*\()",
          R"(\brandom_device\b)",
          R"(\btime\s*\(\s*(nullptr|NULL|0)\s*\))"},
         {"src/"},
         {}},
        {"allocation",
         "naked array new/malloc-family allocation; use a container "
         "or std::make_unique so ownership is explicit",
         {R"(\bmalloc\s*\()", R"(\bcalloc\s*\()", R"(\brealloc\s*\()",
          R"(\bnew\s+[A-Za-z_][A-Za-z0-9_:<>,\s]*\[)"},
         {"src/"},
         {}},
    };
    return kRules;
}

bool
inScope(const TokenRule &rule, const std::string &relPath)
{
    bool scoped = false;
    for (const std::string &s : rule.scopes)
        if (startsWith(relPath, s))
            scoped = true;
    if (!scoped)
        return false;
    for (const std::string &e : rule.exempt)
        if (startsWith(relPath, e))
            return false;
    return true;
}

/**
 * The string literal starting at or after @p pos (whitespace skipped).
 * Returns true and fills @p out / @p lit_pos only when the next
 * non-space character opens a plain `"` literal.
 */
bool
nextLiteral(const std::string &s, std::size_t pos, std::string *out,
            std::size_t *lit_pos)
{
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos])))
        ++pos;
    if (pos >= s.size() || s[pos] != '"')
        return false;
    *lit_pos = pos;
    std::string v;
    for (++pos; pos < s.size() && s[pos] != '"'; ++pos) {
        if (s[pos] == '\\' && pos + 1 < s.size())
            ++pos;
        v += s[pos];
    }
    *out = v;
    return true;
}

/** A registration string and where it was declared. */
struct Registration
{
    std::string name;
    int line = 0;
};

std::vector<Registration>
extractRegistrations(const std::string &content)
{
    // Comment-stripped, literals kept: the names live in literals.
    const std::string text = stripForLint(content, false);
    std::vector<Registration> out;

    const auto collectAfter = [&](const std::regex &re) {
        for (std::sregex_iterator it(text.begin(), text.end(), re), end;
             it != end; ++it) {
            std::string name;
            std::size_t lit_pos = 0;
            if (nextLiteral(text,
                            static_cast<std::size_t>(it->position()) +
                                static_cast<std::size_t>(it->length()),
                            &name, &lit_pos) &&
                !name.empty())
                out.push_back({name, lineOf(text, lit_pos)});
        }
    };

    // bench: static CaseRegistrar kFoo("case/id", ...).
    collectAfter(std::regex(R"(CaseRegistrar\s+\w+\s*\()"));
    // verify: static const CheckerInfo kInfo{"name", ...}.
    collectAfter(std::regex(R"(CheckerInfo\s+\w+\s*\{)"));
    // optimizers registered with an inline name argument:
    // r.add(std::make_unique<SomeOptimizer>("name", ...)).
    collectAfter(std::regex(R"(make_unique<\s*\w*Optimizer\s*>\s*\()"));
    // optimizers that set their own fixed name: info_.name = "name".
    const std::regex assign(R"(info_\s*\.\s*name\s*=\s*)");
    collectAfter(assign);

    return out;
}

} // namespace

const std::vector<RuleInfo> &
ruleCatalog()
{
    static const std::vector<RuleInfo> kCatalog = {
        {"thread-seam", "std::thread/detach only in approved seams"},
        {"serve-fatal",
         "no fatal()/abort() on the --serve worker path"},
        {"determinism",
         "no rand/time/random_device in deterministic src/"},
        {"allocation", "no naked new[]/malloc in src/"},
        {"docs",
         "every registration string documented in FORMATS.md or "
         "ARCHITECTURE.md"},
    };
    return kCatalog;
}

std::string
stripForLint(const std::string &src, bool blank_literals)
{
    std::string out = src;
    enum class S { Code, Line, Block, Str, Chr, Raw };
    S state = S::Code;
    std::string raw_delim; // the )delim" closer for a raw string
    for (std::size_t i = 0; i < src.size(); ++i) {
        const char c = src[i];
        const char n = i + 1 < src.size() ? src[i + 1] : '\0';
        switch (state) {
        case S::Code:
            if (c == '/' && n == '/') {
                state = S::Line;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == '/' && n == '*') {
                state = S::Block;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == 'R' && n == '"' &&
                       (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                       src[i - 1])) &&
                                   src[i - 1] != '_'))) {
                // R"delim( ... )delim"
                std::size_t p = i + 2;
                std::string d;
                while (p < src.size() && src[p] != '(')
                    d += src[p++];
                raw_delim = ")" + d + "\"";
                state = S::Raw;
                i = p; // skip past the opening '('
            } else if (c == '"') {
                state = S::Str;
            } else if (c == '\'' &&
                       (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                       src[i - 1])) &&
                                   src[i - 1] != '_'))) {
                // apostrophes inside identifiers are digit separators
                state = S::Chr;
            }
            break;
        case S::Line:
            if (c == '\n')
                state = S::Code;
            else
                out[i] = ' ';
            break;
        case S::Block:
            if (c == '*' && n == '/') {
                out[i] = out[i + 1] = ' ';
                ++i;
                state = S::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        case S::Str:
            if (c == '\\' && n != '\0') {
                if (blank_literals)
                    out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == '"') {
                state = S::Code;
            } else if (blank_literals && c != '\n') {
                out[i] = ' ';
            }
            break;
        case S::Chr:
            if (c == '\\' && n != '\0') {
                if (blank_literals)
                    out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == '\'') {
                state = S::Code;
            } else if (blank_literals && c != '\n') {
                out[i] = ' ';
            }
            break;
        case S::Raw:
            if (c == raw_delim[0] &&
                src.compare(i, raw_delim.size(), raw_delim) == 0) {
                i += raw_delim.size() - 1;
                state = S::Code;
            } else if (blank_literals && c != '\n') {
                out[i] = ' ';
            }
            break;
        }
    }
    return out;
}

std::vector<Finding>
lintFileContent(const std::string &relPath, const std::string &content)
{
    std::vector<Finding> findings;
    const std::string text = stripForLint(content, true);

    for (const TokenRule &rule : tokenRules()) {
        if (!inScope(rule, relPath))
            continue;
        for (const std::string &pattern : rule.patterns) {
            const std::regex re(pattern);
            for (std::sregex_iterator it(text.begin(), text.end(), re),
                 end;
                 it != end; ++it)
                findings.push_back(
                    {relPath, lineOf(text,
                                     static_cast<std::size_t>(
                                         it->position())),
                     rule.name, rule.message});
        }
    }
    return findings;
}

std::vector<std::string>
registrationNames(const std::string &content)
{
    std::vector<std::string> out;
    for (const Registration &r : extractRegistrations(content))
        out.push_back(r.name);
    return out;
}

std::vector<Finding>
lintRegistrations(const std::string &relPath, const std::string &content,
                  const std::string &docsText)
{
    std::vector<Finding> findings;
    for (const Registration &r : extractRegistrations(content))
        if (docsText.find(r.name) == std::string::npos)
            findings.push_back(
                {relPath, r.line, "docs",
                 "registration string \"" + r.name +
                     "\" is not documented in docs/FORMATS.md or "
                     "docs/ARCHITECTURE.md"});
    return findings;
}

std::vector<Finding>
lintTree(const std::string &repoRoot, std::string *err)
{
    std::vector<Finding> findings;
    const fs::path root(repoRoot);

    const auto slurp = [](const fs::path &p, std::string *out) {
        std::ifstream in(p);
        if (!in)
            return false;
        std::ostringstream buf;
        buf << in.rdbuf();
        *out = buf.str();
        return true;
    };

    std::string docsText;
    for (const char *doc : {"docs/FORMATS.md", "docs/ARCHITECTURE.md"}) {
        std::string text;
        if (!slurp(root / doc, &text)) {
            const std::string msg =
                std::string("cannot read ") + doc +
                " (needed for the docs cross-check)";
            if (err != nullptr)
                *err = msg;
            findings.push_back({doc, 0, "docs", msg});
            return findings;
        }
        docsText += text;
        docsText += '\n';
    }

    std::vector<fs::path> files;
    for (const char *top : {"src", "tools", "bench"}) {
        std::error_code ec;
        fs::recursive_directory_iterator it(root / top, ec);
        if (ec) {
            const std::string msg = std::string("cannot scan ") + top +
                                    "/: " + ec.message();
            if (err != nullptr)
                *err = msg;
            findings.push_back({top, 0, "scan", msg});
            return findings;
        }
        for (; it != fs::recursive_directory_iterator(); ++it) {
            const fs::path &p = it->path();
            if (it->is_regular_file() &&
                (p.extension() == ".cc" || p.extension() == ".h"))
                files.push_back(p);
        }
    }
    std::sort(files.begin(), files.end());

    for (const fs::path &p : files) {
        std::string content;
        if (!slurp(p, &content)) {
            findings.push_back(
                {p.lexically_relative(root).generic_string(), 0, "scan",
                 "cannot read file"});
            continue;
        }
        const std::string rel =
            p.lexically_relative(root).generic_string();
        std::vector<Finding> f = lintFileContent(rel, content);
        std::vector<Finding> d =
            lintRegistrations(rel, content, docsText);
        findings.insert(findings.end(), f.begin(), f.end());
        findings.insert(findings.end(), d.begin(), d.end());
    }

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return findings;
}

} // namespace lint
} // namespace guoq
