/**
 * @file
 * The `guoq-serve-v1` request framing `guoq_cli --serve` reads from
 * its input stream (the full wire contract lives in docs/FORMATS.md).
 *
 * One frame is a line-oriented envelope around a raw QASM payload:
 *
 *   request <id> [seed=<u64>] [deadline-ms=<ms>]\n
 *   payload <nbytes>\n
 *   <exactly nbytes bytes of OpenQASM 2.0/3.x>\n
 *   end\n
 *
 * The reader never aborts and never wedges on bad input: a malformed
 * header, an oversized payload, truncated payload bytes, garbage
 * between frames, or EOF mid-frame each come back as one located
 * FrameError, after which the reader resynchronizes at the next
 * `request` header line and keeps serving. That per-frame error is the
 * server's error row; the process stays up.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace guoq {
namespace serve {

/** One parsed `guoq-serve-v1` request frame. */
struct Frame
{
    std::string id;      //!< client-chosen token, echoed on the row
    std::string payload; //!< raw QASM source
    std::uint64_t seed = 0; //!< valid iff hasSeed
    bool hasSeed = false;   //!< frame overrides the server's --seed
    double deadlineMs = 0;  //!< valid iff hasDeadline
    bool hasDeadline = false; //!< frame overrides --deadline-ms
    int line = 0;        //!< 1-based input line of the `request` header
};

/** A located framing failure (one error row's worth of context). */
struct FrameError
{
    int line = 0;        //!< 1-based input line the failure was seen on
    std::string id;      //!< request id when the header parsed, else ""
    std::string message;
};

/**
 * Incremental frame parser over an input stream. Tracks 1-based line
 * numbers for located errors and resynchronizes after failures.
 */
class FrameReader
{
  public:
    /** Frames whose `payload <nbytes>` exceeds this are refused (the
     *  bytes are skipped, the stream stays in sync). 8 MiB holds any
     *  plausible QASM circuit while bounding a bad frame's memory. */
    static constexpr std::size_t kDefaultMaxPayload = 8u << 20;

    explicit FrameReader(std::istream &in,
                         std::size_t maxPayload = kDefaultMaxPayload);

    /** Outcome of one next() call. */
    enum class Status
    {
        Frame, //!< @p frame holds a complete request
        Error, //!< @p error holds a located failure; keep calling
        Eof,   //!< input exhausted cleanly
    };

    /**
     * Parse the next frame. On Error the reader has already skipped to
     * the next `request` header (or EOF), so the caller can loop on
     * next() until Eof without ever stalling on bad input.
     */
    Status next(Frame &frame, FrameError &error);

    /** Lines consumed so far (diagnostic). */
    int line() const { return lineNo_; }

  private:
    bool getLine(std::string &out);
    Status fail(FrameError &error, int line, const std::string &id,
                const std::string &message);

    std::istream &in_;
    std::size_t maxPayload_;
    int lineNo_ = 0;        //!< lines fully consumed
    bool havePending_ = false;
    std::string pending_;   //!< a `request` header found during resync
    int pendingLine_ = 0;
};

/**
 * Serialize @p frame in the exact format FrameReader parses (byte
 * count from payload.size(); a missing trailing newline is added
 * before the `end` line, which the reader tolerates). The test
 * harness and clients both build streams with this.
 */
void writeFrame(std::ostream &out, const Frame &frame);

} // namespace serve
} // namespace guoq
