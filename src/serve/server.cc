#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "qasm/parser.h"
#include "qasm/printer.h"
#include "serve/pipeline.h"
#include "support/logging.h"

namespace guoq {
namespace serve {

namespace {

namespace fs = std::filesystem;

double
secondsSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** The dialect results are emitted in for an input parsed as @p in. */
qasm::Dialect
outputDialect(const Config &cfg, qasm::Dialect in)
{
    return cfg.outDialect == qasm::Dialect::Auto ? in : cfg.outDialect;
}

/** An error entry for a framing failure: located on the serve input
 *  stream (entry.line is the input line, col has no meaning). */
bench::BatchFileEntry
frameErrorEntry(const FrameError &err, const Config &cfg)
{
    bench::BatchFileEntry e;
    e.file = err.id;
    e.status = "frame_error";
    e.algorithm = cfg.algorithm;
    e.line = err.line;
    e.col = 0;
    e.message = err.message;
    return e;
}

/** One response row, ready for the writer thread. */
struct Row
{
    std::string json;
    bool ok = false;      //!< code 0
    std::string id;       //!< progress-line context
    std::string status;
    double seconds = 0;
};

Row
rowFor(const bench::BatchFileEntry &entry, const std::string &qasm)
{
    Row row;
    row.json = bench::toServeRowJson(entry, qasm);
    row.ok = bench::serveRowCode(entry.status) == 0;
    row.id = entry.file;
    row.status = entry.status;
    row.seconds = entry.seconds;
    return row;
}

// --- batch-mode directory walking (moved from tools/guoq_cli.cc so
// --- both drivers share one pipeline) --------------------------------

/** Canonical form for containment tests: resolves `.`/`..`, relative
 *  spellings, and symlinked prefixes where they exist. */
fs::path
canonicalish(const fs::path &p)
{
    std::error_code ec;
    fs::path c = fs::weakly_canonical(p, ec);
    return ec ? p.lexically_normal() : c;
}

/** True when @p p lives under the directory whose *canonicalized*
 *  form is @p canonRoot. */
bool
isUnder(const fs::path &p, const fs::path &canonRoot)
{
    const fs::path rel = canonicalish(p).lexically_relative(canonRoot);
    return !rel.empty() && rel.native() != ".." && *rel.begin() != "..";
}

} // namespace

Outcome
processSource(const std::string &id, const std::string &source,
              const Config &cfg, const std::uint64_t *seedOverride,
              const double *deadlineMsOverride)
{
    const auto t0 = std::chrono::steady_clock::now();
    Outcome o;
    bench::BatchFileEntry &e = o.entry;
    e.file = id;
    e.algorithm = cfg.algorithm;

    qasm::ParseResult pr = qasm::parseSource(source, cfg.inDialect, id);
    e.dialect = qasm::dialectName(pr.dialect);
    if (!pr.ok) {
        e.status = "parse_error";
        e.line = pr.error.line;
        e.col = pr.error.col;
        e.message = pr.error.message;
        e.seconds = secondsSince(t0);
        return o;
    }

    const ir::Circuit &input = pr.circuit;
    o.dialect = pr.dialect;
    e.qubits = input.numQubits();
    e.gatesBefore = input.size();
    e.twoQubitBefore = input.twoQubitGateCount();

    core::OptimizeRequest req = cfg.base;
    if (seedOverride)
        req.seed = *seedOverride;
    // Per-request observation: the server-wide shutdown token (so a
    // drain cancels in-flight searches cooperatively) plus this
    // request's own deadline, both riding the observer-hook path every
    // search loop already polls.
    req.hooks = core::ObserverHooks();
    req.hooks.cancel = cfg.shutdown;
    const double deadlineMs =
        deadlineMsOverride ? *deadlineMsOverride : cfg.deadlineMs;
    if (deadlineMs > 0)
        req.hooks.setDeadlineIn(deadlineMs / 1000.0);

    const core::OptimizeReport result = cfg.optimizer->run(input, req);
    e.gatesAfter = result.circuit.size();
    e.twoQubitAfter = result.circuit.twoQubitGateCount();
    e.errorBound = result.errorBound;
    e.synthCacheHits = result.stats.synthCacheHits;
    e.synthCacheMisses = result.stats.synthCacheMisses;
    e.synthCacheStores = result.stats.synthCacheStores;
    e.poolQueuePeak = result.stats.poolQueuePeak;
    // An anytime search cut short by its deadline still returns its
    // best-so-far circuit — a valid, verified result — so the row
    // stays ok-shaped; the note keeps the truncation visible.
    if (deadlineMs > 0 && req.hooks.deadlineExpired())
        e.message = support::strcat("deadline of ", deadlineMs,
                                    " ms expired; best-so-far result");

    bool verify_skipped = false;
    if (cfg.verify) {
        verify::VerifyRequest vreq = cfg.verifyBase;
        vreq.seed = req.seed;
        const std::string err =
            cfg.checker->checkRequest(input, result.circuit, vreq);
        if (!err.empty()) {
            verify_skipped = true;
            e.message = "verify skipped: " + err;
        } else {
            const verify::VerifyReport vr =
                cfg.checker->run(input, result.circuit, vreq);
            e.verified = true;
            e.verifyMethod = vr.method;
            e.verifyDistance = vr.distanceEstimate;
            e.verifyBound = vr.bound;
            e.verifyConfidence = vr.confidence;
            e.verifyShots = vr.shots;
            e.verifyVerdict = verify::verdictName(vr.verdict);
            if (vr.verdict == verify::Verdict::Inequivalent) {
                e.status = "verify_failed";
                e.message = support::strcat(
                    "verification failed: HS distance ",
                    vr.distanceEstimate, " (", vr.method, ", bound ",
                    vr.bound, ") exceeds budget ", cfg.base.epsilonTotal);
                e.seconds = secondsSince(t0);
                return o;
            }
        }
    }

    e.status = verify_skipped ? "verify_skipped" : "ok";
    o.haveCircuit = true;
    o.circuit = result.circuit;
    e.seconds = secondsSince(t0);
    return o;
}

ServeStats
runServe(std::istream &in, std::ostream &out, const Config &cfg)
{
    // One work item: a parsed frame, or a framing failure that only
    // needs its error row emitted.
    struct Item
    {
        Frame frame;
        bench::BatchFileEntry preError;
        bool bad = false;
    };

    ServeStats stats;
    Credits credits(cfg.capacity);
    BoundedQueue<Item> workQ(cfg.capacity);
    BoundedQueue<Row> writeQ(cfg.capacity);

    std::thread writer([&] {
        Row row;
        while (writeQ.pop(row)) {
            if (out) {
                out << row.json << '\n';
                out.flush();
            }
            if (!out)
                stats.outputOk = false;
            ++stats.rows;
            stats.okRows += row.ok ? 1 : 0;
            if (!cfg.quiet) {
                support::MutexLock lock(support::logMutex());
                std::fprintf(stderr,
                             "guoq_cli: [%zu] %s: %s (%.2fs)\n",
                             stats.rows, row.id.c_str(),
                             row.status.c_str(), row.seconds);
            }
            credits.release();
        }
    });

    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(cfg.jobs));
    for (int j = 0; j < cfg.jobs; ++j)
        workers.emplace_back([&] {
            Item item;
            while (workQ.pop(item)) {
                Row row;
                if (item.bad) {
                    row = rowFor(item.preError, "");
                } else {
                    const Frame &f = item.frame;
                    const Outcome o = processSource(
                        f.id, f.payload, cfg,
                        f.hasSeed ? &f.seed : nullptr,
                        f.hasDeadline ? &f.deadlineMs : nullptr);
                    row = rowFor(
                        o.entry,
                        o.haveCircuit
                            ? qasm::toQasm(o.circuit,
                                           outputDialect(cfg, o.dialect))
                            : "");
                }
                writeQ.push(std::move(row));
            }
        });

    // The calling thread is the reader: admission is credit-gated, so
    // when cfg.capacity requests are in flight this blocks *before*
    // consuming more input — backpressure the client can feel.
    FrameReader reader(in, cfg.maxPayload);
    const auto shutdownRequested = [&cfg] {
        return cfg.shutdown &&
               cfg.shutdown->load(std::memory_order_relaxed);
    };
    while (!shutdownRequested()) {
        credits.acquire();
        Item item;
        FrameError err;
        const FrameReader::Status st = reader.next(item.frame, err);
        if (st == FrameReader::Status::Eof) {
            credits.release();
            break;
        }
        if (st == FrameReader::Status::Error) {
            item.bad = true;
            item.preError = frameErrorEntry(err, cfg);
            ++stats.frameErrors;
        } else {
            ++stats.frames;
        }
        workQ.push(std::move(item));
    }

    // Drain-on-EOF/shutdown: stop admitting, let workers finish every
    // queued item, then let the writer flush every finished row.
    workQ.close();
    for (std::thread &w : workers)
        w.join();
    writeQ.close();
    writer.join();
    stats.peakInFlight = credits.peak();
    return stats;
}

BatchResult
runBatch(const std::string &rootDir, const std::string &outDir,
         const Config &cfg)
{
    const fs::path root(rootDir);
    const fs::path outRoot(outDir);
    const fs::path outCanon = canonicalish(outRoot);

    BatchResult result;
    Credits credits(cfg.capacity);
    BoundedQueue<fs::path> workQ(cfg.capacity);
    BoundedQueue<bench::BatchFileEntry> doneQ(cfg.capacity);

    // The collector is the batch pipeline's "writer": it owns the
    // entries vector and the per-file progress lines (one thread, one
    // line at a time, under the process-wide log mutex — concurrent
    // jobs can no longer interleave mid-line), and returns each
    // file's credit once its entry is recorded.
    std::thread collector([&] {
        bench::BatchFileEntry e;
        std::size_t done = 0;
        while (doneQ.pop(e)) {
            ++done;
            if (!cfg.quiet) {
                support::MutexLock lock(support::logMutex());
                if (e.status == "ok")
                    std::fprintf(stderr,
                                 "guoq_cli: [%zu] %s: ok (%zu -> %zu "
                                 "gates, %.2fs)\n",
                                 done, e.file.c_str(), e.gatesBefore,
                                 e.gatesAfter, e.seconds);
                else
                    std::fprintf(stderr,
                                 "guoq_cli: [%zu] %s: %s (%s)\n", done,
                                 e.file.c_str(), e.status.c_str(),
                                 e.message.c_str());
            }
            result.entries.push_back(std::move(e));
            credits.release();
        }
    });

    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(cfg.jobs));
    for (int j = 0; j < cfg.jobs; ++j)
        workers.emplace_back([&] {
            fs::path in;
            while (workQ.pop(in)) {
                const auto t0 = std::chrono::steady_clock::now();
                const fs::path rel = in.lexically_relative(root);
                const std::string id = rel.generic_string();

                std::ifstream src(in);
                bench::BatchFileEntry e;
                Outcome o;
                if (!src) {
                    // Mirror qasm::parseSourceFile's unreadable-file
                    // diagnostic (no position applies).
                    e.file = id;
                    e.status = "parse_error";
                    e.dialect = qasm::dialectName(
                        cfg.inDialect == qasm::Dialect::Auto
                            ? qasm::Dialect::Qasm2
                            : cfg.inDialect);
                    e.algorithm = cfg.algorithm;
                    e.message = "cannot open file";
                } else {
                    std::ostringstream buf;
                    buf << src.rdbuf();
                    o = processSource(id, buf.str(), cfg);
                    e = o.entry;
                }

                if (o.haveCircuit) {
                    const fs::path outPath = outRoot / rel;
                    std::error_code ec;
                    fs::create_directories(outPath.parent_path(), ec);
                    std::ofstream dst(outPath);
                    if (dst) {
                        dst << qasm::toQasm(
                            o.circuit, outputDialect(cfg, o.dialect));
                        // close() forces the flush so a full disk
                        // surfaces here, not in the destructor where
                        // the failure would be invisible.
                        dst.close();
                    }
                    if (!dst) {
                        e.status = "write_error";
                        e.message =
                            "cannot write " + outPath.generic_string();
                        e.output.clear();
                    } else {
                        e.output = outPath.generic_string();
                    }
                }
                e.seconds = secondsSince(t0);
                doneQ.push(std::move(e));
            }
        });

    // The calling thread is the reader — a directory walker feeding
    // files into the pipeline as it finds them. The output tree is
    // excluded so a nested --out-dir (or a rerun over the same
    // directory) does not re-optimize its own results; the
    // non-throwing iterator overloads keep a directory vanishing
    // mid-scan a reported failure, never an uncaught exception.
    std::error_code ec;
    auto it = fs::recursive_directory_iterator(
        root, fs::directory_options::skip_permission_denied, ec);
    while (!ec && it != fs::recursive_directory_iterator()) {
        std::error_code entry_ec;
        if (it->is_directory(entry_ec) && isUnder(it->path(), outCanon)) {
            it.disable_recursion_pending();
        } else if (!entry_ec && it->is_regular_file(entry_ec) &&
                   !entry_ec && it->path().extension() == ".qasm" &&
                   !isUnder(it->path(), outCanon)) {
            credits.acquire();
            workQ.push(it->path());
        }
        it.increment(ec);
    }
    if (ec) {
        result.scanOk = false;
        result.scanError = ec.message();
    }

    workQ.close();
    for (std::thread &w : workers)
        w.join();
    doneQ.close();
    collector.join();
    result.peakInFlight = credits.peak();

    // Completion order is nondeterministic with --jobs > 1; the
    // summary contract (docs/FORMATS.md) is one entry per file sorted
    // by path.
    std::sort(result.entries.begin(), result.entries.end(),
              [](const bench::BatchFileEntry &a,
                 const bench::BatchFileEntry &b) {
                  return a.file < b.file;
              });
    return result;
}

} // namespace serve
} // namespace guoq
