/**
 * @file
 * The streaming service tier behind `guoq_cli --serve` and the
 * pipeline `--batch` rides on: one reader → optimizer workers →
 * writer shape for both modes.
 *
 * Serve mode frames `guoq-serve-v1` requests off an input stream
 * (serve/framing.h), optimizes each through the core::Optimizer
 * registry (and so through the shared synth::SynthService cache the
 * process keeps warm across requests), and streams one
 * `guoq-serve-row-v1` JSON line per request as it finishes. Batch
 * mode runs the identical pipeline with "reader = directory walker":
 * files enter the flow as they are discovered instead of after a
 * load-everything-first pass, workers write the mirrored output tree,
 * and the writer collects the `guoq-batch-v1` entries.
 *
 * In-flight work is bounded by credit-based backpressure
 * (serve/pipeline.h): the reader takes one credit per admitted
 * request and blocks when none are left, the writer returns the
 * credit once the request's row has left the pipeline, so at most
 * Config::capacity requests exist anywhere between admission and
 * emission. Shutdown is a drain: on input EOF (or the shutdown
 * token — the CLI's SIGTERM/SIGINT path) the reader stops admitting,
 * every admitted request still produces exactly one row, and the
 * threads join in reader → workers → writer order. Per-request
 * deadlines ride the PR 4 observer hooks (ObserverHooks::deadline),
 * so an expired deadline stops the search cooperatively and the row
 * carries the best-so-far result with a note.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "bench/emit.h"
#include "core/observer.h"
#include "core/optimizer.h"
#include "ir/circuit.h"
#include "ir/gate_set.h"
#include "qasm/dialect.h"
#include "serve/framing.h"
#include "verify/checker.h"

namespace guoq {
namespace serve {

/** Everything both pipeline modes need, resolved and validated by the
 *  driver (optimizer/checker come from their registries; the base
 *  request must already have passed Optimizer::checkRequest). */
struct Config
{
    ir::GateSetKind set = ir::GateSetKind::Nam;
    qasm::Dialect inDialect = qasm::Dialect::Auto;
    qasm::Dialect outDialect = qasm::Dialect::Auto; //!< Auto = input's
    std::string algorithm = "guoq"; //!< registry name (stamped on rows)
    const core::Optimizer *optimizer = nullptr; //!< resolved, non-null

    /** Circuit-independent request template. Per-request copies get
     *  their own seed/hooks; `base.hooks` itself is ignored. */
    core::OptimizeRequest base;

    bool verify = false;
    const verify::EquivalenceChecker *checker = nullptr; //!< iff verify
    verify::VerifyRequest verifyBase;

    int jobs = 1;              //!< optimizer worker threads
    std::size_t capacity = 64; //!< credit cap: max requests in flight
    double deadlineMs = 0;     //!< default per-request deadline (0 =
                               //!< none; frames may override)
    std::size_t maxPayload = FrameReader::kDefaultMaxPayload;
    bool quiet = true;         //!< suppress stderr progress lines

    /** Optional external shutdown switch (the CLI's signal path).
     *  When set, admission stops and in-flight requests are cancelled
     *  cooperatively — but still produce their rows. */
    core::CancelToken shutdown;
};

/** One request processed end to end (parse → optimize → verify). */
struct Outcome
{
    bench::BatchFileEntry entry;
    bool haveCircuit = false; //!< circuit/dialect below are valid
    ir::Circuit circuit;      //!< the optimized result
    qasm::Dialect dialect = qasm::Dialect::Qasm2; //!< input's dialect
};

/**
 * The shared per-request worker body: parse @p source (labelled @p id
 * in diagnostics), optimize through cfg.optimizer, verify when asked.
 * Never throws or aborts — every failure mode is a status in the
 * entry. @p seedOverride / @p deadlineMsOverride are the frame's
 * per-request settings (null = the config's).
 */
Outcome processSource(const std::string &id, const std::string &source,
                      const Config &cfg,
                      const std::uint64_t *seedOverride = nullptr,
                      const double *deadlineMsOverride = nullptr);

/** What a serve run did (the driver's exit code and summary line). */
struct ServeStats
{
    std::size_t frames = 0;      //!< well-formed frames admitted
    std::size_t frameErrors = 0; //!< framing failures (error rows)
    std::size_t rows = 0;        //!< rows written (== frames + errors)
    std::size_t okRows = 0;      //!< rows with code 0
    std::size_t peakInFlight = 0; //!< credit high-water mark
    bool outputOk = true;        //!< the output stream never failed
};

/**
 * Serve `guoq-serve-v1` frames from @p in until EOF (or shutdown),
 * streaming one `guoq-serve-row-v1` line per request to @p out in
 * completion order, flushed per row. The calling thread is the
 * reader; cfg.jobs workers and one writer are spawned and joined
 * before returning, so every admitted request has produced its row
 * when this returns.
 */
ServeStats runServe(std::istream &in, std::ostream &out,
                    const Config &cfg);

/** What a batch run produced (the driver renders table/summary). */
struct BatchResult
{
    /** One entry per discovered file, sorted by path. */
    std::vector<bench::BatchFileEntry> entries;
    std::size_t peakInFlight = 0; //!< credit high-water mark
    bool scanOk = true;           //!< directory walk completed
    std::string scanError;        //!< iff !scanOk
};

/**
 * Run the batch pipeline over every *.qasm under @p rootDir
 * (recursive, skipping @p outDir so reruns never re-optimize their
 * own results), writing optimized files into the mirrored tree under
 * @p outDir. Identical flow to runServe — walker instead of frame
 * reader, file writes instead of inline QASM — discovered files start
 * optimizing immediately instead of after a full pre-scan.
 */
BatchResult runBatch(const std::string &rootDir,
                     const std::string &outDir, const Config &cfg);

} // namespace serve
} // namespace guoq
