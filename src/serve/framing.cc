#include "serve/framing.h"

#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/logging.h"

namespace guoq {
namespace serve {

namespace {

/** True iff @p line is a `request` header (resync anchor). */
bool
isRequestLine(const std::string &line)
{
    return line == "request" || line.rfind("request ", 0) == 0;
}

/** Strict u64 parse: rejects empty, sign, and trailing garbage. */
bool
parseU64(const std::string &v, std::uint64_t &out)
{
    if (v.empty() || v[0] == '-' || v[0] == '+')
        return false;
    char *end = nullptr;
    const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
    if (!end || *end != '\0')
        return false;
    out = static_cast<std::uint64_t>(x);
    return true;
}

/** Strict double parse with the same rejection rules. */
bool
parseDouble(const std::string &v, double &out)
{
    if (v.empty())
        return false;
    char *end = nullptr;
    const double x = std::strtod(v.c_str(), &end);
    if (!end || *end != '\0')
        return false;
    out = x;
    return true;
}

/** A bounded, printable excerpt of @p line for diagnostics. */
std::string
excerpt(const std::string &line)
{
    constexpr std::size_t kMax = 40;
    std::string out;
    for (std::size_t i = 0; i < line.size() && i < kMax; ++i) {
        const unsigned char c =
            static_cast<unsigned char>(line[i]);
        out += (c >= 0x20 && c < 0x7f) ? line[i] : '?';
    }
    if (line.size() > kMax)
        out += "...";
    return out;
}

} // namespace

FrameReader::FrameReader(std::istream &in, std::size_t maxPayload)
    : in_(in), maxPayload_(maxPayload ? maxPayload : 1)
{
}

bool
FrameReader::getLine(std::string &out)
{
    if (!std::getline(in_, out))
        return false;
    ++lineNo_;
    if (!out.empty() && out.back() == '\r')
        out.pop_back();
    return true;
}

/**
 * Record @p message as the pending error, then skip forward to the
 * next `request` header so the following next() call starts in sync.
 */
FrameReader::Status
FrameReader::fail(FrameError &error, int line, const std::string &id,
                  const std::string &message)
{
    error.line = line;
    error.id = id;
    error.message = message;
    std::string skipped;
    while (getLine(skipped)) {
        if (isRequestLine(skipped)) {
            havePending_ = true;
            pending_ = skipped;
            pendingLine_ = lineNo_;
            break;
        }
    }
    return Status::Error;
}

FrameReader::Status
FrameReader::next(Frame &frame, FrameError &error)
{
    frame = Frame();
    error = FrameError();

    // 1. The `request` header — from the resync buffer, or the next
    //    non-empty line (blank lines between frames are tolerated).
    std::string header;
    int headerLine = 0;
    if (havePending_) {
        header = pending_;
        headerLine = pendingLine_;
        havePending_ = false;
    } else {
        for (;;) {
            if (!getLine(header))
                return Status::Eof;
            if (!header.empty())
                break;
        }
        headerLine = lineNo_;
    }
    if (!isRequestLine(header))
        return fail(error, headerLine, "",
                    "expected 'request <id>', got '" +
                        excerpt(header) + "'");

    std::istringstream tokens(header);
    std::string keyword, id;
    tokens >> keyword >> id;
    if (id.empty())
        return fail(error, headerLine, "",
                    "request header is missing an id");
    frame.id = id;
    frame.line = headerLine;
    std::string kv;
    while (tokens >> kv) {
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos || eq == 0)
            return fail(error, headerLine, id,
                        "malformed request option '" + excerpt(kv) +
                            "' (expected key=value)");
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        if (key == "seed") {
            if (!parseU64(value, frame.seed))
                return fail(error, headerLine, id,
                            "seed expects an unsigned integer, got '" +
                                excerpt(value) + "'");
            frame.hasSeed = true;
        } else if (key == "deadline-ms") {
            double ms = 0;
            if (!parseDouble(value, ms) || !(ms > 0) || ms > 1e9)
                return fail(error, headerLine, id,
                            "deadline-ms expects a value in (0, 1e9], "
                            "got '" + excerpt(value) + "'");
            frame.deadlineMs = ms;
            frame.hasDeadline = true;
        } else {
            // Unknown keys are refused, not skipped: silently ignoring
            // a mistyped `sed=7` would run the request with the wrong
            // settings and no one would know.
            return fail(error, headerLine, id,
                        "unknown request option '" + excerpt(key) +
                            "' (known: seed, deadline-ms)");
        }
    }

    // 2. The `payload <nbytes>` line, immediately after the header.
    std::string sizeLine;
    if (!getLine(sizeLine))
        return fail(error, lineNo_, id,
                    "EOF mid-frame: missing 'payload <nbytes>' line");
    std::uint64_t nbytes = 0;
    {
        std::istringstream st(sizeLine);
        std::string pk, pv, extra;
        st >> pk >> pv;
        if (pk != "payload" || !parseU64(pv, nbytes) || (st >> extra))
            return fail(error, lineNo_, id,
                        "expected 'payload <nbytes>', got '" +
                            excerpt(sizeLine) + "'");
    }
    if (nbytes > maxPayload_) {
        // Skip the declared bytes so the stream stays in sync and the
        // next frame parses; the refusal itself is the error row.
        const int at = lineNo_;
        std::uint64_t left = nbytes;
        char buf[4096];
        while (left > 0 && in_) {
            const std::size_t chunk = static_cast<std::size_t>(
                left < sizeof buf ? left : sizeof buf);
            in_.read(buf, static_cast<std::streamsize>(chunk));
            const std::streamsize got = in_.gcount();
            for (std::streamsize i = 0; i < got; ++i)
                lineNo_ += buf[i] == '\n' ? 1 : 0;
            left -= static_cast<std::uint64_t>(got);
            if (got == 0)
                break;
        }
        std::string tail;
        if (getLine(tail) && tail.empty())
            getLine(tail);
        // `tail` should now be "end"; if the skip lost sync anyway,
        // the next next() resynchronizes at a request header.
        return fail(error, at, id,
                    "payload of " + std::to_string(nbytes) +
                        " bytes exceeds the " +
                        std::to_string(maxPayload_) + "-byte cap");
    }

    // 3. Exactly nbytes of raw payload.
    frame.payload.resize(static_cast<std::size_t>(nbytes));
    if (nbytes > 0) {
        in_.read(frame.payload.data(),
                 static_cast<std::streamsize>(nbytes));
        const std::streamsize got = in_.gcount();
        for (std::streamsize i = 0; i < got; ++i)
            lineNo_ += frame.payload[static_cast<std::size_t>(i)] == '\n'
                           ? 1
                           : 0;
        if (static_cast<std::uint64_t>(got) != nbytes)
            return fail(error, lineNo_, id,
                        "payload truncated: got " +
                            std::to_string(got) + " of " +
                            std::to_string(nbytes) +
                            " bytes (EOF mid-frame)");
    }

    // 4. The `end` trailer (one blank line tolerated so payloads with
    //    and without a trailing newline both frame cleanly).
    std::string trailer;
    if (!getLine(trailer))
        return fail(error, lineNo_, id,
                    "EOF mid-frame: missing 'end' after payload");
    if (trailer.empty() && !getLine(trailer))
        return fail(error, lineNo_, id,
                    "EOF mid-frame: missing 'end' after payload");
    if (trailer != "end")
        return fail(error, lineNo_, id,
                    "expected 'end' after the declared " +
                        std::to_string(nbytes) + " payload bytes, got '" +
                        excerpt(trailer) +
                        "' (byte count out of step?)");
    return Status::Frame;
}

void
writeFrame(std::ostream &out, const Frame &frame)
{
    out << "request " << frame.id;
    if (frame.hasSeed)
        out << " seed=" << frame.seed;
    if (frame.hasDeadline)
        out << " deadline-ms=" << frame.deadlineMs;
    out << "\npayload " << frame.payload.size() << "\n";
    out << frame.payload;
    if (frame.payload.empty() || frame.payload.back() != '\n')
        out << "\n";
    out << "end\n";
}

} // namespace serve
} // namespace guoq
