#include "serve/pipeline.h"

#include "support/logging.h"

namespace guoq {
namespace serve {

Credits::Credits(std::size_t capacity)
    : capacity_(capacity ? capacity : 1)
{
}

void
Credits::acquire()
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return out_ < capacity_; });
    ++out_;
    if (out_ > peak_)
        peak_ = out_;
}

void
Credits::release()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (out_ == 0)
            support::panic("Credits::release without an acquire");
        --out_;
    }
    cv_.notify_one();
}

std::size_t
Credits::capacity() const
{
    return capacity_;
}

std::size_t
Credits::inFlight() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return out_;
}

std::size_t
Credits::peak() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_;
}

} // namespace serve
} // namespace guoq
