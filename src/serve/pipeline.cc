#include "serve/pipeline.h"

#include "support/logging.h"

namespace guoq {
namespace serve {

Credits::Credits(std::size_t capacity)
    : capacity_(capacity ? capacity : 1)
{
}

void
Credits::acquire()
{
    support::MutexLock lock(mutex_);
    while (out_ >= capacity_)
        cv_.wait(mutex_);
    ++out_;
    if (out_ > peak_)
        peak_ = out_;
}

void
Credits::release()
{
    {
        support::MutexLock lock(mutex_);
        if (out_ == 0)
            support::panic("Credits::release without an acquire");
        --out_;
    }
    cv_.notify_one();
}

std::size_t
Credits::capacity() const
{
    return capacity_;
}

std::size_t
Credits::inFlight() const
{
    support::MutexLock lock(mutex_);
    return out_;
}

std::size_t
Credits::peak() const
{
    support::MutexLock lock(mutex_);
    return peak_;
}

} // namespace serve
} // namespace guoq
