/**
 * @file
 * Inter-thread plumbing for the streaming service tier: a credit
 * semaphore that bounds the number of requests in flight anywhere in
 * the pipeline, and a bounded, closeable FIFO connecting its stages.
 *
 * The pipeline is the fastp-style reader → workers → writer shape:
 * the reader acquires one credit per admitted request (blocking when
 * all credits are out — backpressure propagates to the input stream),
 * stages hand items through BoundedQueues, and the writer returns the
 * credit after the request's result row has left the process. The
 * invariant the harness asserts is `inFlight() <= capacity` at every
 * instant, with `peak()` as the witness.
 */

#pragma once

#include <cstddef>
#include <deque>
#include <utility>

#include "support/mutex.h"

namespace guoq {
namespace serve {

/**
 * A counting semaphore over "requests in flight", with a high-water
 * mark. acquire() blocks while all credits are out; release() returns
 * one. The pair brackets a request's whole pipeline lifetime —
 * admission by the reader to emission by the writer — so the bound
 * covers queued and in-service items alike, not just one queue.
 */
class Credits
{
  public:
    explicit Credits(std::size_t capacity);

    Credits(const Credits &) = delete;
    Credits &operator=(const Credits &) = delete;

    /** Take one credit, blocking until one is available. */
    void acquire();

    /** Return one credit (panics on a release without an acquire). */
    void release();

    std::size_t capacity() const;

    /** Credits currently out. */
    std::size_t inFlight() const;

    /** Most credits ever out at once. */
    std::size_t peak() const;

  private:
    mutable support::Mutex mutex_;
    support::CondVar cv_;
    const std::size_t capacity_; //!< immutable after construction
    std::size_t out_ GUARDED_BY(mutex_) = 0;
    std::size_t peak_ GUARDED_BY(mutex_) = 0;
};

/**
 * A bounded FIFO connecting two pipeline stages. push() blocks while
 * the queue is at capacity (a backstop — with credit accounting in
 * front, occupancy never exceeds the credit cap anyway). close()
 * refuses further pushes but lets consumers drain what is queued:
 * pop() returns false only once the queue is both closed and empty,
 * which is exactly the drain-on-EOF shutdown order the server needs.
 */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity)
        : capacity_(capacity ? capacity : 1)
    {
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Enqueue @p item, blocking while full. Returns false (item
     * dropped) when the queue is closed.
     */
    bool
    push(T item)
    {
        support::MutexLock lock(mutex_);
        while (!closed_ && queue_.size() >= capacity_)
            cv_push_.wait(mutex_);
        if (closed_)
            return false;
        queue_.push_back(std::move(item));
        if (queue_.size() > peak_)
            peak_ = queue_.size();
        cv_pop_.notify_one();
        return true;
    }

    /**
     * Dequeue into @p out, blocking while empty. Returns false once
     * the queue is closed *and* drained.
     */
    bool
    pop(T &out)
    {
        support::MutexLock lock(mutex_);
        while (!closed_ && queue_.empty())
            cv_pop_.wait(mutex_);
        if (queue_.empty())
            return false;
        out = std::move(queue_.front());
        queue_.pop_front();
        cv_push_.notify_one();
        return true;
    }

    /** Refuse further pushes; wake every waiter. Queued items remain
     *  poppable (drain semantics). */
    void
    close()
    {
        {
            support::MutexLock lock(mutex_);
            closed_ = true;
        }
        cv_push_.notify_all();
        cv_pop_.notify_all();
    }

    std::size_t
    size() const
    {
        support::MutexLock lock(mutex_);
        return queue_.size();
    }

    /** Most items ever queued at once. */
    std::size_t
    peak() const
    {
        support::MutexLock lock(mutex_);
        return peak_;
    }

  private:
    mutable support::Mutex mutex_;
    support::CondVar cv_push_;
    support::CondVar cv_pop_;
    std::deque<T> queue_ GUARDED_BY(mutex_);
    const std::size_t capacity_; //!< immutable after construction
    std::size_t peak_ GUARDED_BY(mutex_) = 0;
    bool closed_ GUARDED_BY(mutex_) = false;
};

} // namespace serve
} // namespace guoq
