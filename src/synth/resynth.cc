#include "synth/resynth.h"

#include "rewrite/applier.h"
#include "rewrite/rule.h"
#include "sim/unitary_sim.h"
#include "support/logging.h"
#include "synth/finite_synth.h"
#include "synth/qsearch.h"
#include "transpile/to_gate_set.h"
#include "verify/checker.h"

namespace guoq {
namespace synth {

namespace {

/**
 * Exact cleanup of a freshly synthesized native circuit: fuse 1q runs
 * and run the gate set's size-reducing rules to fixpoint. The raw
 * ansatz output carries full Rz·Ry·Rz dressings whose angles often
 * degenerate (≈0, ≈π); without cleanup the native form would bloat.
 */
ir::Circuit
cleanupNative(const ir::Circuit &c, ir::GateSetKind set)
{
    ir::Circuit cur = transpile::fuseOneQubitRuns(c, set);
    std::vector<rewrite::RewriteRule> reducing;
    for (const rewrite::RewriteRule &r : rewrite::rulesFor(set))
        if (r.sizeDelta() > 0)
            reducing.push_back(r);
    cur = rewrite::applyRulesToFixpoint(cur, reducing);
    return transpile::fuseOneQubitRuns(cur, set);
}

/** The entangler (2q-gate) pair sequence of a subcircuit. */
std::vector<std::pair<int, int>>
entanglerSequence(const ir::Circuit &c)
{
    std::vector<std::pair<int, int>> out;
    for (const ir::Gate &g : c.gates())
        if (g.arity() == 2)
            out.emplace_back(g.qubits[0], g.qubits[1]);
    return out;
}

} // namespace

ResynthResult
resynthesize(const ir::Circuit &sub, const ResynthOptions &opts,
             support::Rng &rng)
{
    ResynthResult result;
    result.circuit = sub;
    if (sub.numQubits() > opts.maxQubits || sub.numQubits() < 1)
        return result;

    const linalg::ComplexMatrix target = sim::circuitUnitary(sub);

    ir::Circuit raw;
    double distance = 1.0;
    bool success = false;

    if (ir::isFinite(opts.targetSet)) {
        FiniteSynthOptions fopts;
        fopts.epsilon = opts.epsilon;
        fopts.maxGates = opts.finiteMaxGates;
        fopts.deadline = opts.deadline;
        fopts.seed = &sub; // anneal down from the original gates
        const SynthResult r =
            finiteSynth(target, sub.numQubits(), fopts, rng);
        raw = r.circuit;
        distance = r.distance;
        success = r.success;
    } else {
        QSearchOptions qopts;
        qopts.epsilon = opts.epsilon;
        qopts.maxEntanglers = opts.maxEntanglers;
        qopts.useRxx = opts.targetSet == ir::GateSetKind::IonQ;
        qopts.deadline = opts.deadline;
        // Canonicalize pair order: the ansatz dressings absorb the
        // direction, and canonical pairs dedupe the search space.
        for (auto &[a, b] : qopts.seedEntanglers = entanglerSequence(sub))
            if (a > b)
                std::swap(a, b);
        const SynthResult r = qsearch(target, sub.numQubits(), qopts, rng);
        raw = r.circuit;
        distance = r.distance;
        success = r.success;
    }

    if (!success)
        return result;

    // Re-express natively (exact), then re-verify the distance so a
    // transpiler defect can never smuggle error past the ε budget.
    // The check runs through the verification layer's dense backend —
    // the same assertion path as `guoq_cli --verify` — whose exact
    // distance (no bound, no tolerance) preserves the strict
    // `check > eps_eff` discard.
    ir::Circuit native =
        cleanupNative(transpile::toGateSet(raw, opts.targetSet),
                      opts.targetSet);
    const double eps_eff = opts.epsilon > 0 ? opts.epsilon : 1e-7;
    verify::VerifyRequest vreq;
    vreq.epsilon = eps_eff;
    vreq.method = "dense";
    const verify::VerifyReport vr =
        verify::verifyEquivalence(sub, native, vreq);
    const double check = vr.distanceEstimate;
    if (vr.verdict == verify::Verdict::Inequivalent) {
        support::warn("resynthesize: native re-expression exceeded the "
                      "error budget; discarding the result");
        return result;
    }
    result.success = true;
    if (native.gates() == sub.gates()) {
        // Unchanged (e.g. the seed shrink found nothing): exact, and
        // callers should not be charged the metric's noise floor.
        result.distance = 0;
        return result;
    }
    result.circuit = std::move(native);
    result.distance = check > distance ? check : distance;
    return result;
}

} // namespace synth
} // namespace guoq
