#include "synth/templates.h"

#include "support/logging.h"

namespace guoq {
namespace synth {

void
Ansatz::addParameterized(ir::GateKind kind, std::vector<int> qubits)
{
    if (ir::gateParamCount(kind) != 1)
        support::panic("Ansatz: parameterized slots must take exactly one "
                       "angle");
    AnsatzGate g;
    g.kind = kind;
    g.qubits = std::move(qubits);
    g.paramIndex = numParams_++;
    gates_.push_back(std::move(g));
}

void
Ansatz::addFixed(ir::GateKind kind, std::vector<int> qubits, double param)
{
    AnsatzGate g;
    g.kind = kind;
    g.qubits = std::move(qubits);
    g.fixedParam = param;
    gates_.push_back(std::move(g));
}

int
Ansatz::twoQubitCount() const
{
    int n = 0;
    for (const AnsatzGate &g : gates_)
        if (g.qubits.size() == 2)
            ++n;
    return n;
}

ir::Circuit
Ansatz::instantiate(const std::vector<double> &params) const
{
    ir::Circuit c(numQubits_);
    for (const AnsatzGate &g : gates_) {
        std::vector<double> ps;
        if (ir::gateParamCount(g.kind) == 1) {
            ps.push_back(g.paramIndex >= 0
                             ? params[static_cast<std::size_t>(g.paramIndex)]
                             : g.fixedParam);
        }
        c.add(g.kind, g.qubits, ps);
    }
    return c;
}

void
appendU3Slot(Ansatz *a, int qubit)
{
    a->addParameterized(ir::GateKind::Rz, {qubit});
    a->addParameterized(ir::GateKind::Ry, {qubit});
    a->addParameterized(ir::GateKind::Rz, {qubit});
}

void
appendEntanglerBlock(Ansatz *a, int qa, int qb, bool use_rxx)
{
    if (use_rxx)
        a->addParameterized(ir::GateKind::Rxx, {qa, qb});
    else
        a->addFixed(ir::GateKind::CX, {qa, qb});
    appendU3Slot(a, qa);
    appendU3Slot(a, qb);
}

Ansatz
initialAnsatz(int num_qubits)
{
    Ansatz a(num_qubits);
    for (int q = 0; q < num_qubits; ++q)
        appendU3Slot(&a, q);
    return a;
}

} // namespace synth
} // namespace guoq
