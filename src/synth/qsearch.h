/**
 * @file
 * QSearch/LEAP-style bottom-up unitary synthesis for continuous gate
 * sets (the BQSKit substitute, paper §6 "Instantiation of guoq").
 *
 * The search explores circuit *structures* — sequences of entangler
 * placements dressed with 1q rotations — ordered by instantiation
 * quality, expanding the most promising structure with one more
 * entangler block until the target distance is met or the budget runs
 * out. For 1 qubit the ZYZ decomposition is exact and immediate.
 */

#pragma once

#include "linalg/complex_matrix.h"
#include "support/rng.h"
#include "support/timer.h"
#include "synth/templates.h"

namespace guoq {
namespace synth {

/** Result shared by the unitary synthesizers. */
struct SynthResult
{
    bool success = false;
    ir::Circuit circuit;     //!< Rz/Ry/CX (or Rxx) gates
    double distance = 1.0;   //!< achieved Hilbert–Schmidt distance
    int nodesExpanded = 0;   //!< structures instantiated
};

/** Options for qsearch(). */
struct QSearchOptions
{
    double epsilon = 1e-8;       //!< target HS distance
    int maxEntanglers = 10;      //!< structure depth cap
    int restartsPerNode = 4;     //!< Adam restarts per structure
    bool useRxx = false;         //!< IonQ: parameterized Rxx entangler
    support::Deadline deadline;  //!< wall-clock budget

    /**
     * Optional seed: the entangler pair sequence of the circuit being
     * resynthesized. When given, the search first instantiates the
     * seed structure and greedily deletes entanglers from it (the
     * QUEST/BQSKit gate-deletion strategy) before falling back to
     * bottom-up A*. Ignored when longer than maxSeedEntanglers.
     */
    std::vector<std::pair<int, int>> seedEntanglers;
    int maxSeedEntanglers = 12;
};

/**
 * Synthesize a circuit for @p target (2^n x 2^n, n = @p num_qubits,
 * n ≤ 4) within @p opts.epsilon. On failure returns the best attempt
 * with success = false.
 */
SynthResult qsearch(const linalg::ComplexMatrix &target, int num_qubits,
                    const QSearchOptions &opts, support::Rng &rng);

} // namespace synth
} // namespace guoq
