/**
 * @file
 * The content-addressed synthesis cache: resynthesis results keyed by
 * the subcircuit's unitary canonicalized up to global phase plus the
 * request's target gate set, ε tier, and synthesizer caps. The map is
 * sharded (one mutex per cache-line-aligned shard) so every portfolio
 * worker can probe it concurrently without false sharing, and an
 * optional on-disk tier persists entries across runs in a versioned,
 * corruption-tolerant text format (see docs/FORMATS.md).
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "ir/circuit.h"
#include "linalg/complex_matrix.h"
#include "support/mutex.h"
#include "synth/resynth.h"

namespace guoq {
namespace synth {

/**
 * Quarter-decade bucket of an ε threshold: requests whose ε land in
 * the same tier may share cache entries (each hit still re-validates
 * against the request's own ε). Non-positive ε (exact synthesis) maps
 * to a dedicated sentinel tier.
 */
int epsilonTier(double epsilon);

/**
 * Hash of @p u canonicalized up to global phase: the matrix is
 * rotated so its first significantly nonzero element (row-major) is
 * real positive, then each entry is quantized to a 2^-26 grid and
 * FNV-1a hashed. Circuits equal up to global phase collide; matrices
 * differing by more than the quantization grid do not.
 */
std::uint64_t canonicalUnitaryHash(const linalg::ComplexMatrix &u);

/** Content address of one resynthesis request. */
struct CacheKey
{
    std::uint64_t unitaryHash = 0;
    int set = 0; //!< static_cast<int>(ir::GateSetKind)
    int epsTier = 0;
    int numQubits = 0;
    int maxQubits = 0;
    int maxEntanglers = 0;
    int finiteMaxGates = 0;

    bool operator==(const CacheKey &other) const = default;
};

/** Key for @p u under the caps and thresholds in @p opts. */
CacheKey makeCacheKey(const linalg::ComplexMatrix &u, int num_qubits,
                      const ResynthOptions &opts);

struct CacheKeyHash
{
    std::size_t operator()(const CacheKey &k) const;
};

/**
 * One cached outcome. Failures are cached too (success = false) so a
 * warm run replays the cold run's trajectory byte for byte instead of
 * re-searching doomed requests.
 */
struct CacheEntry
{
    bool success = false;
    ir::Circuit circuit;   //!< native result when success
    double distance = 1.0; //!< HS distance charged by the cold run
};

/** Sharded concurrent map from CacheKey to CacheEntry. */
class SynthCache
{
  public:
    explicit SynthCache(std::size_t shard_count = kDefaultShards);

    /** True (and *out filled) when @p key is present. */
    bool lookup(const CacheKey &key, CacheEntry *out) const;

    /**
     * Insert @p entry unless the key is already present (first write
     * wins, so concurrent workers agree on one canonical result).
     * Returns true when this call inserted.
     */
    bool store(const CacheKey &key, CacheEntry entry);

    std::size_t size() const;
    void clear();

    /**
     * Merge entries from the versioned text file at @p path. A
     * mismatched magic/version line ignores the whole file (returns
     * false); a truncated or corrupted record keeps every entry
     * parsed before it (still returns true). A missing file is not
     * an error (returns true, loads nothing).
     */
    bool load(const std::string &path, std::string *err = nullptr);

    /** Atomically (temp file + rename) write all entries to @p path. */
    bool save(const std::string &path, std::string *err = nullptr) const;

    static constexpr const char *kFileMagic = "guoq-synth-cache-v1";
    static constexpr std::size_t kDefaultShards = 16;

  private:
    struct alignas(64) Shard
    {
        mutable support::Mutex mutex;
        std::unordered_map<CacheKey, CacheEntry, CacheKeyHash> map
            GUARDED_BY(mutex);
    };

    Shard &shardFor(const CacheKey &key) const;

    std::unique_ptr<Shard[]> shards_;
    std::size_t shardCount_;
};

} // namespace synth
} // namespace guoq
