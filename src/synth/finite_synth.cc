#include "synth/finite_synth.h"

#include <algorithm>
#include <cmath>

#include "ir/gate_set.h"
#include "linalg/unitary.h"
#include "sim/unitary_sim.h"
#include "support/logging.h"

namespace guoq {
namespace synth {

namespace {

using linalg::ComplexMatrix;

/** The Clifford+T vocabulary sampled by the annealer. */
constexpr ir::GateKind kOneQubitKinds[] = {
    ir::GateKind::T,   ir::GateKind::Tdg, ir::GateKind::S,
    ir::GateKind::Sdg, ir::GateKind::H,   ir::GateKind::X,
};

/** Draw a random Clifford+T gate on @p num_qubits qubits. */
ir::Gate
randomGate(int num_qubits, support::Rng &rng)
{
    // Even odds of a CX when more than one qubit is available.
    if (num_qubits >= 2 && rng.chance(0.5)) {
        const int c = static_cast<int>(rng.index(
            static_cast<std::size_t>(num_qubits)));
        int t = static_cast<int>(rng.index(
            static_cast<std::size_t>(num_qubits - 1)));
        if (t >= c)
            ++t;
        return ir::Gate(ir::GateKind::CX, {c, t});
    }
    const ir::GateKind kind =
        kOneQubitKinds[rng.index(std::size(kOneQubitKinds))];
    const int q = static_cast<int>(
        rng.index(static_cast<std::size_t>(num_qubits)));
    return ir::Gate(kind, {q});
}

/** Distance of @p gates to @p target plus a small size pressure. */
double
annealCost(const std::vector<ir::Gate> &gates, int num_qubits,
           const ComplexMatrix &target)
{
    ir::Circuit c(num_qubits);
    for (const ir::Gate &g : gates)
        c.add(g);
    const double d = linalg::hsDistance(target, sim::circuitUnitary(c));
    return d + 1e-4 * static_cast<double>(gates.size());
}

/** Distance of a gate list to the target. */
double
listDistance(const std::vector<ir::Gate> &gates, int num_qubits,
             const ComplexMatrix &target)
{
    ir::Circuit c(num_qubits);
    for (const ir::Gate &g : gates)
        c.add(g);
    return linalg::hsDistance(target, sim::circuitUnitary(c));
}

/**
 * Greedy gate deletion while the distance stays within @p epsilon (the
 * Synthetiq shrink phase). Tries single deletions first, then
 * same-kind pairs — inverse pairs (CX·CX, H·H, T·T†) can never be
 * removed one gate at a time.
 */
void
shrink(std::vector<ir::Gate> *gates, int num_qubits,
       const ComplexMatrix &target, double epsilon,
       const support::Deadline &deadline)
{
    bool changed = true;
    while (changed && !deadline.expired()) {
        changed = false;
        for (std::size_t i = 0; i < gates->size() && !changed; ++i) {
            std::vector<ir::Gate> trial = *gates;
            trial.erase(trial.begin() + static_cast<std::ptrdiff_t>(i));
            if (listDistance(trial, num_qubits, target) <= epsilon) {
                *gates = std::move(trial);
                changed = true;
            }
        }
        if (changed || deadline.expired())
            continue;
        for (std::size_t i = 0; i < gates->size() && !changed; ++i) {
            for (std::size_t j = i + 1;
                 j < gates->size() && !changed; ++j) {
                // Pair deletions only pay off for same-wire pairs.
                if (!(*gates)[i].overlaps((*gates)[j]))
                    continue;
                if (deadline.expired())
                    break;
                std::vector<ir::Gate> trial = *gates;
                trial.erase(trial.begin() +
                            static_cast<std::ptrdiff_t>(j));
                trial.erase(trial.begin() +
                            static_cast<std::ptrdiff_t>(i));
                if (listDistance(trial, num_qubits, target) <= epsilon) {
                    *gates = std::move(trial);
                    changed = true;
                }
            }
        }
    }
}

} // namespace

SynthResult
finiteSynth(const ComplexMatrix &target, int num_qubits,
            const FiniteSynthOptions &opts, support::Rng &rng)
{
    if (num_qubits < 1 || num_qubits > 3)
        support::panic("finiteSynth: supports 1-3 qubits");
    if (target.rows() != (std::size_t{1} << num_qubits))
        support::panic("finiteSynth: target size mismatch");

    const double eps = opts.epsilon > 0 ? opts.epsilon : 1e-7;

    SynthResult best;
    best.circuit = ir::Circuit(num_qubits);
    best.distance =
        linalg::hsDistance(target, sim::circuitUnitary(best.circuit));
    best.success = best.distance <= eps; // target may be identity

    // Seed round: anneal down from the provided circuit when it fits
    // the vocabulary and the length cap.
    bool seed_usable = false;
    if (opts.seed && opts.seed->numQubits() == num_qubits &&
        static_cast<int>(opts.seed->size()) <= opts.maxGates) {
        seed_usable = true;
        for (const ir::Gate &g : opts.seed->gates())
            if (!ir::isNative(ir::GateSetKind::CliffordT, g.kind))
                seed_usable = false;
    }

    // Seed phase: greedy gate deletion from the original circuit — an
    // exact starting point whose shrink is already a valid synthesis.
    if (seed_usable && !best.success) {
        std::vector<ir::Gate> cur = opts.seed->gates();
        shrink(&cur, num_qubits, target, eps, opts.deadline);
        ir::Circuit c(num_qubits);
        for (const ir::Gate &g : cur)
            c.add(g);
        const double d =
            linalg::hsDistance(target, sim::circuitUnitary(c));
        if (d <= eps) {
            best.circuit = std::move(c);
            best.distance = d;
            best.success = true;
        }
    }

    for (int round = 0; round < opts.rounds && !best.success; ++round) {
        if (opts.deadline.expired())
            break;
        std::vector<ir::Gate> cur;
        cur.reserve(static_cast<std::size_t>(opts.maxGates));
        {
            // Fresh random sequence; shorter early, longer later.
            const int len = std::min(
                opts.maxGates,
                4 + 4 * round + static_cast<int>(rng.index(4)));
            for (int i = 0; i < len; ++i)
                cur.push_back(randomGate(num_qubits, rng));
        }
        double cur_cost = annealCost(cur, num_qubits, target);

        const double t0 = 0.3, t1 = 0.005;
        for (int it = 0; it < opts.itersPerRound; ++it) {
            if ((it & 63) == 0 && opts.deadline.expired())
                break;
            const double progress = static_cast<double>(it) /
                static_cast<double>(opts.itersPerRound);
            const double temp = t0 * std::pow(t1 / t0, progress);

            std::vector<ir::Gate> trial = cur;
            const double move = rng.uniform();
            if (move < 0.55 && !trial.empty()) {
                // Mutate a random position.
                trial[rng.index(trial.size())] =
                    randomGate(num_qubits, rng);
            } else if (move < 0.75 &&
                       static_cast<int>(trial.size()) < opts.maxGates) {
                trial.insert(
                    trial.begin() +
                        static_cast<std::ptrdiff_t>(
                            rng.index(trial.size() + 1)),
                    randomGate(num_qubits, rng));
            } else if (move < 0.9 && !trial.empty()) {
                trial.erase(trial.begin() + static_cast<std::ptrdiff_t>(
                                                rng.index(trial.size())));
            } else if (trial.size() >= 2) {
                const std::size_t i = rng.index(trial.size() - 1);
                std::swap(trial[i], trial[i + 1]);
            }

            const double trial_cost =
                annealCost(trial, num_qubits, target);
            const double delta = trial_cost - cur_cost;
            if (delta <= 0 || rng.chance(std::exp(-delta / temp))) {
                cur = std::move(trial);
                cur_cost = trial_cost;
            }

            const double pure_distance =
                cur_cost - 1e-4 * static_cast<double>(cur.size());
            if (pure_distance <= eps) {
                shrink(&cur, num_qubits, target, eps, opts.deadline);
                ir::Circuit c(num_qubits);
                for (const ir::Gate &g : cur)
                    c.add(g);
                best.circuit = std::move(c);
                best.distance = pure_distance;
                best.success = true;
                break;
            }
            if (pure_distance < best.distance) {
                ir::Circuit c(num_qubits);
                for (const ir::Gate &g : cur)
                    c.add(g);
                best.circuit = std::move(c);
                best.distance = pure_distance;
            }
        }
        ++best.nodesExpanded;
    }
    return best;
}

} // namespace synth
} // namespace guoq
