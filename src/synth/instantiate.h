/**
 * @file
 * Numerical instantiation: fit an ansatz's free angles to a target
 * unitary by minimizing the Hilbert–Schmidt cost with analytic
 * gradients (the BQSKit-style inner loop of circuit synthesis).
 */

#pragma once

#include "linalg/complex_matrix.h"
#include "linalg/numopt.h"
#include "support/rng.h"
#include "support/timer.h"
#include "synth/templates.h"

namespace guoq {
namespace synth {

/** Result of fitting an ansatz against a target unitary. */
struct InstantiateResult
{
    std::vector<double> params;
    double hsDistanceValue = 1.0; //!< Δ(target, ansatz(params))
    bool success = false;         //!< Δ ≤ the requested threshold
};

/**
 * Fit @p ansatz to @p target so that the Hilbert–Schmidt distance is
 * at most @p eps (Def. 3.2); multi-start Adam with analytic gradients.
 *
 * @param target   the 2^n x 2^n target unitary.
 * @param eps      distance threshold defining success; eps = 0 is
 *                 interpreted as numerically-exact (1e-7, the metric's
 *                 resolution at machine precision).
 * @param restarts total Adam starts (the first uses @p hint when given).
 * @param hint     warm-start parameters, e.g. the parent structure's
 *                 fit in QSearch; may be shorter than numParams() (the
 *                 tail is randomized).
 */
InstantiateResult instantiate(const Ansatz &ansatz,
                              const linalg::ComplexMatrix &target,
                              double eps, int restarts, support::Rng &rng,
                              const support::Deadline &deadline,
                              const std::vector<double> *hint = nullptr);

/**
 * The Hilbert–Schmidt cost 1 - |Tr(U†V)|/N and its gradient in the
 * ansatz angles (exposed for the numerical-gradient cross-check in
 * the test suite).
 */
double hsCostAndGrad(const Ansatz &ansatz,
                     const linalg::ComplexMatrix &target,
                     const std::vector<double> &params,
                     std::vector<double> *grad);

} // namespace synth
} // namespace guoq
