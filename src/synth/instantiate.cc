#include "synth/instantiate.h"

#include <cmath>

#include "linalg/unitary.h"
#include "sim/unitary_sim.h"
#include "support/logging.h"

namespace guoq {
namespace synth {

namespace {

using linalg::Complex;
using linalg::ComplexMatrix;

/** Tr(A · B) without forming the product: Σ_ij A_ij B_ji. */
Complex
traceOfProduct(const ComplexMatrix &a, const ComplexMatrix &b)
{
    const std::size_t n = a.rows();
    Complex t = 0;
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            t += a(i, j) * b(j, i);
    return t;
}

/** The concrete gate for an ansatz slot under @p params. */
ir::Gate
bindGate(const AnsatzGate &g, const std::vector<double> &params)
{
    std::vector<double> ps;
    if (ir::gateParamCount(g.kind) == 1)
        ps.push_back(g.paramIndex >= 0
                         ? params[static_cast<std::size_t>(g.paramIndex)]
                         : g.fixedParam);
    return ir::Gate(g.kind, g.qubits, ps);
}

/**
 * Left-multiply @p m by the Pauli generator P of slot @p g (Z for Rz,
 * Y for Ry, X⊗X for Rxx) so that ∂G/∂θ · rest = -i/2 · P · G · rest.
 */
void
applyGenerator(ComplexMatrix &m, const AnsatzGate &g, int num_qubits)
{
    switch (g.kind) {
      case ir::GateKind::Rz:
        sim::applyGate(m, ir::Gate(ir::GateKind::Z, {g.qubits[0]}),
                       num_qubits);
        return;
      case ir::GateKind::Ry:
        sim::applyGate(m, ir::Gate(ir::GateKind::Y, {g.qubits[0]}),
                       num_qubits);
        return;
      case ir::GateKind::Rx:
        sim::applyGate(m, ir::Gate(ir::GateKind::X, {g.qubits[0]}),
                       num_qubits);
        return;
      case ir::GateKind::Rxx:
        sim::applyGate(m, ir::Gate(ir::GateKind::X, {g.qubits[0]}),
                       num_qubits);
        sim::applyGate(m, ir::Gate(ir::GateKind::X, {g.qubits[1]}),
                       num_qubits);
        return;
      default:
        support::panic("applyGenerator: unsupported parameterized kind");
    }
}

} // namespace

double
hsCostAndGrad(const Ansatz &ansatz, const ComplexMatrix &target,
              const std::vector<double> &params, std::vector<double> *grad)
{
    const int nq = ansatz.numQubits();
    const std::size_t dim = std::size_t{1} << nq;
    const double n = static_cast<double>(dim);
    const auto &gates = ansatz.gates();
    const std::size_t m = gates.size();

    // Cumulative prefixes P_k = F_k ... F_0 (P_{m-1} is the full V).
    std::vector<ComplexMatrix> prefix(m);
    ComplexMatrix cum = ComplexMatrix::identity(dim);
    for (std::size_t k = 0; k < m; ++k) {
        sim::applyGate(cum, bindGate(gates[k], params), nq);
        prefix[k] = cum;
    }
    const ComplexMatrix &v = m == 0 ? cum : prefix[m - 1];

    const ComplexMatrix udag = target.dagger();
    const Complex t = traceOfProduct(udag, v);
    const double abs_t = std::abs(t);
    const double cost = std::max(0.0, 1.0 - abs_t / n);
    if (!grad)
        return cost;

    grad->assign(static_cast<std::size_t>(ansatz.numParams()), 0.0);
    if (abs_t < 1e-300)
        return cost; // gradient of |T| undefined at T = 0
    const Complex t_dir = std::conj(t) / abs_t;

    // B_k = U† · F_{m-1} ... F_{k+1}; starts at U† and absorbs F_k
    // from the right after each step.
    ComplexMatrix b = udag;
    for (std::size_t k = m; k-- > 0;) {
        const AnsatzGate &g = gates[k];
        if (g.paramIndex >= 0) {
            // dV/dθ_k = B_k† ... = A_{k+1} · (-i/2 P_k) · prefix_k.
            ComplexMatrix pp = prefix[k];
            applyGenerator(pp, g, nq);
            const Complex dt =
                Complex(0, -0.5) * traceOfProduct(b, pp);
            (*grad)[static_cast<std::size_t>(g.paramIndex)] =
                -(1.0 / n) * std::real(t_dir * dt);
        }
        if (k > 0) {
            // Absorb F_k into B (right multiplication).
            ComplexMatrix f = ComplexMatrix::identity(dim);
            sim::applyGate(f, bindGate(g, params), nq);
            b = b * f;
        }
    }
    return cost;
}

InstantiateResult
instantiate(const Ansatz &ansatz, const ComplexMatrix &target, double eps,
            int restarts, support::Rng &rng,
            const support::Deadline &deadline,
            const std::vector<double> *hint)
{
    const double eps_eff = eps > 0 ? eps : 1e-7;
    // Aim 4x under the threshold so measured distances land with
    // margin to spare after native re-expression noise.
    const double cost_threshold =
        linalg::hsCostThresholdForDistance(eps_eff) * 0.25;

    linalg::GradFn fn = [&ansatz, &target](const std::vector<double> &x,
                                           std::vector<double> *g) {
        return hsCostAndGrad(ansatz, target, x, g);
    };

    linalg::MinimizeOptions opts;
    opts.maxIters = 600;
    opts.tolerance = cost_threshold;
    opts.learningRate = 0.1;
    opts.deadline = deadline;

    // First start: the warm-start hint when given (tail randomized),
    // otherwise fully random — the all-zero (identity) point is a
    // near-stationary plateau of the HS cost for most targets.
    std::vector<double> x0(static_cast<std::size_t>(ansatz.numParams()));
    for (std::size_t i = 0; i < x0.size(); ++i) {
        if (hint && i < hint->size())
            x0[i] = (*hint)[i] + rng.uniform(-0.05, 0.05);
        else
            x0[i] = rng.uniform(-M_PI, M_PI);
    }
    const linalg::MinimizeResult r = linalg::minimizeMultiStart(
        fn, std::move(x0), restarts < 1 ? 1 : restarts, rng, opts);

    InstantiateResult result;
    result.params = r.x;
    // Δ = sqrt(cost · (2 - cost)) from cost = 1 - |T|/N.
    result.hsDistanceValue =
        std::sqrt(std::max(0.0, r.value * (2.0 - r.value)));
    result.success = result.hsDistanceValue <= eps_eff;
    return result;
}

} // namespace synth
} // namespace guoq
