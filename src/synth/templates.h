/**
 * @file
 * Parameterized circuit templates (ansätze) for numerical synthesis.
 *
 * QSearch-style synthesis instantiates a structure — a fixed sequence
 * of gates, some with free rotation angles — against a target unitary.
 * Every parameterized slot uses an exponential-form gate
 * (Rz, Ry, or Rxx: G(θ) = exp(-i θ/2 P)), so the Hilbert–Schmidt cost
 * has a uniform analytic gradient (∂G/∂θ = -i/2 · P · G).
 */

#pragma once

#include <vector>

#include "ir/circuit.h"
#include "ir/gate_kind.h"

namespace guoq {
namespace synth {

/** One slot of an ansatz: a gate whose angle may be a free parameter. */
struct AnsatzGate
{
    ir::GateKind kind = ir::GateKind::CX;
    std::vector<int> qubits;
    int paramIndex = -1;    //!< index into the parameter vector, or -1
    double fixedParam = 0;  //!< used when paramIndex < 0 and the kind
                            //!< is parameterized
};

/** A parameterized circuit structure. */
class Ansatz
{
  public:
    explicit Ansatz(int num_qubits) : numQubits_(num_qubits) {}

    int numQubits() const { return numQubits_; }
    int numParams() const { return numParams_; }
    const std::vector<AnsatzGate> &gates() const { return gates_; }

    /** Append a gate with a fresh free parameter. */
    void addParameterized(ir::GateKind kind, std::vector<int> qubits);

    /** Append a fixed (non-parameterized or bound-angle) gate. */
    void addFixed(ir::GateKind kind, std::vector<int> qubits,
                  double param = 0);

    /** Count of entangling (2-qubit) gates in the structure. */
    int twoQubitCount() const;

    /** Bind @p params and materialize a concrete circuit. */
    ir::Circuit instantiate(const std::vector<double> &params) const;

  private:
    int numQubits_;
    int numParams_ = 0;
    std::vector<AnsatzGate> gates_;
};

/**
 * The universal 1q dressing Rz·Ry·Rz on @p qubit (3 free params).
 * Appended after entanglers and as the initial layer.
 */
void appendU3Slot(Ansatz *a, int qubit);

/**
 * One QSearch expansion block on qubit pair (a, b): the entangler
 * (CX, or a parameterized Rxx when @p use_rxx) followed by a 1q
 * dressing on both qubits.
 */
void appendEntanglerBlock(Ansatz *a, int qa, int qb, bool use_rxx);

/** The depth-0 structure: one 1q dressing per qubit. */
Ansatz initialAnsatz(int num_qubits);

} // namespace synth
} // namespace guoq
