/** @file SynthService: cache + pool front end for resynthesize(). */

#include "synth/service.h"

#include <filesystem>
#include <system_error>
#include <utility>

#include "linalg/unitary.h"
#include "sim/unitary_sim.h"

namespace guoq {
namespace synth {

namespace {

// Mirrors resynthesize()'s own acceptance threshold for ε <= 0.
double
effectiveEpsilon(const ResynthOptions &opts)
{
    return opts.epsilon > 0 ? opts.epsilon : 1e-7;
}

bool
cacheable(const ir::Circuit &sub, const ResynthOptions &opts)
{
    return sub.numQubits() >= 1 && sub.numQubits() <= opts.maxQubits &&
           sub.numQubits() <= sim::kMaxUnitaryQubits;
}

} // namespace

void
SynthService::configurePool(int workers, std::size_t queue_capacity)
{
    if (workers <= 0) {
        pool_.reset();
        return;
    }
    pool_ = std::make_unique<Pool>(workers, queue_capacity);
}

SynthOutcome
SynthService::resynthesize(const ir::Circuit &sub,
                           const ResynthOptions &opts, support::Rng &rng)
{
    SynthOutcome out;
    if (!cacheEnabled_.load()) {
        // Pass-through: the caller's stream advances exactly as it
        // did before the service existed (bit-for-bit legacy).
        out.result = synth::resynthesize(sub, opts, rng);
        return out;
    }
    // Exactly one parent draw per request, hit or miss, so cold and
    // warm runs see identical parent streams.
    support::Rng child = rng.fork();
    if (!cacheable(sub, opts)) {
        out.result = synth::resynthesize(sub, opts, child);
        return out;
    }
    const linalg::ComplexMatrix u = sim::circuitUnitary(sub);
    const CacheKey key = makeCacheKey(u, sub.numQubits(), opts);
    CacheEntry entry;
    if (cache_.lookup(key, &entry)) {
        if (!entry.success) {
            // Replayed failure: warm runs retrace cold-run dead ends.
            out.cacheHit = true;
            return out;
        }
        const double eps = effectiveEpsilon(opts);
        // A hit must never loosen the bound: re-validate the stored
        // circuit against THIS request's unitary and ε. Rejection
        // (hash collision, looser tier-mate) degrades to a miss.
        if (entry.distance <= eps &&
            linalg::hsDistance(u, sim::circuitUnitary(entry.circuit)) <=
                eps) {
            out.cacheHit = true;
            out.result.success = true;
            out.result.circuit = entry.circuit;
            // Charge the distance the cold run charged, exactly.
            out.result.distance = entry.distance;
            return out;
        }
    }
    out.cacheMiss = true;
    out.result = synth::resynthesize(sub, opts, child);
    CacheEntry stored;
    stored.success = out.result.success;
    if (out.result.success) {
        stored.circuit = out.result.circuit;
        stored.distance = out.result.distance;
    }
    out.cacheStore = cache_.store(key, std::move(stored));
    return out;
}

std::optional<std::future<SynthOutcome>>
SynthService::submit(ir::Circuit sub, ResynthOptions opts,
                     support::Rng rng)
{
    if (!pool_) {
        // Legacy shape: one detached async task per request.
        return std::async(std::launch::async,
                          [this, sub = std::move(sub), opts,
                           rng]() mutable {
                              return resynthesize(sub, opts, rng);
                          });
    }
    auto task = std::make_shared<std::packaged_task<SynthOutcome()>>(
        [this, sub = std::move(sub), opts, rng]() mutable {
            return resynthesize(sub, opts, rng);
        });
    std::future<SynthOutcome> fut = task->get_future();
    if (!pool_->trySubmit([task] { (*task)(); }))
        return std::nullopt;
    return fut;
}

std::string
SynthService::cacheFilePath(const std::string &dir)
{
    return dir + "/synth-cache.txt";
}

bool
SynthService::loadCacheDir(const std::string &dir, std::string *err)
{
    enableCache(true);
    return cache_.load(cacheFilePath(dir), err);
}

bool
SynthService::saveCacheDir(const std::string &dir, std::string *err) const
{
    // Best-effort mkdir -p; a real failure surfaces in cache_.save().
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return cache_.save(cacheFilePath(dir), err);
}

SynthService &
SynthService::global()
{
    // Leaked on purpose: pool worker threads may still be parked in
    // cv.wait at exit, and destruction order vs. other statics is
    // otherwise fraught.
    static SynthService *instance = new SynthService;
    return *instance;
}

} // namespace synth
} // namespace guoq
