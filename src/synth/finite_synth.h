/**
 * @file
 * Simulated-annealing unitary synthesis for the finite Clifford+T gate
 * set — the Synthetiq substitute (paper Q4).
 *
 * The annealer walks the space of fixed-width gate sequences with
 * mutate / insert / delete / swap moves, minimizing the Hilbert–
 * Schmidt distance to the target plus a small size penalty, then
 * greedily shrinks successful candidates. Finite-set synthesis is much
 * harder than continuous instantiation (no gradients), which is
 * exactly the asymmetry the paper reports in Fig. 13.
 */

#pragma once

#include "linalg/complex_matrix.h"
#include "support/rng.h"
#include "support/timer.h"
#include "synth/qsearch.h"

namespace guoq {
namespace synth {

/** Options for finiteSynth(). */
struct FiniteSynthOptions
{
    double epsilon = 1e-8;      //!< success threshold (HS distance)
    int maxGates = 24;          //!< sequence length cap
    int itersPerRound = 4000;   //!< SA steps per restart
    int rounds = 4;             //!< SA restarts
    support::Deadline deadline;

    /**
     * Optional seed circuit (typically the subcircuit being
     * resynthesized). Round 0 anneals down from it — turning the run
     * into stochastic gate deletion — before later rounds try from
     * scratch. Must use only Clifford+T gates; ignored otherwise.
     */
    const ir::Circuit *seed = nullptr;
};

/**
 * Synthesize a Clifford+T circuit for @p target (n = @p num_qubits
 * ≤ 3). Returns the best attempt; success means distance ≤ epsilon.
 */
SynthResult finiteSynth(const linalg::ComplexMatrix &target, int num_qubits,
                        const FiniteSynthOptions &opts, support::Rng &rng);

} // namespace synth
} // namespace guoq
