/** @file Content-addressed synthesis cache implementation. */

#include "synth/cache.h"

#include <cmath>
#include <cstdio>
#include <memory>
#include <fstream>
#include <sstream>
#include <vector>

#include "ir/gate_kind.h"
#include "ir/gate_set.h"
#include "support/logging.h"

namespace guoq {
namespace synth {

namespace {

// Quantization grid for the canonical hash: fine enough that two
// numerically distinct unitaries almost never land on the same grid
// point, coarse enough to absorb the ~1e-15 noise between different
// gate decompositions of the same operator.
constexpr double kQuantScale = static_cast<double>(1 << 26);

// Magnitude below which an element cannot anchor the global phase.
constexpr double kAnchorFloor = 1e-6;

std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= 0x100000001b3ull;
    }
    return h;
}

bool
parseGateSet(const std::string &name, ir::GateSetKind *out)
{
    for (const ir::GateSetKind set : ir::allGateSets()) {
        if (ir::gateSetName(set) == name) {
            *out = set;
            return true;
        }
    }
    return false;
}

} // namespace

int
epsilonTier(double epsilon)
{
    if (epsilon <= 0)
        return -10000; // exact-synthesis sentinel tier
    return static_cast<int>(
        std::floor(4.0 * std::log10(epsilon) + 1e-12));
}

std::uint64_t
canonicalUnitaryHash(const linalg::ComplexMatrix &u)
{
    const std::size_t n = u.rows() * u.cols();
    const linalg::Complex *a = u.data();
    // Rotate the global phase so the first significant element is
    // real positive: phase-equal matrices then agree elementwise.
    linalg::Complex phase(1.0, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        if (std::abs(a[i]) > kAnchorFloor) {
            phase = std::conj(a[i]) / std::abs(a[i]);
            break;
        }
    }
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = fnv1a(h, static_cast<std::uint64_t>(u.rows()));
    for (std::size_t i = 0; i < n; ++i) {
        const linalg::Complex v = a[i] * phase;
        const auto re =
            static_cast<std::int64_t>(std::llround(v.real() * kQuantScale));
        const auto im =
            static_cast<std::int64_t>(std::llround(v.imag() * kQuantScale));
        h = fnv1a(h, static_cast<std::uint64_t>(re));
        h = fnv1a(h, static_cast<std::uint64_t>(im));
    }
    return h;
}

CacheKey
makeCacheKey(const linalg::ComplexMatrix &u, int num_qubits,
             const ResynthOptions &opts)
{
    CacheKey k;
    k.unitaryHash = canonicalUnitaryHash(u);
    k.set = static_cast<int>(opts.targetSet);
    k.epsTier = epsilonTier(opts.epsilon);
    k.numQubits = num_qubits;
    k.maxQubits = opts.maxQubits;
    k.maxEntanglers = opts.maxEntanglers;
    k.finiteMaxGates = opts.finiteMaxGates;
    return k;
}

std::size_t
CacheKeyHash::operator()(const CacheKey &k) const
{
    std::uint64_t h = k.unitaryHash;
    h = fnv1a(h, static_cast<std::uint64_t>(k.set));
    h = fnv1a(h, static_cast<std::uint64_t>(
                     static_cast<std::int64_t>(k.epsTier)));
    h = fnv1a(h, static_cast<std::uint64_t>(k.numQubits));
    h = fnv1a(h, static_cast<std::uint64_t>(k.maxQubits));
    h = fnv1a(h, static_cast<std::uint64_t>(k.maxEntanglers));
    h = fnv1a(h, static_cast<std::uint64_t>(k.finiteMaxGates));
    return static_cast<std::size_t>(h);
}

SynthCache::SynthCache(std::size_t shard_count)
    : shards_(std::make_unique<Shard[]>(shard_count == 0 ? 1 : shard_count)),
      shardCount_(shard_count == 0 ? 1 : shard_count)
{
}

SynthCache::Shard &
SynthCache::shardFor(const CacheKey &key) const
{
    return shards_[CacheKeyHash()(key) % shardCount_];
}

bool
SynthCache::lookup(const CacheKey &key, CacheEntry *out) const
{
    Shard &s = shardFor(key);
    support::MutexLock lock(s.mutex);
    const auto it = s.map.find(key);
    if (it == s.map.end())
        return false;
    *out = it->second;
    return true;
}

bool
SynthCache::store(const CacheKey &key, CacheEntry entry)
{
    Shard &s = shardFor(key);
    support::MutexLock lock(s.mutex);
    return s.map.emplace(key, std::move(entry)).second;
}

std::size_t
SynthCache::size() const
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < shardCount_; ++i) {
        support::MutexLock lock(shards_[i].mutex);
        n += shards_[i].map.size();
    }
    return n;
}

void
SynthCache::clear()
{
    for (std::size_t i = 0; i < shardCount_; ++i) {
        support::MutexLock lock(shards_[i].mutex);
        shards_[i].map.clear();
    }
}

namespace {

// One persisted record: an "entry" header line followed by one "gate"
// line per gate. Returns false at the first malformed field so the
// loader keeps whatever parsed cleanly before the damage.
bool
parseEntry(const std::string &header, std::istream &in, CacheKey *key,
           CacheEntry *entry)
{
    std::istringstream hs(header);
    std::string tag, set_name;
    int success = 0;
    long gate_count = 0;
    hs >> tag >> key->unitaryHash >> set_name >> key->epsTier >>
        key->numQubits >> key->maxQubits >> key->maxEntanglers >>
        key->finiteMaxGates >> success >> entry->distance >> gate_count;
    if (!hs || tag != "entry")
        return false;
    ir::GateSetKind set;
    if (!parseGateSet(set_name, &set))
        return false;
    key->set = static_cast<int>(set);
    if (key->numQubits < 1 || key->numQubits > 12)
        return false;
    if (gate_count < 0 || gate_count > 100000)
        return false;
    if (!std::isfinite(entry->distance) || entry->distance < 0)
        return false;
    entry->success = success != 0;
    entry->circuit = ir::Circuit(key->numQubits);
    for (long g = 0; g < gate_count; ++g) {
        std::string line;
        if (!std::getline(in, line))
            return false; // truncated mid-entry
        std::istringstream gs(line);
        std::string gtag, gname;
        gs >> gtag >> gname;
        ir::GateKind kind;
        if (!gs || gtag != "gate" || !ir::gateKindFromName(gname, &kind))
            return false;
        std::vector<int> qubits(
            static_cast<std::size_t>(ir::gateArity(kind)));
        std::vector<double> params(
            static_cast<std::size_t>(ir::gateParamCount(kind)));
        for (int &q : qubits)
            gs >> q;
        for (double &p : params)
            gs >> p;
        if (!gs)
            return false;
        // Circuit::add panics on bad indices; a corrupted file must
        // degrade to a partial load instead.
        bool valid = true;
        for (std::size_t i = 0; i < qubits.size() && valid; ++i) {
            if (qubits[i] < 0 || qubits[i] >= key->numQubits)
                valid = false;
            for (std::size_t j = i + 1; j < qubits.size() && valid; ++j)
                if (qubits[j] == qubits[i])
                    valid = false;
        }
        for (const double p : params)
            if (!std::isfinite(p))
                valid = false;
        if (!valid)
            return false;
        entry->circuit.add(kind, std::move(qubits), std::move(params));
    }
    return true;
}

} // namespace

bool
SynthCache::load(const std::string &path, std::string *err)
{
    std::ifstream in(path);
    if (!in)
        return true; // no persistent tier yet: nothing to merge
    std::string line;
    if (!std::getline(in, line) || line != kFileMagic) {
        if (err != nullptr)
            *err = support::strcat("unsupported cache format in ", path,
                                   " (want ", kFileMagic, ")");
        return false;
    }
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        CacheKey key;
        CacheEntry entry;
        if (!parseEntry(line, in, &key, &entry)) {
            if (err != nullptr)
                *err = support::strcat("corrupted record in ", path,
                                       "; kept entries parsed so far");
            return true; // tolerant: keep the clean prefix
        }
        store(key, std::move(entry));
    }
    return true;
}

bool
SynthCache::save(const std::string &path, std::string *err) const
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp);
        if (!out) {
            if (err != nullptr)
                *err = support::strcat("cannot write ", tmp);
            return false;
        }
        out << kFileMagic << "\n";
        char buf[64];
        for (std::size_t i = 0; i < shardCount_; ++i) {
            support::MutexLock lock(shards_[i].mutex);
            for (const auto &[key, entry] : shards_[i].map) {
                const auto set = static_cast<ir::GateSetKind>(key.set);
                // %.17g round-trips doubles exactly: warm runs must
                // replay the cold run's angles bit for bit.
                std::snprintf(buf, sizeof buf, "%.17g", entry.distance);
                out << "entry " << key.unitaryHash << ' '
                    << ir::gateSetName(set) << ' ' << key.epsTier << ' '
                    << key.numQubits << ' ' << key.maxQubits << ' '
                    << key.maxEntanglers << ' ' << key.finiteMaxGates
                    << ' ' << (entry.success ? 1 : 0) << ' ' << buf
                    << ' ' << entry.circuit.gates().size() << "\n";
                for (const ir::Gate &g : entry.circuit.gates()) {
                    out << "gate " << ir::gateName(g.kind);
                    for (const int q : g.qubits)
                        out << ' ' << q;
                    for (const double p : g.params) {
                        std::snprintf(buf, sizeof buf, "%.17g", p);
                        out << ' ' << buf;
                    }
                    out << "\n";
                }
            }
        }
        if (!out) {
            if (err != nullptr)
                *err = support::strcat("write failed for ", tmp);
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (err != nullptr)
            *err = support::strcat("rename failed for ", path);
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace synth
} // namespace guoq
