/** @file Bounded-queue synthesis worker pool. */

#include "synth/pool.h"

#include <algorithm>
#include <utility>

namespace guoq {
namespace synth {

Pool::Pool(int workers, std::size_t queue_capacity)
    : capacity_(std::max<std::size_t>(queue_capacity, 1))
{
    const int n = std::max(workers, 1);
    threads_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

Pool::~Pool()
{
    {
        support::MutexLock lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

bool
Pool::trySubmit(std::function<void()> task)
{
    {
        support::MutexLock lock(mutex_);
        if (stop_ || queue_.size() >= capacity_)
            return false;
        queue_.push_back(std::move(task));
        peak_ = std::max(peak_, queue_.size());
    }
    cv_.notify_one();
    return true;
}

std::size_t
Pool::queuePeak() const
{
    support::MutexLock lock(mutex_);
    return peak_;
}

void
Pool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            support::MutexLock lock(mutex_);
            while (!stop_ && queue_.empty())
                cv_.wait(mutex_);
            if (queue_.empty())
                return; // stop_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

} // namespace synth
} // namespace guoq
