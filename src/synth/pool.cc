/** @file Bounded-queue synthesis worker pool. */

#include "synth/pool.h"

#include <algorithm>
#include <utility>

namespace guoq {
namespace synth {

Pool::Pool(int workers, std::size_t queue_capacity)
    : capacity_(std::max<std::size_t>(queue_capacity, 1))
{
    const int n = std::max(workers, 1);
    threads_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

Pool::~Pool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

bool
Pool::trySubmit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_ || queue_.size() >= capacity_)
            return false;
        queue_.push_back(std::move(task));
        peak_ = std::max(peak_, queue_.size());
    }
    cv_.notify_one();
    return true;
}

std::size_t
Pool::queuePeak() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_;
}

void
Pool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

} // namespace synth
} // namespace guoq
