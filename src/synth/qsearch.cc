#include "synth/qsearch.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "linalg/decompose_1q.h"
#include "support/logging.h"
#include "synth/instantiate.h"

namespace guoq {
namespace synth {

namespace {

/** A structure under consideration: the entangler pair sequence. */
struct Node
{
    std::vector<std::pair<int, int>> entanglers;
    double distance = 1.0;
    std::vector<double> params;

    /** A* priority: achieved distance plus a small depth penalty that
     *  prefers shallower structures among near-equal fits. */
    double priority() const
    {
        return distance + 0.01 * static_cast<double>(entanglers.size());
    }
};

struct NodeWorse
{
    bool operator()(const Node &a, const Node &b) const
    {
        return a.priority() > b.priority();
    }
};

/** Materialize the ansatz for an entangler sequence. */
Ansatz
buildAnsatz(int num_qubits, const std::vector<std::pair<int, int>> &ents,
            bool use_rxx)
{
    Ansatz a = initialAnsatz(num_qubits);
    for (const auto &[qa, qb] : ents)
        appendEntanglerBlock(&a, qa, qb, use_rxx);
    return a;
}

/** Copy of @p a with the slot carrying @p param_index frozen. */
Ansatz
withSlotFixed(const Ansatz &a, int param_index, double value)
{
    Ansatz out(a.numQubits());
    for (const AnsatzGate &g : a.gates()) {
        if (g.paramIndex == param_index)
            out.addFixed(g.kind, g.qubits, value);
        else if (g.paramIndex >= 0)
            out.addParameterized(g.kind, g.qubits);
        else
            out.addFixed(g.kind, g.qubits, g.fixedParam);
    }
    return out;
}

/**
 * Greedy angle simplification: snap each free angle to its nearest
 * multiple of π/2 and freeze it whenever the remaining parameters can
 * still meet ε. Zeroed rotations vanish during native cleanup, so this
 * is what turns a fully-dressed ansatz into a lean circuit.
 */
void
simplifyAngles(Ansatz *ansatz, std::vector<double> *params,
               const linalg::ComplexMatrix &target, double eps,
               support::Rng &rng, const support::Deadline &deadline)
{
    bool progress = true;
    while (progress && !deadline.expired()) {
        progress = false;
        for (int p = 0; p < ansatz->numParams(); ++p) {
            if (deadline.expired())
                return;
            const double value = (*params)[static_cast<std::size_t>(p)];
            const double snapped =
                std::round(value / (M_PI / 2)) * (M_PI / 2);
            Ansatz trial = withSlotFixed(*ansatz, p, snapped);
            std::vector<double> hint = *params;
            hint.erase(hint.begin() + p);
            const InstantiateResult r = instantiate(
                trial, target, eps, 1, rng, deadline.slice(0.2), &hint);
            if (r.success) {
                *ansatz = std::move(trial);
                *params = r.params;
                progress = true;
                break; // param indices shifted: restart the sweep
            }
        }
    }
}

/** Exact 1-qubit synthesis via the ZYZ decomposition. */
SynthResult
synthesizeOneQubit(const linalg::ComplexMatrix &target)
{
    const linalg::EulerZyz e = linalg::decomposeZyz(target);
    SynthResult r;
    r.success = true;
    r.distance = 0;
    r.circuit = ir::Circuit(1);
    if (!ir::isZeroAngle(ir::normalizeAngle(e.delta)))
        r.circuit.rz(ir::normalizeAngle(e.delta), 0);
    if (!ir::isZeroAngle(ir::normalizeAngle(e.gamma)))
        r.circuit.ry(ir::normalizeAngle(e.gamma), 0);
    if (!ir::isZeroAngle(ir::normalizeAngle(e.beta)))
        r.circuit.rz(ir::normalizeAngle(e.beta), 0);
    return r;
}

} // namespace

SynthResult
qsearch(const linalg::ComplexMatrix &target, int num_qubits,
        const QSearchOptions &opts, support::Rng &rng)
{
    if (num_qubits < 1 || num_qubits > 4)
        support::panic("qsearch: supports 1-4 qubits");
    if (target.rows() != (std::size_t{1} << num_qubits))
        support::panic("qsearch: target size does not match qubit count");
    if (num_qubits == 1)
        return synthesizeOneQubit(target);

    // Candidate entangler positions: all ordered-canonical pairs.
    std::vector<std::pair<int, int>> pairs;
    for (int a = 0; a < num_qubits; ++a)
        for (int b = a + 1; b < num_qubits; ++b)
            pairs.emplace_back(a, b);

    const double eps = opts.epsilon > 0 ? opts.epsilon : 1e-7;

    SynthResult best;
    best.circuit = ir::Circuit(num_qubits);
    best.distance = 2.0; // above the metric's maximum of 1
    Node best_node;
    bool have_success = false;

    auto evaluate = [&](Node *node, const std::vector<double> *hint) {
        const Ansatz a =
            buildAnsatz(num_qubits, node->entanglers, opts.useRxx);
        const InstantiateResult r =
            instantiate(a, target, eps, opts.restartsPerNode, rng,
                        opts.deadline, hint);
        node->distance = r.hsDistanceValue;
        node->params = r.params;
        ++best.nodesExpanded;
        const bool ok = r.success;
        // Among successes prefer fewer entanglers; before any success
        // track the best distance seen.
        bool better;
        if (ok && have_success) {
            better = node->entanglers.size() <
                         best_node.entanglers.size() ||
                     (node->entanglers.size() ==
                          best_node.entanglers.size() &&
                      node->distance < best_node.distance);
        } else if (ok) {
            better = true;
        } else {
            better = !have_success && node->distance < best.distance;
        }
        if (better) {
            best.distance = node->distance;
            best_node = *node;
            have_success = have_success || ok;
            best.success = have_success;
        }
        return ok;
    };

    // Build the final circuit from the winning node, simplifying the
    // angle assignment first so the emitted circuit is lean.
    auto finalize = [&]() {
        Ansatz a = buildAnsatz(num_qubits, best_node.entanglers,
                               opts.useRxx);
        std::vector<double> params = best_node.params;
        if (best.success)
            simplifyAngles(&a, &params, target, eps, rng, opts.deadline);
        best.circuit = a.instantiate(params);
        return best;
    };

    // Phase 1 (when seeded): instantiate the original structure and
    // greedily delete entanglers while the fit still meets ε — the
    // QUEST/BQSKit gate-deletion strategy, starting from a structure
    // known to realize the target.
    if (!opts.seedEntanglers.empty() &&
        static_cast<int>(opts.seedEntanglers.size()) <=
            opts.maxSeedEntanglers) {
        Node seed;
        seed.entanglers = opts.seedEntanglers;
        if (evaluate(&seed, nullptr)) {
            const int per_block = opts.useRxx ? 7 : 6;
            // Hint for a structure with the entangler blocks at the
            // (sorted, distinct) positions in @p dels removed.
            auto hintWithout = [&](const std::vector<std::size_t> &dels) {
                std::vector<double> hint;
                hint.reserve(seed.params.size());
                std::size_t cursor = 0;
                hint.insert(hint.end(), seed.params.begin(),
                            seed.params.begin() + 3 * num_qubits);
                std::size_t offset =
                    static_cast<std::size_t>(3 * num_qubits);
                for (std::size_t b = 0; b < seed.entanglers.size();
                     ++b) {
                    const bool drop =
                        cursor < dels.size() && dels[cursor] == b;
                    if (drop)
                        ++cursor;
                    else
                        hint.insert(
                            hint.end(),
                            seed.params.begin() +
                                static_cast<std::ptrdiff_t>(offset),
                            seed.params.begin() +
                                static_cast<std::ptrdiff_t>(
                                    offset + per_block));
                    offset += static_cast<std::size_t>(per_block);
                }
                return hint;
            };
            auto tryDelete = [&](const std::vector<std::size_t> &dels) {
                Node trial;
                for (std::size_t b = 0; b < seed.entanglers.size();
                     ++b) {
                    if (std::find(dels.begin(), dels.end(), b) ==
                        dels.end())
                        trial.entanglers.push_back(seed.entanglers[b]);
                }
                const std::vector<double> hint = hintWithout(dels);
                if (evaluate(&trial, &hint)) {
                    seed = std::move(trial);
                    return true;
                }
                return false;
            };

            bool shrunk = true;
            while (shrunk && !seed.entanglers.empty() &&
                   !opts.deadline.expired()) {
                shrunk = false;
                // Single deletions first.
                for (std::size_t del = 0;
                     del < seed.entanglers.size() && !shrunk; ++del) {
                    if (opts.deadline.expired())
                        break;
                    shrunk = tryDelete({del});
                }
                if (shrunk)
                    continue;
                // Pair deletions: canceling entangler pairs can never
                // be removed one at a time (parity of entanglement),
                // so try same-pair two-at-a-time removals.
                for (std::size_t i = 0;
                     i < seed.entanglers.size() && !shrunk; ++i) {
                    for (std::size_t j = i + 1;
                         j < seed.entanglers.size() && !shrunk; ++j) {
                        if (seed.entanglers[i] != seed.entanglers[j])
                            continue;
                        if (opts.deadline.expired())
                            break;
                        shrunk = tryDelete({i, j});
                    }
                }
            }
            return finalize();
        }
    }

    // Phase 2: bottom-up A* from the empty structure.
    std::priority_queue<Node, std::vector<Node>, NodeWorse> frontier;
    Node root;
    if (evaluate(&root, nullptr))
        return finalize();
    frontier.push(std::move(root));

    while (!frontier.empty() && !opts.deadline.expired()) {
        const Node cur = frontier.top();
        frontier.pop();
        if (static_cast<int>(cur.entanglers.size()) >= opts.maxEntanglers)
            continue;
        for (const auto &pair : pairs) {
            if (opts.deadline.expired())
                break;
            Node child;
            child.entanglers = cur.entanglers;
            child.entanglers.push_back(pair);
            // Warm-start from the parent's fit: the new block's
            // parameters are randomized, the rest start near the
            // parent's optimum (the LEAP-style incremental idea).
            if (evaluate(&child, &cur.params))
                return finalize();
            frontier.push(std::move(child));
        }
    }
    return finalize();
}

} // namespace synth
} // namespace guoq
