/**
 * @file
 * A fixed-size synthesis worker pool with a bounded task queue.
 * Submission is non-blocking: trySubmit() refuses when the queue is
 * full so the optimizer loop keeps rewriting instead of stalling
 * behind slow synthesizer searches. The queue's high-water mark is
 * tracked for the stats plumbing.
 */

#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "support/mutex.h"

namespace guoq {
namespace synth {

/** N worker threads draining a bounded FIFO of tasks. */
class Pool
{
  public:
    explicit Pool(int workers, std::size_t queue_capacity = 64);

    /** Drains the queue, then joins all workers. */
    ~Pool();

    Pool(const Pool &) = delete;
    Pool &operator=(const Pool &) = delete;

    int workers() const { return static_cast<int>(threads_.size()); }

    /**
     * Enqueue @p task unless the queue is at capacity; returns false
     * (task dropped, not run) when full.
     */
    bool trySubmit(std::function<void()> task);

    /** Most tasks ever waiting in the queue at once. */
    std::size_t queuePeak() const;

  private:
    void workerLoop();

    // mutex_ guards the queue state below; threads_ and capacity_ are
    // written only in the constructor/destructor (no worker touches
    // them) and need no lock.
    mutable support::Mutex mutex_;
    support::CondVar cv_;
    std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
    std::vector<std::thread> threads_;
    std::size_t capacity_;
    std::size_t peak_ GUARDED_BY(mutex_) = 0;
    bool stop_ GUARDED_BY(mutex_) = false;
};

} // namespace synth
} // namespace guoq
