/**
 * @file
 * The synthesis service: the single seam every resynthesis request
 * flows through. It composes the content-addressed cache (cache.h)
 * with the shared worker pool (pool.h) in front of the raw
 * resynthesize() front end, and is shared across portfolio workers.
 *
 * Determinism contract:
 *  - cache disabled: the caller's RNG is passed straight through, so
 *    the legacy core::optimize() stream is bit-for-bit unchanged;
 *  - cache enabled: the service consumes exactly one fork() from the
 *    caller's RNG per request — hit or miss — so a warm run replays
 *    the cold run's parent stream exactly;
 *  - a hit re-validates the stored circuit's HS distance against the
 *    request's ε before use, so it can never loosen the error bound.
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <future>
#include <memory>
#include <optional>
#include <string>

#include "ir/circuit.h"
#include "support/rng.h"
#include "synth/cache.h"
#include "synth/pool.h"
#include "synth/resynth.h"

namespace guoq {
namespace synth {

/** One service-mediated resynthesis outcome, with cache attribution. */
struct SynthOutcome
{
    ResynthResult result;
    bool cacheHit = false;
    bool cacheMiss = false;
    bool cacheStore = false;
};

/** Per-run cache-traffic tally, accumulated by the consumers. */
struct ResynthCounters
{
    long hits = 0;
    long misses = 0;
    long stores = 0;

    void add(const SynthOutcome &o)
    {
        hits += o.cacheHit ? 1 : 0;
        misses += o.cacheMiss ? 1 : 0;
        stores += o.cacheStore ? 1 : 0;
    }
};

/** Cache + pool front end for resynthesize(). */
class SynthService
{
  public:
    SynthService() = default;

    void enableCache(bool on) { cacheEnabled_.store(on); }
    bool cacheEnabled() const { return cacheEnabled_.load(); }
    SynthCache &cache() { return cache_; }

    /**
     * (Re)size the worker pool; 0 tears it down, restoring the legacy
     * one-detached-thread-per-request behavior for async submits. Not
     * safe to call while optimizer runs are in flight.
     */
    void configurePool(int workers, std::size_t queue_capacity = 64);
    int poolWorkers() const { return pool_ ? pool_->workers() : 0; }
    long poolQueuePeak() const
    {
        return pool_ ? static_cast<long>(pool_->queuePeak()) : 0;
    }

    /** Synchronous cache-aware resynthesis (see contract above). */
    SynthOutcome resynthesize(const ir::Circuit &sub,
                              const ResynthOptions &opts,
                              support::Rng &rng);

    /**
     * Asynchronous resynthesis on the pool (or a detached std::async
     * when no pool is configured). @p rng must already be forked from
     * the caller's stream. Returns nullopt when the bounded queue is
     * full — the request is dropped, not queued.
     */
    std::optional<std::future<SynthOutcome>>
    submit(ir::Circuit sub, ResynthOptions opts, support::Rng rng);

    /** Enable the cache and merge `<dir>`'s persistent tier into it. */
    bool loadCacheDir(const std::string &dir, std::string *err = nullptr);

    /** Persist the cache to `<dir>` (atomic rewrite). */
    bool saveCacheDir(const std::string &dir,
                      std::string *err = nullptr) const;

    static std::string cacheFilePath(const std::string &dir);

    /** The process-wide instance consumers default to. */
    static SynthService &global();

  private:
    std::atomic<bool> cacheEnabled_{false};
    SynthCache cache_;
    std::unique_ptr<Pool> pool_;
};

} // namespace synth
} // namespace guoq
