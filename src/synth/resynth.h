/**
 * @file
 * The resynthesis front end: the paper's resynth : (C × R) → C
 * function (§4.1) — a thin wrapper that computes a subcircuit's
 * unitary, dispatches to the right synthesizer for the target gate
 * set, and re-expresses the result natively.
 */

#pragma once

#include "ir/circuit.h"
#include "ir/gate_set.h"
#include "support/rng.h"
#include "support/timer.h"

namespace guoq {
namespace synth {

/** Options for resynthesize(). */
struct ResynthOptions
{
    ir::GateSetKind targetSet = ir::GateSetKind::Nam;
    double epsilon = 0;          //!< allowed HS distance (0 = exact)
    int maxQubits = 3;           //!< refuse wider subcircuits
    support::Deadline deadline;  //!< per-call wall-clock budget
    int maxEntanglers = 10;      //!< continuous-search depth cap
    int finiteMaxGates = 24;     //!< finite-search length cap
};

/** Result of one resynthesis call. */
struct ResynthResult
{
    bool success = false;
    ir::Circuit circuit;   //!< native to targetSet when success
    double distance = 1.0; //!< achieved HS distance to the input
};

/**
 * Resynthesize @p sub (a standalone subcircuit) into a new circuit
 * whose unitary is within @p opts.epsilon of the original, expressed
 * in opts.targetSet's native gates. Fails (success = false) when the
 * synthesizer cannot meet the threshold within the deadline or the
 * subcircuit exceeds opts.maxQubits.
 */
ResynthResult resynthesize(const ir::Circuit &sub,
                           const ResynthOptions &opts, support::Rng &rng);

} // namespace synth
} // namespace guoq
