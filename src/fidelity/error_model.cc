#include "fidelity/error_model.h"

#include <cmath>

#include "support/logging.h"

namespace guoq {
namespace fidelity {

double
ErrorModel::gateError(const ir::Gate &g) const
{
    switch (g.arity()) {
      case 1:
        return oneQubitError;
      case 2:
        return twoQubitError;
      default:
        return threeQubitError;
    }
}

double
ErrorModel::circuitFidelity(const ir::Circuit &c) const
{
    double f = 1.0;
    for (const ir::Gate &g : c.gates())
        f *= 1.0 - gateError(g);
    return f;
}

double
ErrorModel::logFidelityCost(const ir::Circuit &c) const
{
    double cost = 0.0;
    for (const ir::Gate &g : c.gates())
        cost += -std::log1p(-gateError(g));
    return cost;
}

const ErrorModel &
errorModelFor(ir::GateSetKind set)
{
    // Published-magnitude rates; see the file comment for provenance.
    static const ErrorModel superconducting{2.5e-4, 7.5e-3, 2.5e-2};
    static const ErrorModel ionTrap{2.0e-4, 4.0e-3, 1.5e-2};
    static const ErrorModel faultTolerant{1.0e-6, 5.0e-6, 2.0e-5};
    switch (set) {
      case ir::GateSetKind::Ibmq20:
      case ir::GateSetKind::IbmEagle:
      case ir::GateSetKind::Nam:
        return superconducting;
      case ir::GateSetKind::IonQ:
        return ionTrap;
      case ir::GateSetKind::CliffordT:
        return faultTolerant;
    }
    support::panic("errorModelFor: unknown gate set");
}

} // namespace fidelity
} // namespace guoq
