/**
 * @file
 * Gate-error models and circuit fidelity (paper §6 "Metrics").
 *
 * The paper computes fidelity from device calibration data (IBM
 * Washington for the superconducting sets, IonQ Forte for the ion
 * trap). Those feeds are proprietary snapshots; we substitute tables
 * with published-magnitude error rates — fidelity = Π(1 - err) only
 * needs realistic relative 1q/2q error magnitudes, which is what makes
 * two-qubit reduction the dominant objective.
 */

#pragma once

#include "ir/circuit.h"
#include "ir/gate_set.h"

namespace guoq {
namespace fidelity {

/** Per-gate-class error rates. */
struct ErrorModel
{
    double oneQubitError = 0;
    double twoQubitError = 0;
    double threeQubitError = 0; //!< for not-yet-decomposed circuits

    /** Error rate of one gate. */
    double gateError(const ir::Gate &g) const;

    /** Circuit fidelity: Π over gates of (1 - error). */
    double circuitFidelity(const ir::Circuit &c) const;

    /**
     * -log(fidelity) = Σ -log(1 - err): an additive cost that orders
     * circuits identically to fidelity and is safe to accumulate.
     */
    double logFidelityCost(const ir::Circuit &c) const;
};

/**
 * The calibration-magnitude model for @p set:
 *   superconducting (ibmq20, ibm-eagle, nam-as-abstract): 2q ≈ 7.5e-3,
 *   1q ≈ 2.5e-4 (IBM Washington scale);
 *   ion trap (ionq): 2q ≈ 4e-3, 1q ≈ 2e-4 (IonQ Forte scale);
 *   Clifford+T: logical rates, 2q-dominated.
 */
const ErrorModel &errorModelFor(ir::GateSetKind set);

} // namespace fidelity
} // namespace guoq
