/**
 * @file
 * Circuit-to-unitary evaluation (the semantics function of paper §3).
 *
 * Bit convention: circuit qubit 0 is the most significant bit of the
 * 2^n-dimensional index, matching the paper's Example 3.1 where
 * U_C = U_CX (I ⊗ U_T) for C = T q1; CX q0 q1.
 *
 * Complexity is O(4^n) memory, so this is reserved for subcircuits
 * (resynthesis, ≤ 4 qubits) and for test oracles (≤ 10 qubits).
 *
 * circuitDistance/circuitsEquivalent are the primitives behind the
 * verification layer's `dense` backend; consumers that need to scale
 * past this cap should go through verify/checker.h, whose `sampling`
 * backend estimates the same distance on a statevector budget.
 */

#pragma once

#include "ir/circuit.h"
#include "linalg/complex_matrix.h"

namespace guoq {
namespace sim {

/** Hard cap for full-unitary evaluation (memory safety). */
constexpr int kMaxUnitaryQubits = 12;

/**
 * Apply @p gate (acting on circuit qubits @p gate.qubits) to every
 * column of @p u in place; i.e. u <- G_full * u. @p num_qubits is the
 * circuit width (u is 2^n x 2^n).
 */
void applyGate(linalg::ComplexMatrix &u, const ir::Gate &gate,
               int num_qubits);

/** The full 2^n x 2^n unitary U_C of @p c. */
linalg::ComplexMatrix circuitUnitary(const ir::Circuit &c);

/** Hilbert–Schmidt distance between two circuits' unitaries. */
double circuitDistance(const ir::Circuit &a, const ir::Circuit &b);

/** ε-equivalence of circuits (Def. 3.3) via full unitaries. */
bool circuitsEquivalent(const ir::Circuit &a, const ir::Circuit &b,
                        double eps = 1e-9);

} // namespace sim
} // namespace guoq
