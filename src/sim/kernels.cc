#include "sim/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <utility>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define GUOQ_KERNELS_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define GUOQ_KERNELS_NEON 1
#include <arm_neon.h>
#endif

namespace guoq {
namespace sim {
namespace kernels {

namespace {

enum class Backend { Scalar, Avx2, Neon };

Backend
detectBackend()
{
#if defined(GUOQ_KERNELS_X86)
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
        return Backend::Avx2;
#elif defined(GUOQ_KERNELS_NEON)
    return Backend::Neon;
#endif
    return Backend::Scalar;
}

SimdPolicy
initialPolicy()
{
    const char *env = std::getenv("GUOQ_SIM_SIMD");
    if (env && (std::strcmp(env, "scalar") == 0 ||
                std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0))
        return SimdPolicy::ForceScalar;
    return SimdPolicy::Auto;
}

std::atomic<SimdPolicy> g_policy{initialPolicy()};

Backend
activeBackend()
{
    static const Backend detected = detectBackend();
    return g_policy.load(std::memory_order_relaxed) ==
                   SimdPolicy::ForceScalar
               ? Backend::Scalar
               : detected;
}

bool
isOne(Complex c)
{
    return c.real() == 1.0 && c.imag() == 0.0;
}

// --- scalar reference kernels ---------------------------------------

void
dense1qScalar(Complex *amps, std::size_t n, std::size_t s,
              const Complex m[4])
{
    for (std::size_t g = 0; g < n; g += 2 * s) {
        for (std::size_t i = g; i < g + s; ++i) {
            const Complex a0 = amps[i];
            const Complex a1 = amps[i + s];
            amps[i] = m[0] * a0 + m[1] * a1;
            amps[i + s] = m[2] * a0 + m[3] * a1;
        }
    }
}

void
scaleRangeScalar(Complex *amps, std::size_t n, Complex s)
{
    for (std::size_t i = 0; i < n; ++i)
        amps[i] *= s;
}

// --- AVX2(+FMA) kernels ---------------------------------------------
//
// One __m256d holds two complex doubles [r0, i0, r1, i1]. For a
// complex scalar m = mr + i*mi, a*m per lane pair is
// fmaddsub(a, mr, swap(a)*mi): even lanes r*mr - i*mi, odd lanes
// i*mr + r*mi. Compiled with a per-function target attribute so the
// rest of the tree needs no -mavx2; only reached when cpuid reports
// AVX2+FMA at runtime.

#if defined(GUOQ_KERNELS_X86)

__attribute__((target("avx2,fma"))) inline __m256d
cmulAvx2(__m256d a, __m256d mr, __m256d mi)
{
    const __m256d swapped = _mm256_permute_pd(a, 0x5);
    return _mm256_fmaddsub_pd(a, mr, _mm256_mul_pd(swapped, mi));
}

__attribute__((target("avx2,fma"))) void
dense1qAvx2(Complex *amps, std::size_t n, std::size_t s,
            const Complex m[4])
{
    if (s < 2) { // interleaved pairs: no contiguous lanes to fill
        dense1qScalar(amps, n, s, m);
        return;
    }
    const __m256d m0r = _mm256_set1_pd(m[0].real());
    const __m256d m0i = _mm256_set1_pd(m[0].imag());
    const __m256d m1r = _mm256_set1_pd(m[1].real());
    const __m256d m1i = _mm256_set1_pd(m[1].imag());
    const __m256d m2r = _mm256_set1_pd(m[2].real());
    const __m256d m2i = _mm256_set1_pd(m[2].imag());
    const __m256d m3r = _mm256_set1_pd(m[3].real());
    const __m256d m3i = _mm256_set1_pd(m[3].imag());
    double *d = reinterpret_cast<double *>(amps);
    for (std::size_t g = 0; g < n; g += 2 * s) {
        double *lo = d + 2 * g;
        double *hi = lo + 2 * s;
        for (std::size_t i = 0; i < 2 * s; i += 4) {
            const __m256d a0 = _mm256_loadu_pd(lo + i);
            const __m256d a1 = _mm256_loadu_pd(hi + i);
            const __m256d r0 = _mm256_add_pd(cmulAvx2(a0, m0r, m0i),
                                             cmulAvx2(a1, m1r, m1i));
            const __m256d r1 = _mm256_add_pd(cmulAvx2(a0, m2r, m2i),
                                             cmulAvx2(a1, m3r, m3i));
            _mm256_storeu_pd(lo + i, r0);
            _mm256_storeu_pd(hi + i, r1);
        }
    }
}

#endif // GUOQ_KERNELS_X86

// --- NEON kernels ---------------------------------------------------
//
// float64x2_t holds one complex double [r, i]; a*m is
// fma(a*mr, rev(a), [-mi, mi]).

#if defined(GUOQ_KERNELS_NEON)

inline float64x2_t
cmulNeon(float64x2_t a, double mr, float64x2_t miNeg)
{
    return vfmaq_f64(vmulq_n_f64(a, mr), vextq_f64(a, a, 1), miNeg);
}

void
dense1qNeon(Complex *amps, std::size_t n, std::size_t s,
            const Complex m[4])
{
    const float64x2_t m0i = {-m[0].imag(), m[0].imag()};
    const float64x2_t m1i = {-m[1].imag(), m[1].imag()};
    const float64x2_t m2i = {-m[2].imag(), m[2].imag()};
    const float64x2_t m3i = {-m[3].imag(), m[3].imag()};
    double *d = reinterpret_cast<double *>(amps);
    for (std::size_t g = 0; g < n; g += 2 * s) {
        for (std::size_t i = g; i < g + s; ++i) {
            const float64x2_t a0 = vld1q_f64(d + 2 * i);
            const float64x2_t a1 = vld1q_f64(d + 2 * (i + s));
            vst1q_f64(d + 2 * i,
                      vaddq_f64(cmulNeon(a0, m[0].real(), m0i),
                                cmulNeon(a1, m[1].real(), m1i)));
            vst1q_f64(d + 2 * (i + s),
                      vaddq_f64(cmulNeon(a0, m[2].real(), m2i),
                                cmulNeon(a1, m[3].real(), m3i)));
        }
    }
}

#endif // GUOQ_KERNELS_NEON

} // namespace

void
setSimdPolicy(SimdPolicy policy)
{
    g_policy.store(policy, std::memory_order_relaxed);
}

SimdPolicy
simdPolicy()
{
    return g_policy.load(std::memory_order_relaxed);
}

const char *
backendName()
{
    switch (activeBackend()) {
      case Backend::Avx2:
        return "avx2";
      case Backend::Neon:
        return "neon";
      case Backend::Scalar:
        return "scalar";
    }
    return "scalar";
}

void
applyDense1q(Complex *amps, std::size_t n, int bit, const Complex m[4])
{
    const std::size_t s = std::size_t{1} << bit;
    switch (activeBackend()) {
#if defined(GUOQ_KERNELS_X86)
      case Backend::Avx2:
        dense1qAvx2(amps, n, s, m);
        return;
#endif
#if defined(GUOQ_KERNELS_NEON)
      case Backend::Neon:
        dense1qNeon(amps, n, s, m);
        return;
#endif
      default:
        dense1qScalar(amps, n, s, m);
        return;
    }
}

void
scaleRange(Complex *amps, std::size_t n, Complex s)
{
    // Deliberately scalar: one multiply per 16 loaded bytes is
    // memory-bound, and keeping it scalar preserves the bit-for-bit
    // equivalence of every diagonal kernel with the generic apply
    // (FMA would reassociate the complex multiply's rounding).
    scaleRangeScalar(amps, n, s);
}

void
applyDiag1q(Complex *amps, std::size_t n, int bit, Complex d0,
            Complex d1)
{
    const std::size_t s = std::size_t{1} << bit;
    const bool scale0 = !isOne(d0);
    const bool scale1 = !isOne(d1);
    if (!scale0 && !scale1)
        return;
    for (std::size_t g = 0; g < n; g += 2 * s) {
        if (scale0)
            scaleRange(amps + g, s, d0);
        if (scale1)
            scaleRange(amps + g + s, s, d1);
    }
}

void
applyPermPhase1q(Complex *amps, std::size_t n, int bit, Complex p0,
                 Complex p1)
{
    const std::size_t s = std::size_t{1} << bit;
    if (isOne(p0) && isOne(p1)) { // X: pure swap, no multiplies
        for (std::size_t g = 0; g < n; g += 2 * s)
            for (std::size_t i = g; i < g + s; ++i)
                std::swap(amps[i], amps[i + s]);
        return;
    }
    for (std::size_t g = 0; g < n; g += 2 * s) {
        for (std::size_t i = g; i < g + s; ++i) {
            const Complex lo = amps[i];
            amps[i] = p0 * amps[i + s];
            amps[i + s] = p1 * lo;
        }
    }
}

void
applyPhaseMask(Complex *amps, std::size_t n, std::size_t mask,
               Complex phase)
{
    // i = (i + 1) | mask enumerates exactly the indices containing
    // every bit of mask, in increasing order.
    for (std::size_t i = mask; i < n; i = (i + 1) | mask)
        amps[i] *= phase;
}

void
applyCtrlX(Complex *amps, std::size_t n, std::size_t ctrlMask,
           int targetBit)
{
    const std::size_t t = std::size_t{1} << targetBit;
    const std::size_t m = ctrlMask | t;
    // Enumerate the control-satisfied indices with the target bit set;
    // each swaps with its target-clear partner.
    for (std::size_t i = m; i < n; i = (i + 1) | m)
        std::swap(amps[i ^ t], amps[i]);
}

void
applySwapBits(Complex *amps, std::size_t n, int bitA, int bitB)
{
    const std::size_t sa = std::size_t{1} << bitA;
    const std::size_t sb = std::size_t{1} << bitB;
    // Indices with bitA set: those with bitB clear swap with their
    // (bitA clear, bitB set) partner; bitB-set ones already swapped.
    for (std::size_t i = sa; i < n; i = (i + 1) | sa)
        if (!(i & sb))
            std::swap(amps[i], amps[i ^ sa ^ sb]);
}

void
applyDense2q(Complex *amps, std::size_t n, int bitMsb, int bitLsb,
             const Complex m[16])
{
    const std::size_t s0 = std::size_t{1} << bitMsb; // local index MSB
    const std::size_t s1 = std::size_t{1} << bitLsb;
    const std::size_t hi = s0 > s1 ? s0 : s1;
    const std::size_t lo = s0 > s1 ? s1 : s0;
    for (std::size_t g = 0; g < n; g += 2 * hi) {
        for (std::size_t h = g; h < g + hi; h += 2 * lo) {
            for (std::size_t base = h; base < h + lo; ++base) {
                const Complex a0 = amps[base];
                const Complex a1 = amps[base + s1];
                const Complex a2 = amps[base + s0];
                const Complex a3 = amps[base + s0 + s1];
                amps[base] =
                    m[0] * a0 + m[1] * a1 + m[2] * a2 + m[3] * a3;
                amps[base + s1] =
                    m[4] * a0 + m[5] * a1 + m[6] * a2 + m[7] * a3;
                amps[base + s0] =
                    m[8] * a0 + m[9] * a1 + m[10] * a2 + m[11] * a3;
                amps[base + s0 + s1] =
                    m[12] * a0 + m[13] * a1 + m[14] * a2 + m[15] * a3;
            }
        }
    }
}

} // namespace kernels
} // namespace sim
} // namespace guoq
