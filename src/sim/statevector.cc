#include "sim/statevector.h"

#include <algorithm>
#include <cmath>

#include "sim/kernels.h"
#include "support/logging.h"

namespace guoq {
namespace sim {

using linalg::Complex;

namespace {

/**
 * One pre-analyzed gate application, the unit the circuit scheduler
 * works in: which kernel runs, its bit positions/mask, and its
 * constants. Generic carries the original gate for the legacy
 * span x span fallback (gate kinds without a specialized kernel).
 */
struct KernelOp
{
    enum class Kind
    {
        Dense1q,     //!< m[0..4) 2x2 on `bit`
        Diag1q,      //!< diag(m[0], m[1]) on `bit`
        PermPhase1q, //!< out_lo = m[0]*in_hi, out_hi = m[1]*in_lo
        PhaseMask,   //!< amps with all `mask` bits set *= m[0]
        CtrlX,       //!< X on `bit` controlled on `mask`
        SwapBits,    //!< swap `bit` and `bit2` values
        Dense2q,     //!< m[0..16) 4x4 on (`bit` msb, `bit2` lsb)
        Generic,     //!< legacy matrix apply of `generic`
    };

    Kind kind = Kind::Generic;
    int bit = 0;
    int bit2 = 0;
    std::size_t mask = 0;
    Complex m[16];
    ir::Gate generic;
};

bool
isDiagonalKind(ir::GateKind k)
{
    switch (k) {
      case ir::GateKind::Z:
      case ir::GateKind::S:
      case ir::GateKind::Sdg:
      case ir::GateKind::T:
      case ir::GateKind::Tdg:
      case ir::GateKind::Rz:
      case ir::GateKind::U1:
        return true;
      default:
        return false;
    }
}

/** Pick the kernel for one gate (bit positions from the qubit 0 =
 *  MSB convention shared with unitary_sim). */
KernelOp
classify(const ir::Gate &gate, int num_qubits)
{
    const auto bitOf = [&](std::size_t k) {
        return num_qubits - 1 - gate.qubits[k];
    };
    KernelOp op;
    switch (gate.kind) {
      case ir::GateKind::Z:
      case ir::GateKind::S:
      case ir::GateKind::Sdg:
      case ir::GateKind::T:
      case ir::GateKind::Tdg:
      case ir::GateKind::Rz:
      case ir::GateKind::U1: {
        const linalg::ComplexMatrix g = gate.matrix();
        op.kind = KernelOp::Kind::Diag1q;
        op.bit = bitOf(0);
        op.m[0] = g(0, 0);
        op.m[1] = g(1, 1);
        return op;
      }
      case ir::GateKind::X:
        op.kind = KernelOp::Kind::PermPhase1q;
        op.bit = bitOf(0);
        op.m[0] = 1.0;
        op.m[1] = 1.0;
        return op;
      case ir::GateKind::Y:
        op.kind = KernelOp::Kind::PermPhase1q;
        op.bit = bitOf(0);
        op.m[0] = Complex(0, -1);
        op.m[1] = Complex(0, 1);
        return op;
      case ir::GateKind::CX:
        op.kind = KernelOp::Kind::CtrlX;
        op.mask = std::size_t{1} << bitOf(0);
        op.bit = bitOf(1);
        return op;
      case ir::GateKind::CCX:
        op.kind = KernelOp::Kind::CtrlX;
        op.mask = (std::size_t{1} << bitOf(0)) |
                  (std::size_t{1} << bitOf(1));
        op.bit = bitOf(2);
        return op;
      case ir::GateKind::CZ:
      case ir::GateKind::CCZ:
      case ir::GateKind::CP: {
        op.kind = KernelOp::Kind::PhaseMask;
        for (std::size_t k = 0; k < gate.qubits.size(); ++k)
            op.mask |= std::size_t{1} << bitOf(k);
        op.m[0] = gate.kind == ir::GateKind::CP
                      ? std::polar(1.0, gate.params[0])
                      : Complex(-1.0);
        return op;
      }
      case ir::GateKind::Swap:
        op.kind = KernelOp::Kind::SwapBits;
        op.bit = bitOf(0);
        op.bit2 = bitOf(1);
        return op;
      case ir::GateKind::Rxx: {
        const linalg::ComplexMatrix g = gate.matrix();
        op.kind = KernelOp::Kind::Dense2q;
        op.bit = bitOf(0);
        op.bit2 = bitOf(1);
        for (std::size_t r = 0; r < 4; ++r)
            for (std::size_t c = 0; c < 4; ++c)
                op.m[4 * r + c] = g(r, c);
        return op;
      }
      default:
        break;
    }
    if (gate.arity() == 1) {
        const linalg::ComplexMatrix g = gate.matrix();
        op.kind = KernelOp::Kind::Dense1q;
        op.bit = bitOf(0);
        op.m[0] = g(0, 0);
        op.m[1] = g(0, 1);
        op.m[2] = g(1, 0);
        op.m[3] = g(1, 1);
        return op;
    }
    op.kind = KernelOp::Kind::Generic;
    op.generic = gate;
    return op;
}

bool
isOne(Complex c)
{
    return c.real() == 1.0 && c.imag() == 0.0;
}

/**
 * Run one non-Generic op on the chunk amps[0..n) whose absolute base
 * index is @p base (0 and n = dim for unblocked application). Ops
 * whose strides reach past the chunk must be diagonal-shaped — the
 * scheduler's isBlockLocal() guarantees it — and resolve their high
 * bits against @p base.
 */
void
applyOp(Complex *amps, std::size_t n, std::size_t base,
        const KernelOp &op)
{
    switch (op.kind) {
      case KernelOp::Kind::Dense1q:
        kernels::applyDense1q(amps, n, op.bit, op.m);
        return;
      case KernelOp::Kind::Diag1q:
        if ((std::size_t{1} << op.bit) < n) {
            kernels::applyDiag1q(amps, n, op.bit, op.m[0], op.m[1]);
        } else {
            const Complex d =
                (base >> op.bit) & 1 ? op.m[1] : op.m[0];
            if (!isOne(d))
                kernels::scaleRange(amps, n, d);
        }
        return;
      case KernelOp::Kind::PermPhase1q:
        kernels::applyPermPhase1q(amps, n, op.bit, op.m[0], op.m[1]);
        return;
      case KernelOp::Kind::PhaseMask: {
        const std::size_t high = op.mask & ~(n - 1);
        if ((base & high) != high)
            return;
        const std::size_t low = op.mask & (n - 1);
        if (low)
            kernels::applyPhaseMask(amps, n, low, op.m[0]);
        else
            kernels::scaleRange(amps, n, op.m[0]);
        return;
      }
      case KernelOp::Kind::CtrlX: {
        const std::size_t high = op.mask & ~(n - 1);
        if ((base & high) == high)
            kernels::applyCtrlX(amps, n, op.mask & (n - 1), op.bit);
        return;
      }
      case KernelOp::Kind::SwapBits:
        kernels::applySwapBits(amps, n, op.bit, op.bit2);
        return;
      case KernelOp::Kind::Dense2q:
        kernels::applyDense2q(amps, n, op.bit, op.bit2, op.m);
        return;
      case KernelOp::Kind::Generic:
        support::panic("StateVector: Generic op reached applyOp");
    }
}

/** Can @p op run chunk-by-chunk on 2^kBlockBits-amplitude chunks?
 *  Diagonal-shaped ops always can (high bits resolve against the
 *  chunk base); amplitude-moving ops need every stride inside the
 *  chunk. */
bool
isBlockLocal(const KernelOp &op)
{
    switch (op.kind) {
      case KernelOp::Kind::Diag1q:
      case KernelOp::Kind::PhaseMask:
        return true;
      case KernelOp::Kind::Dense1q:
      case KernelOp::Kind::PermPhase1q:
      case KernelOp::Kind::CtrlX:
        return op.bit < kernels::kBlockBits;
      case KernelOp::Kind::SwapBits:
      case KernelOp::Kind::Dense2q:
        return op.bit < kernels::kBlockBits &&
               op.bit2 < kernels::kBlockBits;
      case KernelOp::Kind::Generic:
        return false;
    }
    return false;
}

/** Pending fused run of 1q gates on one qubit. */
struct Pending
{
    bool active = false;
    bool allDiag = true;
    int count = 0;
    Complex m[4]; //!< accumulated 2x2, row-major
    ir::Gate first;
};

} // namespace

StateVector::StateVector(int num_qubits)
    : numQubits_(num_qubits),
      amps_(std::size_t{1} << num_qubits, Complex{})
{
    if (num_qubits < 0 || num_qubits > 24)
        support::panic("StateVector: unsupported qubit count");
    amps_[0] = 1.0;
}

void
StateVector::applyGeneric(const ir::Gate &gate)
{
    const int m = gate.arity();
    const std::size_t span = std::size_t{1} << m;
    const auto g = gate.matrix();

    std::vector<int> bitpos(static_cast<std::size_t>(m));
    for (int k = 0; k < m; ++k)
        bitpos[static_cast<std::size_t>(k)] =
            numQubits_ - 1 - gate.qubits[static_cast<std::size_t>(k)];

    std::vector<std::size_t> offset(span, 0);
    for (std::size_t a = 0; a < span; ++a)
        for (int k = 0; k < m; ++k)
            if (a & (std::size_t{1} << (m - 1 - k)))
                offset[a] |= std::size_t{1}
                             << bitpos[static_cast<std::size_t>(k)];

    std::vector<int> sorted_pos = bitpos;
    std::sort(sorted_pos.begin(), sorted_pos.end());

    const std::size_t groups = amps_.size() >> m;
    std::vector<Complex> in(span), out(span);
    for (std::size_t i = 0; i < groups; ++i) {
        std::size_t base = i;
        for (int p : sorted_pos) {
            const std::size_t low = base & ((std::size_t{1} << p) - 1);
            base = ((base >> p) << (p + 1)) | low;
        }
        for (std::size_t a = 0; a < span; ++a)
            in[a] = amps_[base + offset[a]];
        for (std::size_t a = 0; a < span; ++a) {
            Complex acc = 0;
            for (std::size_t b = 0; b < span; ++b)
                acc += g(a, b) * in[b];
            out[a] = acc;
        }
        for (std::size_t a = 0; a < span; ++a)
            amps_[base + offset[a]] = out[a];
    }
}

void
StateVector::applyGeneric(const ir::Circuit &c)
{
    if (c.numQubits() != numQubits_)
        support::panic(support::strcat(
            "StateVector::applyGeneric: circuit has ", c.numQubits(),
            " qubits, state has ", numQubits_));
    for (const ir::Gate &g : c.gates())
        applyGeneric(g);
}

void
StateVector::apply(const ir::Gate &gate)
{
    const KernelOp op = classify(gate, numQubits_);
    if (op.kind == KernelOp::Kind::Generic) {
        applyGeneric(gate);
        return;
    }
    applyOp(amps_.data(), amps_.size(), 0, op);
}

void
StateVector::apply(const ir::Circuit &c)
{
    if (c.numQubits() != numQubits_)
        support::panic(support::strcat("StateVector::apply: circuit has ",
                                       c.numQubits(), " qubits, state has ",
                                       numQubits_));

    // 1) Fuse: collapse each run of 1q gates on one qubit into a
    // single op — one diagonal product when every factor is diagonal,
    // one dense 2x2 otherwise. A single-gate run keeps its exact
    // specialized kernel (bit-for-bit the generic arithmetic for
    // diagonal/permutation kinds); a multi-qubit gate flushes the
    // runs of the qubits it touches first.
    std::vector<KernelOp> ops;
    ops.reserve(c.size());
    std::vector<Pending> pending(
        static_cast<std::size_t>(numQubits_));

    const auto flush = [&](int q) {
        Pending &p = pending[static_cast<std::size_t>(q)];
        if (!p.active)
            return;
        if (p.count == 1) {
            ops.push_back(classify(p.first, numQubits_));
        } else {
            KernelOp op;
            op.bit = numQubits_ - 1 - q;
            if (p.allDiag) {
                op.kind = KernelOp::Kind::Diag1q;
                op.m[0] = p.m[0];
                op.m[1] = p.m[3];
            } else {
                op.kind = KernelOp::Kind::Dense1q;
                op.m[0] = p.m[0];
                op.m[1] = p.m[1];
                op.m[2] = p.m[2];
                op.m[3] = p.m[3];
            }
            ops.push_back(op);
        }
        p = Pending{};
    };

    for (const ir::Gate &g : c.gates()) {
        if (g.arity() == 1) {
            Pending &p = pending[static_cast<std::size_t>(g.qubits[0])];
            const linalg::ComplexMatrix gm = g.matrix();
            if (!p.active) {
                p.active = true;
                p.allDiag = isDiagonalKind(g.kind);
                p.count = 1;
                p.first = g;
                p.m[0] = gm(0, 0);
                p.m[1] = gm(0, 1);
                p.m[2] = gm(1, 0);
                p.m[3] = gm(1, 1);
            } else {
                // Later gate multiplies from the left: m <- gm * m.
                const Complex n0 = gm(0, 0) * p.m[0] + gm(0, 1) * p.m[2];
                const Complex n1 = gm(0, 0) * p.m[1] + gm(0, 1) * p.m[3];
                const Complex n2 = gm(1, 0) * p.m[0] + gm(1, 1) * p.m[2];
                const Complex n3 = gm(1, 0) * p.m[1] + gm(1, 1) * p.m[3];
                p.m[0] = n0;
                p.m[1] = n1;
                p.m[2] = n2;
                p.m[3] = n3;
                p.allDiag = p.allDiag && isDiagonalKind(g.kind);
                ++p.count;
            }
        } else {
            for (int q : g.qubits)
                flush(q);
            ops.push_back(classify(g, numQubits_));
        }
    }
    for (int q = 0; q < numQubits_; ++q)
        flush(q);

    // 2) Execute: runs of block-local ops make one pass over the
    // amplitudes, chunk by cache-sized chunk, applying every op of
    // the run while the chunk is resident; everything else (ops whose
    // strides cross chunks, generic fallbacks) applies over the full
    // vector individually. Chunking never changes per-element
    // arithmetic, so this is bit-identical to unblocked application.
    Complex *data = amps_.data();
    const std::size_t dim = amps_.size();
    const std::size_t block = std::min(
        dim, std::size_t{1} << kernels::kBlockBits);

    std::size_t i = 0;
    while (i < ops.size()) {
        if (ops[i].kind == KernelOp::Kind::Generic) {
            applyGeneric(ops[i].generic);
            ++i;
            continue;
        }
        if (!isBlockLocal(ops[i])) {
            applyOp(data, dim, 0, ops[i]);
            ++i;
            continue;
        }
        std::size_t j = i + 1;
        while (j < ops.size() &&
               ops[j].kind != KernelOp::Kind::Generic &&
               isBlockLocal(ops[j]))
            ++j;
        if (j - i == 1 || block == dim) {
            for (std::size_t k = i; k < j; ++k)
                applyOp(data, dim, 0, ops[k]);
        } else {
            for (std::size_t base = 0; base < dim; base += block)
                for (std::size_t k = i; k < j; ++k)
                    applyOp(data + base, block, base, ops[k]);
        }
        i = j;
    }
}

double
StateVector::probability(std::size_t index) const
{
    if (index >= amps_.size())
        support::panic(support::strcat(
            "StateVector::probability: index ", index,
            " out of range for a ", numQubits_, "-qubit state (dim ",
            amps_.size(), ")"));
    return std::norm(amps_[index]);
}

Complex
StateVector::innerProduct(const StateVector &other) const
{
    if (other.numQubits_ != numQubits_)
        support::panic(support::strcat(
            "StateVector::innerProduct: width mismatch (this has ",
            numQubits_, " qubits, other has ", other.numQubits_, ")"));
    Complex acc = 0;
    for (std::size_t i = 0; i < amps_.size(); ++i)
        acc += std::conj(amps_[i]) * other.amps_[i];
    return acc;
}

double
StateVector::overlap(const StateVector &other) const
{
    return std::abs(innerProduct(other));
}

StateVector
runCircuit(const ir::Circuit &c)
{
    StateVector sv(c.numQubits());
    sv.apply(c);
    return sv;
}

} // namespace sim
} // namespace guoq
