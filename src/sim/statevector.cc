#include "sim/statevector.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"

namespace guoq {
namespace sim {

using linalg::Complex;

StateVector::StateVector(int num_qubits)
    : numQubits_(num_qubits),
      amps_(std::size_t{1} << num_qubits, Complex{})
{
    if (num_qubits < 0 || num_qubits > 24)
        support::panic("StateVector: unsupported qubit count");
    amps_[0] = 1.0;
}

void
StateVector::apply(const ir::Gate &gate)
{
    const int m = gate.arity();
    const std::size_t span = std::size_t{1} << m;
    const auto g = gate.matrix();

    std::vector<int> bitpos(static_cast<std::size_t>(m));
    for (int k = 0; k < m; ++k)
        bitpos[static_cast<std::size_t>(k)] =
            numQubits_ - 1 - gate.qubits[static_cast<std::size_t>(k)];

    std::vector<std::size_t> offset(span, 0);
    for (std::size_t a = 0; a < span; ++a)
        for (int k = 0; k < m; ++k)
            if (a & (std::size_t{1} << (m - 1 - k)))
                offset[a] |= std::size_t{1}
                             << bitpos[static_cast<std::size_t>(k)];

    std::vector<int> sorted_pos = bitpos;
    std::sort(sorted_pos.begin(), sorted_pos.end());

    const std::size_t groups = amps_.size() >> m;
    std::vector<Complex> in(span), out(span);
    for (std::size_t i = 0; i < groups; ++i) {
        std::size_t base = i;
        for (int p : sorted_pos) {
            const std::size_t low = base & ((std::size_t{1} << p) - 1);
            base = ((base >> p) << (p + 1)) | low;
        }
        for (std::size_t a = 0; a < span; ++a)
            in[a] = amps_[base + offset[a]];
        for (std::size_t a = 0; a < span; ++a) {
            Complex acc = 0;
            for (std::size_t b = 0; b < span; ++b)
                acc += g(a, b) * in[b];
            out[a] = acc;
        }
        for (std::size_t a = 0; a < span; ++a)
            amps_[base + offset[a]] = out[a];
    }
}

void
StateVector::apply(const ir::Circuit &c)
{
    if (c.numQubits() != numQubits_)
        support::panic("StateVector::apply: qubit count mismatch");
    for (const ir::Gate &g : c.gates())
        apply(g);
}

double
StateVector::probability(std::size_t index) const
{
    return std::norm(amps_[index]);
}

Complex
StateVector::innerProduct(const StateVector &other) const
{
    if (other.amps_.size() != amps_.size())
        support::panic("StateVector::innerProduct: size mismatch");
    Complex acc = 0;
    for (std::size_t i = 0; i < amps_.size(); ++i)
        acc += std::conj(amps_[i]) * other.amps_[i];
    return acc;
}

double
StateVector::overlap(const StateVector &other) const
{
    return std::abs(innerProduct(other));
}

StateVector
runCircuit(const ir::Circuit &c)
{
    StateVector sv(c.numQubits());
    sv.apply(c);
    return sv;
}

} // namespace sim
} // namespace guoq
