/**
 * @file
 * Statevector simulation — cheaper than the full unitary (O(2^n) per
 * gate) and the hot inner loop of sampling verification
 * (verify/sampling.cc), numopt instantiation, and the fidelity
 * objective, usable up to ~24 qubits.
 *
 * Gate application runs through the specialized kernels of
 * sim/kernels.h: per-gate dispatch picks a diagonal, permutation,
 * dense-1q/2q, or phase-mask kernel (applyGeneric keeps the legacy
 * span x span matrix apply as the reference and fallback), and the
 * whole-circuit path additionally fuses runs of 1q gates on the same
 * qubit into one 2x2 matrix and applies runs of block-local ops one
 * cache-sized chunk at a time (one pass over the 2^n amplitudes per
 * run instead of one pass per gate). Equivalence against the generic
 * path is pinned by tests/test_statevector_kernels.cc: bit-for-bit
 * for single diagonal/permutation gates, <= 1e-12 per amplitude where
 * fusion or SIMD reassociate the arithmetic. The perf methodology and
 * the `statevector` bench case live in docs/PERFORMANCE.md.
 */

#pragma once

#include <vector>

#include "ir/circuit.h"
#include "linalg/complex_matrix.h"

namespace guoq {
namespace sim {

/** A normalized 2^n state vector (qubit 0 = MSB, as in unitary_sim). */
class StateVector
{
  public:
    /** |0...0> on @p num_qubits qubits. */
    explicit StateVector(int num_qubits);

    int numQubits() const { return numQubits_; }
    std::size_t dim() const { return amps_.size(); }

    const std::vector<linalg::Complex> &amplitudes() const { return amps_; }

    /** Apply one gate in place via its specialized kernel. */
    void apply(const ir::Gate &gate);

    /** Apply a whole circuit in place: fuses same-qubit 1q runs and
     *  cache-blocks runs of block-local ops (see file header). */
    void apply(const ir::Circuit &c);

    /** Apply one gate via the legacy generic matrix path — the
     *  reference the kernel tests and the `statevector` bench case
     *  compare against, and the fallback for gate kinds without a
     *  specialized kernel. */
    void applyGeneric(const ir::Gate &gate);

    /** Apply a whole circuit gate-by-gate via applyGeneric (the
     *  pre-kernel behaviour; no fusion, no blocking). */
    void applyGeneric(const ir::Circuit &c);

    /** Probability of measuring basis state @p index (must be < dim). */
    double probability(std::size_t index) const;

    /** Complex inner product <this|other>. The verification layer's
     *  sampling backend averages this over random product states to
     *  estimate Tr(U†V)/2^n (verify/sampling.cc). Both states must
     *  have the same qubit count. */
    linalg::Complex innerProduct(const StateVector &other) const;

    /** Inner-product magnitude |<this|other>|. */
    double overlap(const StateVector &other) const;

  private:
    int numQubits_;
    std::vector<linalg::Complex> amps_;
};

/** Run @p c on |0...0> and return the final state. */
StateVector runCircuit(const ir::Circuit &c);

} // namespace sim
} // namespace guoq
