/**
 * @file
 * Statevector simulation — cheaper than the full unitary (O(2^n) per
 * gate) and used by tests and examples to compare circuit behaviour on
 * concrete inputs up to ~20 qubits.
 */

#pragma once

#include <vector>

#include "ir/circuit.h"
#include "linalg/complex_matrix.h"

namespace guoq {
namespace sim {

/** A normalized 2^n state vector (qubit 0 = MSB, as in unitary_sim). */
class StateVector
{
  public:
    /** |0...0> on @p num_qubits qubits. */
    explicit StateVector(int num_qubits);

    int numQubits() const { return numQubits_; }
    std::size_t dim() const { return amps_.size(); }

    const std::vector<linalg::Complex> &amplitudes() const { return amps_; }

    /** Apply one gate in place. */
    void apply(const ir::Gate &gate);

    /** Apply a whole circuit in place. */
    void apply(const ir::Circuit &c);

    /** Probability of measuring basis state @p index. */
    double probability(std::size_t index) const;

    /** Complex inner product <this|other>. The verification layer's
     *  sampling backend averages this over random product states to
     *  estimate Tr(U†V)/2^n (verify/sampling.cc). */
    linalg::Complex innerProduct(const StateVector &other) const;

    /** Inner-product magnitude |<this|other>|. */
    double overlap(const StateVector &other) const;

  private:
    int numQubits_;
    std::vector<linalg::Complex> amps_;
};

/** Run @p c on |0...0> and return the final state. */
StateVector runCircuit(const ir::Circuit &c);

} // namespace sim
} // namespace guoq
