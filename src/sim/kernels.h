/**
 * @file
 * Specialized statevector gate kernels — the hot inner loops behind
 * sim::StateVector (sampling verification, numopt instantiation, the
 * fidelity objective) and the row operations of sim::applyGate.
 *
 * Every kernel operates in place on a contiguous, index-aligned chunk
 * `amps[0..n)` of a 2^k statevector: n is a power of two, the chunk's
 * absolute base index is a multiple of n, and every stride a kernel
 * uses is < n. Callers (the StateVector scheduler) pass the whole
 * vector for unblocked application, or cache-sized chunks when
 * applying a run of block-local ops per pass over the amplitudes —
 * chunking never changes the per-element arithmetic, so blocked and
 * unblocked application of the same op are bit-identical.
 *
 * Kernel families (vs the generic span x span matrix apply):
 *  - dense 1q / 2q: branch-free bit-pair loops, no gather tables;
 *  - diagonal (Z/S/T/Rz/U1 and fused diagonal runs): one multiply per
 *    touched amplitude, halves with factor 1 are skipped entirely;
 *  - permutation / phased permutation (X/Y/CX/CCX/Swap): amplitude
 *    moves, no multiplies for the pure permutations;
 *  - phase masks (CZ/CP/CCZ): one multiply on the 2^-k fraction of
 *    amplitudes whose mask bits are all set.
 *
 * SIMD: the dense 1q kernel has AVX2(+FMA) and NEON variants selected
 * at runtime (compile-time availability + cpuid); the scalar path is
 * the reference and stays bit-identical to the generic apply's
 * arithmetic, and the diagonal/permutation/phase kernels are scalar
 * by design (memory-bound, and scalar keeps them bit-exact). FMA
 * reassociates rounding, so SIMD dense results may differ from scalar
 * at the ~1e-15 per-amplitude level (tests pin <= 1e-12).
 * `GUOQ_SIM_SIMD=scalar` (or setSimdPolicy) forces the scalar
 * reference path — that is how the `statevector` bench case measures
 * the scalar-fallback speedup separately from the SIMD one
 * (docs/PERFORMANCE.md).
 */

#pragma once

#include <cstddef>

#include "linalg/complex_matrix.h"

namespace guoq {
namespace sim {
namespace kernels {

using linalg::Complex;

/**
 * Chunk size (log2, in amplitudes) of the cache-blocked scheduler:
 * 2^12 complex doubles = 64 KiB, small enough to stay resident in L2
 * while a run of block-local ops is applied to it, large enough that
 * most gate strides of a 20+-qubit circuit fall inside the block.
 */
constexpr int kBlockBits = 12;

/** SIMD dispatch policy. Auto picks the best instruction set the CPU
 *  reports; ForceScalar pins the reference path (bench baselines,
 *  cross-checking tests). The initial policy honours the environment
 *  variable GUOQ_SIM_SIMD ("scalar" forces scalar; anything else,
 *  including unset, is Auto). */
enum class SimdPolicy { Auto, ForceScalar };

void setSimdPolicy(SimdPolicy policy);
SimdPolicy simdPolicy();

/** The instruction set the dense kernels dispatch to under the
 *  current policy: "avx2", "neon", or "scalar". */
const char *backendName();

/** Dense 1q gate m (row-major 2x2) on bit position @p bit. */
void applyDense1q(Complex *amps, std::size_t n, int bit,
                  const Complex m[4]);

/** Diagonal 1q gate diag(d0, d1) on @p bit; halves whose factor is
 *  exactly 1 are not touched at all. */
void applyDiag1q(Complex *amps, std::size_t n, int bit, Complex d0,
                 Complex d1);

/** Phased permutation on @p bit: out_lo = p0 * in_hi and
 *  out_hi = p1 * in_lo (X is p0 = p1 = 1 and degenerates to swaps,
 *  Y is p0 = -i, p1 = i). */
void applyPermPhase1q(Complex *amps, std::size_t n, int bit, Complex p0,
                      Complex p1);

/** Multiply every amplitude whose index contains all bits of @p mask
 *  (mask < n, mask != 0) by @p phase — CZ/CP/CCZ and the low part of
 *  any diagonal controlled phase. */
void applyPhaseMask(Complex *amps, std::size_t n, std::size_t mask,
                    Complex phase);

/** X on @p targetBit controlled on every bit of @p ctrlMask (which
 *  may be 0 = plain X; ctrlMask must not contain the target bit). */
void applyCtrlX(Complex *amps, std::size_t n, std::size_t ctrlMask,
                int targetBit);

/** Swap the amplitudes whose @p bitA / @p bitB values differ. */
void applySwapBits(Complex *amps, std::size_t n, int bitA, int bitB);

/** Dense 2q gate m (row-major 4x4) with @p bitMsb the position of the
 *  gate's first qubit (local index MSB) and @p bitLsb its second. */
void applyDense2q(Complex *amps, std::size_t n, int bitMsb, int bitLsb,
                  const Complex m[16]);

/** amps[0..n) *= s (used for the high-bit halves of diagonal ops in
 *  blocked passes, and for the row scaling of sim::applyGate).
 *  Deliberately scalar, so diagonal kernels stay bit-exact. */
void scaleRange(Complex *amps, std::size_t n, Complex s);

} // namespace kernels
} // namespace sim
} // namespace guoq
