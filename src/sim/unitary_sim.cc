#include "sim/unitary_sim.h"

#include <algorithm>
#include <array>

#include "linalg/unitary.h"
#include "support/logging.h"

namespace guoq {
namespace sim {

using linalg::Complex;
using linalg::ComplexMatrix;

namespace {

/**
 * Expand @p i by inserting zero bits at the (ascending) positions in
 * @p pos — the standard enumeration of base indices whose gate-qubit
 * bits are all zero.
 */
std::size_t
expandIndex(std::size_t i, const std::vector<int> &pos)
{
    std::size_t r = i;
    for (int p : pos) {
        const std::size_t low = r & ((std::size_t{1} << p) - 1);
        r = ((r >> p) << (p + 1)) | low;
    }
    return r;
}

} // namespace

void
applyGate(ComplexMatrix &u, const ir::Gate &gate, int num_qubits)
{
    const int m = gate.arity();
    const std::size_t dim = std::size_t{1} << num_qubits;
    const std::size_t span = std::size_t{1} << m;
    if (u.rows() != dim || u.cols() != dim)
        support::panic("applyGate: matrix size mismatch");

    const ComplexMatrix g = gate.matrix();

    // Bit position of each gate qubit; gate.qubits[0] is the MSB of the
    // gate's local index.
    std::vector<int> bitpos(static_cast<std::size_t>(m));
    for (int k = 0; k < m; ++k)
        bitpos[static_cast<std::size_t>(k)] =
            num_qubits - 1 - gate.qubits[static_cast<std::size_t>(k)];

    // Offsets: local index a -> global offset of its set bits.
    std::vector<std::size_t> offset(span, 0);
    for (std::size_t a = 0; a < span; ++a)
        for (int k = 0; k < m; ++k)
            if (a & (std::size_t{1} << (m - 1 - k)))
                offset[a] |= std::size_t{1}
                             << bitpos[static_cast<std::size_t>(k)];

    std::vector<int> sorted_pos = bitpos;
    std::sort(sorted_pos.begin(), sorted_pos.end());

    const std::size_t groups = dim >> m;
    std::vector<Complex> in(span), out(span);
    Complex *data = u.data();

    for (std::size_t col = 0; col < dim; ++col) {
        for (std::size_t i = 0; i < groups; ++i) {
            const std::size_t base = expandIndex(i, sorted_pos);
            for (std::size_t a = 0; a < span; ++a)
                in[a] = data[(base + offset[a]) * dim + col];
            for (std::size_t a = 0; a < span; ++a) {
                Complex acc = 0;
                for (std::size_t b = 0; b < span; ++b)
                    acc += g(a, b) * in[b];
                out[a] = acc;
            }
            for (std::size_t a = 0; a < span; ++a)
                data[(base + offset[a]) * dim + col] = out[a];
        }
    }
}

ComplexMatrix
circuitUnitary(const ir::Circuit &c)
{
    if (c.numQubits() > kMaxUnitaryQubits)
        support::panic(support::strcat("circuitUnitary: ", c.numQubits(),
                                       " qubits exceeds cap of ",
                                       kMaxUnitaryQubits));
    const std::size_t dim = std::size_t{1} << c.numQubits();
    ComplexMatrix u = ComplexMatrix::identity(dim);
    for (const ir::Gate &g : c.gates())
        applyGate(u, g, c.numQubits());
    return u;
}

double
circuitDistance(const ir::Circuit &a, const ir::Circuit &b)
{
    if (a.numQubits() != b.numQubits())
        support::panic("circuitDistance: qubit count mismatch");
    return linalg::hsDistance(circuitUnitary(a), circuitUnitary(b));
}

bool
circuitsEquivalent(const ir::Circuit &a, const ir::Circuit &b, double eps)
{
    return circuitDistance(a, b) <= eps;
}

} // namespace sim
} // namespace guoq
