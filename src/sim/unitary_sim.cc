#include "sim/unitary_sim.h"

#include <algorithm>
#include <array>

#include "linalg/unitary.h"
#include "sim/kernels.h"
#include "support/logging.h"

namespace guoq {
namespace sim {

using linalg::Complex;
using linalg::ComplexMatrix;

namespace {

bool
isZero(Complex c)
{
    return c.real() == 0.0 && c.imag() == 0.0;
}

bool
isOne(Complex c)
{
    return c.real() == 1.0 && c.imag() == 0.0;
}

/** If @p g is diagonal, fill @p d with its diagonal and return true. */
bool
diagonalOf(const ComplexMatrix &g, std::vector<Complex> &d)
{
    const std::size_t span = g.rows();
    d.resize(span);
    for (std::size_t a = 0; a < span; ++a) {
        for (std::size_t b = 0; b < span; ++b)
            if (a != b && !isZero(g(a, b)))
                return false;
        d[a] = g(a, a);
    }
    return true;
}

/**
 * If @p g is a phased involutive permutation (exactly one nonzero per
 * row, and the permutation is its own inverse — X, Y, CX, Swap, CCX,
 * ... all qualify), fill p/ph with out[a] = ph[a] * in[p[a]] and
 * return true.
 */
bool
permutationOf(const ComplexMatrix &g, std::vector<std::size_t> &p,
              std::vector<Complex> &ph)
{
    const std::size_t span = g.rows();
    p.assign(span, span);
    ph.resize(span);
    for (std::size_t a = 0; a < span; ++a) {
        for (std::size_t b = 0; b < span; ++b) {
            if (isZero(g(a, b)))
                continue;
            if (p[a] != span)
                return false; // second nonzero in this row
            p[a] = b;
            ph[a] = g(a, b);
        }
        if (p[a] == span)
            return false; // all-zero row (not a unitary anyway)
    }
    for (std::size_t a = 0; a < span; ++a)
        if (p[p[a]] != a)
            return false; // not an involution; take the dense path
    return true;
}

/**
 * Expand @p i by inserting zero bits at the (ascending) positions in
 * @p pos — the standard enumeration of base indices whose gate-qubit
 * bits are all zero.
 */
std::size_t
expandIndex(std::size_t i, const std::vector<int> &pos)
{
    std::size_t r = i;
    for (int p : pos) {
        const std::size_t low = r & ((std::size_t{1} << p) - 1);
        r = ((r >> p) << (p + 1)) | low;
    }
    return r;
}

} // namespace

void
applyGate(ComplexMatrix &u, const ir::Gate &gate, int num_qubits)
{
    const int m = gate.arity();
    const std::size_t dim = std::size_t{1} << num_qubits;
    const std::size_t span = std::size_t{1} << m;
    if (u.rows() != dim || u.cols() != dim)
        support::panic("applyGate: matrix size mismatch");

    const ComplexMatrix g = gate.matrix();

    // Bit position of each gate qubit; gate.qubits[0] is the MSB of the
    // gate's local index.
    std::vector<int> bitpos(static_cast<std::size_t>(m));
    for (int k = 0; k < m; ++k)
        bitpos[static_cast<std::size_t>(k)] =
            num_qubits - 1 - gate.qubits[static_cast<std::size_t>(k)];

    // Offsets: local index a -> global offset of its set bits.
    std::vector<std::size_t> offset(span, 0);
    for (std::size_t a = 0; a < span; ++a)
        for (int k = 0; k < m; ++k)
            if (a & (std::size_t{1} << (m - 1 - k)))
                offset[a] |= std::size_t{1}
                             << bitpos[static_cast<std::size_t>(k)];

    std::vector<int> sorted_pos = bitpos;
    std::sort(sorted_pos.begin(), sorted_pos.end());

    const std::size_t groups = dim >> m;
    Complex *data = u.data();

    // Row-major storage: gate application mixes whole rows, so work
    // row-at-a-time (unit stride) instead of column-at-a-time.
    // Diagonal gates scale rows in place and phased involutive
    // permutations (X, CX, Swap, ...) move rows without a matvec —
    // both bit-identical to the dense path's arithmetic.
    std::vector<Complex> diag;
    if (diagonalOf(g, diag)) {
        for (std::size_t i = 0; i < groups; ++i) {
            const std::size_t base = expandIndex(i, sorted_pos);
            for (std::size_t a = 0; a < span; ++a)
                if (!isOne(diag[a]))
                    kernels::scaleRange(data + (base + offset[a]) * dim,
                                        dim, diag[a]);
        }
        return;
    }

    std::vector<std::size_t> perm;
    std::vector<Complex> phase;
    if (permutationOf(g, perm, phase)) {
        std::vector<Complex> tmp(dim);
        for (std::size_t i = 0; i < groups; ++i) {
            const std::size_t base = expandIndex(i, sorted_pos);
            for (std::size_t a = 0; a < span; ++a) {
                const std::size_t b = perm[a];
                if (b == a) {
                    if (!isOne(phase[a]))
                        kernels::scaleRange(
                            data + (base + offset[a]) * dim, dim,
                            phase[a]);
                    continue;
                }
                if (b < a)
                    continue; // handled as the partner of its pair
                Complex *rowA = data + (base + offset[a]) * dim;
                Complex *rowB = data + (base + offset[b]) * dim;
                if (isOne(phase[a]) && isOne(phase[b])) {
                    std::swap_ranges(rowA, rowA + dim, rowB);
                } else {
                    std::copy(rowA, rowA + dim, tmp.begin());
                    for (std::size_t col = 0; col < dim; ++col)
                        rowA[col] = phase[a] * rowB[col];
                    for (std::size_t col = 0; col < dim; ++col)
                        rowB[col] = phase[b] * tmp[col];
                }
            }
        }
        return;
    }

    std::vector<Complex *> row(span);
    std::vector<Complex> in(span);
    for (std::size_t i = 0; i < groups; ++i) {
        const std::size_t base = expandIndex(i, sorted_pos);
        for (std::size_t a = 0; a < span; ++a)
            row[a] = data + (base + offset[a]) * dim;
        for (std::size_t col = 0; col < dim; ++col) {
            for (std::size_t a = 0; a < span; ++a)
                in[a] = row[a][col];
            for (std::size_t a = 0; a < span; ++a) {
                Complex acc = 0;
                for (std::size_t b = 0; b < span; ++b)
                    acc += g(a, b) * in[b];
                row[a][col] = acc;
            }
        }
    }
}

ComplexMatrix
circuitUnitary(const ir::Circuit &c)
{
    if (c.numQubits() > kMaxUnitaryQubits)
        support::panic(support::strcat("circuitUnitary: ", c.numQubits(),
                                       " qubits exceeds cap of ",
                                       kMaxUnitaryQubits));
    const std::size_t dim = std::size_t{1} << c.numQubits();
    ComplexMatrix u = ComplexMatrix::identity(dim);
    for (const ir::Gate &g : c.gates())
        applyGate(u, g, c.numQubits());
    return u;
}

double
circuitDistance(const ir::Circuit &a, const ir::Circuit &b)
{
    if (a.numQubits() != b.numQubits())
        support::panic("circuitDistance: qubit count mismatch");
    return linalg::hsDistance(circuitUnitary(a), circuitUnitary(b));
}

bool
circuitsEquivalent(const ir::Circuit &a, const ir::Circuit &b, double eps)
{
    return circuitDistance(a, b) <= eps;
}

} // namespace sim
} // namespace guoq
