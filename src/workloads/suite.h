/**
 * @file
 * The benchmark suite builder (paper §6, Fig. 15).
 *
 * The paper evaluates on 247 circuits spanning QAOA, VQE, QPE, QFT,
 * Grover, adders, multi-control Toffolis, and simulation kernels. We
 * regenerate the same families across a size sweep; the Clifford+T
 * suite is restricted to the exactly-representable (π/4-multiple)
 * families, mirroring how the paper's FTQC benchmarks are all
 * Clifford+T-native.
 */

#pragma once

#include <string>
#include <vector>

#include "ir/circuit.h"
#include "ir/gate_set.h"

namespace guoq {
namespace workloads {

/** One suite entry. */
struct Benchmark
{
    std::string name;    //!< e.g. "qft_8"
    std::string family;  //!< e.g. "qft"
    ir::Circuit circuit; //!< already lowered when from suiteFor()
};

/** The full generic suite (not yet lowered to a gate set). */
std::vector<Benchmark> standardSuite();

/**
 * The suite lowered to @p set ("the input circuit is always already
 * decomposed into the target gate set", §6). For Clifford+T only the
 * exactly-representable families are included.
 */
std::vector<Benchmark> suiteFor(ir::GateSetKind set);

/**
 * A truncated suite for tests and smoke runs: at most @p max_circuits
 * entries, family-diverse, smallest sizes first.
 */
std::vector<Benchmark> quickSuiteFor(ir::GateSetKind set, int max_circuits);

} // namespace workloads
} // namespace guoq
