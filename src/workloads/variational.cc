#include "workloads/variational.h"

#include <cmath>
#include <utility>
#include <vector>

#include "support/rng.h"

namespace guoq {
namespace workloads {

ir::Circuit
qaoaMaxCut(int n, int layers, std::uint64_t seed)
{
    support::Rng rng(seed);
    // Ring plus ~n/2 random chords: connected, realistic MaxCut shape.
    std::vector<std::pair<int, int>> edges;
    for (int q = 0; q < n; ++q)
        edges.emplace_back(q, (q + 1) % n);
    for (int extra = 0; extra < n / 2; ++extra) {
        const int a = static_cast<int>(rng.index(
            static_cast<std::size_t>(n)));
        const int b = static_cast<int>(rng.index(
            static_cast<std::size_t>(n)));
        if (a != b)
            edges.emplace_back(std::min(a, b), std::max(a, b));
    }

    ir::Circuit c(n);
    for (int q = 0; q < n; ++q)
        c.h(q);
    for (int layer = 0; layer < layers; ++layer) {
        const double gamma = rng.uniform(0.1, M_PI - 0.1);
        const double beta = rng.uniform(0.1, M_PI / 2 - 0.1);
        for (const auto &[a, b] : edges) {
            c.cx(a, b);
            c.rz(2 * gamma, b);
            c.cx(a, b);
        }
        for (int q = 0; q < n; ++q)
            c.rx(2 * beta, q);
    }
    return c;
}

ir::Circuit
vqeAnsatz(int n, int layers, std::uint64_t seed)
{
    support::Rng rng(seed);
    ir::Circuit c(n);
    for (int layer = 0; layer < layers; ++layer) {
        for (int q = 0; q < n; ++q) {
            c.ry(rng.uniform(-M_PI, M_PI), q);
            c.rz(rng.uniform(-M_PI, M_PI), q);
        }
        for (int q = 0; q + 1 < n; ++q)
            c.cx(q, q + 1);
    }
    for (int q = 0; q < n; ++q)
        c.ry(rng.uniform(-M_PI, M_PI), q);
    return c;
}

ir::Circuit
randomCircuit(int n, int num_gates, std::uint64_t seed)
{
    support::Rng rng(seed);
    ir::Circuit c(n);
    for (int i = 0; i < num_gates; ++i) {
        const double pick = rng.uniform();
        const int q = static_cast<int>(rng.index(
            static_cast<std::size_t>(n)));
        if (pick < 0.35 && n >= 2) {
            int t = static_cast<int>(rng.index(
                static_cast<std::size_t>(n - 1)));
            if (t >= q)
                ++t;
            c.cx(q, t);
        } else if (pick < 0.5) {
            c.h(q);
        } else if (pick < 0.6) {
            c.x(q);
        } else if (pick < 0.75) {
            c.t(q);
        } else if (pick < 0.85) {
            c.s(q);
        } else {
            c.rz(rng.uniform(-M_PI, M_PI), q);
        }
    }
    return c;
}

} // namespace workloads
} // namespace guoq
