#include "workloads/standard.h"

#include <cmath>

#include "support/logging.h"

namespace guoq {
namespace workloads {

ir::Circuit
ghz(int n)
{
    ir::Circuit c(n);
    c.h(0);
    for (int q = 1; q < n; ++q)
        c.cx(q - 1, q);
    return c;
}

ir::Circuit
qft(int n, bool with_swaps)
{
    ir::Circuit c(n);
    for (int i = 0; i < n; ++i) {
        c.h(i);
        for (int j = i + 1; j < n; ++j)
            c.cp(M_PI / std::pow(2.0, j - i), j, i);
    }
    if (with_swaps)
        for (int i = 0; i < n / 2; ++i)
            c.swap(i, n - 1 - i);
    return c;
}

ir::Circuit
inverseQft(int n, bool with_swaps)
{
    return qft(n, with_swaps).inverse();
}

void
appendMultiControlX(ir::Circuit *c, const std::vector<int> &controls,
                    int target, int ancilla_start)
{
    const int k = static_cast<int>(controls.size());
    if (k == 0) {
        c->x(target);
        return;
    }
    if (k == 1) {
        c->cx(controls[0], target);
        return;
    }
    if (k == 2) {
        c->ccx(controls[0], controls[1], target);
        return;
    }
    // V-chain: compute partial ANDs into ancillas, fire, uncompute.
    std::vector<ir::Gate> compute;
    compute.emplace_back(
        ir::GateKind::CCX,
        std::vector<int>{controls[0], controls[1], ancilla_start});
    for (int i = 2; i < k - 1; ++i)
        compute.emplace_back(
            ir::GateKind::CCX,
            std::vector<int>{controls[static_cast<std::size_t>(i)],
                             ancilla_start + i - 2,
                             ancilla_start + i - 1});
    for (const ir::Gate &g : compute)
        c->add(g);
    c->ccx(controls[static_cast<std::size_t>(k - 1)],
           ancilla_start + k - 3, target);
    for (auto it = compute.rbegin(); it != compute.rend(); ++it)
        c->add(*it);
}

ir::Circuit
barencoTof(int controls)
{
    if (controls < 2)
        support::fatal("barencoTof: needs at least 2 controls");
    const int n = 2 * controls - 1; // controls + target + (controls-2)
    ir::Circuit c(n);
    std::vector<int> ctrl(static_cast<std::size_t>(controls));
    for (int i = 0; i < controls; ++i)
        ctrl[static_cast<std::size_t>(i)] = i;
    const int target = controls;
    appendMultiControlX(&c, ctrl, target, controls + 1);
    return c;
}

ir::Circuit
cuccaroAdder(int n)
{
    // Layout: cin = 0, a_i = 1 + i, b_i = 1 + n + i, cout = 2n + 1.
    ir::Circuit c(2 * n + 2);
    const int cin = 0;
    auto a = [n](int i) { (void)n; return 1 + i; };
    auto b = [n](int i) { return 1 + n + i; };
    const int cout = 2 * n + 1;

    auto maj = [&c](int x, int y, int z) {
        c.cx(z, y);
        c.cx(z, x);
        c.ccx(x, y, z);
    };
    auto uma = [&c](int x, int y, int z) {
        c.ccx(x, y, z);
        c.cx(z, x);
        c.cx(x, y);
    };

    maj(cin, b(0), a(0));
    for (int i = 1; i < n; ++i)
        maj(a(i - 1), b(i), a(i));
    c.cx(a(n - 1), cout);
    for (int i = n - 1; i >= 1; --i)
        uma(a(i - 1), b(i), a(i));
    uma(cin, b(0), a(0));
    return c;
}

ir::Circuit
grover(int n)
{
    if (n < 2)
        support::fatal("grover: needs at least 2 work qubits");
    const int ancillas = n > 2 ? n - 2 : 0;
    ir::Circuit c(n + ancillas);
    std::vector<int> all(static_cast<std::size_t>(n));
    for (int q = 0; q < n; ++q)
        all[static_cast<std::size_t>(q)] = q;
    std::vector<int> head(all.begin(), all.end() - 1);

    const int iterations = std::max(
        1, static_cast<int>(std::floor(
               M_PI / 4.0 * std::sqrt(std::pow(2.0, n)))));

    for (int q = 0; q < n; ++q)
        c.h(q);
    for (int it = 0; it < iterations; ++it) {
        // Oracle: phase-flip |1...1> (Z on the last qubit, controlled
        // on the rest, realized as H·MCX·H).
        c.h(n - 1);
        appendMultiControlX(&c, head, n - 1, n);
        c.h(n - 1);
        // Diffusion: H X (multi-controlled Z) X H.
        for (int q = 0; q < n; ++q) {
            c.h(q);
            c.x(q);
        }
        c.h(n - 1);
        appendMultiControlX(&c, head, n - 1, n);
        c.h(n - 1);
        for (int q = 0; q < n; ++q) {
            c.x(q);
            c.h(q);
        }
    }
    return c;
}

ir::Circuit
qpe(int counting)
{
    // Estimate the T-gate eigenphase on eigenstate |1>.
    const int n = counting + 1;
    const int eig = counting;
    ir::Circuit c(n);
    c.x(eig);
    for (int q = 0; q < counting; ++q)
        c.h(q);
    for (int q = 0; q < counting; ++q) {
        // Controlled-T^(2^k) with k = counting-1-q: counting qubit 0
        // carries the most significant phase bit, matching the QFT's
        // bit convention so the estimate reads out deterministically.
        const double angle = ir::normalizeAngle(
            std::pow(2.0, counting - 1 - q) * M_PI / 4.0);
        if (!ir::isZeroAngle(angle))
            c.cp(angle, q, eig);
    }
    // Inverse QFT on the counting register.
    ir::Circuit iq = inverseQft(counting, true);
    for (const ir::Gate &g : iq.gates())
        c.add(g);
    return c;
}

ir::Circuit
bernsteinVazirani(int n, std::uint64_t secret)
{
    ir::Circuit c(n + 1);
    const int out = n;
    c.x(out);
    c.h(out);
    for (int q = 0; q < n; ++q)
        c.h(q);
    for (int q = 0; q < n; ++q)
        if (secret & (std::uint64_t{1} << q))
            c.cx(q, out);
    for (int q = 0; q < n; ++q)
        c.h(q);
    c.h(out);
    c.x(out);
    return c;
}

ir::Circuit
hiddenShift(int n, std::uint64_t shift)
{
    ir::Circuit c(n);
    for (int q = 0; q < n; ++q)
        c.h(q);
    // Shifted oracle: X^s · O_f · X^s with O_f = Π CZ(2i, 2i+1).
    for (int q = 0; q < n; ++q)
        if (shift & (std::uint64_t{1} << q))
            c.x(q);
    for (int q = 0; q + 1 < n; q += 2)
        c.cz(q, q + 1);
    for (int q = 0; q < n; ++q)
        if (shift & (std::uint64_t{1} << q))
            c.x(q);
    for (int q = 0; q < n; ++q)
        c.h(q);
    // Dual oracle (f is self-dual for this bent function).
    for (int q = 0; q + 1 < n; q += 2)
        c.cz(q, q + 1);
    for (int q = 0; q < n; ++q)
        c.h(q);
    return c;
}

ir::Circuit
draperAdder(int n, std::uint64_t a)
{
    ir::Circuit c(n);
    // QFT without the qubit-reversal swaps.
    ir::Circuit f = qft(n, /*with_swaps=*/false);
    c.append(f);
    // Phase kicks: qubit i (MSB first) accumulates 2π·a / 2^{n-i}.
    for (int i = 0; i < n; ++i) {
        const double angle = ir::normalizeAngle(
            2.0 * M_PI * static_cast<double>(a) /
            std::pow(2.0, n - i));
        if (!ir::isZeroAngle(angle))
            c.u1(angle, i);
    }
    c.append(f.inverse());
    return c;
}

ir::Circuit
deutschJozsa(int n, std::uint64_t mask)
{
    // Balanced oracle f(x) = (mask · x) mod 2 — same shape as BV but
    // kept separate because the suite treats it as its own family.
    ir::Circuit c(n + 1);
    const int out = n;
    c.x(out);
    c.h(out);
    for (int q = 0; q < n; ++q)
        c.h(q);
    for (int q = 0; q < n; ++q)
        if (mask & (std::uint64_t{1} << q))
            c.cx(q, out);
    for (int q = 0; q < n; ++q)
        c.h(q);
    return c;
}

} // namespace workloads
} // namespace guoq
