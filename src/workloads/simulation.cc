#include "workloads/simulation.h"

#include <cmath>

namespace guoq {
namespace workloads {

namespace {

/** Append exp(-i θ/2 Z_a Z_b) as CX · Rz(θ) · CX. */
void
appendZz(ir::Circuit *c, double theta, int a, int b)
{
    c->cx(a, b);
    c->rz(theta, b);
    c->cx(a, b);
}

} // namespace

ir::Circuit
trotterIsing(int n, int steps, double j_coupling, double h_field, double dt)
{
    ir::Circuit c(n);
    for (int s = 0; s < steps; ++s) {
        for (int q = 0; q + 1 < n; ++q)
            appendZz(&c, -2.0 * j_coupling * dt, q, q + 1);
        for (int q = 0; q < n; ++q)
            c.rx(-2.0 * h_field * dt, q);
    }
    return c;
}

ir::Circuit
trotterHeisenberg(int n, int steps, double dt)
{
    ir::Circuit c(n);
    const double theta = 2.0 * dt;
    for (int s = 0; s < steps; ++s) {
        for (int q = 0; q + 1 < n; ++q) {
            // XX: conjugate ZZ by H on both qubits.
            c.h(q);
            c.h(q + 1);
            appendZz(&c, theta, q, q + 1);
            c.h(q);
            c.h(q + 1);
            // YY: conjugate ZZ by S†·H on both qubits.
            c.sdg(q);
            c.h(q);
            c.sdg(q + 1);
            c.h(q + 1);
            appendZz(&c, theta, q, q + 1);
            c.h(q);
            c.s(q);
            c.h(q + 1);
            c.s(q + 1);
            // ZZ directly.
            appendZz(&c, theta, q, q + 1);
        }
    }
    return c;
}

ir::Circuit
trotterIsingPiOver4(int n, int steps)
{
    ir::Circuit c(n);
    for (int s = 0; s < steps; ++s) {
        for (int q = 0; q + 1 < n; ++q) {
            c.cx(q, q + 1);
            c.t(q + 1); // Rz(π/4) up to phase
            c.cx(q, q + 1);
        }
        for (int q = 0; q < n; ++q) {
            // Rx(π/4) = H Rz(π/4) H up to phase.
            c.h(q);
            c.t(q);
            c.h(q);
        }
    }
    return c;
}

} // namespace workloads
} // namespace guoq
