#include "workloads/suite.h"

#include <algorithm>
#include <map>
#include <set>

#include "support/logging.h"
#include "transpile/decompose.h"
#include "transpile/to_gate_set.h"
#include "workloads/simulation.h"
#include "workloads/standard.h"
#include "workloads/variational.h"

namespace guoq {
namespace workloads {

namespace {

/**
 * True when every rotation angle in @p c is a π/4 multiple *after*
 * expansion to the CX basis (a CP(λ) expands to λ/2 rotations, so the
 * check must run post-expansion).
 */
bool
cliffordTRepresentable(const ir::Circuit &c)
{
    const ir::Circuit expanded = transpile::expandToCxBasis(c);
    for (const ir::Gate &g : expanded.gates())
        for (double p : g.params)
            if (!transpile::isPiOver4Multiple(p))
                return false;
    return true;
}

void
add(std::vector<Benchmark> *out, const std::string &family, int size_tag,
    ir::Circuit circuit)
{
    Benchmark b;
    b.family = family;
    b.name = family + "_" + std::to_string(size_tag);
    b.circuit = std::move(circuit);
    out->push_back(std::move(b));
}

} // namespace

std::vector<Benchmark>
standardSuite()
{
    std::vector<Benchmark> s;

    for (int n : {4, 6, 8, 10, 12})
        add(&s, "ghz", n, ghz(n));
    for (int n : {4, 5, 6, 8, 10})
        add(&s, "qft", n, qft(n));
    for (int k : {3, 4, 5, 6})
        add(&s, "barenco_tof", k, barencoTof(k));
    for (int n : {2, 3, 4})
        add(&s, "adder", n, cuccaroAdder(n));
    for (int n : {3, 4, 5})
        add(&s, "grover", n, grover(n));
    for (int n : {3, 4, 6})
        add(&s, "qpe", n, qpe(n));
    for (int n : {6, 8, 10})
        add(&s, "bv", n, bernsteinVazirani(n, 0xB5u));
    for (int n : {6, 8})
        add(&s, "dj", n, deutschJozsa(n, 0x2Du));
    for (int n : {6, 8, 10})
        add(&s, "hidden_shift", n, hiddenShift(n, 0x2Bu));
    for (int n : {4, 6})
        add(&s, "qft_adder", n, draperAdder(n, 5));
    int tag = 0;
    for (int n : {6, 8, 10})
        for (int layers : {1, 2})
            add(&s, "qaoa", n * 10 + layers,
                qaoaMaxCut(n, layers, 1000 + static_cast<unsigned>(tag++)));
    for (int n : {6, 8})
        for (int layers : {2, 3})
            add(&s, "vqe", n * 10 + layers,
                vqeAnsatz(n, layers, 2000 + static_cast<unsigned>(tag++)));
    for (int n : {6, 8})
        add(&s, "ising", n, trotterIsing(n, 3));
    add(&s, "heisenberg", 6, trotterHeisenberg(6, 2));
    for (int n : {6, 8})
        add(&s, "ising_t", n, trotterIsingPiOver4(n, 3));
    for (int n : {8, 10})
        add(&s, "random", n,
            randomCircuit(n, 40 * n, 3000 + static_cast<unsigned>(n)));

    return s;
}

std::vector<Benchmark>
suiteFor(ir::GateSetKind set)
{
    std::vector<Benchmark> out;
    for (Benchmark &b : standardSuite()) {
        if (set == ir::GateSetKind::CliffordT &&
            !cliffordTRepresentable(b.circuit))
            continue;
        Benchmark lowered;
        lowered.name = b.name;
        lowered.family = b.family;
        lowered.circuit = transpile::toGateSet(b.circuit, set);
        out.push_back(std::move(lowered));
    }
    return out;
}

std::vector<Benchmark>
quickSuiteFor(ir::GateSetKind set, int max_circuits)
{
    std::vector<Benchmark> full = suiteFor(set);
    // Round-robin across families, smallest (by gate count) first, so
    // a truncated suite stays diverse.
    std::stable_sort(full.begin(), full.end(),
                     [](const Benchmark &a, const Benchmark &b) {
                         return a.circuit.size() < b.circuit.size();
                     });
    std::vector<bool> used(full.size(), false);
    std::vector<Benchmark> out;
    bool any = true;
    while (any && static_cast<int>(out.size()) < max_circuits) {
        any = false;
        std::set<std::string> this_round;
        for (std::size_t i = 0;
             i < full.size() &&
             static_cast<int>(out.size()) < max_circuits;
             ++i) {
            if (used[i] || this_round.count(full[i].family))
                continue;
            used[i] = true;
            this_round.insert(full[i].family);
            out.push_back(full[i]);
            any = true;
        }
    }
    return out;
}

} // namespace workloads
} // namespace guoq
