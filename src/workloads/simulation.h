/**
 * @file
 * Hamiltonian-simulation workloads: Trotterized Ising and Heisenberg
 * chain evolution — the long-term simulation family of the suite.
 */

#pragma once

#include "ir/circuit.h"

namespace guoq {
namespace workloads {

/**
 * First-order Trotter evolution of the transverse-field Ising chain
 * H = -J Σ Z_i Z_{i+1} - h Σ X_i: per step, ZZ(2·J·dt) on each bond
 * (CX·Rz·CX) and Rx(2·h·dt) on each site.
 */
ir::Circuit trotterIsing(int n, int steps, double j_coupling = 1.0,
                         double h_field = 0.8, double dt = 0.1);

/**
 * Trotterized isotropic Heisenberg chain H = Σ (XX + YY + ZZ): each
 * bond term via basis-change conjugation around a ZZ rotation.
 */
ir::Circuit trotterHeisenberg(int n, int steps, double dt = 0.1);

/**
 * Ising evolution with all rotation angles snapped to π/4 multiples —
 * the exactly Clifford+T-representable variant used by the FTQC suite.
 */
ir::Circuit trotterIsingPiOver4(int n, int steps);

} // namespace workloads
} // namespace guoq
