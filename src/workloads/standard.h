/**
 * @file
 * Standard-algorithm benchmark circuits (paper §6: QFT, QPE, Grover,
 * multi-control Toffolis, adders, and friends — the near- and
 * long-term algorithm families of the 247-circuit suite).
 *
 * Generators emit generic gates (H, CX, CCX, CP, Rz, ...); the suite
 * builder lowers them to each target gate set with transpile::.
 */

#pragma once

#include <cstdint>

#include "ir/circuit.h"

namespace guoq {
namespace workloads {

/** n-qubit GHZ state preparation (H + CX ladder). */
ir::Circuit ghz(int n);

/**
 * n-qubit quantum Fourier transform (Coppersmith): H + controlled
 * phases; @p with_swaps appends the final qubit-reversal swaps.
 */
ir::Circuit qft(int n, bool with_swaps = true);

/** Inverse QFT. */
ir::Circuit inverseQft(int n, bool with_swaps = true);

/**
 * Barenco-style multi-control Toffoli with @p controls controls (≥ 2)
 * on 2·controls - 1 qubits: the CCX V-chain through controls-2
 * ancillas (the barenco_tof_n benchmark family).
 */
ir::Circuit barencoTof(int controls);

/**
 * Cuccaro ripple-carry adder on 2n + 2 qubits (cin, a[n], b[n], cout)
 * computing b <- a + b with MAJ/UMA blocks.
 */
ir::Circuit cuccaroAdder(int n);

/**
 * Grover search on @p n work qubits for the all-ones item, with the
 * textbook iteration count ⌊π/4·√(2^n)⌋; uses n-2 ancillas for the
 * multi-control phase oracle when n > 2.
 */
ir::Circuit grover(int n);

/**
 * Quantum phase estimation with @p counting counting qubits of the T
 * gate's eigenphase (π/4) on one eigenstate qubit.
 */
ir::Circuit qpe(int counting);

/** Bernstein–Vazirani with the given secret bitstring (bit i = qubit i). */
ir::Circuit bernsteinVazirani(int n, std::uint64_t secret);

/**
 * Hidden-shift for the bent function f(x) = Π x_{2i}·x_{2i+1} with
 * shift @p shift (bit q = qubit q): one query to the shifted oracle,
 * one to the dual, deterministic readout of the shift.
 */
ir::Circuit hiddenShift(int n, std::uint64_t shift);

/**
 * Draper QFT adder: |b⟩ → |b + a mod 2^n⟩ with qubit 0 the most
 * significant bit of b. Adds the classical constant @p a through
 * phase kicks in the Fourier basis (QFT · phases · QFT⁻¹).
 */
ir::Circuit draperAdder(int n, std::uint64_t a);

/** Deutsch–Jozsa with a balanced inner-product oracle. */
ir::Circuit deutschJozsa(int n, std::uint64_t mask);

/**
 * Append a multi-control X with @p num_controls controls (qubits
 * c0..c_{k-1}), target @p target, using ancillas starting at
 * @p ancilla_start (needs num_controls - 2 of them; 0, 1, and 2
 * controls need none).
 */
void appendMultiControlX(ir::Circuit *c, const std::vector<int> &controls,
                         int target, int ancilla_start);

} // namespace workloads
} // namespace guoq
