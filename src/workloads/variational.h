/**
 * @file
 * Variational-algorithm workloads (QAOA, VQE) and random circuits —
 * the near-term families of the benchmark suite.
 */

#pragma once

#include <cstdint>

#include "ir/circuit.h"

namespace guoq {
namespace workloads {

/**
 * QAOA MaxCut on a random connected graph: per layer, ZZ(γ) phase
 * separators (CX·Rz·CX) on each edge plus Rx(β) mixers. Edges are a
 * ring plus random chords, seeded for reproducibility.
 */
ir::Circuit qaoaMaxCut(int n, int layers, std::uint64_t seed);

/**
 * Hardware-efficient VQE ansatz: per layer, Ry+Rz on every qubit and a
 * linear CX entangling ladder; angles seeded.
 */
ir::Circuit vqeAnsatz(int n, int layers, std::uint64_t seed);

/**
 * A random circuit of @p num_gates gates drawn from {H, X, T, S, Rz,
 * CX} — the unstructured filler family.
 */
ir::Circuit randomCircuit(int n, int num_gates, std::uint64_t seed);

} // namespace workloads
} // namespace guoq
