/**
 * @file
 * DAG view of a circuit: per-wire predecessor/successor links between
 * gates (paper §3, "Subcircuits"). The gate list itself is a valid
 * topological order; the DAG adds O(1) wire-adjacency queries used by
 * the rewrite matcher and the subcircuit selector.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "ir/circuit.h"

namespace guoq {
namespace dag {

/** Sentinel for "no adjacent gate on this wire". */
constexpr std::size_t kNoGate = static_cast<std::size_t>(-1);

/** Wire-adjacency index over a circuit's gate list. */
class CircuitDag
{
  public:
    explicit CircuitDag(const ir::Circuit &c);

    /** Index of the next gate after @p gate_idx on wire @p q. */
    std::size_t next(std::size_t gate_idx, int q) const;

    /** Index of the previous gate before @p gate_idx on wire @p q. */
    std::size_t prev(std::size_t gate_idx, int q) const;

    /** First / last gate on wire @p q (kNoGate when the wire is idle). */
    std::size_t firstOnWire(int q) const;
    std::size_t lastOnWire(int q) const;

    int numQubits() const { return numQubits_; }
    std::size_t numGates() const { return gateQubits_.size(); }

  private:
    /** Slot of wire q within gate i's qubit list (panics if absent). */
    std::size_t slotOf(std::size_t gate_idx, int q) const;

    int numQubits_;
    std::vector<std::vector<int>> gateQubits_;
    // nextLink_[i][k] / prevLink_[i][k]: neighbor of gate i on its k-th
    // qubit wire.
    std::vector<std::vector<std::size_t>> nextLink_;
    std::vector<std::vector<std::size_t>> prevLink_;
    std::vector<std::size_t> first_;
    std::vector<std::size_t> last_;
};

} // namespace dag
} // namespace guoq
