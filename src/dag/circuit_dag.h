/**
 * @file
 * DAG view of a circuit: per-wire predecessor/successor links between
 * gates (paper §3, "Subcircuits"). The gate list itself is a valid
 * topological order; the DAG adds O(1) wire-adjacency queries used by
 * the rewrite matcher and the subcircuit selector.
 *
 * Storage is a flat structure-of-arrays (fixed stride of kMaxArity
 * slots per gate) so rebuild() can re-index a mutated circuit without
 * allocating once the buffers are warm — the rewrite engine calls it
 * after every accepted pass.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ir/circuit.h"

namespace guoq {
namespace dag {

/** Sentinel for "no adjacent gate on this wire". */
constexpr std::size_t kNoGate = static_cast<std::size_t>(-1);

/** Wire-adjacency index over a circuit's gate list. */
class CircuitDag
{
  public:
    /** Widest gate the index supports (CCX/CCZ). */
    static constexpr std::size_t kMaxArity = 3;

    /** An empty index; rebuild() attaches it to a circuit. */
    CircuitDag() = default;

    explicit CircuitDag(const ir::Circuit &c) { rebuild(c); }

    /**
     * Re-index @p c in place. Reuses the existing buffers, so after
     * the first build on a circuit of a given size this allocates
     * nothing (buffers only grow).
     */
    void rebuild(const ir::Circuit &c);

    /** Index of the next gate after @p gate_idx on wire @p q. */
    std::size_t next(std::size_t gate_idx, int q) const;

    /** Index of the previous gate before @p gate_idx on wire @p q. */
    std::size_t prev(std::size_t gate_idx, int q) const;

    /** First / last gate on wire @p q (kNoGate when the wire is idle). */
    std::size_t firstOnWire(int q) const;
    std::size_t lastOnWire(int q) const;

    int numQubits() const { return numQubits_; }
    std::size_t numGates() const { return numGates_; }

  private:
    /** Slot of wire q within gate i's qubit list (panics if absent). */
    std::size_t slotOf(std::size_t gate_idx, int q) const;

    int numQubits_ = 0;
    std::size_t numGates_ = 0;
    // Per gate: arity, then kMaxArity slots of (qubit, next, prev).
    // Unused slots hold qubit -1 / kNoGate links.
    std::vector<std::int8_t> arity_;
    std::vector<int> qubits_;
    std::vector<std::size_t> nextLink_;
    std::vector<std::size_t> prevLink_;
    std::vector<std::size_t> first_;
    std::vector<std::size_t> last_;
    std::vector<std::size_t> frontier_; // rebuild scratch, per qubit
};

} // namespace dag
} // namespace guoq
