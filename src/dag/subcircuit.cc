#include "dag/subcircuit.h"

#include <algorithm>
#include <set>

#include "support/logging.h"

namespace guoq {
namespace dag {

/*
 * Convexity & splice-position argument.
 *
 * Selection scans gates in list order starting at the seed. A gate is
 * selected iff (a) none of its qubits is dirty and (b) the union of
 * its qubits with the selection's qubit set fits the budget. A skipped
 * gate marks all of its qubits dirty.
 *
 * Convexity: suppose s1, s2 are selected and some path s1 -> v -> s2
 * exists with v unselected. The gate list is a topological order, so
 * v lies between s1 and s2 in list order, i.e. v was scanned and
 * skipped, dirtying its qubits. Follow the path from v to s2: each hop
 * shares a wire; the first selected gate w on that path was scanned
 * after v yet selected with a dirty wire — contradiction.
 *
 * Splice position: the seed is the earliest selected gate. Every
 * skipped gate appears after the seed in list order, so inserting the
 * replacement block at the seed's position keeps every wire's order:
 * on any selection wire q, selected gates on q all precede the first
 * skipped gate on q (dirty rule), so the replacement (which stands for
 * them) may sit at the seed position ahead of all skipped gates.
 */

SubcircuitSelection
growConvex(const ir::Circuit &c, std::size_t seed, int max_qubits,
           std::size_t max_gates, int max_two_qubit)
{
    SubcircuitSelection sel;
    if (seed >= c.size() || max_gates == 0)
        return sel;
    const ir::Gate &sg = c.gate(seed);
    if (static_cast<int>(sg.qubits.size()) > max_qubits)
        return sel;

    std::set<int> qubits(sg.qubits.begin(), sg.qubits.end());
    std::vector<bool> dirty(static_cast<std::size_t>(c.numQubits()), false);
    sel.indices.push_back(seed);
    int two_qubit = sg.qubits.size() == 2 ? 1 : 0;

    for (std::size_t i = seed + 1;
         i < c.size() && sel.indices.size() < max_gates; ++i) {
        const ir::Gate &g = c.gate(i);
        bool blocked = false;
        for (int q : g.qubits)
            blocked |= dirty[static_cast<std::size_t>(q)];
        if (g.qubits.size() == 2 && max_two_qubit >= 0 &&
            two_qubit >= max_two_qubit)
            blocked = true;
        std::set<int> merged = qubits;
        merged.insert(g.qubits.begin(), g.qubits.end());
        if (!blocked && static_cast<int>(merged.size()) <= max_qubits) {
            sel.indices.push_back(i);
            qubits.swap(merged);
            if (g.qubits.size() == 2)
                ++two_qubit;
        } else {
            for (int q : g.qubits)
                dirty[static_cast<std::size_t>(q)] = true;
        }
    }
    sel.qubits.assign(qubits.begin(), qubits.end());
    return sel;
}

SubcircuitSelection
randomConvex(const ir::Circuit &c, support::Rng &rng, int max_qubits,
             std::size_t max_gates, int max_two_qubit)
{
    if (c.empty())
        return {};
    return growConvex(c, rng.index(c.size()), max_qubits, max_gates,
                      max_two_qubit);
}

ir::Circuit
extract(const ir::Circuit &c, const SubcircuitSelection &sel)
{
    // Global qubit -> local rank.
    std::vector<int> rank(static_cast<std::size_t>(c.numQubits()), -1);
    for (std::size_t k = 0; k < sel.qubits.size(); ++k)
        rank[static_cast<std::size_t>(sel.qubits[k])] =
            static_cast<int>(k);

    ir::Circuit sub(static_cast<int>(sel.qubits.size()));
    for (std::size_t idx : sel.indices) {
        ir::Gate g = c.gate(idx);
        for (auto &q : g.qubits) {
            const int r = rank[static_cast<std::size_t>(q)];
            if (r < 0)
                support::panic("extract: gate outside selection qubits");
            q = r;
        }
        sub.add(std::move(g));
    }
    return sub;
}

ir::Circuit
splice(const ir::Circuit &c, const SubcircuitSelection &sel,
       const ir::Circuit &replacement)
{
    if (sel.empty())
        support::panic("splice with empty selection");
    if (replacement.numQubits() !=
        static_cast<int>(sel.qubits.size()))
        support::panic("splice: replacement qubit count mismatch");

    std::vector<bool> removed(c.size(), false);
    for (std::size_t idx : sel.indices)
        removed[idx] = true;
    const std::size_t at = sel.indices.front();

    ir::Circuit out(c.numQubits());
    for (std::size_t i = 0; i < c.size(); ++i) {
        if (i == at) {
            for (const ir::Gate &g : replacement.gates()) {
                ir::Gate ng = g;
                for (auto &q : ng.qubits)
                    q = sel.qubits[static_cast<std::size_t>(q)];
                out.add(std::move(ng));
            }
        }
        if (!removed[i])
            out.add(c.gate(i));
    }
    // Degenerate case: selection at the very end with empty replacement
    // still handled above because at < c.size() always.
    return out;
}

std::vector<SubcircuitSelection>
partitionConvex(const ir::Circuit &c, int max_qubits, std::size_t max_gates)
{
    std::vector<SubcircuitSelection> blocks;
    std::vector<bool> assigned(c.size(), false);

    for (std::size_t start = 0; start < c.size(); ++start) {
        if (assigned[start])
            continue;
        // Grow from the earliest unassigned gate, skipping gates that
        // already belong to an earlier block (they are "dirty" walls).
        SubcircuitSelection sel;
        const ir::Gate &sg = c.gate(start);
        std::set<int> qubits(sg.qubits.begin(), sg.qubits.end());
        if (static_cast<int>(qubits.size()) > max_qubits) {
            // Oversized gate gets a singleton block.
            sel.indices.push_back(start);
            sel.qubits.assign(sg.qubits.begin(), sg.qubits.end());
            std::sort(sel.qubits.begin(), sel.qubits.end());
            assigned[start] = true;
            blocks.push_back(std::move(sel));
            continue;
        }
        std::vector<bool> dirty(static_cast<std::size_t>(c.numQubits()),
                                false);
        sel.indices.push_back(start);
        assigned[start] = true;
        for (std::size_t i = start + 1;
             i < c.size() && sel.indices.size() < max_gates; ++i) {
            const ir::Gate &g = c.gate(i);
            if (assigned[i]) {
                // A gate already owned by an earlier block is a wall:
                // growing past it on a shared wire would let this
                // block's seed-position splice reorder across it.
                for (int q : g.qubits)
                    dirty[static_cast<std::size_t>(q)] = true;
                continue;
            }
            bool blocked = false;
            for (int q : g.qubits)
                blocked |= dirty[static_cast<std::size_t>(q)];
            std::set<int> merged = qubits;
            merged.insert(g.qubits.begin(), g.qubits.end());
            if (!blocked &&
                static_cast<int>(merged.size()) <= max_qubits) {
                sel.indices.push_back(i);
                assigned[i] = true;
                qubits.swap(merged);
            } else {
                for (int q : g.qubits)
                    dirty[static_cast<std::size_t>(q)] = true;
            }
        }
        sel.qubits.assign(qubits.begin(), qubits.end());
        blocks.push_back(std::move(sel));
    }
    return blocks;
}

} // namespace dag
} // namespace guoq
