#include "dag/circuit_dag.h"

#include "support/logging.h"

namespace guoq {
namespace dag {

void
CircuitDag::rebuild(const ir::Circuit &c)
{
    const std::size_t n = c.size();
    const auto nq = static_cast<std::size_t>(c.numQubits());
    numQubits_ = c.numQubits();
    numGates_ = n;

    arity_.resize(n);
    qubits_.resize(n * kMaxArity);
    nextLink_.resize(n * kMaxArity);
    prevLink_.resize(n * kMaxArity);
    first_.assign(nq, kNoGate);
    last_.assign(nq, kNoGate);
    frontier_.assign(nq, kNoGate);

    for (std::size_t i = 0; i < n; ++i) {
        const ir::Gate &g = c.gate(i);
        const std::size_t m = g.qubits.size();
        if (m > kMaxArity)
            support::panic(support::strcat("CircuitDag: gate ", i,
                                           " arity ", m, " exceeds ",
                                           kMaxArity));
        arity_[i] = static_cast<std::int8_t>(m);
        const std::size_t base = i * kMaxArity;
        for (std::size_t k = 0; k < kMaxArity; ++k) {
            qubits_[base + k] = k < m ? g.qubits[k] : -1;
            nextLink_[base + k] = kNoGate;
            prevLink_[base + k] = kNoGate;
        }
        for (std::size_t k = 0; k < m; ++k) {
            const auto q = static_cast<std::size_t>(g.qubits[k]);
            const std::size_t p = frontier_[q];
            prevLink_[base + k] = p;
            if (p == kNoGate) {
                first_[q] = i;
            } else {
                // Link the previous gate's slot for this wire to us.
                nextLink_[p * kMaxArity + slotOf(p, g.qubits[k])] = i;
            }
            frontier_[q] = i;
            last_[q] = i;
        }
    }
}

std::size_t
CircuitDag::slotOf(std::size_t gate_idx, int q) const
{
    const std::size_t base = gate_idx * kMaxArity;
    const auto m = static_cast<std::size_t>(arity_[gate_idx]);
    for (std::size_t s = 0; s < m; ++s)
        if (qubits_[base + s] == q)
            return s;
    support::panic(support::strcat("CircuitDag: gate ", gate_idx,
                                   " does not act on qubit ", q));
}

std::size_t
CircuitDag::next(std::size_t gate_idx, int q) const
{
    return nextLink_[gate_idx * kMaxArity + slotOf(gate_idx, q)];
}

std::size_t
CircuitDag::prev(std::size_t gate_idx, int q) const
{
    return prevLink_[gate_idx * kMaxArity + slotOf(gate_idx, q)];
}

std::size_t
CircuitDag::firstOnWire(int q) const
{
    return first_[static_cast<std::size_t>(q)];
}

std::size_t
CircuitDag::lastOnWire(int q) const
{
    return last_[static_cast<std::size_t>(q)];
}

} // namespace dag
} // namespace guoq
