#include "dag/circuit_dag.h"

#include "support/logging.h"

namespace guoq {
namespace dag {

CircuitDag::CircuitDag(const ir::Circuit &c)
    : numQubits_(c.numQubits()),
      first_(static_cast<std::size_t>(c.numQubits()), kNoGate),
      last_(static_cast<std::size_t>(c.numQubits()), kNoGate)
{
    const std::size_t n = c.size();
    gateQubits_.reserve(n);
    nextLink_.resize(n);
    prevLink_.resize(n);

    std::vector<std::size_t> frontier(
        static_cast<std::size_t>(c.numQubits()), kNoGate);

    for (std::size_t i = 0; i < n; ++i) {
        const ir::Gate &g = c.gate(i);
        gateQubits_.push_back(g.qubits);
        const std::size_t m = g.qubits.size();
        nextLink_[i].assign(m, kNoGate);
        prevLink_[i].assign(m, kNoGate);
        for (std::size_t k = 0; k < m; ++k) {
            const auto q = static_cast<std::size_t>(g.qubits[k]);
            const std::size_t p = frontier[q];
            prevLink_[i][k] = p;
            if (p == kNoGate) {
                first_[q] = i;
            } else {
                // Link the previous gate's slot for this wire to us.
                const auto &pq = gateQubits_[p];
                for (std::size_t s = 0; s < pq.size(); ++s)
                    if (pq[s] == g.qubits[k])
                        nextLink_[p][s] = i;
            }
            frontier[q] = i;
            last_[q] = i;
        }
    }
}

std::size_t
CircuitDag::slotOf(std::size_t gate_idx, int q) const
{
    const auto &qs = gateQubits_[gate_idx];
    for (std::size_t s = 0; s < qs.size(); ++s)
        if (qs[s] == q)
            return s;
    support::panic(support::strcat("CircuitDag: gate ", gate_idx,
                                   " does not act on qubit ", q));
}

std::size_t
CircuitDag::next(std::size_t gate_idx, int q) const
{
    return nextLink_[gate_idx][slotOf(gate_idx, q)];
}

std::size_t
CircuitDag::prev(std::size_t gate_idx, int q) const
{
    return prevLink_[gate_idx][slotOf(gate_idx, q)];
}

std::size_t
CircuitDag::firstOnWire(int q) const
{
    return first_[static_cast<std::size_t>(q)];
}

std::size_t
CircuitDag::lastOnWire(int q) const
{
    return last_[static_cast<std::size_t>(q)];
}

} // namespace dag
} // namespace guoq
