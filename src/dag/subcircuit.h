/**
 * @file
 * Convex-subcircuit selection, extraction, and splicing.
 *
 * Resynthesis needs to (a) pick a random subcircuit bounded by a qubit
 * budget, (b) lift it into a standalone circuit, and (c) splice an
 * ε-equivalent replacement back in. A subcircuit must be a *convex*
 * subgraph of the circuit DAG (paper §3) or splicing would break the
 * topological order.
 *
 * Selection uses a forward scan from a random seed with a "dirty wire"
 * rule: once a gate on a wire is skipped, that wire is closed to
 * further inclusion. This guarantees convexity and, because the seed
 * is the earliest selected gate, makes "insert the replacement at the
 * seed's position" a valid splice (see the proof sketch in
 * subcircuit.cc).
 */

#pragma once

#include <cstddef>
#include <vector>

#include "ir/circuit.h"
#include "support/rng.h"

namespace guoq {
namespace dag {

/** A convex selection of gates plus the (sorted) qubits they touch. */
struct SubcircuitSelection
{
    std::vector<std::size_t> indices; //!< ascending gate indices
    std::vector<int> qubits;          //!< sorted global qubits touched

    bool empty() const { return indices.empty(); }
    std::size_t size() const { return indices.size(); }
};

/**
 * Grow a convex subcircuit from @p seed, touching at most
 * @p max_qubits qubits, at most @p max_gates gates, and (when
 * @p max_two_qubit ≥ 0) at most that many 2-qubit gates — synthesis
 * cost scales with the entangler count, so resynthesis callers keep
 * selections shallow.
 */
SubcircuitSelection growConvex(const ir::Circuit &c, std::size_t seed,
                               int max_qubits, std::size_t max_gates,
                               int max_two_qubit = -1);

/** Uniformly pick a seed gate and grow from it. */
SubcircuitSelection randomConvex(const ir::Circuit &c, support::Rng &rng,
                                 int max_qubits, std::size_t max_gates,
                                 int max_two_qubit = -1);

/**
 * Lift the selection into a standalone circuit on
 * selection.qubits.size() qubits (global qubit k maps to its rank in
 * selection.qubits).
 */
ir::Circuit extract(const ir::Circuit &c, const SubcircuitSelection &sel);

/**
 * Replace the selected gates with @p replacement (a circuit over the
 * selection's local qubits). Returns the new full circuit.
 */
ir::Circuit splice(const ir::Circuit &c, const SubcircuitSelection &sel,
                   const ir::Circuit &replacement);

/**
 * Partition the whole circuit into disjoint convex blocks of at most
 * @p max_qubits qubits each (the BQSKit/QUEST-style partitioner used
 * by the partition+resynthesize baseline). Every gate lands in exactly
 * one block; blocks are returned in program order.
 */
std::vector<SubcircuitSelection> partitionConvex(const ir::Circuit &c,
                                                 int max_qubits,
                                                 std::size_t max_gates);

} // namespace dag
} // namespace guoq
