/**
 * @file
 * guoq-opt: the command-line optimizer — read an OpenQASM 2.0 file,
 * lower it to a target gate set, optimize with GUOQ, and write the
 * optimized OpenQASM to stdout (statistics go to stderr).
 *
 * Usage:
 *   guoq_opt FILE.qasm [--set ibmq20|ibm-eagle|ionq|nam|cliffordt]
 *            [--objective 2q|t|2t+cx|fidelity|gates|depth]
 *            [--eps EPS] [--seconds S] [--seed N] [--async]
 *            [--rewrite-only|--resynth-only]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/guoq.h"
#include "qasm/parser.h"
#include "qasm/printer.h"
#include "support/logging.h"
#include "transpile/to_gate_set.h"

namespace {

using namespace guoq;

ir::GateSetKind
parseSet(const std::string &name)
{
    for (ir::GateSetKind set : ir::allGateSets())
        if (ir::gateSetName(set) == name)
            return set;
    if (name == "ibm-eagle" || name == "eagle")
        return ir::GateSetKind::IbmEagle;
    if (name == "clifford+t")
        return ir::GateSetKind::CliffordT;
    support::fatal("unknown gate set '" + name +
                   "' (ibmq20, ibm-eagle, ionq, nam, cliffordt)");
}

core::Objective
parseObjective(const std::string &name)
{
    if (name == "2q")
        return core::Objective::TwoQubitCount;
    if (name == "t")
        return core::Objective::TCount;
    if (name == "2t+cx")
        return core::Objective::TThenTwoQubit;
    if (name == "fidelity")
        return core::Objective::Fidelity;
    if (name == "gates")
        return core::Objective::GateCount;
    if (name == "depth")
        return core::Objective::Depth;
    support::fatal("unknown objective '" + name +
                   "' (2q, t, 2t+cx, fidelity, gates, depth)");
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: guoq_opt FILE.qasm [--set NAME] [--objective OBJ]\n"
        "                [--eps EPS] [--seconds S] [--seed N] "
        "[--async]\n"
        "                [--rewrite-only|--resynth-only]\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();

    std::string file;
    ir::GateSetKind set = ir::GateSetKind::IbmEagle;
    core::GuoqConfig cfg;
    cfg.epsilonTotal = 1e-5;
    cfg.timeBudgetSeconds = 10.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--set")
            set = parseSet(next());
        else if (arg == "--objective")
            cfg.objective = parseObjective(next());
        else if (arg == "--eps")
            cfg.epsilonTotal = std::atof(next().c_str());
        else if (arg == "--seconds")
            cfg.timeBudgetSeconds = std::atof(next().c_str());
        else if (arg == "--seed")
            cfg.seed = static_cast<std::uint64_t>(
                std::atoll(next().c_str()));
        else if (arg == "--async")
            cfg.synthWorkers = 1;
        else if (arg == "--rewrite-only")
            cfg.selection = core::TransformSelection::RewriteOnly;
        else if (arg == "--resynth-only")
            cfg.selection = core::TransformSelection::ResynthOnly;
        else if (!arg.empty() && arg[0] == '-')
            usage();
        else
            file = arg;
    }
    if (file.empty())
        usage();

    const ir::Circuit input = qasm::parseFile(file);
    const ir::Circuit lowered = transpile::toGateSet(input, set);
    std::fprintf(stderr,
                 "guoq-opt: %s -> %s: %zu gates (%zu 2q, %zu T)\n",
                 file.c_str(), ir::gateSetName(set).c_str(),
                 lowered.size(), lowered.twoQubitGateCount(),
                 lowered.tGateCount());

    const core::GuoqResult r = core::optimize(lowered, set, cfg);
    std::fprintf(stderr,
                 "guoq-opt: optimized: %zu gates (%zu 2q, %zu T), "
                 "error bound %.2e, %ld iterations\n",
                 r.best.size(), r.best.twoQubitGateCount(),
                 r.best.tGateCount(), r.errorBound,
                 r.stats.iterations);

    std::fputs(qasm::toQasm(r.best).c_str(), stdout);
    return 0;
}
