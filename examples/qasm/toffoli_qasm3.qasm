// A Toffoli wrapped in redundant single-qubit gates, written with
// QASM 3 const declarations and single-qubit broadcast (`h q;`).
OPENQASM 3.0;
include "stdgates.inc";
const float[64] eighth = pi / 8;
qubit[3] q;
h q;
rz(eighth) q[0];
rz(-eighth) q[0];
ccx q[0], q[1], q[2];
h q;
