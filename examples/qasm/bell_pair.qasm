// A Bell pair sandwiched by its own inverse — GUOQ reduces this to
// nothing at any objective (a two-line smoke test for the CLI).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0], q[1];
cx q[0], q[1];
h q[0];
