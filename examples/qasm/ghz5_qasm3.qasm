// 5-qubit GHZ state preparation in OpenQASM 3 syntax: qubit[n]
// declaration, stdgates include, and a gphase the optimizer may drop
// freely (all objectives are phase-invariant).
OPENQASM 3.0;
include "stdgates.inc";
qubit[5] q;
h q[0];
cx q[0], q[1];
cx q[1], q[2];
cx q[2], q[3];
cx q[3], q[4];
gphase(pi/8);
