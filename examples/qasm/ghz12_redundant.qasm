// A 12-qubit GHZ ladder padded with self-cancelling pairs: wide
// enough that the dense verifier can never touch it (the batch/CI
// case for `--verify --verify-method sampling`), with enough
// redundancy that the optimizer has something to remove.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[12];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
cx q[2], q[3];
cx q[3], q[4];
cx q[4], q[5];
cx q[5], q[6];
cx q[6], q[7];
cx q[7], q[8];
cx q[8], q[9];
cx q[9], q[10];
cx q[10], q[11];
h q[11];
h q[11];
cx q[4], q[5];
cx q[4], q[5];
t q[3];
tdg q[3];
s q[7];
sdg q[7];
x q[9];
x q[9];
cx q[0], q[1];
cx q[0], q[1];
