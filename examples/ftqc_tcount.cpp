/**
 * @file
 * FTQC scenario (paper Q4): minimizing T count, then CX count, for an
 * error-corrected Clifford+T target — including the PyZX-then-GUOQ
 * pipeline of Fig. 14 where phase-polynomial merging drains T gates
 * and GUOQ then cuts the CX congestion it leaves behind.
 *
 * Run: ./examples/ftqc_tcount [controls]
 */

#include <cstdio>
#include <cstdlib>

#include "baselines/phase_poly.h"
#include "core/guoq.h"
#include "transpile/to_gate_set.h"
#include "workloads/standard.h"

int
main(int argc, char **argv)
{
    using namespace guoq;

    const int controls = argc > 1 ? std::atoi(argv[1]) : 5;

    // A multi-control Toffoli ladder — a building block of Shor-scale
    // arithmetic, dominated by T gates after Clifford+T lowering.
    const ir::GateSetKind set = ir::GateSetKind::CliffordT;
    const ir::Circuit circuit =
        transpile::toGateSet(workloads::barencoTof(controls), set);

    auto report = [](const char *stage, const ir::Circuit &c) {
        // Example 5.1's amalgamated FTQC cost: 2·#T + #CX.
        std::printf("  %-18s T=%3zu  CX=%3zu  cost(2T+CX)=%5.0f  "
                    "total=%4zu\n",
                    stage, c.tGateCount(), c.twoQubitGateCount(),
                    2.0 * c.tGateCount() + c.twoQubitGateCount(),
                    c.size());
    };

    std::printf("barenco_tof_%d on clifford+t:\n", controls);
    report("input", circuit);

    // Stage 1: ZX-style phase-polynomial T merging (the PyZX profile:
    // strong on T, never touches CX).
    const ir::Circuit zx = baselines::phasePolyOptimize(circuit, set);
    report("phase-poly", zx);

    // Stage 2: GUOQ with the paper's FTQC objective — reduce T first,
    // CX second; the weighted cost cannot trade T up for CX down.
    core::GuoqConfig cfg;
    cfg.objective = core::Objective::TThenTwoQubit;
    cfg.epsilonTotal = 1e-5;
    cfg.timeBudgetSeconds = 8.0;
    cfg.seed = 11;
    const core::GuoqResult r = core::optimize(zx, set, cfg);
    report("phase-poly + guoq", r.best);

    std::printf("  error bound across the whole pipeline: %.2e\n",
                r.errorBound);
    return 0;
}
