/**
 * @file
 * Extending the framework (paper §4): circuit transformations are
 * closed boxes, so user code can plug its own τ_ε's in. This example
 * instantiates the primitives directly — rule passes, 1q fusion, and
 * a resynthesis call on a hand-picked subcircuit — and composes them
 * manually while tracking the Thm. 4.2 additive error bound.
 *
 * Run: ./examples/custom_transform
 */

#include <cstdio>

#include "dag/subcircuit.h"
#include "rewrite/applier.h"
#include "rewrite/rule.h"
#include "sim/unitary_sim.h"
#include "synth/resynth.h"
#include "transpile/to_gate_set.h"
#include "workloads/simulation.h"

int
main()
{
    using namespace guoq;

    const ir::GateSetKind set = ir::GateSetKind::Nam;
    ir::Circuit circuit =
        transpile::toGateSet(workloads::trotterIsing(4, 2), set);
    const ir::Circuit original = circuit;
    double error_bound = 0;

    std::printf("trotter ising, 4 qubits x 2 steps on %s: %zu gates\n",
                ir::gateSetName(set).c_str(), circuit.size());

    // Transformation 1 (ε = 0): one full pass of every library rule.
    support::Rng rng(5);
    for (const rewrite::RewriteRule &rule : rewrite::rulesFor(set)) {
        const rewrite::PassResult r =
            rewrite::applyRulePassRandom(circuit, rule, rng);
        if (r.applications > 0)
            circuit = r.circuit;
    }
    std::printf("after rule passes:        %zu gates (error bound "
                "%.1e)\n",
                circuit.size(), error_bound);

    // Transformation 2 (ε = 0): exact 1q-run fusion.
    circuit = transpile::fuseOneQubitRuns(circuit, set);
    std::printf("after 1q fusion:          %zu gates (error bound "
                "%.1e)\n",
                circuit.size(), error_bound);

    // Transformation 3 (ε > 0): resynthesize a convex subcircuit. The
    // measured distance is charged against the budget (Thm. 4.2: the
    // final error is at most the sum of the step errors).
    for (int attempt = 0; attempt < 30; ++attempt) {
        const dag::SubcircuitSelection sel =
            dag::randomConvex(circuit, rng, 3, 24, 6);
        if (sel.size() < 4)
            continue;
        synth::ResynthOptions opts;
        opts.targetSet = set;
        opts.epsilon = 1e-6;
        opts.deadline = support::Deadline::in(3.0);
        const synth::ResynthResult r =
            synth::resynthesize(dag::extract(circuit, sel), opts, rng);
        if (!r.success)
            continue;
        circuit = dag::splice(circuit, sel, r.circuit);
        error_bound += r.distance;
        std::printf("after resynthesis splice: %zu gates (error bound "
                    "%.1e)\n",
                    circuit.size(), error_bound);
        break;
    }

    // Validate the composed bound against ground truth.
    const double actual = sim::circuitDistance(original, circuit);
    std::printf("\nThm 4.2 check: measured distance %.2e <= summed "
                "bound %.2e (+ metric noise)\n",
                actual, error_bound);
    std::printf("2q count: %zu -> %zu\n", original.twoQubitGateCount(),
                circuit.twoQubitGateCount());
    return 0;
}
