/**
 * @file
 * NISQ scenario: compiling a QAOA MaxCut circuit for an ion-trap
 * device, maximizing fidelity under the device error model — the
 * workload the paper's introduction motivates for near-term hardware.
 *
 * Demonstrates the fidelity objective, the IonQ Rxx gate set, and the
 * cost of skipping optimization.
 *
 * Run: ./examples/nisq_qaoa [qubits] [layers]
 */

#include <cstdio>
#include <cstdlib>

#include "core/guoq.h"
#include "fidelity/error_model.h"
#include "transpile/to_gate_set.h"
#include "workloads/variational.h"

int
main(int argc, char **argv)
{
    using namespace guoq;

    const int qubits = argc > 1 ? std::atoi(argv[1]) : 8;
    const int layers = argc > 2 ? std::atoi(argv[2]) : 2;

    // A MaxCut instance on a random connected graph.
    const ir::Circuit generic =
        workloads::qaoaMaxCut(qubits, layers, /*seed=*/2026);
    const ir::GateSetKind set = ir::GateSetKind::IonQ;
    const ir::Circuit native = transpile::toGateSet(generic, set);
    const fidelity::ErrorModel &model = fidelity::errorModelFor(set);

    std::printf("qaoa maxcut, %d qubits x %d layers on %s\n", qubits,
                layers, ir::gateSetName(set).c_str());
    std::printf("  unoptimized: %4zu gates (%3zu rxx), est. fidelity "
                "%.4f\n",
                native.size(), native.twoQubitGateCount(),
                model.circuitFidelity(native));

    core::GuoqConfig cfg;
    cfg.objective = core::Objective::Fidelity;
    cfg.epsilonTotal = 1e-5;
    cfg.timeBudgetSeconds = 8.0;
    cfg.seed = 7;
    const core::GuoqResult r = core::optimize(native, set, cfg);

    std::printf("  guoq:        %4zu gates (%3zu rxx), est. fidelity "
                "%.4f\n",
                r.best.size(), r.best.twoQubitGateCount(),
                model.circuitFidelity(r.best));
    std::printf("  error bound: %.2e (hard constraint %.0e)\n",
                r.errorBound, cfg.epsilonTotal);

    const double gain = model.circuitFidelity(r.best) /
                        model.circuitFidelity(native);
    std::printf("  success-probability gain: %.2fx\n", gain);
    return 0;
}
