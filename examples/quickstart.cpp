/**
 * @file
 * Quickstart: build a circuit, lower it to a hardware gate set, run
 * GUOQ, and inspect the result — the five-minute tour of the public
 * API.
 *
 * Run: ./examples/quickstart
 */

#include <cstdio>

#include "core/guoq.h"
#include "qasm/printer.h"
#include "sim/unitary_sim.h"
#include "transpile/to_gate_set.h"
#include "workloads/standard.h"

int
main()
{
    using namespace guoq;

    // 1. Build a circuit — here the 5-qubit quantum Fourier transform.
    ir::Circuit circuit = workloads::qft(5);
    std::printf("qft(5): %zu gates, %zu two-qubit\n", circuit.size(),
                circuit.twoQubitGateCount());

    // 2. Lower it to a hardware gate set (paper Table 2).
    const ir::GateSetKind set = ir::GateSetKind::IbmEagle;
    circuit = transpile::toGateSet(circuit, set);
    std::printf("lowered to %s: %zu gates, %zu two-qubit\n",
                ir::gateSetName(set).c_str(), circuit.size(),
                circuit.twoQubitGateCount());

    // 3. Optimize with GUOQ: 5 seconds, ε_f = 1e-5, minimize 2q count.
    core::GuoqConfig cfg;
    cfg.objective = core::Objective::TwoQubitCount;
    cfg.epsilonTotal = 1e-5;
    cfg.timeBudgetSeconds = 5.0;
    cfg.seed = 42;
    const core::GuoqResult result = core::optimize(circuit, set, cfg);

    std::printf("after guoq: %zu gates, %zu two-qubit "
                "(error bound %.2e, %ld iterations, %ld resynthesis "
                "accepts)\n",
                result.best.size(), result.best.twoQubitGateCount(),
                result.errorBound, result.stats.iterations,
                result.stats.resynthAccepted);

    // 4. Verify the Thm. 5.3 guarantee on the full unitary.
    const double distance = sim::circuitDistance(circuit, result.best);
    std::printf("verified Hilbert-Schmidt distance: %.2e (<= %.0e)\n",
                distance, cfg.epsilonTotal);

    // 5. Export as OpenQASM for downstream tools.
    std::printf("\nfirst lines of the optimized OpenQASM:\n");
    const std::string text = qasm::toQasm(result.best);
    std::printf("%.*s...\n", 200, text.c_str());
    return 0;
}
