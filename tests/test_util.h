/**
 * @file
 * Shared helpers for the test suite: exactness thresholds, random
 * native-circuit generation, and basis-index helpers.
 */

#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "ir/circuit.h"
#include "ir/gate_set.h"
#include "support/rng.h"

namespace guoq {
namespace testutil {

/**
 * Exactness threshold for the Hilbert–Schmidt distance: machine
 * epsilon under Δ's square root amplifies to ~1e-8, so "exactly equal"
 * circuits measure up to ~1e-7 on ≤10-qubit unitaries.
 */
constexpr double kExact = 1e-6;

/** A random circuit drawn from @p set's native gates. */
inline ir::Circuit
randomNativeCircuit(ir::GateSetKind set, int num_qubits, int num_gates,
                    support::Rng &rng)
{
    const std::vector<ir::GateKind> &kinds = ir::nativeGates(set);
    ir::Circuit c(num_qubits);
    for (int i = 0; i < num_gates; ++i) {
        const ir::GateKind kind = kinds[rng.index(kinds.size())];
        const int arity = ir::gateArity(kind);
        if (arity > num_qubits) {
            --i;
            continue;
        }
        std::vector<int> qubits;
        while (static_cast<int>(qubits.size()) < arity) {
            const int q = static_cast<int>(
                rng.index(static_cast<std::size_t>(num_qubits)));
            bool dup = false;
            for (int used : qubits)
                dup |= used == q;
            if (!dup)
                qubits.push_back(q);
        }
        std::vector<double> params;
        for (int p = 0; p < ir::gateParamCount(kind); ++p)
            params.push_back(rng.uniform(-M_PI, M_PI));
        c.add(kind, std::move(qubits), std::move(params));
    }
    return c;
}

/**
 * Basis-state index for per-qubit bit values (qubit 0 = MSB, matching
 * the simulator convention).
 */
inline std::size_t
basisIndex(const std::vector<int> &bits)
{
    std::size_t idx = 0;
    for (int b : bits)
        idx = (idx << 1) | static_cast<std::size_t>(b & 1);
    return idx;
}

} // namespace testutil
} // namespace guoq
