/** @file Tests for the rewrite-rule matcher. */

#include <gtest/gtest.h>

#include <cmath>

#include "rewrite/matcher.h"
#include "rewrite/rule.h"

namespace guoq {
namespace {

using namespace rewrite;
using ir::GateKind;

RewriteRule
cxCancelRule()
{
    return RewriteRule("cx_cancel",
                       {PatternGate{GateKind::CX, {0, 1}, {}},
                        PatternGate{GateKind::CX, {0, 1}, {}}},
                       {});
}

RewriteRule
rzMergeRule()
{
    return RewriteRule(
        "rz_merge",
        {PatternGate{GateKind::Rz, {0}, {AngleExpr::var(0)}},
         PatternGate{GateKind::Rz, {0}, {AngleExpr::var(1)}}},
        {PatternGate{GateKind::Rz, {0}, {AngleExpr::sum(0, 1)}}});
}

TEST(Matcher, FindsAdjacentCxPair)
{
    ir::Circuit c(2);
    c.cx(0, 1);
    c.cx(0, 1);
    const Matcher m(c);
    const auto match = m.matchAt(cxCancelRule(), 0);
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->gateIndices, (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(match->qubitBinding, (std::vector<int>{0, 1}));
}

TEST(Matcher, RejectsReversedCx)
{
    ir::Circuit c(2);
    c.cx(0, 1);
    c.cx(1, 0); // reversed: qubit variables inconsistent
    const Matcher m(c);
    EXPECT_FALSE(m.matchAt(cxCancelRule(), 0).has_value());
}

TEST(Matcher, MatchesAcrossUnrelatedWires)
{
    // A gate on a third wire between the pair does not block matching.
    ir::Circuit c(3);
    c.cx(0, 1); // 0
    c.h(2);     // 1: unrelated
    c.cx(0, 1); // 2
    const Matcher m(c);
    const auto match = m.matchAt(cxCancelRule(), 0);
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->gateIndices, (std::vector<std::size_t>{0, 2}));
}

TEST(Matcher, InterveningGateOnSharedWireBlocks)
{
    ir::Circuit c(2);
    c.cx(0, 1);
    c.h(1); // breaks wire contiguity on qubit 1
    c.cx(0, 1);
    const Matcher m(c);
    EXPECT_FALSE(m.matchAt(cxCancelRule(), 0).has_value());
}

TEST(Matcher, BindsAngles)
{
    ir::Circuit c(1);
    c.rz(0.25, 0);
    c.rz(0.5, 0);
    const Matcher m(c);
    const auto match = m.matchAt(rzMergeRule(), 0);
    ASSERT_TRUE(match.has_value());
    ASSERT_EQ(match->angleBinding.size(), 2u);
    EXPECT_NEAR(match->angleBinding[0], 0.25, 1e-12);
    EXPECT_NEAR(match->angleBinding[1], 0.5, 1e-12);
}

TEST(Matcher, ConstantAngleMustMatch)
{
    RewriteRule rule(
        "rz_pi_only",
        {PatternGate{GateKind::Rz, {0}, {AngleExpr::lit(M_PI)}}}, {});
    ir::Circuit yes(1), no(1);
    yes.rz(M_PI, 0);
    no.rz(0.5, 0);
    EXPECT_TRUE(Matcher(yes).matchAt(rule, 0).has_value());
    EXPECT_FALSE(Matcher(no).matchAt(rule, 0).has_value());
}

TEST(Matcher, ConstantAngleMatchesModulo2Pi)
{
    RewriteRule rule(
        "rz_pi_only",
        {PatternGate{GateKind::Rz, {0}, {AngleExpr::lit(M_PI)}}}, {});
    ir::Circuit c(1);
    c.rz(-M_PI, 0); // -π ≡ π (mod 2π)
    EXPECT_TRUE(Matcher(c).matchAt(rule, 0).has_value());
}

TEST(Matcher, GuardRejects)
{
    RewriteRule rule(
        "rz_zero",
        {PatternGate{GateKind::Rz, {0}, {AngleExpr::var(0)}}}, {},
        [](const std::vector<double> &a) {
            return std::abs(a[0]) < 1e-9;
        });
    ir::Circuit zero(1), nonzero(1);
    zero.rz(0, 0);
    nonzero.rz(0.3, 0);
    EXPECT_TRUE(Matcher(zero).matchAt(rule, 0).has_value());
    EXPECT_FALSE(Matcher(nonzero).matchAt(rule, 0).has_value());
}

TEST(Matcher, RepeatedAngleVariableConstrains)
{
    // Pattern Rz(a) Rz(a): both angles must be equal.
    RewriteRule rule(
        "rz_twice",
        {PatternGate{GateKind::Rz, {0}, {AngleExpr::var(0)}},
         PatternGate{GateKind::Rz, {0}, {AngleExpr::var(0)}}},
        {PatternGate{GateKind::Rz, {0},
                     {AngleExpr{0, {{0, 2.0}}}}}});
    ir::Circuit same(1), diff(1);
    same.rz(0.4, 0);
    same.rz(0.4, 0);
    diff.rz(0.4, 0);
    diff.rz(0.5, 0);
    EXPECT_TRUE(Matcher(same).matchAt(rule, 0).has_value());
    EXPECT_FALSE(Matcher(diff).matchAt(rule, 0).has_value());
}

TEST(Matcher, AnchorMustMatchFirstPatternGate)
{
    ir::Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    c.cx(0, 1);
    const Matcher m(c);
    EXPECT_FALSE(m.matchAt(cxCancelRule(), 0).has_value()); // anchor = H
    EXPECT_TRUE(m.matchAt(cxCancelRule(), 1).has_value());
}

TEST(Matcher, QubitVariablesStayDistinct)
{
    // Pattern CX(0,1); CX(0,2) requires three distinct qubits.
    RewriteRule rule("shared_control",
                     {PatternGate{GateKind::CX, {0, 1}, {}},
                      PatternGate{GateKind::CX, {0, 2}, {}}},
                     {PatternGate{GateKind::CX, {0, 2}, {}},
                      PatternGate{GateKind::CX, {0, 1}, {}}});
    ir::Circuit distinct(3), repeat(2);
    distinct.cx(0, 1);
    distinct.cx(0, 2);
    repeat.cx(0, 1);
    repeat.cx(0, 1); // second target equals first: var clash
    EXPECT_TRUE(Matcher(distinct).matchAt(rule, 0).has_value());
    EXPECT_FALSE(Matcher(repeat).matchAt(rule, 0).has_value());
}

TEST(Matcher, InsertPosAfterEarlierProducerOnFreshWire)
{
    // Rz(q0); CX(q0,q1) with an X(q1) in between: valid match, but the
    // replacement must be inserted after the X.
    RewriteRule rule(
        "rz_commute",
        {PatternGate{GateKind::Rz, {0}, {AngleExpr::var(0)}},
         PatternGate{GateKind::CX, {0, 1}, {}}},
        {PatternGate{GateKind::CX, {0, 1}, {}},
         PatternGate{GateKind::Rz, {0}, {AngleExpr::var(0)}}});
    ir::Circuit c(2);
    c.rz(0.3, 0); // 0
    c.x(1);       // 1: feeds the CX on wire 1
    c.cx(0, 1);   // 2
    const Matcher m(c);
    const auto match = m.matchAt(rule, 0);
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->insertPos, 2u); // after the X at index 1
}

TEST(Matcher, SandwichNonConvexRejected)
{
    // CX(0,1) ... X(0), X(1) ... CX(0,1) where the middle gates form a
    // bridge: contiguity on both wires is broken.
    ir::Circuit c(2);
    c.cx(0, 1);
    c.x(0);
    c.x(1);
    c.cx(0, 1);
    EXPECT_FALSE(Matcher(c).matchAt(cxCancelRule(), 0).has_value());
}

TEST(Matcher, OutOfRangeAnchorIsNoMatch)
{
    ir::Circuit c(2);
    c.cx(0, 1);
    EXPECT_FALSE(Matcher(c).matchAt(cxCancelRule(), 5).has_value());
}

} // namespace
} // namespace guoq
