/** @file Tests for the support utilities (rng, stats, table, options). */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "support/options.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"
#include "support/timer.h"

namespace guoq {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    support::Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    support::Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a() == b() ? 1 : 0;
    EXPECT_LT(same, 4);
}

TEST(Rng, IndexStaysInRange)
{
    support::Rng rng(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.index(7), 7u);
}

TEST(Rng, UniformStaysInRange)
{
    support::Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        const double v = rng.uniform(2.0, 3.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, UniformIsRoughlyUniform)
{
    support::Rng rng(5);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceMatchesProbability)
{
    support::Rng rng(6);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.2) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.2, 0.01);
}

TEST(Rng, ForkProducesIndependentStream)
{
    support::Rng a(7);
    support::Rng child = a.fork();
    EXPECT_NE(a(), child());
}

TEST(Stats, SummaryOfConstantSample)
{
    const support::Summary s = support::summarize({2.0, 2.0, 2.0});
    EXPECT_EQ(s.n, 3u);
    EXPECT_NEAR(s.mean, 2.0, 1e-12);
    EXPECT_NEAR(s.stddev, 0.0, 1e-12);
    EXPECT_NEAR(s.ci95, 0.0, 1e-12);
    EXPECT_EQ(s.minv, 2.0);
    EXPECT_EQ(s.maxv, 2.0);
}

TEST(Stats, SummaryMeanAndSpread)
{
    const support::Summary s = support::summarize({1.0, 2.0, 3.0, 4.0});
    EXPECT_NEAR(s.mean, 2.5, 1e-12);
    EXPECT_GT(s.stddev, 1.0);
    EXPECT_GT(s.ci95, 0.0);
    EXPECT_EQ(s.minv, 1.0);
    EXPECT_EQ(s.maxv, 4.0);
}

TEST(Stats, CompareMeansThreeWay)
{
    using support::CompareOutcome;
    EXPECT_EQ(support::compareMeans(0.5, 0.4), CompareOutcome::Better);
    EXPECT_EQ(support::compareMeans(0.4, 0.5), CompareOutcome::Worse);
    EXPECT_EQ(support::compareMeans(0.5, 0.5), CompareOutcome::Match);
}

TEST(Stats, CompareCountsAccumulate)
{
    support::CompareCounts c;
    c.add(support::CompareOutcome::Better);
    c.add(support::CompareOutcome::Better);
    c.add(support::CompareOutcome::Worse);
    c.add(support::CompareOutcome::Match);
    EXPECT_EQ(c.better, 2);
    EXPECT_EQ(c.match, 1);
    EXPECT_EQ(c.worse, 1);
    EXPECT_EQ(c.total(), 4);
}

TEST(Table, RendersAlignedColumns)
{
    support::TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string s = t.render();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(support::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(support::fmtPct(0.283, 1), "28.3%");
}

TEST(Options, EnvFallbacks)
{
    ::unsetenv("GUOQ_TEST_OPTION");
    EXPECT_EQ(support::envDouble("GUOQ_TEST_OPTION", 2.5), 2.5);
    EXPECT_EQ(support::envInt("GUOQ_TEST_OPTION", 7), 7);
    ::setenv("GUOQ_TEST_OPTION", "3.5", 1);
    EXPECT_EQ(support::envDouble("GUOQ_TEST_OPTION", 2.5), 3.5);
    ::setenv("GUOQ_TEST_OPTION", "junk", 1);
    EXPECT_EQ(support::envInt("GUOQ_TEST_OPTION", 7), 7);
    ::unsetenv("GUOQ_TEST_OPTION");
}

TEST(Options, BenchScaleClampsDegenerateValues)
{
    // GUOQ_BENCH_SCALE=0 (or negative) must not zero every search
    // budget — the harnesses would silently optimize nothing.
    ::setenv("GUOQ_BENCH_SCALE", "0", 1);
    EXPECT_GT(support::benchScale(), 0.0);
    ::setenv("GUOQ_BENCH_SCALE", "-3", 1);
    EXPECT_GT(support::benchScale(), 0.0);
    ::setenv("GUOQ_BENCH_SCALE", "0.0001", 1);
    EXPECT_GT(support::benchScale(), 0.0);
    ::setenv("GUOQ_BENCH_SCALE", "2.5", 1);
    EXPECT_EQ(support::benchScale(), 2.5);
    ::setenv("GUOQ_BENCH_SCALE", "nan", 1);
    EXPECT_GT(support::benchScale(), 0.0);
    ::setenv("GUOQ_BENCH_SCALE", "inf", 1);
    EXPECT_TRUE(std::isfinite(support::benchScale()));
    ::unsetenv("GUOQ_BENCH_SCALE");

    ::setenv("GUOQ_BENCH_TRIALS", "0", 1);
    EXPECT_GE(support::benchTrials(), 1);
    ::unsetenv("GUOQ_BENCH_TRIALS");
}

TEST(Timer, MeasuresElapsedTime)
{
    support::Timer t;
    EXPECT_GE(t.seconds(), 0.0);
    EXPECT_LT(t.seconds(), 1.0);
}

TEST(Deadline, UnlimitedNeverExpires)
{
    const support::Deadline d;
    EXPECT_FALSE(d.expired());
    EXPECT_GT(d.remaining(), 1e12);
}

TEST(Deadline, ExpiresAfterDuration)
{
    const support::Deadline d = support::Deadline::in(0.0);
    EXPECT_TRUE(d.expired());
    EXPECT_EQ(d.remaining(), 0.0);
}

TEST(Deadline, SliceNeverExceedsParent)
{
    const support::Deadline d = support::Deadline::in(0.05);
    const support::Deadline s = d.slice(100.0);
    EXPECT_LE(s.remaining(), 0.06);
}

} // namespace
} // namespace guoq
