/**
 * @file
 * The streaming service tier (src/serve/): credit accounting and
 * bounded queues under stress, `guoq-serve-v1` framing robustness,
 * exactly-once row emission, drain-on-shutdown, cooperative
 * cancellation/deadlines through the observer hooks, fixed-seed
 * determinism, and the serve-vs-batch differential over the example
 * corpus.
 *
 * Hang protection: every scenario here must finish in seconds; the
 * suite runs under ctest's fast-label TIMEOUT (CMakeLists.txt), so a
 * wedged queue or a reader that stalls on malformed input fails
 * loudly as a timeout instead of hanging CI forever.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/emit.h"
#include "core/observer.h"
#include "core/optimizer.h"
#include "serve/framing.h"
#include "serve/pipeline.h"
#include "serve/server.h"

namespace guoq {
namespace {

namespace fs = std::filesystem;

// --- pipeline primitives ---------------------------------------------

TEST(Credits, PeakNeverExceedsCapacityUnderStress)
{
    serve::Credits credits(4);
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&credits] {
            for (int i = 0; i < 200; ++i) {
                credits.acquire();
                credits.release();
            }
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_LE(credits.peak(), 4u);
    EXPECT_GE(credits.peak(), 1u);
    EXPECT_EQ(credits.inFlight(), 0u);
}

TEST(BoundedQueue, OccupancyNeverExceedsCapacityAndNothingIsLost)
{
    serve::BoundedQueue<int> q(3);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 500;
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p)
        producers.emplace_back([&q, p] {
            for (int i = 0; i < kPerProducer; ++i)
                ASSERT_TRUE(q.push(p * kPerProducer + i));
        });

    std::mutex seen_mutex;
    std::vector<int> seen;
    std::vector<std::thread> consumers;
    for (int c = 0; c < 3; ++c)
        consumers.emplace_back([&] {
            int v;
            while (q.pop(v)) {
                std::lock_guard<std::mutex> lock(seen_mutex);
                seen.push_back(v);
            }
        });

    for (std::thread &t : producers)
        t.join();
    q.close();
    for (std::thread &t : consumers)
        t.join();

    EXPECT_LE(q.peak(), 3u);
    ASSERT_EQ(seen.size(),
              static_cast<std::size_t>(kProducers * kPerProducer));
    std::sort(seen.begin(), seen.end());
    for (int i = 0; i < kProducers * kPerProducer; ++i)
        EXPECT_EQ(seen[static_cast<std::size_t>(i)], i); // exactly once
}

TEST(BoundedQueue, CloseDrainsQueuedItemsThenStops)
{
    serve::BoundedQueue<int> q(8);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(q.push(i));
    q.close();
    EXPECT_FALSE(q.push(99)); // refused after close
    int v;
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(q.pop(v)); // queued items survive the close
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(q.pop(v));
}

// --- observer hooks: cancellation and deadlines ----------------------

TEST(ObserverHooks, DeadlineExpiryReadsAsCancellation)
{
    core::ObserverHooks hooks;
    EXPECT_FALSE(hooks.cancelled());
    EXPECT_FALSE(hooks.deadlineExpired());

    hooks.setDeadlineIn(-1.0); // already in the past
    EXPECT_TRUE(hooks.deadlineExpired());
    EXPECT_TRUE(hooks.cancelled());

    core::ObserverHooks viaToken;
    viaToken.cancel = core::makeCancelToken();
    EXPECT_FALSE(viaToken.cancelled());
    viaToken.cancel->store(true);
    EXPECT_TRUE(viaToken.cancelled());
    EXPECT_FALSE(viaToken.deadlineExpired()); // unarmed stays unarmed
}

// --- framing ---------------------------------------------------------

std::string
frameText(const std::string &id, const std::string &payload,
          const std::uint64_t *seed = nullptr,
          const double *deadlineMs = nullptr)
{
    serve::Frame f;
    f.id = id;
    f.payload = payload;
    if (seed) {
        f.seed = *seed;
        f.hasSeed = true;
    }
    if (deadlineMs) {
        f.deadlineMs = *deadlineMs;
        f.hasDeadline = true;
    }
    std::ostringstream out;
    serve::writeFrame(out, f);
    return out.str();
}

TEST(Framing, WriteThenReadRoundTrips)
{
    const std::uint64_t seed = 42;
    const double deadline = 1500;
    std::istringstream in(
        frameText("job-1", "OPENQASM 2.0;\nqreg q[1];\n", &seed,
                  &deadline));
    serve::FrameReader reader(in);
    serve::Frame f;
    serve::FrameError err;
    ASSERT_EQ(reader.next(f, err), serve::FrameReader::Status::Frame);
    EXPECT_EQ(f.id, "job-1");
    EXPECT_EQ(f.payload, "OPENQASM 2.0;\nqreg q[1];\n");
    ASSERT_TRUE(f.hasSeed);
    EXPECT_EQ(f.seed, 42u);
    ASSERT_TRUE(f.hasDeadline);
    EXPECT_EQ(f.deadlineMs, 1500);
    ASSERT_EQ(reader.next(f, err), serve::FrameReader::Status::Eof);
}

TEST(Framing, GarbageBytesProduceLocatedErrorThenRecover)
{
    std::istringstream in("complete nonsense\n" +
                          frameText("after-garbage", "qreg q[1];\n"));
    serve::FrameReader reader(in);
    serve::Frame f;
    serve::FrameError err;
    ASSERT_EQ(reader.next(f, err), serve::FrameReader::Status::Error);
    EXPECT_EQ(err.line, 1);
    EXPECT_TRUE(err.id.empty());
    // The very next call serves the following frame: resync worked.
    ASSERT_EQ(reader.next(f, err), serve::FrameReader::Status::Frame);
    EXPECT_EQ(f.id, "after-garbage");
    ASSERT_EQ(reader.next(f, err), serve::FrameReader::Status::Eof);
}

TEST(Framing, MidFrameEofIsALocatedErrorNotAHang)
{
    // Declares 100 payload bytes but the stream ends after 10.
    std::istringstream in("request trunc\npayload 100\nqreg q[1];");
    serve::FrameReader reader(in);
    serve::Frame f;
    serve::FrameError err;
    ASSERT_EQ(reader.next(f, err), serve::FrameReader::Status::Error);
    EXPECT_EQ(err.id, "trunc");
    EXPECT_NE(err.message.find("truncated"), std::string::npos);
    ASSERT_EQ(reader.next(f, err), serve::FrameReader::Status::Eof);
}

TEST(Framing, OversizedPayloadIsRefusedAndSkippedInSync)
{
    const std::string big(64, 'x');
    std::istringstream in(frameText("too-big", big) +
                          frameText("fits", "qreg q[1];\n"));
    serve::FrameReader reader(in, /*maxPayload=*/16);
    serve::Frame f;
    serve::FrameError err;
    ASSERT_EQ(reader.next(f, err), serve::FrameReader::Status::Error);
    EXPECT_EQ(err.id, "too-big");
    // The oversized bytes were skipped, not parsed as headers: the
    // next frame still comes through intact.
    ASSERT_EQ(reader.next(f, err), serve::FrameReader::Status::Frame);
    EXPECT_EQ(f.id, "fits");
    EXPECT_EQ(f.payload, "qreg q[1];\n");
}

TEST(Framing, MissingTrailerResyncsAtNextRequestHeader)
{
    // `payload 4` eats "qreg", then the trailer line is " q[1];" —
    // not `end` — so the frame fails but the next header is found.
    std::istringstream in("request bad\npayload 4\nqreg q[1];\n" +
                          frameText("good", "qreg q[2];\n"));
    serve::FrameReader reader(in);
    serve::Frame f;
    serve::FrameError err;
    ASSERT_EQ(reader.next(f, err), serve::FrameReader::Status::Error);
    EXPECT_EQ(err.id, "bad");
    ASSERT_EQ(reader.next(f, err), serve::FrameReader::Status::Frame);
    EXPECT_EQ(f.id, "good");
}

// --- the serve pipeline end to end -----------------------------------

/** A config that runs the real "guoq" optimizer deterministically:
 *  iteration-capped, single-threaded, exact (epsilon 0 leaves the
 *  synthesis cache untouched, so repeat runs in one process agree). */
serve::Config
testConfig(long iterations = 100)
{
    serve::Config cfg;
    cfg.optimizer = core::OptimizerRegistry::global().find("guoq");
    EXPECT_NE(cfg.optimizer, nullptr);
    cfg.base.timeBudgetSeconds = 1e6;
    cfg.base.maxIterations = iterations;
    cfg.base.seed = 12345;
    cfg.base.threads = 1;
    return cfg;
}

const char kSmallQasm[] = "OPENQASM 2.0;\n"
                          "include \"qelib1.inc\";\n"
                          "qreg q[2];\n"
                          "h q[0];\n"
                          "cx q[0], q[1];\n"
                          "cx q[0], q[1];\n"
                          "h q[0];\n";

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

/** The `"id"` field of a response row (rows always lead with it). */
std::string
rowId(const std::string &row)
{
    const std::string key = "\"id\": \"";
    const std::size_t at = row.find(key);
    EXPECT_NE(at, std::string::npos) << row;
    const std::size_t end = row.find('"', at + key.size());
    return row.substr(at + key.size(), end - (at + key.size()));
}

/** Blank out the wall-time field: the only part of a row that is
 *  legitimately run-dependent at a fixed seed. */
std::string
stripSeconds(const std::string &row)
{
    static const std::string key = "\"seconds\": ";
    std::string result;
    std::size_t from = 0;
    for (std::size_t at; (at = row.find(key, from)) != std::string::npos;) {
        const std::size_t start = at + key.size();
        std::size_t end = start;
        while (end < row.size() && row[end] != ',' && row[end] != '}')
            ++end;
        result.append(row, from, start - from);
        result += 'X';
        from = end;
    }
    result.append(row, from, row.size() - from);
    return result;
}

TEST(Serve, EveryRequestEmitsExactlyOneRow)
{
    std::ostringstream stream;
    for (int i = 0; i < 12; ++i) {
        serve::Frame f;
        f.id = "req-" + std::to_string(i);
        f.payload = kSmallQasm;
        serve::writeFrame(stream, f);
    }
    stream << "garbage between frames\n"; // one frame error on top

    std::istringstream in(stream.str());
    std::ostringstream out;
    serve::Config cfg = testConfig();
    cfg.jobs = 3;
    cfg.capacity = 4;
    const serve::ServeStats stats = serve::runServe(in, out, cfg);

    EXPECT_EQ(stats.frames, 12u);
    EXPECT_EQ(stats.frameErrors, 1u);
    EXPECT_EQ(stats.rows, 13u);
    EXPECT_EQ(stats.okRows, 12u);
    EXPECT_TRUE(stats.outputOk);
    // The credit cap held: never more than `capacity` requests
    // admitted-but-unemitted, even with jobs churning concurrently.
    EXPECT_LE(stats.peakInFlight, 4u);
    EXPECT_GE(stats.peakInFlight, 1u);

    const std::vector<std::string> rows = splitLines(out.str());
    ASSERT_EQ(rows.size(), 13u);
    std::map<std::string, int> perId;
    for (const std::string &row : rows)
        ++perId[rowId(row)];
    for (int i = 0; i < 12; ++i)
        EXPECT_EQ(perId["req-" + std::to_string(i)], 1);
}

TEST(Serve, FixedSeedSingleJobIsBitForBitDeterministic)
{
    std::ostringstream stream;
    for (int i = 0; i < 4; ++i) {
        serve::Frame f;
        f.id = "d-" + std::to_string(i);
        f.payload = kSmallQasm;
        f.seed = 7;
        f.hasSeed = true;
        serve::writeFrame(stream, f);
    }

    auto run = [&stream] {
        std::istringstream in(stream.str());
        std::ostringstream out;
        serve::Config cfg = testConfig();
        cfg.jobs = 1;
        serve::runServe(in, out, cfg);
        // Everything but wall time must be identical — including row
        // order, which --jobs 1 makes the admission order.
        return stripSeconds(out.str());
    };
    EXPECT_EQ(run(), run());
}

TEST(Serve, PresetShutdownAdmitsNothingAndDrainsCleanly)
{
    std::istringstream in(frameText("never-admitted", kSmallQasm));
    std::ostringstream out;
    serve::Config cfg = testConfig();
    cfg.shutdown = core::makeCancelToken();
    cfg.shutdown->store(true); // SIGTERM arrived before any input
    const serve::ServeStats stats = serve::runServe(in, out, cfg);
    EXPECT_EQ(stats.rows, 0u);
    EXPECT_TRUE(out.str().empty());
}

TEST(Serve, ShutdownCancelsInFlightSearchButStillEmitsItsRow)
{
    // Unlimited iterations and a huge budget: only the cancellation
    // path (PR 4 observer hooks) can stop this request. The preset
    // token cancels it at the first poll; the drain contract still
    // owes the request its row.
    std::istringstream in(frameText("cancelled-inflight", kSmallQasm));
    std::ostringstream out;
    serve::Config cfg = testConfig(/*iterations=*/-1);
    cfg.shutdown = core::makeCancelToken();
    cfg.shutdown->store(true);
    // Shutdown set but input already buffered: the reader checks the
    // token before each admission, so nothing is admitted. To drive a
    // *running* search into cancellation instead, call processSource
    // directly with the token preset.
    const serve::Outcome o = serve::processSource(
        "cancelled-inflight", kSmallQasm, cfg);
    EXPECT_EQ(o.entry.status, "ok"); // best-so-far, cooperatively
    EXPECT_TRUE(o.haveCircuit);
    EXPECT_LE(o.entry.gatesAfter, o.entry.gatesBefore);
}

TEST(Serve, PerRequestDeadlineStopsTheSearchWithBestSoFar)
{
    serve::Config cfg = testConfig(/*iterations=*/-1); // unlimited
    const double deadlineMs = 30;
    const auto t0 = std::chrono::steady_clock::now();
    const serve::Outcome o = serve::processSource(
        "deadline-req", kSmallQasm, cfg, nullptr, &deadlineMs);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    EXPECT_EQ(o.entry.status, "ok");
    EXPECT_NE(o.entry.message.find("deadline"), std::string::npos);
    EXPECT_LT(elapsed, 10.0); // cooperative stop, not the 1e6s budget
}

// --- differential: --serve matches --batch ---------------------------

TEST(Serve, RowsMatchBatchRunByteForByteAtFixedSeed)
{
    const fs::path corpus =
        fs::path(GUOQ_SOURCE_DIR) / "examples" / "qasm";
    ASSERT_TRUE(fs::is_directory(corpus));

    // Stage the corpus plus one malformed file into a scratch tree.
    const fs::path root =
        fs::temp_directory_path() / "guoq_serve_differential";
    fs::remove_all(root);
    const fs::path in_dir = root / "in";
    const fs::path out_dir = root / "out";
    fs::create_directories(in_dir);
    for (const fs::directory_entry &e : fs::directory_iterator(corpus))
        if (e.path().extension() == ".qasm")
            fs::copy_file(e.path(), in_dir / e.path().filename());
    {
        std::ofstream broken(in_dir / "broken.qasm");
        broken << "OPENQASM 2.0;\nqreg q[1];\nnot_a_gate q[0];\n";
    }

    serve::Config cfg = testConfig();
    cfg.jobs = 2;
    cfg.capacity = 3;

    // Batch leg: streaming walker, mirrored output tree.
    const serve::BatchResult batch = serve::runBatch(
        in_dir.generic_string(), out_dir.generic_string(), cfg);
    ASSERT_TRUE(batch.scanOk) << batch.scanError;
    ASSERT_GE(batch.entries.size(), 4u);
    EXPECT_LE(batch.peakInFlight, 3u);

    // Serve leg: the same bytes framed over a stream.
    std::ostringstream stream;
    for (const bench::BatchFileEntry &e : batch.entries) {
        std::ifstream src(in_dir / e.file);
        ASSERT_TRUE(src.good()) << e.file;
        std::ostringstream bytes;
        bytes << src.rdbuf();
        serve::Frame f;
        f.id = e.file;
        f.payload = bytes.str();
        serve::writeFrame(stream, f);
    }
    std::istringstream in(stream.str());
    std::ostringstream out;
    const serve::ServeStats stats = serve::runServe(in, out, cfg);
    EXPECT_EQ(stats.frames, batch.entries.size());
    EXPECT_EQ(stats.frameErrors, 0u);

    std::map<std::string, std::string> serveRows;
    for (const std::string &row : splitLines(out.str()))
        serveRows[rowId(row)] = row;
    ASSERT_EQ(serveRows.size(), batch.entries.size());

    int broken_rows = 0;
    for (const bench::BatchFileEntry &entry : batch.entries) {
        // The expected serve row is the batch entry itself rendered
        // through the same emitter, with the optimized bytes the batch
        // leg wrote to disk inlined — so agreement here means the two
        // modes produced byte-identical circuits *and* byte-identical
        // row metadata (modulo wall time and row order).
        std::string qasm;
        if (!entry.output.empty()) {
            std::ifstream opt(entry.output);
            ASSERT_TRUE(opt.good()) << entry.output;
            std::ostringstream bytes;
            bytes << opt.rdbuf();
            qasm = bytes.str();
        }
        ASSERT_TRUE(serveRows.count(entry.file)) << entry.file;
        EXPECT_EQ(stripSeconds(serveRows[entry.file]),
                  stripSeconds(bench::toServeRowJson(entry, qasm)))
            << entry.file;
        if (entry.file == "broken.qasm") {
            ++broken_rows;
            EXPECT_EQ(entry.status, "parse_error");
            EXPECT_EQ(bench::serveRowCode(entry.status), 1);
            EXPECT_EQ(entry.line, 3); // located, not just flagged
        }
    }
    EXPECT_EQ(broken_rows, 1); // the malformed file was exercised

    fs::remove_all(root);
}

} // namespace
} // namespace guoq
