/**
 * @file
 * Tests for the benchmark subsystem: the fixed signed reduction()
 * metric, the case registry, and golden-file JSON/CSV emission with a
 * CSV round-trip through a minimal RFC-4180 parser.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "bench/emit.h"
#include "bench/harness.h"
#include "bench/registry.h"

namespace guoq {
namespace {

using bench::CaseResult;

TEST(BenchReduction, ReportsSignedGrowth)
{
    EXPECT_DOUBLE_EQ(bench::reduction(100, 75), 0.25);
    EXPECT_DOUBLE_EQ(bench::reduction(4, 4), 0.0);
    EXPECT_DOUBLE_EQ(bench::reduction(10, 15), -0.5);
    // The old harness reported 0 for a circuit that grew from an empty
    // baseline; growth must be visible (and negative).
    EXPECT_DOUBLE_EQ(bench::reduction(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(bench::reduction(0, 5), -5.0);
    EXPECT_LT(bench::reduction(0, 1), bench::reduction(0, 0));
}

TEST(BenchRunOptions, BudgetAndTrialSeeds)
{
    bench::RunOptions opts;
    opts.scale = 0.5;
    opts.seed = 100;
    EXPECT_DOUBLE_EQ(opts.budget(8.0), 4.0);
    EXPECT_EQ(opts.trialSeed(0), 100u);
    EXPECT_EQ(opts.trialSeed(3), 103u);
}

TEST(BenchRegistry, MatchesComponentsThenSubstringsInCanonicalOrder)
{
    auto noop = [](bench::CaseContext &) {};
    bench::Registry::instance().add(
        {"zzt/second", "second", 9002, noop});
    bench::Registry::instance().add({"zzt/first", "first", 9001, noop});
    bench::Registry::instance().add({"zzt2", "other", 9003, noop});

    // Component-aware: "zzt" selects zzt/* but NOT zzt2 (the fig1 vs
    // fig10..fig15 precision problem).
    const auto both = bench::Registry::instance().matching({"zzt"});
    ASSERT_EQ(both.size(), 2u);
    EXPECT_EQ(both[0]->id, "zzt/first"); // order key, not insertion
    EXPECT_EQ(both[1]->id, "zzt/second");

    const auto exact = bench::Registry::instance().matching({"zzt2"});
    ASSERT_EQ(exact.size(), 1u);
    EXPECT_EQ(exact[0]->id, "zzt2");

    // A filter with no component-level hit falls back to substring.
    const auto sub = bench::Registry::instance().matching({"t/sec"});
    ASSERT_EQ(sub.size(), 1u);
    EXPECT_EQ(sub[0]->id, "zzt/second");

    EXPECT_TRUE(bench::Registry::instance()
                    .matching({"no-such-case-anywhere"})
                    .empty());
}

TEST(BenchHarness, CaseContextStampsCaseIdAndClearsWorkerStash)
{
    bench::RunOptions opts;
    std::vector<CaseResult> sink;
    bench::CaseContext ctx(opts, "fig0", sink);

    // Stashes append, so a tool built from several portfolio phases
    // reports every phase's workers.
    ctx.stashWorkerSeconds({1.0});
    ctx.stashWorkerSeconds({2.0});
    CaseResult row;
    row.benchmark = "b";
    row.tool = "t";
    row.metric = "m";
    row.workerSeconds = ctx.takeWorkerSeconds();
    ctx.record(row);
    // The stash is take-once: a second take must not re-attach the
    // first run's timings to a later row.
    EXPECT_TRUE(ctx.takeWorkerSeconds().empty());

    ASSERT_EQ(sink.size(), 1u);
    EXPECT_EQ(sink[0].caseId, "fig0");
    EXPECT_EQ(sink[0].workerSeconds, (std::vector<double>{1.0, 2.0}));
}

std::vector<CaseResult>
goldenResults()
{
    CaseResult a;
    a.caseId = "fig1";
    a.benchmark = "qft_6";
    a.tool = "guoq";
    a.algorithm = "guoq";
    a.metric = "2q_reduction";
    a.value = 0.25;
    a.seconds = 0.5;
    a.trial = 0;
    a.seed = 7;
    a.workerSeconds = {0.25, 0.5};
    CaseResult b;
    b.caseId = "fig1";
    b.benchmark = "a\"b,c\nd";
    b.tool = "t\\v";
    b.metric = "m";
    b.value = -1.5;
    b.seconds = 0;
    b.trial = 1;
    b.seed = 8;
    return {a, b};
}

bench::RunMeta
goldenMeta()
{
    bench::RunMeta meta;
    meta.scale = 0.5;
    meta.trials = 2;
    meta.seed = 7;
    meta.threads = 2;
    meta.cases = {"fig1", "table3"};
    return meta;
}

TEST(BenchEmit, JsonGolden)
{
    const std::string expected = "{\n"
                                 "  \"schema\": \"guoq-bench-v1\",\n"
                                 "  \"run\": {\n"
                                 "    \"scale\": 0.5,\n"
                                 "    \"trials\": 2,\n"
                                 "    \"seed\": 7,\n"
                                 "    \"threads\": 2,\n"
                                 "    \"cases\": [\"fig1\", \"table3\"]\n"
                                 "  },\n"
                                 "  \"results\": [\n"
                                 "    {\n"
                                 "      \"case\": \"fig1\",\n"
                                 "      \"benchmark\": \"qft_6\",\n"
                                 "      \"tool\": \"guoq\",\n"
                                 "      \"algorithm\": \"guoq\",\n"
                                 "      \"metric\": \"2q_reduction\",\n"
                                 "      \"value\": 0.25,\n"
                                 "      \"seconds\": 0.5,\n"
                                 "      \"trial\": 0,\n"
                                 "      \"seed\": 7,\n"
                                 "      \"workers\": [0.25, 0.5],\n"
                                 "      \"synth_cache_hits\": 0,\n"
                                 "      \"synth_cache_misses\": 0,\n"
                                 "      \"synth_cache_stores\": 0\n"
                                 "    },\n"
                                 "    {\n"
                                 "      \"case\": \"fig1\",\n"
                                 "      \"benchmark\": \"a\\\"b,c\\nd\",\n"
                                 "      \"tool\": \"t\\\\v\",\n"
                                 "      \"algorithm\": \"\",\n"
                                 "      \"metric\": \"m\",\n"
                                 "      \"value\": -1.5,\n"
                                 "      \"seconds\": 0,\n"
                                 "      \"trial\": 1,\n"
                                 "      \"seed\": 8,\n"
                                 "      \"workers\": [],\n"
                                 "      \"synth_cache_hits\": 0,\n"
                                 "      \"synth_cache_misses\": 0,\n"
                                 "      \"synth_cache_stores\": 0\n"
                                 "    }\n"
                                 "  ]\n"
                                 "}\n";
    EXPECT_EQ(bench::toJson(goldenMeta(), goldenResults()), expected);
}

TEST(BenchEmit, JsonEmptyResultsAndNonFiniteValues)
{
    bench::RunMeta meta;
    meta.cases = {};
    const std::string empty = bench::toJson(meta, {});
    EXPECT_NE(empty.find("\"results\": []"), std::string::npos);

    // JSON has no NaN/Inf literal; they must emit as null so the
    // document always parses.
    CaseResult r;
    r.caseId = "c";
    r.value = std::nan("");
    r.seconds = std::numeric_limits<double>::infinity();
    const std::string doc = bench::toJson(meta, {r});
    EXPECT_NE(doc.find("\"value\": null"), std::string::npos);
    EXPECT_NE(doc.find("\"seconds\": null"), std::string::npos);
    EXPECT_EQ(doc.find("nan"), std::string::npos);
    EXPECT_EQ(doc.find("inf"), std::string::npos);

    // CSV mirrors null as an empty field: no "nan"/"inf" tokens.
    const std::string csv = bench::toCsv({r});
    EXPECT_NE(csv.find("c,,,,,,0,0,,"), std::string::npos);
    EXPECT_EQ(csv.find("nan"), std::string::npos);
    EXPECT_EQ(csv.find("inf"), std::string::npos);
}

TEST(BenchEmit, CsvGolden)
{
    // `algorithm` and the synth-cache counters ride at the end so the
    // original columns keep their positions for pre-existing CSV
    // consumers.
    const std::string expected =
        "case,benchmark,tool,metric,value,seconds,trial,seed,workers,"
        "algorithm,synth_cache_hits,synth_cache_misses,"
        "synth_cache_stores\n"
        "fig1,qft_6,guoq,2q_reduction,0.25,0.5,0,7,0.25;0.5,guoq,0,0,0\n"
        "fig1,\"a\"\"b,c\nd\",t\\v,m,-1.5,0,1,8,,,0,0,0\n";
    EXPECT_EQ(bench::toCsv(goldenResults()), expected);
}

/** Minimal RFC-4180 record parser for the round-trip check. */
std::vector<std::vector<std::string>>
parseCsv(const std::string &text)
{
    std::vector<std::vector<std::string>> records;
    std::vector<std::string> record;
    std::string field;
    bool quoted = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (quoted) {
            if (c == '"' && i + 1 < text.size() && text[i + 1] == '"') {
                field += '"';
                ++i;
            } else if (c == '"') {
                quoted = false;
            } else {
                field += c;
            }
        } else if (c == '"') {
            quoted = true;
        } else if (c == ',') {
            record.push_back(field);
            field.clear();
        } else if (c == '\n') {
            record.push_back(field);
            field.clear();
            records.push_back(record);
            record.clear();
        } else {
            field += c;
        }
    }
    return records;
}

TEST(BenchEmit, CsvRoundTripsThroughRfc4180Parser)
{
    const auto records = parseCsv(bench::toCsv(goldenResults()));
    ASSERT_EQ(records.size(), 3u); // header + 2 rows
    for (const auto &record : records)
        EXPECT_EQ(record.size(), 13u);
    EXPECT_EQ(records[0][0], "case");
    EXPECT_EQ(records[1][1], "qft_6");
    EXPECT_EQ(records[1][8], "0.25;0.5");
    EXPECT_EQ(records[1][9], "guoq");
    // The embedded quote, comma, and newline survive the round trip.
    EXPECT_EQ(records[2][1], "a\"b,c\nd");
    EXPECT_EQ(records[2][4], "-1.5");
}

TEST(BenchEmit, EscapingHelpers)
{
    EXPECT_EQ(bench::jsonEscape("a\"b\\c\nd\te"),
              "a\\\"b\\\\c\\nd\\te");
    EXPECT_EQ(bench::jsonEscape(std::string(1, '\x01')), "\\u0001");
    EXPECT_EQ(bench::csvField("plain"), "plain");
    EXPECT_EQ(bench::csvField("a,b"), "\"a,b\"");
    EXPECT_EQ(bench::csvField("a\"b"), "\"a\"\"b\"");
}

TEST(BatchEmit, JsonGolden)
{
    bench::BatchRunMeta meta;
    meta.inputDir = "suite";
    meta.outputDir = "suite-opt";
    meta.gateSet = "nam";
    meta.objective = "2q-count";
    meta.algorithm = "guoq";
    meta.epsilon = 0;
    meta.timeBudgetSeconds = 1;
    meta.threads = 1;
    meta.jobs = 2;
    meta.seed = 7;

    bench::BatchFileEntry ok;
    ok.file = "bell.qasm";
    ok.status = "ok";
    ok.dialect = "qasm2";
    ok.algorithm = "guoq";
    ok.output = "suite-opt/bell.qasm";
    ok.qubits = 2;
    ok.gatesBefore = 4;
    ok.gatesAfter = 2;
    ok.twoQubitBefore = 2;
    ok.twoQubitAfter = 1;
    ok.errorBound = 0;
    ok.seconds = 0.5;
    ok.verified = true;
    ok.verifyMethod = "dense";
    ok.verifyDistance = 1.5e-08;
    ok.verifyBound = 0;
    ok.verifyConfidence = 1;
    ok.verifyShots = 0;
    ok.verifyVerdict = "equivalent";

    bench::BatchFileEntry bad;
    bad.file = "sub/broken.qasm";
    bad.status = "parse_error";
    bad.dialect = "qasm3";
    bad.algorithm = "guoq";
    bad.line = 3;
    bad.col = 7;
    bad.message = "unknown gate 'frob\"nicate'";
    bad.seconds = 0;

    bench::BatchFileEntry skip;
    skip.file = "wide.qasm";
    skip.status = "verify_skipped";
    skip.dialect = "qasm2";
    skip.algorithm = "guoq";
    skip.output = "suite-opt/wide.qasm";
    skip.qubits = 30;
    skip.gatesBefore = 60;
    skip.gatesAfter = 60;
    skip.twoQubitBefore = 29;
    skip.twoQubitAfter = 29;
    skip.errorBound = 0;
    skip.message = "verify skipped: 30 qubits exceed the sampling cap";
    skip.seconds = 0.25;

    const std::string expected =
        "{\n"
        "  \"schema\": \"guoq-batch-v1\",\n"
        "  \"run\": {\n"
        "    \"input_dir\": \"suite\",\n"
        "    \"output_dir\": \"suite-opt\",\n"
        "    \"gate_set\": \"nam\",\n"
        "    \"objective\": \"2q-count\",\n"
        "    \"algorithm\": \"guoq\",\n"
        "    \"epsilon\": 0,\n"
        "    \"time\": 1,\n"
        "    \"threads\": 1,\n"
        "    \"jobs\": 2,\n"
        "    \"seed\": 7,\n"
        "    \"synth_workers\": 0,\n"
        "    \"synth_cache\": \"\",\n"
        "    \"files\": 3,\n"
        "    \"ok\": 1,\n"
        "    \"failed\": 1,\n"
        "    \"verify_skipped\": 1\n"
        "  },\n"
        "  \"files\": [\n"
        "    {\n"
        "      \"file\": \"bell.qasm\",\n"
        "      \"status\": \"ok\",\n"
        "      \"dialect\": \"qasm2\",\n"
        "      \"algorithm\": \"guoq\",\n"
        "      \"output\": \"suite-opt/bell.qasm\",\n"
        "      \"qubits\": 2,\n"
        "      \"gates_before\": 4,\n"
        "      \"gates_after\": 2,\n"
        "      \"twoq_before\": 2,\n"
        "      \"twoq_after\": 1,\n"
        "      \"error_bound\": 0,\n"
        "      \"synth_cache_hits\": 0,\n"
        "      \"synth_cache_misses\": 0,\n"
        "      \"synth_cache_stores\": 0,\n"
        "      \"pool_queue_peak\": 0,\n"
        "      \"verify\": {\n"
        "        \"method\": \"dense\",\n"
        "        \"distance\": 1.5e-08,\n"
        "        \"bound\": 0,\n"
        "        \"confidence\": 1,\n"
        "        \"shots\": 0,\n"
        "        \"verdict\": \"equivalent\"\n"
        "      },\n"
        "      \"seconds\": 0.5\n"
        "    },\n"
        "    {\n"
        "      \"file\": \"sub/broken.qasm\",\n"
        "      \"status\": \"parse_error\",\n"
        "      \"dialect\": \"qasm3\",\n"
        "      \"algorithm\": \"guoq\",\n"
        "      \"line\": 3,\n"
        "      \"col\": 7,\n"
        "      \"message\": \"unknown gate 'frob\\\"nicate'\",\n"
        "      \"seconds\": 0\n"
        "    },\n"
        "    {\n"
        "      \"file\": \"wide.qasm\",\n"
        "      \"status\": \"verify_skipped\",\n"
        "      \"dialect\": \"qasm2\",\n"
        "      \"algorithm\": \"guoq\",\n"
        "      \"output\": \"suite-opt/wide.qasm\",\n"
        "      \"qubits\": 30,\n"
        "      \"gates_before\": 60,\n"
        "      \"gates_after\": 60,\n"
        "      \"twoq_before\": 29,\n"
        "      \"twoq_after\": 29,\n"
        "      \"error_bound\": 0,\n"
        "      \"synth_cache_hits\": 0,\n"
        "      \"synth_cache_misses\": 0,\n"
        "      \"synth_cache_stores\": 0,\n"
        "      \"pool_queue_peak\": 0,\n"
        "      \"message\": \"verify skipped: 30 qubits exceed the "
        "sampling cap\",\n"
        "      \"seconds\": 0.25\n"
        "    }\n"
        "  ]\n"
        "}\n";
    EXPECT_EQ(bench::toBatchJson(meta, {ok, bad, skip}), expected);
}

TEST(BatchEmit, EmptyRunStillParses)
{
    bench::BatchRunMeta meta;
    const std::string doc = bench::toBatchJson(meta, {});
    EXPECT_NE(doc.find("\"files\": []"), std::string::npos);
    EXPECT_NE(doc.find("\"ok\": 0"), std::string::npos);
    EXPECT_NE(doc.find("\"failed\": 0"), std::string::npos);
}

} // namespace
} // namespace guoq
