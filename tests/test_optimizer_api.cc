/**
 * @file
 * Tests for the polymorphic optimizer API (core/optimizer.h): the
 * global registry round-trip, request/param validation error paths,
 * the threads=1 guoq/optimize() identity, observer monotonicity, and
 * cooperative cancellation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/guoq.h"
#include "core/optimizer.h"
#include "support/timer.h"
#include "tests/test_util.h"

namespace guoq {
namespace {

using core::OptimizeRequest;
using core::OptimizerRegistry;

/** A 2-qubit circuit with obvious exact slack (adjacent inverses). */
ir::Circuit
slackCircuit()
{
    ir::Circuit c(2);
    for (int i = 0; i < 4; ++i)
        c.h(0);
    c.cx(0, 1);
    c.cx(0, 1);
    c.x(1);
    c.x(1);
    c.h(1);
    c.cx(1, 0);
    return c;
}

OptimizeRequest
smallRequest()
{
    OptimizeRequest req;
    req.set = ir::GateSetKind::Nam;
    req.objective = core::Objective::GateCount;
    req.timeBudgetSeconds = 5.0;
    req.maxIterations = 150;
    req.seed = 11;
    return req;
}

TEST(OptimizerRegistry, ListsTheBuiltinAlgorithms)
{
    const std::vector<std::string> names =
        OptimizerRegistry::global().names();
    const char *expected[] = {
        "guoq",           "guoq-rewrite",      "guoq-resynth",
        "beam",           "qiskit-like",       "tket-like",
        "voqc-like",      "partition-resynth", "phase-poly",
        "rl-like",
    };
    EXPECT_GE(names.size(), 10u);
    for (const char *name : expected)
        EXPECT_NE(std::find(names.begin(), names.end(), name),
                  names.end())
            << name;
    for (const core::Optimizer *opt : OptimizerRegistry::global().all()) {
        EXPECT_FALSE(opt->info().name.empty());
        EXPECT_FALSE(opt->info().summary.empty());
    }
}

TEST(OptimizerRegistry, EveryAlgorithmRunsAndNeverWorsens)
{
    const ir::Circuit input = slackCircuit();
    for (const core::Optimizer *opt : OptimizerRegistry::global().all()) {
        OptimizeRequest req = smallRequest();
        // The resynthesis-centric algorithms need an ε budget (a
        // resynth-only GUOQ without one is a fatal misconfiguration),
        // and short synthesis calls keep the test fast.
        req.epsilonTotal = 1e-5;
        req.params["resynth-call-seconds"] = "0.1";
        const std::string err =
            core::checkParams(opt->info(), req.params);
        if (!err.empty())
            req.params.clear(); // algorithms without guoq's params
        req.timeBudgetSeconds = 2.0;

        const core::CostFunction cost(req.objective, req.set);
        const core::OptimizeReport report = opt->run(input, req);
        EXPECT_EQ(report.algorithm, opt->info().name);
        EXPECT_LE(report.cost, cost(input)) << opt->info().name;
        EXPECT_DOUBLE_EQ(report.cost, cost(report.circuit))
            << opt->info().name;
        EXPECT_LE(report.errorBound, req.epsilonTotal + 1e-12)
            << opt->info().name;
        EXPECT_GE(report.stats.seconds, 0.0);
    }
}

TEST(OptimizerRegistry, UnknownNameAndSuggestions)
{
    const OptimizerRegistry &reg = OptimizerRegistry::global();
    EXPECT_EQ(reg.find("qiskit"), nullptr);
    EXPECT_EQ(reg.find(""), nullptr);
    EXPECT_EQ(core::closestName("qiskit", reg.names()), "qiskit-like");
    EXPECT_EQ(core::closestName("gouq", reg.names()), "guoq");
    EXPECT_EQ(core::closestName("zzzzzz", reg.names()), "");
}

TEST(OptimizerParams, UnknownKeyFailsWithDidYouMean)
{
    const core::Optimizer *beam = OptimizerRegistry::global().find("beam");
    ASSERT_NE(beam, nullptr);
    core::ParamMap params{{"beam-widht", "32"}};
    const std::string err = core::checkParams(beam->info(), params);
    EXPECT_NE(err.find("beam-widht"), std::string::npos);
    EXPECT_NE(err.find("did you mean 'beam-width'"), std::string::npos);
}

TEST(OptimizerParams, BadValueAndNoParamAlgorithms)
{
    const core::Optimizer *beam = OptimizerRegistry::global().find("beam");
    ASSERT_NE(beam, nullptr);
    EXPECT_NE(core::checkParams(beam->info(), {{"beam-width", "abc"}}),
              "");
    // Out-of-range integers must fail validation, not silently clamp
    // (strtol ERANGE) or truncate (long -> int narrowing).
    EXPECT_NE(core::checkParams(
                  beam->info(),
                  {{"beam-width", "99999999999999999999999"}}),
              "");
    EXPECT_NE(core::checkParams(beam->info(),
                                {{"beam-width", "5000000000"}}),
              "");
    EXPECT_EQ(core::checkParams(beam->info(), {{"beam-width", "32"}}),
              "");

    const core::Optimizer *qiskit =
        OptimizerRegistry::global().find("qiskit-like");
    ASSERT_NE(qiskit, nullptr);
    const std::string err =
        core::checkParams(qiskit->info(), {{"anything", "1"}});
    EXPECT_NE(err.find("takes no parameters"), std::string::npos);

    const core::Optimizer *guoq = OptimizerRegistry::global().find("guoq");
    ASSERT_NE(guoq, nullptr);
    EXPECT_NE(
        core::checkParams(guoq->info(), {{"async-resynth", "maybe"}}),
        "");
    EXPECT_EQ(
        core::checkParams(guoq->info(), {{"async-resynth", "true"},
                                         {"temperature", "5.5"}}),
        "");
}

TEST(OptimizerParams, CheckRequestEnforcesAlgorithmPreconditions)
{
    const OptimizerRegistry &reg = OptimizerRegistry::global();

    // guoq-resynth without an eps budget is the fatal() path inside
    // optimize(); checkRequest must surface it as a plain diagnostic
    // so drivers can reject the request up front.
    const core::Optimizer *resynth = reg.find("guoq-resynth");
    ASSERT_NE(resynth, nullptr);
    OptimizeRequest req = smallRequest();
    EXPECT_NE(resynth->checkRequest(req), "");
    req.epsilonTotal = 1e-5;
    EXPECT_EQ(resynth->checkRequest(req), "");

    // A kind-valid but out-of-range beam-width must fail too, not be
    // silently clamped by the adapter.
    const core::Optimizer *beam = reg.find("beam");
    ASSERT_NE(beam, nullptr);
    OptimizeRequest zero = smallRequest();
    zero.params["beam-width"] = "0";
    EXPECT_NE(beam->checkRequest(zero), "");
    zero.params["beam-width"] = "16";
    EXPECT_EQ(beam->checkRequest(zero), "");
}

TEST(OptimizerGuoq, ThreadsOneIsBitForBitLegacyOptimize)
{
    support::Rng rng(3);
    const ir::Circuit input = testutil::randomNativeCircuit(
        ir::GateSetKind::Nam, 4, 40, rng);

    OptimizeRequest req = smallRequest();
    req.objective = core::Objective::TwoQubitCount;
    req.maxIterations = 300;
    req.threads = 1;
    const core::Optimizer *guoq = OptimizerRegistry::global().find("guoq");
    ASSERT_NE(guoq, nullptr);
    const core::OptimizeReport report = guoq->run(input, req);

    core::GuoqConfig legacy;
    legacy.objective = req.objective;
    legacy.timeBudgetSeconds = req.timeBudgetSeconds;
    legacy.maxIterations = req.maxIterations;
    legacy.seed = req.seed;
    const core::GuoqResult r =
        core::optimize(input, req.set, legacy);

    EXPECT_EQ(report.circuit.toString(), r.best.toString());
    EXPECT_EQ(report.errorBound, r.errorBound);
    EXPECT_EQ(report.stats.iterations, r.stats.iterations);
    EXPECT_EQ(report.stats.accepted, r.stats.accepted);
    EXPECT_EQ(report.stats.rejected, r.stats.rejected);
}

TEST(OptimizerObserver, EventsAreStrictlyMonotone)
{
    support::Rng rng(9);
    const ir::Circuit input = testutil::randomNativeCircuit(
        ir::GateSetKind::Nam, 4, 50, rng);
    const core::Optimizer *guoq = OptimizerRegistry::global().find("guoq");
    ASSERT_NE(guoq, nullptr);

    for (int threads : {1, 3}) {
        OptimizeRequest req = smallRequest();
        req.objective = core::Objective::TwoQubitCount;
        req.maxIterations = 400;
        req.threads = threads;
        std::vector<double> costs;
        req.hooks.onBest = [&costs](const core::ProgressEvent &ev) {
            costs.push_back(ev.cost);
        };
        const core::OptimizeReport report = guoq->run(input, req);
        const core::CostFunction cost(req.objective, req.set);
        ASSERT_FALSE(costs.empty()) << threads;
        for (std::size_t i = 1; i < costs.size(); ++i)
            EXPECT_LT(costs[i], costs[i - 1]) << threads;
        EXPECT_LT(costs.front(), cost(input)) << threads;
        // The run's final best is the last (lowest) reported cost.
        EXPECT_LE(report.cost, costs.back()) << threads;
    }
}

TEST(OptimizerObserver, PresetCancelTokenStopsImmediately)
{
    const ir::Circuit input = slackCircuit();
    const core::Optimizer *guoq = OptimizerRegistry::global().find("guoq");
    ASSERT_NE(guoq, nullptr);

    OptimizeRequest req = smallRequest();
    req.maxIterations = -1;
    req.timeBudgetSeconds = 60.0;
    req.hooks.cancel = core::makeCancelToken();
    req.hooks.cancel->store(true);
    support::Timer timer;
    const core::OptimizeReport report = guoq->run(input, req);
    EXPECT_LT(timer.seconds(), 30.0);
    EXPECT_EQ(report.stats.iterations, 0);
    EXPECT_EQ(report.circuit.toString(), input.toString());
}

TEST(OptimizerObserver, CallbackCancellationEndsTheRunEarly)
{
    support::Rng rng(5);
    const ir::Circuit input = testutil::randomNativeCircuit(
        ir::GateSetKind::Nam, 4, 40, rng);
    const core::Optimizer *guoq = OptimizerRegistry::global().find("guoq");
    ASSERT_NE(guoq, nullptr);

    for (int threads : {1, 4}) {
        OptimizeRequest req = smallRequest();
        req.objective = core::Objective::TwoQubitCount;
        req.maxIterations = -1; // unlimited: only cancellation stops it
        req.timeBudgetSeconds = 60.0;
        req.threads = threads;
        req.params["sync-interval"] = "0.05";
        req.hooks.cancel = core::makeCancelToken();
        core::CancelToken token = req.hooks.cancel;
        req.hooks.onBest = [token](const core::ProgressEvent &) {
            token->store(true); // cancel on the first improvement
        };
        support::Timer timer;
        const core::OptimizeReport report = guoq->run(input, req);
        // Well under the 60 s budget: cancellation, not the deadline,
        // ended the run (generous bound for slow CI machines).
        EXPECT_LT(timer.seconds(), 30.0) << threads;
        EXPECT_GT(report.stats.iterations, 0) << threads;
        const core::CostFunction cost(req.objective, req.set);
        EXPECT_LE(report.cost, cost(input)) << threads;
    }
}

TEST(OptimizerBaselines, CancelledBaselineReturnsTheInput)
{
    const ir::Circuit input = slackCircuit();
    const core::Optimizer *qiskit =
        OptimizerRegistry::global().find("qiskit-like");
    ASSERT_NE(qiskit, nullptr);

    OptimizeRequest req = smallRequest();
    req.hooks.cancel = core::makeCancelToken();
    req.hooks.cancel->store(true);
    const core::OptimizeReport report = qiskit->run(input, req);
    EXPECT_EQ(report.circuit.toString(), input.toString());

    // And uncancelled, the same request reports a single final
    // improvement event.
    OptimizeRequest live = smallRequest();
    std::vector<double> costs;
    live.hooks.onBest = [&costs](const core::ProgressEvent &ev) {
        costs.push_back(ev.cost);
    };
    const core::OptimizeReport improved = qiskit->run(input, live);
    const core::CostFunction cost(live.objective, live.set);
    EXPECT_LT(improved.cost, cost(input));
    ASSERT_EQ(costs.size(), 1u);
    EXPECT_DOUBLE_EQ(costs[0], improved.cost);
}

} // namespace
} // namespace guoq
