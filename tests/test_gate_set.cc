/** @file Tests for the gate-set registry (paper Table 2). */

#include <gtest/gtest.h>

#include "ir/gate_set.h"

namespace guoq {
namespace {

TEST(GateSet, AllFiveRegistered)
{
    EXPECT_EQ(ir::allGateSets().size(), 5u);
}

TEST(GateSet, NamesMatchPaperTable2)
{
    EXPECT_EQ(ir::gateSetName(ir::GateSetKind::Ibmq20), "ibmq20");
    EXPECT_EQ(ir::gateSetName(ir::GateSetKind::IbmEagle), "ibm-eagle");
    EXPECT_EQ(ir::gateSetName(ir::GateSetKind::IonQ), "ionq");
    EXPECT_EQ(ir::gateSetName(ir::GateSetKind::Nam), "nam");
    EXPECT_EQ(ir::gateSetName(ir::GateSetKind::CliffordT), "cliffordt");
}

TEST(GateSet, ArchitecturesMatchPaperTable2)
{
    EXPECT_EQ(ir::gateSetArchitecture(ir::GateSetKind::IonQ), "Ion Trap");
    EXPECT_EQ(ir::gateSetArchitecture(ir::GateSetKind::CliffordT),
              "Fault Tolerant");
}

TEST(GateSet, NativeGatesIbmq20)
{
    using ir::GateKind;
    EXPECT_TRUE(ir::isNative(ir::GateSetKind::Ibmq20, GateKind::U1));
    EXPECT_TRUE(ir::isNative(ir::GateSetKind::Ibmq20, GateKind::U2));
    EXPECT_TRUE(ir::isNative(ir::GateSetKind::Ibmq20, GateKind::U3));
    EXPECT_TRUE(ir::isNative(ir::GateSetKind::Ibmq20, GateKind::CX));
    EXPECT_FALSE(ir::isNative(ir::GateSetKind::Ibmq20, GateKind::H));
}

TEST(GateSet, NativeGatesEagle)
{
    using ir::GateKind;
    EXPECT_TRUE(ir::isNative(ir::GateSetKind::IbmEagle, GateKind::Rz));
    EXPECT_TRUE(ir::isNative(ir::GateSetKind::IbmEagle, GateKind::SX));
    EXPECT_TRUE(ir::isNative(ir::GateSetKind::IbmEagle, GateKind::X));
    EXPECT_FALSE(ir::isNative(ir::GateSetKind::IbmEagle, GateKind::H));
}

TEST(GateSet, NativeGatesIonq)
{
    using ir::GateKind;
    EXPECT_TRUE(ir::isNative(ir::GateSetKind::IonQ, GateKind::Rxx));
    EXPECT_FALSE(ir::isNative(ir::GateSetKind::IonQ, GateKind::CX));
}

TEST(GateSet, NativeGatesCliffordT)
{
    using ir::GateKind;
    EXPECT_TRUE(ir::isNative(ir::GateSetKind::CliffordT, GateKind::T));
    EXPECT_TRUE(ir::isNative(ir::GateSetKind::CliffordT, GateKind::Tdg));
    EXPECT_TRUE(ir::isNative(ir::GateSetKind::CliffordT, GateKind::Sdg));
    EXPECT_FALSE(ir::isNative(ir::GateSetKind::CliffordT, GateKind::Rz));
}

TEST(GateSet, OnlyCliffordTIsFinite)
{
    for (ir::GateSetKind set : ir::allGateSets())
        EXPECT_EQ(ir::isFinite(set), set == ir::GateSetKind::CliffordT);
}

TEST(GateSet, EntanglingGate)
{
    EXPECT_EQ(ir::entanglingGate(ir::GateSetKind::IonQ),
              ir::GateKind::Rxx);
    EXPECT_EQ(ir::entanglingGate(ir::GateSetKind::Nam), ir::GateKind::CX);
}

TEST(GateSet, NativeGateListsConsistentWithPredicate)
{
    for (ir::GateSetKind set : ir::allGateSets())
        for (ir::GateKind kind : ir::nativeGates(set))
            EXPECT_TRUE(ir::isNative(set, kind));
}

} // namespace
} // namespace guoq
