/** @file Tests for the equivalence-verification layer (verify/). */

#include <gtest/gtest.h>

#include <cmath>

#include "ir/circuit.h"
#include "sim/unitary_sim.h"
#include "support/rng.h"
#include "tests/test_util.h"
#include "verify/checker.h"

namespace guoq {
namespace {

using verify::CheckerRegistry;
using verify::EquivalenceChecker;
using verify::Verdict;
using verify::VerifyReport;
using verify::VerifyRequest;

/** A GHZ-style ladder with extra cancelling pairs so the pair under
 *  test has gates to disagree about. */
ir::Circuit
ladder(int n)
{
    ir::Circuit c(n);
    c.h(0);
    for (int q = 0; q + 1 < n; ++q)
        c.cx(q, q + 1);
    c.h(n - 1);
    c.h(n - 1);
    c.cx(0, 1);
    c.cx(0, 1);
    return c;
}

// --- registry ---------------------------------------------------------

TEST(VerifyRegistry, RoundTrip)
{
    const CheckerRegistry &r = CheckerRegistry::global();
    const std::vector<std::string> names = r.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "dense");
    EXPECT_EQ(names[1], "sampling");
    EXPECT_EQ(names[2], "auto");
    for (const std::string &name : names) {
        const EquivalenceChecker *c = r.find(name);
        ASSERT_NE(c, nullptr);
        EXPECT_EQ(c->info().name, name);
        EXPECT_FALSE(c->info().summary.empty());
    }
    EXPECT_EQ(r.find("exhaustive"), nullptr);
    EXPECT_EQ(r.all().size(), 3u);
}

TEST(VerifyRegistry, CheckRequestRejectsBadRequests)
{
    const EquivalenceChecker *c = CheckerRegistry::global().find("auto");
    ASSERT_NE(c, nullptr);
    const ir::Circuit a(3), b(4);
    EXPECT_NE(c->checkRequest(a, b, VerifyRequest{}), "");

    VerifyRequest req;
    req.shots = 0;
    EXPECT_NE(c->checkRequest(a, a, req), "");
    req = VerifyRequest{};
    req.confidence = 1.0;
    EXPECT_NE(c->checkRequest(a, a, req), "");
    req = VerifyRequest{};
    req.epsilon = -1;
    EXPECT_NE(c->checkRequest(a, a, req), "");
    EXPECT_EQ(c->checkRequest(a, a, VerifyRequest{}), "");
}

TEST(VerifyRegistry, DenseRefusesPastTheUnitaryCap)
{
    const EquivalenceChecker *dense =
        CheckerRegistry::global().find("dense");
    const ir::Circuit big(sim::kMaxUnitaryQubits + 1);
    EXPECT_NE(dense->checkRequest(big, big, VerifyRequest{}), "");
    const EquivalenceChecker *sampling =
        CheckerRegistry::global().find("sampling");
    EXPECT_EQ(sampling->checkRequest(big, big, VerifyRequest{}), "");
    const ir::Circuit huge(verify::kMaxSamplingQubits + 1);
    EXPECT_NE(sampling->checkRequest(huge, huge, VerifyRequest{}), "");
}

// --- dense backend ----------------------------------------------------

TEST(VerifyDense, BitForBitTheLegacyDistance)
{
    support::Rng rng(21);
    const EquivalenceChecker *dense =
        CheckerRegistry::global().find("dense");
    for (int trial = 0; trial < 5; ++trial) {
        const ir::Circuit a = testutil::randomNativeCircuit(
            ir::GateSetKind::Nam, 4, 20, rng);
        const ir::Circuit b = testutil::randomNativeCircuit(
            ir::GateSetKind::Nam, 4, 20, rng);
        const VerifyReport r = dense->run(a, b, VerifyRequest{});
        // The dense backend is the legacy oracle behind the checker
        // interface: identical doubles, not merely close ones.
        EXPECT_EQ(r.distanceEstimate, sim::circuitDistance(a, b));
        EXPECT_EQ(r.method, "dense");
        EXPECT_EQ(r.bound, 0);
        EXPECT_EQ(r.shots, 0);
        EXPECT_EQ(r.confidence, 1.0);
    }
}

TEST(VerifyDense, VerdictAgainstBudget)
{
    const EquivalenceChecker *dense =
        CheckerRegistry::global().find("dense");
    ir::Circuit a(2);
    a.cx(0, 1);
    VerifyRequest req;
    EXPECT_EQ(dense->run(a, a, req).verdict, Verdict::Equivalent);
    EXPECT_EQ(dense->run(a, ir::Circuit(2), req).verdict,
              Verdict::Inequivalent);
    req.epsilon = 2.0; // every distance fits a budget past the metric's max
    EXPECT_EQ(dense->run(a, ir::Circuit(2), req).verdict,
              Verdict::Equivalent);
}

// --- sampling backend -------------------------------------------------

TEST(VerifySampling, AgreesWithDenseWithinTheBoundOver50Trials)
{
    support::Rng rng(33);
    const EquivalenceChecker *dense =
        CheckerRegistry::global().find("dense");
    const EquivalenceChecker *sampling =
        CheckerRegistry::global().find("sampling");

    // A nontrivial 8-qubit pair at a known (dense) distance: the
    // original vs itself with a small extra rotation.
    const ir::Circuit a = testutil::randomNativeCircuit(
        ir::GateSetKind::Nam, 8, 40, rng);
    ir::Circuit b = a;
    b.rz(0.2, 3);
    const double exact =
        dense->run(a, b, VerifyRequest{}).distanceEstimate;

    VerifyRequest req;
    req.shots = 96;
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        req.seed = seed;
        const VerifyReport r = sampling->run(a, b, req);
        EXPECT_EQ(r.method, "sampling");
        EXPECT_EQ(r.shots, 96);
        EXPECT_TRUE(std::isfinite(r.bound));
        EXPECT_GT(r.bound, 0);
        // The exact distance must fall inside the reported interval.
        // Hoeffding is conservative, so all 50 draws at 99% per-trial
        // confidence pass with margin in practice.
        EXPECT_LE(std::abs(exact - r.distanceEstimate), r.bound)
            << "seed " << seed;
    }
}

TEST(VerifySampling, RejectsAFlippedCxAtHighConfidence)
{
    ir::Circuit a(4);
    a.h(0);
    a.cx(0, 1);
    a.cx(1, 2);
    a.cx(2, 3);
    ir::Circuit b(4);
    b.h(0);
    b.cx(0, 1);
    b.cx(2, 1); // flipped direction
    b.cx(2, 3);

    const EquivalenceChecker *dense =
        CheckerRegistry::global().find("dense");
    const double exact =
        dense->run(a, b, VerifyRequest{}).distanceEstimate;
    ASSERT_GT(exact, 0.5); // genuinely inequivalent pair

    VerifyRequest req;
    req.shots = 512;
    req.confidence = 0.999;
    const EquivalenceChecker *sampling =
        CheckerRegistry::global().find("sampling");
    const VerifyReport r = sampling->run(a, b, req);
    EXPECT_EQ(r.verdict, Verdict::Inequivalent);
    EXPECT_GT(r.distanceEstimate - r.bound, 0);
}

TEST(VerifySampling, FixedSeedIsDeterministicAcrossThreadCounts)
{
    support::Rng rng(44);
    const ir::Circuit a = testutil::randomNativeCircuit(
        ir::GateSetKind::Nam, 6, 30, rng);
    ir::Circuit b = a;
    b.rz(0.1, 2);

    const EquivalenceChecker *sampling =
        CheckerRegistry::global().find("sampling");
    VerifyRequest req;
    req.shots = 101; // not a multiple of any worker count
    req.seed = 7;
    req.threads = 1;
    const VerifyReport serial = sampling->run(a, b, req);
    const VerifyReport repeat = sampling->run(a, b, req);
    EXPECT_EQ(serial.distanceEstimate, repeat.distanceEstimate);
    EXPECT_EQ(serial.bound, repeat.bound);
    for (const int threads : {2, 3, 8}) {
        req.threads = threads;
        const VerifyReport parallel = sampling->run(a, b, req);
        // Pre-drawn per-shot seeds + pairwise accumulation: the split
        // across workers cannot change a single bit of the estimate.
        EXPECT_EQ(serial.distanceEstimate, parallel.distanceEstimate)
            << threads << " threads";
        EXPECT_EQ(serial.bound, parallel.bound);
    }
    req.threads = 1;
    req.seed = 8;
    const VerifyReport other = sampling->run(a, b, req);
    EXPECT_NE(serial.distanceEstimate, other.distanceEstimate);
}

TEST(VerifySampling, MoreShotsTightenTheBound)
{
    const ir::Circuit a = ladder(5);
    const EquivalenceChecker *sampling =
        CheckerRegistry::global().find("sampling");
    VerifyRequest req;
    req.shots = 32;
    const double loose = sampling->run(a, a, req).bound;
    req.shots = 512;
    const double tight = sampling->run(a, a, req).bound;
    EXPECT_LT(tight, loose);
}

// --- the auto policy and the >10-qubit scenario -----------------------

TEST(VerifyAuto, PicksDenseSmallSamplingLarge)
{
    const EquivalenceChecker *autoc =
        CheckerRegistry::global().find("auto");
    const ir::Circuit small = ladder(4);
    EXPECT_EQ(autoc->run(small, small, VerifyRequest{}).method, "dense");

    const ir::Circuit large = ladder(verify::kDenseAutoMaxQubits + 1);
    VerifyRequest req;
    req.shots = 16;
    EXPECT_EQ(autoc->run(large, large, req).method, "sampling");
}

TEST(VerifyAuto, TwelveQubitSmokeRun)
{
    // The scenario the subsystem exists for: a width the dense oracle
    // was never allowed to touch verifies end to end.
    const ir::Circuit a = ladder(12);
    ir::Circuit b(12);
    b.h(0);
    for (int q = 0; q + 1 < 12; ++q)
        b.cx(q, q + 1);

    VerifyRequest req;
    req.shots = 64;
    req.threads = 2;
    const VerifyReport r = verify::verifyEquivalence(a, b, req);
    EXPECT_EQ(r.method, "sampling");
    EXPECT_EQ(r.verdict, Verdict::Equivalent);
    EXPECT_TRUE(std::isfinite(r.bound));
    EXPECT_GT(r.bound, 0);
    EXPECT_LT(r.distanceEstimate, 0.2); // equal circuits, tiny estimate
    EXPECT_GE(r.wallSeconds, 0);
}

TEST(VerifyAuto, VerifyEquivalenceDispatchesByName)
{
    const ir::Circuit a = ladder(3);
    VerifyRequest req;
    req.method = "dense";
    EXPECT_EQ(verify::verifyEquivalence(a, a, req).method, "dense");
    req.method = "sampling";
    req.shots = 16;
    EXPECT_EQ(verify::verifyEquivalence(a, a, req).method, "sampling");
}

// --- verdict helper ---------------------------------------------------

TEST(VerifyVerdict, IntervalAgainstBudget)
{
    VerifyRequest req;
    req.epsilon = 0.1;
    // Interval straddles the budget: not rejectable.
    EXPECT_EQ(verify::verdictFor(0.15, 0.1, req), Verdict::Equivalent);
    // Entire interval above the budget: rejected.
    EXPECT_EQ(verify::verdictFor(0.5, 0.1, req), Verdict::Inequivalent);
    // Tolerance absorbs a breach at the noise floor.
    req.tolerance = 1e-6;
    EXPECT_EQ(verify::verdictFor(0.1 + 5e-7, 0, req),
              Verdict::Equivalent);
    EXPECT_STREQ(verify::verdictName(Verdict::Equivalent), "equivalent");
    EXPECT_STREQ(verify::verdictName(Verdict::Inequivalent),
                 "inequivalent");
}

} // namespace
} // namespace guoq
