/** @file Tests for the numerical minimizers. */

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/numopt.h"

namespace guoq {
namespace {

/** Convex quadratic with minimum at (1, -2). */
double
quadratic(const std::vector<double> &x, std::vector<double> *g)
{
    const double dx = x[0] - 1.0, dy = x[1] + 2.0;
    if (g) {
        (*g)[0] = 2 * dx;
        (*g)[1] = 2 * dy;
    }
    return dx * dx + dy * dy;
}

TEST(Adam, MinimizesQuadratic)
{
    linalg::MinimizeOptions opts;
    opts.maxIters = 3000;
    opts.tolerance = 1e-10;
    opts.learningRate = 0.05;
    const linalg::MinimizeResult r =
        linalg::minimizeAdam(quadratic, {5.0, 5.0}, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x[0], 1.0, 1e-4);
    EXPECT_NEAR(r.x[1], -2.0, 1e-4);
}

TEST(Adam, StopsAtTolerance)
{
    linalg::MinimizeOptions opts;
    opts.maxIters = 100000;
    opts.tolerance = 1e-3;
    const linalg::MinimizeResult r =
        linalg::minimizeAdam(quadratic, {3.0, 0.0}, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.value, 1e-3);
    EXPECT_LT(r.iterations, 100000);
}

TEST(Adam, RespectsDeadline)
{
    linalg::MinimizeOptions opts;
    opts.maxIters = 1 << 30;
    opts.tolerance = 0; // unreachable
    opts.deadline = support::Deadline::in(0.05);
    const linalg::MinimizeResult r = linalg::minimizeAdam(
        [](const std::vector<double> &x, std::vector<double> *g) {
            if (g)
                (*g)[0] = 2 * x[0];
            return x[0] * x[0] + 1.0; // min value 1 > tolerance
        },
        {10.0}, opts);
    EXPECT_FALSE(r.converged);
}

TEST(Adam, ReportsBestNotLast)
{
    // A one-dimensional sine: Adam may oscillate, but the reported
    // value must be the best visited.
    linalg::MinimizeOptions opts;
    opts.maxIters = 500;
    opts.tolerance = -1;
    opts.learningRate = 0.5;
    double best_seen = 1e9;
    const linalg::MinimizeResult r = linalg::minimizeAdam(
        [&best_seen](const std::vector<double> &x,
                     std::vector<double> *g) {
            const double v = std::sin(x[0]) + 1.0;
            if (g)
                (*g)[0] = std::cos(x[0]);
            best_seen = std::min(best_seen, v);
            return v;
        },
        {0.3}, opts);
    EXPECT_NEAR(r.value, best_seen, 1e-12);
}

TEST(NelderMead, MinimizesQuadraticWithoutGradients)
{
    linalg::MinimizeOptions opts;
    opts.maxIters = 2000;
    opts.tolerance = 1e-10;
    const linalg::MinimizeResult r = linalg::minimizeNelderMead(
        [](const std::vector<double> &x) {
            return quadratic(x, nullptr);
        },
        {4.0, 4.0}, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x[0], 1.0, 1e-3);
    EXPECT_NEAR(r.x[1], -2.0, 1e-3);
}

TEST(NelderMead, HandlesEmptyParameterVector)
{
    linalg::MinimizeOptions opts;
    const linalg::MinimizeResult r = linalg::minimizeNelderMead(
        [](const std::vector<double> &) { return 0.5; }, {}, opts);
    EXPECT_NEAR(r.value, 0.5, 1e-12);
}

TEST(MultiStart, EscapesBadStart)
{
    // f has a broad spurious plateau at x>3 and the true minimum near
    // 0; a start on the plateau needs restarts to find the bowl.
    support::Rng rng(11);
    linalg::MinimizeOptions opts;
    opts.maxIters = 800;
    opts.tolerance = 1e-8;
    opts.learningRate = 0.05;
    auto f = [](const std::vector<double> &x, std::vector<double> *g) {
        const double v = 1.0 - std::exp(-x[0] * x[0]);
        if (g)
            (*g)[0] = 2 * x[0] * std::exp(-x[0] * x[0]);
        return v;
    };
    const linalg::MinimizeResult r =
        linalg::minimizeMultiStart(f, {8.0}, 6, rng, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x[0], 0.0, 1e-2);
}

TEST(MultiStart, FirstStartSufficesWhenConverged)
{
    support::Rng rng(12);
    linalg::MinimizeOptions opts;
    opts.maxIters = 3000;
    opts.tolerance = 1e-9;
    const linalg::MinimizeResult r =
        linalg::minimizeMultiStart(quadratic, {1.1, -2.1}, 5, rng, opts);
    EXPECT_TRUE(r.converged);
}

} // namespace
} // namespace guoq
