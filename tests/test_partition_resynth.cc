/** @file Tests for the BQSKit-style partition+resynthesize baseline. */

#include <gtest/gtest.h>

#include "baselines/partition_resynth.h"
#include "sim/unitary_sim.h"
#include "tests/test_util.h"
#include "transpile/to_gate_set.h"
#include "workloads/standard.h"

namespace guoq {
namespace {

TEST(PartitionResynth, PreservesSemanticsWithinBudget)
{
    const ir::Circuit c =
        transpile::toGateSet(workloads::qft(4), ir::GateSetKind::Nam);
    const double eps = 1e-5;
    const baselines::PartitionResynthResult r =
        baselines::partitionResynth(c, ir::GateSetKind::Nam,
                                    core::Objective::TwoQubitCount, eps,
                                    10.0, 1);
    EXPECT_LE(r.errorSpent, eps + 1e-12);
    EXPECT_LE(sim::circuitDistance(c, r.circuit),
              eps + testutil::kExact);
}

TEST(PartitionResynth, ReducesRedundantBlocks)
{
    ir::Circuit c(3);
    // Block-local redundancy the partitioner will isolate.
    c.cx(0, 1);
    c.cx(0, 1);
    c.h(2);
    c.h(2);
    c.cx(1, 2);
    c.cx(1, 2);
    const baselines::PartitionResynthResult r =
        baselines::partitionResynth(c, ir::GateSetKind::Nam,
                                    core::Objective::TwoQubitCount, 1e-5,
                                    10.0, 2);
    EXPECT_LT(r.circuit.twoQubitGateCount(), c.twoQubitGateCount());
    EXPECT_GT(r.blocksImproved, 0);
}

TEST(PartitionResynth, EmptyCircuitIsNoop)
{
    const baselines::PartitionResynthResult r =
        baselines::partitionResynth(ir::Circuit(2),
                                    ir::GateSetKind::Nam,
                                    core::Objective::TwoQubitCount, 1e-5,
                                    1.0, 3);
    EXPECT_TRUE(r.circuit.empty());
    EXPECT_EQ(r.blocks, 0);
}

TEST(PartitionResynth, NeverIncreasesObjective)
{
    support::Rng rng(4);
    const ir::Circuit c =
        testutil::randomNativeCircuit(ir::GateSetKind::Nam, 4, 30, rng);
    const core::CostFunction cost(core::Objective::TwoQubitCount,
                                  ir::GateSetKind::Nam);
    const baselines::PartitionResynthResult r =
        baselines::partitionResynth(c, ir::GateSetKind::Nam,
                                    core::Objective::TwoQubitCount, 1e-5,
                                    8.0, 4);
    EXPECT_LE(cost(r.circuit), cost(c));
    EXPECT_LE(sim::circuitDistance(c, r.circuit),
              1e-5 + testutil::kExact);
}

TEST(PartitionResynth, CrossBlockRedundancyIsMissed)
{
    // The rigidity the paper criticizes (§7): two CXs that cancel but
    // land in different blocks cannot be removed by one partition
    // pass. Build a circuit whose cancelling pair straddles a block
    // boundary via a gate-budget-forced split.
    ir::Circuit c(3);
    c.cx(0, 1);
    // Wedge enough 3-qubit-straddling structure to split blocks.
    for (int i = 0; i < 20; ++i) {
        c.cx(1, 2);
        c.h(2);
    }
    c.cx(0, 1); // cancels with gate 0 — but far away
    const baselines::PartitionResynthResult r =
        baselines::partitionResynth(c, ir::GateSetKind::Nam,
                                    core::Objective::TwoQubitCount, 1e-5,
                                    6.0, 5);
    // Semantics always hold; the distant pair may or may not fall in
    // one block, but the run must stay within budget either way.
    EXPECT_LE(sim::circuitDistance(c, r.circuit),
              1e-5 + testutil::kExact);
}

} // namespace
} // namespace guoq
