/**
 * @file
 * Tests for the OpenQASM 3 front-end: dialect detection, the qasm3
 * grammar subset (qubit/bit declarations, U/gphase, const
 * expressions, stdgates names), qasm2 <-> qasm3 round trips that
 * preserve the unitary, and recoverable error reporting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "qasm/parser.h"
#include "qasm/printer.h"
#include "sim/unitary_sim.h"
#include "tests/test_util.h"
#include "workloads/standard.h"

namespace guoq {
namespace {

using qasm::Dialect;

// Round trips are held to a stronger standard than any distance
// threshold: parameters print with 17 digits, so the parsed-back gate
// list must be bit-for-bit equal to the original — the unitaries are
// then literally identical (distance 0), which is what the "<= 1e-9"
// acceptance bar means. Distance checks use testutil::kExact because
// the HS metric itself only resolves to ~1e-8 on equal inputs.

TEST(QasmDialect, NamesRoundTrip)
{
    for (Dialect d : {Dialect::Auto, Dialect::Qasm2, Dialect::Qasm3}) {
        Dialect back{};
        ASSERT_TRUE(qasm::dialectFromName(qasm::dialectName(d), &back));
        EXPECT_EQ(back, d);
    }
    Dialect out{};
    EXPECT_FALSE(qasm::dialectFromName("qasm4", &out));
}

TEST(QasmDialect, DetectsFromVersionHeader)
{
    EXPECT_EQ(qasm::detectDialect("OPENQASM 2.0;\nqreg q[1];"),
              Dialect::Qasm2);
    EXPECT_EQ(qasm::detectDialect("OPENQASM 3;\nqubit[1] q;"),
              Dialect::Qasm3);
    EXPECT_EQ(qasm::detectDialect("OPENQASM 3.1;"), Dialect::Qasm3);
}

TEST(QasmDialect, DetectsHeaderlessFromDeclarationKeyword)
{
    EXPECT_EQ(qasm::detectDialect("qreg q[2]; h q[0];"),
              Dialect::Qasm2);
    EXPECT_EQ(qasm::detectDialect("// comment\nqubit[2] q; h q[0];"),
              Dialect::Qasm3);
    EXPECT_EQ(qasm::detectDialect("bit[2] c; qubit[2] q;"),
              Dialect::Qasm3);
    // Nothing to go on: the historical default.
    EXPECT_EQ(qasm::detectDialect(""), Dialect::Qasm2);
}

TEST(Qasm3Parser, ParsesDeclarationsAndGates)
{
    const qasm::ParseResult r = qasm::parseSource(R"(
        OPENQASM 3.0;
        include "stdgates.inc";
        qubit[2] q;
        bit[2] c;
        h q[0];
        cx q[0], q[1];
        rz(pi/2) q[1];
    )");
    ASSERT_TRUE(r.ok) << r.error.str();
    EXPECT_EQ(r.dialect, Dialect::Qasm3);
    ASSERT_EQ(r.circuit.size(), 3u);
    EXPECT_EQ(r.circuit.numQubits(), 2);
    EXPECT_EQ(r.circuit.gate(1).kind, ir::GateKind::CX);
}

TEST(Qasm3Parser, SizelessQubitDeclaresOneQubit)
{
    const qasm::ParseResult r =
        qasm::parseSource("OPENQASM 3;\nqubit a;\nqubit b;\nx b;\n");
    ASSERT_TRUE(r.ok) << r.error.str();
    EXPECT_EQ(r.circuit.numQubits(), 2);
    ASSERT_EQ(r.circuit.size(), 1u);
    EXPECT_EQ(r.circuit.gate(0).qubits[0], 1);
}

TEST(Qasm3Parser, UBuiltinIsU3)
{
    const qasm::ParseResult r = qasm::parseSource(
        "OPENQASM 3;\nqubit[1] q;\nU(0.1, 0.2, 0.3) q[0];\n");
    ASSERT_TRUE(r.ok) << r.error.str();
    ir::Circuit want(1);
    want.u3(0.1, 0.2, 0.3, 0);
    EXPECT_LT(sim::circuitDistance(r.circuit, want), testutil::kExact);
}

TEST(Qasm3Parser, GphaseIsValidatedAndDropped)
{
    // Global phase is unobservable under the |Tr(U†V)| metric, so
    // gphase parses (with a checked angle) and lowers to nothing.
    const qasm::ParseResult r = qasm::parseSource(
        "OPENQASM 3;\nqubit[1] q;\ngphase(pi/4);\nh q[0];\n");
    ASSERT_TRUE(r.ok) << r.error.str();
    ASSERT_EQ(r.circuit.size(), 1u);
    ir::Circuit want(1);
    want.h(0);
    EXPECT_LT(sim::circuitDistance(r.circuit, want), testutil::kExact);

    const qasm::ParseResult bad = qasm::parseSource(
        "OPENQASM 3;\nqubit[1] q;\ngphase(1/0);\n");
    ASSERT_FALSE(bad.ok);
    EXPECT_NE(bad.error.message.find("division by zero"),
              std::string::npos);
}

TEST(Qasm3Parser, ConstDeclarationsFeedAngleExpressions)
{
    const qasm::ParseResult r = qasm::parseSource(R"(
        OPENQASM 3;
        qubit[1] q;
        const float[64] theta = pi / 4;
        const int steps = 2;
        rz(theta * steps) q[0];
        rx(tau / 8) q[0];
    )");
    ASSERT_TRUE(r.ok) << r.error.str();
    ASSERT_EQ(r.circuit.size(), 2u);
    EXPECT_NEAR(r.circuit.gate(0).params[0], M_PI / 2, 1e-12);
    EXPECT_NEAR(r.circuit.gate(1).params[0], M_PI / 4, 1e-12);
}

TEST(Qasm3Parser, StdgatesNamesMapOntoNativeKinds)
{
    const qasm::ParseResult r = qasm::parseSource(R"(
        OPENQASM 3;
        qubit[2] q;
        p(0.5) q[0];
        phase(0.25) q[1];
        cphase(0.75) q[0], q[1];
        id q[0];
        sx q[1];
    )");
    ASSERT_TRUE(r.ok) << r.error.str();
    ASSERT_EQ(r.circuit.size(), 4u); // id is dropped
    EXPECT_EQ(r.circuit.gate(0).kind, ir::GateKind::U1);
    EXPECT_EQ(r.circuit.gate(1).kind, ir::GateKind::U1);
    EXPECT_EQ(r.circuit.gate(2).kind, ir::GateKind::CP);
    EXPECT_EQ(r.circuit.gate(3).kind, ir::GateKind::SX);
}

TEST(Qasm3Parser, BroadcastAndBlockComments)
{
    const qasm::ParseResult r = qasm::parseSource(
        "OPENQASM 3;\nqubit[3] q;\n/* spanning\n   comment */\nh q;\n");
    ASSERT_TRUE(r.ok) << r.error.str();
    EXPECT_EQ(r.circuit.size(), 3u);
}

TEST(Qasm3Parser, RejectsMeasurementWithLocation)
{
    const qasm::ParseResult r = qasm::parseSource(
        "OPENQASM 3;\nqubit[2] q;\nbit[2] c;\nmeasure q[0];\n");
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.error.line, 4);
    EXPECT_EQ(r.error.col, 1);
    EXPECT_NE(r.error.message.find("measure"), std::string::npos);
}

TEST(Qasm3Parser, RejectsQasm2RegistersWithHint)
{
    const qasm::ParseResult r =
        qasm::parseSource("OPENQASM 3;\nqreg q[2];\n");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.message.find("OpenQASM 2"), std::string::npos);
}

TEST(Qasm3Parser, RejectsUnterminatedConstructs)
{
    const qasm::ParseResult str = qasm::parseSource(
        "OPENQASM 3;\ninclude \"stdgates.inc\nqubit[1] q;\n");
    ASSERT_FALSE(str.ok);
    EXPECT_NE(str.error.message.find("unterminated string"),
              std::string::npos);

    const qasm::ParseResult cmt =
        qasm::parseSource("OPENQASM 3;\nqubit[1] q;\n/* oops\n");
    ASSERT_FALSE(cmt.ok);
    EXPECT_NE(cmt.error.message.find("unterminated block comment"),
              std::string::npos);
}

TEST(Qasm3Parser, ForcedDialectMismatchIsAnError)
{
    const qasm::ParseResult r = qasm::parseSource(
        "OPENQASM 3;\nqubit[1] q;\n", Dialect::Qasm2);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.message.find("qasm2 parser"), std::string::npos);
}

TEST(Qasm3Printer, EmitsHeaderAndQubitDecl)
{
    ir::Circuit c(3);
    c.h(0);
    c.rxx(0.3, 0, 1);
    const std::string q = qasm::toQasm(c, Dialect::Qasm3);
    EXPECT_NE(q.find("OPENQASM 3.0;"), std::string::npos);
    EXPECT_NE(q.find("include \"stdgates.inc\";"), std::string::npos);
    EXPECT_NE(q.find("qubit[3] q;"), std::string::npos);
    EXPECT_NE(q.find("gate rxx"), std::string::npos);
    EXPECT_EQ(q.find("qreg"), std::string::npos);
}

TEST(Qasm3Printer, EmptyCircuitRoundTrips)
{
    const std::string q = qasm::toQasm(ir::Circuit(0), Dialect::Qasm3);
    const qasm::ParseResult r = qasm::parseSource(q);
    ASSERT_TRUE(r.ok) << r.error.str();
    EXPECT_EQ(r.dialect, Dialect::Qasm3);
    EXPECT_EQ(r.circuit.numQubits(), 0);
    EXPECT_TRUE(r.circuit.empty());
}

/**
 * The acceptance bar of this front-end: a circuit printed as qasm2,
 * converted to qasm3 (or printed as qasm3 directly), and parsed back
 * through the auto-detected qasm3 path is the same unitary to 1e-9.
 */
class Qasm3RoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(Qasm3RoundTrip, Qasm2ToQasm3PreservesUnitary)
{
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 11);
    const auto sets = ir::allGateSets();
    const ir::GateSetKind set =
        sets[static_cast<std::size_t>(GetParam()) % sets.size()];
    const ir::Circuit c = testutil::randomNativeCircuit(set, 5, 30, rng);

    // qasm2 text -> circuit -> qasm3 text -> circuit, all auto-detected.
    const qasm::ParseResult q2 = qasm::parseSource(qasm::toQasm(c));
    ASSERT_TRUE(q2.ok) << q2.error.str();
    ASSERT_EQ(q2.dialect, Dialect::Qasm2);
    const qasm::ParseResult q3 =
        qasm::parseSource(qasm::toQasm(q2.circuit, Dialect::Qasm3));
    ASSERT_TRUE(q3.ok) << q3.error.str();
    ASSERT_EQ(q3.dialect, Dialect::Qasm3);
    // Bit-for-bit: identical gates mean an identical unitary, which
    // is stronger than any epsilon on the noise-floored HS metric.
    EXPECT_TRUE(q3.circuit.gates() == c.gates());
    EXPECT_LT(sim::circuitDistance(c, q3.circuit), testutil::kExact);
}

INSTANTIATE_TEST_SUITE_P(AllSets, Qasm3RoundTrip,
                         ::testing::Range(0, 15));

TEST(Qasm3RoundTripWorkloads, QftSurvives)
{
    const ir::Circuit c = workloads::qft(6);
    const qasm::ParseResult back =
        qasm::parseSource(qasm::toQasm(c, Dialect::Qasm3));
    ASSERT_TRUE(back.ok) << back.error.str();
    EXPECT_EQ(back.dialect, Dialect::Qasm3);
    EXPECT_TRUE(back.circuit.gates() == c.gates());
    EXPECT_LT(sim::circuitDistance(c, back.circuit), testutil::kExact);
}

TEST(Qasm3RoundTripWorkloads, ToffoliChainSurvives)
{
    const ir::Circuit c = workloads::barencoTof(3);
    const qasm::ParseResult back =
        qasm::parseSource(qasm::toQasm(c, Dialect::Qasm3));
    ASSERT_TRUE(back.ok) << back.error.str();
    EXPECT_TRUE(back.circuit.gates() == c.gates());
    EXPECT_LT(sim::circuitDistance(c, back.circuit), testutil::kExact);
}

} // namespace
} // namespace guoq
