/**
 * @file
 * Property tests for the paper's theorems: Thm. 4.2 (additive error of
 * composed transformations, including overlapping subcircuits) and
 * Thm. 5.3 (GUOQ's output respects ε_f) — the core soundness claims
 * of the framework.
 */

#include <gtest/gtest.h>

#include "core/guoq.h"
#include "dag/subcircuit.h"
#include "sim/unitary_sim.h"
#include "rewrite/applier.h"
#include "synth/resynth.h"
#include "tests/test_util.h"

namespace guoq {
namespace {

class Theorem42 : public ::testing::TestWithParam<int>
{
};

TEST_P(Theorem42, ComposedErrorIsAtMostSumOfStepErrors)
{
    // Apply a sequence of approximate resynthesis transformations to
    // random (possibly overlapping) subcircuits; the end-to-end
    // distance must not exceed the sum of per-step measured distances.
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 9);
    const ir::Circuit original = testutil::randomNativeCircuit(
        ir::GateSetKind::Nam, 4, 30, rng);

    ir::Circuit cur = original;
    double sum_eps = 0;
    int applied = 0;
    for (int step = 0; step < 12 && applied < 3; ++step) {
        const dag::SubcircuitSelection sel =
            dag::randomConvex(cur, rng, 3, 10);
        if (sel.size() < 2)
            continue;
        const ir::Circuit sub = dag::extract(cur, sel);
        synth::ResynthOptions opts;
        opts.targetSet = ir::GateSetKind::Nam;
        opts.epsilon = 1e-4;
        opts.deadline = support::Deadline::in(3);
        const synth::ResynthResult r =
            synth::resynthesize(sub, opts, rng);
        if (!r.success)
            continue;
        cur = dag::splice(cur, sel, r.circuit);
        sum_eps += r.distance;
        ++applied;
    }
    const double total = sim::circuitDistance(original, cur);
    EXPECT_LE(total, sum_eps + testutil::kExact)
        << "applied=" << applied;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem42, ::testing::Range(0, 8));

TEST(Theorem42, ExactTransformationsAccumulateNothing)
{
    // ε = 0 steps (rule passes) keep the distance at zero no matter
    // how many are composed — the base case of the induction.
    support::Rng rng(100);
    const ir::Circuit original = testutil::randomNativeCircuit(
        ir::GateSetKind::CliffordT, 4, 40, rng);
    ir::Circuit cur = original;
    const auto &rules = rewrite::rulesFor(ir::GateSetKind::CliffordT);
    for (int step = 0; step < 50; ++step) {
        const auto &rule = rules[rng.index(rules.size())];
        cur = rewrite::applyRulePassRandom(cur, rule, rng).circuit;
    }
    EXPECT_LT(sim::circuitDistance(original, cur), testutil::kExact);
}

TEST(Theorem53, ErrorBoundNeverExceedsBudgetAcrossSeeds)
{
    support::Rng rng(200);
    const ir::Circuit c = testutil::randomNativeCircuit(
        ir::GateSetKind::Nam, 4, 30, rng);
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        core::GuoqConfig cfg;
        cfg.epsilonTotal = 1e-5;
        cfg.timeBudgetSeconds = 1.0;
        // The bound holds for any prefix of the search; the cap keeps
        // the sweep fast and machine-independent.
        cfg.maxIterations = 1500;
        cfg.seed = seed;
        const core::GuoqResult r =
            core::optimize(c, ir::GateSetKind::Nam, cfg);
        EXPECT_LE(r.errorBound, cfg.epsilonTotal);
        EXPECT_LE(sim::circuitDistance(c, r.best),
                  cfg.epsilonTotal + testutil::kExact);
    }
}

TEST(Theorem53, ZeroBudgetMeansExactEquality)
{
    support::Rng rng(300);
    const ir::Circuit c = testutil::randomNativeCircuit(
        ir::GateSetKind::Ibmq20, 4, 35, rng);
    core::GuoqConfig cfg;
    cfg.epsilonTotal = 0;
    cfg.timeBudgetSeconds = 1.0;
    cfg.maxIterations = 2000;
    const core::GuoqResult r =
        core::optimize(c, ir::GateSetKind::Ibmq20, cfg);
    EXPECT_EQ(r.errorBound, 0.0);
    EXPECT_LT(sim::circuitDistance(c, r.best), testutil::kExact);
}

} // namespace
} // namespace guoq
