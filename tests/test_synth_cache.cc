/**
 * @file
 * Tests for the content-addressed synthesis cache, the worker pool,
 * and the SynthService seam: key canonicalization (global phase, gate
 * set, ε tier), persistent-tier robustness, the RNG fork discipline,
 * hit revalidation against the request's ε, warm-run replay, and the
 * bit-for-bit legacy pin of core::optimize() with the cache off.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "core/guoq.h"
#include "linalg/unitary.h"
#include "sim/unitary_sim.h"
#include "synth/cache.h"
#include "synth/pool.h"
#include "synth/service.h"
#include "tests/test_util.h"

namespace guoq {
namespace {

synth::ResynthOptions
optionsFor(ir::GateSetKind set, double eps = 1e-6)
{
    synth::ResynthOptions o;
    o.targetSet = set;
    o.epsilon = eps;
    o.deadline = support::Deadline::in(30);
    return o;
}

// --- ε tiers ---------------------------------------------------------

TEST(SynthCacheKey, EpsilonTierBucketsQuarterDecades)
{
    // Same quarter-decade shares a tier; a decade apart never does.
    EXPECT_EQ(synth::epsilonTier(1e-5), synth::epsilonTier(1.2e-5));
    EXPECT_NE(synth::epsilonTier(1e-5), synth::epsilonTier(1e-6));
    EXPECT_NE(synth::epsilonTier(1e-5), synth::epsilonTier(1e-4));
    // Non-positive ε (exact synthesis) gets its own sentinel tier.
    EXPECT_EQ(synth::epsilonTier(0), synth::epsilonTier(-1));
    EXPECT_NE(synth::epsilonTier(0), synth::epsilonTier(1e-7));
}

// --- canonical unitary hash ------------------------------------------

TEST(SynthCacheKey, CollidesUpToGlobalPhase)
{
    // z and rz(π) differ exactly by the global phase -i.
    ir::Circuit a(1);
    a.z(0);
    ir::Circuit b(1);
    b.rz(M_PI, 0);
    const linalg::ComplexMatrix ua = sim::circuitUnitary(a);
    const linalg::ComplexMatrix ub = sim::circuitUnitary(b);
    ASSERT_TRUE(linalg::equalUpToGlobalPhase(ua, ub, 1e-9));
    EXPECT_EQ(synth::canonicalUnitaryHash(ua),
              synth::canonicalUnitaryHash(ub));

    const synth::ResynthOptions opts = optionsFor(ir::GateSetKind::Nam);
    EXPECT_EQ(synth::makeCacheKey(ua, 1, opts),
              synth::makeCacheKey(ub, 1, opts));
}

TEST(SynthCacheKey, SeparatesDifferentUnitaries)
{
    ir::Circuit a(1);
    a.x(0);
    ir::Circuit b(1);
    b.z(0);
    EXPECT_NE(synth::canonicalUnitaryHash(sim::circuitUnitary(a)),
              synth::canonicalUnitaryHash(sim::circuitUnitary(b)));
}

TEST(SynthCacheKey, SeparatesGateSetAndEpsilonTier)
{
    ir::Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    const linalg::ComplexMatrix u = sim::circuitUnitary(c);

    const synth::CacheKey nam =
        synth::makeCacheKey(u, 2, optionsFor(ir::GateSetKind::Nam));
    const synth::CacheKey ionq =
        synth::makeCacheKey(u, 2, optionsFor(ir::GateSetKind::IonQ));
    EXPECT_NE(nam, ionq);

    const synth::CacheKey loose = synth::makeCacheKey(
        u, 2, optionsFor(ir::GateSetKind::Nam, 1e-4));
    EXPECT_NE(nam, loose);

    synth::ResynthOptions caps = optionsFor(ir::GateSetKind::Nam);
    caps.maxEntanglers = 4;
    EXPECT_NE(nam, synth::makeCacheKey(u, 2, caps));
}

// --- in-memory map ---------------------------------------------------

TEST(SynthCache, StoreIsFirstWriteWins)
{
    synth::SynthCache cache;
    ir::Circuit c(1);
    c.x(0);
    const synth::CacheKey key = synth::makeCacheKey(
        sim::circuitUnitary(c), 1, optionsFor(ir::GateSetKind::Nam));

    synth::CacheEntry first;
    first.success = true;
    first.circuit = c;
    first.distance = 0.25;
    EXPECT_TRUE(cache.store(key, first));
    EXPECT_EQ(cache.size(), 1u);

    synth::CacheEntry second;
    second.success = false;
    EXPECT_FALSE(cache.store(key, second));

    synth::CacheEntry out;
    ASSERT_TRUE(cache.lookup(key, &out));
    EXPECT_TRUE(out.success);
    EXPECT_EQ(out.distance, 0.25);
    EXPECT_EQ(out.circuit.gates(), c.gates());

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.lookup(key, &out));
}

// --- persistent tier -------------------------------------------------

std::string
tempCachePath(const char *name)
{
    return testing::TempDir() + name;
}

synth::CacheKey
persistKey(double angle, double eps = 1e-5)
{
    ir::Circuit c(2);
    c.rz(angle, 0);
    c.cx(0, 1);
    return synth::makeCacheKey(sim::circuitUnitary(c), 2,
                               optionsFor(ir::GateSetKind::Nam, eps));
}

TEST(SynthCachePersist, RoundTripsExactly)
{
    synth::SynthCache cache;
    // An irrational angle and distance: %.17g must round-trip the
    // exact doubles or warm runs could diverge bit-for-bit.
    ir::Circuit stored(2);
    stored.rz(0.1234567890123456789, 1);
    stored.cx(1, 0);
    synth::CacheEntry entry;
    entry.success = true;
    entry.circuit = stored;
    entry.distance = 3.141592653589793e-7;
    const synth::CacheKey key = persistKey(0.7);
    cache.store(key, entry);

    synth::CacheEntry failure; // negative entries persist too
    const synth::CacheKey fkey = persistKey(0.9);
    cache.store(fkey, failure);

    const std::string path = tempCachePath("synth_cache_roundtrip.txt");
    std::string err;
    ASSERT_TRUE(cache.save(path, &err)) << err;

    synth::SynthCache loaded;
    ASSERT_TRUE(loaded.load(path, &err)) << err;
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_EQ(loaded.size(), 2u);

    synth::CacheEntry out;
    ASSERT_TRUE(loaded.lookup(key, &out));
    EXPECT_TRUE(out.success);
    EXPECT_EQ(out.distance, entry.distance); // bitwise, not approx
    ASSERT_EQ(out.circuit.gates().size(), stored.gates().size());
    EXPECT_EQ(out.circuit.gates()[0].params[0],
              stored.gates()[0].params[0]);
    EXPECT_EQ(out.circuit.gates(), stored.gates());

    ASSERT_TRUE(loaded.lookup(fkey, &out));
    EXPECT_FALSE(out.success);
}

TEST(SynthCachePersist, ToleratesTruncation)
{
    synth::SynthCache cache;
    synth::CacheEntry entry;
    entry.success = true;
    ir::Circuit stored(2);
    stored.cx(0, 1);
    stored.h(0);
    entry.circuit = stored;
    entry.distance = 0;
    cache.store(persistKey(0.1), entry);
    cache.store(persistKey(0.2), entry);

    const std::string path = tempCachePath("synth_cache_truncated.txt");
    ASSERT_TRUE(cache.save(path));

    // Chop the file mid-record: the loader must keep the clean prefix
    // and never crash (Circuit::add panics are pre-filtered).
    std::ifstream in(path);
    std::stringstream whole;
    whole << in.rdbuf();
    in.close();
    const std::string text = whole.str();
    std::ofstream out(path, std::ios::trunc);
    out << text.substr(0, text.size() - text.size() / 3);
    out.close();

    synth::SynthCache loaded;
    std::string err;
    EXPECT_TRUE(loaded.load(path, &err));
    EXPECT_LT(loaded.size(), 2u);
}

TEST(SynthCachePersist, ToleratesCorruptedRecords)
{
    const std::string path = tempCachePath("synth_cache_corrupt.txt");
    std::ofstream out(path, std::ios::trunc);
    out << synth::SynthCache::kFileMagic << "\n";
    // Bad gate-set name, bad qubit index, and plain garbage — none
    // may crash the loader.
    out << "entry 1 not-a-set 0 2 3 10 24 1 0 0\n";
    out << "entry 2 nam 0 2 3 10 24 1 0 1\n";
    out << "gate cx 0 7\n"; // qubit out of range for 2 qubits
    out << "entry 3 nam 0 2 3 10 24 1 0 1\n";
    out << "gate cx 1 1\n"; // repeated qubit
    out << "complete garbage line\n";
    out.close();

    synth::SynthCache loaded;
    std::string err;
    EXPECT_TRUE(loaded.load(path, &err));
    EXPECT_EQ(loaded.size(), 0u);
    EXPECT_FALSE(err.empty());
}

TEST(SynthCachePersist, IgnoresVersionMismatch)
{
    const std::string path = tempCachePath("synth_cache_version.txt");
    std::ofstream out(path, std::ios::trunc);
    out << "guoq-synth-cache-v999\n";
    out << "entry 1 nam 0 2 3 10 24 0 1 0\n";
    out.close();

    synth::SynthCache loaded;
    std::string err;
    EXPECT_FALSE(loaded.load(path, &err));
    EXPECT_EQ(loaded.size(), 0u);
    EXPECT_FALSE(err.empty());
}

TEST(SynthCachePersist, MissingFileLoadsNothing)
{
    synth::SynthCache loaded;
    std::string err;
    EXPECT_TRUE(
        loaded.load(tempCachePath("synth_cache_missing.txt"), &err));
    EXPECT_EQ(loaded.size(), 0u);
    EXPECT_TRUE(err.empty());
}

// --- worker pool -----------------------------------------------------

TEST(SynthPool, RunsTasksAndBoundsQueue)
{
    std::atomic<int> ran{0};
    std::atomic<int> started{0};
    std::mutex m;
    std::condition_variable cv;
    bool go = false;
    auto blocker = [&] {
        ++started;
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return go; });
        ++ran;
    };
    auto quick = [&] { ++ran; };
    {
        synth::Pool pool(2, 2);
        EXPECT_EQ(pool.workers(), 2);
        ASSERT_TRUE(pool.trySubmit(blocker));
        ASSERT_TRUE(pool.trySubmit(blocker));
        while (started.load() < 2)
            std::this_thread::yield();
        // Both workers parked: the next two fill the bounded queue,
        // the third must be refused, not queued.
        EXPECT_TRUE(pool.trySubmit(quick));
        EXPECT_TRUE(pool.trySubmit(quick));
        EXPECT_FALSE(pool.trySubmit(quick));
        EXPECT_GE(pool.queuePeak(), 2u);
        {
            std::lock_guard<std::mutex> lock(m);
            go = true;
        }
        cv.notify_all();
    } // destructor drains the queue, then joins
    EXPECT_EQ(ran.load(), 4);
}

// --- service: determinism contract -----------------------------------

TEST(SynthService, CacheDisabledIsBitForBitPassThrough)
{
    ir::Circuit sub(2);
    sub.cx(0, 1);
    sub.cx(0, 1);
    sub.t(0);
    const synth::ResynthOptions opts =
        optionsFor(ir::GateSetKind::Nam, 1e-6);

    support::Rng direct_rng(7);
    const synth::ResynthResult direct =
        synth::resynthesize(sub, opts, direct_rng);

    synth::SynthService service; // cache off by default
    support::Rng service_rng(7);
    const synth::SynthOutcome so =
        service.resynthesize(sub, opts, service_rng);

    EXPECT_FALSE(so.cacheHit);
    EXPECT_FALSE(so.cacheMiss);
    EXPECT_EQ(so.result.success, direct.success);
    EXPECT_EQ(so.result.distance, direct.distance);
    EXPECT_EQ(so.result.circuit.gates(), direct.circuit.gates());
    // The caller's RNG stream advanced identically.
    EXPECT_EQ(direct_rng(), service_rng());
}

TEST(SynthService, ConsumesOneForkPerRequestHitOrMiss)
{
    ir::Circuit sub(2);
    sub.cx(0, 1);
    sub.cx(0, 1);
    const synth::ResynthOptions opts =
        optionsFor(ir::GateSetKind::Nam, 1e-6);

    synth::SynthService cold;
    cold.enableCache(true);
    synth::SynthService warm;
    warm.enableCache(true);
    synth::SynthOutcome stored;
    {
        support::Rng prewarm(99);
        stored = warm.resynthesize(sub, opts, prewarm);
        ASSERT_TRUE(stored.cacheMiss);
    }

    support::Rng cold_rng(21);
    support::Rng warm_rng(21);
    const synth::SynthOutcome miss =
        cold.resynthesize(sub, opts, cold_rng);
    const synth::SynthOutcome hit =
        warm.resynthesize(sub, opts, warm_rng);
    EXPECT_TRUE(miss.cacheMiss);
    EXPECT_TRUE(hit.cacheHit);
    // Hit or miss, the parent stream is charged exactly one fork, so
    // cold and warm trajectories stay aligned.
    EXPECT_EQ(cold_rng(), warm_rng());
    // And the hit serves exactly what the earlier miss stored.
    EXPECT_EQ(hit.result.success, stored.result.success);
    EXPECT_EQ(hit.result.distance, stored.result.distance);
    EXPECT_EQ(hit.result.circuit.gates(),
              stored.result.circuit.gates());
}

TEST(SynthService, HitRevalidatesStoredCircuitAgainstRequest)
{
    // Poison the cache with an entry whose circuit does NOT implement
    // the requested unitary (as a hash collision would): the hit must
    // be rejected and recomputed, never served.
    ir::Circuit sub(2);
    sub.cx(0, 1);
    sub.cx(0, 1); // identity
    const synth::ResynthOptions opts =
        optionsFor(ir::GateSetKind::Nam, 1e-6);
    const synth::CacheKey key =
        synth::makeCacheKey(sim::circuitUnitary(sub), 2, opts);

    synth::SynthService service;
    service.enableCache(true);
    synth::CacheEntry poison;
    poison.success = true;
    poison.distance = 0; // lies: the circuit is far from identity
    poison.circuit = ir::Circuit(2);
    poison.circuit.x(0);
    service.cache().store(key, poison);

    support::Rng rng(5);
    const synth::SynthOutcome so = service.resynthesize(sub, opts, rng);
    EXPECT_TRUE(so.cacheMiss);
    EXPECT_FALSE(so.cacheHit);
    ASSERT_TRUE(so.result.success);
    EXPECT_LE(so.result.distance, 1e-6);
    EXPECT_LE(linalg::hsDistance(
                  sim::circuitUnitary(sub),
                  sim::circuitUnitary(so.result.circuit)),
              1e-6);
}

TEST(SynthService, HitNeverLoosensTheErrorBound)
{
    // A stored distance above the request's ε must degrade to a miss
    // even when the circuit itself is fine.
    ir::Circuit sub(2);
    sub.cx(0, 1);
    sub.cx(0, 1);
    const synth::ResynthOptions opts =
        optionsFor(ir::GateSetKind::Nam, 1e-6);
    const synth::CacheKey key =
        synth::makeCacheKey(sim::circuitUnitary(sub), 2, opts);

    synth::SynthService service;
    service.enableCache(true);
    synth::CacheEntry loose;
    loose.success = true;
    loose.distance = 0.5; // way past any ε in this tier
    loose.circuit = sub;
    service.cache().store(key, loose);

    support::Rng rng(6);
    const synth::SynthOutcome so = service.resynthesize(sub, opts, rng);
    EXPECT_TRUE(so.cacheMiss);
    ASSERT_TRUE(so.result.success);
    EXPECT_LE(so.result.distance, 1e-6);
}

// --- end-to-end determinism through core::optimize() -----------------

core::GuoqConfig
cacheRunConfig(synth::SynthService *service)
{
    core::GuoqConfig cfg;
    cfg.epsilonTotal = 1e-5;
    cfg.timeBudgetSeconds = 1e6; // iteration cap decides, not wall
    cfg.maxIterations = 600;
    cfg.seed = 12345;
    cfg.resynthProbability = 0.05;
    cfg.resynthCallSeconds = 1e6;
    cfg.synthService = service;
    return cfg;
}

ir::Circuit
cacheRunInput()
{
    support::Rng gen(42);
    return testutil::randomNativeCircuit(ir::GateSetKind::CliffordT, 3,
                                         28, gen);
}

TEST(SynthService, WarmRunReplaysColdRunByteForByte)
{
    const ir::Circuit c = cacheRunInput();
    synth::SynthService service;
    service.enableCache(true);

    const core::GuoqResult cold = core::optimize(
        c, ir::GateSetKind::CliffordT, cacheRunConfig(&service));
    const core::GuoqResult warm = core::optimize(
        c, ir::GateSetKind::CliffordT, cacheRunConfig(&service));

    EXPECT_EQ(warm.best.toString(), cold.best.toString());
    EXPECT_EQ(warm.errorBound, cold.errorBound);
    EXPECT_EQ(warm.stats.iterations, cold.stats.iterations);
    EXPECT_EQ(warm.stats.accepted, cold.stats.accepted);
    ASSERT_GT(cold.stats.synthCacheMisses, 0);
    EXPECT_GT(warm.stats.synthCacheHits, 0);
    // The acceptance criterion: >= 2x fewer synthesizer searches warm.
    EXPECT_LE(warm.stats.synthCacheMisses * 2,
              cold.stats.synthCacheMisses);
}

TEST(SynthService, PersistentTierWarmStartsAcrossServices)
{
    const ir::Circuit c = cacheRunInput();
    const std::string dir = testing::TempDir() + "guoq_synth_cache_dir";

    synth::SynthService first;
    first.enableCache(true);
    const core::GuoqResult cold = core::optimize(
        c, ir::GateSetKind::CliffordT, cacheRunConfig(&first));
    std::string err;
    ASSERT_TRUE(first.saveCacheDir(dir, &err)) << err;

    synth::SynthService second;
    ASSERT_TRUE(second.loadCacheDir(dir, &err)) << err;
    EXPECT_TRUE(second.cacheEnabled());
    EXPECT_EQ(second.cache().size(), first.cache().size());
    const core::GuoqResult warm = core::optimize(
        c, ir::GateSetKind::CliffordT, cacheRunConfig(&second));

    // The persisted tier replays the in-memory run exactly: %.17g
    // round-trips every angle and distance bit-for-bit.
    EXPECT_EQ(warm.best.toString(), cold.best.toString());
    EXPECT_EQ(warm.errorBound, cold.errorBound);
    EXPECT_GT(warm.stats.synthCacheHits, 0);
    EXPECT_LE(warm.stats.synthCacheMisses * 2,
              cold.stats.synthCacheMisses);
}

// --- the legacy pin --------------------------------------------------

// Captured from the pre-cache core::optimize() on this exact input
// and configuration (CliffordT synthesis is iteration-bounded, so the
// trajectory is machine-independent). Any RNG-stream or control-flow
// change in the cache-off path shows up here as a diff.
constexpr const char *kLegacyBest = "circuit(3 qubits, 17 gates)\n"
                                    "  s q0\n"
                                    "  h q0\n"
                                    "  s q0\n"
                                    "  cx q1, q0\n"
                                    "  cx q0, q1\n"
                                    "  cx q1, q0\n"
                                    "  x q1\n"
                                    "  x q0\n"
                                    "  cx q2, q0\n"
                                    "  tdg q2\n"
                                    "  h q0\n"
                                    "  cx q0, q2\n"
                                    "  cx q1, q2\n"
                                    "  tdg q0\n"
                                    "  s q0\n"
                                    "  s q1\n"
                                    "  x q2\n";

TEST(SynthService, CacheOffSingleThreadPinsLegacyTrajectory)
{
    const ir::Circuit c = cacheRunInput();
    synth::SynthService service; // cache off: pure pass-through

    core::GuoqConfig cfg;
    cfg.epsilonTotal = 1e-5;
    cfg.timeBudgetSeconds = 1e6;
    cfg.maxIterations = 400;
    cfg.seed = 12345;
    cfg.resynthCallSeconds = 1e6;
    cfg.synthService = &service;
    const core::GuoqResult r =
        core::optimize(c, ir::GateSetKind::CliffordT, cfg);

    EXPECT_EQ(r.best.toString(), kLegacyBest);
    EXPECT_EQ(r.errorBound, 1.4901161193847656e-08);
    EXPECT_EQ(r.stats.iterations, 400);
    EXPECT_EQ(r.stats.accepted, 53);
    EXPECT_EQ(r.stats.uphillAccepted, 0);
    EXPECT_EQ(r.stats.rejected, 0);
    EXPECT_EQ(r.stats.noops, 347);
    EXPECT_EQ(r.stats.budgetSkips, 0);
    EXPECT_EQ(r.stats.resynthCalls, 8);
    EXPECT_EQ(r.stats.resynthAccepted, 1);
    EXPECT_EQ(r.stats.rewriteApplications, 52);
    EXPECT_EQ(r.stats.synthCacheHits, 0);
    EXPECT_EQ(r.stats.synthCacheMisses, 0);
    EXPECT_EQ(r.stats.synthCacheStores, 0);
}

} // namespace
} // namespace guoq
