/** @file Functional tests for the benchmark-circuit generators. */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/statevector.h"
#include "sim/unitary_sim.h"
#include "tests/test_util.h"
#include "transpile/decompose.h"
#include "workloads/simulation.h"
#include "workloads/standard.h"
#include "workloads/suite.h"
#include "workloads/variational.h"

namespace guoq {
namespace {

TEST(Workloads, GhzPreparesGhzState)
{
    const sim::StateVector s = sim::runCircuit(workloads::ghz(5));
    EXPECT_NEAR(s.probability(0), 0.5, 1e-10);
    EXPECT_NEAR(s.probability(31), 0.5, 1e-10);
}

TEST(Workloads, QftTimesInverseIsIdentity)
{
    ir::Circuit c = workloads::qft(4);
    c.append(workloads::inverseQft(4));
    EXPECT_LT(sim::circuitDistance(c, ir::Circuit(4)), testutil::kExact);
}

TEST(Workloads, QftOfZeroIsUniform)
{
    const sim::StateVector s = sim::runCircuit(workloads::qft(4));
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_NEAR(s.probability(i), 1.0 / 16, 1e-10);
}

TEST(Workloads, QftOnOneQubitIsHadamard)
{
    ir::Circuit h(1);
    h.h(0);
    EXPECT_LT(sim::circuitDistance(workloads::qft(1), h),
              testutil::kExact);
}

TEST(Workloads, BarencoTofEqualsMultiControlX)
{
    // 3 controls on 5 qubits: compare against the brute-force truth
    // table (ancilla returns to zero).
    const ir::Circuit c = workloads::barencoTof(3);
    ASSERT_EQ(c.numQubits(), 5);
    for (int a = 0; a < 8; ++a) {
        ir::Circuit prep(5);
        for (int bit = 0; bit < 3; ++bit)
            if (a & (1 << bit))
                prep.x(bit);
        prep.append(c);
        const sim::StateVector s = sim::runCircuit(prep);
        // Expected: target (qubit 3) flips iff all controls set.
        std::vector<int> bits(5, 0);
        for (int bit = 0; bit < 3; ++bit)
            bits[static_cast<std::size_t>(bit)] = (a >> bit) & 1;
        bits[3] = (a == 7) ? 1 : 0;
        EXPECT_NEAR(s.probability(testutil::basisIndex(bits)), 1.0, 1e-9)
            << "input " << a;
    }
}

TEST(Workloads, CuccaroAdderAddsExhaustively)
{
    const int n = 2;
    const ir::Circuit adder = workloads::cuccaroAdder(n);
    ASSERT_EQ(adder.numQubits(), 2 * n + 2);
    for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
            ir::Circuit prep(2 * n + 2);
            for (int bit = 0; bit < n; ++bit) {
                if (a & (1 << bit))
                    prep.x(1 + bit);
                if (b & (1 << bit))
                    prep.x(1 + n + bit);
            }
            prep.append(adder);
            const sim::StateVector s = sim::runCircuit(prep);
            const int sum = a + b;
            std::vector<int> bits(2 * n + 2, 0);
            for (int bit = 0; bit < n; ++bit) {
                bits[static_cast<std::size_t>(1 + bit)] = (a >> bit) & 1;
                bits[static_cast<std::size_t>(1 + n + bit)] =
                    (sum >> bit) & 1;
            }
            bits[2 * n + 1] = (sum >> n) & 1; // carry out
            EXPECT_NEAR(s.probability(testutil::basisIndex(bits)), 1.0,
                        1e-9)
                << a << "+" << b;
        }
    }
}

TEST(Workloads, GroverAmplifiesAllOnes)
{
    const ir::Circuit c = workloads::grover(3);
    const sim::StateVector s = sim::runCircuit(c);
    // Sum probability over all states whose work qubits (the 3 MSBs of
    // the 4-qubit register) read 111.
    double p_target = 0;
    for (std::size_t i = 0; i < s.dim(); ++i)
        if ((i >> 1) == 7)
            p_target += s.probability(i);
    EXPECT_GT(p_target, 0.9);
}

TEST(Workloads, QpeIsDeterministicForExactPhase)
{
    // T's phase π/4 = 2π·(1/8) is exactly representable with 3
    // counting qubits: the outcome is a single basis state.
    const ir::Circuit c = workloads::qpe(3);
    const sim::StateVector s = sim::runCircuit(c);
    double max_p = 0;
    std::size_t arg = 0;
    for (std::size_t i = 0; i < s.dim(); ++i) {
        if (s.probability(i) > max_p) {
            max_p = s.probability(i);
            arg = i;
        }
    }
    EXPECT_GT(max_p, 0.99);
    EXPECT_EQ(arg & 1u, 1u); // eigenstate qubit (LSB) stays |1>
}

TEST(Workloads, BernsteinVaziraniRecoversSecret)
{
    const std::uint64_t secret = 0b1011;
    const ir::Circuit c = workloads::bernsteinVazirani(4, secret);
    const sim::StateVector s = sim::runCircuit(c);
    // Output register (qubits 0..3) should read the secret with
    // certainty; the ancilla (qubit 4) returns to |0> after uncompute.
    std::vector<int> bits(5, 0);
    for (int q = 0; q < 4; ++q)
        bits[static_cast<std::size_t>(q)] =
            (secret >> q) & 1 ? 1 : 0;
    EXPECT_NEAR(s.probability(testutil::basisIndex(bits)), 1.0, 1e-9);
}

TEST(Workloads, DeutschJozsaBalancedNeverReturnsZero)
{
    const ir::Circuit c = workloads::deutschJozsa(4, 0b0110);
    const sim::StateVector s = sim::runCircuit(c);
    // For a balanced oracle the all-zero input register has zero
    // amplitude (sum over both ancilla values).
    double p_zero = 0;
    for (std::size_t i = 0; i < s.dim(); ++i)
        if ((i >> 1) == 0)
            p_zero += s.probability(i);
    EXPECT_NEAR(p_zero, 0.0, 1e-9);
}

TEST(Workloads, HiddenShiftRecoversShiftDeterministically)
{
    const std::uint64_t shift = 0b1010;
    const sim::StateVector s =
        sim::runCircuit(workloads::hiddenShift(4, shift));
    std::vector<int> bits(4, 0);
    for (int q = 0; q < 4; ++q)
        bits[static_cast<std::size_t>(q)] = (shift >> q) & 1 ? 1 : 0;
    EXPECT_NEAR(s.probability(testutil::basisIndex(bits)), 1.0, 1e-9);
}

TEST(Workloads, HiddenShiftZeroShiftReadsZero)
{
    const sim::StateVector s =
        sim::runCircuit(workloads::hiddenShift(6, 0));
    EXPECT_NEAR(s.probability(0), 1.0, 1e-9);
}

TEST(Workloads, DraperAdderAddsConstantExhaustively)
{
    const int n = 3;
    for (std::uint64_t a = 0; a < 8; a += 3) {
        const ir::Circuit adder = workloads::draperAdder(n, a);
        for (std::uint64_t b = 0; b < 8; ++b) {
            ir::Circuit prep(n);
            for (int q = 0; q < n; ++q)
                if (b & (std::uint64_t{1} << (n - 1 - q)))
                    prep.x(q); // qubit 0 = MSB of b
            prep.append(adder);
            const sim::StateVector s = sim::runCircuit(prep);
            EXPECT_NEAR(s.probability((a + b) % 8), 1.0, 1e-9)
                << a << "+" << b;
        }
    }
}

TEST(Workloads, VariationalGeneratorsAreSeedDeterministic)
{
    const ir::Circuit a = workloads::qaoaMaxCut(6, 2, 42);
    const ir::Circuit b = workloads::qaoaMaxCut(6, 2, 42);
    const ir::Circuit c = workloads::qaoaMaxCut(6, 2, 43);
    EXPECT_EQ(a.toString(), b.toString());
    EXPECT_NE(a.toString(), c.toString());
}

TEST(Workloads, QaoaShape)
{
    const ir::Circuit c = workloads::qaoaMaxCut(6, 2, 1);
    EXPECT_EQ(c.numQubits(), 6);
    EXPECT_GT(c.twoQubitGateCount(), 0u);
    EXPECT_EQ(c.countOf(ir::GateKind::H), 6u);
}

TEST(Workloads, VqeUsesLinearLadder)
{
    const ir::Circuit c = workloads::vqeAnsatz(5, 2, 9);
    EXPECT_EQ(c.twoQubitGateCount(), 8u); // (n-1) per layer
}

TEST(Workloads, TrotterIsingShape)
{
    const ir::Circuit c = workloads::trotterIsing(6, 3);
    EXPECT_EQ(c.twoQubitGateCount(), 2u * 5u * 3u);
    EXPECT_EQ(c.countOf(ir::GateKind::Rx), 6u * 3u);
}

TEST(Workloads, TrotterHeisenbergIsUnitaryCircuit)
{
    const ir::Circuit c = workloads::trotterHeisenberg(4, 1);
    EXPECT_TRUE(sim::circuitUnitary(c).isUnitary(1e-8));
}

TEST(Workloads, IsingPiOver4IsCliffordTRepresentable)
{
    const ir::Circuit c = workloads::trotterIsingPiOver4(5, 2);
    for (const ir::Gate &g : c.gates())
        for (double p : g.params)
            EXPECT_TRUE(transpile::isPiOver4Multiple(p));
}

TEST(Suite, HasDiverseFamilies)
{
    const auto suite = workloads::standardSuite();
    EXPECT_GE(suite.size(), 35u);
    std::set<std::string> families;
    for (const auto &b : suite)
        families.insert(b.family);
    EXPECT_GE(families.size(), 12u);
}

TEST(Suite, LoweredSuitesAreNative)
{
    for (ir::GateSetKind set : ir::allGateSets()) {
        const auto suite = workloads::suiteFor(set);
        EXPECT_GE(suite.size(), 10u) << ir::gateSetName(set);
        for (const auto &b : suite)
            for (const ir::Gate &g : b.circuit.gates())
                ASSERT_TRUE(ir::isNative(set, g.kind))
                    << b.name << " in " << ir::gateSetName(set);
    }
}

TEST(Suite, CliffordTSuiteExcludesContinuousFamilies)
{
    const auto suite = workloads::suiteFor(ir::GateSetKind::CliffordT);
    for (const auto &b : suite) {
        EXPECT_NE(b.family, "qft");
        EXPECT_NE(b.family, "qaoa");
        EXPECT_NE(b.family, "vqe");
    }
}

TEST(Suite, QuickSuiteTruncatesWithDiversity)
{
    const auto quick = workloads::quickSuiteFor(ir::GateSetKind::Nam, 8);
    EXPECT_EQ(quick.size(), 8u);
    std::set<std::string> families;
    for (const auto &b : quick)
        families.insert(b.family);
    EXPECT_GE(families.size(), 6u);
}

TEST(Suite, QuickSuiteNeverDuplicatesBenchmarks)
{
    // Regression: the family round-robin must advance within a family
    // across rounds instead of re-selecting its first entry.
    for (int cap : {5, 12, 25, 100}) {
        const auto quick =
            workloads::quickSuiteFor(ir::GateSetKind::CliffordT, cap);
        std::set<std::string> names;
        for (const auto &b : quick)
            EXPECT_TRUE(names.insert(b.name).second)
                << "duplicate " << b.name << " at cap " << cap;
    }
}

TEST(Workloads, MultiControlXUncomputesAncillas)
{
    ir::Circuit c(7); // 4 controls, target 4, ancillas 5..6
    std::vector<int> controls{0, 1, 2, 3};
    workloads::appendMultiControlX(&c, controls, 4, 5);
    // Set all controls: target flips, ancillas end clean.
    ir::Circuit prep(7);
    for (int q = 0; q < 4; ++q)
        prep.x(q);
    prep.append(c);
    const sim::StateVector s = sim::runCircuit(prep);
    std::vector<int> bits{1, 1, 1, 1, 1, 0, 0};
    EXPECT_NEAR(s.probability(testutil::basisIndex(bits)), 1.0, 1e-9);
}

} // namespace
} // namespace guoq
