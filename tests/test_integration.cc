/**
 * @file
 * End-to-end integration tests: workload generation → transpilation →
 * optimization → validation, across optimizers and gate sets — the
 * pipelines the benchmark harnesses run, at test scale.
 */

#include <gtest/gtest.h>

#include "baselines/fixed_sequence.h"
#include "baselines/partition_resynth.h"
#include "baselines/phase_poly.h"
#include "core/guoq.h"
#include "qasm/parser.h"
#include "qasm/printer.h"
#include "sim/unitary_sim.h"
#include "tests/test_util.h"
#include "transpile/to_gate_set.h"
#include "workloads/standard.h"
#include "workloads/suite.h"

namespace guoq {
namespace {

TEST(Integration, GuoqBeatsOrMatchesQiskitLikeOnQuickSuite)
{
    // The Q1 comparison in miniature: on a few small benchmarks GUOQ
    // must never lose to the fixed-sequence baseline given its anytime
    // guarantee (it starts from the same circuit and only accepts
    // improvements).
    const auto quick =
        workloads::quickSuiteFor(ir::GateSetKind::IbmEagle, 4);
    for (const auto &b : quick) {
        const ir::Circuit baseline = baselines::qiskitLikeOptimize(
            b.circuit, ir::GateSetKind::IbmEagle);
        core::GuoqConfig cfg;
        cfg.epsilonTotal = 1e-5;
        cfg.timeBudgetSeconds = 1.5;
        const core::GuoqResult r =
            core::optimize(b.circuit, ir::GateSetKind::IbmEagle, cfg);
        // Not a strict guarantee per-benchmark in general, but with
        // identical rule sets GUOQ subsumes the baseline's moves.
        EXPECT_LE(r.best.twoQubitGateCount() * 1.0,
                  baseline.twoQubitGateCount() * 1.0 + 1.0)
            << b.name;
        if (b.circuit.numQubits() <= 8) {
            EXPECT_LE(sim::circuitDistance(b.circuit, r.best),
                      1e-5 + testutil::kExact)
                << b.name;
        }
    }
}

TEST(Integration, PyzxThenGuoqPipeline)
{
    // The Fig. 14 pipeline: phase-poly first (T reduction), then GUOQ
    // on its output (CX reduction) without increasing T count.
    const auto quick =
        workloads::quickSuiteFor(ir::GateSetKind::CliffordT, 3);
    for (const auto &b : quick) {
        const ir::Circuit zx = baselines::phasePolyOptimize(
            b.circuit, ir::GateSetKind::CliffordT);
        core::GuoqConfig cfg;
        cfg.epsilonTotal = 1e-5;
        cfg.timeBudgetSeconds = 1.5;
        // Anytime-safe claim (the objective never worsens): cap the
        // iterations so the sweep doesn't sleep out its full budget.
        cfg.maxIterations = 2000;
        cfg.objective = core::Objective::TThenTwoQubit;
        const core::GuoqResult r =
            core::optimize(zx, ir::GateSetKind::CliffordT, cfg);
        // 2·#T + #CX never worsens, so T cannot increase while CX
        // drops (the weighted objective enforces the Fig. 14 claim).
        EXPECT_LE(2.0 * r.best.tGateCount() +
                      r.best.twoQubitGateCount(),
                  2.0 * zx.tGateCount() + zx.twoQubitGateCount() + 1e-9)
            << b.name;
    }
}

TEST(Integration, QasmExportReimportOptimize)
{
    // Export a suite circuit to QASM, reparse, optimize, validate.
    const auto quick = workloads::quickSuiteFor(ir::GateSetKind::Nam, 1);
    ASSERT_FALSE(quick.empty());
    const ir::Circuit back =
        qasm::parse(qasm::toQasm(quick[0].circuit));
    core::GuoqConfig cfg;
    cfg.epsilonTotal = 0;
    cfg.timeBudgetSeconds = 1.0;
    cfg.maxIterations = 2000;
    const core::GuoqResult r =
        core::optimize(back, ir::GateSetKind::Nam, cfg);
    if (back.numQubits() <= 8) {
        EXPECT_LT(sim::circuitDistance(quick[0].circuit, r.best),
                  testutil::kExact);
    }
}

TEST(Integration, GuoqSubsumesPartitionResynthOnRedundantCircuit)
{
    // Fully redundant entanglers: both approaches find them; GUOQ must
    // end at least as small.
    ir::Circuit c(3);
    for (int rep = 0; rep < 3; ++rep) {
        c.cx(0, 1);
        c.cx(0, 1);
        c.cx(1, 2);
        c.cx(1, 2);
    }
    const auto pr = baselines::partitionResynth(
        c, ir::GateSetKind::Nam, core::Objective::TwoQubitCount, 1e-5,
        2.0, 1);
    core::GuoqConfig cfg;
    cfg.epsilonTotal = 1e-5;
    cfg.timeBudgetSeconds = 3.0;
    cfg.maxIterations = 5000;
    const core::GuoqResult r =
        core::optimize(c, ir::GateSetKind::Nam, cfg);
    EXPECT_LE(r.best.twoQubitGateCount(),
              pr.circuit.twoQubitGateCount());
    EXPECT_EQ(r.best.twoQubitGateCount(), 0u);
}

TEST(Integration, FtqcObjectiveReducesTCount)
{
    // Q4 in miniature: on a Toffoli ladder, GUOQ with the T-count
    // objective must reduce T gates (t_t_to_s merges exposed by
    // commutation).
    const ir::Circuit c = transpile::toGateSet(
        workloads::barencoTof(3), ir::GateSetKind::CliffordT);
    core::GuoqConfig cfg;
    cfg.epsilonTotal = 1e-5;
    cfg.timeBudgetSeconds = 4.0;
    cfg.maxIterations = 4000;
    cfg.objective = core::Objective::TCount;
    const core::GuoqResult r =
        core::optimize(c, ir::GateSetKind::CliffordT, cfg);
    EXPECT_LE(r.best.tGateCount(), c.tGateCount());
    EXPECT_LE(sim::circuitDistance(c, r.best),
              1e-5 + testutil::kExact);
}

TEST(Integration, AllGateSetsEndToEnd)
{
    // One small benchmark per gate set, full pipeline, semantic check.
    for (ir::GateSetKind set : ir::allGateSets()) {
        const auto quick = workloads::quickSuiteFor(set, 1);
        ASSERT_FALSE(quick.empty()) << ir::gateSetName(set);
        const ir::Circuit &c = quick[0].circuit;
        core::GuoqConfig cfg;
        cfg.epsilonTotal = 1e-5;
        cfg.timeBudgetSeconds = 1.0;
        cfg.maxIterations = 1500;
        const core::GuoqResult r = core::optimize(c, set, cfg);
        EXPECT_LE(r.best.gateCount(), c.gateCount())
            << ir::gateSetName(set);
        if (c.numQubits() <= 8) {
            EXPECT_LE(sim::circuitDistance(c, r.best),
                      1e-5 + testutil::kExact)
                << ir::gateSetName(set);
        }
    }
}

} // namespace
} // namespace guoq
