/** @file Tests for QSearch-style continuous synthesis. */

#include <gtest/gtest.h>

#include "sim/unitary_sim.h"
#include "synth/qsearch.h"
#include "tests/test_util.h"

namespace guoq {
namespace {

synth::QSearchOptions
quickOptions(double eps = 1e-6, double seconds = 15)
{
    synth::QSearchOptions o;
    o.epsilon = eps;
    o.deadline = support::Deadline::in(seconds);
    return o;
}

TEST(QSearch, OneQubitIsExactAndImmediate)
{
    support::Rng rng(1);
    ir::Circuit t(1);
    t.u3(0.9, 0.4, -1.3, 0);
    const synth::SynthResult r = synth::qsearch(
        sim::circuitUnitary(t), 1, quickOptions(), rng);
    ASSERT_TRUE(r.success);
    EXPECT_LE(r.circuit.size(), 3u);
    EXPECT_LT(sim::circuitDistance(t, r.circuit), testutil::kExact);
}

TEST(QSearch, IdentityNeedsNoEntanglers)
{
    support::Rng rng(2);
    const synth::SynthResult r = synth::qsearch(
        linalg::ComplexMatrix::identity(4), 2, quickOptions(), rng);
    ASSERT_TRUE(r.success);
    EXPECT_EQ(r.circuit.twoQubitGateCount(), 0u);
}

TEST(QSearch, LocalUnitaryNeedsNoEntanglers)
{
    support::Rng rng(3);
    ir::Circuit t(2);
    t.h(0);
    t.rz(0.7, 1);
    const synth::SynthResult r = synth::qsearch(
        sim::circuitUnitary(t), 2, quickOptions(), rng);
    ASSERT_TRUE(r.success);
    EXPECT_EQ(r.circuit.twoQubitGateCount(), 0u);
}

TEST(QSearch, BellPreparationNeedsOneEntangler)
{
    support::Rng rng(4);
    ir::Circuit t(2);
    t.h(0);
    t.cx(0, 1);
    const synth::SynthResult r = synth::qsearch(
        sim::circuitUnitary(t), 2, quickOptions(), rng);
    ASSERT_TRUE(r.success);
    EXPECT_EQ(r.circuit.twoQubitGateCount(), 1u);
    ir::Circuit check(2);
    check.append(r.circuit);
    EXPECT_LT(sim::circuitDistance(t, check), 1e-5);
}

TEST(QSearch, SeedDeletionRemovesRedundantEntanglers)
{
    // Two adjacent CXs cancel: the seeded search must find ≤ ... 0.
    support::Rng rng(5);
    ir::Circuit t(2);
    t.cx(0, 1);
    t.cx(0, 1);
    t.rz(0.4, 0);
    synth::QSearchOptions o = quickOptions();
    o.seedEntanglers = {{0, 1}, {0, 1}};
    const synth::SynthResult r =
        synth::qsearch(sim::circuitUnitary(t), 2, o, rng);
    ASSERT_TRUE(r.success);
    EXPECT_EQ(r.circuit.twoQubitGateCount(), 0u);
}

TEST(QSearch, RxxModeEmitsRxxEntanglers)
{
    support::Rng rng(6);
    ir::Circuit t(2);
    t.rxx(0.9, 0, 1);
    synth::QSearchOptions o = quickOptions();
    o.useRxx = true;
    o.seedEntanglers = {{0, 1}};
    const synth::SynthResult r =
        synth::qsearch(sim::circuitUnitary(t), 2, o, rng);
    ASSERT_TRUE(r.success);
    EXPECT_EQ(r.circuit.countOf(ir::GateKind::CX), 0u);
    EXPECT_LE(r.circuit.countOf(ir::GateKind::Rxx), 1u);
}

TEST(QSearch, ResultRespectsEpsilon)
{
    support::Rng rng(7);
    ir::Circuit t(2);
    t.h(0);
    t.cx(0, 1);
    t.rz(1.3, 1);
    t.cx(0, 1);
    const double eps = 1e-6;
    const synth::SynthResult r =
        synth::qsearch(sim::circuitUnitary(t), 2, quickOptions(eps), rng);
    ASSERT_TRUE(r.success);
    EXPECT_LE(r.distance, eps);
    ir::Circuit check(2);
    check.append(r.circuit);
    EXPECT_LE(sim::circuitDistance(t, check), eps * 2);
}

TEST(QSearch, FailureReportsBestAttempt)
{
    // Impossible budget: zero entanglers allowed for a CX target.
    support::Rng rng(8);
    ir::Circuit t(2);
    t.cx(0, 1);
    synth::QSearchOptions o = quickOptions(1e-8, 3);
    o.maxEntanglers = 0;
    const synth::SynthResult r =
        synth::qsearch(sim::circuitUnitary(t), 2, o, rng);
    EXPECT_FALSE(r.success);
    EXPECT_GT(r.distance, 0.01);
    EXPECT_GE(r.nodesExpanded, 1);
}

} // namespace
} // namespace guoq
