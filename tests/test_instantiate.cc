/** @file Tests for ansatz templates and numerical instantiation. */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/unitary_sim.h"
#include "synth/instantiate.h"
#include "tests/test_util.h"

namespace guoq {
namespace {

TEST(Ansatz, InitialAnsatzShape)
{
    const synth::Ansatz a = synth::initialAnsatz(3);
    EXPECT_EQ(a.numParams(), 9);
    EXPECT_EQ(a.gates().size(), 9u);
    EXPECT_EQ(a.twoQubitCount(), 0);
}

TEST(Ansatz, EntanglerBlockAddsCxAndDressing)
{
    synth::Ansatz a = synth::initialAnsatz(2);
    synth::appendEntanglerBlock(&a, 0, 1, false);
    EXPECT_EQ(a.numParams(), 12);
    EXPECT_EQ(a.twoQubitCount(), 1);
}

TEST(Ansatz, RxxBlockIsParameterized)
{
    synth::Ansatz a = synth::initialAnsatz(2);
    synth::appendEntanglerBlock(&a, 0, 1, true);
    EXPECT_EQ(a.numParams(), 13); // entangler angle is free too
}

TEST(Ansatz, InstantiateBindsParameters)
{
    synth::Ansatz a(1);
    a.addParameterized(ir::GateKind::Rz, {0});
    a.addFixed(ir::GateKind::Ry, {0}, 0.5);
    const ir::Circuit c = a.instantiate({1.25});
    ASSERT_EQ(c.size(), 2u);
    EXPECT_NEAR(c.gate(0).params[0], 1.25, 1e-15);
    EXPECT_NEAR(c.gate(1).params[0], 0.5, 1e-15);
}

class GradientCheck : public ::testing::TestWithParam<int>
{
};

TEST_P(GradientCheck, AnalyticMatchesNumeric)
{
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 311 + 7);
    synth::Ansatz a = synth::initialAnsatz(2);
    synth::appendEntanglerBlock(&a, 0, 1, GetParam() % 2 == 1);

    const ir::Circuit target_circuit = testutil::randomNativeCircuit(
        ir::GateSetKind::IbmEagle, 2, 8, rng);
    const linalg::ComplexMatrix target =
        sim::circuitUnitary(target_circuit);

    std::vector<double> x(static_cast<std::size_t>(a.numParams()));
    for (double &xi : x)
        xi = rng.uniform(-2, 2);
    std::vector<double> grad;
    const double f0 = synth::hsCostAndGrad(a, target, x, &grad);

    const double h = 1e-6;
    for (std::size_t k = 0; k < x.size(); k += 3) {
        std::vector<double> xp = x;
        xp[k] += h;
        const double fp = synth::hsCostAndGrad(a, target, xp, nullptr);
        EXPECT_NEAR((fp - f0) / h, grad[k], 1e-4) << "param " << k;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GradientCheck, ::testing::Range(0, 8));

TEST(Instantiate, FitsSingleQubitTarget)
{
    support::Rng rng(3);
    synth::Ansatz a = synth::initialAnsatz(1);
    ir::Circuit t(1);
    t.u3(0.7, -1.1, 2.2, 0);
    const synth::InstantiateResult r = synth::instantiate(
        a, sim::circuitUnitary(t), 1e-7, 4, rng, support::Deadline::in(10));
    EXPECT_TRUE(r.success);
    EXPECT_LE(r.hsDistanceValue, 1e-7);
}

TEST(Instantiate, FitsTwoQubitTargetWithTwoBlocks)
{
    support::Rng rng(4);
    synth::Ansatz a = synth::initialAnsatz(2);
    synth::appendEntanglerBlock(&a, 0, 1, false);
    synth::appendEntanglerBlock(&a, 0, 1, false);
    ir::Circuit t(2);
    t.h(0);
    t.cx(0, 1);
    t.rz(0.3, 1);
    t.cx(0, 1);
    const synth::InstantiateResult r = synth::instantiate(
        a, sim::circuitUnitary(t), 1e-6, 6, rng,
        support::Deadline::in(20));
    EXPECT_TRUE(r.success);
}

TEST(Instantiate, ReportsFailureWhenStructureTooWeak)
{
    // A bare 1q layer cannot realize an entangling target.
    support::Rng rng(5);
    synth::Ansatz a = synth::initialAnsatz(2);
    ir::Circuit t(2);
    t.h(0);
    t.cx(0, 1);
    const synth::InstantiateResult r = synth::instantiate(
        a, sim::circuitUnitary(t), 1e-6, 3, rng,
        support::Deadline::in(5));
    EXPECT_FALSE(r.success);
    EXPECT_GT(r.hsDistanceValue, 0.05);
}

TEST(Instantiate, WarmStartHintConverges)
{
    // Fit once, perturb, refit with the hint: should converge quickly.
    support::Rng rng(6);
    synth::Ansatz a = synth::initialAnsatz(2);
    synth::appendEntanglerBlock(&a, 0, 1, false);
    std::vector<double> truth(static_cast<std::size_t>(a.numParams()));
    for (double &v : truth)
        v = rng.uniform(-M_PI, M_PI);
    const linalg::ComplexMatrix target =
        sim::circuitUnitary(a.instantiate(truth));
    const synth::InstantiateResult r = synth::instantiate(
        a, target, 1e-7, 1, rng, support::Deadline::in(10), &truth);
    EXPECT_TRUE(r.success);
}

TEST(Instantiate, HonorsDeadline)
{
    support::Rng rng(7);
    synth::Ansatz a = synth::initialAnsatz(3);
    for (int i = 0; i < 6; ++i)
        synth::appendEntanglerBlock(&a, i % 2, i % 2 + 1, false);
    ir::Circuit t(3);
    t.ccx(0, 1, 2);
    support::Timer timer;
    synth::instantiate(a, sim::circuitUnitary(t), 1e-12, 100, rng,
                       support::Deadline::in(0.2));
    EXPECT_LT(timer.seconds(), 2.0);
}

} // namespace
} // namespace guoq
