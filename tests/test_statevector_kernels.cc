/**
 * @file
 * Equivalence tests for the specialized statevector kernels: every
 * kernel is pinned against the legacy generic matrix apply
 * (StateVector::applyGeneric) — bit-for-bit for single
 * diagonal/permutation gates and for the scalar dense path, <= 1e-12
 * per amplitude where fusion or SIMD reassociate the arithmetic — plus
 * fusion-boundary edge cases, multi-block circuits, thread-count
 * determinism of sampling verification on a kernel-path width, and the
 * width assertions of probability/innerProduct.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "sim/kernels.h"
#include "sim/statevector.h"
#include "support/rng.h"
#include "tests/test_util.h"
#include "verify/checker.h"

namespace guoq {
namespace {

using linalg::Complex;

/** Restore the SIMD policy on scope exit. */
class PolicyGuard
{
  public:
    explicit PolicyGuard(sim::kernels::SimdPolicy p)
        : saved_(sim::kernels::simdPolicy())
    {
        sim::kernels::setSimdPolicy(p);
    }
    ~PolicyGuard() { sim::kernels::setSimdPolicy(saved_); }

  private:
    sim::kernels::SimdPolicy saved_;
};

/** A non-trivial start state: every amplitude distinct and nonzero. */
sim::StateVector
randomState(int num_qubits, std::uint64_t seed)
{
    support::Rng rng(seed);
    sim::StateVector sv(num_qubits);
    ir::Circuit prep = testutil::randomNativeCircuit(
        ir::GateSetKind::Ibmq20, num_qubits, 4 * num_qubits, rng);
    sv.applyGeneric(prep);
    return sv;
}

/** A gate of @p kind on the first qubits of a register, angles from
 *  @p rng. */
ir::Gate
makeGate(ir::GateKind kind, const std::vector<int> &qubits,
         support::Rng &rng)
{
    std::vector<double> params;
    for (int p = 0; p < ir::gateParamCount(kind); ++p)
        params.push_back(rng.uniform(-M_PI, M_PI));
    return ir::Gate(kind, qubits, std::move(params));
}

void
expectBitIdentical(const sim::StateVector &a, const sim::StateVector &b,
                   const std::string &what)
{
    ASSERT_EQ(a.dim(), b.dim());
    for (std::size_t i = 0; i < a.dim(); ++i) {
        // == is zero-sign agnostic: the generic path's additions of
        // exact-zero products may flip a zero's sign, nothing else.
        EXPECT_EQ(a.amplitudes()[i].real(), b.amplitudes()[i].real())
            << what << " amplitude " << i;
        EXPECT_EQ(a.amplitudes()[i].imag(), b.amplitudes()[i].imag())
            << what << " amplitude " << i;
    }
}

void
expectClose(const sim::StateVector &a, const sim::StateVector &b,
            double tol, const std::string &what)
{
    ASSERT_EQ(a.dim(), b.dim());
    for (std::size_t i = 0; i < a.dim(); ++i)
        EXPECT_LT(std::abs(a.amplitudes()[i] - b.amplitudes()[i]), tol)
            << what << " amplitude " << i;
}

const std::vector<ir::GateKind> &
diagonalOrPermutationKinds()
{
    static const std::vector<ir::GateKind> kinds = {
        ir::GateKind::X,  ir::GateKind::Y,    ir::GateKind::Z,
        ir::GateKind::S,  ir::GateKind::Sdg,  ir::GateKind::T,
        ir::GateKind::Tdg, ir::GateKind::Rz,  ir::GateKind::U1,
        ir::GateKind::CX, ir::GateKind::CZ,   ir::GateKind::Swap,
        ir::GateKind::CP, ir::GateKind::CCX,  ir::GateKind::CCZ,
    };
    return kinds;
}

const std::vector<ir::GateKind> &
denseKinds()
{
    static const std::vector<ir::GateKind> kinds = {
        ir::GateKind::H,  ir::GateKind::SX, ir::GateKind::SXdg,
        ir::GateKind::Rx, ir::GateKind::Ry, ir::GateKind::U2,
        ir::GateKind::U3, ir::GateKind::Rxx,
    };
    return kinds;
}

std::vector<int>
qubitsFor(ir::GateKind kind, int num_qubits, support::Rng &rng)
{
    std::vector<int> qs;
    while (static_cast<int>(qs.size()) < ir::gateArity(kind)) {
        const int q = static_cast<int>(
            rng.index(static_cast<std::size_t>(num_qubits)));
        bool dup = false;
        for (int used : qs)
            dup |= used == q;
        if (!dup)
            qs.push_back(q);
    }
    return qs;
}

// --- per-kernel equivalence -------------------------------------------

TEST(StatevectorKernels, DiagonalAndPermutationGatesAreBitExact)
{
    // Any SIMD policy: these kernels are scalar by design.
    support::Rng rng(11);
    for (ir::GateKind kind : diagonalOrPermutationKinds()) {
        for (int trial = 0; trial < 8; ++trial) {
            sim::StateVector fast = randomState(6, 100 + trial);
            sim::StateVector ref = fast;
            const ir::Gate g =
                makeGate(kind, qubitsFor(kind, 6, rng), rng);
            fast.apply(g);
            ref.applyGeneric(g);
            expectBitIdentical(fast, ref, ir::gateName(kind));
        }
    }
}

TEST(StatevectorKernels, DenseGatesAreBitExactUnderScalarPolicy)
{
    PolicyGuard guard(sim::kernels::SimdPolicy::ForceScalar);
    support::Rng rng(12);
    for (ir::GateKind kind : denseKinds()) {
        for (int trial = 0; trial < 8; ++trial) {
            sim::StateVector fast = randomState(6, 200 + trial);
            sim::StateVector ref = fast;
            const ir::Gate g =
                makeGate(kind, qubitsFor(kind, 6, rng), rng);
            fast.apply(g);
            ref.applyGeneric(g);
            expectBitIdentical(fast, ref, ir::gateName(kind));
        }
    }
}

TEST(StatevectorKernels, DenseGatesMatchGenericUnderSimd)
{
    // Auto policy: on AVX2/NEON hardware FMA reassociates rounding,
    // so per-amplitude agreement is pinned at 1e-12, far above the
    // ~1e-15 drift and far below any algorithmic error.
    PolicyGuard guard(sim::kernels::SimdPolicy::Auto);
    support::Rng rng(13);
    for (ir::GateKind kind : denseKinds()) {
        for (int trial = 0; trial < 8; ++trial) {
            sim::StateVector fast = randomState(7, 300 + trial);
            sim::StateVector ref = fast;
            const ir::Gate g =
                makeGate(kind, qubitsFor(kind, 7, rng), rng);
            fast.apply(g);
            ref.applyGeneric(g);
            expectClose(fast, ref, 1e-12, ir::gateName(kind));
        }
    }
}

// --- whole-circuit path: fusion + blocking ----------------------------

TEST(StatevectorKernels, RandomCircuitsMatchGenericAcrossWidths)
{
    // 50 random circuits over every gate set, 1..14 qubits: the fused,
    // cache-blocked circuit path vs gate-by-gate generic application.
    const ir::GateSetKind sets[] = {
        ir::GateSetKind::Ibmq20, ir::GateSetKind::IbmEagle,
        ir::GateSetKind::IonQ, ir::GateSetKind::Nam,
        ir::GateSetKind::CliffordT};
    support::Rng rng(21);
    for (int trial = 0; trial < 50; ++trial) {
        const int n = 1 + trial % 14;
        const ir::GateSetKind set = sets[trial % 5];
        const ir::Circuit c =
            testutil::randomNativeCircuit(set, n, 12 * n, rng);
        sim::StateVector fast(n);
        sim::StateVector ref(n);
        fast.apply(c);
        ref.applyGeneric(c);
        expectClose(fast, ref, 1e-12, "random circuit");
    }
}

TEST(StatevectorKernels, FusionCollapsesSameQubitRuns)
{
    // A long run of 1q gates on one qubit, interrupted by gates on
    // other qubits (which must NOT flush it) and by a 2q gate on the
    // qubit (which must).
    ir::Circuit c(3);
    c.h(0);
    c.t(0);
    c.rz(0.3, 0);
    c.x(1); // different qubit: q0's run keeps fusing
    c.sx(0);
    c.cx(0, 2); // flushes q0 and q2
    c.h(0);
    c.rz(-1.1, 0);
    sim::StateVector fast(3);
    sim::StateVector ref(3);
    fast.apply(c);
    ref.applyGeneric(c);
    expectClose(fast, ref, 1e-12, "fused run");
}

TEST(StatevectorKernels, FusedDiagonalRunsStayDiagonal)
{
    // An all-diagonal run fuses into one diagonal: still exact on the
    // amplitudes a diagonal never mixes (only the touched ones see
    // reassociated phase products).
    ir::Circuit c(2);
    c.rz(0.25, 0);
    c.t(0);
    c.z(0);
    c.u1(0.75, 0);
    sim::StateVector fast = randomState(2, 31);
    sim::StateVector ref = fast;
    fast.apply(c);
    ref.applyGeneric(c);
    expectClose(fast, ref, 1e-12, "fused diagonal");
}

TEST(StatevectorKernels, SingleGateRunsKeepExactKernels)
{
    // Runs of length one re-dispatch to the specialized kernel, so a
    // circuit of isolated diagonal/permutation gates is bit-exact even
    // through the fused + blocked path.
    ir::Circuit c(15); // 2^15 amplitudes = 8 cache blocks
    c.x(0);
    c.z(3);
    c.cx(0, 14);
    c.s(14);
    c.swap(1, 13);
    c.cz(0, 12);
    c.t(7);
    c.ccx(2, 9, 14);
    sim::StateVector fast = randomState(15, 77);
    sim::StateVector ref = fast;
    fast.apply(c);
    ref.applyGeneric(c);
    expectBitIdentical(fast, ref, "isolated exact gates");
}

TEST(StatevectorKernels, MultiBlockCircuitMatchesGeneric)
{
    // 15 qubits: high-qubit gates (block-crossing strides), low-qubit
    // gates (block-local), and diagonals on both ends of the register
    // exercise the chunk-base high-bit resolution.
    support::Rng rng(41);
    for (ir::GateSetKind set :
         {ir::GateSetKind::IbmEagle, ir::GateSetKind::IonQ}) {
        const ir::Circuit c =
            testutil::randomNativeCircuit(set, 15, 120, rng);
        sim::StateVector fast(15);
        sim::StateVector ref(15);
        fast.apply(c);
        ref.applyGeneric(c);
        expectClose(fast, ref, 1e-12, "multi-block");
    }
}

TEST(StatevectorKernels, GateAndCircuitApplyAgree)
{
    support::Rng rng(51);
    const ir::Circuit c = testutil::randomNativeCircuit(
        ir::GateSetKind::CliffordT, 9, 80, rng);
    sim::StateVector whole(9);
    whole.apply(c);
    sim::StateVector stepped(9);
    for (const ir::Gate &g : c.gates())
        stepped.apply(g);
    expectClose(whole, stepped, 1e-12, "gate-by-gate");
}

// --- SIMD policy plumbing ---------------------------------------------

TEST(StatevectorKernels, BackendNameIsSane)
{
    const std::string name = sim::kernels::backendName();
    EXPECT_TRUE(name == "avx2" || name == "neon" || name == "scalar")
        << name;
    PolicyGuard guard(sim::kernels::SimdPolicy::ForceScalar);
    EXPECT_STREQ(sim::kernels::backendName(), "scalar");
}

TEST(StatevectorKernels, ScalarAndSimdAgree)
{
    support::Rng rng(61);
    const ir::Circuit c = testutil::randomNativeCircuit(
        ir::GateSetKind::Ibmq20, 10, 100, rng);
    sim::StateVector simd(10);
    {
        PolicyGuard guard(sim::kernels::SimdPolicy::Auto);
        simd.apply(c);
    }
    sim::StateVector scalar(10);
    {
        PolicyGuard guard(sim::kernels::SimdPolicy::ForceScalar);
        scalar.apply(c);
    }
    expectClose(simd, scalar, 1e-12, "simd vs scalar");
}

// --- sampling verification stays deterministic ------------------------

TEST(StatevectorKernels, SamplingVerifyDeterministicAcrossThreads)
{
    // A width where the kernel path blocks and fuses for real; the
    // fixed-seed estimate must not depend on the worker count.
    support::Rng rng(71);
    const ir::Circuit a = testutil::randomNativeCircuit(
        ir::GateSetKind::IbmEagle, 13, 80, rng);
    ir::Circuit b = a;
    b.rz(0.05, 5);
    const verify::EquivalenceChecker *sampling =
        verify::CheckerRegistry::global().find("sampling");
    ASSERT_NE(sampling, nullptr);
    verify::VerifyRequest req;
    req.shots = 33;
    req.seed = 123;
    req.threads = 1;
    const verify::VerifyReport serial = sampling->run(a, b, req);
    req.threads = 4;
    const verify::VerifyReport parallel = sampling->run(a, b, req);
    EXPECT_EQ(serial.distanceEstimate, parallel.distanceEstimate);
    EXPECT_EQ(serial.bound, parallel.bound);
}

// --- width assertions (formerly UB) -----------------------------------

TEST(StatevectorKernelsDeathTest, ProbabilityIndexOutOfRangePanics)
{
    sim::StateVector sv(3);
    EXPECT_DEATH(sv.probability(8), "out of range");
}

TEST(StatevectorKernelsDeathTest, InnerProductWidthMismatchPanics)
{
    sim::StateVector a(3);
    sim::StateVector b(4);
    EXPECT_DEATH(a.innerProduct(b), "width mismatch");
}

TEST(StatevectorKernelsDeathTest, CircuitWidthMismatchPanics)
{
    sim::StateVector sv(3);
    const ir::Circuit c(4);
    EXPECT_DEATH(sv.apply(c), "3");
}

} // namespace
} // namespace guoq
