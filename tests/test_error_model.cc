/** @file Tests for the fidelity error models. */

#include <gtest/gtest.h>

#include <cmath>

#include "fidelity/error_model.h"

namespace guoq {
namespace {

TEST(ErrorModel, TwoQubitErrorsDominate)
{
    for (ir::GateSetKind set : ir::allGateSets()) {
        const fidelity::ErrorModel &m = fidelity::errorModelFor(set);
        EXPECT_GT(m.twoQubitError, m.oneQubitError)
            << ir::gateSetName(set);
        EXPECT_GT(m.threeQubitError, m.twoQubitError);
    }
}

TEST(ErrorModel, GateErrorDispatchesOnArity)
{
    const fidelity::ErrorModel &m =
        fidelity::errorModelFor(ir::GateSetKind::IbmEagle);
    EXPECT_EQ(m.gateError(ir::Gate(ir::GateKind::X, {0})),
              m.oneQubitError);
    EXPECT_EQ(m.gateError(ir::Gate(ir::GateKind::CX, {0, 1})),
              m.twoQubitError);
    EXPECT_EQ(m.gateError(ir::Gate(ir::GateKind::CCX, {0, 1, 2})),
              m.threeQubitError);
}

TEST(ErrorModel, EmptyCircuitHasUnitFidelity)
{
    const fidelity::ErrorModel &m =
        fidelity::errorModelFor(ir::GateSetKind::Nam);
    EXPECT_EQ(m.circuitFidelity(ir::Circuit(4)), 1.0);
    EXPECT_EQ(m.logFidelityCost(ir::Circuit(4)), 0.0);
}

TEST(ErrorModel, FidelityIsProductOfGateFidelities)
{
    const fidelity::ErrorModel &m =
        fidelity::errorModelFor(ir::GateSetKind::IbmEagle);
    ir::Circuit c(2);
    c.x(0);
    c.cx(0, 1);
    const double expected =
        (1 - m.oneQubitError) * (1 - m.twoQubitError);
    EXPECT_NEAR(m.circuitFidelity(c), expected, 1e-15);
}

TEST(ErrorModel, MoreGatesMeansLessFidelity)
{
    const fidelity::ErrorModel &m =
        fidelity::errorModelFor(ir::GateSetKind::IonQ);
    ir::Circuit a(2), b(2);
    a.rxx(0.5, 0, 1);
    b.rxx(0.5, 0, 1);
    b.rxx(0.5, 0, 1);
    EXPECT_GT(m.circuitFidelity(a), m.circuitFidelity(b));
}

TEST(ErrorModel, LogCostOrdersLikeFidelity)
{
    const fidelity::ErrorModel &m =
        fidelity::errorModelFor(ir::GateSetKind::Ibmq20);
    ir::Circuit a(2), b(2);
    a.cx(0, 1);
    b.cx(0, 1);
    b.cx(0, 1);
    EXPECT_LT(m.logFidelityCost(a), m.logFidelityCost(b));
    EXPECT_NEAR(std::exp(-m.logFidelityCost(b)), m.circuitFidelity(b),
                1e-12);
}

TEST(ErrorModel, SuperconductingAndIonTrapDiffer)
{
    EXPECT_NE(
        fidelity::errorModelFor(ir::GateSetKind::IbmEagle).twoQubitError,
        fidelity::errorModelFor(ir::GateSetKind::IonQ).twoQubitError);
}

TEST(ErrorModel, FaultTolerantRatesAreLogical)
{
    // Clifford+T rates model logical (error-corrected) qubits: orders
    // of magnitude below physical NISQ rates.
    EXPECT_LT(
        fidelity::errorModelFor(ir::GateSetKind::CliffordT).twoQubitError,
        fidelity::errorModelFor(ir::GateSetKind::IbmEagle).twoQubitError /
            100);
}

} // namespace
} // namespace guoq
