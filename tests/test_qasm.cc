/** @file Tests for the OpenQASM 2.0 printer and parser. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "qasm/parser.h"
#include "qasm/printer.h"
#include "sim/unitary_sim.h"
#include "tests/test_util.h"
#include "workloads/standard.h"

namespace guoq {
namespace {

TEST(QasmPrinter, EmitsHeaderAndRegister)
{
    ir::Circuit c(3);
    c.h(0);
    const std::string q = qasm::toQasm(c);
    EXPECT_NE(q.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(q.find("qreg q[3];"), std::string::npos);
    EXPECT_NE(q.find("h q[0];"), std::string::npos);
}

TEST(QasmPrinter, EmitsParameters)
{
    ir::Circuit c(1);
    c.rz(0.5, 0);
    EXPECT_NE(qasm::toQasm(c).find("rz(0.5) q[0];"), std::string::npos);
}

TEST(QasmPrinter, EmitsExtraDefsOnlyWhenNeeded)
{
    ir::Circuit plain(2);
    plain.cx(0, 1);
    EXPECT_EQ(qasm::toQasm(plain).find("gate rxx"), std::string::npos);
    ir::Circuit fancy(2);
    fancy.rxx(0.3, 0, 1);
    EXPECT_NE(qasm::toQasm(fancy).find("gate rxx"), std::string::npos);
}

TEST(QasmParser, ParsesSimpleProgram)
{
    const ir::Circuit c = qasm::parse(R"(
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[2];
        h q[0];
        cx q[0], q[1];
    )");
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c.numQubits(), 2);
    EXPECT_EQ(c.gate(0).kind, ir::GateKind::H);
    EXPECT_EQ(c.gate(1).kind, ir::GateKind::CX);
}

TEST(QasmParser, EvaluatesAngleExpressions)
{
    const ir::Circuit c = qasm::parse(
        "qreg q[1]; rz(pi/2) q[0]; rz(-pi) q[0]; rz(3*pi/4+0.5) q[0]; "
        "rz((1+2)*0.25) q[0];");
    ASSERT_EQ(c.size(), 4u);
    EXPECT_NEAR(c.gate(0).params[0], M_PI / 2, 1e-12);
    EXPECT_NEAR(c.gate(1).params[0], -M_PI, 1e-12);
    EXPECT_NEAR(c.gate(2).params[0], 3 * M_PI / 4 + 0.5, 1e-12);
    EXPECT_NEAR(c.gate(3).params[0], 0.75, 1e-12);
}

TEST(QasmParser, FlattensMultipleRegisters)
{
    const ir::Circuit c = qasm::parse(
        "qreg a[2]; qreg b[2]; cx a[1], b[0];");
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(c.numQubits(), 4);
    EXPECT_EQ(c.gate(0).qubits[0], 1);
    EXPECT_EQ(c.gate(0).qubits[1], 2);
}

TEST(QasmParser, IgnoresBarriersCommentsCreg)
{
    const ir::Circuit c = qasm::parse(R"(
        // a comment
        qreg q[2];
        creg c[2];
        h q[0]; // trailing comment
        barrier q[0], q[1];
        x q[1];
    )");
    EXPECT_EQ(c.size(), 2u);
}

TEST(QasmParser, SkipsGateDefinitions)
{
    const ir::Circuit c = qasm::parse(R"(
        qreg q[1];
        gate mygate(a) x { rz(a) x; rz(a) x; }
        t q[0];
    )");
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(c.gate(0).kind, ir::GateKind::T);
}

TEST(QasmParser, BroadcastsSingleQubitGatesOverRegisters)
{
    const ir::Circuit c = qasm::parse("qreg q[3]; h q; x q[1];");
    ASSERT_EQ(c.size(), 4u);
    EXPECT_EQ(c.gate(0).kind, ir::GateKind::H);
    EXPECT_EQ(c.gate(2).qubits[0], 2);
}

TEST(QasmParser, ResolvesAliasNames)
{
    // U/u are the builtin u3 matrix; p/phase are u1; id is a no-op.
    const ir::Circuit c = qasm::parse(
        "qreg q[2]; U(0.1, 0.2, 0.3) q[0]; p(0.5) q[1]; id q[0]; "
        "CX q[0], q[1];");
    ASSERT_EQ(c.size(), 3u);
    EXPECT_EQ(c.gate(0).kind, ir::GateKind::U3);
    EXPECT_EQ(c.gate(1).kind, ir::GateKind::U1);
    EXPECT_EQ(c.gate(2).kind, ir::GateKind::CX);
}

TEST(QasmParseResult, ReportsLineAndColumn)
{
    const qasm::ParseResult r =
        qasm::parseSource("qreg q[2];\nh q[5];\n");
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.dialect, qasm::Dialect::Qasm2);
    EXPECT_EQ(r.error.line, 2);
    EXPECT_EQ(r.error.col, 5); // the offending index literal
    EXPECT_NE(r.error.message.find("out of range"), std::string::npos);
    // In-memory sources have no file, so str() spells the position.
    EXPECT_NE(r.error.str().find("line 2"), std::string::npos);
}

TEST(QasmParseResult, RecoverableLexicalError)
{
    const qasm::ParseResult r = qasm::parseSource("qreg q[1];\nh @;\n");
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.error.line, 2);
    EXPECT_NE(r.error.message.find("unexpected character"),
              std::string::npos);
}

TEST(QasmParseResult, RejectsMalformedNumbers)
{
    // stod parses the longest valid prefix; the lexer must reject the
    // whole spelling, not silently truncate 1.5.7 to 1.5.
    const qasm::ParseResult r =
        qasm::parseSource("qreg q[1]; rx(1.5.7) q[0];");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.message.find("malformed number"),
              std::string::npos);
    EXPECT_FALSE(qasm::parseSource("qreg q[1]; rx(2e) q[0];").ok);
}

TEST(QasmParseResult, IdentityAliasesValidateParameterCounts)
{
    EXPECT_TRUE(qasm::parseSource("qreg q[1]; id q[0];").ok);
    EXPECT_TRUE(qasm::parseSource("qreg q[1]; u0(1) q[0];").ok);
    EXPECT_FALSE(qasm::parseSource("qreg q[1]; id(0.3) q[0];").ok);
    EXPECT_FALSE(qasm::parseSource("qreg q[1]; u0 q[0];").ok);
}

TEST(QasmParseResult, RejectsDuplicateQubitOperands)
{
    const qasm::ParseResult r =
        qasm::parseSource("qreg q[2]; cx q[0], q[0];");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.message.find("same qubit"), std::string::npos);
}

TEST(QasmParseResult, FileErrorsCarryThePath)
{
    const std::string path =
        testing::TempDir() + "guoq_qasm_bad_input.qasm";
    {
        std::ofstream out(path);
        out << "qreg q[1];\nbadgate q[0];\n";
    }
    const qasm::ParseResult r = qasm::parseSourceFile(path);
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.error.file, path);
    EXPECT_EQ(r.error.line, 2);
    EXPECT_EQ(r.error.col, 1);
    // The rendered diagnostic names the offending file (the batch
    // driver prints exactly this).
    EXPECT_NE(r.error.str().find(path), std::string::npos);
    std::remove(path.c_str());
}

TEST(QasmParseResult, MissingFileReportsPathWithoutPosition)
{
    const qasm::ParseResult r =
        qasm::parseSourceFile("/no/such/dir/missing.qasm");
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.error.line, 0);
    EXPECT_NE(r.error.str().find("missing.qasm"), std::string::npos);
    EXPECT_NE(r.error.str().find("cannot open"), std::string::npos);
}

TEST(QasmParseResult, LegacyParseFileFatalNamesThePath)
{
    const std::string path =
        testing::TempDir() + "guoq_qasm_bad_legacy.qasm";
    {
        std::ofstream out(path);
        out << "qreg q[1];\nbadgate q[0];\n";
    }
    EXPECT_EXIT(qasm::parseFile(path), ::testing::ExitedWithCode(1),
                "bad_legacy\\.qasm:2:1");
    std::remove(path.c_str());
}

TEST(QasmParser, RejectsMeasurement)
{
    EXPECT_EXIT(qasm::parse("qreg q[1]; creg c[1]; measure q[0] -> c[0];"),
                ::testing::ExitedWithCode(1), "measure");
}

TEST(QasmParser, RejectsUnknownGate)
{
    EXPECT_EXIT(qasm::parse("qreg q[1]; zzz q[0];"),
                ::testing::ExitedWithCode(1), "unknown gate");
}

TEST(QasmParser, RejectsOutOfRangeQubit)
{
    EXPECT_EXIT(qasm::parse("qreg q[2]; h q[5];"),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(QasmParser, RejectsArityMismatch)
{
    EXPECT_EXIT(qasm::parse("qreg q[2]; cx q[0];"),
                ::testing::ExitedWithCode(1), "expects");
}

class QasmRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(QasmRoundTrip, PrintParsePreservesSemantics)
{
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 41 + 5);
    const auto sets = ir::allGateSets();
    const ir::GateSetKind set =
        sets[static_cast<std::size_t>(GetParam()) % sets.size()];
    const ir::Circuit c = testutil::randomNativeCircuit(set, 4, 25, rng);
    const ir::Circuit back = qasm::parse(qasm::toQasm(c));
    ASSERT_EQ(back.size(), c.size());
    EXPECT_LT(sim::circuitDistance(c, back), testutil::kExact);
}

INSTANTIATE_TEST_SUITE_P(AllSets, QasmRoundTrip, ::testing::Range(0, 15));

TEST(QasmRoundTripWorkloads, QftSurvives)
{
    const ir::Circuit c = workloads::qft(4);
    const ir::Circuit back = qasm::parse(qasm::toQasm(c));
    EXPECT_LT(sim::circuitDistance(c, back), testutil::kExact);
}

TEST(QasmRoundTripWorkloads, ToffoliChainSurvives)
{
    const ir::Circuit c = workloads::barencoTof(3);
    const ir::Circuit back = qasm::parse(qasm::toQasm(c));
    EXPECT_LT(sim::circuitDistance(c, back), testutil::kExact);
}

} // namespace
} // namespace guoq
