/** @file Tests for the Hilbert–Schmidt distance (paper Def. 3.2/3.3). */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "linalg/unitary.h"
#include "ir/gate_kind.h"
#include "support/rng.h"

namespace guoq {
namespace {

using linalg::Complex;
using linalg::ComplexMatrix;

TEST(HsDistance, ZeroForEqualUnitaries)
{
    const ComplexMatrix i = ComplexMatrix::identity(4);
    EXPECT_NEAR(linalg::hsDistance(i, i), 0, 1e-9);
}

TEST(HsDistance, InsensitiveToGlobalPhase)
{
    const ComplexMatrix u = ir::gateMatrix(ir::GateKind::H, {});
    const ComplexMatrix v = u.scaled(std::polar(1.0, 0.7));
    EXPECT_NEAR(linalg::hsDistance(u, v), 0, 1e-7);
}

TEST(HsDistance, MaximalForOrthogonalUnitaries)
{
    // Tr(Z† X) = 0, so Δ(Z, X) = 1.
    EXPECT_NEAR(linalg::hsDistance(ir::gateMatrix(ir::GateKind::Z, {}),
                                   ir::gateMatrix(ir::GateKind::X, {})),
                1.0, 1e-12);
}

TEST(HsDistance, SymmetricInArguments)
{
    const ComplexMatrix u = ir::gateMatrix(ir::GateKind::T, {});
    const ComplexMatrix v = ir::gateMatrix(ir::GateKind::H, {});
    EXPECT_NEAR(linalg::hsDistance(u, v), linalg::hsDistance(v, u), 1e-14);
}

TEST(HsDistance, SmallRotationGivesSmallDistance)
{
    const ComplexMatrix i = ComplexMatrix::identity(2);
    const ComplexMatrix r = ir::gateMatrix(ir::GateKind::Rz, {1e-4});
    const double d = linalg::hsDistance(i, r);
    EXPECT_GT(d, 0);
    EXPECT_LT(d, 1e-3);
}

TEST(HsDistance, MonotoneInRotationAngle)
{
    const ComplexMatrix i = ComplexMatrix::identity(2);
    double prev = 0;
    for (double theta : {0.1, 0.3, 0.7, 1.5, 3.0}) {
        const double d =
            linalg::hsDistance(i, ir::gateMatrix(ir::GateKind::Rz, {theta}));
        EXPECT_GT(d, prev);
        prev = d;
    }
}

TEST(ApproxEquivalent, RespectsThreshold)
{
    const ComplexMatrix i = ComplexMatrix::identity(2);
    const ComplexMatrix r = ir::gateMatrix(ir::GateKind::Rz, {0.01});
    const double d = linalg::hsDistance(i, r);
    EXPECT_TRUE(linalg::approxEquivalent(i, r, d * 1.01));
    EXPECT_FALSE(linalg::approxEquivalent(i, r, d * 0.99));
}

TEST(EqualUpToGlobalPhase, AcceptsPhaseMultiples)
{
    const ComplexMatrix u = ir::gateMatrix(ir::GateKind::T, {});
    EXPECT_TRUE(linalg::equalUpToGlobalPhase(
        u, u.scaled(std::polar(1.0, -1.3))));
}

TEST(EqualUpToGlobalPhase, RejectsDifferentUnitaries)
{
    EXPECT_FALSE(linalg::equalUpToGlobalPhase(
        ir::gateMatrix(ir::GateKind::T, {}),
        ir::gateMatrix(ir::GateKind::S, {})));
}

TEST(EqualUpToGlobalPhase, RejectsNonUnitScaling)
{
    const ComplexMatrix u = ir::gateMatrix(ir::GateKind::H, {});
    EXPECT_FALSE(linalg::equalUpToGlobalPhase(u, u.scaled(1.1)));
}

TEST(HsCost, ZeroIffDistanceZero)
{
    const ComplexMatrix u = ir::gateMatrix(ir::GateKind::H, {});
    EXPECT_NEAR(linalg::hsCost(u, u), 0, 1e-12);
    EXPECT_GT(linalg::hsCost(u, ir::gateMatrix(ir::GateKind::X, {})), 0);
}

TEST(HsCost, ThresholdGuaranteesDistance)
{
    // If cost ≤ hsCostThresholdForDistance(ε) then Δ ≤ ε: check the
    // algebra on a sweep of rotations.
    const ComplexMatrix i = ComplexMatrix::identity(2);
    for (double theta : {1e-4, 1e-3, 1e-2, 0.1}) {
        const ComplexMatrix r =
            ir::gateMatrix(ir::GateKind::Rz, {theta});
        const double cost = linalg::hsCost(i, r);
        const double dist = linalg::hsDistance(i, r);
        // Invert: eps for which this cost sits exactly at threshold.
        const double eps = std::sqrt(2.0 * cost);
        EXPECT_LE(dist, eps + 1e-12);
    }
}

TEST(HsDistance, TriangleLikeAdditivity)
{
    // Δ(U, W) ≤ Δ(U, V) + Δ(V, W) — the inequality behind Thm. 4.2.
    support::Rng rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        const ComplexMatrix u =
            ir::gateMatrix(ir::GateKind::Rz, {rng.uniform(-3, 3)});
        const ComplexMatrix v =
            ir::gateMatrix(ir::GateKind::Rz, {rng.uniform(-3, 3)});
        const ComplexMatrix w =
            ir::gateMatrix(ir::GateKind::Rx, {rng.uniform(-3, 3)});
        EXPECT_LE(linalg::hsDistance(u, w),
                  linalg::hsDistance(u, v) + linalg::hsDistance(v, w) +
                      1e-12);
    }
}

} // namespace
} // namespace guoq
