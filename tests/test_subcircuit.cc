/** @file Tests for convex subcircuit selection, extraction, splicing. */

#include <gtest/gtest.h>

#include <set>

#include "dag/subcircuit.h"
#include "sim/unitary_sim.h"
#include "tests/test_util.h"

namespace guoq {
namespace {

/** Exhaustive convexity check: no path leaves and re-enters the set. */
bool
isConvex(const ir::Circuit &c, const std::vector<std::size_t> &indices)
{
    const std::set<std::size_t> sel(indices.begin(), indices.end());
    // reach[i] = true when gate i is reachable from the selection via
    // dependency edges through unselected gates.
    std::vector<bool> tainted(c.size(), false);
    std::vector<int> last_writer(static_cast<std::size_t>(c.numQubits()),
                                 -1);
    std::vector<bool> last_was_bad(
        static_cast<std::size_t>(c.numQubits()), false);
    for (std::size_t i = 0; i < c.size(); ++i) {
        bool fed_by_bad = false;
        for (int q : c.gate(i).qubits) {
            if (last_writer[static_cast<std::size_t>(q)] >= 0 &&
                last_was_bad[static_cast<std::size_t>(q)])
                fed_by_bad = true;
        }
        const bool in_sel = sel.count(i) > 0;
        if (in_sel && fed_by_bad)
            return false; // path selection -> outside -> selection
        tainted[i] = !in_sel &&
            (fed_by_bad || [&] {
                 for (int q : c.gate(i).qubits) {
                     const int w =
                         last_writer[static_cast<std::size_t>(q)];
                     if (w >= 0 && sel.count(static_cast<std::size_t>(w)))
                         return true;
                 }
                 return false;
             }());
        for (int q : c.gate(i).qubits) {
            last_writer[static_cast<std::size_t>(q)] =
                static_cast<int>(i);
            last_was_bad[static_cast<std::size_t>(q)] = tainted[i];
        }
    }
    return true;
}

TEST(GrowConvex, SingleGateSeed)
{
    ir::Circuit c(2);
    c.h(0);
    const dag::SubcircuitSelection s = dag::growConvex(c, 0, 3, 10);
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s.indices[0], 0u);
    EXPECT_EQ(s.qubits, std::vector<int>{0});
}

TEST(GrowConvex, RespectsQubitBudget)
{
    ir::Circuit c(4);
    c.cx(0, 1);
    c.cx(1, 2);
    c.cx(2, 3);
    const dag::SubcircuitSelection s = dag::growConvex(c, 0, 2, 10);
    EXPECT_LE(s.qubits.size(), 2u);
    EXPECT_EQ(s.size(), 1u); // cx(1,2) would exceed the budget
}

TEST(GrowConvex, RespectsGateBudget)
{
    ir::Circuit c(1);
    for (int i = 0; i < 10; ++i)
        c.t(0);
    const dag::SubcircuitSelection s = dag::growConvex(c, 2, 1, 4);
    EXPECT_EQ(s.size(), 4u);
}

TEST(GrowConvex, DirtyWireBlocksReentry)
{
    ir::Circuit c(3);
    c.cx(0, 1); // 0: seed
    c.cx(1, 2); // 1: exceeds 2-qubit budget -> dirties wires 1, 2
    c.h(1);     // 2: on dirty wire, must not join
    const dag::SubcircuitSelection s = dag::growConvex(c, 0, 2, 10);
    EXPECT_EQ(s.size(), 1u);
}

class RandomConvexProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomConvexProperty, SelectionsAreConvexAndSplicable)
{
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 3);
    const ir::Circuit c =
        testutil::randomNativeCircuit(ir::GateSetKind::Nam, 5, 40, rng);
    const dag::SubcircuitSelection sel = dag::randomConvex(c, rng, 3, 12);
    ASSERT_FALSE(sel.empty());
    EXPECT_TRUE(isConvex(c, sel.indices));
    EXPECT_LE(sel.qubits.size(), 3u);

    // Splicing the extracted subcircuit back unchanged must preserve
    // the whole circuit's semantics (the round-trip property).
    const ir::Circuit sub = dag::extract(c, sel);
    const ir::Circuit back = dag::splice(c, sel, sub);
    EXPECT_EQ(back.size(), c.size());
    EXPECT_LT(sim::circuitDistance(c, back), testutil::kExact);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomConvexProperty,
                         ::testing::Range(0, 20));

TEST(Extract, RemapsToLocalQubits)
{
    ir::Circuit c(5);
    c.cx(3, 1); // uses qubits {1, 3} -> local {0, 1}
    const dag::SubcircuitSelection sel = dag::growConvex(c, 0, 3, 4);
    const ir::Circuit sub = dag::extract(c, sel);
    EXPECT_EQ(sub.numQubits(), 2);
    EXPECT_EQ(sub.gate(0).qubits[0], 1); // qubit 3 -> rank 1
    EXPECT_EQ(sub.gate(0).qubits[1], 0); // qubit 1 -> rank 0
}

TEST(Splice, ReplacementWithFewerGates)
{
    ir::Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    c.cx(0, 1);
    c.h(1);
    dag::SubcircuitSelection sel;
    sel.indices = {1, 2};
    sel.qubits = {0, 1};
    const ir::Circuit out = dag::splice(c, sel, ir::Circuit(2));
    EXPECT_EQ(out.size(), 2u);
    EXPECT_LT(sim::circuitDistance(c, out), testutil::kExact);
}

TEST(Splice, EquivalentReplacementPreservesSemantics)
{
    support::Rng rng(31);
    const ir::Circuit c = testutil::randomNativeCircuit(
        ir::GateSetKind::IbmEagle, 4, 30, rng);
    const dag::SubcircuitSelection sel = dag::randomConvex(c, rng, 3, 10);
    ir::Circuit sub = dag::extract(c, sel);
    // Append a canceling pair: semantically identical subcircuit.
    if (sub.numQubits() >= 2) {
        sub.cx(0, 1);
        sub.cx(0, 1);
    } else {
        sub.x(0);
        sub.x(0);
    }
    const ir::Circuit out = dag::splice(c, sel, sub);
    EXPECT_LT(sim::circuitDistance(c, out), testutil::kExact);
}

class PartitionProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(PartitionProperty, CoversEveryGateExactlyOnce)
{
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
    const ir::Circuit c = testutil::randomNativeCircuit(
        ir::GateSetKind::Ibmq20, 6, 50, rng);
    const auto blocks = dag::partitionConvex(c, 3, 16);
    std::vector<int> seen(c.size(), 0);
    for (const auto &b : blocks) {
        EXPECT_TRUE(isConvex(c, b.indices));
        EXPECT_LE(b.qubits.size(), 3u);
        for (std::size_t idx : b.indices)
            ++seen[idx];
    }
    for (std::size_t i = 0; i < c.size(); ++i)
        EXPECT_EQ(seen[i], 1) << "gate " << i;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PartitionProperty,
                         ::testing::Range(0, 10));

TEST(Partition, RebuildAtSeedsPreservesSemantics)
{
    // Replacing every block by its own extraction, emitted at the
    // block seed, must reproduce the circuit semantics — the property
    // the partition+resynthesize baseline depends on.
    support::Rng rng(77);
    const ir::Circuit c =
        testutil::randomNativeCircuit(ir::GateSetKind::Nam, 5, 40, rng);
    const auto blocks = dag::partitionConvex(c, 3, 12);

    std::vector<int> block_at_seed(c.size(), -1);
    for (std::size_t b = 0; b < blocks.size(); ++b)
        block_at_seed[blocks[b].indices.front()] = static_cast<int>(b);

    ir::Circuit out(c.numQubits());
    for (std::size_t i = 0; i < c.size(); ++i) {
        const int b = block_at_seed[i];
        if (b < 0)
            continue;
        const auto &sel = blocks[static_cast<std::size_t>(b)];
        const ir::Circuit sub = dag::extract(c, sel);
        for (const ir::Gate &g : sub.gates()) {
            ir::Gate ng = g;
            for (auto &q : ng.qubits)
                q = sel.qubits[static_cast<std::size_t>(q)];
            out.add(std::move(ng));
        }
    }
    ASSERT_EQ(out.size(), c.size());
    EXPECT_LT(sim::circuitDistance(c, out), testutil::kExact);
}

} // namespace
} // namespace guoq
