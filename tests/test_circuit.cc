/** @file Tests for ir::Circuit. */

#include <gtest/gtest.h>

#include "ir/circuit.h"
#include "sim/unitary_sim.h"
#include "tests/test_util.h"

namespace guoq {
namespace {

TEST(Circuit, StartsEmpty)
{
    ir::Circuit c(3);
    EXPECT_EQ(c.numQubits(), 3);
    EXPECT_TRUE(c.empty());
    EXPECT_EQ(c.size(), 0u);
}

TEST(Circuit, BuildersAppendInOrder)
{
    ir::Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    c.rz(0.5, 1);
    ASSERT_EQ(c.size(), 3u);
    EXPECT_EQ(c.gate(0).kind, ir::GateKind::H);
    EXPECT_EQ(c.gate(1).kind, ir::GateKind::CX);
    EXPECT_EQ(c.gate(2).params[0], 0.5);
}

TEST(Circuit, TwoQubitGateCount)
{
    ir::Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.rxx(0.3, 1, 2);
    c.ccx(0, 1, 2);
    EXPECT_EQ(c.twoQubitGateCount(), 2u); // CCX is 3q, not counted
}

TEST(Circuit, TGateCountCountsBothDirections)
{
    ir::Circuit c(1);
    c.t(0);
    c.tdg(0);
    c.s(0);
    EXPECT_EQ(c.tGateCount(), 2u);
}

TEST(Circuit, CountOf)
{
    ir::Circuit c(2);
    c.cx(0, 1);
    c.cx(1, 0);
    c.h(0);
    EXPECT_EQ(c.countOf(ir::GateKind::CX), 2u);
    EXPECT_EQ(c.countOf(ir::GateKind::H), 1u);
    EXPECT_EQ(c.countOf(ir::GateKind::X), 0u);
}

TEST(Circuit, DepthOfParallelGatesIsOne)
{
    ir::Circuit c(4);
    c.h(0);
    c.h(1);
    c.h(2);
    c.h(3);
    EXPECT_EQ(c.depth(), 1u);
}

TEST(Circuit, DepthOfChain)
{
    ir::Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    c.h(1);
    EXPECT_EQ(c.depth(), 3u);
}

TEST(Circuit, DepthSkipsIndependentWires)
{
    ir::Circuit c(3);
    c.h(0);
    c.h(0);
    c.h(2);
    EXPECT_EQ(c.depth(), 2u);
}

TEST(Circuit, InverseReversesAndInverts)
{
    support::Rng rng(3);
    const ir::Circuit c = testutil::randomNativeCircuit(
        ir::GateSetKind::IbmEagle, 3, 20, rng);
    ir::Circuit cat(3);
    cat.append(c);
    cat.append(c.inverse());
    EXPECT_LT(sim::circuitDistance(cat, ir::Circuit(3)), testutil::kExact);
}

TEST(Circuit, AppendRequiresSameWidthContent)
{
    ir::Circuit a(2), b(2);
    a.h(0);
    b.cx(0, 1);
    a.append(b);
    EXPECT_EQ(a.size(), 2u);
    EXPECT_EQ(a.gate(1).kind, ir::GateKind::CX);
}

TEST(Circuit, RemappedMovesQubits)
{
    ir::Circuit c(2);
    c.cx(0, 1);
    const ir::Circuit r = c.remapped({2, 0}, 3);
    EXPECT_EQ(r.numQubits(), 3);
    EXPECT_EQ(r.gate(0).qubits[0], 2);
    EXPECT_EQ(r.gate(0).qubits[1], 0);
}

TEST(Circuit, RemappedPreservesSemanticsUnderPermutation)
{
    // Swapping both qubit labels of a CZ (symmetric) keeps the unitary.
    ir::Circuit c(2);
    c.cz(0, 1);
    const ir::Circuit r = c.remapped({1, 0}, 2);
    EXPECT_LT(sim::circuitDistance(c, r), testutil::kExact);
}

TEST(Circuit, UsedQubitsSortedAndDeduplicated)
{
    ir::Circuit c(6);
    c.cx(4, 1);
    c.h(4);
    const std::vector<int> used = c.usedQubits();
    ASSERT_EQ(used.size(), 2u);
    EXPECT_EQ(used[0], 1);
    EXPECT_EQ(used[1], 4);
}

TEST(Circuit, ToStringListsGates)
{
    ir::Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    const std::string s = c.toString();
    EXPECT_NE(s.find("h"), std::string::npos);
    EXPECT_NE(s.find("cx"), std::string::npos);
}

TEST(Circuit, GateCountEqualsSize)
{
    support::Rng rng(9);
    const ir::Circuit c =
        testutil::randomNativeCircuit(ir::GateSetKind::Nam, 4, 33, rng);
    EXPECT_EQ(c.gateCount(), c.size());
    EXPECT_EQ(c.size(), 33u);
}

TEST(Circuit, MutableGatesAllowsInPlaceEdits)
{
    ir::Circuit c(1);
    c.rz(0.1, 0);
    c.gates()[0].params[0] = 0.9;
    EXPECT_EQ(c.gate(0).params[0], 0.9);
}

} // namespace
} // namespace guoq
