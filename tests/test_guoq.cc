/** @file Tests for the GUOQ search loop (Alg. 1, Thm. 5.3). */

#include <gtest/gtest.h>

#include "core/guoq.h"
#include "sim/unitary_sim.h"
#include "tests/test_util.h"
#include "transpile/to_gate_set.h"
#include "workloads/standard.h"

namespace guoq {
namespace {

core::GuoqConfig
quickConfig(double eps = 0, double seconds = 2.0, long iterations = -1)
{
    core::GuoqConfig cfg;
    cfg.epsilonTotal = eps;
    cfg.timeBudgetSeconds = seconds;
    // Most properties here are anytime-safe (they hold for any prefix
    // of the search), so an iteration cap keeps the test fast and
    // machine-independent; quality-sensitive tests pass -1 and run
    // their full wall-clock budget.
    cfg.maxIterations = iterations;
    cfg.seed = 7;
    return cfg;
}

TEST(Guoq, DrainsFullyRedundantCircuit)
{
    ir::Circuit c(2);
    for (int i = 0; i < 4; ++i)
        c.h(0);
    c.cx(0, 1);
    c.cx(0, 1);
    c.x(1);
    c.x(1);
    const core::GuoqResult r = core::optimize(
        c, ir::GateSetKind::Nam, quickConfig(0, 2.0, 5000));
    EXPECT_EQ(r.best.size(), 0u);
    EXPECT_EQ(r.errorBound, 0.0);
}

TEST(Guoq, ExactModeNeverSpendsError)
{
    support::Rng rng(1);
    const ir::Circuit c = testutil::randomNativeCircuit(
        ir::GateSetKind::IbmEagle, 4, 40, rng);
    const core::GuoqResult r = core::optimize(
        c, ir::GateSetKind::IbmEagle, quickConfig(0, 1.5, 2000));
    EXPECT_EQ(r.errorBound, 0.0);
    EXPECT_EQ(r.stats.resynthAccepted, 0);
    EXPECT_LT(sim::circuitDistance(c, r.best), testutil::kExact);
}

class GuoqTheorem53 : public ::testing::TestWithParam<int>
{
};

TEST_P(GuoqTheorem53, OutputWithinEpsilonOfInput)
{
    // Thm. 5.3: guoq(C, ε_f, T) ≡_{ε_f} C.
    const ir::GateSetKind set =
        ir::allGateSets()[static_cast<std::size_t>(GetParam()) % 5];
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 59 + 11);
    const ir::Circuit c = testutil::randomNativeCircuit(set, 4, 35, rng);
    const double eps = 1e-5;
    core::GuoqConfig cfg = quickConfig(eps, 1.5, 1500);
    cfg.seed = static_cast<std::uint64_t>(GetParam());
    const core::GuoqResult r = core::optimize(c, set, cfg);
    EXPECT_LE(r.errorBound, eps);
    EXPECT_LE(sim::circuitDistance(c, r.best),
              eps + testutil::kExact);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GuoqTheorem53, ::testing::Range(0, 10));

TEST(Guoq, NeverReturnsWorseThanInput)
{
    support::Rng rng(3);
    for (ir::GateSetKind set : ir::allGateSets()) {
        const ir::Circuit c =
            testutil::randomNativeCircuit(set, 4, 30, rng);
        const core::CostFunction cost(core::Objective::TwoQubitCount,
                                      set);
        const core::GuoqResult r =
            core::optimize(c, set, quickConfig(1e-5, 1.0, 1000));
        EXPECT_LE(cost(r.best), cost(c)) << ir::gateSetName(set);
    }
}

TEST(Guoq, SameSeedSameResultInIterationMode)
{
    support::Rng rng(4);
    const ir::Circuit c = testutil::randomNativeCircuit(
        ir::GateSetKind::CliffordT, 3, 30, rng);
    core::GuoqConfig cfg = quickConfig(0, 60.0);
    cfg.maxIterations = 400;
    const core::GuoqResult a =
        core::optimize(c, ir::GateSetKind::CliffordT, cfg);
    const core::GuoqResult b =
        core::optimize(c, ir::GateSetKind::CliffordT, cfg);
    EXPECT_EQ(a.best.toString(), b.best.toString());
    EXPECT_EQ(a.stats.accepted, b.stats.accepted);
}

TEST(Guoq, RespectsIterationCap)
{
    support::Rng rng(5);
    const ir::Circuit c =
        testutil::randomNativeCircuit(ir::GateSetKind::Nam, 3, 20, rng);
    core::GuoqConfig cfg = quickConfig(0, 60.0);
    cfg.maxIterations = 50;
    const core::GuoqResult r =
        core::optimize(c, ir::GateSetKind::Nam, cfg);
    EXPECT_EQ(r.stats.iterations, 50);
}

TEST(Guoq, RespectsTimeBudget)
{
    support::Rng rng(6);
    const ir::Circuit c =
        testutil::randomNativeCircuit(ir::GateSetKind::Nam, 5, 80, rng);
    support::Timer timer;
    core::optimize(c, ir::GateSetKind::Nam, quickConfig(1e-6, 0.5));
    EXPECT_LT(timer.seconds(), 3.0);
}

TEST(Guoq, TraceIsMonotoneNonIncreasing)
{
    const ir::Circuit c =
        transpile::toGateSet(workloads::qft(4), ir::GateSetKind::Nam);
    core::GuoqConfig cfg = quickConfig(1e-6, 1.5, 1500);
    cfg.recordTrace = true;
    const core::GuoqResult r =
        core::optimize(c, ir::GateSetKind::Nam, cfg);
    ASSERT_GE(r.trace.size(), 1u);
    for (std::size_t i = 1; i < r.trace.size(); ++i)
        EXPECT_LE(r.trace[i].cost, r.trace[i - 1].cost + 1e-12);
}

TEST(Guoq, ResynthOnlyModeRequiresBudget)
{
    ir::Circuit c(2);
    c.cx(0, 1);
    core::GuoqConfig cfg = quickConfig(0, 0.2);
    cfg.selection = core::TransformSelection::ResynthOnly;
    EXPECT_EXIT(core::optimize(c, ir::GateSetKind::Nam, cfg),
                ::testing::ExitedWithCode(1), "resynth-only");
}

TEST(Guoq, RewriteOnlyAblationRuns)
{
    const ir::Circuit c = transpile::toGateSet(workloads::qft(4),
                                               ir::GateSetKind::Ibmq20);
    core::GuoqConfig cfg = quickConfig(1e-6, 1.0, 2000);
    cfg.selection = core::TransformSelection::RewriteOnly;
    const core::GuoqResult r =
        core::optimize(c, ir::GateSetKind::Ibmq20, cfg);
    EXPECT_EQ(r.stats.resynthCalls, 0);
    EXPECT_LT(sim::circuitDistance(c, r.best), testutil::kExact);
}

TEST(Guoq, AsyncModeRespectsTheorem53)
{
    const ir::Circuit c =
        transpile::toGateSet(workloads::qft(4), ir::GateSetKind::Nam);
    core::GuoqConfig cfg = quickConfig(1e-5, 2.0);
    cfg.synthWorkers = 1;
    const core::GuoqResult r =
        core::optimize(c, ir::GateSetKind::Nam, cfg);
    EXPECT_LE(r.errorBound, 1e-5);
    EXPECT_LE(sim::circuitDistance(c, r.best), 1e-5 + testutil::kExact);
}

TEST(Guoq, ResynthesisFindsReductionsRulesCannot)
{
    // The paper's headline behaviour (Fig. 7): resynthesis escapes the
    // rewrite-rule local minimum. Two ZZ rotations on the same pair
    // written with opposite CX orientations: no library rule matches,
    // but the combined 2q unitary needs only 2 CXs instead of 4.
    ir::Circuit c(2);
    c.cx(0, 1);
    c.rz(0.3, 1);
    c.cx(0, 1);
    c.cx(1, 0);
    c.rz(0.4, 0);
    c.cx(1, 0);
    core::GuoqConfig cfg = quickConfig(1e-5, 8.0);
    const core::GuoqResult r =
        core::optimize(c, ir::GateSetKind::Nam, cfg);
    EXPECT_LE(r.best.twoQubitGateCount(), 2u);
    EXPECT_LE(sim::circuitDistance(c, r.best), 1e-5 + testutil::kExact);

    // Sanity check the premise: rewrite rules alone stay stuck.
    core::GuoqConfig rewrite_only = quickConfig(0, 1.0);
    rewrite_only.selection = core::TransformSelection::RewriteOnly;
    const core::GuoqResult stuck =
        core::optimize(c, ir::GateSetKind::Nam, rewrite_only);
    EXPECT_EQ(stuck.best.twoQubitGateCount(), 4u);
}

TEST(Guoq, StatsAreInternallyConsistent)
{
    support::Rng rng(8);
    const ir::Circuit c =
        testutil::randomNativeCircuit(ir::GateSetKind::Nam, 4, 30, rng);
    core::GuoqConfig cfg = quickConfig(1e-6, 1.0, 1000);
    const core::GuoqResult r =
        core::optimize(c, ir::GateSetKind::Nam, cfg);
    EXPECT_GT(r.stats.iterations, 0);
    EXPECT_GE(r.stats.seconds, 0.0);
    EXPECT_LE(r.stats.accepted + r.stats.uphillAccepted +
                  r.stats.rejected + r.stats.noops +
                  r.stats.budgetSkips,
              r.stats.iterations + 1);
}

} // namespace
} // namespace guoq
