/** @file Tests for the framework instantiation and sampler (§4, §5.3). */

#include <gtest/gtest.h>

#include "core/framework.h"
#include "rewrite/rule.h"

namespace guoq {
namespace {

TEST(Framework, CombinedContainsRulesFusionAndResynth)
{
    const core::TransformationSet t(
        ir::GateSetKind::Nam, core::TransformSelection::Combined, 1e-6,
        0.015, 1.0, 3);
    EXPECT_TRUE(t.hasFast());
    EXPECT_TRUE(t.hasResynth());
    // rules + fusion + 1 resynthesis
    EXPECT_EQ(t.all().size(),
              rewrite::rulesFor(ir::GateSetKind::Nam).size() + 2);
}

TEST(Framework, CliffordTHasNoFusion)
{
    const core::TransformationSet t(
        ir::GateSetKind::CliffordT, core::TransformSelection::Combined,
        1e-6, 0.015, 1.0, 3);
    for (const core::Transformation &tau : t.all())
        EXPECT_NE(tau.kind(), core::TransformKind::Fusion);
}

TEST(Framework, RewriteOnlyExcludesResynthesis)
{
    const core::TransformationSet t(
        ir::GateSetKind::Nam, core::TransformSelection::RewriteOnly,
        1e-6, 0.015, 1.0, 3);
    EXPECT_TRUE(t.hasFast());
    EXPECT_FALSE(t.hasResynth());
}

TEST(Framework, ResynthOnlyExcludesRules)
{
    const core::TransformationSet t(
        ir::GateSetKind::Nam, core::TransformSelection::ResynthOnly,
        1e-6, 0.015, 1.0, 3);
    EXPECT_FALSE(t.hasFast());
    EXPECT_TRUE(t.hasResynth());
    EXPECT_EQ(t.all().size(), 1u);
}

TEST(Framework, SamplerHitsResynthAtConfiguredRate)
{
    const core::TransformationSet t(
        ir::GateSetKind::Nam, core::TransformSelection::Combined, 1e-6,
        0.015, 1.0, 3);
    support::Rng rng(123);
    int resynth_picks = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const core::Transformation &tau = t.all()[t.sample(rng)];
        if (tau.kind() == core::TransformKind::Resynthesis)
            ++resynth_picks;
    }
    const double rate = static_cast<double>(resynth_picks) / n;
    EXPECT_NEAR(rate, 0.015, 0.003); // paper §5.3: 1.5%
}

TEST(Framework, SamplerUniformOverFastTransforms)
{
    const core::TransformationSet t(
        ir::GateSetKind::CliffordT, core::TransformSelection::RewriteOnly,
        0, 0.015, 1.0, 3);
    support::Rng rng(321);
    std::vector<int> hits(t.all().size(), 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++hits[t.sample(rng)];
    const double expected =
        static_cast<double>(n) / static_cast<double>(t.all().size());
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_NEAR(hits[i], expected, expected * 0.25)
            << t.all()[i].name();
}

TEST(Framework, ResynthOnlySamplerAlwaysPicksResynth)
{
    const core::TransformationSet t(
        ir::GateSetKind::Nam, core::TransformSelection::ResynthOnly,
        1e-6, 0.015, 1.0, 3);
    support::Rng rng(9);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(t.all()[t.sample(rng)].kind(),
                  core::TransformKind::Resynthesis);
}

} // namespace
} // namespace guoq
