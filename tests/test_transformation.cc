/** @file Tests for the τ_ε transformation abstraction (Def. 4.1). */

#include <gtest/gtest.h>

#include "core/transformation.h"
#include "rewrite/rule.h"
#include "sim/unitary_sim.h"
#include "tests/test_util.h"

namespace guoq {
namespace {

const rewrite::RewriteRule *
findRule(ir::GateSetKind set, const std::string &name)
{
    for (const rewrite::RewriteRule &r : rewrite::rulesFor(set))
        if (r.name() == name)
            return &r;
    return nullptr;
}

TEST(Transformation, RuleWrapperAppliesAndIsExact)
{
    const rewrite::RewriteRule *rule =
        findRule(ir::GateSetKind::Nam, "h_h_cancel");
    ASSERT_NE(rule, nullptr);
    const core::Transformation tau = core::Transformation::fromRule(rule);
    EXPECT_EQ(tau.epsilon(), 0.0);
    EXPECT_EQ(tau.kind(), core::TransformKind::RewriteRule);

    ir::Circuit c(1);
    c.h(0);
    c.h(0);
    support::Rng rng(1);
    const auto out = tau.apply(c, rng);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->circuit.size(), 0u);
    EXPECT_EQ(out->epsilonSpent, 0.0);
}

TEST(Transformation, RuleWrapperNoopWhenNoMatch)
{
    const rewrite::RewriteRule *rule =
        findRule(ir::GateSetKind::Nam, "h_h_cancel");
    ir::Circuit c(1);
    c.x(0);
    support::Rng rng(2);
    EXPECT_FALSE(core::Transformation::fromRule(rule).apply(c, rng)
                     .has_value());
}

TEST(Transformation, FusionShrinksRuns)
{
    const core::Transformation tau =
        core::Transformation::fusion(ir::GateSetKind::IbmEagle);
    EXPECT_EQ(tau.kind(), core::TransformKind::Fusion);
    ir::Circuit c(1);
    c.rz(0.2, 0);
    c.rz(0.3, 0);
    c.rz(0.4, 0);
    support::Rng rng(3);
    const auto out = tau.apply(c, rng);
    ASSERT_TRUE(out.has_value());
    EXPECT_LT(out->circuit.size(), c.size());
    EXPECT_LT(sim::circuitDistance(c, out->circuit), testutil::kExact);
}

TEST(Transformation, FusionNoopWhenNothingToFuse)
{
    const core::Transformation tau =
        core::Transformation::fusion(ir::GateSetKind::IbmEagle);
    ir::Circuit c(2);
    c.rz(0.2, 0);
    c.cx(0, 1);
    c.rz(0.3, 0);
    support::Rng rng(4);
    EXPECT_FALSE(tau.apply(c, rng).has_value());
}

TEST(Transformation, ResynthesisPreservesSemanticsWithinEpsilon)
{
    const double eps = 1e-6;
    const core::Transformation tau = core::Transformation::resynthesis(
        ir::GateSetKind::Nam, eps, 10.0, 3);
    EXPECT_EQ(tau.kind(), core::TransformKind::Resynthesis);
    EXPECT_EQ(tau.epsilon(), eps);

    ir::Circuit c(2);
    c.cx(0, 1);
    c.cx(0, 1);
    c.h(0);
    c.h(0);
    support::Rng rng(5);
    // Resynthesis picks a random subcircuit: try until it fires.
    for (int attempt = 0; attempt < 20; ++attempt) {
        const auto out = tau.apply(c, rng);
        if (!out)
            continue;
        EXPECT_LE(out->epsilonSpent, eps);
        EXPECT_LT(sim::circuitDistance(c, out->circuit), 2 * eps);
        return;
    }
    FAIL() << "resynthesis never fired on a fully redundant circuit";
}

TEST(Transformation, ResynthesisNoopOnEmptyCircuit)
{
    const core::Transformation tau = core::Transformation::resynthesis(
        ir::GateSetKind::Nam, 1e-6, 1.0, 3);
    support::Rng rng(6);
    EXPECT_FALSE(tau.apply(ir::Circuit(2), rng).has_value());
}

TEST(Transformation, NamesAreDescriptive)
{
    const rewrite::RewriteRule *rule =
        findRule(ir::GateSetKind::Nam, "rz_merge");
    EXPECT_EQ(core::Transformation::fromRule(rule).name(),
              "rule:rz_merge");
    EXPECT_EQ(core::Transformation::fusion(ir::GateSetKind::Nam).name(),
              "fusion:1q");
    EXPECT_EQ(core::Transformation::resynthesis(ir::GateSetKind::Nam,
                                                1e-6, 1.0, 3)
                  .name(),
              "resynth:nam");
}

} // namespace
} // namespace guoq
