/** @file Tests for the transpiler: all decompositions must be exact. */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/unitary_sim.h"
#include "tests/test_util.h"
#include "transpile/decompose.h"
#include "transpile/to_gate_set.h"
#include "workloads/standard.h"

namespace guoq {
namespace {

using testutil::kExact;

TEST(Decompose, CcxNetworkExact)
{
    ir::Circuit a(3);
    a.ccx(0, 1, 2);
    ir::Circuit b(3);
    for (const ir::Gate &g : transpile::ccxDecomposition(0, 1, 2))
        b.add(g);
    EXPECT_EQ(b.countOf(ir::GateKind::CX), 6u);
    EXPECT_EQ(b.tGateCount(), 7u);
    EXPECT_LT(sim::circuitDistance(a, b), kExact);
}

TEST(Decompose, CxViaRxxExact)
{
    ir::Circuit a(2);
    a.cx(0, 1);
    ir::Circuit b(2);
    for (const ir::Gate &g : transpile::cxViaRxx(0, 1))
        b.add(g);
    EXPECT_EQ(b.countOf(ir::GateKind::Rxx), 1u);
    EXPECT_LT(sim::circuitDistance(a, b), kExact);
}

TEST(Decompose, RxxViaCxExactOverAngleSweep)
{
    for (double theta : {-2.5, -0.3, 0.0, 0.7, 1.9, 3.1}) {
        ir::Circuit a(2);
        a.rxx(theta, 0, 1);
        ir::Circuit b(2);
        for (const ir::Gate &g : transpile::rxxViaCx(theta, 0, 1))
            b.add(g);
        EXPECT_LT(sim::circuitDistance(a, b), kExact) << theta;
    }
}

class ExpandGate : public ::testing::TestWithParam<int>
{
};

TEST_P(ExpandGate, ExpandToCxBasisExactForEveryMultiQubitKind)
{
    ir::Circuit a(3);
    switch (GetParam()) {
      case 0: a.cz(0, 1); break;
      case 1: a.swap(1, 2); break;
      case 2: a.cp(1.234, 0, 2); break;
      case 3: a.rxx(0.8, 0, 1); break;
      case 4: a.ccx(0, 1, 2); break;
      case 5: a.ccz(0, 1, 2); break;
      default: FAIL();
    }
    const ir::Circuit b = transpile::expandToCxBasis(a);
    for (const ir::Gate &g : b.gates())
        if (g.arity() >= 2) {
            EXPECT_EQ(g.kind, ir::GateKind::CX);
        }
    EXPECT_LT(sim::circuitDistance(a, b), kExact);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ExpandGate, ::testing::Range(0, 6));

class OneQubitToNativeSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(OneQubitToNativeSweep, ExactAndNative)
{
    const auto [set_index, seed] = GetParam();
    const ir::GateSetKind set =
        ir::allGateSets()[static_cast<std::size_t>(set_index)];
    if (set == ir::GateSetKind::CliffordT)
        GTEST_SKIP() << "finite set uses oneQubitCliffordT";
    support::Rng rng(static_cast<std::uint64_t>(seed) * 17 + 3);
    ir::Circuit a(1);
    a.u3(rng.uniform(-M_PI, M_PI), rng.uniform(-M_PI, M_PI),
         rng.uniform(-M_PI, M_PI), 0);
    ir::Circuit b(1);
    for (const ir::Gate &g : transpile::oneQubitToNative(
             sim::circuitUnitary(a), 0, set))
        b.add(g);
    EXPECT_TRUE(transpile::allNative(b, set));
    EXPECT_LT(sim::circuitDistance(a, b), kExact);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OneQubitToNativeSweep,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 8)));

TEST(OneQubitToNative, RecognizesNativeFixedGates)
{
    // H into nam must come back as the single H gate, not a chain.
    const auto h = transpile::oneQubitToNative(
        ir::gateMatrix(ir::GateKind::H, {}), 0, ir::GateSetKind::Nam);
    ASSERT_EQ(h.size(), 1u);
    EXPECT_EQ(h[0].kind, ir::GateKind::H);
    const auto sx = transpile::oneQubitToNative(
        ir::gateMatrix(ir::GateKind::SX, {}), 0,
        ir::GateSetKind::IbmEagle);
    ASSERT_EQ(sx.size(), 1u);
    EXPECT_EQ(sx[0].kind, ir::GateKind::SX);
}

TEST(OneQubitToNative, DiagonalBecomesSingleRotation)
{
    const auto gates = transpile::oneQubitToNative(
        ir::gateMatrix(ir::GateKind::Rz, {0.37}), 0,
        ir::GateSetKind::IbmEagle);
    ASSERT_EQ(gates.size(), 1u);
    EXPECT_EQ(gates[0].kind, ir::GateKind::Rz);
    EXPECT_NEAR(gates[0].params[0], 0.37, 1e-9);
}

TEST(PiOver4, RecognizesMultiples)
{
    EXPECT_TRUE(transpile::isPiOver4Multiple(0));
    EXPECT_TRUE(transpile::isPiOver4Multiple(M_PI / 4));
    EXPECT_TRUE(transpile::isPiOver4Multiple(-3 * M_PI / 4));
    EXPECT_TRUE(transpile::isPiOver4Multiple(2 * M_PI));
    EXPECT_FALSE(transpile::isPiOver4Multiple(0.5));
    EXPECT_FALSE(transpile::isPiOver4Multiple(M_PI / 8));
}

TEST(RzToCliffordT, AllEightResiduesExact)
{
    for (int k = -8; k <= 8; ++k) {
        const double angle = k * M_PI / 4;
        ir::Circuit a(1);
        a.rz(angle, 0);
        ir::Circuit b(1);
        for (const ir::Gate &g : transpile::rzToCliffordT(angle, 0))
            b.add(g);
        EXPECT_LE(b.size(), 2u) << "k=" << k;
        EXPECT_LT(sim::circuitDistance(a, b), kExact) << "k=" << k;
    }
}

TEST(RzToCliffordT, RejectsNonMultiples)
{
    EXPECT_EXIT(transpile::rzToCliffordT(0.5, 0),
                ::testing::ExitedWithCode(1), "pi/4");
}

TEST(OneQubitCliffordT, ExactExpansions)
{
    using ir::Gate;
    using ir::GateKind;
    const std::vector<Gate> cases = {
        Gate(GateKind::Z, {0}),  Gate(GateKind::Y, {0}),
        Gate(GateKind::SX, {0}), Gate(GateKind::SXdg, {0}),
        Gate(GateKind::Rz, {0}, {3 * M_PI / 4}),
        Gate(GateKind::Rx, {0}, {-M_PI / 2}),
        Gate(GateKind::Ry, {0}, {M_PI / 4}),
        Gate(GateKind::U1, {0}, {M_PI}),
    };
    for (const Gate &g : cases) {
        ir::Circuit a(1);
        a.add(g);
        ir::Circuit b(1);
        for (const Gate &out : transpile::oneQubitCliffordT(g))
            b.add(out);
        EXPECT_TRUE(transpile::allNative(b, ir::GateSetKind::CliffordT));
        EXPECT_LT(sim::circuitDistance(a, b), kExact)
            << ir::gateName(g.kind);
    }
}

class ToGateSetWorkloads
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  public:
    static ir::Circuit
    workload(int which)
    {
        switch (which) {
          case 0: return workloads::qft(4);
          case 1: return workloads::barencoTof(3);
          case 2: return workloads::ghz(5);
          default: return workloads::cuccaroAdder(2);
        }
    }
};

TEST_P(ToGateSetWorkloads, NativeAndExact)
{
    const auto [set_index, which] = GetParam();
    const ir::GateSetKind set =
        ir::allGateSets()[static_cast<std::size_t>(set_index)];
    const ir::Circuit c = workload(which);
    if (set == ir::GateSetKind::CliffordT && which == 0)
        GTEST_SKIP() << "qft_4 is not exactly Clifford+T representable";
    const ir::Circuit out = transpile::toGateSet(c, set);
    EXPECT_TRUE(transpile::allNative(out, set));
    if (c.numQubits() <= 8) {
        EXPECT_LT(sim::circuitDistance(c, out), kExact);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ToGateSetWorkloads,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 4)));

TEST(Fusion, MergesOneQubitRuns)
{
    ir::Circuit c(1);
    c.rz(0.3, 0);
    c.rz(0.4, 0);
    c.rz(0.5, 0);
    const ir::Circuit out =
        transpile::fuseOneQubitRuns(c, ir::GateSetKind::IbmEagle);
    EXPECT_LT(out.size(), c.size());
    EXPECT_LT(sim::circuitDistance(c, out), kExact);
}

TEST(Fusion, StopsAtTwoQubitGates)
{
    ir::Circuit c(2);
    c.rz(0.3, 0);
    c.cx(0, 1);
    c.rz(0.4, 0);
    const ir::Circuit out =
        transpile::fuseOneQubitRuns(c, ir::GateSetKind::IbmEagle);
    EXPECT_EQ(out.size(), 3u); // nothing fusable across the CX
    EXPECT_LT(sim::circuitDistance(c, out), kExact);
}

TEST(Fusion, NeverGrowsTheCircuit)
{
    support::Rng rng(55);
    for (ir::GateSetKind set :
         {ir::GateSetKind::Ibmq20, ir::GateSetKind::IbmEagle,
          ir::GateSetKind::IonQ, ir::GateSetKind::Nam}) {
        const ir::Circuit c =
            testutil::randomNativeCircuit(set, 4, 40, rng);
        const ir::Circuit out = transpile::fuseOneQubitRuns(c, set);
        EXPECT_LE(out.size(), c.size()) << ir::gateSetName(set);
        EXPECT_LT(sim::circuitDistance(c, out), kExact)
            << ir::gateSetName(set);
    }
}

TEST(Fusion, CliffordTPassThrough)
{
    ir::Circuit c(1);
    c.t(0);
    c.t(0);
    const ir::Circuit out =
        transpile::fuseOneQubitRuns(c, ir::GateSetKind::CliffordT);
    EXPECT_EQ(out.size(), 2u);
}

} // namespace
} // namespace guoq
