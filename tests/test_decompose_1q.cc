/** @file Tests for ZYZ/ZXZ Euler decompositions. */

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/decompose_1q.h"
#include "linalg/unitary.h"
#include "ir/gate.h"
#include "ir/gate_kind.h"
#include "support/rng.h"

namespace guoq {
namespace {

using linalg::ComplexMatrix;

ComplexMatrix
randomUnitary1q(support::Rng &rng)
{
    return ir::gateMatrix(ir::GateKind::U3,
                          {rng.uniform(-M_PI, M_PI),
                           rng.uniform(-M_PI, M_PI),
                           rng.uniform(-M_PI, M_PI)});
}

TEST(Decompose1q, RotationMatricesMatchGateMatrices)
{
    for (double theta : {-2.1, -0.5, 0.0, 0.4, 1.7, 3.0}) {
        EXPECT_LT(linalg::rxMatrix(theta).maxAbsDiff(
                      ir::gateMatrix(ir::GateKind::Rx, {theta})),
                  1e-12);
        EXPECT_LT(linalg::ryMatrix(theta).maxAbsDiff(
                      ir::gateMatrix(ir::GateKind::Ry, {theta})),
                  1e-12);
        EXPECT_LT(linalg::rzMatrix(theta).maxAbsDiff(
                      ir::gateMatrix(ir::GateKind::Rz, {theta})),
                  1e-12);
    }
}

class ZyzRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(ZyzRoundTrip, ReconstructsOriginalExactly)
{
    support::Rng rng(static_cast<std::uint64_t>(GetParam()));
    const ComplexMatrix u = randomUnitary1q(rng);
    const linalg::EulerZyz e = linalg::decomposeZyz(u);
    EXPECT_LT(linalg::fromZyz(e).maxAbsDiff(u), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomUnitaries, ZyzRoundTrip,
                         ::testing::Range(0, 25));

class ZxzRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(ZxzRoundTrip, ReconstructsUpToPhase)
{
    support::Rng rng(static_cast<std::uint64_t>(1000 + GetParam()));
    const ComplexMatrix u = randomUnitary1q(rng);
    const linalg::EulerZxz e = linalg::decomposeZxz(u);
    const ComplexMatrix rebuilt =
        linalg::rzMatrix(e.beta) * linalg::rxMatrix(e.gamma) *
        linalg::rzMatrix(e.delta);
    EXPECT_TRUE(linalg::equalUpToGlobalPhase(u, rebuilt, 1e-8));
}

INSTANTIATE_TEST_SUITE_P(RandomUnitaries, ZxzRoundTrip,
                         ::testing::Range(0, 25));

TEST(Decompose1q, HadamardZyz)
{
    const ComplexMatrix h = ir::gateMatrix(ir::GateKind::H, {});
    const linalg::EulerZyz e = linalg::decomposeZyz(h);
    // H ∝ Rz(β) Ry(γ) Rz(δ) with γ = π/2 (up to angle aliasing).
    EXPECT_NEAR(std::abs(ir::normalizeAngle(e.gamma)), M_PI / 2, 1e-9);
    EXPECT_LT(linalg::fromZyz(e).maxAbsDiff(h), 1e-9);
}

TEST(Decompose1q, DiagonalHasZeroGamma)
{
    const ComplexMatrix t = ir::gateMatrix(ir::GateKind::T, {});
    const linalg::EulerZyz e = linalg::decomposeZyz(t);
    EXPECT_NEAR(ir::normalizeAngle(e.gamma), 0, 1e-9);
    EXPECT_NEAR(ir::normalizeAngle(e.beta + e.delta - M_PI / 4), 0, 1e-9);
}

TEST(Decompose1q, IdentityDecomposesToZeros)
{
    const linalg::EulerZyz e =
        linalg::decomposeZyz(ComplexMatrix::identity(2));
    EXPECT_NEAR(ir::normalizeAngle(e.gamma), 0, 1e-9);
    EXPECT_NEAR(ir::normalizeAngle(e.beta + e.delta), 0, 1e-9);
}

TEST(Decompose1q, AntiDiagonalHandled)
{
    // X is the fully anti-diagonal case (γ = π).
    const ComplexMatrix x = ir::gateMatrix(ir::GateKind::X, {});
    const linalg::EulerZyz e = linalg::decomposeZyz(x);
    EXPECT_NEAR(std::abs(ir::normalizeAngle(e.gamma)), M_PI, 1e-9);
    EXPECT_LT(linalg::fromZyz(e).maxAbsDiff(x), 1e-9);
}

} // namespace
} // namespace guoq
