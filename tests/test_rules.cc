/**
 * @file
 * Validation of every rewrite rule in every library: each rule's
 * pattern and replacement must be unitary-equivalent modulo global
 * phase on randomly drawn angles (the key soundness invariant — a bad
 * rule silently corrupts every optimizer built on it).
 */

#include <gtest/gtest.h>

#include "rewrite/rule.h"
#include "sim/unitary_sim.h"
#include "tests/test_util.h"

namespace guoq {
namespace {

struct RuleCase
{
    ir::GateSetKind set;
    const rewrite::RewriteRule *rule;
};

std::vector<RuleCase>
allRules()
{
    std::vector<RuleCase> cases;
    for (ir::GateSetKind set : ir::allGateSets())
        for (const rewrite::RewriteRule &r : rewrite::rulesFor(set))
            cases.push_back({set, &r});
    return cases;
}

class EveryRule : public ::testing::TestWithParam<RuleCase>
{
};

TEST_P(EveryRule, PatternEquivalentToReplacement)
{
    const RuleCase &rc = GetParam();
    support::Rng rng(0xBADC0DE);
    for (int trial = 0; trial < 8; ++trial) {
        ir::Circuit pattern, replacement;
        ASSERT_TRUE(rc.rule->concretize(rng, &pattern, &replacement))
            << rc.rule->name();
        EXPECT_LT(sim::circuitDistance(pattern, replacement),
                  testutil::kExact)
            << rc.rule->name() << "\npattern:\n"
            << pattern.toString() << "replacement:\n"
            << replacement.toString();
    }
}

TEST_P(EveryRule, NeverIncreasesSize)
{
    // Paper §6: guoq "does not consider any size-increasing rules".
    EXPECT_GE(GetParam().rule->sizeDelta(), 0) << GetParam().rule->name();
}

TEST_P(EveryRule, PatternFitsThreeGateCap)
{
    // QUESO-style small patterns (§6 discusses the 3-gate cap for rule
    // synthesis; our hand-written libraries allow at most 5 for the
    // CX-flip idiom).
    EXPECT_LE(GetParam().rule->pattern().size(), 5u)
        << GetParam().rule->name();
}

TEST_P(EveryRule, ReplacementUsesOnlyNativeGates)
{
    const RuleCase &rc = GetParam();
    for (const rewrite::PatternGate &g : rc.rule->replacement())
        EXPECT_TRUE(ir::isNative(rc.set, g.kind))
            << rc.rule->name() << " emits " << ir::gateName(g.kind);
}

TEST_P(EveryRule, PatternUsesOnlyNativeGates)
{
    const RuleCase &rc = GetParam();
    for (const rewrite::PatternGate &g : rc.rule->pattern())
        EXPECT_TRUE(ir::isNative(rc.set, g.kind))
            << rc.rule->name() << " matches " << ir::gateName(g.kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllLibraries, EveryRule, ::testing::ValuesIn(allRules()),
    [](const ::testing::TestParamInfo<RuleCase> &info) {
        std::string name = ir::gateSetName(info.param.set) + "_" +
                           info.param.rule->name();
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(RuleLibraries, EveryGateSetHasRules)
{
    for (ir::GateSetKind set : ir::allGateSets())
        EXPECT_GE(rewrite::rulesFor(set).size(), 10u)
            << ir::gateSetName(set);
}

TEST(RuleLibraries, NamesAreUniquePerLibrary)
{
    for (ir::GateSetKind set : ir::allGateSets()) {
        std::set<std::string> names;
        for (const rewrite::RewriteRule &r : rewrite::rulesFor(set))
            EXPECT_TRUE(names.insert(r.name()).second)
                << "duplicate rule name " << r.name() << " in "
                << ir::gateSetName(set);
    }
}

TEST(AngleExpr, EvaluatesAffineForms)
{
    const rewrite::AngleExpr e{0.5, {{0, 1.0}, {1, -2.0}}};
    EXPECT_NEAR(e.eval({1.0, 0.25}), 1.0, 1e-12);
    EXPECT_TRUE(rewrite::AngleExpr::var(3).isBareVar());
    EXPECT_FALSE(rewrite::AngleExpr::lit(1.0).isBareVar());
    EXPECT_FALSE(rewrite::AngleExpr::neg(0).isBareVar());
    EXPECT_EQ(rewrite::AngleExpr::sum(2, 5).maxVar(), 5);
    EXPECT_EQ(rewrite::AngleExpr::lit(2.0).maxVar(), -1);
}

TEST(RewriteRule, InstantiateReplacementBindsQubitsAndAngles)
{
    using namespace rewrite;
    using ir::GateKind;
    // Rz(a) Rz(b) -> Rz(a+b), instantiated at qubit 7 with a=1, b=2.
    RewriteRule rule(
        "merge",
        {PatternGate{GateKind::Rz, {0}, {AngleExpr::var(0)}},
         PatternGate{GateKind::Rz, {0}, {AngleExpr::var(1)}}},
        {PatternGate{GateKind::Rz, {0}, {AngleExpr::sum(0, 1)}}});
    const std::vector<ir::Gate> out =
        rule.instantiateReplacement({7}, {1.0, 2.0});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].qubits[0], 7);
    EXPECT_NEAR(out[0].params[0], 3.0, 1e-12);
}

} // namespace
} // namespace guoq
