/** @file Tests for the finite-set (Clifford+T) annealing synthesizer. */

#include <gtest/gtest.h>

#include "sim/unitary_sim.h"
#include "synth/finite_synth.h"
#include "tests/test_util.h"

namespace guoq {
namespace {

TEST(FiniteSynth, IdentityTargetSucceedsImmediately)
{
    support::Rng rng(1);
    synth::FiniteSynthOptions o;
    o.epsilon = 1e-6;
    o.deadline = support::Deadline::in(5);
    const synth::SynthResult r = synth::finiteSynth(
        linalg::ComplexMatrix::identity(4), 2, o, rng);
    EXPECT_TRUE(r.success);
    EXPECT_EQ(r.circuit.size(), 0u);
}

TEST(FiniteSynth, SeededShrinkRemovesRedundantGates)
{
    ir::Circuit sub(2);
    sub.t(0);
    sub.cx(0, 1);
    sub.cx(0, 1); // cancels
    sub.h(1);
    sub.h(1); // cancels
    support::Rng rng(2);
    synth::FiniteSynthOptions o;
    o.epsilon = 1e-6;
    o.deadline = support::Deadline::in(10);
    o.seed = &sub;
    const synth::SynthResult r = synth::finiteSynth(
        sim::circuitUnitary(sub), 2, o, rng);
    ASSERT_TRUE(r.success);
    EXPECT_LE(r.circuit.size(), 1u);
    ir::Circuit check(2);
    check.append(r.circuit);
    EXPECT_LT(sim::circuitDistance(sub, check), testutil::kExact);
}

TEST(FiniteSynth, SynthesizesSimpleCliffordFromScratch)
{
    // Target = S on one qubit: findable without a seed.
    support::Rng rng(3);
    ir::Circuit t(1);
    t.s(0);
    synth::FiniteSynthOptions o;
    o.epsilon = 1e-6;
    o.deadline = support::Deadline::in(20);
    o.rounds = 8;
    const synth::SynthResult r = synth::finiteSynth(
        sim::circuitUnitary(t), 1, o, rng);
    ASSERT_TRUE(r.success);
    ir::Circuit check(1);
    check.append(r.circuit);
    EXPECT_LT(sim::circuitDistance(t, check), testutil::kExact);
}

TEST(FiniteSynth, ResultUsesOnlyCliffordTGates)
{
    ir::Circuit sub(2);
    sub.t(0);
    sub.h(1);
    sub.cx(0, 1);
    support::Rng rng(4);
    synth::FiniteSynthOptions o;
    o.epsilon = 1e-6;
    o.deadline = support::Deadline::in(10);
    o.seed = &sub;
    const synth::SynthResult r = synth::finiteSynth(
        sim::circuitUnitary(sub), 2, o, rng);
    ASSERT_TRUE(r.success);
    for (const ir::Gate &g : r.circuit.gates())
        EXPECT_TRUE(ir::isNative(ir::GateSetKind::CliffordT, g.kind));
}

TEST(FiniteSynth, RespectsDeadline)
{
    // A hard random 2q target with a tiny deadline must return fast.
    support::Rng rng(5);
    ir::Circuit t(2);
    t.t(0);
    t.cx(0, 1);
    t.t(1);
    t.cx(1, 0);
    t.tdg(0);
    t.h(1);
    synth::FiniteSynthOptions o;
    o.epsilon = 1e-9;
    o.deadline = support::Deadline::in(0.3);
    support::Timer timer;
    synth::finiteSynth(sim::circuitUnitary(t), 2, o, rng);
    EXPECT_LT(timer.seconds(), 3.0);
}

TEST(FiniteSynth, HonorsMaxGatesCap)
{
    support::Rng rng(6);
    ir::Circuit t(2);
    t.h(0);
    t.cx(0, 1);
    synth::FiniteSynthOptions o;
    o.epsilon = 1e-6;
    o.maxGates = 6;
    o.deadline = support::Deadline::in(5);
    o.seed = &t;
    const synth::SynthResult r = synth::finiteSynth(
        sim::circuitUnitary(t), 2, o, rng);
    if (r.success) {
        EXPECT_LE(r.circuit.size(), 6u);
    }
}

} // namespace
} // namespace guoq
