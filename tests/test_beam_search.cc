/** @file Tests for the GUOQ-BEAM (MaxBeam) baseline (Q3). */

#include <gtest/gtest.h>

#include "baselines/beam_search.h"
#include "sim/unitary_sim.h"
#include "tests/test_util.h"
#include "transpile/to_gate_set.h"
#include "workloads/standard.h"

namespace guoq {
namespace {

baselines::BeamOptions
quickOptions(double eps = 0, double seconds = 1.5)
{
    baselines::BeamOptions o;
    o.epsilonTotal = eps;
    o.timeBudgetSeconds = seconds;
    o.beamWidth = 16;
    return o;
}

TEST(BeamSearch, DrainsRedundantCircuit)
{
    ir::Circuit c(2);
    c.h(0);
    c.h(0);
    c.cx(0, 1);
    c.cx(0, 1);
    const baselines::BeamResult r = baselines::beamSearchOptimize(
        c, ir::GateSetKind::Nam, quickOptions());
    EXPECT_EQ(r.best.size(), 0u);
}

TEST(BeamSearch, ExactModePreservesSemantics)
{
    support::Rng rng(2);
    const ir::Circuit c =
        testutil::randomNativeCircuit(ir::GateSetKind::Nam, 4, 30, rng);
    const baselines::BeamResult r = baselines::beamSearchOptimize(
        c, ir::GateSetKind::Nam, quickOptions());
    EXPECT_EQ(r.errorBound, 0.0);
    EXPECT_LT(sim::circuitDistance(c, r.best), testutil::kExact);
}

TEST(BeamSearch, ApproximateModeWithinBudget)
{
    const ir::Circuit c =
        transpile::toGateSet(workloads::qft(4), ir::GateSetKind::Nam);
    const baselines::BeamResult r = baselines::beamSearchOptimize(
        c, ir::GateSetKind::Nam, quickOptions(1e-5, 2.0));
    EXPECT_LE(r.errorBound, 1e-5);
    EXPECT_LE(sim::circuitDistance(c, r.best), 1e-5 + testutil::kExact);
}

TEST(BeamSearch, NeverReturnsWorse)
{
    support::Rng rng(3);
    const ir::Circuit c = testutil::randomNativeCircuit(
        ir::GateSetKind::CliffordT, 4, 35, rng);
    baselines::BeamOptions o = quickOptions();
    o.objective = core::Objective::TCount;
    const baselines::BeamResult r =
        baselines::beamSearchOptimize(c, ir::GateSetKind::CliffordT, o);
    EXPECT_LE(r.best.tGateCount(), c.tGateCount());
}

TEST(BeamSearch, PrunesWhenBeamOverflows)
{
    const ir::Circuit c =
        transpile::toGateSet(workloads::qft(5), ir::GateSetKind::Nam);
    baselines::BeamOptions o = quickOptions(0, 1.0);
    o.beamWidth = 2; // tiny beam forces pruning
    const baselines::BeamResult r =
        baselines::beamSearchOptimize(c, ir::GateSetKind::Nam, o);
    EXPECT_GT(r.candidatesGenerated, 0);
    EXPECT_GT(r.candidatesPruned, 0);
}

TEST(BeamSearch, HonorsIterationCap)
{
    const ir::Circuit c =
        transpile::toGateSet(workloads::qft(4), ir::GateSetKind::Nam);
    baselines::BeamOptions o = quickOptions(0, 30.0);
    o.maxIterations = 3;
    const baselines::BeamResult r =
        baselines::beamSearchOptimize(c, ir::GateSetKind::Nam, o);
    EXPECT_LE(r.iterations, 3);
}

} // namespace
} // namespace guoq
