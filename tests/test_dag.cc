/** @file Tests for the wire-adjacency DAG. */

#include <gtest/gtest.h>

#include "dag/circuit_dag.h"
#include "tests/test_util.h"

namespace guoq {
namespace {

TEST(CircuitDag, EmptyCircuit)
{
    const dag::CircuitDag d(ir::Circuit(3));
    EXPECT_EQ(d.numGates(), 0u);
    EXPECT_EQ(d.firstOnWire(0), dag::kNoGate);
    EXPECT_EQ(d.lastOnWire(2), dag::kNoGate);
}

TEST(CircuitDag, LinearChainLinks)
{
    ir::Circuit c(1);
    c.h(0);
    c.t(0);
    c.x(0);
    const dag::CircuitDag d(c);
    EXPECT_EQ(d.firstOnWire(0), 0u);
    EXPECT_EQ(d.lastOnWire(0), 2u);
    EXPECT_EQ(d.next(0, 0), 1u);
    EXPECT_EQ(d.next(1, 0), 2u);
    EXPECT_EQ(d.next(2, 0), dag::kNoGate);
    EXPECT_EQ(d.prev(2, 0), 1u);
    EXPECT_EQ(d.prev(0, 0), dag::kNoGate);
}

TEST(CircuitDag, TwoQubitGateLinksBothWires)
{
    ir::Circuit c(2);
    c.h(0);     // 0
    c.cx(0, 1); // 1
    c.h(1);     // 2
    const dag::CircuitDag d(c);
    EXPECT_EQ(d.next(0, 0), 1u);
    EXPECT_EQ(d.firstOnWire(1), 1u);
    EXPECT_EQ(d.next(1, 1), 2u);
    EXPECT_EQ(d.prev(1, 0), 0u);
    EXPECT_EQ(d.prev(1, 1), dag::kNoGate);
}

TEST(CircuitDag, IndependentWiresDontLink)
{
    ir::Circuit c(2);
    c.h(0);
    c.h(1);
    const dag::CircuitDag d(c);
    EXPECT_EQ(d.next(0, 0), dag::kNoGate);
    EXPECT_EQ(d.next(1, 1), dag::kNoGate);
}

TEST(CircuitDag, NextPrevAreInverse)
{
    support::Rng rng(21);
    const ir::Circuit c =
        testutil::randomNativeCircuit(ir::GateSetKind::Nam, 5, 60, rng);
    const dag::CircuitDag d(c);
    for (std::size_t i = 0; i < c.size(); ++i) {
        for (int q : c.gate(i).qubits) {
            const std::size_t n = d.next(i, q);
            if (n != dag::kNoGate) {
                EXPECT_EQ(d.prev(n, q), i);
            }
            const std::size_t p = d.prev(i, q);
            if (p != dag::kNoGate) {
                EXPECT_EQ(d.next(p, q), i);
            }
        }
    }
}

TEST(CircuitDag, WireTraversalVisitsAllGatesInOrder)
{
    support::Rng rng(22);
    const ir::Circuit c = testutil::randomNativeCircuit(
        ir::GateSetKind::IbmEagle, 4, 50, rng);
    const dag::CircuitDag d(c);
    for (int q = 0; q < c.numQubits(); ++q) {
        std::size_t count = 0;
        std::size_t prev_idx = 0;
        for (std::size_t i = d.firstOnWire(q); i != dag::kNoGate;
             i = d.next(i, q)) {
            if (count > 0) {
                EXPECT_GT(i, prev_idx); // strictly increasing
            }
            prev_idx = i;
            ++count;
        }
        std::size_t expected = 0;
        for (const ir::Gate &g : c.gates())
            if (g.actsOn(q))
                ++expected;
        EXPECT_EQ(count, expected);
    }
}

TEST(CircuitDag, NumbersMatchCircuit)
{
    ir::Circuit c(4);
    c.ccx(0, 1, 2);
    c.h(3);
    const dag::CircuitDag d(c);
    EXPECT_EQ(d.numQubits(), 4);
    EXPECT_EQ(d.numGates(), 2u);
}

} // namespace
} // namespace guoq
