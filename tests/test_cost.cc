/** @file Tests for the optimization objectives (paper §5.1). */

#include <gtest/gtest.h>

#include "core/cost.h"

namespace guoq {
namespace {

ir::Circuit
sampleCircuit()
{
    ir::Circuit c(3);
    c.t(0);
    c.t(1);
    c.cx(0, 1);
    c.cx(1, 2);
    c.cx(0, 1);
    c.h(2);
    return c;
}

TEST(Cost, TwoQubitCountDominates)
{
    const core::CostFunction cost(core::Objective::TwoQubitCount,
                                  ir::GateSetKind::Nam);
    const ir::Circuit c = sampleCircuit();
    EXPECT_NEAR(cost(c), 3.0, 0.01);
    // One fewer CX beats any number of extra 1q gates.
    ir::Circuit fewer_cx(3);
    fewer_cx.cx(0, 1);
    fewer_cx.cx(1, 2);
    for (int i = 0; i < 50; ++i)
        fewer_cx.h(0);
    EXPECT_LT(cost(fewer_cx), cost(c));
}

TEST(Cost, TieBreakPrefersFewerTotalGates)
{
    const core::CostFunction cost(core::Objective::TwoQubitCount,
                                  ir::GateSetKind::Nam);
    ir::Circuit a(2), b(2);
    a.cx(0, 1);
    b.cx(0, 1);
    b.h(0);
    EXPECT_LT(cost(a), cost(b));
}

TEST(Cost, TCountObjective)
{
    const core::CostFunction cost(core::Objective::TCount,
                                  ir::GateSetKind::CliffordT);
    ir::Circuit c(1);
    c.t(0);
    c.tdg(0);
    c.s(0);
    EXPECT_NEAR(cost(c), 2.0, 0.01);
}

TEST(Cost, PaperExample51)
{
    // cost = 2·#T + #CX.
    const core::CostFunction cost(core::Objective::TThenTwoQubit,
                                  ir::GateSetKind::CliffordT);
    const ir::Circuit c = sampleCircuit(); // 2 T, 3 CX
    EXPECT_NEAR(cost(c), 2 * 2 + 3, 0.01);
}

TEST(Cost, FidelityObjectiveOrdersByErrorWeight)
{
    const core::CostFunction cost(core::Objective::Fidelity,
                                  ir::GateSetKind::IbmEagle);
    // One 2q gate costs more than a dozen 1q gates under realistic
    // calibration magnitudes.
    ir::Circuit one_cx(2), many_1q(2);
    one_cx.cx(0, 1);
    for (int i = 0; i < 12; ++i)
        many_1q.x(0);
    EXPECT_GT(cost(one_cx), cost(many_1q));
}

TEST(Cost, GateCountAndDepth)
{
    const core::CostFunction gates(core::Objective::GateCount,
                                   ir::GateSetKind::Nam);
    const core::CostFunction depth(core::Objective::Depth,
                                   ir::GateSetKind::Nam);
    ir::Circuit wide(4), deep(4);
    for (int q = 0; q < 4; ++q)
        wide.h(q);
    for (int i = 0; i < 4; ++i)
        deep.h(0);
    EXPECT_NEAR(gates(wide), gates(deep), 0.01);
    EXPECT_LT(depth(wide), depth(deep));
}

TEST(Cost, EmptyCircuitIsFree)
{
    for (core::Objective obj :
         {core::Objective::TwoQubitCount, core::Objective::TCount,
          core::Objective::TThenTwoQubit, core::Objective::Fidelity,
          core::Objective::GateCount, core::Objective::Depth}) {
        const core::CostFunction cost(obj, ir::GateSetKind::Nam);
        EXPECT_NEAR(cost(ir::Circuit(3)), 0.0, 1e-12)
            << core::objectiveName(obj);
    }
}

TEST(Cost, ObjectiveNamesAreDistinct)
{
    EXPECT_NE(core::objectiveName(core::Objective::TwoQubitCount),
              core::objectiveName(core::Objective::TCount));
}

} // namespace
} // namespace guoq
