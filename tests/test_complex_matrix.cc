/** @file Unit tests for linalg::ComplexMatrix. */

#include <gtest/gtest.h>

#include "linalg/complex_matrix.h"
#include "support/rng.h"

namespace guoq {
namespace {

using linalg::Complex;
using linalg::ComplexMatrix;

ComplexMatrix
randomMatrix(std::size_t n, support::Rng &rng)
{
    ComplexMatrix m(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            m(r, c) = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
    return m;
}

TEST(ComplexMatrix, DefaultIsEmpty)
{
    ComplexMatrix m;
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.cols(), 0u);
}

TEST(ComplexMatrix, ZeroInitialized)
{
    ComplexMatrix m(3, 2);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            EXPECT_EQ(m(r, c), Complex(0, 0));
}

TEST(ComplexMatrix, InitializerListLayout)
{
    ComplexMatrix m{{1, 2}, {3, 4}};
    EXPECT_EQ(m(0, 0), Complex(1, 0));
    EXPECT_EQ(m(0, 1), Complex(2, 0));
    EXPECT_EQ(m(1, 0), Complex(3, 0));
    EXPECT_EQ(m(1, 1), Complex(4, 0));
}

TEST(ComplexMatrix, IdentityTimesAnythingIsIdentityOp)
{
    support::Rng rng(1);
    const ComplexMatrix a = randomMatrix(4, rng);
    const ComplexMatrix i = ComplexMatrix::identity(4);
    EXPECT_NEAR((i * a).maxAbsDiff(a), 0, 1e-14);
    EXPECT_NEAR((a * i).maxAbsDiff(a), 0, 1e-14);
}

TEST(ComplexMatrix, MultiplicationMatchesHandComputation)
{
    const ComplexMatrix a{{1, 2}, {3, 4}};
    const ComplexMatrix b{{5, 6}, {7, 8}};
    const ComplexMatrix c = a * b;
    EXPECT_EQ(c(0, 0), Complex(19, 0));
    EXPECT_EQ(c(0, 1), Complex(22, 0));
    EXPECT_EQ(c(1, 0), Complex(43, 0));
    EXPECT_EQ(c(1, 1), Complex(50, 0));
}

TEST(ComplexMatrix, MultiplicationIsAssociative)
{
    support::Rng rng(2);
    const ComplexMatrix a = randomMatrix(4, rng);
    const ComplexMatrix b = randomMatrix(4, rng);
    const ComplexMatrix c = randomMatrix(4, rng);
    EXPECT_LT(((a * b) * c).maxAbsDiff(a * (b * c)), 1e-12);
}

TEST(ComplexMatrix, AdditionAndSubtraction)
{
    support::Rng rng(3);
    const ComplexMatrix a = randomMatrix(3, rng);
    const ComplexMatrix b = randomMatrix(3, rng);
    EXPECT_LT(((a + b) - b).maxAbsDiff(a), 1e-14);
}

TEST(ComplexMatrix, ScaledMultipliesEveryEntry)
{
    const ComplexMatrix a{{1, 2}, {3, 4}};
    const ComplexMatrix s = a.scaled(Complex(0, 2));
    EXPECT_EQ(s(1, 0), Complex(0, 6));
}

TEST(ComplexMatrix, DaggerConjugatesAndTransposes)
{
    ComplexMatrix a(2, 2);
    a(0, 1) = Complex(1, 2);
    const ComplexMatrix d = a.dagger();
    EXPECT_EQ(d(1, 0), Complex(1, -2));
    EXPECT_EQ(d(0, 1), Complex(0, 0));
}

TEST(ComplexMatrix, DaggerIsInvolution)
{
    support::Rng rng(4);
    const ComplexMatrix a = randomMatrix(4, rng);
    EXPECT_EQ(a.dagger().dagger().maxAbsDiff(a), 0);
}

TEST(ComplexMatrix, KroneckerDimensions)
{
    const ComplexMatrix a(2, 2);
    const ComplexMatrix b(3, 3);
    const ComplexMatrix k = a.kron(b);
    EXPECT_EQ(k.rows(), 6u);
    EXPECT_EQ(k.cols(), 6u);
}

TEST(ComplexMatrix, KroneckerMatchesBlockStructure)
{
    const ComplexMatrix a{{1, 2}, {3, 4}};
    const ComplexMatrix b{{0, 1}, {1, 0}};
    const ComplexMatrix k = a.kron(b);
    // Top-left block = 1 * b, top-right = 2 * b.
    EXPECT_EQ(k(0, 1), Complex(1, 0));
    EXPECT_EQ(k(0, 3), Complex(2, 0));
    EXPECT_EQ(k(2, 1), Complex(3, 0));
    EXPECT_EQ(k(3, 2), Complex(4, 0));
}

TEST(ComplexMatrix, KroneckerMixedProduct)
{
    // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD).
    support::Rng rng(5);
    const ComplexMatrix a = randomMatrix(2, rng);
    const ComplexMatrix b = randomMatrix(2, rng);
    const ComplexMatrix c = randomMatrix(2, rng);
    const ComplexMatrix d = randomMatrix(2, rng);
    EXPECT_LT((a.kron(b) * c.kron(d)).maxAbsDiff((a * c).kron(b * d)),
              1e-12);
}

TEST(ComplexMatrix, TraceSumsDiagonal)
{
    const ComplexMatrix a{{1, 9}, {9, 4}};
    EXPECT_EQ(a.trace(), Complex(5, 0));
}

TEST(ComplexMatrix, FrobeniusNormOfIdentity)
{
    EXPECT_NEAR(ComplexMatrix::identity(9).frobeniusNorm(), 3.0, 1e-12);
}

TEST(ComplexMatrix, IsUnitaryAcceptsUnitaries)
{
    const Complex h = 1.0 / std::sqrt(2.0);
    const ComplexMatrix had{{h, h}, {h, -h}};
    EXPECT_TRUE(had.isUnitary());
    EXPECT_TRUE(ComplexMatrix::identity(8).isUnitary());
}

TEST(ComplexMatrix, IsUnitaryRejectsNonUnitaries)
{
    const ComplexMatrix a{{1, 1}, {0, 1}};
    EXPECT_FALSE(a.isUnitary());
}

TEST(ComplexMatrix, MaxAbsDiffFindsLargestDeviation)
{
    ComplexMatrix a(2, 2), b(2, 2);
    b(1, 1) = Complex(0, 3);
    EXPECT_NEAR(a.maxAbsDiff(b), 3.0, 1e-15);
}

TEST(ComplexMatrix, ToStringMentionsEntries)
{
    const ComplexMatrix a{{1, 0}, {0, 1}};
    EXPECT_NE(a.toString().find("1"), std::string::npos);
}

} // namespace
} // namespace guoq
