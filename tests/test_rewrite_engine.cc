/**
 * @file
 * The incremental rewrite engine's contract (PR-010):
 *
 *  - differential: for randomized circuits over all five rule
 *    libraries, every (rule, anchor) pass through the engine produces
 *    gate-for-gate the legacy applyRulePass result, both committed
 *    and as a materialized-but-uncommitted candidate;
 *  - RNG equivalence: preparePassRandom consumes exactly the draws of
 *    applyRulePassRandom;
 *  - invariants: wire links, kind buckets, and cached counters are
 *    revalidated after every splice (checkInvariants death tests
 *    cover corruption);
 *  - determinism pins: fixed-seed single-thread core::optimize()
 *    fingerprints captured on the pre-engine implementation — the
 *    engine swap must be bit-for-bit invisible;
 *  - fixpoint: the engine-backed applyRulesToFixpoint equals a local
 *    replica of the legacy round-robin loop.
 */

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/guoq.h"
#include "fidelity/error_model.h"
#include "rewrite/applier.h"
#include "rewrite/engine.h"
#include "rewrite/rule.h"
#include "support/rng.h"
#include "tests/test_util.h"

namespace {

using namespace guoq;

const std::vector<ir::GateSetKind> kAllSets = {
    ir::GateSetKind::Nam,      ir::GateSetKind::Ibmq20,
    ir::GateSetKind::IbmEagle, ir::GateSetKind::IonQ,
    ir::GateSetKind::CliffordT,
};

/** Gate-list equality with a readable failure message. */
::testing::AssertionResult
sameGates(const ir::Circuit &a, const ir::Circuit &b)
{
    if (a.gates() == b.gates())
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "circuits differ:\n"
           << a.toString() << "--- vs ---\n"
           << b.toString();
}

// ---------------------------------------------------------------------
// Differential: engine pass == legacy pass, per accepted application.
// ---------------------------------------------------------------------

TEST(RewriteEngineDifferential, EveryPassMatchesLegacyAcrossAllSets)
{
    for (const ir::GateSetKind set : kAllSets) {
        const auto &rules = rewrite::rulesFor(set);
        support::Rng rng(42 + static_cast<std::uint64_t>(set));
        for (int round = 0; round < 3; ++round) {
            ir::Circuit c = testutil::randomNativeCircuit(
                set, 5, 60 + 20 * round, rng);
            rewrite::RewriteEngine engine{ir::Circuit(c)};
            int committed = 0;
            for (int step = 0; step < 200; ++step) {
                const rewrite::RewriteRule &rule =
                    rules[rng.index(rules.size())];
                const std::size_t anchor =
                    c.empty() ? 0 : rng.index(c.size());
                rewrite::PassResult legacy =
                    rewrite::applyRulePass(c, rule, anchor);
                auto att = engine.preparePass(rule, anchor);
                if (legacy.applications == 0) {
                    ASSERT_FALSE(att.has_value())
                        << rule.name() << " anchor " << anchor;
                    continue;
                }
                ASSERT_TRUE(att.has_value())
                    << rule.name() << " anchor " << anchor;
                EXPECT_EQ(att->applications, legacy.applications);
                // The lazily materialized candidate is the legacy
                // circuit, and committing adopts it.
                EXPECT_TRUE(sameGates(engine.candidate(),
                                      legacy.circuit));
                EXPECT_EQ(att->counts, legacy.circuit.counts());
                engine.commit();
                ++committed;
                c = legacy.circuit;
                ASSERT_TRUE(sameGates(engine.circuit(), c));
                if (committed % 8 == 0)
                    engine.checkInvariants();
            }
            engine.checkInvariants();
            EXPECT_GT(committed, 0) << "no rule ever fired for set "
                                    << ir::gateSetName(set);
        }
    }
}

TEST(RewriteEngineDifferential, RandomAnchorConsumesSameDraws)
{
    const ir::GateSetKind set = ir::GateSetKind::Nam;
    const auto &rules = rewrite::rulesFor(set);
    support::Rng build(7);
    ir::Circuit c = testutil::randomNativeCircuit(set, 6, 80, build);

    support::Rng rng_legacy(99);
    support::Rng rng_engine(99);
    rewrite::RewriteEngine engine{ir::Circuit(c)};
    for (int step = 0; step < 300; ++step) {
        const std::size_t ri = rng_legacy.index(rules.size());
        ASSERT_EQ(ri, rng_engine.index(rules.size()));
        rewrite::PassResult legacy =
            rewrite::applyRulePassRandom(c, rules[ri], rng_legacy);
        auto att = engine.preparePassRandom(rules[ri], rng_engine);
        if (legacy.applications == 0) {
            ASSERT_FALSE(att.has_value());
        } else {
            ASSERT_TRUE(att.has_value());
            engine.commit();
            c = std::move(legacy.circuit);
            ASSERT_TRUE(sameGates(engine.circuit(), c));
        }
        // Identical draw counts => the streams stay in lockstep.
        ASSERT_EQ(rng_legacy(), rng_engine());
    }
}

TEST(RewriteEngineDifferential, DiscardLeavesCircuitAndIndexUntouched)
{
    const ir::GateSetKind set = ir::GateSetKind::IbmEagle;
    const auto &rules = rewrite::rulesFor(set);
    support::Rng rng(5);
    const ir::Circuit c = testutil::randomNativeCircuit(set, 5, 60, rng);
    rewrite::RewriteEngine engine{ir::Circuit(c)};
    int discarded = 0;
    for (int step = 0; step < 120; ++step) {
        const rewrite::RewriteRule &rule = rules[rng.index(rules.size())];
        auto att = engine.preparePassRandom(rule, rng);
        if (!att)
            continue;
        if (step % 2 == 0)
            (void)engine.candidate(); // materialize, then throw away
        engine.discard();
        ++discarded;
        ASSERT_TRUE(sameGates(engine.circuit(), c));
    }
    engine.checkInvariants();
    EXPECT_EQ(engine.counts(), c.counts());
    EXPECT_GT(discarded, 0);
}

TEST(RewriteEngineDifferential, FixpointMatchesLegacyRoundRobin)
{
    for (const ir::GateSetKind set : kAllSets) {
        const auto &rules = rewrite::rulesFor(set);
        support::Rng rng(31 + static_cast<std::uint64_t>(set));
        const ir::Circuit c =
            testutil::randomNativeCircuit(set, 5, 80, rng);

        // The legacy loop, verbatim from the pre-engine applier.
        ir::Circuit expect = c;
        for (int round = 0; round < 64; ++round) {
            int fired = 0;
            for (const rewrite::RewriteRule &rule : rules) {
                rewrite::PassResult r =
                    rewrite::applyRulePass(expect, rule, 0);
                if (r.applications > 0) {
                    expect = std::move(r.circuit);
                    fired += r.applications;
                }
            }
            if (fired == 0)
                break;
        }

        EXPECT_TRUE(sameGates(
            rewrite::applyRulesToFixpoint(c, rules), expect))
            << "set " << ir::gateSetName(set);
    }
}

// ---------------------------------------------------------------------
// Cached counters.
// ---------------------------------------------------------------------

TEST(RewriteEngineCounts, DeltaCountersTrackScansAcrossCommits)
{
    const ir::GateSetKind set = ir::GateSetKind::CliffordT;
    const auto &rules = rewrite::rulesFor(set);
    const fidelity::ErrorModel &model = fidelity::errorModelFor(set);
    support::Rng rng(13);
    ir::Circuit c = testutil::randomNativeCircuit(set, 5, 70, rng);

    rewrite::RewriteEngine engine{ir::Circuit(c)};
    engine.setGateLogCost([&model](const ir::Gate &g) {
        return -std::log1p(-model.gateError(g));
    });
    int committed = 0;
    for (int step = 0; step < 250 && committed < 40; ++step) {
        const rewrite::RewriteRule &rule = rules[rng.index(rules.size())];
        auto att = engine.preparePassRandom(rule, rng);
        if (!att)
            continue;
        engine.commit();
        ++committed;
        ASSERT_EQ(engine.counts(), engine.circuit().counts());
        double fresh = 0;
        for (const ir::Gate &g : engine.circuit().gates())
            fresh += -std::log1p(-model.gateError(g));
        ASSERT_NEAR(engine.fidelityLogCost(), fresh, 1e-12);
    }
    engine.checkInvariants();
    EXPECT_GT(committed, 0);
}

TEST(RewriteEngineCounts, AssignReindexesWholesale)
{
    support::Rng rng(3);
    const ir::Circuit a = testutil::randomNativeCircuit(
        ir::GateSetKind::Nam, 4, 30, rng);
    const ir::Circuit b = testutil::randomNativeCircuit(
        ir::GateSetKind::Nam, 6, 50, rng);
    rewrite::RewriteEngine engine{ir::Circuit(a)};
    engine.assign(ir::Circuit(b));
    EXPECT_TRUE(sameGates(engine.circuit(), b));
    EXPECT_EQ(engine.counts(), b.counts());
    engine.checkInvariants();
}

// ---------------------------------------------------------------------
// Invariant death tests: corruption must be loud.
// ---------------------------------------------------------------------

TEST(RewriteEngineDeath, CheckInvariantsCatchesTamperedGateList)
{
    support::Rng rng(8);
    const ir::Circuit c = testutil::randomNativeCircuit(
        ir::GateSetKind::Nam, 4, 20, rng);
    rewrite::RewriteEngine engine{ir::Circuit(c)};
    engine.checkInvariants(); // sanity: clean engine passes
    // Mutating the working circuit behind the engine's back stales
    // counters, buckets, and wire links at once.
    const_cast<ir::Circuit &>(engine.circuit()).gates().pop_back();
    EXPECT_DEATH(engine.checkInvariants(), "RewriteEngine");
}

TEST(RewriteEngineDeath, CheckInvariantsCatchesRewiredGate)
{
    ir::Circuit c(3);
    c.cx(0, 1);
    c.cx(1, 2);
    c.h(0);
    rewrite::RewriteEngine engine{ir::Circuit(c)};
    // Same kind and counts, different wires: only the DAG/bucket
    // revalidation can see it.
    const_cast<ir::Circuit &>(engine.circuit()).gates()[1] =
        ir::Gate(ir::GateKind::CX, {0, 2});
    EXPECT_DEATH(engine.checkInvariants(), "RewriteEngine");
}

TEST(RewriteEngineDeath, UnresolvedPassRefusesNextPass)
{
    const ir::GateSetKind set = ir::GateSetKind::Nam;
    const auto &rules = rewrite::rulesFor(set);
    support::Rng rng(21);
    const ir::Circuit c = testutil::randomNativeCircuit(set, 5, 60, rng);
    rewrite::RewriteEngine engine{ir::Circuit(c)};
    support::Rng draws(4);
    for (int step = 0; step < 400; ++step) {
        const rewrite::RewriteRule &rule =
            rules[draws.index(rules.size())];
        if (engine.preparePassRandom(rule, draws)) {
            EXPECT_DEATH(engine.preparePass(rule, 0), "pending");
            return;
        }
    }
    FAIL() << "no rule ever fired";
}

// ---------------------------------------------------------------------
// Fixed-seed determinism pins: fingerprints of core::optimize() runs
// captured on the pre-engine implementation. The engine swap (and any
// future engine change) must keep these bit-for-bit.
// ---------------------------------------------------------------------

std::uint64_t
fingerprint(const core::GuoqResult &r)
{
    const std::string sig =
        r.best.toString() + "|a=" + std::to_string(r.stats.accepted) +
        "|u=" + std::to_string(r.stats.uphillAccepted) +
        "|r=" + std::to_string(r.stats.rejected) +
        "|n=" + std::to_string(r.stats.noops) +
        "|w=" + std::to_string(r.stats.rewriteApplications);
    std::uint64_t h = 1469598103934665603ull;
    for (const char ch : sig) {
        h ^= static_cast<unsigned char>(ch);
        h *= 1099511628211ull;
    }
    return h;
}

struct GoldenRun
{
    const char *tag;
    ir::GateSetKind set;
    core::Objective objective;
    std::uint64_t circuitSeed;
    int qubits;
    int gates;
    std::uint64_t seed;
    long iterations;
    std::uint64_t want;
};

TEST(RewriteEngineGolden, FixedSeedOptimizeUnchangedSincePreEngine)
{
    const std::vector<GoldenRun> runs = {
        {"nam_gate", ir::GateSetKind::Nam, core::Objective::GateCount,
         101, 6, 40, 11, 4000, 0x1a7b2b53d2e1c1b9ull},
        {"eagle_2q", ir::GateSetKind::IbmEagle,
         core::Objective::TwoQubitCount, 102, 5, 60, 3, 4000,
         0x85d84a6e7b28d6f9ull},
        {"ct_t", ir::GateSetKind::CliffordT, core::Objective::TCount,
         103, 4, 50, 5, 3000, 0xec99d7fa6e21bb07ull},
        {"ionq_fid", ir::GateSetKind::IonQ, core::Objective::Fidelity,
         104, 4, 40, 9, 2000, 0x56df2a77306b0d0dull},
        {"ibmq20_depth", ir::GateSetKind::Ibmq20, core::Objective::Depth,
         105, 5, 40, 13, 2000, 0x5b7c41ec5e4f7a76ull},
    };
    for (const GoldenRun &g : runs) {
        support::Rng crng(g.circuitSeed);
        const ir::Circuit c = testutil::randomNativeCircuit(
            g.set, g.qubits, g.gates, crng);
        core::GuoqConfig cfg;
        cfg.objective = g.objective;
        cfg.seed = g.seed;
        cfg.maxIterations = g.iterations;
        cfg.timeBudgetSeconds = 60.0;
        cfg.epsilonTotal = 0;
        cfg.synthWorkers = 0;
        const core::GuoqResult r = core::optimize(c, g.set, cfg);
        EXPECT_EQ(fingerprint(r), g.want) << g.tag;
    }
}

// The lazy best-copy must preserve report semantics exactly: best is
// frozen at the last *strict* improvement even when later equal-cost
// moves are accepted.
TEST(RewriteEngineGolden, LazyBestMatchesTraceAndCost)
{
    support::Rng crng(77);
    const ir::Circuit c = testutil::randomNativeCircuit(
        ir::GateSetKind::Nam, 6, 60, crng);
    core::GuoqConfig cfg;
    cfg.objective = core::Objective::GateCount;
    cfg.seed = 19;
    cfg.maxIterations = 3000;
    cfg.timeBudgetSeconds = 60.0;
    cfg.recordTrace = true;
    const core::CostFunction cost(cfg.objective, ir::GateSetKind::Nam);
    const core::GuoqResult r =
        core::optimize(c, ir::GateSetKind::Nam, cfg);
    ASSERT_FALSE(r.trace.empty());
    const core::TracePoint &last = r.trace.back();
    EXPECT_EQ(cost(r.best), last.cost);
    EXPECT_EQ(r.best.gateCount(), last.gateCount);
    EXPECT_EQ(r.best.twoQubitGateCount(), last.twoQubitCount);
    EXPECT_EQ(r.best.tGateCount(), last.tCount);
    EXPECT_LE(cost(r.best), cost(c));
}

} // namespace
