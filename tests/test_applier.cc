/** @file Tests for the full-pass rule applier. */

#include <gtest/gtest.h>

#include "rewrite/applier.h"
#include "rewrite/rule.h"
#include "sim/unitary_sim.h"
#include "tests/test_util.h"

namespace guoq {
namespace {

using namespace rewrite;
using ir::GateKind;

RewriteRule
hhCancel()
{
    return RewriteRule("h_h_cancel",
                       {PatternGate{GateKind::H, {0}, {}},
                        PatternGate{GateKind::H, {0}, {}}},
                       {});
}

TEST(Applier, ReplacesAllDisjointMatches)
{
    ir::Circuit c(3);
    c.h(0);
    c.h(0);
    c.h(1);
    c.h(1);
    c.h(2); // unpaired
    const PassResult r = applyRulePass(c, hhCancel(), 0);
    EXPECT_EQ(r.applications, 2);
    EXPECT_EQ(r.circuit.size(), 1u);
    EXPECT_EQ(r.circuit.gate(0).qubits[0], 2);
}

TEST(Applier, GreedyDisjointness)
{
    // H H H on one wire: exactly one pair cancels, one H remains.
    ir::Circuit c(1);
    c.h(0);
    c.h(0);
    c.h(0);
    const PassResult r = applyRulePass(c, hhCancel(), 0);
    EXPECT_EQ(r.applications, 1);
    EXPECT_EQ(r.circuit.size(), 1u);
}

TEST(Applier, AnchorChangesWhichMatchWins)
{
    // Starting mid-way pairs gates 1-2 instead of 0-1.
    ir::Circuit c(1);
    c.h(0);
    c.h(0);
    c.h(0);
    const PassResult r = applyRulePass(c, hhCancel(), 1);
    EXPECT_EQ(r.applications, 1);
    EXPECT_EQ(r.circuit.size(), 1u);
}

TEST(Applier, NoMatchLeavesCircuitIntact)
{
    ir::Circuit c(2);
    c.h(0);
    c.x(0);
    c.h(0);
    const PassResult r = applyRulePass(c, hhCancel(), 0);
    EXPECT_EQ(r.applications, 0);
    EXPECT_EQ(r.circuit.size(), 3u);
}

TEST(Applier, CommutationReordersInPlace)
{
    RewriteRule commute(
        "rz_commute_cx_control",
        {PatternGate{GateKind::Rz, {0}, {AngleExpr::var(0)}},
         PatternGate{GateKind::CX, {0, 1}, {}}},
        {PatternGate{GateKind::CX, {0, 1}, {}},
         PatternGate{GateKind::Rz, {0}, {AngleExpr::var(0)}}});
    ir::Circuit c(2);
    c.rz(0.5, 0);
    c.cx(0, 1);
    const PassResult r = applyRulePass(c, commute, 0);
    EXPECT_EQ(r.applications, 1);
    ASSERT_EQ(r.circuit.size(), 2u);
    EXPECT_EQ(r.circuit.gate(0).kind, GateKind::CX);
    EXPECT_EQ(r.circuit.gate(1).kind, GateKind::Rz);
    EXPECT_LT(sim::circuitDistance(c, r.circuit), testutil::kExact);
}

class ApplierSemanticsProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ApplierSemanticsProperty, EveryLibraryPassPreservesSemantics)
{
    const auto [set_index, seed] = GetParam();
    const ir::GateSetKind set = ir::allGateSets()[
        static_cast<std::size_t>(set_index)];
    support::Rng rng(static_cast<std::uint64_t>(seed) * 733 + 1);
    ir::Circuit c = testutil::randomNativeCircuit(set, 4, 35, rng);
    for (const RewriteRule &rule : rulesFor(set)) {
        const PassResult r = applyRulePassRandom(c, rule, rng);
        if (r.applications > 0) {
            ASSERT_LT(sim::circuitDistance(c, r.circuit),
                      testutil::kExact)
                << rule.name() << " broke semantics";
            c = r.circuit;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ApplierSemanticsProperty,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 6)));

TEST(Fixpoint, DrainsCancellations)
{
    ir::Circuit c(2);
    for (int i = 0; i < 6; ++i)
        c.h(0);
    c.cx(0, 1);
    c.cx(0, 1);
    const ir::Circuit out =
        applyRulesToFixpoint(c, rulesFor(ir::GateSetKind::Nam));
    EXPECT_EQ(out.size(), 0u);
}

TEST(Fixpoint, TerminatesOnCommutationLoops)
{
    // Commutation rules alone could ping-pong forever; the round cap
    // must terminate the loop.
    ir::Circuit c(2);
    c.rz(0.3, 0);
    c.cx(0, 1);
    const ir::Circuit out =
        applyRulesToFixpoint(c, rulesFor(ir::GateSetKind::Nam), 8);
    EXPECT_EQ(out.size(), 2u);
}

TEST(Fixpoint, MergesRotationChains)
{
    ir::Circuit c(1);
    for (int i = 0; i < 8; ++i)
        c.rz(0.25, 0);
    const ir::Circuit out =
        applyRulesToFixpoint(c, rulesFor(ir::GateSetKind::Nam));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NEAR(out.gate(0).params[0], 2.0, 1e-9);
}

TEST(Fixpoint, ZeroRotationVanishes)
{
    ir::Circuit c(1);
    c.rz(0.4, 0);
    c.rz(-0.4, 0);
    const ir::Circuit out =
        applyRulesToFixpoint(c, rulesFor(ir::GateSetKind::Nam));
    EXPECT_EQ(out.size(), 0u);
}

TEST(Applier, EmptyCircuitNoop)
{
    const PassResult r = applyRulePass(ir::Circuit(2), hhCancel(), 0);
    EXPECT_EQ(r.applications, 0);
    EXPECT_TRUE(r.circuit.empty());
}

} // namespace
} // namespace guoq
