/** @file Tests for ir::Gate. */

#include <gtest/gtest.h>

#include "ir/circuit.h"
#include "ir/gate.h"
#include "sim/unitary_sim.h"
#include "tests/test_util.h"

namespace guoq {
namespace {

using ir::Gate;
using ir::GateKind;

std::vector<GateKind>
allKinds()
{
    std::vector<GateKind> out;
    for (int k = 0; k < static_cast<int>(GateKind::NumKinds); ++k)
        out.push_back(static_cast<GateKind>(k));
    return out;
}

class GateInverse : public ::testing::TestWithParam<GateKind>
{
};

TEST_P(GateInverse, GateTimesInverseIsIdentity)
{
    const GateKind kind = GetParam();
    const int arity = ir::gateArity(kind);
    std::vector<int> qubits;
    for (int q = 0; q < arity; ++q)
        qubits.push_back(q);
    std::vector<double> params(
        static_cast<std::size_t>(ir::gateParamCount(kind)), 0.83);
    const Gate g(kind, qubits, params);

    ir::Circuit c(arity);
    c.add(g);
    for (const Gate &inv : g.inverse())
        c.add(inv);
    ir::Circuit empty(arity);
    EXPECT_LT(sim::circuitDistance(c, empty), testutil::kExact)
        << ir::gateName(kind);
}

INSTANTIATE_TEST_SUITE_P(
    All, GateInverse, ::testing::ValuesIn(allKinds()),
    [](const ::testing::TestParamInfo<GateKind> &info) {
        return ir::gateName(info.param);
    });

TEST(Gate, SameQubitsRequiresSameOrder)
{
    const Gate a(GateKind::CX, {0, 1});
    const Gate b(GateKind::CX, {0, 1});
    const Gate c(GateKind::CX, {1, 0});
    EXPECT_TRUE(a.sameQubits(b));
    EXPECT_FALSE(a.sameQubits(c));
}

TEST(Gate, OverlapsDetectsSharedWire)
{
    const Gate a(GateKind::CX, {0, 1});
    EXPECT_TRUE(a.overlaps(Gate(GateKind::H, {1})));
    EXPECT_FALSE(a.overlaps(Gate(GateKind::H, {2})));
}

TEST(Gate, ActsOn)
{
    const Gate a(GateKind::CCX, {2, 4, 6});
    EXPECT_TRUE(a.actsOn(4));
    EXPECT_FALSE(a.actsOn(3));
}

TEST(Gate, EqualityIncludesParams)
{
    const Gate a(GateKind::Rz, {0}, {0.5});
    const Gate b(GateKind::Rz, {0}, {0.5});
    const Gate c(GateKind::Rz, {0}, {0.6});
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);
}

TEST(Gate, ToStringShowsNameAndQubits)
{
    const Gate g(GateKind::CX, {3, 7});
    const std::string s = g.toString();
    EXPECT_NE(s.find("cx"), std::string::npos);
    EXPECT_NE(s.find("3"), std::string::npos);
    EXPECT_NE(s.find("7"), std::string::npos);
}

TEST(Gate, NormalizeAngleRange)
{
    EXPECT_NEAR(ir::normalizeAngle(3 * M_PI), M_PI, 1e-12);
    EXPECT_NEAR(ir::normalizeAngle(-3 * M_PI), M_PI, 1e-12);
    EXPECT_NEAR(ir::normalizeAngle(0.25), 0.25, 1e-12);
    EXPECT_NEAR(ir::normalizeAngle(2 * M_PI), 0, 1e-12);
}

TEST(Gate, IsZeroAngleModulo2Pi)
{
    EXPECT_TRUE(ir::isZeroAngle(0));
    EXPECT_TRUE(ir::isZeroAngle(4 * M_PI));
    EXPECT_FALSE(ir::isZeroAngle(0.1));
    EXPECT_FALSE(ir::isZeroAngle(M_PI));
}

TEST(Gate, U2InverseIsExact)
{
    // U2 inverts to a U3 (documented special case).
    const Gate g(GateKind::U2, {0}, {0.4, 1.2});
    ir::Circuit c(1);
    c.add(g);
    for (const Gate &inv : g.inverse())
        c.add(inv);
    EXPECT_LT(sim::circuitDistance(c, ir::Circuit(1)), testutil::kExact);
}

} // namespace
} // namespace guoq
