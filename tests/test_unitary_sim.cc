/** @file Tests for the unitary simulator (circuit semantics, §3). */

#include <gtest/gtest.h>

#include <cmath>

#include "ir/circuit.h"
#include "linalg/unitary.h"
#include "sim/unitary_sim.h"
#include "tests/test_util.h"

namespace guoq {
namespace {

using linalg::ComplexMatrix;

TEST(UnitarySim, EmptyCircuitIsIdentity)
{
    const ComplexMatrix u = sim::circuitUnitary(ir::Circuit(3));
    EXPECT_LT(u.maxAbsDiff(ComplexMatrix::identity(8)), 1e-14);
}

TEST(UnitarySim, PaperExample31Composition)
{
    // C = T q1; CX q0 q1 has U_C = U_CX (I ⊗ U_T).
    ir::Circuit c(2);
    c.t(1);
    c.cx(0, 1);
    const ComplexMatrix expected =
        ir::gateMatrix(ir::GateKind::CX, {}) *
        ComplexMatrix::identity(2).kron(ir::gateMatrix(ir::GateKind::T, {}));
    EXPECT_LT(sim::circuitUnitary(c).maxAbsDiff(expected), 1e-12);
}

TEST(UnitarySim, Qubit0IsMostSignificantBit)
{
    // X on qubit 0 of 2 maps |00> -> |10>: column 0 has its 1 at row 2.
    ir::Circuit c(2);
    c.x(0);
    const ComplexMatrix u = sim::circuitUnitary(c);
    EXPECT_NEAR(std::abs(u(2, 0)), 1.0, 1e-12);
    EXPECT_NEAR(std::abs(u(0, 0)), 0.0, 1e-12);
}

TEST(UnitarySim, SingleGateMatchesKronEmbedding)
{
    // H on qubit 1 of 3: I ⊗ H ⊗ I.
    ir::Circuit c(3);
    c.h(1);
    const ComplexMatrix expected =
        ComplexMatrix::identity(2)
            .kron(ir::gateMatrix(ir::GateKind::H, {}))
            .kron(ComplexMatrix::identity(2));
    EXPECT_LT(sim::circuitUnitary(c).maxAbsDiff(expected), 1e-12);
}

TEST(UnitarySim, NonAdjacentTwoQubitGate)
{
    // CX(0, 2) on 3 qubits against the explicit permutation matrix.
    ir::Circuit c(3);
    c.cx(0, 2);
    const ComplexMatrix u = sim::circuitUnitary(c);
    // |100> (4) -> |101> (5), |110> (6) -> |111> (7); low block fixed.
    EXPECT_NEAR(std::abs(u(5, 4)), 1.0, 1e-12);
    EXPECT_NEAR(std::abs(u(7, 6)), 1.0, 1e-12);
    EXPECT_NEAR(std::abs(u(0, 0)), 1.0, 1e-12);
    EXPECT_NEAR(std::abs(u(4, 4)), 0.0, 1e-12);
}

TEST(UnitarySim, ReversedQubitOrderGate)
{
    // CX(1, 0): control is qubit 1 (LSB of the two), target qubit 0.
    ir::Circuit c(2);
    c.cx(1, 0);
    const ComplexMatrix u = sim::circuitUnitary(c);
    // |01> (1) -> |11> (3).
    EXPECT_NEAR(std::abs(u(3, 1)), 1.0, 1e-12);
    EXPECT_NEAR(std::abs(u(1, 1)), 0.0, 1e-12);
}

TEST(UnitarySim, ProductOrderMatchesGateListOrder)
{
    support::Rng rng(8);
    const ir::Circuit a = testutil::randomNativeCircuit(
        ir::GateSetKind::IbmEagle, 2, 8, rng);
    const ir::Circuit b = testutil::randomNativeCircuit(
        ir::GateSetKind::IbmEagle, 2, 8, rng);
    ir::Circuit cat(2);
    cat.append(a);
    cat.append(b);
    const ComplexMatrix expected =
        sim::circuitUnitary(b) * sim::circuitUnitary(a);
    EXPECT_LT(sim::circuitUnitary(cat).maxAbsDiff(expected), 1e-10);
}

TEST(UnitarySim, UnitaryForRandomCircuits)
{
    support::Rng rng(13);
    for (int trial = 0; trial < 5; ++trial) {
        const ir::Circuit c = testutil::randomNativeCircuit(
            ir::GateSetKind::IonQ, 4, 25, rng);
        EXPECT_TRUE(sim::circuitUnitary(c).isUnitary(1e-8));
    }
}

TEST(UnitarySim, CircuitDistanceZeroForSameCircuit)
{
    support::Rng rng(14);
    const ir::Circuit c =
        testutil::randomNativeCircuit(ir::GateSetKind::Nam, 3, 15, rng);
    EXPECT_LT(sim::circuitDistance(c, c), 1e-7);
}

TEST(UnitarySim, CircuitsEquivalentDetectsCancellation)
{
    ir::Circuit a(2);
    a.cx(0, 1);
    a.cx(0, 1);
    EXPECT_TRUE(sim::circuitsEquivalent(a, ir::Circuit(2),
                                        testutil::kExact));
}

TEST(UnitarySim, CircuitsInequivalentDetected)
{
    ir::Circuit a(2);
    a.cx(0, 1);
    EXPECT_FALSE(sim::circuitsEquivalent(a, ir::Circuit(2), 1e-3));
}

TEST(UnitarySim, ApplyGateInPlaceMatchesFullBuild)
{
    ir::Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    ComplexMatrix u = ComplexMatrix::identity(4);
    for (const ir::Gate &g : c.gates())
        sim::applyGate(u, g, 2);
    EXPECT_LT(u.maxAbsDiff(sim::circuitUnitary(c)), 1e-13);
}

TEST(UnitarySim, ThreeQubitGateKernel)
{
    // CCX flips the target only when both controls are set.
    ir::Circuit c(3);
    c.ccx(0, 1, 2);
    const ComplexMatrix u = sim::circuitUnitary(c);
    EXPECT_NEAR(std::abs(u(7, 6)), 1.0, 1e-12);
    EXPECT_NEAR(std::abs(u(6, 7)), 1.0, 1e-12);
    for (int i = 0; i < 6; ++i)
        EXPECT_NEAR(std::abs(u(static_cast<std::size_t>(i),
                               static_cast<std::size_t>(i))),
                    1.0, 1e-12);
}

} // namespace
} // namespace guoq
