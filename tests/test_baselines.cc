/** @file Tests for the fixed-sequence and RL-like baselines (Table 3). */

#include <gtest/gtest.h>

#include "baselines/fixed_sequence.h"
#include "baselines/passes.h"
#include "baselines/rl_like.h"
#include "sim/unitary_sim.h"
#include "tests/test_util.h"
#include "transpile/to_gate_set.h"
#include "workloads/standard.h"

namespace guoq {
namespace {

using Optimizer = ir::Circuit (*)(const ir::Circuit &, ir::GateSetKind);

struct BaselineCase
{
    const char *name;
    Optimizer run;
};

const BaselineCase kBaselines[] = {
    {"qiskitLike", baselines::qiskitLikeOptimize},
    {"tketLike", baselines::tketLikeOptimize},
    {"voqcLike", baselines::voqcLikeOptimize},
};

class FixedSequenceBaseline
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(FixedSequenceBaseline, PreservesSemanticsAndNeverGrows)
{
    const auto [which, set_index] = GetParam();
    const BaselineCase &bc = kBaselines[which];
    const ir::GateSetKind set =
        ir::allGateSets()[static_cast<std::size_t>(set_index)];
    support::Rng rng(static_cast<std::uint64_t>(which) * 101 +
                     static_cast<std::uint64_t>(set_index));
    const ir::Circuit c = testutil::randomNativeCircuit(set, 4, 40, rng);
    const ir::Circuit out = bc.run(c, set);
    EXPECT_LE(out.size(), c.size()) << bc.name;
    EXPECT_LT(sim::circuitDistance(c, out), testutil::kExact) << bc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FixedSequenceBaseline,
    ::testing::Combine(::testing::Range(0, 3), ::testing::Range(0, 5)));

TEST(Passes, ReduceFixpointCancelsObviousPairs)
{
    ir::Circuit c(2);
    c.h(0);
    c.h(0);
    c.cx(0, 1);
    c.cx(0, 1);
    EXPECT_EQ(baselines::reduceFixpoint(c, ir::GateSetKind::Nam).size(),
              0u);
}

TEST(Passes, CommuteAndReduceFindsHiddenCancellation)
{
    // Rz between two CXs on the control commutes away, exposing the
    // CX pair.
    ir::Circuit c(2);
    c.cx(0, 1);
    c.rz(0.7, 0);
    c.cx(0, 1);
    const ir::Circuit out =
        baselines::commuteAndReduce(c, ir::GateSetKind::Nam, 3);
    EXPECT_EQ(out.twoQubitGateCount(), 0u);
    EXPECT_LT(sim::circuitDistance(c, out), testutil::kExact);
}

TEST(Passes, FusionPassIsExact)
{
    support::Rng rng(5);
    const ir::Circuit c = testutil::randomNativeCircuit(
        ir::GateSetKind::Ibmq20, 3, 25, rng);
    const ir::Circuit out =
        baselines::fusionPass(c, ir::GateSetKind::Ibmq20);
    EXPECT_LE(out.size(), c.size());
    EXPECT_LT(sim::circuitDistance(c, out), testutil::kExact);
}

TEST(RlLike, PreservesSemantics)
{
    const ir::Circuit c =
        transpile::toGateSet(workloads::qft(4), ir::GateSetKind::Nam);
    baselines::RlLikeOptions opts;
    opts.timeBudgetSeconds = 1.0;
    const ir::Circuit out =
        baselines::rlLikeOptimize(c, ir::GateSetKind::Nam, opts);
    EXPECT_LT(sim::circuitDistance(c, out), testutil::kExact);
}

TEST(RlLike, ReducesRedundantCircuit)
{
    ir::Circuit c(2);
    for (int i = 0; i < 6; ++i)
        c.h(0);
    c.cx(0, 1);
    c.cx(0, 1);
    baselines::RlLikeOptions opts;
    opts.timeBudgetSeconds = 1.0;
    const ir::Circuit out =
        baselines::rlLikeOptimize(c, ir::GateSetKind::Nam, opts);
    EXPECT_EQ(out.size(), 0u);
}

TEST(RlLike, NeverReturnsWorse)
{
    support::Rng rng(6);
    const ir::Circuit c = testutil::randomNativeCircuit(
        ir::GateSetKind::CliffordT, 4, 40, rng);
    baselines::RlLikeOptions opts;
    opts.timeBudgetSeconds = 0.5;
    opts.objective = core::Objective::TCount;
    const ir::Circuit out =
        baselines::rlLikeOptimize(c, ir::GateSetKind::CliffordT, opts);
    EXPECT_LE(out.tGateCount(), c.tGateCount());
}

TEST(Baselines, TofWorkloadsShrinkUnderEveryBaseline)
{
    // The barenco ladder has adjacent-CCX structure every baseline
    // should at least partially simplify after transpilation.
    const ir::Circuit c = transpile::toGateSet(
        workloads::barencoTof(4), ir::GateSetKind::CliffordT);
    for (const BaselineCase &bc : kBaselines) {
        const ir::Circuit out = bc.run(c, ir::GateSetKind::CliffordT);
        EXPECT_LE(out.size(), c.size()) << bc.name;
    }
}

} // namespace
} // namespace guoq
