/**
 * @file
 * The guoq_lint rule engine (src/lint/): the comment/literal stripper,
 * every token rule against its violating and clean fixture in
 * tests/lint_fixtures/, path scoping (seam exemptions, serve-fatal
 * confinement), registration-string extraction, the docs cross-check,
 * and an end-to-end run over the real repository tree, which must be
 * clean — the same invariant CI's guoq_lint job enforces.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace guoq {
namespace {

std::string
fixture(const std::string &name)
{
    const std::string path =
        std::string(GUOQ_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::vector<std::string>
rulesIn(const std::vector<lint::Finding> &findings)
{
    std::vector<std::string> rules;
    for (const lint::Finding &f : findings)
        rules.push_back(f.rule);
    return rules;
}

bool
fires(const std::vector<lint::Finding> &findings, const std::string &rule)
{
    const std::vector<std::string> rules = rulesIn(findings);
    return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

long
countRule(const std::vector<lint::Finding> &findings,
          const std::string &rule)
{
    const std::vector<std::string> rules = rulesIn(findings);
    return std::count(rules.begin(), rules.end(), rule);
}

// --- stripping -------------------------------------------------------

TEST(LintStrip, BlanksCommentsButKeepsLineStructure)
{
    const std::string src = "int a; // std::thread here\n"
                            "/* fatal(\n"
                            "   more */ int b;\n";
    const std::string out = lint::stripForLint(src, true);
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
    EXPECT_EQ(out.find("std::thread"), std::string::npos);
    EXPECT_EQ(out.find("fatal"), std::string::npos);
    EXPECT_NE(out.find("int a;"), std::string::npos);
    EXPECT_NE(out.find("int b;"), std::string::npos);
}

TEST(LintStrip, BlanksLiteralContentOnlyWhenAsked)
{
    const std::string src = "const char *m = \"call fatal( now\";\n";
    const std::string blanked = lint::stripForLint(src, true);
    EXPECT_EQ(blanked.find("fatal"), std::string::npos);
    const std::string kept = lint::stripForLint(src, false);
    EXPECT_NE(kept.find("call fatal( now"), std::string::npos);
}

TEST(LintStrip, HandlesRawStringsAndCharLiterals)
{
    const std::string src =
        "auto r = R\"(std::rand inside raw)\";\n"
        "char c = '\\'';\n"
        "int after = 1;\n";
    const std::string out = lint::stripForLint(src, true);
    EXPECT_EQ(out.find("std::rand"), std::string::npos);
    EXPECT_NE(out.find("int after = 1;"), std::string::npos);
}

// --- token rules against the fixtures --------------------------------

TEST(LintRules, ThreadSeamFiresOutsideSeams)
{
    const auto findings = lint::lintFileContent(
        "src/qasm/parser.cc", fixture("thread_seam_bad.cc"));
    EXPECT_TRUE(fires(findings, "thread-seam"));
    // Both the construction and the detach are reported.
    EXPECT_GE(countRule(findings, "thread-seam"), 2);
}

TEST(LintRules, ThreadSeamSilentOnCleanFileAndInsideSeams)
{
    EXPECT_TRUE(lint::lintFileContent("src/qasm/parser.cc",
                                      fixture("thread_seam_ok.cc"))
                    .empty());
    // The same violating content is legal inside an approved seam.
    EXPECT_TRUE(lint::lintFileContent("src/synth/pool.cc",
                                      fixture("thread_seam_bad.cc"))
                    .empty());
    EXPECT_TRUE(lint::lintFileContent("src/serve/server.cc",
                                      fixture("thread_seam_bad.cc"))
                    .empty());
}

TEST(LintRules, ServeFatalFiresOnWorkerPath)
{
    const auto findings = lint::lintFileContent(
        "src/serve/server.cc", fixture("serve_fatal_bad.cc"));
    EXPECT_TRUE(fires(findings, "serve-fatal"));
    EXPECT_TRUE(fires(lint::lintFileContent(
                          "src/verify/checker.cc",
                          fixture("serve_fatal_bad.cc")),
                      "serve-fatal"));
}

TEST(LintRules, ServeFatalScopedToServeSynthVerify)
{
    EXPECT_TRUE(lint::lintFileContent("src/serve/server.cc",
                                      fixture("serve_fatal_ok.cc"))
                    .empty());
    // core keeps its legacy fatal() diagnostics for direct CLI use.
    EXPECT_FALSE(fires(lint::lintFileContent(
                           "src/core/optimizer.cc",
                           fixture("serve_fatal_bad.cc")),
                       "serve-fatal"));
}

TEST(LintRules, DeterminismFiresOnEveryEntropySource)
{
    const auto findings = lint::lintFileContent(
        "src/synth/qsearch.cc", fixture("determinism_bad.cc"));
    // srand, time(nullptr), random_device, std::rand: four hits.
    EXPECT_GE(countRule(findings, "determinism"), 4);
}

TEST(LintRules, DeterminismSilentOnSeededStream)
{
    EXPECT_TRUE(lint::lintFileContent("src/synth/qsearch.cc",
                                      fixture("determinism_ok.cc"))
                    .empty());
    // The rule covers src/ only; bench drivers may read the clock.
    EXPECT_TRUE(lint::lintFileContent("bench/bench_fig7.cc",
                                      fixture("determinism_bad.cc"))
                    .empty());
}

TEST(LintRules, AllocationFiresOnNakedArrayNewAndMalloc)
{
    const auto findings = lint::lintFileContent(
        "src/linalg/complex_matrix.cc", fixture("allocation_bad.cc"));
    EXPECT_GE(countRule(findings, "allocation"), 2);
    EXPECT_GT(findings.front().line, 0);
}

TEST(LintRules, AllocationAllowsOwnedBuffers)
{
    EXPECT_TRUE(lint::lintFileContent("src/linalg/complex_matrix.cc",
                                      fixture("allocation_ok.cc"))
                    .empty());
}

// --- registration extraction and the docs rule -----------------------

TEST(LintDocs, ExtractsRegistrationNames)
{
    const auto names = lint::registrationNames(fixture("docs_bad.cc"));
    EXPECT_NE(std::find(names.begin(), names.end(), "fig99/ghost"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "ghost-checker"),
              names.end());
}

TEST(LintDocs, ExtractsOptimizerNames)
{
    const std::string content =
        "void f() {\n"
        "  r.add(std::make_unique<BeamOptimizer>(\"beam\", 4));\n"
        "  info_.name = \"guoq-rewrite\";\n"
        "}\n";
    const auto names = lint::registrationNames(content);
    EXPECT_NE(std::find(names.begin(), names.end(), "beam"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "guoq-rewrite"),
              names.end());
}

TEST(LintDocs, FlagsUndocumentedNamesOnly)
{
    const std::string docs = "documented: fig1 and dense.\n";
    EXPECT_TRUE(fires(lint::lintRegistrations(
                          "bench/bench_fig99.cc", fixture("docs_bad.cc"),
                          docs),
                      "docs"));
    EXPECT_TRUE(lint::lintRegistrations("bench/bench_fig1.cc",
                                        fixture("docs_ok.cc"), docs)
                    .empty());
}

TEST(LintDocs, IgnoresNamesInsideComments)
{
    const std::string content =
        "// static CaseRegistrar kOld(\"fig0/retired\", 0);\n";
    EXPECT_TRUE(lint::registrationNames(content).empty());
}

// --- the catalog and the real tree -----------------------------------

TEST(LintCatalog, ListsEveryRule)
{
    const auto &catalog = lint::ruleCatalog();
    ASSERT_EQ(catalog.size(), 5u);
    const std::vector<std::string> expected = {
        "thread-seam", "serve-fatal", "determinism", "allocation",
        "docs"};
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(catalog[i].name, expected[i]);
}

TEST(LintTree, RealRepositoryIsClean)
{
    std::string err;
    const auto findings = lint::lintTree(GUOQ_SOURCE_DIR, &err);
    EXPECT_TRUE(err.empty()) << err;
    for (const lint::Finding &f : findings)
        ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule
                      << "] " << f.message;
}

TEST(LintTree, MissingRootReportsInsteadOfPassing)
{
    std::string err;
    const auto findings =
        lint::lintTree("/nonexistent/guoq-lint-root", &err);
    EXPECT_FALSE(findings.empty());
    EXPECT_FALSE(err.empty());
}

} // namespace
} // namespace guoq
