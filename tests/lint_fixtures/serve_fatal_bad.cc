// Violates serve-fatal: kills the process on a bad request instead of
// returning an error status.
namespace support {
[[noreturn]] void fatal(const char *msg);
}

int
handleRequest(int gates)
{
    if (gates < 0)
        support::fatal("negative gate count");
    return gates;
}
