// Clean for docs: every registered name below is listed in the docs
// text the test supplies ("fig1" and "dense").
struct CaseRegistrar
{
    CaseRegistrar(const char *, int);
};
struct CheckerInfo
{
    const char *name;
};

static CaseRegistrar kKnownCase("fig1", 0);
static const CheckerInfo kKnownChecker{"dense"};
