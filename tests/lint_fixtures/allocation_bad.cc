// Violates allocation: naked array new and malloc with no owning
// container.
#include <cstdlib>

double *
makeBuffers(int n)
{
    int *scratch = static_cast<int *>(std::malloc(sizeof(int) * 16));
    (void)scratch;
    return new double[static_cast<unsigned>(n)];
}
