// Clean for allocation: make_unique owns the array ("never new
// double[n] by hand"), plain new of a single object is allowed.
#include <memory>

std::unique_ptr<double[]>
makeBuffer(int n)
{
    return std::make_unique<double[]>(static_cast<unsigned>(n));
}
