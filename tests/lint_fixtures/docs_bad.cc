// Violates docs: registers a bench case and a checker whose names
// appear in no documentation file.
struct CaseRegistrar
{
    CaseRegistrar(const char *, int);
};
struct CheckerInfo
{
    const char *name;
};

static CaseRegistrar kGhostCase("fig99/ghost", 0);
static const CheckerInfo kGhostChecker{"ghost-checker"};
