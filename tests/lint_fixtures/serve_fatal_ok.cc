// Clean for serve-fatal: a bad request becomes an error return ("a
// fatal() here would kill every in-flight request"), not process
// death.
#include <string>

bool
handleRequest(int gates, std::string *err)
{
    if (gates < 0) {
        *err = "negative gate count";
        return false;
    }
    return true;
}
