// Clean for thread-seam: mentions threads only in comments and
// diagnostics ("std::thread belongs in a seam"), never as code.
#include <functional>

void
runInline(const std::function<void()> &task)
{
    // A real implementation would submit to synth::Pool; no thread is
    // created here.
    task();
}
