// Violates determinism: three different global/wall-clock entropy
// sources in what should be seeded-stream code.
#include <cstdlib>
#include <ctime>
#include <random>

unsigned
sampleSeed()
{
    std::srand(static_cast<unsigned>(std::time(nullptr)));
    std::random_device entropy;
    return entropy() ^ static_cast<unsigned>(std::rand());
}
