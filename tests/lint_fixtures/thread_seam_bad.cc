// Violates thread-seam: spawns and detaches a thread outside the
// approved concurrency seams.
#include <thread>

void
fireAndForget()
{
    std::thread worker([] {});
    worker.detach();
}
