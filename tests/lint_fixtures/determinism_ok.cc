// Clean for determinism: all randomness flows from an explicit seed
// (std::rand and time(nullptr) appear only in this comment).
#include <cstdint>

std::uint64_t
nextDraw(std::uint64_t &state)
{
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
}
