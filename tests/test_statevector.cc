/** @file Tests for the statevector simulator. */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/statevector.h"
#include "sim/unitary_sim.h"
#include "tests/test_util.h"

namespace guoq {
namespace {

TEST(StateVector, StartsInAllZeros)
{
    sim::StateVector s(3);
    EXPECT_EQ(s.dim(), 8u);
    EXPECT_NEAR(s.probability(0), 1.0, 1e-12);
}

TEST(StateVector, HadamardCreatesUniformSuperposition)
{
    ir::Circuit c(1);
    c.h(0);
    const sim::StateVector s = sim::runCircuit(c);
    EXPECT_NEAR(s.probability(0), 0.5, 1e-12);
    EXPECT_NEAR(s.probability(1), 0.5, 1e-12);
}

TEST(StateVector, BellState)
{
    ir::Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    const sim::StateVector s = sim::runCircuit(c);
    EXPECT_NEAR(s.probability(0), 0.5, 1e-12); // |00>
    EXPECT_NEAR(s.probability(3), 0.5, 1e-12); // |11>
    EXPECT_NEAR(s.probability(1), 0.0, 1e-12);
    EXPECT_NEAR(s.probability(2), 0.0, 1e-12);
}

TEST(StateVector, XSetsQubit0AsMsb)
{
    ir::Circuit c(2);
    c.x(0);
    const sim::StateVector s = sim::runCircuit(c);
    EXPECT_NEAR(s.probability(2), 1.0, 1e-12); // |10>
}

TEST(StateVector, MatchesUnitarySimulatorColumnZero)
{
    support::Rng rng(4);
    for (int trial = 0; trial < 5; ++trial) {
        const ir::Circuit c = testutil::randomNativeCircuit(
            ir::GateSetKind::IbmEagle, 4, 30, rng);
        const sim::StateVector s = sim::runCircuit(c);
        const linalg::ComplexMatrix u = sim::circuitUnitary(c);
        for (std::size_t i = 0; i < s.dim(); ++i)
            EXPECT_NEAR(std::abs(s.amplitudes()[i] - u(i, 0)), 0, 1e-9);
    }
}

TEST(StateVector, NormPreserved)
{
    support::Rng rng(5);
    const ir::Circuit c =
        testutil::randomNativeCircuit(ir::GateSetKind::IonQ, 5, 60, rng);
    const sim::StateVector s = sim::runCircuit(c);
    double total = 0;
    for (std::size_t i = 0; i < s.dim(); ++i)
        total += s.probability(i);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(StateVector, OverlapOfIdenticalStatesIsOne)
{
    ir::Circuit c(3);
    c.h(0);
    c.cx(0, 1);
    c.rz(0.7, 2);
    const sim::StateVector a = sim::runCircuit(c);
    const sim::StateVector b = sim::runCircuit(c);
    EXPECT_NEAR(a.overlap(b), 1.0, 1e-10);
}

TEST(StateVector, OverlapOfOrthogonalStatesIsZero)
{
    ir::Circuit cx(1);
    cx.x(0);
    const sim::StateVector zero = sim::runCircuit(ir::Circuit(1));
    const sim::StateVector one = sim::runCircuit(cx);
    EXPECT_NEAR(zero.overlap(one), 0.0, 1e-12);
}

TEST(StateVector, GhzHasTwoOutcomes)
{
    ir::Circuit c(4);
    c.h(0);
    for (int q = 1; q < 4; ++q)
        c.cx(q - 1, q);
    const sim::StateVector s = sim::runCircuit(c);
    EXPECT_NEAR(s.probability(0), 0.5, 1e-10);
    EXPECT_NEAR(s.probability(15), 0.5, 1e-10);
}

TEST(StateVector, LargerRegisterRuns)
{
    // 16 qubits: beyond the unitary simulator's comfort zone but fine
    // for the statevector.
    ir::Circuit c(16);
    for (int q = 0; q < 16; ++q)
        c.h(q);
    const sim::StateVector s = sim::runCircuit(c);
    EXPECT_NEAR(s.probability(12345), 1.0 / 65536.0, 1e-12);
}

} // namespace
} // namespace guoq
