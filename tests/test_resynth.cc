/** @file Tests for the unified resynthesis front end. */

#include <gtest/gtest.h>

#include "sim/unitary_sim.h"
#include "synth/resynth.h"
#include "tests/test_util.h"
#include "transpile/to_gate_set.h"

namespace guoq {
namespace {

synth::ResynthOptions
optionsFor(ir::GateSetKind set, double eps = 1e-6, double seconds = 15)
{
    synth::ResynthOptions o;
    o.targetSet = set;
    o.epsilon = eps;
    o.deadline = support::Deadline::in(seconds);
    return o;
}

class ResynthPerSet : public ::testing::TestWithParam<int>
{
};

TEST_P(ResynthPerSet, RedundantPairDrainsToNothingOrLess)
{
    const ir::GateSetKind set =
        ir::allGateSets()[static_cast<std::size_t>(GetParam())];
    support::Rng rng(11);
    // A subcircuit whose entanglers cancel: resynthesis must find a
    // 2q-free (or at least smaller) realization.
    ir::Circuit generic(2);
    generic.cx(0, 1);
    generic.cx(0, 1);
    generic.t(0);
    const ir::Circuit sub = transpile::toGateSet(generic, set);
    const synth::ResynthResult r =
        synth::resynthesize(sub, optionsFor(set), rng);
    ASSERT_TRUE(r.success) << ir::gateSetName(set);
    EXPECT_EQ(r.circuit.twoQubitGateCount(), 0u) << ir::gateSetName(set);
    EXPECT_TRUE(transpile::allNative(r.circuit, set));
    EXPECT_LT(sim::circuitDistance(sub, r.circuit), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(AllSets, ResynthPerSet, ::testing::Range(0, 5));

TEST(Resynth, RespectsEpsilonBudget)
{
    support::Rng rng(12);
    ir::Circuit sub(2);
    sub.h(0);
    sub.cx(0, 1);
    sub.rz(0.9, 1);
    const synth::ResynthResult r = synth::resynthesize(
        sub, optionsFor(ir::GateSetKind::IbmEagle, 1e-6), rng);
    ASSERT_TRUE(r.success);
    EXPECT_LE(r.distance, 1e-6);
    EXPECT_LE(sim::circuitDistance(sub, r.circuit), 1e-6);
}

TEST(Resynth, RefusesOversizedSubcircuits)
{
    support::Rng rng(13);
    ir::Circuit sub(5);
    sub.cx(0, 1);
    sub.cx(2, 3);
    sub.cx(3, 4);
    synth::ResynthOptions o = optionsFor(ir::GateSetKind::Nam);
    o.maxQubits = 3;
    const synth::ResynthResult r = synth::resynthesize(sub, o, rng);
    EXPECT_FALSE(r.success);
}

TEST(Resynth, ReducesEntanglersInRedundantThreeQubitBlock)
{
    // ZZ-rotation written with 4 CXs where 2 suffice.
    support::Rng rng(14);
    ir::Circuit sub(2);
    sub.cx(0, 1);
    sub.rz(0.4, 1);
    sub.cx(0, 1);
    sub.cx(0, 1);
    sub.rz(0.3, 1);
    sub.cx(0, 1);
    const synth::ResynthResult r = synth::resynthesize(
        sub, optionsFor(ir::GateSetKind::Nam), rng);
    ASSERT_TRUE(r.success);
    EXPECT_LE(r.circuit.twoQubitGateCount(), 2u);
    EXPECT_LT(sim::circuitDistance(sub, r.circuit), 1e-5);
}

TEST(Resynth, IonqOutputAvoidsCx)
{
    support::Rng rng(15);
    ir::Circuit generic(2);
    generic.h(0);
    generic.cx(0, 1);
    const ir::Circuit sub =
        transpile::toGateSet(generic, ir::GateSetKind::IonQ);
    const synth::ResynthResult r = synth::resynthesize(
        sub, optionsFor(ir::GateSetKind::IonQ), rng);
    ASSERT_TRUE(r.success);
    EXPECT_TRUE(transpile::allNative(r.circuit, ir::GateSetKind::IonQ));
    EXPECT_EQ(r.circuit.countOf(ir::GateKind::CX), 0u);
}

TEST(Resynth, CliffordTSeededShrink)
{
    support::Rng rng(16);
    ir::Circuit sub(2);
    sub.t(0);
    sub.t(0); // two T = S, but only deletion-based shrink runs: the
    sub.cx(0, 1);
    sub.cx(0, 1); // CX pair must vanish
    const synth::ResynthResult r = synth::resynthesize(
        sub, optionsFor(ir::GateSetKind::CliffordT), rng);
    ASSERT_TRUE(r.success);
    EXPECT_EQ(r.circuit.twoQubitGateCount(), 0u);
    EXPECT_LT(sim::circuitDistance(sub, r.circuit), 1e-5);
}

TEST(Resynth, UnchangedResultReportsZeroDistance)
{
    // A single CX cannot shrink: the call either fails or reports the
    // unchanged circuit at zero charged distance.
    support::Rng rng(17);
    ir::Circuit sub(2);
    sub.cx(0, 1);
    const synth::ResynthResult r = synth::resynthesize(
        sub, optionsFor(ir::GateSetKind::Nam, 1e-6, 8), rng);
    if (r.success && r.circuit.gates() == sub.gates()) {
        EXPECT_EQ(r.distance, 0.0);
    }
}

} // namespace
} // namespace guoq
