/** @file Tests for the phase-polynomial (PyZX-profile) optimizer. */

#include <gtest/gtest.h>

#include "baselines/phase_poly.h"
#include "sim/unitary_sim.h"
#include "tests/test_util.h"
#include "transpile/to_gate_set.h"
#include "workloads/standard.h"

namespace guoq {
namespace {

TEST(PhasePoly, MergesRotationsAcrossCxStructure)
{
    // Rz on q1, conjugated through a CX pair, then another Rz on the
    // same parity: they merge even though they are far apart.
    ir::Circuit c(2);
    c.rz(0.25, 1);
    c.cx(0, 1);
    c.cx(0, 1);
    c.rz(0.5, 1);
    const ir::Circuit out =
        baselines::phasePolyOptimize(c, ir::GateSetKind::Nam);
    EXPECT_EQ(out.countOf(ir::GateKind::Rz), 1u);
    EXPECT_EQ(out.twoQubitGateCount(), 2u);
    EXPECT_LT(sim::circuitDistance(c, out), testutil::kExact);
}

TEST(PhasePoly, MergesTGatesInToffoliChains)
{
    // The classic Nam-style win: adjacent CCX decompositions share
    // parities, so T gates merge across the chain.
    ir::Circuit chain(3);
    chain.ccx(0, 1, 2);
    chain.ccx(0, 1, 2);
    const ir::Circuit c =
        transpile::toGateSet(chain, ir::GateSetKind::CliffordT);
    baselines::PhasePolyStats stats;
    const ir::Circuit out = baselines::phasePolyOptimize(
        c, ir::GateSetKind::CliffordT, &stats);
    EXPECT_LT(out.tGateCount(), c.tGateCount());
    EXPECT_GT(stats.rotationsMerged, 0);
    EXPECT_EQ(out.twoQubitGateCount(), c.twoQubitGateCount());
    EXPECT_LT(sim::circuitDistance(c, out), testutil::kExact);
}

TEST(PhasePoly, CxCountAlwaysPreserved)
{
    // The PyZX profile (Fig. 12): T goes down, CX never changes.
    support::Rng rng(3);
    for (int trial = 0; trial < 6; ++trial) {
        const ir::Circuit c = testutil::randomNativeCircuit(
            ir::GateSetKind::CliffordT, 4, 40, rng);
        const ir::Circuit out = baselines::phasePolyOptimize(
            c, ir::GateSetKind::CliffordT);
        EXPECT_EQ(out.twoQubitGateCount(), c.twoQubitGateCount());
        EXPECT_LE(out.tGateCount(), c.tGateCount());
        EXPECT_LT(sim::circuitDistance(c, out), testutil::kExact);
    }
}

TEST(PhasePoly, BarriersPreventUnsoundMerging)
{
    // An H between two Rz's on the same wire re-mints the parity: they
    // must NOT merge.
    ir::Circuit c(1);
    c.rz(0.25, 0);
    c.h(0);
    c.rz(0.5, 0);
    const ir::Circuit out =
        baselines::phasePolyOptimize(c, ir::GateSetKind::Nam);
    EXPECT_EQ(out.countOf(ir::GateKind::Rz), 2u);
    EXPECT_LT(sim::circuitDistance(c, out), testutil::kExact);
}

TEST(PhasePoly, XGateFlipsRotationSign)
{
    // Rz(θ) X Rz(θ) X: the second rotation acts on the flipped wire,
    // contributing -θ — net diagonal is identity up to phase on the
    // parity term, leaving a single merged rotation of angle 0.
    ir::Circuit c(1);
    c.rz(0.7, 0);
    c.x(0);
    c.rz(0.7, 0);
    c.x(0);
    const ir::Circuit out =
        baselines::phasePolyOptimize(c, ir::GateSetKind::Nam);
    EXPECT_EQ(out.countOf(ir::GateKind::Rz), 0u);
    EXPECT_LT(sim::circuitDistance(c, out), testutil::kExact);
}

TEST(PhasePoly, SwapTracksParities)
{
    ir::Circuit c(2);
    c.rz(0.3, 0);
    c.swap(0, 1);
    c.rz(0.4, 1); // same logical wire after the swap: merges
    const ir::Circuit out =
        baselines::phasePolyOptimize(c, ir::GateSetKind::Nam);
    EXPECT_EQ(out.countOf(ir::GateKind::Rz), 1u);
    EXPECT_LT(sim::circuitDistance(c, out), testutil::kExact);
}

TEST(PhasePoly, CancellingRotationsVanish)
{
    ir::Circuit c(2);
    c.t(0);
    c.cx(0, 1);
    c.tdg(0); // same parity as the T (control untouched by CX)
    const ir::Circuit out =
        baselines::phasePolyOptimize(c, ir::GateSetKind::CliffordT);
    EXPECT_EQ(out.tGateCount(), 0u);
    EXPECT_LT(sim::circuitDistance(c, out), testutil::kExact);
}

TEST(PhasePoly, SemanticsPreservedOnWorkloads)
{
    const ir::Circuit c = transpile::toGateSet(
        workloads::cuccaroAdder(2), ir::GateSetKind::CliffordT);
    const ir::Circuit out = baselines::phasePolyOptimize(
        c, ir::GateSetKind::CliffordT);
    EXPECT_LE(out.tGateCount(), c.tGateCount());
    EXPECT_LT(sim::circuitDistance(c, out), testutil::kExact);
}

TEST(PhasePoly, Ibmq20EmitsU1)
{
    ir::Circuit c(1);
    c.u1(0.2, 0);
    c.u1(0.3, 0);
    const ir::Circuit out =
        baselines::phasePolyOptimize(c, ir::GateSetKind::Ibmq20);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out.gate(0).kind, ir::GateKind::U1);
    EXPECT_NEAR(out.gate(0).params[0], 0.5, 1e-12);
}

} // namespace
} // namespace guoq
