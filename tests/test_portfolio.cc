/** @file Tests for the parallel portfolio optimizer. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/portfolio.h"
#include "support/timer.h"
#include "sim/unitary_sim.h"
#include "tests/test_util.h"
#include "transpile/to_gate_set.h"
#include "workloads/standard.h"

namespace guoq {
namespace {

core::PortfolioConfig
iterConfig(int threads, long iterations, double eps = 0)
{
    core::PortfolioConfig cfg;
    cfg.threads = threads;
    cfg.base.epsilonTotal = eps;
    cfg.base.timeBudgetSeconds = 60.0;
    cfg.base.maxIterations = iterations;
    cfg.base.seed = 11;
    return cfg;
}

ir::Circuit
testCircuit(std::uint64_t seed = 1, int gates = 30)
{
    support::Rng rng(seed);
    return testutil::randomNativeCircuit(ir::GateSetKind::Nam, 4, gates,
                                         rng);
}

TEST(Portfolio, SingleThreadReproducesOptimizeExactly)
{
    const ir::Circuit c = testCircuit();
    const core::PortfolioConfig cfg = iterConfig(1, 300);
    const core::PortfolioResult p =
        core::optimizePortfolio(c, ir::GateSetKind::Nam, cfg);
    const core::GuoqResult r =
        core::optimize(c, ir::GateSetKind::Nam, cfg.base);
    EXPECT_EQ(p.best.toString(), r.best.toString());
    EXPECT_EQ(p.errorBound, r.errorBound);
    EXPECT_EQ(p.stats.iterations, r.stats.iterations);
    EXPECT_EQ(p.stats.accepted, r.stats.accepted);
    EXPECT_EQ(p.stats.rejected, r.stats.rejected);
    EXPECT_EQ(p.winningWorker, 0);
    ASSERT_EQ(p.workers.size(), 1u);
    EXPECT_EQ(p.workers[0].seed, cfg.base.seed);
}

TEST(Portfolio, NeverWorseThanAnySingleSeed)
{
    const ir::Circuit c = testCircuit(2, 40);
    const core::CostFunction cost(core::Objective::TwoQubitCount,
                                  ir::GateSetKind::Nam);
    const int threads = 4;
    const core::PortfolioConfig cfg = iterConfig(threads, 200);
    const core::PortfolioResult p =
        core::optimizePortfolio(c, ir::GateSetKind::Nam, cfg);

    // Each worker's single-seed run, replayed serially.
    double worst = 0;
    for (int w = 0; w < threads; ++w) {
        core::GuoqConfig single = cfg.base;
        single.seed = core::portfolioWorkerSeed(cfg.base.seed, w);
        const core::GuoqResult r =
            core::optimize(c, ir::GateSetKind::Nam, single);
        worst = std::max(worst, cost(r.best));
    }
    EXPECT_LE(p.bestCost, worst);
    EXPECT_LE(p.bestCost, cost(c));
    EXPECT_EQ(cost(p.best), p.bestCost);
}

TEST(Portfolio, MergedStatsSumPerWorkerIterations)
{
    const ir::Circuit c = testCircuit(3);
    const int threads = 3;
    const long iterations = 150;
    const core::PortfolioResult p = core::optimizePortfolio(
        c, ir::GateSetKind::Nam, iterConfig(threads, iterations));
    ASSERT_EQ(p.workers.size(), static_cast<std::size_t>(threads));
    long sum = 0;
    for (const core::PortfolioWorkerReport &w : p.workers) {
        EXPECT_EQ(w.stats.iterations, iterations);
        sum += w.stats.iterations;
    }
    EXPECT_EQ(p.stats.iterations, sum);
    EXPECT_EQ(p.stats.iterations, threads * iterations);
}

TEST(Portfolio, ExposesPerWorkerWallTimeAndSingleThreadTrace)
{
    const ir::Circuit c = testCircuit();

    // threads == 1: the single optimize() run's trace passes through,
    // and the one worker reports its wall time.
    core::PortfolioConfig cfg = iterConfig(1, 200);
    cfg.base.recordTrace = true;
    const core::PortfolioResult p =
        core::optimizePortfolio(c, ir::GateSetKind::Nam, cfg);
    EXPECT_FALSE(p.trace.empty());
    ASSERT_EQ(p.workers.size(), 1u);
    EXPECT_GE(p.workers[0].wallSeconds, 0.0);

    // threads > 1: every worker reports a wall time, and the per-
    // worker traces merge into one portfolio-level trajectory (see
    // MultiWorkerTraceIsMergedAndMonotone).
    core::PortfolioConfig multi = iterConfig(3, 100);
    multi.base.recordTrace = true;
    const core::PortfolioResult q =
        core::optimizePortfolio(c, ir::GateSetKind::Nam, multi);
    EXPECT_FALSE(q.trace.empty());
    ASSERT_EQ(q.workers.size(), 3u);
    for (const core::PortfolioWorkerReport &w : q.workers)
        EXPECT_GE(w.wallSeconds, 0.0);
}

TEST(Portfolio, MultiWorkerTraceIsMergedAndMonotone)
{
    const ir::Circuit c = testCircuit(6, 40);
    const core::CostFunction cost(core::Objective::TwoQubitCount,
                                  ir::GateSetKind::Nam);
    core::PortfolioConfig cfg = iterConfig(3, 250);
    cfg.base.recordTrace = true;
    const core::PortfolioResult p =
        core::optimizePortfolio(c, ir::GateSetKind::Nam, cfg);

    // The merged trace starts at the input circuit at t = 0 and every
    // later point is a strict portfolio-wide improvement, time-sorted.
    ASSERT_FALSE(p.trace.empty());
    EXPECT_DOUBLE_EQ(p.trace.front().cost, cost(c));
    EXPECT_DOUBLE_EQ(p.trace.front().seconds, 0.0);
    EXPECT_EQ(p.trace.front().gateCount, c.gateCount());
    for (std::size_t i = 1; i < p.trace.size(); ++i) {
        EXPECT_LT(p.trace[i].cost, p.trace[i - 1].cost);
        EXPECT_GE(p.trace[i].seconds, p.trace[i - 1].seconds);
    }
    // The trajectory ends at the returned best cost.
    EXPECT_DOUBLE_EQ(p.trace.back().cost, p.bestCost);
}

TEST(Portfolio, HighThreadCountStressKeepsInvariants)
{
    // Satellite of the epoch/atomic fast-path rework: at threads >= 8
    // the sliced time-budget exchange must still uphold every result
    // invariant (monotone global best, per-worker consistency, eps
    // accounting).
    const ir::Circuit c = testCircuit(7, 60);
    const double eps = 1e-5;
    const core::CostFunction cost(core::Objective::TwoQubitCount,
                                  ir::GateSetKind::Nam);
    core::PortfolioConfig cfg;
    cfg.threads = 8;
    cfg.base.epsilonTotal = eps;
    cfg.base.timeBudgetSeconds = 1.0;
    cfg.syncIntervalSeconds = 0.05; // many exchanges, small slices
    cfg.base.seed = 23;
    support::Timer timer;
    const core::PortfolioResult p =
        core::optimizePortfolio(c, ir::GateSetKind::Nam, cfg);
    EXPECT_LT(timer.seconds(), 30.0);

    EXPECT_DOUBLE_EQ(cost(p.best), p.bestCost);
    EXPECT_LE(p.bestCost, cost(c));
    EXPECT_LE(p.errorBound, eps);
    EXPECT_GE(p.winningWorker, 0);
    EXPECT_LT(p.winningWorker, cfg.threads);
    ASSERT_EQ(p.workers.size(), 8u);
    long total_iterations = 0;
    for (const core::PortfolioWorkerReport &w : p.workers) {
        // The global best is at least as good as what every worker
        // ended with (each worker offers its final circuit).
        EXPECT_GE(w.finalCost, p.bestCost);
        EXPECT_LE(w.errorBound, eps);
        total_iterations += w.stats.iterations;
    }
    EXPECT_EQ(p.stats.iterations, total_iterations);
    EXPECT_GT(p.stats.iterations, 0);
}

TEST(Portfolio, WorkerSeedsAreDistinctAndStable)
{
    std::set<std::uint64_t> seeds;
    for (int w = 0; w < 16; ++w)
        seeds.insert(core::portfolioWorkerSeed(42, w));
    EXPECT_EQ(seeds.size(), 16u);
    EXPECT_EQ(core::portfolioWorkerSeed(42, 0), 42u);
    EXPECT_EQ(core::portfolioWorkerSeed(42, 5),
              core::portfolioWorkerSeed(42, 5));
}

TEST(Portfolio, RespectsEpsilonBudgetAcrossWorkers)
{
    const ir::Circuit c = testCircuit(4, 35);
    const double eps = 1e-5;
    core::PortfolioConfig cfg = iterConfig(3, 300, eps);
    const core::PortfolioResult p =
        core::optimizePortfolio(c, ir::GateSetKind::Nam, cfg);
    EXPECT_LE(p.errorBound, eps);
    EXPECT_LE(sim::circuitDistance(c, p.best), eps + testutil::kExact);
    for (const core::PortfolioWorkerReport &w : p.workers)
        EXPECT_LE(w.errorBound, eps);
}

TEST(Portfolio, TimeBudgetModeFinishesAndImproves)
{
    // Sliced time-budget mode with best-exchange on: finishes inside
    // the wall-clock budget and never returns worse than the input.
    ir::Circuit c(2);
    for (int i = 0; i < 4; ++i)
        c.h(0);
    c.cx(0, 1);
    c.cx(0, 1);
    c.x(1);
    c.x(1);
    core::PortfolioConfig cfg;
    cfg.threads = 2;
    cfg.base.timeBudgetSeconds = 1.0;
    cfg.syncIntervalSeconds = 0.2;
    cfg.base.seed = 7;
    support::Timer timer;
    const core::PortfolioResult p =
        core::optimizePortfolio(c, ir::GateSetKind::Nam, cfg);
    EXPECT_LT(timer.seconds(), 10.0);
    EXPECT_EQ(p.best.size(), 0u);
    EXPECT_EQ(p.errorBound, 0.0);
    EXPECT_GT(p.stats.iterations, 0);
}

} // namespace
} // namespace guoq
