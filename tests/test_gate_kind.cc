/** @file Tests for the gate vocabulary (ir::GateKind). */

#include <gtest/gtest.h>

#include <cmath>

#include "ir/gate_kind.h"
#include "linalg/unitary.h"

namespace guoq {
namespace {

std::vector<ir::GateKind>
allKinds()
{
    std::vector<ir::GateKind> out;
    for (int k = 0; k < static_cast<int>(ir::GateKind::NumKinds); ++k)
        out.push_back(static_cast<ir::GateKind>(k));
    return out;
}

class EveryGateKind : public ::testing::TestWithParam<ir::GateKind>
{
};

TEST_P(EveryGateKind, MatrixIsUnitaryAndProperlySized)
{
    const ir::GateKind kind = GetParam();
    std::vector<double> params(
        static_cast<std::size_t>(ir::gateParamCount(kind)), 0.37);
    const linalg::ComplexMatrix u = ir::gateMatrix(kind, params);
    const std::size_t dim = std::size_t{1} << ir::gateArity(kind);
    EXPECT_EQ(u.rows(), dim);
    EXPECT_EQ(u.cols(), dim);
    EXPECT_TRUE(u.isUnitary());
}

TEST_P(EveryGateKind, NameRoundTrips)
{
    const ir::GateKind kind = GetParam();
    ir::GateKind back;
    ASSERT_TRUE(ir::gateKindFromName(ir::gateName(kind), &back));
    EXPECT_EQ(back, kind);
}

INSTANTIATE_TEST_SUITE_P(
    All, EveryGateKind, ::testing::ValuesIn(allKinds()),
    [](const ::testing::TestParamInfo<ir::GateKind> &info) {
        return ir::gateName(info.param);
    });

TEST(GateKind, ArityValues)
{
    EXPECT_EQ(ir::gateArity(ir::GateKind::H), 1);
    EXPECT_EQ(ir::gateArity(ir::GateKind::CX), 2);
    EXPECT_EQ(ir::gateArity(ir::GateKind::Rxx), 2);
    EXPECT_EQ(ir::gateArity(ir::GateKind::CCX), 3);
}

TEST(GateKind, ParamCounts)
{
    EXPECT_EQ(ir::gateParamCount(ir::GateKind::X), 0);
    EXPECT_EQ(ir::gateParamCount(ir::GateKind::Rz), 1);
    EXPECT_EQ(ir::gateParamCount(ir::GateKind::U2), 2);
    EXPECT_EQ(ir::gateParamCount(ir::GateKind::U3), 3);
}

TEST(GateKind, UnknownNameRejected)
{
    ir::GateKind out;
    EXPECT_FALSE(ir::gateKindFromName("frobnicate", &out));
}

TEST(GateKind, TwoQubitPredicate)
{
    EXPECT_TRUE(ir::isTwoQubitGate(ir::GateKind::CX));
    EXPECT_TRUE(ir::isTwoQubitGate(ir::GateKind::Rxx));
    EXPECT_FALSE(ir::isTwoQubitGate(ir::GateKind::H));
    EXPECT_FALSE(ir::isTwoQubitGate(ir::GateKind::CCX));
}

TEST(GateKind, TGatePredicateCountsBothDirections)
{
    EXPECT_TRUE(ir::isTGate(ir::GateKind::T));
    EXPECT_TRUE(ir::isTGate(ir::GateKind::Tdg));
    EXPECT_FALSE(ir::isTGate(ir::GateKind::S));
}

TEST(GateKind, PaperExample31TMatrix)
{
    // Example 3.1: U_T = diag(1, e^{iπ/4}).
    const linalg::ComplexMatrix t = ir::gateMatrix(ir::GateKind::T, {});
    EXPECT_NEAR(std::abs(t(0, 0) - linalg::Complex(1, 0)), 0, 1e-12);
    EXPECT_NEAR(std::abs(t(1, 1) - std::polar(1.0, M_PI / 4)), 0, 1e-12);
    EXPECT_NEAR(std::abs(t(0, 1)), 0, 1e-12);
}

TEST(GateKind, PaperExample31CxMatrix)
{
    // Example 3.1: U_CX has the |10> <-> |11> swap block.
    const linalg::ComplexMatrix cx = ir::gateMatrix(ir::GateKind::CX, {});
    EXPECT_NEAR(std::abs(cx(2, 3) - linalg::Complex(1, 0)), 0, 1e-12);
    EXPECT_NEAR(std::abs(cx(3, 2) - linalg::Complex(1, 0)), 0, 1e-12);
    EXPECT_NEAR(std::abs(cx(0, 0) - linalg::Complex(1, 0)), 0, 1e-12);
    EXPECT_NEAR(std::abs(cx(2, 2)), 0, 1e-12);
}

TEST(GateKind, AlgebraicIdentities)
{
    using ir::GateKind;
    // S = T², Z = S², SX² = X.
    const auto t = ir::gateMatrix(GateKind::T, {});
    const auto s = ir::gateMatrix(GateKind::S, {});
    const auto z = ir::gateMatrix(GateKind::Z, {});
    const auto sx = ir::gateMatrix(GateKind::SX, {});
    const auto x = ir::gateMatrix(GateKind::X, {});
    EXPECT_LT((t * t).maxAbsDiff(s), 1e-12);
    EXPECT_LT((s * s).maxAbsDiff(z), 1e-12);
    EXPECT_LT((sx * sx).maxAbsDiff(x), 1e-12);
}

TEST(GateKind, InverseIdentities)
{
    using ir::GateKind;
    const auto t = ir::gateMatrix(GateKind::T, {});
    const auto tdg = ir::gateMatrix(GateKind::Tdg, {});
    EXPECT_LT((t * tdg).maxAbsDiff(linalg::ComplexMatrix::identity(2)),
              1e-12);
    const auto s = ir::gateMatrix(GateKind::S, {});
    const auto sdg = ir::gateMatrix(GateKind::Sdg, {});
    EXPECT_LT((s * sdg).maxAbsDiff(linalg::ComplexMatrix::identity(2)),
              1e-12);
}

TEST(GateKind, RotationComposition)
{
    // Rz(a) Rz(b) = Rz(a+b) exactly.
    const auto a = ir::gateMatrix(ir::GateKind::Rz, {0.4});
    const auto b = ir::gateMatrix(ir::GateKind::Rz, {1.1});
    const auto ab = ir::gateMatrix(ir::GateKind::Rz, {1.5});
    EXPECT_LT((a * b).maxAbsDiff(ab), 1e-12);
}

TEST(GateKind, U2IsU3WithPiOver2)
{
    const auto u2 = ir::gateMatrix(ir::GateKind::U2, {0.3, 0.9});
    const auto u3 = ir::gateMatrix(ir::GateKind::U3, {M_PI / 2, 0.3, 0.9});
    EXPECT_LT(u2.maxAbsDiff(u3), 1e-12);
}

TEST(GateKind, CpDiagonal)
{
    const auto cp = ir::gateMatrix(ir::GateKind::CP, {0.7});
    EXPECT_NEAR(std::abs(cp(3, 3) - std::polar(1.0, 0.7)), 0, 1e-12);
    EXPECT_NEAR(std::abs(cp(0, 0) - linalg::Complex(1, 0)), 0, 1e-12);
    EXPECT_NEAR(std::abs(cp(1, 1) - linalg::Complex(1, 0)), 0, 1e-12);
    EXPECT_NEAR(std::abs(cp(2, 2) - linalg::Complex(1, 0)), 0, 1e-12);
}

} // namespace
} // namespace guoq
