/**
 * @file
 * Fig. 1 (and Table 3): GUOQ vs the seven state-of-the-art optimizers
 * on the ibmq20 gate set, 2-qubit-gate reduction, approximate tools
 * allowed ε. Registers the Table 3 taxonomy and the Fig. 1
 * better/match/worse comparison as cases against the unified harness.
 *
 * Tool stand-ins (see DESIGN.md): Qiskit/tket/VOQC → fixed-sequence
 * pass pipelines; BQSKit → partition+resynthesize; QUESO/Quartz →
 * MaxBeam over exact rewrites (different beam widths); Quarl →
 * ε-greedy one-step-lookahead policy.
 */

#include <cstdio>

#include "baselines/beam_search.h"
#include "baselines/fixed_sequence.h"
#include "baselines/partition_resynth.h"
#include "baselines/rl_like.h"
#include "bench/harness.h"
#include "bench/registry.h"
#include "support/table.h"

namespace {

using namespace guoq;
using namespace guoq::bench;

void
runTable3(CaseContext &ctx)
{
    if (ctx.pretty())
        std::printf("=== Table 3: implemented optimizer taxonomy ===\n\n");
    struct Entry
    {
        const char *tool;
        bool superoptimizer;
        const char *approach;
    };
    const Entry entries[] = {
        {"qiskit-like", false, "fixed sequence of passes"},
        {"tket-like", false, "fixed sequence of passes"},
        {"voqc-like", false, "fixed sequence of passes"},
        {"bqskit-like", true, "partition + resynthesize"},
        {"queso-like", true, "beam search + rewrite rules"},
        {"quartz-like", true, "beam search + rewrite rules"},
        {"quarl-like", true, "greedy policy + rewrite rules"},
    };
    support::TextTable tax({"tool", "superoptimizer", "approach"});
    for (const Entry &e : entries) {
        tax.addRow({e.tool, e.superoptimizer ? "yes" : "no", e.approach});
        CaseResult row;
        row.benchmark = "*";
        row.tool = e.tool;
        row.metric = "superoptimizer";
        row.value = e.superoptimizer ? 1 : 0;
        ctx.record(std::move(row));
    }
    if (ctx.pretty())
        tax.print();
}

void
runFig1(CaseContext &ctx)
{
    const ir::GateSetKind set = ir::GateSetKind::Ibmq20;
    const double budget = ctx.budget(3.0);
    const core::Objective obj = core::Objective::TwoQubitCount;

    if (ctx.pretty())
        std::printf("\n=== Fig. 1: GUOQ vs state-of-the-art "
                    "(ibmq20, 2q reduction, eps allowed) ===\n\n");

    const auto suite = benchSuiteFor(set, suiteCap(ctx.opts(), 12));

    auto beamTool = [set, obj, budget](std::size_t width) {
        return [set, obj, budget, width](const ir::Circuit &c,
                                         std::uint64_t seed) {
            baselines::BeamOptions o;
            o.objective = obj;
            o.epsilonTotal = 0; // QUESO/Quartz are exact
            o.timeBudgetSeconds = budget;
            o.beamWidth = width;
            o.seed = seed;
            return baselines::beamSearchOptimize(c, set, o).best;
        };
    };

    const std::vector<Tool> tools{
        {"qiskit", [set](const ir::Circuit &c, std::uint64_t) {
             return baselines::qiskitLikeOptimize(c, set);
         }},
        {"tket", [set](const ir::Circuit &c, std::uint64_t) {
             return baselines::tketLikeOptimize(c, set);
         }},
        {"voqc", [set](const ir::Circuit &c, std::uint64_t) {
             return baselines::voqcLikeOptimize(c, set);
         }},
        {"bqskit", [set, obj, budget](const ir::Circuit &c,
                                      std::uint64_t seed) {
             return baselines::partitionResynth(c, set, obj, 1e-5,
                                                budget, seed)
                 .circuit;
         }},
        {"queso", beamTool(32)},
        {"quartz", beamTool(128)},
        {"quarl", [set, obj, budget](const ir::Circuit &c,
                                     std::uint64_t seed) {
             baselines::RlLikeOptions o;
             o.objective = obj;
             o.timeBudgetSeconds = budget;
             o.seed = seed;
             return baselines::rlLikeOptimize(c, set, o);
         }},
    };

    GuoqSpec spec;
    spec.set = set;
    spec.baseBudgetSeconds = 3.0;
    spec.cfg.epsilonTotal = 1e-5;
    spec.cfg.objective = obj;
    const Tool guoq{"guoq",
                    [&ctx, spec](const ir::Circuit &c, std::uint64_t seed) {
                        return runGuoq(ctx, spec, c, seed);
                    }};

    Comparison cmp;
    cmp.metricName = "2q gate reduction";
    cmp.metricKey = "2q_reduction";
    cmp.metric = [](const ir::Circuit &before, const ir::Circuit &after) {
        return reduction(before.twoQubitGateCount(),
                         after.twoQubitGateCount());
    };

    runComparison(ctx, suite, guoq, tools, cmp);
}

const CaseRegistrar kTable3("table3", "implemented optimizer taxonomy",
                            5, runTable3);
const CaseRegistrar kFig1(
    "fig1", "GUOQ vs state-of-the-art (ibmq20, 2q reduction)", 10,
    runFig1);

} // namespace

#ifndef GUOQ_BENCH_NO_MAIN
int
main()
{
    return guoq::bench::legacyMain();
}
#endif
