/**
 * @file
 * Fig. 1 (and Table 3): GUOQ vs the seven state-of-the-art optimizers
 * on the ibmq20 gate set, 2-qubit-gate reduction, approximate tools
 * allowed ε. Prints the per-benchmark table, the better/match/worse
 * bars of Fig. 1, and the Table 3 taxonomy of the implemented
 * baselines.
 *
 * Tool stand-ins (see DESIGN.md): Qiskit/tket/VOQC → fixed-sequence
 * pass pipelines; BQSKit → partition+resynthesize; QUESO/Quartz →
 * MaxBeam over exact rewrites (different beam widths); Quarl →
 * ε-greedy one-step-lookahead policy.
 */

#include <cstdio>

#include "bench/bench_util.h"

using namespace guoq;
using namespace guoq::bench;

int
main()
{
    const ir::GateSetKind set = ir::GateSetKind::Ibmq20;
    const double budget = guoqBudget(3.0);
    const core::Objective obj = core::Objective::TwoQubitCount;

    std::printf("=== Table 3: implemented optimizer taxonomy ===\n\n");
    support::TextTable tax({"tool", "superoptimizer", "approach"});
    tax.addRow({"qiskit-like", "no", "fixed sequence of passes"});
    tax.addRow({"tket-like", "no", "fixed sequence of passes"});
    tax.addRow({"voqc-like", "no", "fixed sequence of passes"});
    tax.addRow({"bqskit-like", "yes", "partition + resynthesize"});
    tax.addRow({"queso-like", "yes", "beam search + rewrite rules"});
    tax.addRow({"quartz-like", "yes", "beam search + rewrite rules"});
    tax.addRow({"quarl-like", "yes", "greedy policy + rewrite rules"});
    tax.print();

    std::printf("\n=== Fig. 1: GUOQ vs state-of-the-art "
                "(ibmq20, 2q reduction, eps allowed) ===\n\n");

    const auto suite =
        benchSuiteFor(set, suiteCap(12));

    auto beamTool = [set, obj, budget](std::size_t width) {
        return [set, obj, budget, width](const ir::Circuit &c,
                                         std::uint64_t seed) {
            baselines::BeamOptions o;
            o.objective = obj;
            o.epsilonTotal = 0; // QUESO/Quartz are exact
            o.timeBudgetSeconds = budget;
            o.beamWidth = width;
            o.seed = seed;
            return baselines::beamSearchOptimize(c, set, o).best;
        };
    };

    const std::vector<Tool> tools{
        {"qiskit", [set](const ir::Circuit &c, std::uint64_t) {
             return baselines::qiskitLikeOptimize(c, set);
         }},
        {"tket", [set](const ir::Circuit &c, std::uint64_t) {
             return baselines::tketLikeOptimize(c, set);
         }},
        {"voqc", [set](const ir::Circuit &c, std::uint64_t) {
             return baselines::voqcLikeOptimize(c, set);
         }},
        {"bqskit", [set, obj, budget](const ir::Circuit &c,
                                      std::uint64_t seed) {
             return baselines::partitionResynth(c, set, obj, 1e-5,
                                                budget, seed)
                 .circuit;
         }},
        {"queso", beamTool(32)},
        {"quartz", beamTool(128)},
        {"quarl", [set, obj, budget](const ir::Circuit &c,
                                     std::uint64_t seed) {
             baselines::RlLikeOptions o;
             o.objective = obj;
             o.timeBudgetSeconds = budget;
             o.seed = seed;
             return baselines::rlLikeOptimize(c, set, o);
         }},
    };

    Comparison cmp;
    cmp.metricName = "2q gate reduction";
    cmp.metric = [](const ir::Circuit &before, const ir::Circuit &after) {
        return reduction(before.twoQubitGateCount(),
                         after.twoQubitGateCount());
    };

    runComparison(
        suite,
        [set, obj, budget](const ir::Circuit &c, std::uint64_t seed) {
            return runGuoq(c, set, budget, seed, obj);
        },
        tools, cmp);
    return 0;
}
