/**
 * @file
 * Fig. 14 (Q4): running GUOQ on the PyZX stand-in's output — the
 * ZX-style pass drains T count but never touches CX; GUOQ then cuts
 * CX without increasing T (the 2·#T + #CX objective forbids trades
 * that raise T). Reports T and CX at each pipeline stage.
 */

#include <cstdio>

#include "bench/bench_util.h"

using namespace guoq;
using namespace guoq::bench;

int
main()
{
    const ir::GateSetKind set = ir::GateSetKind::CliffordT;
    const double budget = guoqBudget(4.0);
    const auto suite = benchSuiteFor(set, suiteCap(12));

    std::printf("=== Fig. 14: GUOQ on PyZX output (clifford+t) ===\n\n");

    support::TextTable table({"benchmark", "T in", "T pyzx", "T +guoq",
                              "CX in", "CX pyzx", "CX +guoq"});
    int t_never_increased = 0;
    int cx_reduced = 0;
    double cx_red_sum = 0;
    for (const workloads::Benchmark &b : suite) {
        const ir::Circuit zx = baselines::phasePolyOptimize(b.circuit, set);
        core::GuoqConfig cfg;
        cfg.epsilonTotal = 1e-5;
        cfg.timeBudgetSeconds = budget;
        cfg.seed = support::benchSeed();
        cfg.objective = core::Objective::TThenTwoQubit;
        const ir::Circuit out = core::optimize(zx, set, cfg).best;

        table.addRow({b.name, std::to_string(b.circuit.tGateCount()),
                      std::to_string(zx.tGateCount()),
                      std::to_string(out.tGateCount()),
                      std::to_string(b.circuit.twoQubitGateCount()),
                      std::to_string(zx.twoQubitGateCount()),
                      std::to_string(out.twoQubitGateCount())});
        if (out.tGateCount() <= zx.tGateCount())
            ++t_never_increased;
        if (out.twoQubitGateCount() < zx.twoQubitGateCount())
            ++cx_reduced;
        cx_red_sum += reduction(zx.twoQubitGateCount(),
                                out.twoQubitGateCount());
    }
    table.print();

    std::printf("\nT count non-increasing after guoq: %d/%zu\n",
                t_never_increased, suite.size());
    std::printf("CX reduced on pyzx output: %d/%zu (avg CX reduction "
                "%s)\n",
                cx_reduced, suite.size(),
                support::fmtPct(cx_red_sum /
                                static_cast<double>(suite.size()))
                    .c_str());
    return 0;
}
