/**
 * @file
 * Fig. 14 (Q4): running GUOQ on the PyZX stand-in's output — the
 * ZX-style pass drains T count but never touches CX; GUOQ then cuts
 * CX without increasing T (the 2·#T + #CX objective forbids trades
 * that raise T). Records T and CX at each pipeline stage.
 */

#include <cstdio>

#include "baselines/phase_poly.h"
#include "bench/harness.h"
#include "bench/registry.h"
#include "support/table.h"

namespace {

using namespace guoq;
using namespace guoq::bench;

void
runFig14(CaseContext &ctx)
{
    const ir::GateSetKind set = ir::GateSetKind::CliffordT;
    const auto suite = benchSuiteFor(set, suiteCap(ctx.opts(), 12));

    if (ctx.pretty())
        std::printf("=== Fig. 14: GUOQ on PyZX output (clifford+t) "
                    "===\n\n");

    GuoqSpec spec;
    spec.set = set;
    spec.baseBudgetSeconds = 4.0;
    spec.cfg.epsilonTotal = 1e-5;
    spec.cfg.objective = core::Objective::TThenTwoQubit;

    support::TextTable table({"benchmark", "T in", "T pyzx", "T +guoq",
                              "CX in", "CX pyzx", "CX +guoq"});
    int t_never_increased = 0;
    int cx_reduced = 0;
    double cx_red_sum = 0;
    for (const workloads::Benchmark &b : suite) {
        const ir::Circuit zx =
            baselines::phasePolyOptimize(b.circuit, set);
        for (int t = 0; t < ctx.opts().trials; ++t) {
            const std::uint64_t seed = ctx.opts().trialSeed(t);
            const ir::Circuit out = runGuoq(ctx, spec, zx, seed);
            const std::vector<double> workers =
                ctx.takeWorkerSeconds();

            const struct
            {
                const char *tool;
                const ir::Circuit &c;
                bool portfolio; //!< stage backed by the GUOQ run
            } stages[] = {{"input", b.circuit, false},
                          {"pyzx", zx, false},
                          {"pyzx+guoq", out, true}};
            for (const auto &stage : stages) {
                CaseResult t_row;
                t_row.benchmark = b.name;
                t_row.tool = stage.tool;
                t_row.metric = "t_count";
                t_row.value =
                    static_cast<double>(stage.c.tGateCount());
                t_row.trial = t;
                t_row.seed = seed;
                if (stage.portfolio)
                    t_row.workerSeconds = workers;
                ctx.record(std::move(t_row));
                CaseResult cx_row;
                cx_row.benchmark = b.name;
                cx_row.tool = stage.tool;
                cx_row.metric = "2q_count";
                cx_row.value =
                    static_cast<double>(stage.c.twoQubitGateCount());
                cx_row.trial = t;
                cx_row.seed = seed;
                if (stage.portfolio)
                    cx_row.workerSeconds = workers;
                ctx.record(std::move(cx_row));
            }
            if (t > 0)
                continue;
            // The table and shape-check counters summarize trial 0,
            // matching the single-run legacy output.
            table.addRow({b.name,
                          std::to_string(b.circuit.tGateCount()),
                          std::to_string(zx.tGateCount()),
                          std::to_string(out.tGateCount()),
                          std::to_string(b.circuit.twoQubitGateCount()),
                          std::to_string(zx.twoQubitGateCount()),
                          std::to_string(out.twoQubitGateCount())});
            if (out.tGateCount() <= zx.tGateCount())
                ++t_never_increased;
            if (out.twoQubitGateCount() < zx.twoQubitGateCount())
                ++cx_reduced;
            cx_red_sum += reduction(zx.twoQubitGateCount(),
                                    out.twoQubitGateCount());
        }
    }

    const double n = static_cast<double>(suite.size());
    auto aggregate = [&ctx](const std::string &metric, double value) {
        CaseResult row;
        row.benchmark = "*";
        row.tool = "pyzx+guoq";
        row.metric = metric;
        row.value = value;
        ctx.record(std::move(row));
    };
    aggregate("t_non_increasing", t_never_increased);
    aggregate("cx_reduced", cx_reduced);
    if (n > 0)
        aggregate("2q_reduction_avg", cx_red_sum / n);

    if (!ctx.pretty())
        return;
    table.print();
    std::printf("\nT count non-increasing after guoq: %d/%zu\n",
                t_never_increased, suite.size());
    std::printf("CX reduced on pyzx output: %d/%zu (avg CX reduction "
                "%s)\n",
                cx_reduced, suite.size(),
                support::fmtPct(cx_red_sum / n).c_str());
}

const CaseRegistrar kFig14("fig14", "GUOQ on PyZX output (clifford+t)",
                           140, runFig14);

} // namespace

#ifndef GUOQ_BENCH_NO_MAIN
int
main()
{
    return guoq::bench::legacyMain();
}
#endif
