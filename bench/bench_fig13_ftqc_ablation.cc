/**
 * @file
 * Fig. 13 (Q4 ablation): on Clifford+T the contribution flips — exact
 * rewrites matter more than finite-set resynthesis because unitary
 * synthesis over a finite gate set is much harder than continuous
 * instantiation. GUOQ vs GUOQ-REWRITE vs GUOQ-RESYNTH, T reduction.
 */

#include <cstdio>

#include "bench/harness.h"
#include "bench/registry.h"

namespace {

using namespace guoq;
using namespace guoq::bench;

void
runFig13(CaseContext &ctx)
{
    const ir::GateSetKind set = ir::GateSetKind::CliffordT;
    const core::Objective obj = core::Objective::TCount;
    const auto suite = benchSuiteFor(set, suiteCap(ctx.opts(), 12));

    if (ctx.pretty())
        std::printf("=== Fig. 13 (Q4 ablation): clifford+t, T "
                    "reduction ===\n\n");

    auto variant = [&ctx, set, obj](core::TransformSelection selection) {
        GuoqSpec spec;
        spec.set = set;
        spec.baseBudgetSeconds = 4.0;
        spec.cfg.epsilonTotal = 1e-5;
        spec.cfg.objective = obj;
        spec.cfg.selection = selection;
        return [&ctx, spec](const ir::Circuit &c, std::uint64_t seed) {
            return runGuoq(ctx, spec, c, seed);
        };
    };

    const std::vector<Tool> tools{
        {"guoq-rewrite",
         variant(core::TransformSelection::RewriteOnly)},
        {"guoq-resynth",
         variant(core::TransformSelection::ResynthOnly)},
    };
    const Tool guoq{"guoq", variant(core::TransformSelection::Combined)};

    Comparison cmp;
    cmp.metricName = "T gate reduction";
    cmp.metricKey = "t_reduction";
    cmp.metric = [](const ir::Circuit &before, const ir::Circuit &after) {
        return reduction(before.tGateCount(), after.tGateCount());
    };
    runComparison(ctx, suite, guoq, tools, cmp);

    if (ctx.pretty())
        std::printf("shape check: rewrite-only tracks guoq closely "
                    "here (rules contribute more than finite "
                    "resynthesis), the reverse of Fig. 10.\n");
}

const CaseRegistrar kFig13(
    "fig13", "clifford+t ablation: rewrite vs resynth contribution",
    130, runFig13);

} // namespace

#ifndef GUOQ_BENCH_NO_MAIN
int
main()
{
    return guoq::bench::legacyMain();
}
#endif
