/**
 * @file
 * Fig. 13 (Q4 ablation): on Clifford+T the contribution flips — exact
 * rewrites matter more than finite-set resynthesis because unitary
 * synthesis over a finite gate set is much harder than continuous
 * instantiation. GUOQ vs GUOQ-REWRITE vs GUOQ-RESYNTH, T reduction.
 */

#include <cstdio>

#include "bench/bench_util.h"

using namespace guoq;
using namespace guoq::bench;

int
main()
{
    const ir::GateSetKind set = ir::GateSetKind::CliffordT;
    const double budget = guoqBudget(4.0);
    const core::Objective obj = core::Objective::TCount;
    const auto suite = benchSuiteFor(set, suiteCap(12));

    std::printf("=== Fig. 13 (Q4 ablation): clifford+t, T reduction "
                "===\n\n");

    const std::vector<Tool> tools{
        {"guoq-rewrite", [set, obj, budget](const ir::Circuit &c,
                                            std::uint64_t seed) {
             return runGuoq(c, set, budget, seed, obj,
                            core::TransformSelection::RewriteOnly);
         }},
        {"guoq-resynth", [set, obj, budget](const ir::Circuit &c,
                                            std::uint64_t seed) {
             return runGuoq(c, set, budget, seed, obj,
                            core::TransformSelection::ResynthOnly);
         }},
    };

    Comparison cmp;
    cmp.metricName = "T gate reduction";
    cmp.metric = [](const ir::Circuit &before, const ir::Circuit &after) {
        return reduction(before.tGateCount(), after.tGateCount());
    };
    runComparison(
        suite,
        [set, obj, budget](const ir::Circuit &c, std::uint64_t seed) {
            return runGuoq(c, set, budget, seed, obj);
        },
        tools, cmp);

    std::printf("shape check: rewrite-only tracks guoq closely here "
                "(rules contribute more than finite resynthesis), the "
                "reverse of Fig. 10.\n");
    return 0;
}
