/**
 * @file
 * Microbenchmarks (google-benchmark) for the substrates every search
 * iteration leans on: unitary simulation, the matcher/applier, convex
 * subcircuit ops, distance evaluation, and instantiation gradients.
 */

#include <benchmark/benchmark.h>

#include "dag/circuit_dag.h"
#include "dag/subcircuit.h"
#include "linalg/unitary.h"
#include "rewrite/applier.h"
#include "rewrite/rule.h"
#include "sim/statevector.h"
#include "sim/unitary_sim.h"
#include "synth/instantiate.h"
#include "transpile/to_gate_set.h"
#include "workloads/standard.h"

namespace {

using namespace guoq;

ir::Circuit
benchCircuit(int qubits)
{
    return transpile::toGateSet(workloads::qft(qubits),
                                ir::GateSetKind::Nam);
}

void
BM_CircuitUnitary(benchmark::State &state)
{
    const ir::Circuit c = benchCircuit(static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(sim::circuitUnitary(c));
}
BENCHMARK(BM_CircuitUnitary)->Arg(3)->Arg(5)->Arg(7);

void
BM_Statevector(benchmark::State &state)
{
    const ir::Circuit c = benchCircuit(static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(sim::runCircuit(c));
}
BENCHMARK(BM_Statevector)->Arg(5)->Arg(10)->Arg(14);

void
BM_HsDistance(benchmark::State &state)
{
    const auto u = sim::circuitUnitary(benchCircuit(5));
    const auto v = sim::circuitUnitary(benchCircuit(5).inverse());
    for (auto _ : state)
        benchmark::DoNotOptimize(linalg::hsDistance(u, v));
}
BENCHMARK(BM_HsDistance);

void
BM_RulePass(benchmark::State &state)
{
    const ir::Circuit c = benchCircuit(static_cast<int>(state.range(0)));
    const auto &rules = rewrite::rulesFor(ir::GateSetKind::Nam);
    support::Rng rng(1);
    for (auto _ : state) {
        const auto &rule = rules[rng.index(rules.size())];
        benchmark::DoNotOptimize(
            rewrite::applyRulePassRandom(c, rule, rng));
    }
}
BENCHMARK(BM_RulePass)->Arg(5)->Arg(8)->Arg(10);

void
BM_DagConstruction(benchmark::State &state)
{
    const ir::Circuit c = benchCircuit(static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(dag::CircuitDag(c));
}
BENCHMARK(BM_DagConstruction)->Arg(5)->Arg(10);

void
BM_ConvexGrowExtractSplice(benchmark::State &state)
{
    const ir::Circuit c = benchCircuit(8);
    support::Rng rng(2);
    for (auto _ : state) {
        const auto sel = dag::randomConvex(c, rng, 3, 24, 6);
        if (sel.empty())
            continue;
        const ir::Circuit sub = dag::extract(c, sel);
        benchmark::DoNotOptimize(dag::splice(c, sel, sub));
    }
}
BENCHMARK(BM_ConvexGrowExtractSplice);

void
BM_InstantiateGradient(benchmark::State &state)
{
    synth::Ansatz a = synth::initialAnsatz(3);
    synth::appendEntanglerBlock(&a, 0, 1, false);
    synth::appendEntanglerBlock(&a, 1, 2, false);
    ir::Circuit t(3);
    t.ccx(0, 1, 2);
    const auto target = sim::circuitUnitary(t);
    std::vector<double> x(static_cast<std::size_t>(a.numParams()), 0.3);
    std::vector<double> grad;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            synth::hsCostAndGrad(a, target, x, &grad));
}
BENCHMARK(BM_InstantiateGradient);

void
BM_Transpile(benchmark::State &state)
{
    const ir::Circuit c = workloads::barencoTof(5);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            transpile::toGateSet(c, ir::GateSetKind::IbmEagle));
}
BENCHMARK(BM_Transpile);

} // namespace

BENCHMARK_MAIN();
