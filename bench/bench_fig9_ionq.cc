/**
 * @file
 * Fig. 9: GUOQ vs Qiskit / BQSKit / QUESO stand-ins on the ionq gate
 * set (2q = Rxx reduction and fidelity). The paper highlights that
 * QUESO's 3-gate rewrite rules struggle on this gate set while
 * resynthesis compensates — the same asymmetry appears here because
 * the ionq rule library has no Rxx-count-reducing rule beyond merges.
 */

#include <cstdio>

#include "bench/bench_util.h"

using namespace guoq;
using namespace guoq::bench;

int
main()
{
    const ir::GateSetKind set = ir::GateSetKind::IonQ;
    const double budget = guoqBudget(3.0);
    const core::Objective obj = core::Objective::TwoQubitCount;
    const auto suite = benchSuiteFor(set, suiteCap(10));
    const fidelity::ErrorModel &model = fidelity::errorModelFor(set);

    const std::vector<Tool> tools{
        {"qiskit", [set](const ir::Circuit &c, std::uint64_t) {
             return baselines::qiskitLikeOptimize(c, set);
         }},
        {"bqskit", [set, obj, budget](const ir::Circuit &c,
                                      std::uint64_t seed) {
             return baselines::partitionResynth(c, set, obj, 1e-5,
                                                budget, seed)
                 .circuit;
         }},
        {"queso", [set, obj, budget](const ir::Circuit &c,
                                     std::uint64_t seed) {
             baselines::BeamOptions o;
             o.objective = obj;
             o.epsilonTotal = 0;
             o.timeBudgetSeconds = budget;
             o.beamWidth = 32;
             o.seed = seed;
             return baselines::beamSearchOptimize(c, set, o).best;
         }},
    };

    auto guoq_run = [set, obj, budget](const ir::Circuit &c,
                                       std::uint64_t seed) {
        return runGuoq(c, set, budget, seed, obj);
    };

    std::printf("=== Fig. 9 (top): 2q (Rxx) reduction, ionq ===\n\n");
    Comparison twoq;
    twoq.metricName = "2q gate reduction";
    twoq.metric = [](const ir::Circuit &before, const ir::Circuit &after) {
        return reduction(before.twoQubitGateCount(),
                         after.twoQubitGateCount());
    };
    runComparison(suite, guoq_run, tools, twoq);

    std::printf("=== Fig. 9 (bottom): circuit fidelity, ionq ===\n\n");
    Comparison fid;
    fid.metricName = "fidelity";
    fid.metric = [&model](const ir::Circuit &, const ir::Circuit &after) {
        return model.circuitFidelity(after);
    };
    runComparison(suite, guoq_run, tools, fid);
    return 0;
}
