/**
 * @file
 * Fig. 9: GUOQ vs Qiskit / BQSKit / QUESO stand-ins on the ionq gate
 * set, as two cases: "fig9/2q" (Rxx reduction) and "fig9/fidelity".
 * The paper highlights that QUESO's 3-gate rewrite rules struggle on
 * this gate set while resynthesis compensates — the same asymmetry
 * appears here because the ionq rule library has no Rxx-count-reducing
 * rule beyond merges.
 */

#include <cstdio>

#include "baselines/beam_search.h"
#include "baselines/fixed_sequence.h"
#include "baselines/partition_resynth.h"
#include "bench/harness.h"
#include "bench/registry.h"
#include "fidelity/error_model.h"

namespace {

using namespace guoq;
using namespace guoq::bench;

void
runFig9(CaseContext &ctx, const Comparison &cmp, const char *header)
{
    const ir::GateSetKind set = ir::GateSetKind::IonQ;
    const double budget = ctx.budget(3.0);
    const core::Objective obj = core::Objective::TwoQubitCount;
    const auto suite = benchSuiteFor(set, suiteCap(ctx.opts(), 10));

    if (ctx.pretty())
        std::printf("=== %s ===\n\n", header);

    const std::vector<Tool> tools{
        {"qiskit", [set](const ir::Circuit &c, std::uint64_t) {
             return baselines::qiskitLikeOptimize(c, set);
         }},
        {"bqskit", [set, obj, budget](const ir::Circuit &c,
                                      std::uint64_t seed) {
             return baselines::partitionResynth(c, set, obj, 1e-5,
                                                budget, seed)
                 .circuit;
         }},
        {"queso", [set, obj, budget](const ir::Circuit &c,
                                     std::uint64_t seed) {
             baselines::BeamOptions o;
             o.objective = obj;
             o.epsilonTotal = 0;
             o.timeBudgetSeconds = budget;
             o.beamWidth = 32;
             o.seed = seed;
             return baselines::beamSearchOptimize(c, set, o).best;
         }},
    };

    GuoqSpec spec;
    spec.set = set;
    spec.baseBudgetSeconds = 3.0;
    spec.cfg.epsilonTotal = 1e-5;
    spec.cfg.objective = obj;
    const Tool guoq{"guoq",
                    [&ctx, spec](const ir::Circuit &c, std::uint64_t seed) {
                        return runGuoq(ctx, spec, c, seed);
                    }};

    runComparison(ctx, suite, guoq, tools, cmp);
}

void
runFig9TwoQubit(CaseContext &ctx)
{
    Comparison cmp;
    cmp.metricName = "2q gate reduction";
    cmp.metricKey = "2q_reduction";
    cmp.metric = [](const ir::Circuit &before, const ir::Circuit &after) {
        return reduction(before.twoQubitGateCount(),
                         after.twoQubitGateCount());
    };
    runFig9(ctx, cmp, "Fig. 9 (top): 2q (Rxx) reduction, ionq");
}

void
runFig9Fidelity(CaseContext &ctx)
{
    const fidelity::ErrorModel &model =
        fidelity::errorModelFor(ir::GateSetKind::IonQ);
    Comparison cmp;
    cmp.metricName = "fidelity";
    cmp.metricKey = "fidelity";
    cmp.metric = [&model](const ir::Circuit &, const ir::Circuit &after) {
        return model.circuitFidelity(after);
    };
    runFig9(ctx, cmp, "Fig. 9 (bottom): circuit fidelity, ionq");
}

const CaseRegistrar kFig9TwoQubit(
    "fig9/2q", "GUOQ vs tools, ionq 2q (Rxx) reduction", 90,
    runFig9TwoQubit);
const CaseRegistrar kFig9Fidelity(
    "fig9/fidelity", "GUOQ vs tools, ionq circuit fidelity", 91,
    runFig9Fidelity);

} // namespace

#ifndef GUOQ_BENCH_NO_MAIN
int
main()
{
    return guoq::bench::legacyMain();
}
#endif
