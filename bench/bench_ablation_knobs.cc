/**
 * @file
 * Design-knob ablations the paper reports in prose (§5.3, §6), one
 * case per knob:
 *   ablation/temperature  — acceptance temperature t (paper picks 10);
 *   ablation/resynth-prob — resynthesis sampling probability (1.5%);
 *   ablation/async        — synchronous vs asynchronous resynthesis.
 * Each sweep records final 2q counts on a small circuit panel.
 */

#include <cstdio>

#include "bench/harness.h"
#include "bench/registry.h"
#include "support/table.h"
#include "transpile/to_gate_set.h"
#include "workloads/standard.h"
#include "workloads/variational.h"

namespace {

using namespace guoq;
using namespace guoq::bench;

std::vector<workloads::Benchmark>
panel(ir::GateSetKind set)
{
    std::vector<workloads::Benchmark> out;
    out.push_back({"barenco_tof_4", "tof",
                   transpile::toGateSet(workloads::barencoTof(4), set)});
    out.push_back({"qaoa_6", "qaoa",
                   transpile::toGateSet(workloads::qaoaMaxCut(6, 2, 11),
                                        set)});
    out.push_back({"qft_5", "qft",
                   transpile::toGateSet(workloads::qft(5), set)});
    return out;
}

GuoqSpec
ablationSpec(ir::GateSetKind set)
{
    GuoqSpec spec;
    spec.set = set;
    spec.baseBudgetSeconds = 3.0;
    spec.cfg.epsilonTotal = 1e-5;
    return spec;
}

/**
 * One knob sweep: runs GUOQ per (circuit, setting, trial) cell,
 * records a final_2q row per cell, and (pretty) prints the legacy
 * table (trial 0's counts, so the printed numbers stay comparable to
 * the single-run legacy output).
 */
void
runSweep(CaseContext &ctx, const std::vector<std::string> &labels,
         const std::function<GuoqSpec(std::size_t)> &specFor)
{
    const ir::GateSetKind set = ir::GateSetKind::Ibmq20;
    const auto circuits = panel(set);

    std::vector<std::string> headers{"benchmark", "2q in"};
    headers.insert(headers.end(), labels.begin(), labels.end());
    support::TextTable table(std::move(headers));
    for (const auto &b : circuits) {
        std::vector<std::string> row{
            b.name, std::to_string(b.circuit.twoQubitGateCount())};
        for (std::size_t i = 0; i < labels.size(); ++i) {
            const GuoqSpec spec = specFor(i);
            for (int t = 0; t < ctx.opts().trials; ++t) {
                const std::uint64_t seed = ctx.opts().trialSeed(t);
                const std::size_t final_2q =
                    runGuoq(ctx, spec, b.circuit, seed)
                        .twoQubitGateCount();
                CaseResult r;
                r.benchmark = b.name;
                r.tool = labels[i];
                r.metric = "final_2q";
                r.value = static_cast<double>(final_2q);
                r.trial = t;
                r.seed = seed;
                r.workerSeconds = ctx.takeWorkerSeconds();
                ctx.record(std::move(r));
                if (t == 0)
                    row.push_back(std::to_string(final_2q));
            }
        }
        table.addRow(std::move(row));
    }
    if (ctx.pretty())
        table.print();
}

void
runTemperature(CaseContext &ctx)
{
    if (ctx.pretty())
        std::printf("=== Ablation 1: acceptance temperature t "
                    "(paper sweeps 0..10, picks 10) ===\n\n");
    const double temps[] = {0.0, 2.0, 10.0, 40.0};
    runSweep(ctx, {"t=0", "t=2", "t=10", "t=40"}, [&](std::size_t i) {
        GuoqSpec spec = ablationSpec(ir::GateSetKind::Ibmq20);
        spec.cfg.temperature = temps[i];
        return spec;
    });
    if (ctx.pretty())
        std::printf("shape check: t=0 (always accept worse) wanders; "
                    "large t is near-greedy and stable.\n\n");
}

void
runResynthProbability(CaseContext &ctx)
{
    if (ctx.pretty())
        std::printf("=== Ablation 2: resynthesis sampling probability "
                    "(paper: 1.5%%) ===\n\n");
    const double probs[] = {0.001, 0.015, 0.10, 0.50};
    runSweep(ctx, {"0.1%", "1.5%", "10%", "50%"}, [&](std::size_t i) {
        GuoqSpec spec = ablationSpec(ir::GateSetKind::Ibmq20);
        spec.cfg.resynthProbability = probs[i];
        return spec;
    });
    if (ctx.pretty())
        std::printf("shape check: too-low starves the slow mode; "
                    "too-high starves the fast mode (resynthesis "
                    "calls monopolize the budget).\n\n");
}

void
runAsyncResynth(CaseContext &ctx)
{
    if (ctx.pretty())
        std::printf("=== Ablation 3: synchronous vs asynchronous "
                    "resynthesis (paper 5.3) ===\n\n");
    runSweep(ctx, {"sync", "async"}, [&](std::size_t i) {
        GuoqSpec spec = ablationSpec(ir::GateSetKind::Ibmq20);
        spec.cfg.synthWorkers = i == 1 ? 1 : 0;
        return spec;
    });
    if (ctx.pretty())
        std::printf("shape check: async keeps rewriting while a "
                    "synthesis call is in flight, so it matches or "
                    "beats sync at equal wall clock.\n");
}

const CaseRegistrar kTemperature(
    "ablation/temperature", "acceptance temperature sweep (ibmq20)",
    300, runTemperature);
const CaseRegistrar kResynthProb(
    "ablation/resynth-prob",
    "resynthesis sampling probability sweep (ibmq20)", 301,
    runResynthProbability);
const CaseRegistrar kAsync(
    "ablation/async", "synchronous vs asynchronous resynthesis", 302,
    runAsyncResynth);

} // namespace

#ifndef GUOQ_BENCH_NO_MAIN
int
main()
{
    return guoq::bench::legacyMain();
}
#endif
